// Package bench provides the workload generators and the experiment
// harness that regenerate the paper's artifacts (experiments E1–E7 of
// DESIGN.md §4) and the scaling/ablation extensions (E8–E11). The
// generators synthesize DeviceTrees, feature models and delta chains of
// arbitrary size so the checkers can be exercised far beyond the
// running example, substituting for the hardware the paper targets
// (DESIGN.md §2).
package bench

import (
	"fmt"
	"math/rand"

	"llhsc/internal/addr"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
)

// SyntheticDTS builds a board DTS with the given number of disjoint
// memory banks and device nodes (uart-like, 4 KiB windows), using
// 32-bit addressing. The layout is deterministic and collision-free.
func SyntheticDTS(banks, devices int) *dts.Tree {
	tree := dts.NewTree()
	root := tree.Root
	root.SetProperty(&dts.Property{Name: "#address-cells", Value: dts.CellsValue(1)})
	root.SetProperty(&dts.Property{Name: "#size-cells", Value: dts.CellsValue(1)})
	root.SetProperty(&dts.Property{Name: "compatible", Value: dts.StringValueOf("llhsc,synthetic")})

	// memory banks: 1 MiB each, starting at 1 GiB, spaced by 2 MiB
	const bankSize = 0x100000
	var cells []uint32
	for i := 0; i < banks; i++ {
		base := uint32(0x40000000 + i*2*bankSize)
		cells = append(cells, base, bankSize)
	}
	if banks > 0 {
		mem := root.EnsureChild(fmt.Sprintf("memory@%x", 0x40000000))
		mem.SetProperty(&dts.Property{Name: "device_type", Value: dts.StringValueOf("memory")})
		mem.SetProperty(&dts.Property{Name: "reg", Value: dts.CellsValue(cells...)})
	}

	// devices: 4 KiB windows from 0x10000000, spaced by 64 KiB
	for i := 0; i < devices; i++ {
		base := uint32(0x10000000 + i*0x10000)
		dev := root.EnsureChild(fmt.Sprintf("uart@%x", base))
		dev.SetProperty(&dts.Property{Name: "compatible", Value: dts.StringValueOf("ns16550a")})
		dev.SetProperty(&dts.Property{Name: "reg", Value: dts.CellsValue(base, 0x1000)})
	}

	cpus := root.EnsureChild("cpus")
	cpus.SetProperty(&dts.Property{Name: "#address-cells", Value: dts.CellsValue(1)})
	cpus.SetProperty(&dts.Property{Name: "#size-cells", Value: dts.CellsValue(0)})
	for i := 0; i < 2; i++ {
		cpu := cpus.EnsureChild(fmt.Sprintf("cpu@%d", i))
		cpu.SetProperty(&dts.Property{Name: "device_type", Value: dts.StringValueOf("cpu")})
		cpu.SetProperty(&dts.Property{Name: "compatible", Value: dts.StringValueOf("arm,cortex-a53")})
		cpu.SetProperty(&dts.Property{Name: "reg", Value: dts.CellsValue(uint32(i))})
	}
	return tree
}

// SyntheticRegions produces n regions; when withOverlap is true the
// last region is moved onto the first one so exactly one collision
// exists. Otherwise all regions are pairwise disjoint (the worst case
// for the solver: every pairwise query is unsatisfiable).
func SyntheticRegions(n int, withOverlap bool) []addr.Region {
	regions := make([]addr.Region, n)
	for i := range regions {
		regions[i] = addr.Region{
			Base: uint64(0x1000_0000 + i*0x10_0000),
			Size: 0x8_0000,
			Path: fmt.Sprintf("/dev@%d", i),
			Kind: addr.KindDevice,
		}
	}
	if withOverlap && n >= 2 {
		regions[n-1].Base = regions[0].Base + 0x1000
	}
	return regions
}

// SyntheticFeatureModel builds a feature model with approximately the
// requested number of features: a balanced tree of alternating OR/XOR
// groups over optional AND layers, plus ~10% random requires/excludes
// cross constraints. Deterministic for a given seed.
func SyntheticFeatureModel(features int, seed int64) *featmodel.Model {
	rng := rand.New(rand.NewSource(seed))
	if features < 2 {
		features = 2
	}
	root := &featmodel.Feature{Name: "root", Abstract: true, Group: featmodel.GroupAnd}
	count := 1
	var leaves []*featmodel.Feature
	frontier := []*featmodel.Feature{root}

	for count < features {
		if len(frontier) == 0 {
			// re-expand a leaf so the tree always reaches the target size
			if len(leaves) == 0 {
				break
			}
			frontier = append(frontier, leaves[0])
			leaves = leaves[1:]
		}
		parent := frontier[0]
		frontier = frontier[1:]
		groupSize := 2 + rng.Intn(3)
		switch rng.Intn(3) {
		case 0:
			parent.Group = featmodel.GroupOr
		case 1:
			parent.Group = featmodel.GroupXor
		default:
			parent.Group = featmodel.GroupAnd
		}
		for g := 0; g < groupSize && count < features; g++ {
			child := &featmodel.Feature{
				Name:  fmt.Sprintf("f%d", count),
				Group: featmodel.GroupAnd,
			}
			if parent.Group == featmodel.GroupAnd && rng.Intn(2) == 0 {
				child.Mandatory = true
			}
			parent.Children = append(parent.Children, child)
			count++
			if rng.Intn(3) == 0 {
				frontier = append(frontier, child)
			} else {
				leaves = append(leaves, child)
			}
		}
	}

	var constraints []*featmodel.Expr
	if len(leaves) >= 2 {
		nc := len(leaves) / 10
		for i := 0; i < nc; i++ {
			a := leaves[rng.Intn(len(leaves))]
			b := leaves[rng.Intn(len(leaves))]
			if a == b {
				continue
			}
			if rng.Intn(2) == 0 {
				constraints = append(constraints,
					featmodel.Implies(featmodel.Var(a.Name), featmodel.Var(b.Name)))
			} else {
				constraints = append(constraints,
					featmodel.Implies(featmodel.Var(a.Name), featmodel.Not(featmodel.Var(b.Name))))
			}
		}
	}
	m, err := featmodel.NewModel(root, constraints...)
	if err != nil {
		// generator produces unique names by construction
		panic(err)
	}
	return m
}

// SyntheticDeltaChain builds a core DTS plus a chain of k deltas, each
// adding one device node under the root and ordered after its
// predecessor. All deltas are unconditionally active.
func SyntheticDeltaChain(k int) (*dts.Tree, *delta.Set, error) {
	core := SyntheticDTS(2, 0)
	deltas := make([]*delta.Delta, k)
	for i := 0; i < k; i++ {
		base := uint32(0x20000000 + i*0x10000)
		frag := &dts.Node{Name: "/"}
		dev := &dts.Node{Name: fmt.Sprintf("dev@%x", base)}
		dev.SetProperty(&dts.Property{Name: "compatible", Value: dts.StringValueOf("llhsc,dev")})
		dev.SetProperty(&dts.Property{Name: "reg", Value: dts.CellsValue(base, 0x1000)})
		frag.Children = append(frag.Children, dev)
		d := &delta.Delta{
			Name: fmt.Sprintf("d%d", i),
			Ops:  []delta.Operation{{Kind: delta.OpAdds, Target: "/", Fragment: frag}},
		}
		if i > 0 {
			d.After = []string{fmt.Sprintf("d%d", i-1)}
		}
		deltas[i] = d
	}
	set, err := delta.NewSet(deltas)
	if err != nil {
		return nil, nil, err
	}
	return core, set, nil
}
