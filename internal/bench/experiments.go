package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"llhsc/internal/addr"
	"llhsc/internal/constraints"
	"llhsc/internal/core"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/runningexample"
	"llhsc/internal/sat"
	"llhsc/internal/schema"
	"llhsc/internal/smt"
)

// Experiment is one reproducible experiment from DESIGN.md §4.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// Experiments returns all experiments in order.
func Experiments() []Experiment {
	return []Experiment{
		{"e1", "Parse the running example (Listings 1+2), round trip", RunE1},
		{"e2", "Infer the Fig. 1a feature model; count the 12 products", RunE2},
		{"e3", "Validate the Fig. 1b/1c products and rejected variants", RunE3},
		{"e4", "Delta activation and ordering (Listing 4)", RunE4},
		{"e5", "Address clash: baseline (dt-schema) vs llhsc (Section I-A)", RunE5},
		{"e6", "Truncation after omitting d4: collision at 0x0 (Section IV-C)", RunE6},
		{"e7", "Full pipeline: generate Listings 3 and 6", RunE7},
		{"e8", "Scaling: semantic overlap checks over n regions", RunE8},
		{"e9", "Scaling: feature-model analyses over n features", RunE9},
		{"e10", "Detection matrix: dtc-lint vs dt-schema vs llhsc", RunE10},
		{"e11", "Scaling: delta chains and incremental re-checking", RunE11},
		{"e12", "Scaling: full pipeline over k-VM synthetic product lines", RunE12},
		{"e13", "Parallel pipeline speedup over worker counts", RunE13},
		{"e14", "Semantic-check strategies: sweep vs assume vs pairwise", RunE14},
		{"e15", "Observability overhead: tracing and metrics off vs on", RunE15},
		{"e16", "Family-based lifted checking vs product enumeration", RunE16},
		{"e17", "Persistent cache tier: warm-restart hit-rate recovery", RunE17},
		{"e18", "Word-level tier vs bit-blast: concrete corpus and cell ladder", RunE18},
		{"e19", "Deep diagnostics overhead: slow-query instrumentation off vs on", RunE19},
	}
}

// RunAll executes every experiment, printing headers between them.
func RunAll(w io.Writer) error {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "==== %s: %s ====\n", strings.ToUpper(e.ID), e.Title)
		if err := e.Run(w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunE1 parses the running example, checks its shape and that printing
// round-trips.
func RunE1(w io.Writer) error {
	start := time.Now()
	tree, err := runningexample.Tree()
	if err != nil {
		return err
	}
	parseTime := time.Since(start)

	nodes, props := 0, 0
	tree.Root.Walk(func(_ string, n *dts.Node) bool {
		nodes++
		props += len(n.Properties)
		return true
	})
	printed := tree.Print()
	reparsed, err := dts.Parse("roundtrip.dts", printed)
	if err != nil {
		return fmt.Errorf("round trip failed: %w", err)
	}
	again := reparsed.Print()
	fmt.Fprintf(w, "nodes=%d properties=%d parse=%s roundtrip_stable=%v\n",
		nodes, props, parseTime.Round(time.Microsecond), printed == again)
	for _, path := range []string{"/memory@40000000", "/cpus/cpu@0", "/cpus/cpu@1", "/uart@20000000", "/uart@30000000"} {
		fmt.Fprintf(w, "  %-20s present=%v\n", path, tree.Lookup(path) != nil)
	}
	return nil
}

// RunE2 infers the feature model from the DTS, adds the virtual
// Ethernet group and counts products (paper: 12).
func RunE2(w io.Writer) error {
	tree, err := runningexample.Tree()
	if err != nil {
		return err
	}
	inferred, err := featmodel.InferFromDTS(tree, featmodel.InferOptions{RootName: "CustomSBC"})
	if err != nil {
		return err
	}
	model, err := inferred.AddVirtualGroup("vEthernet", featmodel.GroupXor,
		[]string{"veth0", "veth1"},
		featmodel.MustParseExpr("veth0 -> cpu@0"),
		featmodel.MustParseExpr("veth1 -> cpu@1"))
	if err != nil {
		return err
	}
	a := featmodel.NewAnalyzer(model)
	n, complete := a.CountProducts(0)
	fmt.Fprintf(w, "features=%d products=%d (paper: %d) complete=%v void=%v\n",
		len(model.Names()), n, runningexample.ProductCount, complete, a.IsVoid())
	fmt.Fprintf(w, "core features: %v\n", a.CoreFeatures())
	fmt.Fprintf(w, "dead features: %v\n", a.DeadFeatures())
	return nil
}

// RunE3 validates the paper's two products plus counter-cases, and the
// 2-VM partitioning including its 3-VM infeasibility bound.
func RunE3(w io.Writer) error {
	model, err := runningexample.Model()
	if err != nil {
		return err
	}
	a := featmodel.NewAnalyzer(model)
	cases := []struct {
		name string
		cfg  featmodel.Configuration
		want bool
	}{
		{"Fig1b (cpu@0, uarts, veth0)", runningexample.VM1Config(), true},
		{"Fig1c (cpu@1, uarts, veth1)", runningexample.VM2Config(), true},
		{"both CPUs", featmodel.ConfigOf("CustomSBC", "memory", "cpus", "cpu@0", "cpu@1", "uarts", "uart0"), false},
		{"veth0 without cpu@0", featmodel.ConfigOf("CustomSBC", "memory", "cpus", "cpu@1", "uarts", "uart0", "vEthernet", "veth0"), false},
	}
	for _, c := range cases {
		got := a.IsValid(c.cfg)
		fmt.Fprintf(w, "%-28s valid=%v want=%v ok=%v\n", c.name, got, c.want, got == c.want)
	}
	for _, k := range []int{2, 3} {
		mm, err := featmodel.NewMultiModel(model, k)
		if err != nil {
			return err
		}
		ma, err := featmodel.NewMultiAnalyzer(mm)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d VMs feasible=%v (paper: max 2 VMs)\n", k, !ma.IsVoid())
	}
	return nil
}

// RunE4 reports delta activation and application order per VM.
func RunE4(w io.Writer) error {
	deltas, err := runningexample.Deltas()
	if err != nil {
		return err
	}
	for _, vm := range []struct {
		name string
		cfg  featmodel.Configuration
	}{
		{"VM1 (Fig. 1b)", runningexample.VM1Config()},
		{"VM2 (Fig. 1c)", runningexample.VM2Config()},
	} {
		ordered, err := deltas.Order(vm.cfg)
		if err != nil {
			return err
		}
		names := make([]string, len(ordered))
		for i, d := range ordered {
			names[i] = d.Name
		}
		fmt.Fprintf(w, "%s: %s\n", vm.name, strings.Join(names, " < "))
	}
	return nil
}

// RunE5 contrasts the structural baseline with llhsc on the Section I-A
// address clash.
func RunE5(w io.Writer) error {
	src, inc := faultyDTS(FaultAddrOverlap)
	tree, err := dts.Parse("clash.dts", src, dts.WithIncluder(inc))
	if err != nil {
		return err
	}
	baseline := schema.StandardSet().Validate(tree)
	collisions, _ := constraints.NewSemanticChecker().Check(tree)
	fmt.Fprintf(w, "dt-schema baseline violations: %d (expected 0: the fault is invisible)\n", len(baseline))
	fmt.Fprintf(w, "llhsc collisions: %d (expected 1)\n", len(collisions))
	for _, c := range collisions {
		fmt.Fprintf(w, "  %s\n", c)
	}
	return nil
}

// RunE6 reproduces the truncation scenario: products derived without
// delta d4 must exhibit four memory banks and a collision at 0x0.
func RunE6(w io.Writer) error {
	coreTree, err := runningexample.Tree()
	if err != nil {
		return err
	}
	set, err := runningexample.Deltas()
	if err != nil {
		return err
	}
	var kept []*delta.Delta
	for _, d := range set.Deltas {
		if d.Name != "d4" {
			kept = append(kept, d)
		}
	}
	smaller, err := delta.NewSet(kept)
	if err != nil {
		return err
	}
	product, _, err := smaller.Apply(coreTree, runningexample.VM1Config())
	if err != nil {
		return err
	}
	regions, _ := addr.CollectRegions(product)
	memBanks := 0
	for _, r := range regions {
		if r.Kind == addr.KindMemory {
			memBanks++
		}
	}
	collisions, _ := constraints.NewSemanticChecker().Check(product)
	zero := false
	for _, c := range collisions {
		if c.Witness == 0 {
			zero = true
		}
	}
	fmt.Fprintf(w, "memory banks found: %d (paper: 4, instead of the original 2)\n", memBanks)
	fmt.Fprintf(w, "collisions: %d, witness 0x0 found: %v (paper's counterexample)\n",
		len(collisions), zero)
	return nil
}

// RunE7 runs the whole pipeline and prints the generated artifacts.
func RunE7(w io.Writer) error {
	report, err := RunningExamplePipeline()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pipeline ok=%v violations=%d\n", report.OK(), len(report.AllViolations()))
	for _, vm := range report.VMs {
		fmt.Fprintf(w, "%s: deltas %v\n", vm.Name, vm.Trace)
	}
	fmt.Fprintf(w, "--- platform config (Listing 3) ---\n%s", report.PlatformC)
	fmt.Fprintf(w, "--- VM config (Listing 6) ---\n%s", report.ConfigC)
	fmt.Fprintf(w, "--- QEMU equivalent ---\n%s\n", strings.Join(report.QEMUArgs, " "))
	return nil
}

// RunningExamplePipeline assembles and runs the paper's pipeline.
func RunningExamplePipeline() (*core.Report, error) {
	tree, err := runningexample.Tree()
	if err != nil {
		return nil, err
	}
	deltas, err := runningexample.Deltas()
	if err != nil {
		return nil, err
	}
	model, err := runningexample.Model()
	if err != nil {
		return nil, err
	}
	p := &core.Pipeline{
		Core:    tree,
		Deltas:  deltas,
		Model:   model,
		Schemas: schema.StandardSet(),
		VMConfigs: []featmodel.Configuration{
			runningexample.VM1Config(), runningexample.VM2Config(),
		},
		VMNames: []string{"vm1", "vm2"},
	}
	return p.Run()
}

// RunE8 sweeps region counts for the semantic checker, comparing the
// per-pair incremental mode against the single disjunctive query, and
// the hash-consing ablation.
func RunE8(w io.Writer) error {
	fmt.Fprintf(w, "%8s %10s %14s %14s %12s %12s\n",
		"regions", "pairs", "per-pair", "one-query", "sat-vars", "sat-clauses")
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
		regions := SyntheticRegions(n, true)
		sc := constraints.NewSemanticChecker()

		start := time.Now()
		collisions := sc.FindCollisions(regions, 32)
		perPair := time.Since(start)

		start = time.Now()
		_, any := sc.AnyCollision(regions, 32)
		oneQuery := time.Since(start)

		if len(collisions) == 0 || !any {
			return fmt.Errorf("n=%d: planted collision not found", n)
		}

		// measure encoding size of the one-shot query
		ctx := smt.NewContext()
		solver := smt.NewSolver(ctx)
		x := ctx.BVVar("x", 32)
		for _, r := range regions {
			solver.Assert(ctx.And(
				ctx.Ule(ctx.BVConst(32, r.Base), x),
				ctx.Ult(x, ctx.BVConst(32, r.Base+r.Size)),
			))
		}
		solver.Check()
		st := solver.Stats()
		pairs := n * (n - 1) / 2
		fmt.Fprintf(w, "%8d %10d %14s %14s %12d %12d\n",
			n, pairs, perPair.Round(time.Microsecond), oneQuery.Round(time.Microsecond),
			st.SAT.Vars, st.SAT.Clauses)
	}
	return nil
}

// RunE9 sweeps feature-model sizes for the SAT-backed analyses.
func RunE9(w io.Writer) error {
	fmt.Fprintf(w, "%10s %10s %12s %12s %14s\n",
		"features", "void", "void-time", "dead-time", "count100-time")
	for _, n := range []int{10, 30, 100, 300, 1000} {
		m := SyntheticFeatureModel(n, 42)
		start := time.Now()
		a := featmodel.NewAnalyzer(m)
		void := a.IsVoid()
		voidTime := time.Since(start)

		start = time.Now()
		dead := a.DeadFeatures()
		deadTime := time.Since(start)

		start = time.Now()
		count, _ := a.CountProducts(100)
		countTime := time.Since(start)

		fmt.Fprintf(w, "%10d %10v %12s %12s %14s  (dead=%d, count<=%d)\n",
			len(m.Names()), void, voidTime.Round(time.Microsecond),
			deadTime.Round(time.Microsecond), countTime.Round(time.Microsecond),
			len(dead), count)
	}
	return nil
}

// RunE10 prints the fault-detection matrix.
func RunE10(w io.Writer) error {
	matrix, err := DetectionMatrix()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-28s %10s %10s %8s %8s\n", "fault", "dtc-lint", "dt-schema", "llhsc", "bounded")
	for _, d := range matrix {
		fmt.Fprintf(w, "%-28s %10v %10v %8v %8v\n", d.Fault, d.DtcLint, d.Baseline, d.LLHSC, d.Bounded)
	}
	return nil
}

// RunE11 sweeps delta-chain length: application cost plus the cost of
// re-checking after every delta, incremental (shared solver, Push/Pop)
// versus from scratch.
func RunE11(w io.Writer) error {
	fmt.Fprintf(w, "%8s %12s %16s %16s\n", "deltas", "apply", "recheck-fresh", "recheck-incr")
	for _, k := range []int{4, 16, 64, 128} {
		coreTree, set, err := SyntheticDeltaChain(k)
		if err != nil {
			return err
		}
		cfg := featmodel.ConfigOf()

		start := time.Now()
		product, _, err := set.Apply(coreTree, cfg)
		if err != nil {
			return err
		}
		applyTime := time.Since(start)

		regions, err := addr.CollectRegions(product)
		if err != nil {
			return err
		}
		sort.Slice(regions, func(i, j int) bool { return regions[i].Base < regions[j].Base })

		// Simulated workflow: after each delta adds a region, the new
		// region is checked against all earlier ones. Both modes run
		// the same O(k²) pair queries; "fresh" pays solver construction
		// and re-blasting on every delta step, "incr" keeps one
		// long-lived solver with Push/Pop (the paper's Section VI
		// argument for incremental Z3 usage).
		start = time.Now()
		for i := 1; i < len(regions); i++ {
			freshRecheckStep(regions[:i], regions[i], 32)
		}
		fresh := time.Since(start)

		start = time.Now()
		incrementalRecheck(regions, 32)
		incr := time.Since(start)

		fmt.Fprintf(w, "%8d %12s %16s %16s\n", k,
			applyTime.Round(time.Microsecond), fresh.Round(time.Microsecond),
			incr.Round(time.Microsecond))
	}
	return nil
}

// freshRecheckStep checks one new region against all prior regions
// with a brand-new solver (no reuse across delta steps). Returns the
// number of collisions found.
func freshRecheckStep(prior []addr.Region, next addr.Region, width int) int {
	ctx := smt.NewContext()
	solver := smt.NewSolver(ctx)
	x := ctx.BVVar("x", width)
	inRegion := func(r addr.Region) *smt.Term {
		return ctx.And(
			ctx.Ule(ctx.BVConst(width, r.Base), x),
			ctx.Ult(x, ctx.BVConst(width, r.Base+r.Size)),
		)
	}
	collisions := 0
	for _, r := range prior {
		solver.Push()
		solver.Assert(inRegion(next))
		solver.Assert(inRegion(r))
		if solver.Check() == sat.Sat {
			collisions++
		}
		solver.Pop()
	}
	return collisions
}

// incrementalRecheck simulates re-checking after each delta with the
// long-lived IncrementalSemanticChecker. Returns the number of
// collisions found.
func incrementalRecheck(regions []addr.Region, width int) int {
	c := constraints.NewIncrementalSemanticChecker(width)
	// E11 measures solver reuse across deltas; with the word tier on, a
	// concrete region set never touches the solver and there would be
	// nothing to measure.
	c.DisableWord = true
	return len(c.AddAll(regions))
}

// RunE12 sweeps the number of VMs of a synthetic board through the full
// pipeline: allocation + syntactic + semantic checks for every VM plus
// the platform, and the Bao artifact generation. The board has as many
// CPUs (exclusive resources) and UARTs as VMs.
func RunE12(w io.Writer) error {
	fmt.Fprintf(w, "%6s %8s %10s %12s %14s\n", "vms", "cpus", "uarts", "pipeline", "ok")
	for _, k := range []int{2, 4, 8, 16} {
		pipeline, err := SyntheticProductLine(k, k, k)
		if err != nil {
			return err
		}
		start := time.Now()
		report, err := pipeline.Run()
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Fprintf(w, "%6d %8d %10d %12s %14v\n",
			k, k, k, elapsed.Round(time.Millisecond), report.OK())
		if !report.OK() {
			return fmt.Errorf("k=%d: unexpected violations: %v", k, report.AllViolations())
		}
	}
	// the infeasibility bound: one more VM than CPUs must be rejected
	pipeline, err := SyntheticProductLine(4, 4, 4)
	if err != nil {
		return err
	}
	alloc, err := constraints.NewAllocationChecker(pipeline.Model, 5)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "5 VMs over 4 CPUs feasible=%v (expected false)\n", alloc.Feasible())
	return nil
}
