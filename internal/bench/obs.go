package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"llhsc/internal/core"
	"llhsc/internal/obs"
)

// ObsPoint is one measured instrumentation mode of experiment E15.
type ObsPoint struct {
	Mode     string  `json:"mode"`     // off | metrics | trace | trace+metrics
	Millis   float64 `json:"millis"`   // best pipeline time in this mode
	Overhead float64 `json:"overhead"` // this time / the "off" baseline
}

// ObsResult is the JSON artifact of experiment E15 (BENCH_obs.json).
type ObsResult struct {
	VMs    int        `json:"vms"`
	Rounds int        `json:"rounds"`
	Points []ObsPoint `json:"points"`
}

// obsModes enumerates the instrumentation configurations E15 compares.
// "off" is the production fast path: the pipeline code is identical,
// but SpanFromContext returns nil (every span method short-circuits)
// and Metrics is nil (the stats snapshot is never exported to a
// registry). The acceptance bar is that "off" stays within noise of a
// hypothetical uninstrumented build — which it approximates by being
// the first, baseline row every other mode is normalized against.
var obsModes = []struct {
	name    string
	trace   bool
	metrics bool
}{
	{"off", false, false},
	{"metrics", false, true},
	{"trace", true, false},
	{"trace+metrics", true, true},
}

// MeasureObsOverhead runs the same synthetic product line with
// observability off and on, keeping the best of rounds runs per mode
// (the usual guard against scheduler noise). The first mode is the
// uninstrumented baseline; overheads are normalized against it.
func MeasureObsOverhead(vms, rounds int) (*ObsResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	res := &ObsResult{VMs: vms, Rounds: rounds}
	var baseline float64
	for _, mode := range obsModes {
		pipeline, err := HeavyProductLine(vms)
		if err != nil {
			return nil, err
		}
		var reg *obs.Registry
		if mode.metrics {
			reg = obs.NewRegistry()
			pipeline.Metrics = core.NewPipelineMetrics(reg)
		}
		best := 0.0
		for r := 0; r < rounds; r++ {
			ctx := context.Background()
			var root *obs.Span
			if mode.trace {
				root = obs.NewSpan("bench")
				ctx = obs.ContextWithSpan(ctx, root)
			}
			start := time.Now()
			report, err := pipeline.RunContext(ctx, core.Limits{Parallelism: 1})
			elapsed := time.Since(start).Seconds() * 1000
			root.End()
			if err != nil {
				return nil, fmt.Errorf("mode=%s: %w", mode.name, err)
			}
			if !report.OK() {
				return nil, fmt.Errorf("mode=%s: unexpected violations: %v",
					mode.name, report.AllViolations())
			}
			if mode.trace && len(root.PhaseSet()) < 2 {
				return nil, fmt.Errorf("mode=%s: trace produced no child spans", mode.name)
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		if baseline == 0 {
			baseline = best // the validated "off" baseline
		}
		res.Points = append(res.Points, ObsPoint{
			Mode:     mode.name,
			Millis:   best,
			Overhead: best / baseline,
		})
	}
	return res, nil
}

// RunE15 measures the observability overhead (experiment E15): the
// same pipeline with tracing and metrics off versus on.
func RunE15(w io.Writer) error {
	res, err := MeasureObsOverhead(6, 5)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %12s %10s   (%d VMs + platform, serial, best of %d)\n",
		"mode", "pipeline", "overhead", res.VMs, res.Rounds)
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-16s %10.1fms %9.3fx\n", p.Mode, p.Millis, p.Overhead)
	}
	return nil
}

// WriteObsJSON runs E15's measurement and writes the JSON artifact
// consumed by CI (BENCH_obs.json).
func WriteObsJSON(path string, vms int) error {
	res, err := MeasureObsOverhead(vms, 5)
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
