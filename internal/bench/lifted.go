package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"llhsc/internal/constraints"
	"llhsc/internal/featmodel"
)

// Experiment E16 measures family-based lifted checking (DESIGN.md §14)
// against the enumerative baseline on the synthetic product line,
// sweeping the optional-feature count. The OR group over the UARTs
// makes the valid-product count exponential in the UART count
// (cpus x (2^uarts - 1)), so the enumerative arm — derive every
// product, run every concrete family on each tree — grows with the
// line while the lifted arm runs one merged-tree solver session whose
// cost tracks the variability, not the product count. Both arms must
// agree on the verdict at every sweep point; the synthetic line is
// clean by construction, so agreement means both report zero findings.

// LiftedPoint is one sweep point: the whole product line at a given
// feature count, measured under both arms.
type LiftedPoint struct {
	// Features is the optional-feature count driving the sweep (the
	// UART OR group; the CPU XOR group stays fixed).
	Features int `json:"features"`
	// Products is the number of valid configurations the enumerative
	// arm derives and checks.
	Products int `json:"products"`
	// EnumMillis is the enumerative arm's wall time: every product
	// applied and run through the four concrete checker families.
	EnumMillis float64 `json:"enum_millis"`
	// LiftedMillis is the lifted arm's wall time: one lift, one
	// incremental solver session for the whole line.
	LiftedMillis float64 `json:"lifted_millis"`
	// LiftedQueries / LiftedPruned are the session's reachability
	// query and prune counters.
	LiftedQueries int `json:"lifted_queries"`
	LiftedPruned  int `json:"lifted_pruned"`
	// EnumViolations / LiftedFindings are the two arms' finding
	// counts; VerdictsEqual is the acceptance bit (clean iff clean).
	EnumViolations int  `json:"enum_violations"`
	LiftedFindings int  `json:"lifted_findings"`
	VerdictsEqual  bool `json:"verdicts_equal"`
}

// LiftedResult is the JSON artifact of experiment E16
// (BENCH_lifted.json).
type LiftedResult struct {
	Points []LiftedPoint `json:"points"`
	// Speedup is enumerative wall time / lifted wall time at the
	// largest sweep point — the acceptance metric (> 1).
	Speedup float64 `json:"speedup,omitempty"`
}

// measureLiftedPoint runs both arms on the synthetic line with the
// given UART count, best of rounds.
func measureLiftedPoint(cpus, uarts, rounds int) (LiftedPoint, error) {
	point := LiftedPoint{Features: uarts}
	pipeline, err := SyntheticProductLine(cpus, uarts, 1)
	if err != nil {
		return point, err
	}
	products, complete := featmodel.NewAnalyzer(pipeline.Model).EnumerateProducts(0)
	if !complete {
		return point, fmt.Errorf("bench: product enumeration incomplete at %d uarts", uarts)
	}
	point.Products = len(products)
	ctx := context.Background()

	// ---- enumerative arm: every product, every concrete family ----
	for r := 0; r < rounds; r++ {
		violations := 0
		start := time.Now()
		for _, p := range products {
			cfg := featmodel.ConfigOf(p...)
			tree, _, err := pipeline.Deltas.Apply(pipeline.Core, cfg)
			if err != nil {
				return point, fmt.Errorf("bench: apply %v: %w", p, err)
			}
			syn, err := constraints.NewSyntacticChecker(pipeline.Schemas).CheckContext(ctx, tree)
			if err != nil {
				return point, err
			}
			_, sem, err := constraints.NewSemanticChecker().CheckContext(ctx, tree)
			if err != nil {
				return point, err
			}
			irq, err := constraints.InterruptChecker{}.CheckContext(ctx, tree)
			if err != nil {
				return point, err
			}
			mem, err := constraints.MemReserveChecker{}.CheckContext(ctx, tree)
			if err != nil {
				return point, err
			}
			violations += len(syn) + len(sem) + len(irq) + len(mem)
		}
		elapsed := time.Since(start).Seconds() * 1000
		if r == 0 || elapsed < point.EnumMillis {
			point.EnumMillis = elapsed
		}
		point.EnumViolations = violations
	}

	// ---- lifted arm: one merged tree, one solver session ----
	for r := 0; r < rounds; r++ {
		start := time.Now()
		lt, err := pipeline.Deltas.Lift(pipeline.Core)
		if err != nil {
			return point, fmt.Errorf("bench: lift: %w", err)
		}
		lc := constraints.NewLiftedChecker(pipeline.Model, pipeline.Schemas)
		findings, err := lc.CheckContext(ctx, lt)
		elapsed := time.Since(start).Seconds() * 1000
		if err != nil {
			return point, fmt.Errorf("bench: lifted check: %w", err)
		}
		st := lc.LastStats()
		if r == 0 || elapsed < point.LiftedMillis {
			point.LiftedMillis = elapsed
			point.LiftedQueries = st.Queries
			point.LiftedPruned = st.Pruned
		}
		point.LiftedFindings = len(findings)
	}

	point.VerdictsEqual = (point.EnumViolations == 0) == (point.LiftedFindings == 0)
	return point, nil
}

// MeasureLifted runs experiment E16: the UART sweep at a fixed CPU
// count, best of rounds per point.
func MeasureLifted(cpus int, uartSweep []int, rounds int) (*LiftedResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	res := &LiftedResult{}
	for _, uarts := range uartSweep {
		point, err := measureLiftedPoint(cpus, uarts, rounds)
		if err != nil {
			return nil, err
		}
		if !point.VerdictsEqual {
			return nil, fmt.Errorf(
				"bench: verdicts diverge at %d features: enumerative %d violation(s), lifted %d finding(s)",
				point.Features, point.EnumViolations, point.LiftedFindings)
		}
		res.Points = append(res.Points, point)
	}
	if n := len(res.Points); n > 0 && res.Points[n-1].LiftedMillis > 0 {
		res.Speedup = res.Points[n-1].EnumMillis / res.Points[n-1].LiftedMillis
	}
	return res, nil
}

// RunE16 runs the lifted-checking experiment and prints the sweep
// table.
func RunE16(w io.Writer) error {
	res, err := MeasureLifted(2, []int{2, 4, 6, 8}, 2)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "family-based lifted checking vs product enumeration (2 CPUs, UART sweep):")
	fmt.Fprintf(w, "%9s %9s %12s %12s %9s %8s %6s\n",
		"features", "products", "enumerate", "lifted", "queries", "pruned", "equal")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%9d %9d %10.1fms %10.1fms %9d %8d %6v\n",
			p.Features, p.Products, p.EnumMillis, p.LiftedMillis,
			p.LiftedQueries, p.LiftedPruned, p.VerdictsEqual)
	}
	fmt.Fprintf(w, "largest point: lifted %.1fx faster than enumerating %d products\n",
		res.Speedup, res.Points[len(res.Points)-1].Products)
	return nil
}

// WriteLiftedJSON runs E16's measurement at artifact scale and writes
// BENCH_lifted.json for CI. The gate is exact verdict agreement at
// every sweep point (MeasureLifted enforces it) plus a real speedup at
// the largest one — 510 products against one solver session leaves a
// wide timing margin.
func WriteLiftedJSON(path string) error {
	res, err := MeasureLifted(2, []int{2, 4, 6, 8}, 3)
	if err != nil {
		return err
	}
	if res.Speedup <= 1 {
		return fmt.Errorf("bench: lifted checking not faster than enumeration at the largest point (%.2fx)", res.Speedup)
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
