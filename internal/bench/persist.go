// Experiment E17: warm-restart hit-rate recovery of the persistent
// check-cache tier. The claim under test is operational: a server
// restart (deploy, crash, reschedule) with -cache-dir set should NOT
// re-pay the SMT solving for trees it already checked — the disk tier
// restores the hit rate a long-lived process had earned in memory.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"llhsc/internal/checkcache"
	"llhsc/internal/checkcache/persist"
	"llhsc/internal/core"
)

// PersistResult is the JSON artifact of experiment E17
// (BENCH_persist.json). Cold is the first-ever run (every tree
// computed, written through to disk); Warm is the same run after a
// simulated process restart — empty memory cache, reopened store.
type PersistResult struct {
	VMs    int `json:"vms"`
	Rounds int `json:"rounds"`

	ColdMillis float64 `json:"coldMillis"`
	WarmMillis float64 `json:"warmMillis"`
	// Speedup is coldMillis / warmMillis: how much of the check cost a
	// restart avoids by recovering results from disk.
	Speedup float64 `json:"speedup"`

	// WarmHitRate is the restarted process's check-cache hit rate on
	// its first run (hits / lookups); 1.0 means full recovery.
	WarmHitRate float64 `json:"warmHitRate"`
	// DiskHits counts warm-run lookups answered by the persistent tier
	// (memory was empty, so every hit is a disk hit).
	DiskHits uint64 `json:"diskHits"`
	// RecoveredEntries is how many records the open-time recovery scan
	// re-indexed from the segment files.
	RecoveredEntries int `json:"recoveredEntries"`
	// StoreBytes is the on-disk footprint after the cold run.
	StoreBytes int64 `json:"storeBytes"`
}

// MeasurePersist measures warm-restart recovery: a cold run populates
// a fresh store, then the store is closed and reopened under an empty
// memory cache (the restart) and the same product line is re-checked.
// Timings keep the best of rounds runs; the recovery stats come from
// a single cold/warm cycle per round (the store directory is recreated
// each round so every cold run is genuinely cold).
func MeasurePersist(vms, rounds int) (*PersistResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	res := &PersistResult{VMs: vms, Rounds: rounds}
	for r := 0; r < rounds; r++ {
		dir, err := os.MkdirTemp("", "llhsc-bench-persist-*")
		if err != nil {
			return nil, err
		}
		cold, warm, err := persistCycle(vms, dir, res)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		if res.ColdMillis == 0 || cold < res.ColdMillis {
			res.ColdMillis = cold
		}
		if res.WarmMillis == 0 || warm < res.WarmMillis {
			res.WarmMillis = warm
		}
	}
	if res.WarmMillis > 0 {
		res.Speedup = res.ColdMillis / res.WarmMillis
	}
	return res, nil
}

// persistCycle runs one cold run + restart + warm run in dir and
// returns the two wall-clock times in milliseconds. The recovery stats
// (hit rate, disk hits, recovered entries) are written into res; they
// are identical across rounds by construction.
func persistCycle(vms int, dir string, res *PersistResult) (coldMs, warmMs float64, err error) {
	runOnce := func(cache *checkcache.Cache) (float64, *core.RunStats, error) {
		pipeline, err := HeavyProductLine(vms)
		if err != nil {
			return 0, nil, err
		}
		pipeline.Cache = cache
		start := time.Now()
		report, err := pipeline.RunContext(context.Background(), core.Limits{Parallelism: 1})
		elapsed := time.Since(start).Seconds() * 1000
		if err != nil {
			return 0, nil, err
		}
		if !report.OK() {
			return 0, nil, fmt.Errorf("unexpected violations: %v", report.AllViolations())
		}
		return elapsed, &report.Stats, nil
	}

	// Cold: fresh store, empty memory — everything is computed and
	// written through.
	store, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		return 0, 0, err
	}
	cache := checkcache.New(vms * 4)
	cache.AttachPersist(store, nil)
	coldMs, _, err = runOnce(cache)
	if err != nil {
		store.Close()
		return 0, 0, err
	}
	res.StoreBytes = store.Stats().Bytes
	if err := store.Close(); err != nil {
		return 0, 0, err
	}

	// Restart: a brand-new process state pointed at the same directory.
	store2, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		return 0, 0, err
	}
	defer store2.Close()
	res.RecoveredEntries = store2.Len()
	cache2 := checkcache.New(vms * 4)
	cache2.AttachPersist(store2, nil)
	warmMs, warmStats, err := runOnce(cache2)
	if err != nil {
		return 0, 0, err
	}
	if lookups := warmStats.CacheHits + warmStats.CacheMisses; lookups > 0 {
		res.WarmHitRate = float64(warmStats.CacheHits) / float64(lookups)
	}
	res.DiskHits = cache2.Tier().DiskHits
	return coldMs, warmMs, nil
}

// RunE17 prints the warm-restart recovery measurement (experiment E17).
func RunE17(w io.Writer) error {
	res, err := MeasurePersist(6, 3)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "persistent cache tier, %d VMs + platform (best of %d)\n", res.VMs, res.Rounds)
	fmt.Fprintf(w, "%-24s %10.1fms\n", "cold run (compute all)", res.ColdMillis)
	fmt.Fprintf(w, "%-24s %10.1fms  (%.1fx)\n", "warm restart (from disk)", res.WarmMillis, res.Speedup)
	fmt.Fprintf(w, "%-24s %10.3f\n", "warm hit rate", res.WarmHitRate)
	fmt.Fprintf(w, "%-24s %10d (disk hits %d, %d bytes on disk)\n",
		"recovered entries", res.RecoveredEntries, res.DiskHits, res.StoreBytes)
	return nil
}

// WritePersistJSON runs E17's measurement and writes the JSON artifact
// consumed by CI (BENCH_persist.json).
func WritePersistJSON(path string, vms int) error {
	res, err := MeasurePersist(vms, 3)
	if err != nil {
		return err
	}
	if res.WarmHitRate < 1 {
		return fmt.Errorf("warm restart recovered only %.3f of the hit rate", res.WarmHitRate)
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
