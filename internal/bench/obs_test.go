package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"llhsc/internal/core"
	"llhsc/internal/obs"
)

func TestMeasureObsOverhead(t *testing.T) {
	res, err := MeasureObsOverhead(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(obsModes) {
		t.Fatalf("points = %d, want %d", len(res.Points), len(obsModes))
	}
	if res.Points[0].Mode != "off" || res.Points[0].Overhead != 1.0 {
		t.Errorf("first point must be the off baseline with overhead 1.0, got %+v", res.Points[0])
	}
	for _, p := range res.Points {
		if p.Millis <= 0 {
			t.Errorf("mode %s measured %vms", p.Mode, p.Millis)
		}
	}
}

func TestRunE15PrintsAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("E15 runs the heavy product line several times")
	}
	var buf bytes.Buffer
	if err := RunE15(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, mode := range obsModes {
		if !strings.Contains(out, mode.name) {
			t.Errorf("E15 output missing mode %q:\n%s", mode.name, out)
		}
	}
}

// benchmarkPipeline runs the heavy product line once per iteration,
// optionally instrumented. The "off" case is the acceptance bar: the
// nil-span fast path and nil Metrics must keep the instrumented binary
// within noise of an uninstrumented one.
func benchmarkPipeline(b *testing.B, trace, metrics bool) {
	pipeline, err := HeavyProductLine(2)
	if err != nil {
		b.Fatal(err)
	}
	if metrics {
		pipeline.Metrics = core.NewPipelineMetrics(obs.NewRegistry())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		var root *obs.Span
		if trace {
			root = obs.NewSpan("bench")
			ctx = obs.ContextWithSpan(ctx, root)
		}
		report, err := pipeline.RunContext(ctx, core.Limits{Parallelism: 1})
		root.End()
		if err != nil {
			b.Fatal(err)
		}
		if !report.OK() {
			b.Fatalf("violations: %v", report.AllViolations())
		}
	}
}

func BenchmarkObsOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchmarkPipeline(b, false, false) })
	b.Run("metrics", func(b *testing.B) { benchmarkPipeline(b, false, true) })
	b.Run("trace", func(b *testing.B) { benchmarkPipeline(b, true, false) })
	b.Run("trace+metrics", func(b *testing.B) { benchmarkPipeline(b, true, true) })
}
