package bench

import (
	"io"
	"testing"
)

// Perf-path smoke benchmarks: CI runs these with -benchtime=1x so a
// build or wiring break anywhere on the E5/E12 measurement paths (the
// ground truth for the word-tier and zero-alloc work) fails fast,
// without paying for a full measurement run.

func BenchmarkE5AddressClash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := RunE5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := RunE12(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
