package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"time"

	"llhsc/internal/constraints"
	"llhsc/internal/sat"
)

// SemanticStrategies returns the strategies E14 compares, baseline
// first.
func SemanticStrategies() []constraints.SemanticStrategy {
	return []constraints.SemanticStrategy{
		constraints.StrategyPairwise,
		constraints.StrategyAssume,
		constraints.StrategySweep,
		constraints.StrategyWord,
		constraints.StrategyWordOff,
	}
}

// SemanticPoint is one (strategy, region count) measurement of
// experiment E14.
type SemanticPoint struct {
	Strategy string `json:"strategy"`
	Regions  int    `json:"regions"`
	// Pairs is the number of candidate pairs the strategy submits to
	// the solver — the strategy's required work, independent of any
	// wall-clock truncation.
	Pairs int `json:"pairs"`
	// SolverCalls counts the SMT checks actually made (verdicts plus
	// witness extraction); less than Pairs when Truncated.
	SolverCalls int     `json:"solver_calls"`
	Collisions  int     `json:"collisions"`
	Millis      float64 `json:"millis"`
	// Truncated marks a point the per-point wall budget cut short:
	// Millis and SolverCalls then describe a lower bound, not a
	// completed run. Never set for the sweep strategy in practice.
	Truncated bool `json:"truncated,omitempty"`
}

// SemanticResult is the JSON artifact of experiment E14
// (BENCH_semantic.json).
type SemanticResult struct {
	Sizes  []int           `json:"sizes"`
	Rounds int             `json:"rounds"`
	Points []SemanticPoint `json:"points"`
	// ReductionAt256 is pairwise required solver work / sweep solver
	// calls at 256 regions (the acceptance metric: >= 5x).
	ReductionAt256 float64 `json:"solver_call_reduction_at_256,omitempty"`
	// SpeedupAt256 is pairwise wall time / sweep wall time at 256
	// regions (>= 1 even when the pairwise point was truncated, since
	// truncation only lowers the pairwise time).
	SpeedupAt256 float64 `json:"speedup_at_256,omitempty"`
}

// MeasureSemantic times every strategy of SemanticStrategies over
// synthetic region sets (one planted collision each), best of rounds.
// pointBudget bounds each single run's wall clock (0 = unlimited): the
// quadratic baselines are measured honestly up to the budget and marked
// Truncated instead of stalling the harness at large n. Strategies that
// complete must agree on the exact collision list — verdicts and
// witnesses — or an error is returned (the cross-validation invariant
// of DESIGN.md §9).
func MeasureSemantic(sizes []int, rounds int, pointBudget time.Duration) (*SemanticResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	res := &SemanticResult{Sizes: append([]int(nil), sizes...), Rounds: rounds}
	const width = 32
	for _, n := range sizes {
		regions := SyntheticRegions(n, true)
		var wantCollisions []constraints.Collision
		for _, strat := range SemanticStrategies() {
			point := SemanticPoint{Strategy: strat.String(), Regions: n}
			var collisions []constraints.Collision
			for r := 0; r < rounds; r++ {
				checker := constraints.NewSemanticChecker()
				checker.Strategy = strat
				if pointBudget > 0 {
					checker.Budget = sat.Budget{Deadline: time.Now().Add(pointBudget)}
				}
				start := time.Now()
				out, err := checker.FindCollisionsContext(context.Background(), regions, width)
				elapsed := time.Since(start).Seconds() * 1000
				stats := checker.LastStats()
				if r == 0 || elapsed < point.Millis {
					point.Millis = elapsed
					point.Pairs = stats.Pairs
					point.SolverCalls = stats.SolverCalls
					point.Collisions = len(out)
					point.Truncated = err != nil
					collisions = out
				}
				if err != nil {
					break // further rounds would just re-spend the full budget
				}
			}
			if !point.Truncated {
				if wantCollisions == nil {
					wantCollisions = collisions
				} else if !reflect.DeepEqual(collisions, wantCollisions) {
					return nil, fmt.Errorf(
						"bench: strategy %s disagrees at n=%d: got %v, want %v",
						strat, n, collisions, wantCollisions)
				}
			}
			res.Points = append(res.Points, point)
		}
	}
	res.fillDerived()
	return res, nil
}

// fillDerived computes the 256-region acceptance metrics when both
// endpoints were measured.
func (res *SemanticResult) fillDerived() {
	var pw, sw *SemanticPoint
	for i := range res.Points {
		p := &res.Points[i]
		if p.Regions != 256 {
			continue
		}
		switch p.Strategy {
		case constraints.StrategyPairwise.String():
			pw = p
		case constraints.StrategySweep.String():
			sw = p
		}
	}
	if pw == nil || sw == nil || sw.Truncated || sw.SolverCalls == 0 || sw.Millis == 0 {
		return
	}
	res.ReductionAt256 = float64(pw.Pairs) / float64(sw.SolverCalls)
	res.SpeedupAt256 = pw.Millis / sw.Millis
}

// RunE14 compares the semantic-check strategies (experiment E14) and
// prints the scaling table. The quadratic baselines get a 10s wall
// budget per point so the experiment stays bounded on slow machines;
// truncated points are marked with '>'.
func RunE14(w io.Writer) error {
	res, err := MeasureSemantic([]int{64, 256}, 1, 10*time.Second)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %10s %10s %8s %12s   (1 planted collision per set)\n",
		"regions", "strategy", "pairs", "solves", "time")
	for _, p := range res.Points {
		mark := ""
		if p.Truncated {
			mark = ">"
		}
		fmt.Fprintf(w, "%8d %10s %10d %8d %1s%10.1fms\n",
			p.Regions, p.Strategy, p.Pairs, p.SolverCalls, mark, p.Millis)
	}
	if res.ReductionAt256 > 0 {
		fmt.Fprintf(w, "at 256 regions: %.0fx fewer solver calls, %.1fx faster (sweep vs pairwise)\n",
			res.ReductionAt256, res.SpeedupAt256)
	}
	return nil
}

// WriteSemanticJSON runs E14's measurement — including the 1024-region
// point of the issue's scaling target — and writes the JSON artifact
// consumed by CI (BENCH_semantic.json).
func WriteSemanticJSON(path string) error {
	res, err := MeasureSemantic([]int{64, 256, 1024}, 3, 15*time.Second)
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
