package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"time"

	"llhsc/internal/addr"
	"llhsc/internal/conform"
	"llhsc/internal/constraints"
	"llhsc/internal/featmodel"
	"llhsc/internal/smt"
)

// Experiment E18 measures the word-level decision tier (DESIGN.md §13)
// against the bit-blaster it replaces, on three axes:
//
//   - a concrete-address region corpus (the near-overlapping geometry
//     of the conform generator), word tier vs the word-off control arm
//     — the acceptance corpus: the word arm must make 0 solver calls;
//   - the E12 full-pipeline workload under the default (word) strategy
//     vs the pre-word-tier baselines;
//   - a term-pair ladder sweep over symbolic-cell count, word decider
//     vs BlastTermPair, showing where interval propagation stops being
//     conclusive and the blast fallback takes over.

// WordRegionPoint is one strategy's measurement on the concrete region
// corpus.
type WordRegionPoint struct {
	Strategy    string  `json:"strategy"`
	Regions     int     `json:"regions"`
	Collisions  int     `json:"collisions"`
	SolverCalls int     `json:"solver_calls"`
	WordDecided int     `json:"word_decided"`
	Millis      float64 `json:"millis"`
}

// WordPipelinePoint is one strategy's full-pipeline (E12 workload)
// measurement.
type WordPipelinePoint struct {
	Strategy string `json:"strategy"`
	VMs      int    `json:"vms"`
	// SemanticSolverCalls is the semantic family's SMT check count for
	// the whole run — 0 under the word tier on a concrete corpus.
	SemanticSolverCalls int     `json:"semantic_solver_calls"`
	WordDecided         int     `json:"word_decided"`
	Millis              float64 `json:"millis"`
	OK                  bool    `json:"ok"`
}

// WordTermPoint compares the word decider against the bit-blaster on
// term pairs with a given number of symbolic cells per pair.
type WordTermPoint struct {
	Cells int `json:"cells"`
	Pairs int `json:"pairs"`
	// Conclusive counts pairs the word tier decided; the remainder fell
	// through to the blaster.
	Conclusive  int     `json:"conclusive"`
	WordMillis  float64 `json:"word_millis"`
	BlastMillis float64 `json:"blast_millis"`
}

// WordResult is the JSON artifact of experiment E18 (BENCH_word.json).
type WordResult struct {
	RegionCorpus []WordRegionPoint   `json:"region_corpus"`
	Pipeline     []WordPipelinePoint `json:"pipeline"`
	TermLadder   []WordTermPoint     `json:"term_ladder"`
	// RegionSpeedup is word-off wall time / word wall time on the
	// region corpus (same sweep, same verdicts; the difference is pure
	// solver work).
	RegionSpeedup float64 `json:"region_speedup,omitempty"`
	// PipelineSpeedup is the pairwise-baseline wall time / word wall
	// time on the E12 workload (the acceptance metric: >= 5x).
	PipelineSpeedup float64 `json:"pipeline_speedup,omitempty"`
	// WordSolverCalls is the word arm's total semantic solver calls
	// across both corpora — the acceptance bar is exactly 0.
	WordSolverCalls int `json:"word_solver_calls"`
}

// wordRegionCorpus flattens the conform generator's near-overlapping
// pairs into one collision-rich, fully concrete region set.
func wordRegionCorpus(pairs int) []addr.Region {
	out := make([]addr.Region, 0, 2*pairs)
	for _, p := range conform.NearRegionPairs(18, pairs, 32) {
		out = append(out, p[0], p[1])
	}
	return out
}

// MeasureWord runs experiment E18: regionPairs near-overlapping pairs
// for the region corpus, vms VMs (each keeping a 24-UART bank, so
// region pairs dominate the quadratic baseline) for the pipeline
// workload, termPairs term pairs per ladder point, best of rounds.
func MeasureWord(regionPairs, vms, termPairs, rounds int) (*WordResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	res := &WordResult{}
	const width = 32

	// ---- concrete region corpus: word vs word-off ----
	regions := wordRegionCorpus(regionPairs)
	var wantCollisions []constraints.Collision
	for _, strat := range []constraints.SemanticStrategy{constraints.StrategyWord, constraints.StrategyWordOff} {
		point := WordRegionPoint{Strategy: strat.String(), Regions: len(regions)}
		var collisions []constraints.Collision
		for r := 0; r < rounds; r++ {
			checker := constraints.NewSemanticChecker()
			checker.Strategy = strat
			start := time.Now()
			out, err := checker.FindCollisionsContext(context.Background(), regions, width)
			elapsed := time.Since(start).Seconds() * 1000
			if err != nil {
				return nil, fmt.Errorf("bench: %s on region corpus: %w", strat, err)
			}
			st := checker.LastStats()
			if r == 0 || elapsed < point.Millis {
				point.Millis = elapsed
				point.SolverCalls = st.SolverCalls
				point.WordDecided = st.WordDecided
				point.Collisions = len(out)
				collisions = out
			}
		}
		if wantCollisions == nil {
			wantCollisions = collisions
		} else if !reflect.DeepEqual(collisions, wantCollisions) {
			return nil, fmt.Errorf("bench: %s disagrees with word tier on the region corpus", strat)
		}
		if strat == constraints.StrategyWord {
			res.WordSolverCalls += point.SolverCalls
		}
		res.RegionCorpus = append(res.RegionCorpus, point)
	}
	if res.RegionCorpus[0].Millis > 0 {
		res.RegionSpeedup = res.RegionCorpus[1].Millis / res.RegionCorpus[0].Millis
	}

	// ---- E12 full-pipeline workload: word vs the baselines ----
	for _, strat := range []constraints.SemanticStrategy{
		constraints.StrategyWord, constraints.StrategyWordOff, constraints.StrategyPairwise,
	} {
		point := WordPipelinePoint{Strategy: strat.String(), VMs: vms}
		for r := 0; r < rounds; r++ {
			const uarts = 24
			pipeline, err := SyntheticProductLine(vms, uarts, vms)
			if err != nil {
				return nil, err
			}
			// E12's stock configs keep one UART per VM; E18 wants
			// region-heavy concrete trees, so every VM keeps the whole
			// UART bank (valid under the or-group) and the pairwise
			// baseline pays one solve per region pair.
			sel := []string{"BigBoard", "memory", "cpus", "", "uarts"}
			for i := 0; i < uarts; i++ {
				sel = append(sel, fmt.Sprintf("uart%d", i))
			}
			for k := range pipeline.VMConfigs {
				sel[3] = fmt.Sprintf("cpu@%d", k)
				pipeline.VMConfigs[k] = featmodel.ConfigOf(sel...)
			}
			pipeline.SemanticStrategy = strat
			start := time.Now()
			report, err := pipeline.Run()
			elapsed := time.Since(start).Seconds() * 1000
			if err != nil {
				return nil, fmt.Errorf("bench: pipeline under %s: %w", strat, err)
			}
			sem := report.Stats.Families["semantic"]
			if r == 0 || elapsed < point.Millis {
				point.Millis = elapsed
				point.SemanticSolverCalls = sem.SolverCalls
				point.WordDecided = sem.WordDecided
				point.OK = report.OK()
			}
		}
		if strat == constraints.StrategyWord {
			res.WordSolverCalls += point.SemanticSolverCalls
		}
		res.Pipeline = append(res.Pipeline, point)
	}
	if res.Pipeline[0].Millis > 0 {
		res.PipelineSpeedup = res.Pipeline[2].Millis / res.Pipeline[0].Millis
	}

	// ---- term ladder: conclusiveness and cost vs symbolic cells ----
	for _, cells := range []int{0, 1, 2, 4} {
		point, err := measureTermLadder(cells, termPairs, width)
		if err != nil {
			return nil, err
		}
		res.TermLadder = append(res.TermLadder, point)
	}
	return res, nil
}

// measureTermLadder times the word decider and the blast oracle on
// termPairs region pairs whose bases carry the given number of
// symbolic cells (cell i adds a [0, 7] slack variable to the base).
func measureTermLadder(cells, termPairs, width int) (WordTermPoint, error) {
	point := WordTermPoint{Cells: cells, Pairs: termPairs}
	pairs := conform.NearRegionPairs(int64(100+cells), termPairs, width)
	for i, p := range pairs {
		sctx := smt.NewContext()
		env := smt.RangeEnv{}
		baseA := liftCells(sctx, env, fmt.Sprintf("p%da", i), p[0].Base, width, cells)
		sizeA := sctx.BVConst(width, p[0].Size)
		baseB := liftCells(sctx, env, fmt.Sprintf("p%db", i), p[1].Base, width, cells)
		sizeB := sctx.BVConst(width, p[1].Size)

		start := time.Now()
		verdict, wordWitness := constraints.DecideTermPair(env, width, baseA, sizeA, baseB, sizeB)
		point.WordMillis += time.Since(start).Seconds() * 1000
		if verdict != constraints.WordInconclusive {
			point.Conclusive++
		}

		start = time.Now()
		overlap, blastWitness, err := constraints.BlastTermPair(
			context.Background(), sctx, env, width, baseA, sizeA, baseB, sizeB)
		point.BlastMillis += time.Since(start).Seconds() * 1000
		if err != nil {
			return point, fmt.Errorf("bench: blast oracle (cells=%d pair %d): %w", cells, i, err)
		}
		switch verdict {
		case constraints.WordOverlap:
			if !overlap || wordWitness != blastWitness {
				return point, fmt.Errorf(
					"bench: word tier disagrees with blaster (cells=%d pair %d): word (%v, %#x), blast (%v, %#x)",
					cells, i, verdict, wordWitness, overlap, blastWitness)
			}
		case constraints.WordDisjoint:
			if overlap {
				return point, fmt.Errorf(
					"bench: word tier says disjoint, blaster finds %#x (cells=%d pair %d)",
					blastWitness, cells, i)
			}
		}
	}
	return point, nil
}

// liftCells builds base + c0 + … + c(k−1) with each cell bounded to
// [0, 7], keeping the pair affine and near-overlapping.
func liftCells(sctx *smt.Context, env smt.RangeEnv, prefix string, base uint64, width, cells int) *smt.Term {
	mask := uint64(1)<<uint(width) - 1
	if width >= 64 {
		mask = ^uint64(0)
	}
	t := sctx.BVConst(width, base&(mask>>1)) // headroom so the sum cannot wrap
	for c := 0; c < cells; c++ {
		name := fmt.Sprintf("%s%d", prefix, c)
		cell := sctx.BVVar(name, width)
		env[name] = smt.Interval{Lo: 0, Hi: 7}
		t = sctx.Add(t, cell)
	}
	return t
}

// RunE18 runs the word-tier experiment and prints the three tables.
func RunE18(w io.Writer) error {
	res, err := MeasureWord(128, 8, 24, 2)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "concrete region corpus (%d regions, near-overlapping):\n", res.RegionCorpus[0].Regions)
	fmt.Fprintf(w, "%10s %12s %8s %12s %12s\n", "strategy", "collisions", "solves", "word-decided", "time")
	for _, p := range res.RegionCorpus {
		fmt.Fprintf(w, "%10s %12d %8d %12d %10.1fms\n",
			p.Strategy, p.Collisions, p.SolverCalls, p.WordDecided, p.Millis)
	}
	fmt.Fprintf(w, "word tier: %.1fx faster than word-off, %d solver calls\n\n",
		res.RegionSpeedup, res.RegionCorpus[0].SolverCalls)

	fmt.Fprintf(w, "full pipeline (E12 workload, %d VMs):\n", res.Pipeline[0].VMs)
	fmt.Fprintf(w, "%10s %10s %12s %12s %6s\n", "strategy", "solves", "word-decided", "time", "ok")
	for _, p := range res.Pipeline {
		fmt.Fprintf(w, "%10s %10d %12d %10.1fms %6v\n",
			p.Strategy, p.SemanticSolverCalls, p.WordDecided, p.Millis, p.OK)
	}
	fmt.Fprintf(w, "word tier: %.1fx faster than the pairwise baseline\n\n", res.PipelineSpeedup)

	fmt.Fprintf(w, "term ladder (%d pairs per point):\n", res.TermLadder[0].Pairs)
	fmt.Fprintf(w, "%6s %12s %12s %12s\n", "cells", "conclusive", "word", "blast")
	for _, p := range res.TermLadder {
		fmt.Fprintf(w, "%6d %9d/%2d %10.2fms %10.2fms\n",
			p.Cells, p.Conclusive, p.Pairs, p.WordMillis, p.BlastMillis)
	}
	if res.WordSolverCalls != 0 {
		return fmt.Errorf("bench: word tier made %d solver calls on the concrete corpora, want 0", res.WordSolverCalls)
	}
	return nil
}

// WriteWordJSON runs E18's measurement at artifact scale and writes
// BENCH_word.json for CI.
func WriteWordJSON(path string) error {
	res, err := MeasureWord(256, 8, 32, 3)
	if err != nil {
		return err
	}
	if res.WordSolverCalls != 0 {
		return fmt.Errorf("bench: word tier made %d solver calls on the concrete corpora, want 0", res.WordSolverCalls)
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
