// Experiment E19: deep-diagnostics overhead. The slow-query
// instrumentation (DESIGN.md §15) hooks every semantic pair decision
// and lifted reachability query; E19 measures what that observation
// costs relative to the uninstrumented pipeline, in three modes:
//
//   - off          — SlowQuery nil, so the checkers' OnQuery hooks stay
//     nil and the decision loops keep their zero-allocation path (the
//     production default; the E5 alloc-gate test pins this).
//   - observe      — every query builds a QueryRecord and is counted,
//     but the threshold is unreachable, so nothing serializes (a
//     deployment with -slow-query-ms set but no slow queries).
//   - observe+log  — threshold 0: every query additionally marshals
//     and writes a JSON log line (the worst case, every query "slow").
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"llhsc/internal/core"
	"llhsc/internal/obs"
)

// DeepObsPoint is one measured mode of experiment E19.
type DeepObsPoint struct {
	Mode     string  `json:"mode"`     // off | observe | observe+log
	Millis   float64 `json:"millis"`   // best pipeline time in this mode
	Overhead float64 `json:"overhead"` // this time / the "off" baseline
	// Queries is how many solver-level decisions the slow-query log
	// observed across the mode's rounds (0 in "off" mode: the hooks
	// are nil).
	Queries uint64 `json:"queries"`
}

// DeepObsResult is the JSON artifact of experiment E19
// (BENCH_obsdeep.json).
type DeepObsResult struct {
	VMs    int            `json:"vms"`
	Rounds int            `json:"rounds"`
	Points []DeepObsPoint `json:"points"`
}

// deepObsModes enumerates E19's instrumentation ladder. newLog returns
// the slow-query log to install (nil = hooks stay nil entirely).
var deepObsModes = []struct {
	name   string
	newLog func() *obs.SlowQueryLog
}{
	{"off", func() *obs.SlowQueryLog { return nil }},
	{"observe", func() *obs.SlowQueryLog { return obs.NewSlowQueryLog(nil, math.MaxFloat64) }},
	{"observe+log", func() *obs.SlowQueryLog { return obs.NewSlowQueryLog(io.Discard, 0) }},
}

// MeasureDeepObsOverhead runs the same synthetic product line with the
// slow-query instrumentation off and on, keeping the best of rounds
// runs per mode. The first mode is the uninstrumented baseline every
// other mode is normalized against.
func MeasureDeepObsOverhead(vms, rounds int) (*DeepObsResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	res := &DeepObsResult{VMs: vms, Rounds: rounds}
	var baseline float64
	for _, mode := range deepObsModes {
		pipeline, err := HeavyProductLine(vms)
		if err != nil {
			return nil, err
		}
		log := mode.newLog()
		pipeline.SlowQuery = log
		best := 0.0
		for r := 0; r < rounds; r++ {
			start := time.Now()
			report, err := pipeline.RunContext(context.Background(), core.Limits{Parallelism: 1})
			elapsed := time.Since(start).Seconds() * 1000
			if err != nil {
				return nil, fmt.Errorf("mode=%s: %w", mode.name, err)
			}
			if !report.OK() {
				return nil, fmt.Errorf("mode=%s: unexpected violations: %v",
					mode.name, report.AllViolations())
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		if log != nil && log.Observed() == 0 {
			return nil, fmt.Errorf("mode=%s: instrumentation observed no queries", mode.name)
		}
		if baseline == 0 {
			baseline = best // the validated "off" baseline
		}
		res.Points = append(res.Points, DeepObsPoint{
			Mode:     mode.name,
			Millis:   best,
			Overhead: best / baseline,
			Queries:  log.Observed(),
		})
	}
	return res, nil
}

// RunE19 measures the deep-diagnostics overhead (experiment E19): the
// same pipeline with the slow-query instrumentation off versus on.
func RunE19(w io.Writer) error {
	res, err := MeasureDeepObsOverhead(6, 5)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %12s %10s %10s   (%d VMs + platform, serial, best of %d)\n",
		"mode", "pipeline", "overhead", "queries", res.VMs, res.Rounds)
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-16s %10.1fms %9.3fx %10d\n", p.Mode, p.Millis, p.Overhead, p.Queries)
	}
	return nil
}

// WriteDeepObsJSON runs E19's measurement and writes the JSON artifact
// consumed by CI (BENCH_obsdeep.json).
func WriteDeepObsJSON(path string, vms int) error {
	res, err := MeasureDeepObsOverhead(vms, 5)
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
