package bench

import (
	"fmt"

	"llhsc/internal/core"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/schema"
)

// SyntheticProductLine generates a complete product line for a board
// with the given number of CPUs (= maximum VMs) and UARTs: the core
// DTS, the feature model (CPUs exclusive, one UART group), the removal
// deltas for deselected features, and one valid configuration per VM
// (VM k takes cpu@k and uart k modulo the UART count). It scales the
// running example's structure to arbitrary size for experiment E12.
func SyntheticProductLine(cpus, uarts, vms int) (*core.Pipeline, error) {
	if vms > cpus {
		return nil, fmt.Errorf("bench: %d VMs need at least as many exclusive CPUs (have %d)", vms, cpus)
	}

	// ---- core DTS ----
	tree := dts.NewTree()
	root := tree.Root
	root.SetProperty(&dts.Property{Name: "#address-cells", Value: dts.CellsValue(1)})
	root.SetProperty(&dts.Property{Name: "#size-cells", Value: dts.CellsValue(1)})
	root.SetProperty(&dts.Property{Name: "compatible", Value: dts.StringValueOf("llhsc,bigboard")})

	mem := root.EnsureChild("memory@40000000")
	mem.SetProperty(&dts.Property{Name: "device_type", Value: dts.StringValueOf("memory")})
	mem.SetProperty(&dts.Property{Name: "reg", Value: dts.CellsValue(0x40000000, 0x40000000)})

	cpusNode := root.EnsureChild("cpus")
	cpusNode.SetProperty(&dts.Property{Name: "#address-cells", Value: dts.CellsValue(1)})
	cpusNode.SetProperty(&dts.Property{Name: "#size-cells", Value: dts.CellsValue(0)})
	for i := 0; i < cpus; i++ {
		cpu := cpusNode.EnsureChild(fmt.Sprintf("cpu@%d", i))
		cpu.SetProperty(&dts.Property{Name: "device_type", Value: dts.StringValueOf("cpu")})
		cpu.SetProperty(&dts.Property{Name: "compatible", Value: dts.StringValueOf("arm,cortex-a53")})
		cpu.SetProperty(&dts.Property{Name: "enable-method", Value: dts.StringValueOf("psci")})
		cpu.SetProperty(&dts.Property{Name: "reg", Value: dts.CellsValue(uint32(i))})
	}
	for i := 0; i < uarts; i++ {
		base := uint32(0x10000000 + i*0x10000)
		u := root.EnsureChild(fmt.Sprintf("uart@%x", base))
		u.Label = fmt.Sprintf("uart%d", i)
		u.SetProperty(&dts.Property{Name: "compatible", Value: dts.StringValueOf("ns16550a")})
		u.SetProperty(&dts.Property{Name: "reg", Value: dts.CellsValue(base, 0x1000)})
	}

	// ---- feature model ----
	cpuGroup := &featmodel.Feature{
		Name: "cpus", Abstract: true, Mandatory: true, Group: featmodel.GroupXor,
	}
	for i := 0; i < cpus; i++ {
		cpuGroup.Children = append(cpuGroup.Children, &featmodel.Feature{
			Name: fmt.Sprintf("cpu@%d", i), Exclusive: true, Group: featmodel.GroupAnd,
		})
	}
	uartGroup := &featmodel.Feature{
		Name: "uarts", Abstract: true, Mandatory: true, Group: featmodel.GroupOr,
	}
	for i := 0; i < uarts; i++ {
		uartGroup.Children = append(uartGroup.Children, &featmodel.Feature{
			Name: fmt.Sprintf("uart%d", i), Group: featmodel.GroupAnd,
		})
	}
	modelRoot := &featmodel.Feature{
		Name: "BigBoard", Abstract: true, Group: featmodel.GroupAnd,
		Children: []*featmodel.Feature{
			{Name: "memory", Mandatory: true, Group: featmodel.GroupAnd},
			cpuGroup,
			uartGroup,
		},
	}
	model, err := featmodel.NewModel(modelRoot)
	if err != nil {
		return nil, err
	}

	// ---- removal deltas ----
	var deltas []*delta.Delta
	for i := 0; i < cpus; i++ {
		name := fmt.Sprintf("cpu@%d", i)
		deltas = append(deltas, &delta.Delta{
			Name: fmt.Sprintf("rm_cpu%d", i),
			When: featmodel.Not(featmodel.Var(name)),
			Ops:  []delta.Operation{{Kind: delta.OpRemovesNode, Target: name}},
		})
	}
	for i := 0; i < uarts; i++ {
		base := uint32(0x10000000 + i*0x10000)
		deltas = append(deltas, &delta.Delta{
			Name: fmt.Sprintf("rm_uart%d", i),
			When: featmodel.Not(featmodel.Var(fmt.Sprintf("uart%d", i))),
			Ops: []delta.Operation{{
				Kind: delta.OpRemovesNode, Target: fmt.Sprintf("uart@%x", base),
			}},
		})
	}
	set, err := delta.NewSet(deltas)
	if err != nil {
		return nil, err
	}

	// ---- one configuration per VM ----
	configs := make([]featmodel.Configuration, vms)
	for k := 0; k < vms; k++ {
		cfg := featmodel.ConfigOf(
			"BigBoard", "memory", "cpus", fmt.Sprintf("cpu@%d", k),
			"uarts", fmt.Sprintf("uart%d", k%uarts),
		)
		configs[k] = cfg
	}

	return &core.Pipeline{
		Core:      tree,
		Deltas:    set,
		Model:     model,
		Schemas:   schema.StandardSet(),
		VMConfigs: configs,
	}, nil
}
