package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"llhsc/internal/addr"
	"llhsc/internal/constraints"
	"llhsc/internal/featmodel"
	"llhsc/internal/runningexample"
	"llhsc/internal/schema"
)

func TestSyntheticDTSIsClean(t *testing.T) {
	tree := SyntheticDTS(8, 16)
	if vs := schema.StandardSet().Validate(tree); len(vs) != 0 {
		t.Errorf("synthetic DTS structurally invalid: %v", vs)
	}
	collisions, vs := constraints.NewSemanticChecker().Check(tree)
	if len(collisions) != 0 || len(vs) != 0 {
		t.Errorf("synthetic DTS has collisions: %v %v", collisions, vs)
	}
	regions, err := addr.CollectRegions(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 8+16 {
		t.Errorf("regions = %d, want 24", len(regions))
	}
}

func TestSyntheticRegions(t *testing.T) {
	clean := SyntheticRegions(10, false)
	if got := addr.Overlapping(clean); len(got) != 0 {
		t.Errorf("clean regions overlap: %v", got)
	}
	dirty := SyntheticRegions(10, true)
	if got := addr.Overlapping(dirty); len(got) != 1 {
		t.Errorf("planted overlap count = %d, want 1", len(got))
	}
}

func TestSyntheticFeatureModelDeterministic(t *testing.T) {
	a := SyntheticFeatureModel(50, 7)
	b := SyntheticFeatureModel(50, 7)
	an, bn := a.Names(), b.Names()
	if len(an) != len(bn) {
		t.Fatalf("non-deterministic: %d vs %d features", len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("non-deterministic at %d: %s vs %s", i, an[i], bn[i])
		}
	}
	if len(an) < 40 {
		t.Errorf("only %d features generated for target 50", len(an))
	}
}

func TestSyntheticDeltaChainApplies(t *testing.T) {
	core, set, err := SyntheticDeltaChain(20)
	if err != nil {
		t.Fatal(err)
	}
	product, trace, err := set.Apply(core, featmodel.ConfigOf())
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if len(trace) != 20 {
		t.Errorf("trace = %d deltas, want 20", len(trace))
	}
	devs := 0
	for _, c := range product.Root.Children {
		if c.BaseName() == "dev" {
			devs++
		}
	}
	if devs != 20 {
		t.Errorf("devices = %d, want 20", devs)
	}
	// chain must be ordered d0 < d1 < ...
	for i, name := range trace {
		if want := "d" + itoa(i); name != want {
			t.Fatalf("trace[%d] = %s, want %s", i, name, want)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestDetectionMatrixShape(t *testing.T) {
	matrix, err := DetectionMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(matrix) != len(AllFaults()) {
		t.Fatalf("matrix rows = %d, want %d", len(matrix), len(AllFaults()))
	}
	byFault := make(map[Fault]Detection)
	for _, d := range matrix {
		byFault[d.Fault] = d
	}

	// llhsc catches every fault class
	for f, d := range byFault {
		if !d.LLHSC {
			t.Errorf("llhsc missed %v", f)
		}
	}
	// dtc-lint catches exactly the faults visible to a parser:
	// malformed text and nesting past the recursion guard
	for f, d := range byFault {
		if want := f == FaultSyntaxError || f == FaultDeepNesting; d.DtcLint != want {
			t.Errorf("dtc-lint on %v = %v, want %v", f, d.DtcLint, want)
		}
	}
	// the structural baseline catches the structural faults...
	for _, f := range []Fault{FaultMissingRequired, FaultBadConst, FaultBadRegArity} {
		if !byFault[f].Baseline {
			t.Errorf("baseline missed structural fault %v", f)
		}
	}
	// ...and is blind to the semantic/dependency ones (the paper's core claim)
	for _, f := range []Fault{
		FaultAddrOverlap, FaultTruncation, FaultMissingNodeDep,
		FaultDuplicateIRQ, FaultReserveOutsideRAM,
	} {
		if byFault[f].Baseline {
			t.Errorf("baseline should be blind to %v", f)
		}
	}
}

// TestRobustnessFaultsBounded asserts the two solver/parser-hostile
// fault classes come back as structured resource-limit stops — within
// the 2s budget, not hangs or panics.
func TestRobustnessFaultsBounded(t *testing.T) {
	start := time.Now()
	matrix, err := DetectionMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("matrix with hostile inputs took %v, want bounded well under 2s", elapsed)
	}
	byFault := make(map[Fault]Detection)
	for _, d := range matrix {
		byFault[d.Fault] = d
	}
	for _, f := range []Fault{FaultPathologicalCNF, FaultDeepNesting} {
		d, ok := byFault[f]
		if !ok {
			t.Fatalf("%v missing from matrix", f)
		}
		if !d.Bounded {
			t.Errorf("%v not reported as a bounded limit stop", f)
		}
		if !d.LLHSC {
			t.Errorf("%v not reported by llhsc", f)
		}
	}
}

func TestTreeConfiguration(t *testing.T) {
	tree, err := runningexample.Tree()
	if err != nil {
		t.Fatal(err)
	}
	model, err := runningexample.Model()
	if err != nil {
		t.Fatal(err)
	}
	cfg := TreeConfiguration(tree, model)
	for _, want := range []string{"CustomSBC", "memory", "cpus", "cpu@0", "cpu@1", "uarts", "uart0", "uart1"} {
		if !cfg[want] {
			t.Errorf("feature %s not derived from tree (got %v)", want, cfg.Sorted())
		}
	}
	if cfg["veth0"] || cfg["vEthernet"] {
		t.Errorf("virtual features wrongly selected: %v", cfg.Sorted())
	}
}

func TestPlatformModelRelaxesExclusiveXor(t *testing.T) {
	model, err := runningexample.Model()
	if err != nil {
		t.Fatal(err)
	}
	platform := PlatformModel(model)
	if platform.Feature("cpus").Group != featmodel.GroupOr {
		t.Error("exclusive CPU XOR should relax to OR in the platform view")
	}
	// vEthernet XOR is not exclusive: stays XOR
	if platform.Feature("vEthernet").Group != featmodel.GroupXor {
		t.Error("non-exclusive XOR groups must be preserved")
	}
	// the core module (both CPUs) is a valid platform
	tree, _ := runningexample.Tree()
	cfg := TreeConfiguration(tree, platform)
	if !featmodel.NewAnalyzer(platform).IsValid(cfg) {
		t.Errorf("core module should be a valid platform: %v", cfg.Sorted())
	}
}

func TestRunningExamplePipelineOK(t *testing.T) {
	report, err := RunningExamplePipeline()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Errorf("violations: %v", report.AllViolations())
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s failed: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}

func TestE10OutputShape(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE10(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"address overlap", "64->32-bit truncation", "missing node dependency"} {
		if !strings.Contains(out, want) {
			t.Errorf("E10 output missing %q:\n%s", want, out)
		}
	}
}

func TestE7EmitsListings(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE7(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"struct platform_desc platform",
		"struct config config",
		"qemu-system-aarch64",
		".cpu_num = 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E7 output missing %q", want)
		}
	}
}

func TestSyntheticProductLine(t *testing.T) {
	pipeline, err := SyntheticProductLine(4, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	report, err := pipeline.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("violations: %v", report.AllViolations())
	}
	if len(report.VMs) != 4 {
		t.Fatalf("VMs = %d", len(report.VMs))
	}
	// each VM keeps exactly one CPU
	for k, vm := range report.VMs {
		cpus := vm.Tree.Lookup("/cpus")
		if got := len(cpus.Children); got != 1 {
			t.Errorf("vm%d has %d CPUs, want 1", k+1, got)
		}
	}
	// platform keeps all CPUs and all UARTs
	if got := len(report.Platform.Tree.Lookup("/cpus").Children); got != 4 {
		t.Errorf("platform CPUs = %d, want 4", got)
	}
}

func TestSyntheticProductLineTooManyVMs(t *testing.T) {
	if _, err := SyntheticProductLine(2, 2, 3); err == nil {
		t.Error("3 VMs over 2 CPUs should be rejected at construction")
	}
}

func TestMeasureParallelRequiresSerialBaseline(t *testing.T) {
	for _, counts := range [][]int{nil, {}, {2, 4, 8}, {4, 1}} {
		if _, err := MeasureParallel(2, counts, 1); err == nil {
			t.Errorf("MeasureParallel(%v) accepted a worker list without a leading serial baseline", counts)
		}
	}
}
