package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"llhsc/internal/constraints"
	"llhsc/internal/core"
	"llhsc/internal/featmodel"
)

// HeavyProductLine is SyntheticProductLine tuned for the parallel
// speedup experiment E13: every VM selects its exclusive cpu@k plus ALL
// UARTs, so each derived tree carries the full device population. With
// near-equal weight per tree (VMs + platform union), the run
// parallelizes cleanly instead of being dominated by one big platform
// job (Amdahl).
func HeavyProductLine(vms int) (*core.Pipeline, error) {
	pipeline, err := SyntheticProductLine(vms, vms, vms)
	if err != nil {
		return nil, err
	}
	for k := 0; k < vms; k++ {
		cfg := featmodel.ConfigOf("BigBoard", "memory", "cpus", fmt.Sprintf("cpu@%d", k), "uarts")
		for u := 0; u < vms; u++ {
			cfg[fmt.Sprintf("uart%d", u)] = true
		}
		pipeline.VMConfigs[k] = cfg
	}
	// E13 measures how per-tree solver work parallelizes, so keep the
	// pairwise semantic baseline: the sweep strategy (the production
	// default) prunes this line's disjoint devices to zero SMT queries,
	// which would leave nothing worth distributing. E14 is the
	// experiment that compares the strategies themselves.
	pipeline.SemanticStrategy = constraints.StrategyPairwise
	return pipeline, nil
}

// ParallelPoint is one measured configuration of experiment E13.
type ParallelPoint struct {
	Workers int     `json:"workers"`
	Millis  float64 `json:"millis"`
	Speedup float64 `json:"speedup"` // serial time / this time
}

// ParallelResult is the JSON artifact of experiment E13
// (BENCH_parallel.json).
type ParallelResult struct {
	VMs    int             `json:"vms"`
	Rounds int             `json:"rounds"`
	Points []ParallelPoint `json:"points"`
}

// MeasureParallel runs the heavy product line at each worker count,
// keeping the best of rounds runs per point (the usual benchmarking
// guard against scheduler noise). workerCounts must start at 1: the
// first point is the serial baseline every speedup is normalized
// against, so accepting an arbitrary first entry would silently label
// a relative ratio as speedup.
func MeasureParallel(vms int, workerCounts []int, rounds int) (*ParallelResult, error) {
	if len(workerCounts) == 0 || workerCounts[0] != 1 {
		return nil, fmt.Errorf(
			"bench: workerCounts must start with 1 (the serial baseline), got %v", workerCounts)
	}
	if rounds < 1 {
		rounds = 1
	}
	res := &ParallelResult{VMs: vms, Rounds: rounds}
	var serial float64
	for _, workers := range workerCounts {
		pipeline, err := HeavyProductLine(vms)
		if err != nil {
			return nil, err
		}
		pipeline.SkipDTS = false
		best := 0.0
		for r := 0; r < rounds; r++ {
			start := time.Now()
			report, err := pipeline.RunContext(context.Background(),
				core.Limits{Parallelism: workers})
			elapsed := time.Since(start).Seconds() * 1000
			if err != nil {
				return nil, fmt.Errorf("workers=%d: %w", workers, err)
			}
			if !report.OK() {
				return nil, fmt.Errorf("workers=%d: unexpected violations: %v",
					workers, report.AllViolations())
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		if serial == 0 {
			serial = best // the validated workers=1 baseline
		}
		res.Points = append(res.Points, ParallelPoint{
			Workers: workers,
			Millis:  best,
			Speedup: serial / best,
		})
	}
	return res, nil
}

// RunE13 measures the parallel pipeline speedup over a synthetic 8-VM
// product line (experiment E13) and prints the scaling table.
func RunE13(w io.Writer) error {
	res, err := MeasureParallel(8, []int{1, 2, 4, 8}, 3)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %12s %10s   (%d VMs + platform, best of %d)\n",
		"workers", "pipeline", "speedup", res.VMs, res.Rounds)
	for _, p := range res.Points {
		fmt.Fprintf(w, "%8d %10.1fms %9.2fx\n", p.Workers, p.Millis, p.Speedup)
	}
	return nil
}

// WriteParallelJSON runs E13's measurement and writes the JSON artifact
// consumed by CI (BENCH_parallel.json).
func WriteParallelJSON(path string, vms int) error {
	res, err := MeasureParallel(vms, []int{1, 2, 4, 8}, 3)
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
