package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"llhsc/internal/constraints"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/logic"
	"llhsc/internal/runningexample"
	"llhsc/internal/sat"
	"llhsc/internal/schema"
)

// Fault identifies one injectable fault class for the E10 detection
// matrix (DESIGN.md §4). The six classes span the failure modes the
// paper discusses: structural schema violations (detected by dt-schema
// and llhsc), pure syntax errors (detected by every tool), and the
// semantic/dependency faults only llhsc catches.
type Fault int

// Fault classes.
const (
	FaultSyntaxError       Fault = iota + 1 // malformed DTS text
	FaultMissingRequired                    // required property absent
	FaultBadConst                           // device_type value wrong
	FaultBadRegArity                        // reg cell count not a multiple of the stride
	FaultAddrOverlap                        // two regions share addresses (Section I-A)
	FaultTruncation                         // 64→32-bit cell reinterpretation (Section IV-C)
	FaultMissingNodeDep                     // feature-model dependency violated (cpu without memory)
	FaultDuplicateIRQ                       // two devices claim the same interrupt line
	FaultReserveOutsideRAM                  // /memreserve/ outside every memory bank
	FaultPathologicalCNF                    // solver-hostile input that exhausts the conflict budget
	FaultDeepNesting                        // DTS nested past the parser depth guard
)

// AllFaults lists every fault class in presentation order.
func AllFaults() []Fault {
	return []Fault{
		FaultSyntaxError, FaultMissingRequired, FaultBadConst,
		FaultBadRegArity, FaultAddrOverlap, FaultTruncation,
		FaultMissingNodeDep, FaultDuplicateIRQ, FaultReserveOutsideRAM,
		FaultPathologicalCNF, FaultDeepNesting,
	}
}

func (f Fault) String() string {
	switch f {
	case FaultSyntaxError:
		return "syntax error"
	case FaultMissingRequired:
		return "missing required property"
	case FaultBadConst:
		return "wrong const value"
	case FaultBadRegArity:
		return "bad reg arity"
	case FaultAddrOverlap:
		return "address overlap"
	case FaultTruncation:
		return "64->32-bit truncation"
	case FaultMissingNodeDep:
		return "missing node dependency"
	case FaultDuplicateIRQ:
		return "duplicate interrupt"
	case FaultReserveOutsideRAM:
		return "memreserve outside RAM"
	case FaultPathologicalCNF:
		return "pathological CNF"
	case FaultDeepNesting:
		return "deep nesting"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// FaultSource returns the DTS source text and includer for a fault
// class, for callers outside the package (e.g. the core determinism
// tests) that want to run the corpus through their own pipeline. Note
// FaultSyntaxError and FaultDeepNesting do not parse, and
// FaultPathologicalCNF has no DTS form (this function panics on it,
// like every unknown fault).
func FaultSource(f Fault) (string, dts.Includer) {
	return faultyDTS(f)
}

// faultyDTS returns the running-example DTS with the fault injected
// (as source text, so that FaultSyntaxError is expressible).
func faultyDTS(f Fault) (string, dts.Includer) {
	inc := runningexample.Includer()
	switch f {
	case FaultSyntaxError:
		return runningexample.CoreDTS + "\n/ { broken = ; };\n", inc
	case FaultMissingRequired:
		// drop device_type from the memory node
		return `
/dts-v1/;
/include/ "cpus.dtsi"
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	memory@40000000 {
		reg = <0x0 0x40000000 0x0 0x20000000>;
	};
	uart0: uart@20000000 { compatible = "ns16550a"; reg = <0x0 0x20000000 0x0 0x1000>; };
};
`, inc
	case FaultBadConst:
		return `
/dts-v1/;
/include/ "cpus.dtsi"
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	memory@40000000 {
		device_type = "ram";
		reg = <0x0 0x40000000 0x0 0x20000000>;
	};
};
`, inc
	case FaultBadRegArity:
		return `
/dts-v1/;
/include/ "cpus.dtsi"
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000 0x0>;
	};
};
`, inc
	case FaultAddrOverlap:
		// Section I-A: uart moved onto the second memory bank
		return `
/dts-v1/;
/include/ "cpus.dtsi"
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000
		       0x0 0x60000000 0x0 0x20000000>;
	};
	uart0: uart@60000000 { compatible = "ns16550a"; reg = <0x0 0x60000000 0x0 0x1000>; };
};
`, inc
	case FaultTruncation:
		// Section IV-C: 32-bit cells over a 64-bit reg layout
		return `
/dts-v1/;
/include/ "cpus.dtsi"
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000
		       0x0 0x60000000 0x0 0x20000000>;
	};
};
`, inc
	case FaultMissingNodeDep:
		// a CPU is described but the mandatory memory node is absent
		return `
/dts-v1/;
/include/ "cpus.dtsi"
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	uart0: uart@20000000 { compatible = "ns16550a"; reg = <0x0 0x20000000 0x0 0x1000>; };
};
`, inc
	case FaultDuplicateIRQ:
		return `
/dts-v1/;
/include/ "cpus.dtsi"
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000>;
	};
	uart0: uart@20000000 {
		compatible = "ns16550a";
		reg = <0x0 0x20000000 0x0 0x1000>;
		interrupts = <7>;
	};
	uart1: uart@30000000 {
		compatible = "ns16550a";
		reg = <0x0 0x30000000 0x0 0x1000>;
		interrupts = <7>;
	};
};
`, inc
	case FaultReserveOutsideRAM:
		return `
/dts-v1/;
/memreserve/ 0x10000000 0x1000;
/include/ "cpus.dtsi"
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000>;
	};
	uart0: uart@20000000 { compatible = "ns16550a"; reg = <0x0 0x20000000 0x0 0x1000>; };
};
`, inc
	case FaultDeepNesting:
		// nested twice past the parser's default depth guard
		return deepNestedDTS(128), inc
	default:
		panic(fmt.Sprintf("bench: unknown fault %d", int(f)))
	}
}

// deepNestedDTS returns a syntactically well-formed tree of the given
// node depth, used to probe the parser's recursion guard.
func deepNestedDTS(depth int) string {
	var b strings.Builder
	b.WriteString("/dts-v1/;\n/ {\n")
	for i := 0; i < depth; i++ {
		b.WriteString("n {\n")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("};\n")
	}
	b.WriteString("};\n")
	return b.String()
}

// HardRandomCNF returns a random 3-CNF over nVars variables at the
// phase-transition clause/variable ratio (~4.26), where random
// instances are empirically hardest for CDCL solvers. The fixed seed
// keeps the instance reproducible; seed 1 over 250 variables is
// verified (TestRobustnessFaultsBounded) to exceed a 500-conflict
// budget, which stands in for the solver-hostile inputs a hostile
// tenant could submit to the cloud service.
func HardRandomCNF(nVars int, seed int64) [][]logic.Lit {
	rng := rand.New(rand.NewSource(seed))
	nClauses := int(4.26 * float64(nVars))
	clauses := make([][]logic.Lit, 0, nClauses)
	for i := 0; i < nClauses; i++ {
		vars := rng.Perm(nVars)[:3]
		cl := make([]logic.Lit, 3)
		for j, v := range vars {
			l := logic.Lit(v + 1)
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			cl[j] = l
		}
		clauses = append(clauses, cl)
	}
	return clauses
}

// pathologicalCNFDetection runs the hard random instance under a tight
// conflict budget: the interesting property is not *what* is detected
// but that the solver answers a structured Unknown within its budget
// instead of hanging.
func pathologicalCNFDetection() Detection {
	s := sat.New()
	for _, cl := range HardRandomCNF(250, 1) {
		s.AddClause(cl...)
	}
	s.SetBudget(sat.Budget{
		MaxConflicts: 500,
		Deadline:     time.Now().Add(2 * time.Second),
	})
	status := s.Solve()
	bounded := status == sat.Unknown && s.LastLimit() != nil
	return Detection{
		Fault:   FaultPathologicalCNF,
		LLHSC:   bounded, // reported as a structured limit, not a hang
		Bounded: bounded,
	}
}

// Detection records which tool catches a fault.
type Detection struct {
	Fault    Fault
	DtcLint  bool // syntax-only: the mini-dtc parser
	Baseline bool // dt-schema-equivalent structural validation
	LLHSC    bool // full llhsc checking
	Bounded  bool // reported as a structured resource-limit stop
}

// DetectionMatrix runs every fault class through the three detectors
// and returns the matrix (experiment E10). The expected shape: dtc-lint
// catches only the syntax fault; the baseline catches the structural
// three; llhsc catches everything.
func DetectionMatrix() ([]Detection, error) {
	model, err := runningexample.Model()
	if err != nil {
		return nil, err
	}
	var out []Detection
	for _, f := range AllFaults() {
		if f == FaultPathologicalCNF {
			// not a DTS fault: probes the solver's conflict budget
			out = append(out, pathologicalCNFDetection())
			continue
		}
		src, inc := faultyDTS(f)
		det := Detection{Fault: f}

		tree, parseErr := dts.Parse("faulty.dts", src, dts.WithIncluder(inc))
		det.DtcLint = parseErr != nil
		det.Bounded = errors.Is(parseErr, dts.ErrTooDeep)
		if parseErr != nil {
			// unparsable: every downstream tool also reports it
			det.Baseline = true
			det.LLHSC = true
			out = append(out, det)
			continue
		}

		det.Baseline = len(schema.StandardSet().Validate(tree)) > 0

		// llhsc: syntactic + semantic + extension + dependency checks
		syn := constraints.NewSyntacticChecker(schema.StandardSet())
		vs := syn.Check(tree)
		_, sem := constraints.NewSemanticChecker().Check(tree)
		vs = append(vs, sem...)
		vs = append(vs, constraints.InterruptChecker{}.Check(tree)...)
		vs = append(vs, constraints.MemReserveChecker{}.Check(tree)...)
		vs = append(vs, checkNodeDependencies(tree, model)...)
		det.LLHSC = len(vs) > 0
		out = append(out, det)
	}
	return out, nil
}

// checkNodeDependencies validates that the tree's device complement is
// a valid *platform* of the feature model — the "required device node"
// check that dt-schema cannot express (Section I). A platform may
// combine resources that are exclusive between VMs (both CPUs appear in
// the board DTS), so XOR groups of Exclusive features are relaxed to OR
// before checking.
func checkNodeDependencies(tree *dts.Tree, model *featmodel.Model) []constraints.Violation {
	platform := PlatformModel(model)
	cfg := TreeConfiguration(tree, platform)
	a := featmodel.NewAnalyzer(platform)
	if a.IsValid(cfg) {
		return nil
	}
	return []constraints.Violation{{
		Rule: "allocation:dependency",
		Message: fmt.Sprintf("device complement %v is not a valid platform of the feature model (%v)",
			cfg.Sorted(), a.ExplainInvalid(cfg)),
	}}
}

// PlatformModel derives the platform view of a feature model: XOR
// groups whose children are Exclusive resources become OR groups (the
// platform is the union of the VM products, Section III-A).
func PlatformModel(model *featmodel.Model) *featmodel.Model {
	var clone func(f *featmodel.Feature) *featmodel.Feature
	clone = func(f *featmodel.Feature) *featmodel.Feature {
		c := &featmodel.Feature{
			Name: f.Name, Abstract: f.Abstract, Mandatory: f.Mandatory,
			Exclusive: f.Exclusive, Group: f.Group,
		}
		if f.Group == featmodel.GroupXor {
			allExclusive := len(f.Children) > 0
			for _, ch := range f.Children {
				if !ch.Exclusive {
					allExclusive = false
				}
			}
			if allExclusive {
				c.Group = featmodel.GroupOr
			}
		}
		for _, ch := range f.Children {
			c.Children = append(c.Children, clone(ch))
		}
		return c
	}
	m, err := featmodel.NewModel(clone(model.Root), model.Constraints...)
	if err != nil {
		// cloning preserves name uniqueness and constraint references
		panic(err)
	}
	return m
}

// TreeConfiguration derives the feature selection a tree realizes: a
// concrete feature is selected iff a node with its name or label
// exists; an abstract feature is selected iff any of its children is.
func TreeConfiguration(tree *dts.Tree, model *featmodel.Model) featmodel.Configuration {
	present := make(map[string]bool)
	tree.Root.Walk(func(_ string, n *dts.Node) bool {
		present[n.Name] = true
		present[n.BaseName()] = true // "memory@40000000" realizes feature "memory"
		if n.Label != "" {
			present[n.Label] = true
		}
		return true
	})
	cfg := make(featmodel.Configuration)
	var walk func(f *featmodel.Feature) bool // reports selected
	walk = func(f *featmodel.Feature) bool {
		anyChild := false
		for _, c := range f.Children {
			if walk(c) {
				anyChild = true
			}
		}
		selected := anyChild
		if !f.Abstract && present[f.Name] {
			selected = true
		}
		if selected {
			cfg[f.Name] = true
		}
		return selected
	}
	walk(model.Root)
	cfg[model.Root.Name] = true
	return cfg
}
