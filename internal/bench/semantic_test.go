package bench

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"llhsc/internal/constraints"
	"llhsc/internal/core"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/runningexample"
	"llhsc/internal/schema"
)

// checkWithStrategy runs the semantic checker over one tree under the
// given strategy and returns everything a report would carry.
func checkWithStrategy(t *testing.T, tree *dts.Tree, strat constraints.SemanticStrategy) ([]constraints.Collision, []constraints.Violation) {
	t.Helper()
	sc := constraints.NewSemanticChecker()
	sc.Strategy = strat
	collisions, violations, err := sc.CheckContext(context.Background(), tree)
	if err != nil {
		t.Fatalf("strategy %s: %v", strat, err)
	}
	return collisions, violations
}

// assertStrategiesAgree checks every strategy byte-for-byte (verdicts,
// witnesses, ordering) on one tree — including the word tier against
// its bit-blasted control arm (word vs word-off).
func assertStrategiesAgree(t *testing.T, name string, tree *dts.Tree) {
	t.Helper()
	refC, refV := checkWithStrategy(t, tree, constraints.StrategyPairwise)
	for _, strat := range []constraints.SemanticStrategy{
		constraints.StrategyAssume, constraints.StrategySweep,
		constraints.StrategyWord, constraints.StrategyWordOff,
	} {
		gotC, gotV := checkWithStrategy(t, tree, strat)
		if !reflect.DeepEqual(gotC, refC) {
			t.Errorf("%s: %s collisions differ from pairwise:\n got %v\nwant %v", name, strat, gotC, refC)
		}
		if !reflect.DeepEqual(gotV, refV) {
			t.Errorf("%s: %s violations differ from pairwise:\n got %v\nwant %v", name, strat, gotV, refV)
		}
	}
}

// TestSemanticStrategiesAgreeOnRunningExample: the full pipeline report
// — violations, collisions, witnesses and generated artifacts — must be
// identical under every strategy on the paper's running example.
func TestSemanticStrategiesAgreeOnRunningExample(t *testing.T) {
	tree, err := runningexample.Tree()
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := runningexample.Deltas()
	if err != nil {
		t.Fatal(err)
	}
	model, err := runningexample.Model()
	if err != nil {
		t.Fatal(err)
	}
	var ref *core.Report
	for _, strat := range SemanticStrategies() {
		p := &core.Pipeline{
			Core:    tree,
			Deltas:  deltas,
			Model:   model,
			Schemas: schema.StandardSet(),
			VMConfigs: []featmodel.Configuration{
				runningexample.VM1Config(), runningexample.VM2Config(),
			},
			VMNames:          []string{"vm1", "vm2"},
			SemanticStrategy: strat,
		}
		report, err := p.Run()
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		// Stats counts the solver work, which differs by strategy by
		// design (that is what E14 measures); the agreement contract
		// covers the verdicts and artifacts.
		report.Stats = core.RunStats{}
		if ref == nil {
			ref = report
			continue
		}
		if !reflect.DeepEqual(report, ref) {
			t.Errorf("running-example report under %s differs from pairwise", strat)
		}
	}
}

// TestSemanticStrategiesAgreeOnTruncationScenario replays E6 (product
// derived without delta d4, collision at 0x0) under every strategy.
func TestSemanticStrategiesAgreeOnTruncationScenario(t *testing.T) {
	coreTree, err := runningexample.Tree()
	if err != nil {
		t.Fatal(err)
	}
	set, err := runningexample.Deltas()
	if err != nil {
		t.Fatal(err)
	}
	var kept []*delta.Delta
	for _, d := range set.Deltas {
		if d.Name != "d4" {
			kept = append(kept, d)
		}
	}
	smaller, err := delta.NewSet(kept)
	if err != nil {
		t.Fatal(err)
	}
	product, _, err := smaller.Apply(coreTree, runningexample.VM1Config())
	if err != nil {
		t.Fatal(err)
	}
	refC, _ := checkWithStrategy(t, product, constraints.StrategyPairwise)
	zero := false
	for _, c := range refC {
		if c.Witness == 0 {
			zero = true
		}
	}
	if !zero {
		t.Fatalf("baseline lost the paper's 0x0 witness: %v", refC)
	}
	assertStrategiesAgree(t, "e6-truncation", product)
}

// TestSemanticStrategiesAgreeOnFaultCorpus sweeps the E10 fault corpus.
func TestSemanticStrategiesAgreeOnFaultCorpus(t *testing.T) {
	for _, f := range AllFaults() {
		if f == FaultPathologicalCNF {
			continue // no DTS form (FaultSource panics on it)
		}
		src, inc := FaultSource(f)
		tree, err := dts.Parse(fmt.Sprintf("%v.dts", f), src, dts.WithIncluder(inc))
		if err != nil {
			continue // syntax-level faults never reach the semantic checker
		}
		assertStrategiesAgree(t, f.String(), tree)
	}
}

// TestSweepSolverCallReduction pins the issue's acceptance metric
// deterministically: at 256 regions the sweep must reach the solver at
// least 5x less often than the pairwise baseline's full candidate set.
func TestSweepSolverCallReduction(t *testing.T) {
	const n = 256
	regions := SyntheticRegions(n, true)
	sc := constraints.NewSemanticChecker() // default: sweep
	out, err := sc.FindCollisionsContext(context.Background(), regions, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("collisions = %d, want the 1 planted overlap", len(out))
	}
	st := sc.LastStats()
	required := n * (n - 1) / 2 // every pair is eligible for the pairwise baseline
	if st.SolverCalls*5 > required {
		t.Errorf("sweep made %d solver calls at %d regions; want >= 5x fewer than the %d pairwise queries",
			st.SolverCalls, n, required)
	}
	t.Logf("sweep at %d regions: %d solver calls vs %d pairwise (%.0fx reduction)",
		n, st.SolverCalls, required, float64(required)/float64(st.SolverCalls))
}

// BenchmarkE14SemanticSweep is the benchmark form of experiment E14.
// The quadratic baselines run at 64 regions only; the sweep covers the
// full scaling ladder including the 1024-region point.
func BenchmarkE14SemanticSweep(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		regions := SyntheticRegions(n, true)
		for _, strat := range SemanticStrategies() {
			if strat != constraints.StrategySweep && n > 64 {
				continue
			}
			b.Run(fmt.Sprintf("%s/n=%d", strat, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sc := constraints.NewSemanticChecker()
					sc.Strategy = strat
					if _, err := sc.FindCollisionsContext(context.Background(), regions, 32); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
