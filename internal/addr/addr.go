// Package addr interprets DeviceTree reg properties as address regions.
//
// The meaning of a reg property is context-dependent: the parent node's
// #address-cells and #size-cells decide how many 32-bit cells form each
// address and size (the "dynamic semantics" the paper motivates in
// Section II-A). This package performs that interpretation, models
// regions as (base, size) pairs, and provides the overlap predicates
// that the semantic checker (internal/constraints) turns into
// bit-vector constraints.
package addr

import (
	"errors"
	"fmt"
	"strings"

	"llhsc/internal/dts"
)

// Errors produced while interpreting reg properties.
var (
	// ErrArity means the cell count is not a multiple of
	// #address-cells + #size-cells. Note that dt-schema accepts any
	// multiple (the paper exploits this in Section IV-C); this package
	// reports the stricter condition so callers can decide.
	ErrArity = errors.New("addr: reg cell count not a multiple of #address-cells + #size-cells")
	// ErrTooWide means an address or size spans more than 64 bits.
	ErrTooWide = errors.New("addr: addresses wider than 64 bits are unsupported")
	// ErrOverflow means base+size overflows the address space.
	ErrOverflow = errors.New("addr: region end overflows 64-bit address space")
)

// Entry is one (address, size) pair decoded from a reg property.
type Entry struct {
	Address uint64
	Size    uint64
}

// ParseReg decodes a reg cell array under the given cell configuration.
// addrCells and sizeCells must be non-negative; sizeCells may be 0, in
// which case entries have Size 0 (identifier-style reg, e.g. CPU ids).
func ParseReg(cells []uint32, addrCells, sizeCells int) ([]Entry, error) {
	if addrCells < 1 {
		return nil, fmt.Errorf("addr: #address-cells %d out of range", addrCells)
	}
	if sizeCells < 0 {
		return nil, fmt.Errorf("addr: #size-cells %d out of range", sizeCells)
	}
	if addrCells > 2 || sizeCells > 2 {
		return nil, ErrTooWide
	}
	stride := addrCells + sizeCells
	if len(cells)%stride != 0 {
		return nil, fmt.Errorf("%w: %d cells, stride %d", ErrArity, len(cells), stride)
	}
	entries := make([]Entry, 0, len(cells)/stride)
	for i := 0; i < len(cells); i += stride {
		e := Entry{
			Address: combine(cells[i : i+addrCells]),
			Size:    combine(cells[i+addrCells : i+stride]),
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// combine folds 1 or 2 cells into a 64-bit value (first cell is most
// significant, per the DeviceTree specification).
func combine(cells []uint32) uint64 {
	var v uint64
	for _, c := range cells {
		v = v<<32 | uint64(c)
	}
	return v
}

// Kind classifies a region by the role of its node.
type Kind int

// Region kinds.
const (
	KindMemory  Kind = iota + 1 // device_type = "memory"
	KindDevice                  // any other addressable node
	KindVirtual                 // virtual device (IPC window onto shared RAM)
)

func (k Kind) String() string {
	switch k {
	case KindMemory:
		return "memory"
	case KindDevice:
		return "device"
	case KindVirtual:
		return "virtual"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsVirtualDevice reports whether a node describes a virtual device
// whose address window is an IPC overlay onto shared memory rather than
// an exclusively decoded physical range. The running example's veth
// nodes (and the paper's own Listing 6, which places the veth IPC base
// inside a guest memory region) have this property.
func IsVirtualDevice(n *dts.Node) bool {
	for _, c := range n.Compatible() {
		if c == "veth" || strings.HasPrefix(c, "virtual") {
			return true
		}
	}
	return false
}

// Region is an addressable range attributed to a tree node.
type Region struct {
	Base   uint64
	Size   uint64
	Path   string // node path, e.g. /memory@40000000
	Kind   Kind
	Index  int // bank index within the node's reg property
	Origin dts.Origin
}

// End returns the exclusive end address. ok is false when base+size
// overflows 64 bits.
func (r Region) End() (end uint64, ok bool) {
	end = r.Base + r.Size
	return end, end >= r.Base || r.Size == 0
}

// Contains reports whether address a falls inside the region.
func (r Region) Contains(a uint64) bool {
	return a >= r.Base && a-r.Base < r.Size
}

// Overlaps reports whether two regions share at least one address.
// Zero-sized regions overlap nothing.
func (r Region) Overlaps(o Region) bool {
	if r.Size == 0 || o.Size == 0 {
		return false
	}
	return r.Base < o.Base+o.Size && o.Base < r.Base+r.Size
}

func (r Region) String() string {
	return fmt.Sprintf("%s[%d] 0x%x+0x%x", r.Path, r.Index, r.Base, r.Size)
}

// CollectOption configures CollectRegions.
type CollectOption func(*collector)

// WithDeviceFilter restricts device-region collection to nodes for
// which keep returns true (memory regions are always collected).
func WithDeviceFilter(keep func(n *dts.Node) bool) CollectOption {
	return func(c *collector) { c.keep = keep }
}

type collector struct {
	keep func(n *dts.Node) bool
}

// RangeEntry is one (child base, parent base, size) translation entry
// of a ranges property.
type RangeEntry struct {
	ChildBase  uint64
	ParentBase uint64
	Size       uint64
}

// ParseRanges decodes a ranges property: tuples of child address
// (childAddrCells), parent address (parentAddrCells) and size
// (childSizeCells).
func ParseRanges(cells []uint32, childAddrCells, parentAddrCells, childSizeCells int) ([]RangeEntry, error) {
	for _, c := range []int{childAddrCells, parentAddrCells} {
		if c < 1 || c > 2 {
			return nil, ErrTooWide
		}
	}
	if childSizeCells < 1 || childSizeCells > 2 {
		return nil, ErrTooWide
	}
	stride := childAddrCells + parentAddrCells + childSizeCells
	if len(cells)%stride != 0 {
		return nil, fmt.Errorf("%w: %d cells, stride %d", ErrArity, len(cells), stride)
	}
	var out []RangeEntry
	for i := 0; i < len(cells); i += stride {
		out = append(out, RangeEntry{
			ChildBase:  combine(cells[i : i+childAddrCells]),
			ParentBase: combine(cells[i+childAddrCells : i+childAddrCells+parentAddrCells]),
			Size:       combine(cells[i+childAddrCells+parentAddrCells : i+stride]),
		})
	}
	return out, nil
}

// Translate maps a child-bus address range through the ranges entries.
// ok is false when the child range is not covered by any entry.
func Translate(ranges []RangeEntry, childAddr, size uint64) (parentAddr uint64, ok bool) {
	for _, r := range ranges {
		if childAddr >= r.ChildBase && childAddr-r.ChildBase < r.Size &&
			childAddr-r.ChildBase+size <= r.Size {
			return r.ParentBase + (childAddr - r.ChildBase), true
		}
	}
	return 0, false
}

// CollectRegions walks the tree and decodes every addressable reg
// property into regions. Nodes under a parent with #size-cells = 0
// (such as CPUs, whose reg is an identifier) are skipped. Bus nodes
// with a ranges property have their children's addresses translated to
// the root (CPU-visible) address space; an empty "ranges;" is the
// identity mapping, and a missing ranges property is also treated as
// identity (the common practice for simple-bus containers). Arity,
// overflow and translation problems are reported with the offending
// node's path.
func CollectRegions(t *dts.Tree, opts ...CollectOption) ([]Region, error) {
	var c collector
	for _, o := range opts {
		o(&c)
	}
	var out []Region
	var firstErr error

	var walk func(parent *dts.Node, path string, translate func(addr, size uint64) (uint64, bool))
	walk = func(parent *dts.Node, path string, translate func(addr, size uint64) (uint64, bool)) {
		ac, sc := parent.AddressCells(), parent.SizeCells()
		for _, n := range parent.Children {
			childPath := path + "/" + n.Name
			if reg := n.Property("reg"); reg != nil && sc > 0 {
				dt, _ := n.StringValue("device_type")
				kind := KindDevice
				switch {
				case dt == "memory":
					kind = KindMemory
				case IsVirtualDevice(n):
					kind = KindVirtual
				}
				if kind == KindMemory || c.keep == nil || c.keep(n) {
					entries, err := ParseReg(reg.Value.U32s(), ac, sc)
					if err != nil && firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", childPath, err)
					}
					for i, e := range entries {
						base, ok := translate(e.Address, e.Size)
						if !ok {
							if firstErr == nil {
								firstErr = fmt.Errorf("%s bank %d: address 0x%x not covered by parent ranges",
									childPath, i, e.Address)
							}
							continue
						}
						r := Region{
							Base: base, Size: e.Size,
							Path: childPath, Kind: kind, Index: i,
							Origin: reg.Origin,
						}
						if _, ok := r.End(); !ok && firstErr == nil {
							firstErr = fmt.Errorf("%s bank %d: %w", childPath, i, ErrOverflow)
						}
						out = append(out, r)
					}
				}
			}

			// Compose the translation for this node's children.
			childTranslate := translate
			if rangesProp := n.Property("ranges"); rangesProp != nil && !rangesProp.Value.IsEmpty() {
				entries, err := ParseRanges(rangesProp.Value.U32s(),
					n.AddressCells(), ac, n.SizeCells())
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("%s ranges: %w", childPath, err)
					}
				} else {
					upper := translate
					childTranslate = func(a, s uint64) (uint64, bool) {
						mid, ok := Translate(entries, a, s)
						if !ok {
							return 0, false
						}
						return upper(mid, s)
					}
				}
			}
			walk(n, childPath, childTranslate)
		}
	}
	identity := func(a, s uint64) (uint64, bool) { return a, true }
	walk(t.Root, "", identity)
	return out, firstErr
}

// Overlapping returns every pair of distinct regions that overlap,
// excluding pairs of banks that belong to the same node.
func Overlapping(regions []Region) [][2]Region {
	var out [][2]Region
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			if regions[i].Path == regions[j].Path && regions[i].Kind == regions[j].Kind {
				// Banks of the same device may not overlap either, so
				// same-node pairs are still reported — unless they are
				// literally the same bank.
				if regions[i].Index == regions[j].Index {
					continue
				}
			}
			if regions[i].Overlaps(regions[j]) {
				out = append(out, [2]Region{regions[i], regions[j]})
			}
		}
	}
	return out
}

// BitWidth returns the natural bit width for addresses formed from the
// given #address-cells (32 bits per cell, capped at 64).
func BitWidth(addressCells int) int {
	w := addressCells * 32
	if w > 64 {
		w = 64
	}
	if w < 32 {
		w = 32
	}
	return w
}
