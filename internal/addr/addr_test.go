package addr

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"llhsc/internal/dts"
)

func TestParseReg64Bit(t *testing.T) {
	// The running example: two 64-bit banks, #address-cells=2, #size-cells=2.
	cells := []uint32{
		0x0, 0x40000000, 0x0, 0x20000000,
		0x0, 0x60000000, 0x0, 0x20000000,
	}
	entries, err := ParseReg(cells, 2, 2)
	if err != nil {
		t.Fatalf("ParseReg: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries))
	}
	if entries[0].Address != 0x40000000 || entries[0].Size != 0x20000000 {
		t.Errorf("bank 0 = %+v", entries[0])
	}
	if entries[1].Address != 0x60000000 || entries[1].Size != 0x20000000 {
		t.Errorf("bank 1 = %+v", entries[1])
	}
}

func TestParseReg32BitTruncation(t *testing.T) {
	// Section IV-C: the same 8 cells re-read with #address-cells=1,
	// #size-cells=1 become FOUR banks, two of them based at 0x0.
	cells := []uint32{
		0x0, 0x40000000, 0x0, 0x20000000,
		0x0, 0x60000000, 0x0, 0x20000000,
	}
	entries, err := ParseReg(cells, 1, 1)
	if err != nil {
		t.Fatalf("ParseReg: %v", err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4 (the paper's truncation scenario)", len(entries))
	}
	if entries[0].Address != 0 || entries[1].Address != 0 {
		t.Errorf("banks 0,1 = %+v, %+v; both should be based at 0x0", entries[0], entries[1])
	}
	// banks 0 and 1 collide at address 0x0
	r0 := Region{Base: entries[0].Address, Size: entries[0].Size}
	r1 := Region{Base: entries[1].Address, Size: entries[1].Size}
	if !r0.Overlaps(r1) {
		t.Error("truncated banks should overlap at 0x0")
	}
}

func TestParseRegIdentifiers(t *testing.T) {
	// CPU-style reg: #size-cells = 0, reg is an id.
	entries, err := ParseReg([]uint32{0x1}, 1, 0)
	if err != nil {
		t.Fatalf("ParseReg: %v", err)
	}
	if len(entries) != 1 || entries[0].Address != 1 || entries[0].Size != 0 {
		t.Errorf("entries = %+v", entries)
	}
}

func TestParseRegErrors(t *testing.T) {
	if _, err := ParseReg([]uint32{1, 2, 3}, 1, 1); !errors.Is(err, ErrArity) {
		t.Errorf("odd cells: %v, want ErrArity", err)
	}
	if _, err := ParseReg([]uint32{1}, 3, 0); !errors.Is(err, ErrTooWide) {
		t.Errorf("3 address cells: %v, want ErrTooWide", err)
	}
	if _, err := ParseReg([]uint32{1}, 0, 1); err == nil {
		t.Error("0 address cells should error")
	}
}

func TestRegionPredicates(t *testing.T) {
	a := Region{Base: 0x1000, Size: 0x1000}
	tests := []struct {
		name string
		b    Region
		want bool
	}{
		{"identical", Region{Base: 0x1000, Size: 0x1000}, true},
		{"contained", Region{Base: 0x1800, Size: 0x100}, true},
		{"partial low", Region{Base: 0x800, Size: 0x1000}, true},
		{"partial high", Region{Base: 0x1fff, Size: 0x10}, true},
		{"adjacent below", Region{Base: 0x0, Size: 0x1000}, false},
		{"adjacent above", Region{Base: 0x2000, Size: 0x1000}, false},
		{"disjoint", Region{Base: 0x10000, Size: 0x10}, false},
		{"zero size", Region{Base: 0x1800, Size: 0}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Overlaps(tt.b); got != tt.want {
				t.Errorf("Overlaps = %v, want %v", got, tt.want)
			}
			if got := tt.b.Overlaps(a); got != tt.want {
				t.Errorf("Overlaps not symmetric: %v, want %v", got, tt.want)
			}
		})
	}
	if !a.Contains(0x1000) || !a.Contains(0x1fff) || a.Contains(0x2000) || a.Contains(0xfff) {
		t.Error("Contains boundary behaviour wrong")
	}
}

func TestRegionEndOverflow(t *testing.T) {
	r := Region{Base: ^uint64(0) - 10, Size: 100}
	if _, ok := r.End(); ok {
		t.Error("overflowing region should report !ok")
	}
	r2 := Region{Base: 10, Size: 100}
	if end, ok := r2.End(); !ok || end != 110 {
		t.Errorf("End = %d,%v", end, ok)
	}
}

func TestPropertyOverlapSymmetricAndIrreflexiveOnDisjoint(t *testing.T) {
	prop := func(b1, s1, b2, s2 uint32) bool {
		r1 := Region{Base: uint64(b1), Size: uint64(s1)}
		r2 := Region{Base: uint64(b2), Size: uint64(s2)}
		if r1.Overlaps(r2) != r2.Overlaps(r1) {
			return false
		}
		// brute-force semantics on a sample of addresses
		if r1.Overlaps(r2) {
			// there must exist a shared address; check candidates
			candidates := []uint64{uint64(b1), uint64(b2), uint64(b1) + uint64(s1) - 1, uint64(b2) + uint64(s2) - 1}
			for _, a := range candidates {
				if r1.Contains(a) && r2.Contains(a) {
					return true
				}
			}
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

const collectDTS = `
/dts-v1/;
/ {
	#address-cells = <2>;
	#size-cells = <2>;

	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000
		       0x0 0x60000000 0x0 0x20000000>;
	};

	uart@20000000 {
		compatible = "ns16550a";
		reg = <0x0 0x20000000 0x0 0x1000>;
	};

	cpus {
		#address-cells = <1>;
		#size-cells = <0>;
		cpu@0 { device_type = "cpu"; reg = <0x0>; };
		cpu@1 { device_type = "cpu"; reg = <0x1>; };
	};

	soc {
		#address-cells = <1>;
		#size-cells = <1>;
		timer@f000 { reg = <0xf000 0x100>; };
	};
};
`

func TestCollectRegions(t *testing.T) {
	tree, err := dts.Parse("c.dts", collectDTS)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	regions, err := CollectRegions(tree)
	if err != nil {
		t.Fatalf("CollectRegions: %v", err)
	}
	// 2 memory banks + uart + timer = 4; CPUs skipped (#size-cells=0)
	if len(regions) != 4 {
		t.Fatalf("regions = %d (%v), want 4", len(regions), regions)
	}
	byPath := make(map[string][]Region)
	for _, r := range regions {
		byPath[r.Path] = append(byPath[r.Path], r)
	}
	mem := byPath["/memory@40000000"]
	if len(mem) != 2 || mem[0].Kind != KindMemory || mem[1].Base != 0x60000000 {
		t.Errorf("memory regions = %+v", mem)
	}
	timer := byPath["/soc/timer@f000"]
	if len(timer) != 1 || timer[0].Base != 0xf000 || timer[0].Size != 0x100 {
		t.Errorf("timer regions = %+v", timer)
	}
	if len(byPath["/cpus/cpu@0"]) != 0 {
		t.Error("cpu reg must not produce regions")
	}
}

func TestCollectRegionsDeviceFilter(t *testing.T) {
	tree, _ := dts.Parse("c.dts", collectDTS)
	regions, err := CollectRegions(tree, WithDeviceFilter(func(n *dts.Node) bool {
		return n.BaseName() == "uart"
	}))
	if err != nil {
		t.Fatal(err)
	}
	// memory always collected (2 banks) + uart; timer filtered out
	if len(regions) != 3 {
		t.Fatalf("regions = %v, want 3", regions)
	}
}

func TestCollectRegionsArityError(t *testing.T) {
	src := `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	dev@0 { reg = <0x0 0x10 0x20>; };
};
`
	tree, _ := dts.Parse("bad.dts", src)
	_, err := CollectRegions(tree)
	if !errors.Is(err, ErrArity) {
		t.Errorf("err = %v, want ErrArity", err)
	}
}

func TestOverlapping(t *testing.T) {
	regions := []Region{
		{Base: 0x40000000, Size: 0x20000000, Path: "/memory", Kind: KindMemory, Index: 0},
		{Base: 0x60000000, Size: 0x20000000, Path: "/memory", Kind: KindMemory, Index: 1},
		{Base: 0x60000000, Size: 0x1000, Path: "/uart", Kind: KindDevice, Index: 0},
	}
	pairs := Overlapping(regions)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v, want exactly the memory/uart clash", pairs)
	}
	if pairs[0][0].Path != "/memory" || pairs[0][1].Path != "/uart" {
		t.Errorf("pair = %v", pairs[0])
	}
}

func TestOverlappingSameNodeBanks(t *testing.T) {
	// two banks of the same node that collide (the truncation scenario)
	regions := []Region{
		{Base: 0x0, Size: 0x40000000, Path: "/memory", Kind: KindMemory, Index: 0},
		{Base: 0x0, Size: 0x20000000, Path: "/memory", Kind: KindMemory, Index: 1},
	}
	pairs := Overlapping(regions)
	if len(pairs) != 1 {
		t.Fatalf("same-node banks must be checked; pairs = %v", pairs)
	}
}

func TestBitWidth(t *testing.T) {
	tests := []struct{ cells, want int }{{1, 32}, {2, 64}, {3, 64}}
	for _, tt := range tests {
		if got := BitWidth(tt.cells); got != tt.want {
			t.Errorf("BitWidth(%d) = %d, want %d", tt.cells, got, tt.want)
		}
	}
}

func TestParseRanges(t *testing.T) {
	// child 1 cell, parent 2 cells, size 1 cell: stride 4
	cells := []uint32{0x0, 0x0, 0xe0000000, 0x10000000}
	entries, err := ParseRanges(cells, 1, 2, 1)
	if err != nil {
		t.Fatalf("ParseRanges: %v", err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %v", entries)
	}
	e := entries[0]
	if e.ChildBase != 0 || e.ParentBase != 0xe0000000 || e.Size != 0x10000000 {
		t.Errorf("entry = %+v", e)
	}

	if _, err := ParseRanges([]uint32{1, 2, 3, 4}, 1, 1, 1); !errors.Is(err, ErrArity) {
		t.Errorf("arity error not reported: %v", err)
	}
	if _, err := ParseRanges(cells, 3, 1, 1); !errors.Is(err, ErrTooWide) {
		t.Errorf("width error not reported: %v", err)
	}
}

func TestTranslate(t *testing.T) {
	ranges := []RangeEntry{
		{ChildBase: 0x0, ParentBase: 0xe0000000, Size: 0x10000000},
		{ChildBase: 0x80000000, ParentBase: 0x40000000, Size: 0x1000},
	}
	tests := []struct {
		addr, size uint64
		want       uint64
		ok         bool
	}{
		{0x0, 0x100, 0xe0000000, true},
		{0x1000, 0x100, 0xe0001000, true},
		{0xFFFFF00, 0x100, 0xeFFFFF00, true},
		{0xFFFFF01, 0x100, 0, false}, // crosses the window end
		{0x80000000, 0x1000, 0x40000000, true},
		{0x20000000, 0x100, 0, false}, // uncovered
	}
	for _, tt := range tests {
		got, ok := Translate(ranges, tt.addr, tt.size)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("Translate(0x%x, 0x%x) = 0x%x,%v; want 0x%x,%v",
				tt.addr, tt.size, got, ok, tt.want, tt.ok)
		}
	}
}

func TestCollectRegionsWithRangesTranslation(t *testing.T) {
	src := `
/dts-v1/;
/ {
	#address-cells = <2>;
	#size-cells = <2>;

	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000>;
	};

	soc {
		#address-cells = <1>;
		#size-cells = <1>;
		ranges = <0x0 0x0 0xe0000000 0x10000000>;

		uart@1000 {
			compatible = "ns16550a";
			reg = <0x1000 0x100>;
		};
	};
};
`
	tree, err := dts.Parse("ranges.dts", src)
	if err != nil {
		t.Fatal(err)
	}
	regions, err := CollectRegions(tree)
	if err != nil {
		t.Fatalf("CollectRegions: %v", err)
	}
	var uart *Region
	for i := range regions {
		if regions[i].Path == "/soc/uart@1000" {
			uart = &regions[i]
		}
	}
	if uart == nil {
		t.Fatal("uart region missing")
	}
	if uart.Base != 0xe0001000 {
		t.Errorf("uart base = %#x, want 0xe0001000 (translated)", uart.Base)
	}
}

func TestCollectRegionsUncoveredRange(t *testing.T) {
	src := `
/dts-v1/;
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	soc {
		#address-cells = <1>;
		#size-cells = <1>;
		ranges = <0x0 0x0 0xe0000000 0x1000>;
		uart@100000 {
			reg = <0x100000 0x100>;
		};
	};
};
`
	tree, _ := dts.Parse("bad.dts", src)
	_, err := CollectRegions(tree)
	if err == nil || !strings.Contains(err.Error(), "not covered") {
		t.Errorf("err = %v, want uncovered-range error", err)
	}
}

func TestCollectRegionsEmptyRangesIsIdentity(t *testing.T) {
	src := `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	soc {
		#address-cells = <1>;
		#size-cells = <1>;
		ranges;
		dev@5000 { reg = <0x5000 0x100>; };
	};
};
`
	tree, _ := dts.Parse("id.dts", src)
	regions, err := CollectRegions(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 || regions[0].Base != 0x5000 {
		t.Errorf("regions = %v", regions)
	}
}

func TestCollectRegionsNestedRanges(t *testing.T) {
	// two levels of translation: dev at 0x10 -> mid bus +0x1000 -> root +0xe0000000
	src := `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	outer {
		#address-cells = <1>;
		#size-cells = <1>;
		ranges = <0x0 0xe0000000 0x100000>;
		inner {
			#address-cells = <1>;
			#size-cells = <1>;
			ranges = <0x0 0x1000 0x1000>;
			dev@10 { reg = <0x10 0x8>; };
		};
	};
};
`
	tree, _ := dts.Parse("nested.dts", src)
	regions, err := CollectRegions(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 {
		t.Fatalf("regions = %v", regions)
	}
	if got := regions[0].Base; got != 0xe0001010 {
		t.Errorf("base = %#x, want 0xe0001010", got)
	}
}
