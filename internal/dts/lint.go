package dts

import (
	"fmt"
	"strconv"
	"strings"
)

// LintWarning is a well-formedness problem found by Lint.
type LintWarning struct {
	Path    string
	Rule    string
	Message string
	Origin  Origin
}

func (w LintWarning) String() string {
	return fmt.Sprintf("%s: %s [%s]", w.Path, w.Message, w.Rule)
}

// Lint performs the well-formedness checks a real dtc would warn about
// beyond pure syntax:
//
//   - duplicate labels,
//   - a unit address in the node name that does not match the first
//     reg address ("unit_address_vs_reg"),
//   - a node with a reg property but no unit address, and vice versa,
//   - #address-cells/#size-cells on leaf nodes with no addressable
//     children ("avoid_unnecessary_addr_size"),
//   - unresolved phandle references.
func (t *Tree) Lint() []LintWarning {
	var out []LintWarning
	labels := make(map[string]string) // label -> first path

	t.Root.Walk(func(path string, n *Node) bool {
		if n.Label != "" {
			if first, dup := labels[n.Label]; dup {
				out = append(out, LintWarning{
					Path: path, Rule: "duplicate_label",
					Message: fmt.Sprintf("label %q already used by %s", n.Label, first),
					Origin:  n.Origin,
				})
			} else {
				labels[n.Label] = path
			}
		}
		return true
	})

	var walk func(parent *Node, path string)
	walk = func(parent *Node, path string) {
		for _, n := range parent.Children {
			childPath := path + "/" + n.Name
			out = append(out, lintNode(n, parent, childPath)...)
			walk(n, childPath)
		}
	}
	walk(t.Root, "")

	// unresolved references in cells
	t.Root.Walk(func(path string, n *Node) bool {
		for _, p := range n.Properties {
			for _, ch := range p.Value.Chunks {
				refs := []string{}
				if ch.Kind == ChunkRef {
					refs = append(refs, ch.Ref)
				}
				for _, cell := range ch.CellList {
					if cell.Ref != "" {
						refs = append(refs, cell.Ref)
					}
				}
				for _, ref := range refs {
					if strings.HasPrefix(ref, "/") {
						if t.Lookup(ref) == nil {
							out = append(out, LintWarning{
								Path: path, Rule: "unresolved_reference",
								Message: fmt.Sprintf("property %s references missing path %s", p.Name, ref),
								Origin:  p.Origin,
							})
						}
					} else if _, ok := labels[ref]; !ok {
						out = append(out, LintWarning{
							Path: path, Rule: "unresolved_reference",
							Message: fmt.Sprintf("property %s references undefined label &%s", p.Name, ref),
							Origin:  p.Origin,
						})
					}
				}
			}
		}
		return true
	})
	return out
}

func lintNode(n, parent *Node, path string) []LintWarning {
	var out []LintWarning
	warn := func(rule, format string, args ...interface{}) {
		out = append(out, LintWarning{
			Path: path, Rule: rule,
			Message: fmt.Sprintf(format, args...),
			Origin:  n.Origin,
		})
	}

	unit := n.UnitAddress()
	reg := n.Property("reg")

	switch {
	case reg != nil && unit == "":
		warn("unit_address_missing", "node has a reg property but no unit address")
	case reg == nil && unit != "":
		warn("unit_address_without_reg", "node has a unit address but no reg property")
	case reg != nil && unit != "":
		// the unit address must match the first reg address
		cells := reg.Value.U32s()
		ac := parent.AddressCells()
		if ac >= 1 && ac <= 2 && len(cells) >= ac {
			var first uint64
			for i := 0; i < ac; i++ {
				first = first<<32 | uint64(cells[i])
			}
			if parsed, err := strconv.ParseUint(unit, 16, 64); err != nil {
				warn("unit_address_format", "unit address %q is not hexadecimal", unit)
			} else if parsed != first {
				warn("unit_address_vs_reg",
					"unit address 0x%s does not match the first reg address 0x%x", unit, first)
			}
		}
	}

	if len(n.Children) == 0 {
		if n.Property("#address-cells") != nil || n.Property("#size-cells") != nil {
			warn("avoid_unnecessary_addr_size",
				"#address-cells/#size-cells on a node without children")
		}
	}
	return out
}
