package dts

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the /plugin/ overlay semantics of dtc (DESIGN.md
// §16): applying an overlay's fragments onto a base tree, generating
// the __symbols__ table dtc emits under -@, and compiling the sugar
// form (`&label { ... }` extension blocks) into the fragment@N /
// __overlay__ / __fixups__ structure that ends up in a .dtbo.

// OverlayError reports a failed overlay operation (application or
// compilation). It is distinct from ParseError: the overlay parsed
// fine, but could not be combined with the base tree it was given.
type OverlayError struct {
	Ref string // offending fragment target or reference ("" if none)
	Msg string
}

func (e *OverlayError) Error() string {
	if e.Ref == "" {
		return "overlay: " + e.Msg
	}
	return fmt.Sprintf("overlay: %s: %s", e.Ref, e.Msg)
}

// BuildSymbols returns a __symbols__ node for the tree: one string
// property per label, mapping the label to the absolute path of the
// node carrying it, sorted by label for determinism. This is the table
// dtc generates under -@ so that later overlays can resolve base-tree
// labels at application time.
func BuildSymbols(t *Tree) *Node {
	byLabel := make(map[string]string)
	t.Root.Walk(func(path string, n *Node) bool {
		if n.Label != "" {
			if _, dup := byLabel[n.Label]; !dup {
				byLabel[n.Label] = path
			}
		}
		return true
	})
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	sym := &Node{Name: "__symbols__"}
	for _, l := range labels {
		sym.Properties = append(sym.Properties, &Property{
			Name:  l,
			Value: StringValueOf(byLabel[l]),
		})
	}
	return sym
}

// AddSymbols attaches a freshly built __symbols__ node to the tree
// root, replacing any previous one (the dtc -@ behavior). The symbols
// are computed before insertion, so the table does not list itself.
func (t *Tree) AddSymbols() {
	sym := BuildSymbols(t)
	t.Root.RemoveChild("__symbols__")
	t.Root.Children = append(t.Root.Children, sym)
}

// ApplyOverlay merges a /plugin/ overlay into a clone of base and
// returns the combined tree. The overlay's own root content (dtc
// compiles top-level `/ { }` blocks of a plugin into fragments with
// target-path "/") merges into the base root first; then each fragment
// merges into its target, resolved by label (&label, via the label
// actually carried by a base node — a __symbols__ table is not
// required) or by path (&{/path}) against the partially merged tree in
// document order. An unresolvable target is an *OverlayError. The
// result is a plain tree: Plugin is cleared and no fragments remain.
func ApplyOverlay(base, ov *Tree) (*Tree, error) {
	if !ov.Plugin {
		return nil, &OverlayError{Msg: "tree is not a /plugin/ overlay"}
	}
	out := base.Clone()
	if len(ov.Root.Properties) > 0 || len(ov.Root.Children) > 0 {
		out.Root.Merge(ov.Root)
	}
	for _, f := range ov.Fragments {
		var target *Node
		if f.IsPath {
			target = out.Lookup(f.Ref)
		} else {
			target = out.LookupLabel(f.Ref)
		}
		if target == nil {
			what := "label"
			if f.IsPath {
				what = "path"
			}
			return nil, &OverlayError{Ref: f.Ref,
				Msg: fmt.Sprintf("fragment target %s not found in base tree", what)}
		}
		target.Merge(f.Node)
	}
	out.Plugin = false
	out.Fragments = nil
	return out, nil
}

// CompileOverlay converts a parsed sugar-form overlay into the
// compiled structure dtc writes to a .dtbo: one fragment@N node per
// extension block (the overlay's own root content becomes fragment 0
// with target-path "/"), each holding a target (cell reference) or
// target-path (string) property and an __overlay__ child with the
// fragment body; a __symbols__ node mapping overlay-local labels to
// their compiled paths; a __fixups__ node listing, per external label,
// the "path:property:offset" locations of cells that must be patched
// with the base tree's phandle at application time; and a
// __local_fixups__ hierarchy mirroring the locations of cells that
// reference overlay-local labels.
func CompileOverlay(ov *Tree) (*Tree, error) {
	if !ov.Plugin {
		return nil, &OverlayError{Msg: "tree is not a /plugin/ overlay"}
	}

	type fragSrc struct {
		ref    string
		isPath bool
		node   *Node
	}
	var srcs []fragSrc
	if len(ov.Root.Properties) > 0 || len(ov.Root.Children) > 0 {
		srcs = append(srcs, fragSrc{ref: "/", isPath: true, node: ov.Root})
	}
	for _, f := range ov.Fragments {
		srcs = append(srcs, fragSrc{ref: f.Ref, isPath: f.IsPath, node: f.Node})
	}

	out := NewTree()
	for i, s := range srcs {
		frag := &Node{Name: fmt.Sprintf("fragment@%d", i)}
		if s.isPath {
			frag.SetProperty(&Property{Name: "target-path", Value: StringValueOf(s.ref)})
		} else {
			frag.SetProperty(&Property{Name: "target", Value: Value{Chunks: []Chunk{
				{Kind: ChunkCells, CellList: []Cell{{Ref: s.ref}}},
			}}})
		}
		body := s.node.Clone()
		body.Name = "__overlay__"
		body.Label = ""
		frag.Children = append(frag.Children, body)
		out.Root.Children = append(out.Root.Children, frag)
	}

	// Pass 1: overlay-local labels and their compiled paths.
	local := make(map[string]string)
	out.Root.Walk(func(path string, n *Node) bool {
		if n.Label != "" {
			if _, dup := local[n.Label]; dup {
				return true
			}
			local[n.Label] = path
		}
		return true
	})

	// Pass 2: classify every cell reference as local or external and
	// record its encoded location.
	fixups := make(map[string][]string) // external label -> "path:prop:offset"
	type localFix struct {
		path, prop string
		offset     int
	}
	var localFixes []localFix
	var scanErr error
	out.Root.Walk(func(path string, n *Node) bool {
		for _, p := range n.Properties {
			offsets, refs, err := refCellOffsets(p.Value)
			if err != nil {
				scanErr = &OverlayError{Ref: path + ":" + p.Name, Msg: err.Error()}
				return false
			}
			for i, ref := range refs {
				if _, ok := local[ref]; ok {
					localFixes = append(localFixes, localFix{path, p.Name, offsets[i]})
				} else {
					fixups[ref] = append(fixups[ref],
						fmt.Sprintf("%s:%s:%d", path, p.Name, offsets[i]))
				}
			}
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}

	if len(local) > 0 {
		labels := make([]string, 0, len(local))
		for l := range local {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		sym := &Node{Name: "__symbols__"}
		for _, l := range labels {
			sym.Properties = append(sym.Properties, &Property{Name: l, Value: StringValueOf(local[l])})
		}
		out.Root.Children = append(out.Root.Children, sym)
	}

	if len(fixups) > 0 {
		labels := make([]string, 0, len(fixups))
		for l := range fixups {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		fx := &Node{Name: "__fixups__"}
		for _, l := range labels {
			fx.Properties = append(fx.Properties, &Property{Name: l, Value: StringValueOf(fixups[l]...)})
		}
		out.Root.Children = append(out.Root.Children, fx)
	}

	if len(localFixes) > 0 {
		lf := &Node{Name: "__local_fixups__"}
		for _, f := range localFixes {
			n := lf
			for _, part := range strings.Split(strings.Trim(f.path, "/"), "/") {
				if part == "" {
					continue
				}
				n = n.EnsureChild(part)
			}
			if p := n.Property(f.prop); p != nil {
				p.Value.Chunks[0].CellList = append(p.Value.Chunks[0].CellList,
					Cell{Val: uint32(f.offset)})
			} else {
				n.SetProperty(&Property{Name: f.prop, Value: CellsValue(uint32(f.offset))})
			}
		}
		out.Root.Children = append(out.Root.Children, lf)
	}

	return out, nil
}

// refCellOffsets returns, for each reference cell in the value, its
// byte offset in the dtb encoding of the property, with the label it
// references. A path reference chunk (&label outside angle brackets)
// before a reference cell makes the offset depend on the base tree's
// node paths, which is not representable in a compiled overlay.
func refCellOffsets(v Value) (offsets []int, refs []string, err error) {
	off := 0
	pathRef := "" // set once a base-dependent chunk makes later offsets unknowable
	for _, c := range v.Chunks {
		switch c.Kind {
		case ChunkString:
			off += len(c.Str) + 1
		case ChunkBytes:
			off += len(c.Bytes)
		case ChunkRef:
			pathRef = c.Ref
		case ChunkCells:
			width := c.Bits
			if width == 0 {
				width = 32
			}
			for _, cell := range c.CellList {
				if cell.Ref != "" {
					if pathRef != "" {
						return nil, nil, fmt.Errorf(
							"path reference &%s has base-dependent size; cannot compute fixup offsets past it", pathRef)
					}
					offsets = append(offsets, off)
					refs = append(refs, cell.Ref)
				}
				off += width / 8
			}
		}
	}
	return offsets, refs, nil
}
