package dts

import (
	"strings"
	"testing"
)

// originDumpTree builds a small tree with one delta-stamped property.
func originDumpTree(deltaName string) *Tree {
	t := NewTree()
	uart := t.Root.EnsureChild("uart@1000")
	uart.SetProperty(&Property{
		Name:   "compatible",
		Value:  StringValueOf("ns16550a"),
		Origin: Origin{Delta: deltaName},
	})
	return t
}

func TestOriginDumpDistinguishesBlame(t *testing.T) {
	a := originDumpTree("alpha")
	b := originDumpTree("beta")
	if a.Print() != b.Print() {
		t.Fatal("canonical text should be identical regardless of origins")
	}
	if a.OriginDump() == b.OriginDump() {
		t.Error("trees blaming different deltas must produce different origin dumps")
	}
	if a.OriginDump() != originDumpTree("alpha").OriginDump() {
		t.Error("OriginDump is not deterministic")
	}
}

func TestOriginDumpSkipsZeroOrigins(t *testing.T) {
	tr := NewTree()
	tr.Root.EnsureChild("memory@0")
	if d := tr.OriginDump(); d != "" {
		t.Errorf("tree without origins dumped %q, want empty", d)
	}
}

func TestOriginDumpLengthPrefixesFields(t *testing.T) {
	// A delta name that embeds another record's syntax must not allow
	// two different origin sets to collide.
	a := originDumpTree("x@1\n4:node")
	b := originDumpTree("x")
	if a.OriginDump() == b.OriginDump() {
		t.Error("length prefixing failed: crafted delta name collides")
	}
	if !strings.Contains(a.OriginDump(), "x@1") {
		t.Error("delta name missing from dump")
	}
}
