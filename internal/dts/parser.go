package dts

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Guard errors. Parse errors caused by an exceeded input limit wrap
// one of these sentinels, so callers can map them to a "request too
// large" response with errors.Is.
var (
	// ErrTooDeep reports node nesting beyond the configured limit
	// (default defaultMaxNodeDepth) — deeply nested input would
	// otherwise exhaust the recursive-descent parser's stack.
	ErrTooDeep = errors.New("dts: node nesting too deep")
	// ErrSourceTooLarge reports total source size (including resolved
	// includes) beyond the limit set with WithMaxSourceBytes.
	ErrSourceTooLarge = errors.New("dts: source too large")
)

// defaultMaxNodeDepth bounds node-body nesting. Real device trees are
// a handful of levels deep; 64 leaves generous headroom while keeping
// adversarial input from exhausting the goroutine stack.
const defaultMaxNodeDepth = 64

// Includer resolves /include/ directives to file contents.
type Includer interface {
	Resolve(name string) ([]byte, error)
}

// DirIncluder resolves includes relative to a directory on disk.
type DirIncluder string

// Resolve implements Includer.
func (d DirIncluder) Resolve(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(string(d), name))
}

// MapIncluder resolves includes from an in-memory map (used by tests
// and by embedded workloads).
type MapIncluder map[string]string

// Resolve implements Includer.
func (m MapIncluder) Resolve(name string) ([]byte, error) {
	src, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("include %q not found", name)
	}
	return []byte(src), nil
}

// ParseOption configures parsing.
type ParseOption func(*parser)

// WithIncluder supplies the resolver for /include/ directives. Without
// one, includes are an error.
func WithIncluder(inc Includer) ParseOption {
	return func(p *parser) { p.includer = inc }
}

// WithMaxNodeDepth overrides the node-nesting guard (0 restores the
// default). Exceeding it fails the parse with an error wrapping
// ErrTooDeep.
func WithMaxNodeDepth(n int) ParseOption {
	return func(p *parser) {
		if n <= 0 {
			n = defaultMaxNodeDepth
		}
		p.maxNodeDepth = n
	}
}

// WithMaxSourceBytes caps the total source size, counting every
// /include/'d file (0 = unlimited). Exceeding it fails the parse with
// an error wrapping ErrSourceTooLarge.
func WithMaxSourceBytes(n int) ParseOption {
	return func(p *parser) { p.maxSourceBytes = n }
}

// Parse parses DTS source text into a Tree. file is used in error
// messages and origins.
//
// Parsing is two-pass: the first pass tokenizes every source unit
// (recursing into /include/s) and records top-level operations — root
// merges, named nodes, &label extensions, /delete-node/ — in document
// order; the second pass applies them, deferring label references that
// are not yet resolvable so forward references (a `&label { ... }`
// block before the label's definition) work as they do in dtc. In
// /plugin/ sources, references that never resolve become overlay
// fragments on the tree instead of errors.
func Parse(file, src string, opts ...ParseOption) (*Tree, error) {
	p := newParser(opts)
	if err := p.parseSource(file, src, 0); err != nil {
		return nil, err
	}
	if err := p.resolveTopLevel(); err != nil {
		return nil, err
	}
	return p.tree, nil
}

func newParser(opts []ParseOption) *parser {
	p := &parser{tree: NewTree(), maxDepth: 32, maxNodeDepth: defaultMaxNodeDepth}
	for _, o := range opts {
		o(p)
	}
	return p
}

// ParseFile reads and parses a DTS file; /include/ directives resolve
// relative to the file's directory.
func ParseFile(path string, opts ...ParseOption) (*Tree, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	opts = append([]ParseOption{WithIncluder(DirIncluder(filepath.Dir(path)))}, opts...)
	return Parse(filepath.Base(path), string(src), opts...)
}

// ParseFragment parses a bare node body of the form "{ ... }" — the
// payload syntax of delta-module operations (internal/delta). The
// returned node carries the fragment's properties and children under
// the given name.
func ParseFragment(file, name, src string, opts ...ParseOption) (*Node, error) {
	p := newParser(opts)
	if p.maxSourceBytes > 0 && len(src) > p.maxSourceBytes {
		return nil, &ParseError{File: file, Line: 1, Err: ErrSourceTooLarge,
			Msg: fmt.Sprintf("fragment is %d bytes (limit %d): %v",
				len(src), p.maxSourceBytes, ErrSourceTooLarge)}
	}
	p.lex = newLexer(file, src)
	if err := p.advance(); err != nil {
		return nil, err
	}
	n, err := p.parseNodeBody(name)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %v after fragment", p.tok.kind)
	}
	return n, nil
}

type parser struct {
	lex      *lexer
	tok      token
	tree     *Tree
	includer Includer
	maxDepth int // include nesting

	maxNodeDepth   int // node-body nesting guard
	nodeDepth      int
	maxSourceBytes int // cumulative source size guard (0 = unlimited)
	sourceBytes    int

	ops []topOp // top-level operations in document order
}

// topOpKind discriminates deferred top-level operations.
type topOpKind int

const (
	opRootMerge topOpKind = iota + 1 // / { ... };
	opNamedNode                      // name { ... }; at top level
	opRefMerge                       // &label { ... }; or &{/path} { ... };
	opRefDelete                      // /delete-node/ &label;
	opNameDelete                     // /delete-node/ name; (root child)
)

// topOp is one top-level operation recorded by the first parse pass.
type topOp struct {
	kind topOpKind
	ref  string // label or absolute path for opRefMerge/opRefDelete
	name string // node name for opNameDelete
	node *Node  // payload for the merge kinds
	file string // position for unresolved-reference diagnostics
	line int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{File: p.lex.file, Line: p.tok.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("expected %v, found %v", k, p.tok.kind)
	}
	t := p.tok
	return t, p.advance()
}

// parseSource parses one source unit (top level of a file) into the
// shared tree, recursing into includes.
func (p *parser) parseSource(file, src string, depth int) error {
	if depth > p.maxDepth {
		return &ParseError{File: file, Line: 1,
			Msg: fmt.Sprintf("include nesting deeper than %d (cycle?)", p.maxDepth)}
	}
	p.sourceBytes += len(src)
	if p.maxSourceBytes > 0 && p.sourceBytes > p.maxSourceBytes {
		return &ParseError{File: file, Line: 1, Err: ErrSourceTooLarge,
			Msg: fmt.Sprintf("%d bytes of source (limit %d): %v",
				p.sourceBytes, p.maxSourceBytes, ErrSourceTooLarge)}
	}
	savedLex, savedTok := p.lex, p.tok
	p.lex = newLexer(file, src)
	if err := p.advance(); err != nil {
		return err
	}
	err := p.parseTopLevel(depth)
	p.lex, p.tok = savedLex, savedTok
	return err
}

func (p *parser) parseTopLevel(depth int) error {
	for {
		switch p.tok.kind {
		case tokEOF:
			return nil

		case tokDirective:
			switch p.tok.text {
			case "/dts-v1/":
				if err := p.advance(); err != nil {
					return err
				}
				if _, err := p.expect(tokSemi); err != nil {
					return err
				}
			case "/include/":
				if err := p.advance(); err != nil {
					return err
				}
				name, err := p.expect(tokString)
				if err != nil {
					return err
				}
				if p.includer == nil {
					return p.errf("/include/ %q: no includer configured", name.text)
				}
				src, err := p.includer.Resolve(name.text)
				if err != nil {
					return p.errf("/include/ %q: %v", name.text, err)
				}
				if err := p.parseSource(name.text, string(src), depth+1); err != nil {
					return err
				}
			case "/plugin/":
				if err := p.advance(); err != nil {
					return err
				}
				if _, err := p.expect(tokSemi); err != nil {
					return err
				}
				p.tree.Plugin = true
			case "/omit-if-no-ref/":
				// dtc uses this as a hint that the following node may be
				// dropped from the dtb when nothing references it. We keep
				// every node, so the directive is an explicit no-op: skip
				// it and parse the node definition that follows normally.
				if err := p.advance(); err != nil {
					return err
				}
			case "/memreserve/":
				if err := p.advance(); err != nil {
					return err
				}
				addr, err := p.expect(tokNumber)
				if err != nil {
					return err
				}
				size, err := p.expect(tokNumber)
				if err != nil {
					return err
				}
				if _, err := p.expect(tokSemi); err != nil {
					return err
				}
				p.tree.MemReserves = append(p.tree.MemReserves, MemReserve{
					Address: addr.num, Size: size.num,
				})
			case "/delete-node/":
				// Both dtc forms: the reference form `/delete-node/ &label;`
				// (resolved post-parse, so forward labels work) and the
				// name form `/delete-node/ name;` deleting a root child.
				line := p.tok.line
				if err := p.advance(); err != nil {
					return err
				}
				switch p.tok.kind {
				case tokRef:
					p.ops = append(p.ops, topOp{kind: opRefDelete, ref: p.tok.text,
						file: p.lex.file, line: line})
				case tokIdent:
					p.ops = append(p.ops, topOp{kind: opNameDelete, name: p.tok.text,
						file: p.lex.file, line: line})
				default:
					return p.errf("/delete-node/ at top level takes &label, &{/path} or a root child name, found %v",
						p.tok.kind)
				}
				if err := p.advance(); err != nil {
					return err
				}
				if _, err := p.expect(tokSemi); err != nil {
					return err
				}
			default:
				return p.errf("unsupported directive %s", p.tok.text)
			}

		case tokSlash:
			// root node definition: / { ... };
			if err := p.advance(); err != nil {
				return err
			}
			n, err := p.parseNodeBody("/")
			if err != nil {
				return err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return err
			}
			p.ops = append(p.ops, topOp{kind: opRootMerge, node: n})

		case tokRef:
			// &label { ... }; extends a node defined elsewhere — possibly
			// later in the file (forward reference) or, in /plugin/
			// sources, in the base tree the overlay targets.
			ref := p.tok.text
			line := p.tok.line
			if err := p.advance(); err != nil {
				return err
			}
			n, err := p.parseNodeBody("&" + ref)
			if err != nil {
				return err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return err
			}
			p.ops = append(p.ops, topOp{kind: opRefMerge, ref: ref, node: n,
				file: p.lex.file, line: line})

		case tokLabel, tokIdent:
			// top-level named node (non-standard but common in fragments)
			n, err := p.parseNamedNode()
			if err != nil {
				return err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return err
			}
			p.ops = append(p.ops, topOp{kind: opNamedNode, node: n})

		default:
			return p.errf("unexpected %v at top level", p.tok.kind)
		}
	}
}

// resolveTopLevel is the second pass: it applies the recorded top-level
// operations in document order. An operation whose label or path target
// is not resolvable yet is deferred and retried after the rest have
// been applied, which is what makes forward references work; operations
// that never resolve are an error — except in /plugin/ sources, where
// unresolved extension blocks become overlay fragments targeting the
// base tree.
func (p *parser) resolveTopLevel() error {
	pending := p.ops
	p.ops = nil
	for len(pending) > 0 {
		var deferred []topOp
		progress := false
		for _, op := range pending {
			applied, err := p.applyTopOp(op)
			if err != nil {
				return err
			}
			if applied {
				progress = true
			} else {
				deferred = append(deferred, op)
			}
		}
		if !progress {
			return p.finishUnresolved(deferred)
		}
		pending = deferred
	}
	return nil
}

// applyTopOp applies one top-level operation; ok=false means the
// operation's reference target does not exist yet and it should be
// retried once more definitions have been applied.
func (p *parser) applyTopOp(op topOp) (ok bool, err error) {
	switch op.kind {
	case opRootMerge:
		p.tree.Root.Merge(op.node)
	case opNamedNode:
		if mine := p.tree.Root.Child(op.node.Name); mine != nil {
			mine.Merge(op.node)
		} else {
			p.tree.Root.Children = append(p.tree.Root.Children, op.node)
		}
	case opRefMerge:
		target := p.lookupRef(op.ref)
		if target == nil {
			return false, nil
		}
		target.Merge(op.node)
	case opRefDelete:
		target := p.lookupRef(op.ref)
		if target == nil {
			return false, nil
		}
		p.deleteNode(target)
	case opNameDelete:
		// dtc semantics: deleting an absent node is a no-op.
		p.tree.Root.RemoveChild(op.name)
	}
	return true, nil
}

// lookupRef resolves a reference target: absolute paths via Lookup,
// labels via LookupLabel.
func (p *parser) lookupRef(ref string) *Node {
	if strings.HasPrefix(ref, "/") {
		return p.tree.Lookup(ref)
	}
	return p.tree.LookupLabel(ref)
}

// finishUnresolved handles the operations left after the resolver
// stalls: in plugin mode, unresolved extension blocks become overlay
// fragments (their targets live in the base tree); everything else is
// a precise ParseError at the reference's source position.
func (p *parser) finishUnresolved(deferred []topOp) error {
	for _, op := range deferred {
		switch op.kind {
		case opRefMerge:
			if p.tree.Plugin {
				p.tree.Fragments = append(p.tree.Fragments, OverlayFragment{
					Ref:    op.ref,
					IsPath: strings.HasPrefix(op.ref, "/"),
					Node:   op.node,
				})
				continue
			}
			return &ParseError{File: op.file, Line: op.line,
				Msg: fmt.Sprintf("reference to undefined label &%s", op.ref)}
		case opRefDelete:
			if strings.HasPrefix(op.ref, "/") {
				return &ParseError{File: op.file, Line: op.line,
					Msg: fmt.Sprintf("/delete-node/ &{%s}: no node at that path", op.ref)}
			}
			if p.tree.Plugin {
				return &ParseError{File: op.file, Line: op.line,
					Msg: fmt.Sprintf("/delete-node/ &%s targeting the base tree is not supported in a /plugin/ overlay", op.ref)}
			}
			return &ParseError{File: op.file, Line: op.line,
				Msg: fmt.Sprintf("/delete-node/ &%s: reference to undefined label", op.ref)}
		default:
			// Root/named merges and name deletes always apply; reaching
			// here would be a resolver bug.
			return &ParseError{File: op.file, Line: op.line,
				Msg: "internal error: unresolvable top-level operation"}
		}
	}
	return nil
}

func (p *parser) deleteNode(target *Node) {
	p.tree.Root.Walk(func(path string, n *Node) bool {
		for _, c := range n.Children {
			if c == target {
				n.RemoveChild(c.Name)
				return false
			}
		}
		return true
	})
}

// parseNamedNode parses "[label:] name { ... };" with the leading
// label/ident as the current token.
func (p *parser) parseNamedNode() (*Node, error) {
	var label string
	if p.tok.kind == tokLabel {
		label = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	n, err := p.parseNodeBody(name.text)
	if err != nil {
		return nil, err
	}
	n.Label = label
	n.Origin = Origin{File: p.lex.file, Line: name.line}
	return n, nil
}

// parseNodeBody parses "{ contents };" returning a node with the given
// name.
func (p *parser) parseNodeBody(name string) (*Node, error) {
	p.nodeDepth++
	defer func() { p.nodeDepth-- }()
	if p.nodeDepth > p.maxNodeDepth {
		return nil, &ParseError{File: p.lex.file, Line: p.tok.line, Err: ErrTooDeep,
			Msg: fmt.Sprintf("node %s nests deeper than %d: %v",
				name, p.maxNodeDepth, ErrTooDeep)}
	}
	n := &Node{Name: name, Origin: Origin{File: p.lex.file, Line: p.tok.line}}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.tok.kind != tokRBrace {
		switch p.tok.kind {
		case tokEOF:
			return nil, p.errf("unexpected end of file in node %s", name)

		case tokDirective:
			switch p.tok.text {
			case "/delete-node/":
				if err := p.advance(); err != nil {
					return nil, err
				}
				child, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokSemi); err != nil {
					return nil, err
				}
				n.RemoveChild(child.text)
				n.delNodes = append(n.delNodes, child.text)
			case "/delete-property/":
				if err := p.advance(); err != nil {
					return nil, err
				}
				prop, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokSemi); err != nil {
					return nil, err
				}
				n.RemoveProperty(prop.text)
				n.delProps = append(n.delProps, prop.text)
			case "/omit-if-no-ref/":
				// no-op hint; the node definition that follows parses
				// normally (see the top-level case for rationale)
				if err := p.advance(); err != nil {
					return nil, err
				}
			default:
				return nil, p.errf("unsupported directive %s in node", p.tok.text)
			}

		case tokLabel:
			child, err := p.parseNamedNode()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
			p.mergeChild(n, child)

		case tokIdent, tokNumber:
			// Could be a property ("name = ...;", "name;") or a child
			// node ("name { ... };"). Number-leading identifiers (like
			// unit-address-only names) arrive as tokNumber.
			ident := p.tok.text
			line := p.tok.line
			if err := p.advance(); err != nil {
				return nil, err
			}
			switch p.tok.kind {
			case tokEquals:
				if err := p.advance(); err != nil {
					return nil, err
				}
				val, err := p.parseValue()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokSemi); err != nil {
					return nil, err
				}
				n.SetProperty(&Property{
					Name: ident, Value: val,
					Origin: Origin{File: p.lex.file, Line: line},
				})
			case tokSemi:
				if err := p.advance(); err != nil {
					return nil, err
				}
				n.SetProperty(&Property{
					Name:   ident,
					Origin: Origin{File: p.lex.file, Line: line},
				})
			case tokLBrace:
				child, err := p.parseNodeBody(ident)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokSemi); err != nil {
					return nil, err
				}
				child.Origin = Origin{File: p.lex.file, Line: line}
				p.mergeChild(n, child)
			default:
				return nil, p.errf("expected '=', ';' or '{' after %q, found %v",
					ident, p.tok.kind)
			}

		default:
			return nil, p.errf("unexpected %v in node %s", p.tok.kind, name)
		}
	}
	return n, p.advance() // consume '}'
}

func (p *parser) mergeChild(parent, child *Node) {
	if mine := parent.Child(child.Name); mine != nil {
		mine.Merge(child)
	} else {
		parent.Children = append(parent.Children, child)
	}
}

// parseValue parses a property value: comma-separated chunks of cells
// (optionally width-prefixed with /bits/), strings, byte arrays or
// references.
func (p *parser) parseValue() (Value, error) {
	var v Value
	for {
		switch p.tok.kind {
		case tokDirective:
			if p.tok.text != "/bits/" {
				return Value{}, p.errf("unexpected directive %s in property value", p.tok.text)
			}
			if err := p.advance(); err != nil {
				return Value{}, err
			}
			width, err := p.expect(tokNumber)
			if err != nil {
				return Value{}, err
			}
			switch width.num {
			case 8, 16, 32, 64:
			default:
				return Value{}, p.errf("/bits/ width must be 8, 16, 32 or 64, got %d", width.num)
			}
			chunk, err := p.parseCells(int(width.num))
			if err != nil {
				return Value{}, err
			}
			v.Chunks = append(v.Chunks, chunk)
		case tokLAngle:
			chunk, err := p.parseCells(0)
			if err != nil {
				return Value{}, err
			}
			v.Chunks = append(v.Chunks, chunk)
		case tokString:
			v.Chunks = append(v.Chunks, Chunk{Kind: ChunkString, Str: p.tok.text})
			if err := p.advance(); err != nil {
				return Value{}, err
			}
		case tokLBracket:
			chunk, err := p.parseBytes()
			if err != nil {
				return Value{}, err
			}
			v.Chunks = append(v.Chunks, chunk)
		case tokRef:
			v.Chunks = append(v.Chunks, Chunk{Kind: ChunkRef, Ref: p.tok.text})
			if err := p.advance(); err != nil {
				return Value{}, err
			}
		default:
			return Value{}, p.errf("expected property value, found %v", p.tok.kind)
		}
		if p.tok.kind != tokComma {
			return v, nil
		}
		if err := p.advance(); err != nil {
			return Value{}, err
		}
	}
}

// parseCells parses one <...> cell array. bits is the element width
// from a /bits/ prefix (0 = default 32). Values are masked to the
// element width as in dtc; 64-bit elements keep their full value in
// Val64. Phandle references are only meaningful as u32 cells, so dtc
// (and we) reject them at any other width.
func (p *parser) parseCells(bits int) (Chunk, error) {
	if _, err := p.expect(tokLAngle); err != nil {
		return Chunk{}, err
	}
	chunk := Chunk{Kind: ChunkCells, Bits: bits}
	for p.tok.kind != tokRAngle {
		switch p.tok.kind {
		case tokNumber, tokLParen:
			val, err := p.parseCellExpr()
			if err != nil {
				return Chunk{}, err
			}
			cell := Cell{Val: uint32(val)}
			switch bits {
			case 8:
				cell.Val = uint32(uint8(val))
			case 16:
				cell.Val = uint32(uint16(val))
			case 64:
				cell.Val64 = val
			}
			chunk.CellList = append(chunk.CellList, cell)
		case tokRef:
			if bits != 0 && bits != 32 {
				return Chunk{}, p.errf("references are only allowed in 32-bit cell arrays, not /bits/ %d", bits)
			}
			chunk.CellList = append(chunk.CellList, Cell{Ref: p.tok.text})
			if err := p.advance(); err != nil {
				return Chunk{}, err
			}
		case tokEOF:
			return Chunk{}, p.errf("unterminated cell list")
		default:
			return Chunk{}, p.errf("unexpected %v in cell list", p.tok.kind)
		}
	}
	return chunk, p.advance() // consume '>'
}

// parseCellExpr parses an integer expression with dtc's full C
// operator set: numbers (including character literals), parentheses,
// the arithmetic/bitwise operators + - * / % << >> & | ^ ~, the
// comparisons < > <= >= == !=, logical ! && ||, and the ternary ?:,
// all at C precedence. Like dtc, arithmetic is unsigned 64-bit and
// both ternary branches are evaluated eagerly.
func (p *parser) parseCellExpr() (uint64, error) {
	return p.parseTernary()
}

// parseTernary parses "cond ? a : b" (right-associative, lowest
// precedence); "?" and ":" are deliberately absent from the binary
// precedence table so parseBinary stops at them.
func (p *parser) parseTernary() (uint64, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return 0, err
	}
	if p.tok.kind != tokOp || p.tok.text != "?" {
		return cond, nil
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	a, err := p.parseTernary()
	if err != nil {
		return 0, err
	}
	if p.tok.kind != tokOp || p.tok.text != ":" {
		return 0, p.errf("expected ':' in ternary expression, found %v", p.tok.kind)
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	b, err := p.parseTernary()
	if err != nil {
		return 0, err
	}
	if cond != 0 {
		return a, nil
	}
	return b, nil
}

var precedence = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (p *parser) parseBinary(minPrec int) (uint64, error) {
	left, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for p.tok.kind == tokOp {
		prec, ok := precedence[p.tok.text]
		if !ok || prec < minPrec {
			break
		}
		op := p.tok.text
		if err := p.advance(); err != nil {
			return 0, err
		}
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return 0, err
		}
		switch op {
		case "+":
			left += right
		case "-":
			left -= right
		case "*":
			left *= right
		case "/":
			if right == 0 {
				return 0, p.errf("division by zero in cell expression")
			}
			left /= right
		case "%":
			if right == 0 {
				return 0, p.errf("modulo by zero in cell expression")
			}
			left %= right
		case "<<":
			left <<= right & 63
		case ">>":
			left >>= right & 63
		case "&":
			left &= right
		case "|":
			left |= right
		case "^":
			left ^= right
		case "<":
			left = boolToU64(left < right)
		case ">":
			left = boolToU64(left > right)
		case "<=":
			left = boolToU64(left <= right)
		case ">=":
			left = boolToU64(left >= right)
		case "==":
			left = boolToU64(left == right)
		case "!=":
			left = boolToU64(left != right)
		case "&&":
			left = boolToU64(left != 0 && right != 0)
		case "||":
			left = boolToU64(left != 0 || right != 0)
		}
	}
	return left, nil
}

func (p *parser) parseUnary() (uint64, error) {
	switch p.tok.kind {
	case tokOp:
		switch p.tok.text {
		case "-":
			if err := p.advance(); err != nil {
				return 0, err
			}
			v, err := p.parseUnary()
			return -v, err
		case "~":
			if err := p.advance(); err != nil {
				return 0, err
			}
			v, err := p.parseUnary()
			return ^v, err
		case "!":
			if err := p.advance(); err != nil {
				return 0, err
			}
			v, err := p.parseUnary()
			return boolToU64(v == 0), err
		}
		return 0, p.errf("unexpected operator %q", p.tok.text)
	case tokNumber:
		v := p.tok.num
		return v, p.advance()
	case tokLParen:
		if err := p.advance(); err != nil {
			return 0, err
		}
		v, err := p.parseTernary()
		if err != nil {
			return 0, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return 0, err
		}
		return v, nil
	default:
		return 0, p.errf("expected number, found %v", p.tok.kind)
	}
}

func (p *parser) parseBytes() (Chunk, error) {
	if _, err := p.expect(tokLBracket); err != nil {
		return Chunk{}, err
	}
	chunk := Chunk{Kind: ChunkBytes}
	for p.tok.kind != tokRBracket {
		var hexText string
		switch p.tok.kind {
		case tokNumber:
			hexText = p.tok.text
			hexText = strings.TrimPrefix(strings.TrimPrefix(hexText, "0x"), "0X")
		case tokIdent:
			hexText = p.tok.text
		case tokEOF:
			return Chunk{}, p.errf("unterminated byte array")
		default:
			return Chunk{}, p.errf("unexpected %v in byte array", p.tok.kind)
		}
		if len(hexText)%2 != 0 {
			return Chunk{}, p.errf("odd-length hex run %q in byte array", hexText)
		}
		for i := 0; i < len(hexText); i += 2 {
			var b byte
			for _, c := range []byte(hexText[i : i+2]) {
				var d byte
				switch {
				case c >= '0' && c <= '9':
					d = c - '0'
				case c >= 'a' && c <= 'f':
					d = c - 'a' + 10
				case c >= 'A' && c <= 'F':
					d = c - 'A' + 10
				default:
					return Chunk{}, p.errf("invalid hex byte %q", hexText[i:i+2])
				}
				b = b<<4 | d
			}
			chunk.Bytes = append(chunk.Bytes, b)
		}
		if err := p.advance(); err != nil {
			return Chunk{}, err
		}
	}
	return chunk, p.advance() // consume ']'
}
