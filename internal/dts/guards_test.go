package dts

import (
	"errors"
	"strings"
	"testing"
)

// nestedSource builds a DTS with a node chain depth levels deep.
func nestedSource(depth int) string {
	var b strings.Builder
	b.WriteString("/dts-v1/;\n/ {\n")
	for i := 0; i < depth; i++ {
		b.WriteString("n {\n")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("};\n")
	}
	b.WriteString("};\n")
	return b.String()
}

func TestParseDepthGuard(t *testing.T) {
	if _, err := Parse("deep.dts", nestedSource(10)); err != nil {
		t.Fatalf("10 levels should parse: %v", err)
	}
	_, err := Parse("deep.dts", nestedSource(200))
	if !errors.Is(err, ErrTooDeep) {
		t.Fatalf("200 levels: err = %v, want ErrTooDeep", err)
	}
	// a tighter custom limit
	_, err = Parse("deep.dts", nestedSource(10), WithMaxNodeDepth(5))
	if !errors.Is(err, ErrTooDeep) {
		t.Fatalf("10 levels with limit 5: err = %v, want ErrTooDeep", err)
	}
}

func TestParseSourceSizeGuard(t *testing.T) {
	src := "/dts-v1/;\n/ { x = \"" + strings.Repeat("a", 100) + "\"; };\n"
	if _, err := Parse("big.dts", src); err != nil {
		t.Fatalf("unlimited parse failed: %v", err)
	}
	_, err := Parse("big.dts", src, WithMaxSourceBytes(50))
	if !errors.Is(err, ErrSourceTooLarge) {
		t.Fatalf("err = %v, want ErrSourceTooLarge", err)
	}
}

func TestParseSourceSizeGuardCountsIncludes(t *testing.T) {
	inc := MapIncluder{"part.dtsi": "/ { y = <1>; };\n" + strings.Repeat("// pad\n", 20)}
	src := "/dts-v1/;\n/include/ \"part.dtsi\"\n/ { x = <2>; };\n"
	if _, err := Parse("main.dts", src, WithIncluder(inc)); err != nil {
		t.Fatalf("unlimited parse failed: %v", err)
	}
	_, err := Parse("main.dts", src, WithIncluder(inc), WithMaxSourceBytes(len(src)+10))
	if !errors.Is(err, ErrSourceTooLarge) {
		t.Fatalf("err = %v, want ErrSourceTooLarge (include bytes must count)", err)
	}
}

func TestParseFragmentDepthGuard(t *testing.T) {
	var b strings.Builder
	b.WriteString("{\n")
	for i := 0; i < 80; i++ {
		b.WriteString("n {\n")
	}
	for i := 0; i < 80; i++ {
		b.WriteString("};\n")
	}
	b.WriteString("}")
	_, err := ParseFragment("frag", "x", b.String())
	if !errors.Is(err, ErrTooDeep) {
		t.Fatalf("err = %v, want ErrTooDeep", err)
	}
}
