package dts

import (
	"strings"
	"testing"
)

// TestForwardLabelExtension covers the post-parse resolver: a
// `&label { ... }` extension block before the label's definition must
// merge into the later-defined node, as dtc accepts.
func TestForwardLabelExtension(t *testing.T) {
	src := `
/dts-v1/;
&console {
	status = "okay";
	current-speed = <115200>;
};
/ {
	soc {
		console: uart@10000000 {
			compatible = "ns16550a";
		};
	};
};
`
	tree, err := Parse("fwd.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	uart := tree.Lookup("/soc/uart@10000000")
	if uart == nil {
		t.Fatal("uart node missing")
	}
	if s, _ := uart.StringValue("status"); s != "okay" {
		t.Errorf("status = %q, want okay", s)
	}
	if v, _ := uart.CellValue("current-speed"); v != 115200 {
		t.Errorf("current-speed = %d", v)
	}
}

// TestForwardLabelInCells: a phandle reference in cell position to a
// label defined later in the file parses and survives a round trip.
func TestForwardLabelInCells(t *testing.T) {
	src := `
/dts-v1/;
/ {
	consumer {
		clocks = <&pll 1>;
	};
	pll: clock-controller {
		#clock-cells = <1>;
	};
};
`
	tree, err := Parse("fwdcell.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cells := tree.Lookup("/consumer").Property("clocks").Value.Cells()
	if len(cells) != 2 || cells[0].Ref != "pll" || cells[1].Val != 1 {
		t.Errorf("clocks cells = %+v", cells)
	}
	if tree.LookupLabel("pll") == nil {
		t.Error("label pll not registered")
	}
}

// TestForwardChainedExtensions: an extension referencing a label that
// itself is introduced by a later extension block (two-step forward
// resolution through the deferral fixpoint).
func TestForwardChainedExtensions(t *testing.T) {
	src := `
/dts-v1/;
&l2 { from-l2 = <1>; };
&l1 { l2: deeper { }; };
/ { l1: top { }; };
`
	tree, err := Parse("chain.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	deeper := tree.Lookup("/top/deeper")
	if deeper == nil {
		t.Fatal("chained extension did not apply")
	}
	if _, ok := deeper.CellValue("from-l2"); !ok {
		t.Error("from-l2 missing on /top/deeper")
	}
}

// TestUndefinedLabelStillErrors: with no definition anywhere, the
// resolver reports the reference at its source position.
func TestUndefinedLabelStillErrors(t *testing.T) {
	_, err := Parse("bad.dts", "/dts-v1/;\n/ { };\n&nope { x; };\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("error %q should mention undefined label", err)
	}
	if !strings.Contains(err.Error(), "bad.dts:3") {
		t.Errorf("error %q should point at bad.dts:3", err)
	}
}

// TestDeleteNodeRefForward: /delete-node/ &label resolves forward too.
func TestDeleteNodeRefForward(t *testing.T) {
	src := `
/dts-v1/;
/delete-node/ &victim;
/ {
	keep { };
	victim: dropme { };
};
`
	tree, err := Parse("del.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tree.Lookup("/dropme") != nil {
		t.Error("dropme should have been deleted")
	}
	if tree.Lookup("/keep") == nil {
		t.Error("keep should survive")
	}
}

// TestDeleteNodeNameForm: the root-level name form deletes a root
// child; deleting an absent name is a no-op as in dtc.
func TestDeleteNodeNameForm(t *testing.T) {
	src := `
/dts-v1/;
/ {
	a { };
	b { };
};
/delete-node/ a;
/delete-node/ never-existed;
`
	tree, err := Parse("delname.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tree.Lookup("/a") != nil {
		t.Error("a should have been deleted")
	}
	if tree.Lookup("/b") == nil {
		t.Error("b should survive")
	}
}

// TestDeleteNodeUndefinedRefErrors: an unresolvable /delete-node/
// reference is a precise ParseError, not a silent no-op.
func TestDeleteNodeUndefinedRefErrors(t *testing.T) {
	_, err := Parse("delbad.dts", "/dts-v1/;\n/ { };\n/delete-node/ &ghost;\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "&ghost") || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("error %q should name &ghost and undefined label", err)
	}
}

// TestOmitIfNoRef: the directive is an explicitly-skipped no-op at top
// level and inside node bodies.
func TestOmitIfNoRef(t *testing.T) {
	src := `
/dts-v1/;
/ {
	/omit-if-no-ref/ maybe: candidate {
		compatible = "test,omit";
	};
};
/omit-if-no-ref/ extra {
	prop = <1>;
};
`
	tree, err := Parse("omit.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tree.Lookup("/candidate") == nil {
		t.Error("omit-marked child should be kept")
	}
	if tree.Lookup("/extra") == nil {
		t.Error("omit-marked top-level node should be kept")
	}
}

// TestBitsWidths: /bits/ parses at every width, masks values to the
// element size, keeps the full 64-bit value, and round-trips through
// the printer byte-stably.
func TestBitsWidths(t *testing.T) {
	src := `/dts-v1/;
/ {
	b8 = /bits/ 8 <0x1ff 0x02>;
	b16 = /bits/ 16 <0x12345 0xffff>;
	b32 = /bits/ 32 <0xdeadbeef>;
	b64 = /bits/ 64 <0xdeadbeef00000001 2>;
	plain = <0x1>;
};
`
	tree, err := Parse("bits.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	root := tree.Root
	check := func(name string, bits int, vals ...uint64) {
		t.Helper()
		ch := root.Property(name).Value.Chunks[0]
		if ch.Bits != bits {
			t.Errorf("%s: Bits = %d, want %d", name, ch.Bits, bits)
		}
		if len(ch.CellList) != len(vals) {
			t.Fatalf("%s: %d cells, want %d", name, len(ch.CellList), len(vals))
		}
		for i, want := range vals {
			got := uint64(ch.CellList[i].Val)
			if bits == 64 {
				got = ch.CellList[i].Val64
			}
			if got != want {
				t.Errorf("%s cell %d = %#x, want %#x", name, i, got, want)
			}
		}
	}
	check("b8", 8, 0xff, 0x02)
	check("b16", 16, 0x2345, 0xffff)
	check("b32", 32, 0xdeadbeef)
	check("b64", 64, 0xdeadbeef00000001, 2)
	check("plain", 0, 0x1)

	printed := tree.Print()
	if !strings.Contains(printed, "/bits/ 8 <0xff 0x2>") {
		t.Errorf("printed output lacks /bits/ 8 chunk:\n%s", printed)
	}
	if !strings.Contains(printed, "/bits/ 64 <0xdeadbeef00000001 0x2>") {
		t.Errorf("printed output lacks full 64-bit value:\n%s", printed)
	}
	re, err := Parse("printed.dts", printed)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if p2 := re.Print(); p2 != printed {
		t.Errorf("second print differs:\nfirst:\n%s\nsecond:\n%s", printed, p2)
	}
}

// TestBitsRejectsBadWidthAndRefs: invalid widths and references inside
// non-32-bit arrays are precise parse errors.
func TestBitsRejectsBadWidthAndRefs(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{`/dts-v1/; / { x = /bits/ 12 <1>; };`, "must be 8, 16, 32 or 64"},
		{`/dts-v1/; / { l: n { }; x = /bits/ 8 <&l>; };`, "32-bit cell arrays"},
	} {
		_, err := Parse("badbits.dts", tc.src)
		if err == nil {
			t.Fatalf("%s: expected error", tc.src)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q should mention %q", tc.src, err, tc.want)
		}
	}
}

// TestBitsExcludedFromCells: non-32-bit chunks must not leak into the
// u32 Cells() view the semantic checkers interpret.
func TestBitsExcludedFromCells(t *testing.T) {
	tree, err := Parse("mix.dts", `/dts-v1/; / { m = /bits/ 8 <0x01>, <0x7>; };`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cells := tree.Root.Property("m").Value.Cells()
	if len(cells) != 1 || cells[0].Val != 7 {
		t.Errorf("Cells() = %+v, want just the u32 chunk", cells)
	}
}

// TestPluginFragments: a /plugin/ overlay keeps locally-unresolvable
// extension blocks as fragments, resolves local labels normally, and
// round-trips byte-stably including the /plugin/ header.
func TestPluginFragments(t *testing.T) {
	src := `/dts-v1/;
/plugin/;
/ {
	local: here {
		a = <1>;
	};
};
&base_uart {
	status = "okay";
};
&local {
	b = <2>;
};
&{/soc/i2c@0} {
	clock-frequency = <400000>;
};
`
	tree, err := Parse("ov.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !tree.Plugin {
		t.Fatal("Plugin flag not set")
	}
	// &local resolves inside the overlay itself.
	here := tree.Lookup("/here")
	if _, ok := here.CellValue("b"); !ok {
		t.Error("&local extension should merge locally")
	}
	if len(tree.Fragments) != 2 {
		t.Fatalf("%d fragments, want 2", len(tree.Fragments))
	}
	if f := tree.Fragments[0]; f.Ref != "base_uart" || f.IsPath {
		t.Errorf("fragment 0 = %+v", f)
	}
	if f := tree.Fragments[1]; f.Ref != "/soc/i2c@0" || !f.IsPath {
		t.Errorf("fragment 1 = %+v", f)
	}

	printed := tree.Print()
	if !strings.Contains(printed, "/plugin/;\n") {
		t.Errorf("printed overlay lacks /plugin/:\n%s", printed)
	}
	re, err := Parse("printed.dts", printed)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(re.Fragments) != 2 || !re.Plugin {
		t.Fatalf("reparse lost overlay structure: plugin=%v fragments=%d", re.Plugin, len(re.Fragments))
	}
	if p2 := re.Print(); p2 != printed {
		t.Errorf("second print differs:\nfirst:\n%s\nsecond:\n%s", printed, p2)
	}
}

// TestNonPluginRejectsBaseRefs: without /plugin/, an unresolvable
// extension stays an error.
func TestNonPluginRejectsBaseRefs(t *testing.T) {
	_, err := Parse("noplugin.dts", "/dts-v1/;\n/ { };\n&base_uart { status = \"okay\"; };\n")
	if err == nil {
		t.Fatal("expected error without /plugin/")
	}
}
