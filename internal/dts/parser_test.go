package dts

import (
	"strings"
	"testing"
)

const simpleDTS = `
/dts-v1/;

/ {
	#address-cells = <2>;
	#size-cells = <2>;

	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000
		       0x0 0x60000000 0x0 0x20000000>;
	};

	uart0: uart@20000000 {
		compatible = "ns16550a";
		reg = <0x0 0x20000000 0x0 0x1000>;
	};
};
`

func TestParseSimple(t *testing.T) {
	tree, err := Parse("test.dts", simpleDTS)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := len(tree.Root.Children); got != 2 {
		t.Fatalf("root children = %d, want 2", got)
	}

	mem := tree.Lookup("/memory@40000000")
	if mem == nil {
		t.Fatal("memory node not found")
	}
	if got, _ := mem.StringValue("device_type"); got != "memory" {
		t.Errorf("device_type = %q, want memory", got)
	}
	reg := mem.Property("reg")
	if reg == nil {
		t.Fatal("reg property missing")
	}
	cells := reg.Value.U32s()
	want := []uint32{0, 0x40000000, 0, 0x20000000, 0, 0x60000000, 0, 0x20000000}
	if len(cells) != len(want) {
		t.Fatalf("reg cells = %v, want %v", cells, want)
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Fatalf("reg cells = %#x, want %#x", cells, want)
		}
	}

	uart := tree.Lookup("/uart@20000000")
	if uart == nil {
		t.Fatal("uart node not found")
	}
	if uart.Label != "uart0" {
		t.Errorf("uart label = %q, want uart0", uart.Label)
	}
	if tree.LookupLabel("uart0") != uart {
		t.Error("LookupLabel failed")
	}
	if got := uart.Compatible(); len(got) != 1 || got[0] != "ns16550a" {
		t.Errorf("compatible = %v", got)
	}
}

func TestParseWithInclude(t *testing.T) {
	inc := MapIncluder{
		"cpus.dtsi": `
/ {
	cpus {
		#address-cells = <0x1>;
		#size-cells = <0x0>;
		cpu@0 {
			compatible = "arm,cortex-a53";
			device_type = "cpu";
			enable-method = "psci";
			reg = <0x0>;
		};
		cpu@1 {
			compatible = "arm,cortex-a53";
			device_type = "cpu";
			reg = <0x1>;
		};
	};
};
`,
	}
	src := `
/dts-v1/;
/include/ "cpus.dtsi"
/ {
	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000>;
	};
};
`
	tree, err := Parse("main.dts", src, WithIncluder(inc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cpus := tree.Lookup("/cpus")
	if cpus == nil {
		t.Fatal("cpus node missing after include")
	}
	if got := len(cpus.Children); got != 2 {
		t.Fatalf("cpus children = %d, want 2", got)
	}
	if ac := cpus.AddressCells(); ac != 1 {
		t.Errorf("#address-cells = %d, want 1", ac)
	}
	if sc := cpus.SizeCells(); sc != 0 {
		t.Errorf("#size-cells = %d, want 0", sc)
	}
	cpu0 := tree.Lookup("/cpus/cpu@0")
	if cpu0 == nil {
		t.Fatal("cpu@0 missing")
	}
	if em, ok := cpu0.StringValue("enable-method"); !ok || em != "psci" {
		t.Errorf("enable-method = %q,%v", em, ok)
	}
	if mem := tree.Lookup("/memory@40000000"); mem == nil {
		t.Error("memory node from the main file missing")
	}
}

func TestParseRunningExampleFromDisk(t *testing.T) {
	tree, err := ParseFile("../../testdata/customsbc.dts")
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	for _, path := range []string{
		"/cpus", "/cpus/cpu@0", "/cpus/cpu@1",
		"/memory@40000000", "/uart@20000000", "/uart@30000000",
	} {
		if tree.Lookup(path) == nil {
			t.Errorf("node %s missing", path)
		}
	}
	if got := tree.Root.AddressCells(); got != 2 {
		t.Errorf("root #address-cells = %d, want 2", got)
	}
}

func TestMergeSemantics(t *testing.T) {
	src := `
/dts-v1/;
/ {
	node {
		a = <1>;
		b = <2>;
	};
};
/ {
	node {
		b = <3>;
		c = <4>;
	};
	extra { };
};
`
	tree, err := Parse("merge.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	n := tree.Lookup("/node")
	if n == nil {
		t.Fatal("node missing")
	}
	if v, _ := n.CellValue("a"); v != 1 {
		t.Errorf("a = %d, want 1", v)
	}
	if v, _ := n.CellValue("b"); v != 3 {
		t.Errorf("b = %d, want 3 (overwritten)", v)
	}
	if v, _ := n.CellValue("c"); v != 4 {
		t.Errorf("c = %d, want 4", v)
	}
	if tree.Lookup("/extra") == nil {
		t.Error("extra node missing")
	}
}

func TestLabelExtension(t *testing.T) {
	src := `
/dts-v1/;
/ {
	lbl: target { a = <1>; };
};
&lbl {
	b = <2>;
};
`
	tree, err := Parse("ext.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	n := tree.Lookup("/target")
	if n == nil {
		t.Fatal("target missing")
	}
	if v, _ := n.CellValue("b"); v != 2 {
		t.Errorf("b = %d, want 2", v)
	}
}

func TestCellExpressions(t *testing.T) {
	src := `
/dts-v1/;
/ {
	n {
		a = <(1 << 4)>;
		b = <(2 + 3 * 4)>;
		c = <((0x10 | 0x1) & 0xff)>;
		d = <(~0)>;
		e = <(100 / 10 - 2)>;
		f = <(7 % 3)>;
	};
};
`
	tree, err := Parse("expr.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	n := tree.Lookup("/n")
	tests := []struct {
		prop string
		want uint32
	}{
		{"a", 16}, {"b", 14}, {"c", 0x11}, {"d", 0xffffffff}, {"e", 8}, {"f", 1},
	}
	for _, tt := range tests {
		if got, _ := n.CellValue(tt.prop); got != tt.want {
			t.Errorf("%s = %d, want %d", tt.prop, got, tt.want)
		}
	}
}

func TestBytesAndMixedValues(t *testing.T) {
	src := `
/dts-v1/;
/ {
	n {
		mac = [de ad be ef 00 01];
		mixed = "name", <0x1 0x2>, [ff];
		flag;
		handle = <&other 0x5>;
	};
	lbl2: other { };
};
`
	tree, err := Parse("bytes.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	n := tree.Lookup("/n")
	mac := n.Property("mac").Value.Bytes()
	if len(mac) != 6 || mac[0] != 0xde || mac[5] != 0x01 {
		t.Errorf("mac = %x", mac)
	}
	mixed := n.Property("mixed")
	if len(mixed.Value.Chunks) != 3 {
		t.Fatalf("mixed chunks = %d, want 3", len(mixed.Value.Chunks))
	}
	if ss := mixed.Value.Strings(); len(ss) != 1 || ss[0] != "name" {
		t.Errorf("mixed strings = %v", ss)
	}
	if flag := n.Property("flag"); flag == nil || !flag.Value.IsEmpty() {
		t.Error("flag should be an empty marker property")
	}
	handle := n.Property("handle").Value.Cells()
	if len(handle) != 2 || handle[0].Ref != "other" || handle[1].Val != 5 {
		t.Errorf("handle cells = %+v", handle)
	}
}

func TestDeleteNodeAndProperty(t *testing.T) {
	src := `
/dts-v1/;
/ {
	keep { a = <1>; };
	gone: dropme { };
};
/ {
	keep {
		a = <1>;
		b = <2>;
		/delete-property/ a;
		child { };
		/delete-node/ child;
	};
};
/delete-node/ &gone;
`
	tree, err := Parse("del.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tree.Lookup("/dropme") != nil {
		t.Error("dropme should have been deleted")
	}
	keep := tree.Lookup("/keep")
	if keep.Property("a") != nil {
		t.Error("property a should have been deleted")
	}
	if v, _ := keep.CellValue("b"); v != 2 {
		t.Error("property b should survive")
	}
	if keep.Child("child") != nil {
		t.Error("child should have been deleted")
	}
}

func TestMemReserve(t *testing.T) {
	src := `
/dts-v1/;
/memreserve/ 0x10000000 0x4000;
/ { };
`
	tree, err := Parse("mr.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(tree.MemReserves) != 1 {
		t.Fatalf("memreserves = %d, want 1", len(tree.MemReserves))
	}
	if mr := tree.MemReserves[0]; mr.Address != 0x10000000 || mr.Size != 0x4000 {
		t.Errorf("memreserve = %+v", mr)
	}
}

func TestComments(t *testing.T) {
	src := `
/dts-v1/;
// line comment
/ {
	/* block
	   comment */
	n {
		a = <1>; // trailing
	};
};
`
	tree, err := Parse("c.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v, _ := tree.Lookup("/n").CellValue("a"); v != 1 {
		t.Error("comment parsing broke property")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"unterminated string", `/ { a = "x; };`, "string"},
		{"missing semicolon", `/ { a = <1> }`, "';'"},
		{"unknown ref", `&nope { };`, "undefined label"},
		{"garbage", `$$$`, "unexpected"},
		{"unterminated node", `/ { a = <1>;`, "end of file"},
		{"include without includer", `/include/ "x.dtsi"`, "no includer"},
		{"division by zero", `/ { a = <(1/0)>; };`, "division by zero"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse("err.dts", tt.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("pos.dts", "/dts-v1/;\n/ {\n\tbad bad bad\n};\n")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.File != "pos.dts" || pe.Line != 3 {
		t.Errorf("position %s:%d, want pos.dts:3", pe.File, pe.Line)
	}
}

func TestIncludeCycleDetected(t *testing.T) {
	inc := MapIncluder{
		"a.dtsi": `/include/ "b.dtsi"`,
		"b.dtsi": `/include/ "a.dtsi"`,
	}
	_, err := Parse("main.dts", `/include/ "a.dtsi"`, WithIncluder(inc))
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	tree, err := Parse("rt.dts", simpleDTS)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	printed := tree.Print()
	tree2, err := Parse("rt2.dts", printed)
	if err != nil {
		t.Fatalf("reparse printed output: %v\n%s", err, printed)
	}
	printed2 := tree2.Print()
	if printed != printed2 {
		t.Errorf("print not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
	// structural checks survive the round trip
	mem := tree2.Lookup("/memory@40000000")
	if mem == nil {
		t.Fatal("memory lost in round trip")
	}
	if got := mem.Property("reg").Value.U32s(); len(got) != 8 {
		t.Errorf("reg cells lost: %v", got)
	}
	if tree2.Lookup("/uart@20000000").Label != "uart0" {
		t.Error("label lost in round trip")
	}
}

func TestWalk(t *testing.T) {
	tree, _ := Parse("w.dts", simpleDTS)
	var paths []string
	tree.Root.Walk(func(path string, n *Node) bool {
		paths = append(paths, path)
		return true
	})
	want := []string{"/", "/memory@40000000", "/uart@20000000"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("paths = %v, want %v", paths, want)
		}
	}
	// early stop
	count := 0
	tree.Root.Walk(func(string, *Node) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d nodes, want 1", count)
	}
}

func TestSplitName(t *testing.T) {
	tests := []struct {
		in, base, unit string
	}{
		{"memory@40000000", "memory", "40000000"},
		{"cpus", "cpus", ""},
		{"cpu@0", "cpu", "0"},
	}
	for _, tt := range tests {
		base, unit := SplitName(tt.in)
		if base != tt.base || unit != tt.unit {
			t.Errorf("SplitName(%q) = %q,%q want %q,%q", tt.in, base, unit, tt.base, tt.unit)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	tree, _ := Parse("cl.dts", simpleDTS)
	clone := tree.Clone()
	clone.Lookup("/memory@40000000").SetProperty(&Property{
		Name: "device_type", Value: StringValueOf("changed"),
	})
	if got, _ := tree.Lookup("/memory@40000000").StringValue("device_type"); got != "memory" {
		t.Error("mutation of clone leaked into original")
	}
}

func TestValueConstructors(t *testing.T) {
	v := CellsValue(1, 2, 3)
	if got := v.U32s(); len(got) != 3 || got[2] != 3 {
		t.Errorf("CellsValue = %v", got)
	}
	v64 := Cells64Value(0x1_0000_0002)
	if got := v64.U32s(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Cells64Value = %#x", got)
	}
	sv := StringValueOf("a", "b")
	if got := sv.Strings(); len(got) != 2 || got[1] != "b" {
		t.Errorf("StringValueOf = %v", got)
	}
	bv := BytesValue([]byte{1, 2})
	if got := bv.Bytes(); len(got) != 2 || got[0] != 1 {
		t.Errorf("BytesValue = %v", got)
	}
}

func TestEnsureChildAndChildrenNamed(t *testing.T) {
	n := &Node{Name: "/"}
	c1 := n.EnsureChild("uart@1000")
	c2 := n.EnsureChild("uart@1000")
	if c1 != c2 {
		t.Error("EnsureChild should be idempotent")
	}
	n.EnsureChild("uart@2000")
	n.EnsureChild("memory@0")
	if got := len(n.ChildrenNamed("uart")); got != 2 {
		t.Errorf("ChildrenNamed(uart) = %d, want 2", got)
	}
}

func TestAliases(t *testing.T) {
	tree, err := Parse("alias.dts", `
/dts-v1/;
/ {
	aliases {
		serial0 = "/soc/uart@1000";
		serial1 = &u1;
		broken = <0x1>;
	};
	soc {
		uart@1000 { };
		u1: uart@2000 { };
	};
};
`)
	if err != nil {
		t.Fatal(err)
	}
	aliases := tree.Aliases()
	if aliases["serial0"] != "/soc/uart@1000" {
		t.Errorf("serial0 = %q", aliases["serial0"])
	}
	if aliases["serial1"] != "/soc/uart@2000" {
		t.Errorf("serial1 = %q", aliases["serial1"])
	}
	if _, ok := aliases["broken"]; ok {
		t.Error("non-path alias should be skipped")
	}
	if n := tree.LookupAlias("serial0"); n == nil || n.Name != "uart@1000" {
		t.Errorf("LookupAlias(serial0) = %v", n)
	}
	if tree.LookupAlias("nope") != nil {
		t.Error("unknown alias should be nil")
	}
}

func TestPathOf(t *testing.T) {
	tree, _ := Parse("p.dts", simpleDTS)
	mem := tree.Lookup("/memory@40000000")
	if got := tree.PathOf(mem); got != "/memory@40000000" {
		t.Errorf("PathOf = %q", got)
	}
	stranger := &Node{Name: "stranger"}
	if got := tree.PathOf(stranger); got != "" {
		t.Errorf("PathOf(foreign node) = %q, want empty", got)
	}
}

func TestAliasesNoNode(t *testing.T) {
	tree, _ := Parse("n.dts", simpleDTS)
	if got := tree.Aliases(); len(got) != 0 {
		t.Errorf("Aliases = %v, want empty", got)
	}
}
