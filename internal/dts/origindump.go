package dts

import (
	"fmt"
	"strings"
)

// OriginDump renders the tree's blame metadata — the Origin of every
// node and property that carries one — in deterministic pre-order.
// Print() deliberately omits origins (they are provenance, not DTS
// syntax), so two trees can print byte-identically yet trace their
// fragments to different delta modules or source positions.
// Content-addressed consumers (internal/checkcache) must therefore
// fold this dump into their key alongside the canonical text, or a
// cached violation would blame another product's deltas.
//
// Every variable-length field is length-prefixed, so distinct origin
// sets never produce the same dump.
func (t *Tree) OriginDump() string {
	var b strings.Builder
	record := func(kind, path string, o Origin) {
		if o == (Origin{}) {
			return
		}
		for _, f := range []string{kind, path, o.File, o.Delta} {
			fmt.Fprintf(&b, "%d:%s", len(f), f)
		}
		fmt.Fprintf(&b, "@%d\n", o.Line)
	}
	walk := func(root *Node) {
		root.Walk(func(path string, n *Node) bool {
			record("node", path, n.Origin)
			for _, p := range n.Properties {
				record("prop", path+"#"+p.Name, p.Origin)
			}
			return true
		})
	}
	walk(t.Root)
	// Overlay fragments live outside the root; their provenance must be
	// keyed too, or two overlays differing only in fragment blame could
	// share a cache entry.
	for i, f := range t.Fragments {
		fmt.Fprintf(&b, "frag%d:%d:%s\n", i, len(f.Ref), f.Ref)
		walk(f.Node)
	}
	return b.String()
}
