package dts

import (
	"fmt"
	"strings"
)

// Print renders the tree as canonical DTS text: /dts-v1/ header,
// tab indentation, cells in hexadecimal, properties before children.
func (t *Tree) Print() string {
	var b strings.Builder
	b.WriteString("/dts-v1/;\n\n")
	for _, mr := range t.MemReserves {
		fmt.Fprintf(&b, "/memreserve/ 0x%x 0x%x;\n", mr.Address, mr.Size)
	}
	if len(t.MemReserves) > 0 {
		b.WriteString("\n")
	}
	printNode(&b, t.Root, 0)
	return b.String()
}

// PrintNode renders a single node subtree as DTS text (without the
// /dts-v1/ header).
func PrintNode(n *Node) string {
	var b strings.Builder
	printNode(&b, n, 0)
	return b.String()
}

func printNode(b *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("\t", depth)
	b.WriteString(indent)
	if n.Label != "" {
		b.WriteString(n.Label)
		b.WriteString(": ")
	}
	b.WriteString(n.Name)
	b.WriteString(" {\n")
	inner := indent + "\t"
	for _, p := range n.Properties {
		b.WriteString(inner)
		b.WriteString(p.Name)
		if !p.Value.IsEmpty() {
			b.WriteString(" = ")
			printValue(b, p.Value)
		}
		b.WriteString(";\n")
	}
	if len(n.Properties) > 0 && len(n.Children) > 0 {
		b.WriteString("\n")
	}
	for i, c := range n.Children {
		if i > 0 {
			b.WriteString("\n")
		}
		printNode(b, c, depth+1)
	}
	b.WriteString(indent)
	b.WriteString("};\n")
}

func printValue(b *strings.Builder, v Value) {
	for i, c := range v.Chunks {
		if i > 0 {
			b.WriteString(", ")
		}
		switch c.Kind {
		case ChunkCells:
			b.WriteString("<")
			for j, cell := range c.CellList {
				if j > 0 {
					b.WriteString(" ")
				}
				if cell.Ref != "" {
					b.WriteString("&")
					b.WriteString(cell.Ref)
				} else {
					fmt.Fprintf(b, "0x%x", cell.Val)
				}
			}
			b.WriteString(">")
		case ChunkString:
			fmt.Fprintf(b, "%q", c.Str)
		case ChunkBytes:
			b.WriteString("[")
			for j, by := range c.Bytes {
				if j > 0 {
					b.WriteString(" ")
				}
				fmt.Fprintf(b, "%02x", by)
			}
			b.WriteString("]")
		case ChunkRef:
			b.WriteString("&")
			b.WriteString(c.Ref)
		}
	}
}
