package dts

import (
	"fmt"
	"strings"
)

// Print renders the tree as canonical DTS text: /dts-v1/ header (plus
// /plugin/ for overlays), tab indentation, cells in hexadecimal,
// properties before children, then overlay fragments as `&label { }`
// extension blocks in document order.
func (t *Tree) Print() string {
	var b strings.Builder
	b.WriteString("/dts-v1/;\n")
	if t.Plugin {
		b.WriteString("/plugin/;\n")
	}
	b.WriteString("\n")
	for _, mr := range t.MemReserves {
		fmt.Fprintf(&b, "/memreserve/ 0x%x 0x%x;\n", mr.Address, mr.Size)
	}
	if len(t.MemReserves) > 0 {
		b.WriteString("\n")
	}
	printNode(&b, t.Root, 0)
	for _, f := range t.Fragments {
		b.WriteString("\n")
		printRef(&b, f.Ref)
		b.WriteString(" {\n")
		printNodeInner(&b, f.Node, 0)
		b.WriteString("};\n")
	}
	return b.String()
}

// PrintNode renders a single node subtree as DTS text (without the
// /dts-v1/ header).
func PrintNode(n *Node) string {
	var b strings.Builder
	printNode(&b, n, 0)
	return b.String()
}

func printNode(b *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("\t", depth)
	b.WriteString(indent)
	if n.Label != "" {
		b.WriteString(n.Label)
		b.WriteString(": ")
	}
	b.WriteString(n.Name)
	b.WriteString(" {\n")
	printNodeInner(b, n, depth)
	b.WriteString(indent)
	b.WriteString("};\n")
}

// printNodeInner renders a node's properties and children without the
// surrounding header/footer, shared by printNode and the overlay
// fragment printer (whose header is a reference, not a name).
func printNodeInner(b *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("\t", depth)
	inner := indent + "\t"
	for _, p := range n.Properties {
		b.WriteString(inner)
		b.WriteString(p.Name)
		if !p.Value.IsEmpty() {
			b.WriteString(" = ")
			printValue(b, p.Value)
		}
		b.WriteString(";\n")
	}
	if len(n.Properties) > 0 && len(n.Children) > 0 {
		b.WriteString("\n")
	}
	for i, c := range n.Children {
		if i > 0 {
			b.WriteString("\n")
		}
		printNode(b, c, depth+1)
	}
}

// FormatValue renders a property value in the canonical DTS syntax the
// printer uses, for consumers that need a deterministic textual form of
// a value outside a full tree print (e.g. the lifted-tree dump that
// feeds the check cache key).
func FormatValue(v Value) string {
	var b strings.Builder
	printValue(&b, v)
	return b.String()
}

func printValue(b *strings.Builder, v Value) {
	for i, c := range v.Chunks {
		if i > 0 {
			b.WriteString(", ")
		}
		switch c.Kind {
		case ChunkCells:
			if c.Bits != 0 {
				fmt.Fprintf(b, "/bits/ %d ", c.Bits)
			}
			b.WriteString("<")
			for j, cell := range c.CellList {
				if j > 0 {
					b.WriteString(" ")
				}
				switch {
				case cell.Ref != "":
					printRef(b, cell.Ref)
				case c.Bits == 64:
					fmt.Fprintf(b, "0x%x", cell.Val64)
				default:
					fmt.Fprintf(b, "0x%x", cell.Val)
				}
			}
			b.WriteString(">")
		case ChunkString:
			b.WriteString(quoteDTS(c.Str))
		case ChunkBytes:
			b.WriteString("[")
			for j, by := range c.Bytes {
				if j > 0 {
					b.WriteString(" ")
				}
				fmt.Fprintf(b, "%02x", by)
			}
			b.WriteString("]")
		case ChunkRef:
			printRef(b, c.Ref)
		}
	}
}

// printRef renders a phandle reference. Path references (&{/soc/uart})
// must keep the brace form: a bare "&/soc/uart" does not lex.
func printRef(b *strings.Builder, ref string) {
	b.WriteString("&")
	if strings.HasPrefix(ref, "/") {
		b.WriteString("{")
		b.WriteString(ref)
		b.WriteString("}")
		return
	}
	b.WriteString(ref)
}

// quoteDTS renders a string as a DTS string literal that the lexer
// reads back byte-for-byte. Go's %q is not safe here: it emits \u
// escapes and bare \0, which DTS does not understand. Hex escapes are
// always two digits, so a following literal hex character cannot be
// absorbed into the escape (the lexer reads at most two digits).
func quoteDTS(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if c >= 0x20 && c <= 0x7e {
				b.WriteByte(c)
			} else {
				fmt.Fprintf(&b, `\x%02x`, c)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
