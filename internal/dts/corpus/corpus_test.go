package corpus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(path, src string) error {
	return os.WriteFile(path, []byte(src), 0o644)
}

const corpusDir = "../../../testdata/corpus"

func TestCorpusGate(t *testing.T) {
	s, err := Run(corpusDir)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// CI sets LLHSC_CORPUS_REPORT so the formatted summary survives a
	// failing run as an uploadable artifact.
	if path := os.Getenv("LLHSC_CORPUS_REPORT"); path != "" {
		if werr := os.WriteFile(path, []byte(s.Format()), 0o644); werr != nil {
			t.Errorf("writing corpus report: %v", werr)
		}
	}
	if len(s.Failures) > 0 {
		t.Fatalf("corpus failures:\n%s", s.Format())
	}
	// The gate is only meaningful with real coverage: kernel-style
	// include chains and at least one applied overlay (ISSUE 10).
	if len(s.Files) < 5 {
		t.Fatalf("corpus too small: %d top-level files", len(s.Files))
	}
	if s.Overlays < 2 {
		t.Fatalf("corpus has %d overlays, want >= 2", s.Overlays)
	}
	for _, want := range []string{"board-alpha.dts", "board-beta.dts", "uart-overlay.dtso"} {
		found := false
		for _, f := range s.Files {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("expected corpus file %s not processed (got %v)", want, s.Files)
		}
	}
}

func TestCorpusReportsFailures(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		if err := writeFile(filepath.Join(dir, name), src); err != nil {
			t.Fatal(err)
		}
	}
	write("broken.dts", "/dts-v1/;\n/ { compatible = ; };\n")
	write("orphan.dtso", "/dts-v1/;\n/plugin/;\n&nowhere { x; };\n")

	s, err := Run(dir)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(s.Failures) != 2 {
		t.Fatalf("want 2 failures, got: %s", s.Format())
	}
	report := s.Format()
	if !strings.Contains(report, "broken.dts [preprocess+parse]") {
		t.Errorf("report missing parse failure: %s", report)
	}
	if !strings.Contains(report, "orphan.dtso [overlay-base]") {
		t.Errorf("report missing overlay-base failure: %s", report)
	}
}

func TestCorpusRunMissingDir(t *testing.T) {
	if _, err := Run(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("want error for missing directory")
	}
}
