// Package corpus drives the real-world ingestion gate (DESIGN.md §16):
// every vendored kernel-style source under testdata/corpus must survive
// the full pipeline — cpp preprocessing, parsing, semantic checking,
// and a byte-stable print round trip — and every /plugin/ overlay must
// apply onto its declared base tree, with the application
// cross-validated against the equivalent delta-module derivation
// (delta.FromOverlay). CI runs this as a merge gate; the Summary
// formats into the failure artifact it uploads.
package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"llhsc/internal/conform"
	"llhsc/internal/constraints"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/dts/preproc"
	"llhsc/internal/featmodel"
)

// Failure is one corpus file failing one pipeline stage.
type Failure struct {
	File  string
	Stage string // preprocess+parse | check | roundtrip | overlay-base | overlay-apply | overlay-delta
	Err   error
}

func (f Failure) String() string {
	return fmt.Sprintf("%s [%s]: %v", f.File, f.Stage, f.Err)
}

// Summary is the outcome of a corpus run.
type Summary struct {
	Files    []string // top-level .dts/.dtso files processed, sorted
	Overlays int      // how many of them were /plugin/ overlays
	Failures []Failure
}

// Format renders the summary as the text artifact CI uploads on
// failure.
func (s *Summary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "corpus: %d files (%d overlays), %d failures\n",
		len(s.Files), s.Overlays, len(s.Failures))
	for _, f := range s.Failures {
		fmt.Fprintf(&b, "FAIL %s\n", f)
	}
	return b.String()
}

// baseMarker declares which base tree an overlay applies to:
// a `corpus:base=<file>` annotation anywhere in the overlay source.
var baseMarker = regexp.MustCompile(`corpus:base=([^\s*]+)`)

// Run processes every top-level .dts and .dtso file in dir. Includes
// resolve against dir and dir/include (plus the including file's own
// directory, as cpp does). The returned error covers only harness-level
// problems (unreadable directory); per-file problems are Failures.
func Run(dir string) (*Summary, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".dts", ".dtso":
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)

	s := &Summary{Files: files}
	popts := preproc.Options{IncludePaths: []string{dir, filepath.Join(dir, "include")}}
	trees := make(map[string]*dts.Tree)
	fail := func(file, stage string, err error) {
		s.Failures = append(s.Failures, Failure{File: file, Stage: stage, Err: err})
	}

	// load runs preprocess+parse once per file, memoized, since overlay
	// validation re-reads base trees.
	load := func(name string) (*dts.Tree, string, error) {
		if t, ok := trees[name]; ok {
			return t, "", nil
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, "", err
		}
		tree, err := preproc.Parse(filepath.Join(dir, name), string(src), popts,
			dts.WithIncluder(dts.DirIncluder(dir)))
		if err != nil {
			return nil, "", err
		}
		trees[name] = tree
		return tree, string(src), nil
	}

	for _, name := range files {
		tree, src, err := load(name)
		if err != nil {
			fail(name, "preprocess+parse", err)
			continue
		}

		if err := conform.CheckRoundTrip(tree); err != nil {
			fail(name, "roundtrip", err)
		}

		if !tree.Plugin {
			if err := semanticClean(tree); err != nil {
				fail(name, "check", err)
			}
			continue
		}

		// Overlay: find and load the declared base, apply, check the
		// merged tree, and cross-validate against the delta derivation.
		s.Overlays++
		m := baseMarker.FindStringSubmatch(src)
		if m == nil {
			fail(name, "overlay-base", fmt.Errorf("no corpus:base=<file> annotation"))
			continue
		}
		base, _, err := load(m[1])
		if err != nil {
			fail(name, "overlay-base", fmt.Errorf("base %s: %w", m[1], err))
			continue
		}
		merged, err := dts.ApplyOverlay(base, tree)
		if err != nil {
			fail(name, "overlay-apply", err)
			continue
		}
		if err := semanticClean(merged); err != nil {
			fail(name, "check", fmt.Errorf("after applying to %s: %w", m[1], err))
		}
		if err := conform.CheckRoundTrip(merged); err != nil {
			fail(name, "roundtrip", fmt.Errorf("after applying to %s: %w", m[1], err))
		}

		set, err := delta.FromOverlay(name, tree, "OVERLAY")
		if err != nil {
			fail(name, "overlay-delta", err)
			continue
		}
		viaDelta, _, err := set.Apply(base, featmodel.ConfigOf("OVERLAY"))
		if err != nil {
			fail(name, "overlay-delta", err)
			continue
		}
		if got, want := viaDelta.Print(), merged.Print(); got != want {
			fail(name, "overlay-delta", fmt.Errorf(
				"delta-derived product differs from ApplyOverlay\n--- delta\n%s--- direct\n%s", got, want))
		}
		off, _, err := set.Apply(base, featmodel.ConfigOf())
		if err != nil {
			fail(name, "overlay-delta", err)
			continue
		}
		if off.Print() != base.Print() {
			fail(name, "overlay-delta", fmt.Errorf("overlay-off product differs from base"))
		}
	}
	return s, nil
}

// semanticClean runs the semantic checker and fails on any collision or
// violation: corpus fixtures are expected to be well-formed.
func semanticClean(tree *dts.Tree) error {
	collisions, violations := constraints.NewSemanticChecker().Check(tree)
	if len(collisions) == 0 && len(violations) == 0 {
		return nil
	}
	var msgs []string
	for _, c := range collisions {
		msgs = append(msgs, c.String())
	}
	for _, v := range violations {
		msgs = append(msgs, v.String())
	}
	return fmt.Errorf("semantic checker: %s", strings.Join(msgs, "; "))
}
