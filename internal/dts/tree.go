// Package dts implements a DeviceTree source (DTS) toolchain: a tree
// model for device nodes and properties, a lexer and recursive-descent
// parser for the .dts/.dtsi format (including /include/ resolution,
// labels, unit addresses, cell arrays with integer expressions,
// strings, byte arrays and phandle references), dtc-style merge
// semantics for repeated definitions, and a canonical printer.
//
// This is the substrate the llhsc paper assumes from the dtc compiler
// (DESIGN.md §2): delta modules (internal/delta) edit these trees, and
// the checkers (internal/constraints) interpret them.
package dts

import (
	"fmt"
	"sort"
	"strings"
)

// Origin records where a node or property came from: a source position
// and, when produced by the product line, the delta module responsible.
// llhsc's blame reporting (tracing a violation back to the delta that
// caused it, Section III-B of the paper) is built on this.
type Origin struct {
	File  string
	Line  int
	Delta string // name of the delta module that added/last modified it
}

func (o Origin) String() string {
	switch {
	case o.Delta != "" && o.File != "":
		return fmt.Sprintf("%s:%d (delta %s)", o.File, o.Line, o.Delta)
	case o.Delta != "":
		return fmt.Sprintf("delta %s", o.Delta)
	case o.File != "":
		return fmt.Sprintf("%s:%d", o.File, o.Line)
	default:
		return "<unknown>"
	}
}

// MemReserve is a /memreserve/ entry.
type MemReserve struct {
	Address uint64
	Size    uint64
}

// OverlayFragment is one unresolved extension block of a /plugin/
// overlay: a `&label { ... };` or `&{/path} { ... };` whose target is
// expected to exist in the base tree the overlay is applied to, not in
// the overlay itself. The fragment's node carries the properties and
// children to merge into the target. Fragments are kept in document
// order; ApplyOverlay and delta.FromOverlay both consume them.
type OverlayFragment struct {
	Ref    string // label name, or absolute path for &{/path} targets
	IsPath bool
	Node   *Node
}

// Clone returns a deep copy of the fragment.
func (f OverlayFragment) Clone() OverlayFragment {
	return OverlayFragment{Ref: f.Ref, IsPath: f.IsPath, Node: f.Node.Clone()}
}

// Tree is a parsed DeviceTree.
type Tree struct {
	Root        *Node
	MemReserves []MemReserve

	// Plugin is set by the /plugin/ directive: the source is an overlay
	// meant to be applied onto a base tree. In plugin mode, extension
	// blocks whose label does not resolve locally become Fragments
	// instead of parse errors.
	Plugin    bool
	Fragments []OverlayFragment
}

// NewTree returns a tree with an empty root node.
func NewTree() *Tree {
	return &Tree{Root: &Node{Name: "/"}}
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		Root:        t.Root.Clone(),
		MemReserves: append([]MemReserve(nil), t.MemReserves...),
		Plugin:      t.Plugin,
	}
	if len(t.Fragments) > 0 {
		c.Fragments = make([]OverlayFragment, len(t.Fragments))
		for i, f := range t.Fragments {
			c.Fragments[i] = f.Clone()
		}
	}
	return c
}

// Lookup resolves an absolute path like "/memory@40000000" or "/" and
// returns the node, or nil if absent.
func (t *Tree) Lookup(path string) *Node {
	if path == "/" || path == "" {
		return t.Root
	}
	parts := strings.Split(strings.Trim(path, "/"), "/")
	n := t.Root
	for _, p := range parts {
		n = n.Child(p)
		if n == nil {
			return nil
		}
	}
	return n
}

// LookupLabel finds the node carrying the given label, or nil.
func (t *Tree) LookupLabel(label string) *Node {
	var found *Node
	t.Root.Walk(func(path string, n *Node) bool {
		if n.Label == label {
			found = n
			return false
		}
		return true
	})
	return found
}

// Node is a device node: a named collection of properties and child
// nodes. Name includes the unit address suffix when present
// ("memory@40000000").
type Node struct {
	Name       string
	Label      string
	Properties []*Property
	Children   []*Node
	Origin     Origin

	// Deletion markers recorded by /delete-property/ and /delete-node/
	// directives; Merge replays them against the target node so that a
	// later definition block can delete entries from an earlier one,
	// matching dtc semantics.
	delProps []string
	delNodes []string
}

// BaseName returns the node name without its unit address.
func (n *Node) BaseName() string {
	base, _ := SplitName(n.Name)
	return base
}

// UnitAddress returns the unit address part of the name ("" if none).
func (n *Node) UnitAddress() string {
	_, unit := SplitName(n.Name)
	return unit
}

// SplitName splits a node name into base name and unit address.
func SplitName(name string) (base, unit string) {
	if i := strings.IndexByte(name, '@'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return name, ""
}

// Clone returns a deep copy of the node.
func (n *Node) Clone() *Node {
	c := &Node{
		Name: n.Name, Label: n.Label, Origin: n.Origin,
		delProps: append([]string(nil), n.delProps...),
		delNodes: append([]string(nil), n.delNodes...),
	}
	c.Properties = make([]*Property, len(n.Properties))
	for i, p := range n.Properties {
		c.Properties[i] = p.Clone()
	}
	c.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		c.Children[i] = ch.Clone()
	}
	return c
}

// Child returns the direct child with the given (full) name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns every direct child whose base name matches.
func (n *Node) ChildrenNamed(base string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.BaseName() == base {
			out = append(out, c)
		}
	}
	return out
}

// EnsureChild returns the child with the given name, creating it if
// necessary.
func (n *Node) EnsureChild(name string) *Node {
	if c := n.Child(name); c != nil {
		return c
	}
	c := &Node{Name: name}
	n.Children = append(n.Children, c)
	return c
}

// RemoveChild deletes the direct child with the given name; it reports
// whether a child was removed.
func (n *Node) RemoveChild(name string) bool {
	for i, c := range n.Children {
		if c.Name == name {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			return true
		}
	}
	return false
}

// Property returns the property with the given name, or nil.
func (n *Node) Property(name string) *Property {
	for _, p := range n.Properties {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// SetProperty adds or replaces a property, preserving order for
// replacements.
func (n *Node) SetProperty(p *Property) {
	for i, old := range n.Properties {
		if old.Name == p.Name {
			n.Properties[i] = p
			return
		}
	}
	n.Properties = append(n.Properties, p)
}

// RemoveProperty deletes the named property; it reports whether a
// property was removed.
func (n *Node) RemoveProperty(name string) bool {
	for i, p := range n.Properties {
		if p.Name == name {
			n.Properties = append(n.Properties[:i], n.Properties[i+1:]...)
			return true
		}
	}
	return false
}

// DeletedProperties returns the /delete-property/ markers recorded on
// the node, in declaration order. Merge replays these against its
// target; consumers that reimplement merge semantics over a different
// tree representation (the lifted tree in internal/delta) need to see
// them too.
func (n *Node) DeletedProperties() []string {
	return append([]string(nil), n.delProps...)
}

// DeletedNodes returns the /delete-node/ markers recorded on the node,
// in declaration order.
func (n *Node) DeletedNodes() []string {
	return append([]string(nil), n.delNodes...)
}

// Walk visits the subtree rooted at n in depth-first order, passing
// each node's path (absolute when n is the root node). Returning false
// from fn stops the walk.
func (n *Node) Walk(fn func(path string, node *Node) bool) {
	var rec func(path string, node *Node) bool
	rec = func(path string, node *Node) bool {
		if !fn(path, node) {
			return false
		}
		prefix := path
		if prefix == "/" {
			prefix = ""
		}
		for _, c := range node.Children {
			if !rec(prefix+"/"+c.Name, c) {
				return false
			}
		}
		return true
	}
	start := "/"
	if n.Name != "/" {
		start = "/" + n.Name
	}
	rec(start, n)
}

// Merge merges other into n with dtc semantics: properties with the
// same name are overwritten, children with the same name are merged
// recursively, and new properties/children are appended. The label is
// taken from other when it has one.
func (n *Node) Merge(other *Node) {
	if other.Label != "" {
		n.Label = other.Label
	}
	for _, name := range other.delProps {
		n.RemoveProperty(name)
	}
	for _, name := range other.delNodes {
		n.RemoveChild(name)
	}
	for _, p := range other.Properties {
		n.SetProperty(p.Clone())
	}
	for _, c := range other.Children {
		if mine := n.Child(c.Name); mine != nil {
			mine.Merge(c)
		} else {
			n.Children = append(n.Children, c.Clone())
		}
	}
	if other.Origin.Delta != "" {
		n.Origin.Delta = other.Origin.Delta
	}
}

// AddressCells returns the node's #address-cells value, defaulting to 2
// per the DeviceTree specification when absent.
func (n *Node) AddressCells() int {
	if v, ok := n.CellValue("#address-cells"); ok {
		return int(v)
	}
	return 2
}

// SizeCells returns the node's #size-cells value, defaulting to 1 per
// the DeviceTree specification when absent.
func (n *Node) SizeCells() int {
	if v, ok := n.CellValue("#size-cells"); ok {
		return int(v)
	}
	return 1
}

// CellValue returns the first u32 cell of the named property.
func (n *Node) CellValue(name string) (uint32, bool) {
	p := n.Property(name)
	if p == nil {
		return 0, false
	}
	cells := p.Value.Cells()
	if len(cells) == 0 {
		return 0, false
	}
	return cells[0].Val, true
}

// StringValue returns the first string of the named property.
func (n *Node) StringValue(name string) (string, bool) {
	p := n.Property(name)
	if p == nil {
		return "", false
	}
	ss := p.Value.Strings()
	if len(ss) == 0 {
		return "", false
	}
	return ss[0], true
}

// Compatible returns the values of the node's compatible property.
func (n *Node) Compatible() []string {
	p := n.Property("compatible")
	if p == nil {
		return nil
	}
	return p.Value.Strings()
}

// SortedPropertyNames returns the node's property names sorted
// lexicographically (useful for deterministic reporting).
func (n *Node) SortedPropertyNames() []string {
	names := make([]string, len(n.Properties))
	for i, p := range n.Properties {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// Property is a named value attached to a node. A property with an
// empty value (no chunks) is a Boolean marker property.
type Property struct {
	Name   string
	Value  Value
	Origin Origin
}

// Clone returns a deep copy of the property.
func (p *Property) Clone() *Property {
	return &Property{Name: p.Name, Value: p.Value.Clone(), Origin: p.Origin}
}

// ChunkKind discriminates the syntactic forms a property value is
// assembled from.
type ChunkKind int

// Property value chunk kinds.
const (
	ChunkCells  ChunkKind = iota + 1 // <0x1 0x2 &label>
	ChunkString                      // "text"
	ChunkBytes                       // [de ad be ef]
	ChunkRef                         // &label (outside angle brackets: a path string)
)

// Cell is one element of a cell array; Ref is set for phandle
// references (&label) whose numeric value is resolved late. Cells are
// 32 bits wide unless the enclosing chunk carries a /bits/ override;
// 64-bit elements live in Val64 (Val holds the truncated low word so
// 32-bit consumers keep working).
type Cell struct {
	Val   uint32
	Val64 uint64
	Ref   string
}

// Chunk is one comma-separated component of a property value. Bits is
// the element width of a cells chunk set by a /bits/ prefix (8, 16, 32
// or 64); 0 means the default 32-bit width with no explicit prefix.
type Chunk struct {
	Kind     ChunkKind
	Bits     int
	CellList []Cell
	Str      string
	Bytes    []byte
	Ref      string
}

// Value is a property value: a sequence of chunks.
type Value struct {
	Chunks []Chunk
}

// Clone returns a deep copy of the value.
func (v Value) Clone() Value {
	out := Value{Chunks: make([]Chunk, len(v.Chunks))}
	for i, c := range v.Chunks {
		nc := c
		nc.CellList = append([]Cell(nil), c.CellList...)
		nc.Bytes = append([]byte(nil), c.Bytes...)
		out.Chunks[i] = nc
	}
	return out
}

// IsEmpty reports whether the value is a Boolean marker (no chunks).
func (v Value) IsEmpty() bool { return len(v.Chunks) == 0 }

// Cells returns the concatenation of all 32-bit cell chunks. Chunks
// with a /bits/ width other than 32 are excluded: their elements are
// not u32 cells, and consumers of Cells (reg/interrupt interpretation,
// the semantic checkers) assume the standard cell size.
func (v Value) Cells() []Cell {
	var out []Cell
	for _, c := range v.Chunks {
		if c.Kind == ChunkCells && (c.Bits == 0 || c.Bits == 32) {
			out = append(out, c.CellList...)
		}
	}
	return out
}

// U32s returns all cell values as uint32s.
func (v Value) U32s() []uint32 {
	cells := v.Cells()
	out := make([]uint32, len(cells))
	for i, c := range cells {
		out[i] = c.Val
	}
	return out
}

// Strings returns all string chunks.
func (v Value) Strings() []string {
	var out []string
	for _, c := range v.Chunks {
		if c.Kind == ChunkString {
			out = append(out, c.Str)
		}
	}
	return out
}

// Bytes returns the concatenation of all byte chunks.
func (v Value) Bytes() []byte {
	var out []byte
	for _, c := range v.Chunks {
		if c.Kind == ChunkBytes {
			out = append(out, c.Bytes...)
		}
	}
	return out
}

// CellsValue builds a value holding a single cells chunk.
func CellsValue(vals ...uint32) Value {
	cells := make([]Cell, len(vals))
	for i, v := range vals {
		cells[i] = Cell{Val: v}
	}
	return Value{Chunks: []Chunk{{Kind: ChunkCells, CellList: cells}}}
}

// Cells64Value builds a cells chunk from 64-bit values, splitting each
// into two cells (high word first), as the DT format requires when
// #address-cells is 2.
func Cells64Value(vals ...uint64) Value {
	cells := make([]Cell, 0, 2*len(vals))
	for _, v := range vals {
		cells = append(cells, Cell{Val: uint32(v >> 32)}, Cell{Val: uint32(v)})
	}
	return Value{Chunks: []Chunk{{Kind: ChunkCells, CellList: cells}}}
}

// StringValueOf builds a value holding string chunks.
func StringValueOf(ss ...string) Value {
	chunks := make([]Chunk, len(ss))
	for i, s := range ss {
		chunks[i] = Chunk{Kind: ChunkString, Str: s}
	}
	return Value{Chunks: chunks}
}

// BytesValue builds a value holding a single byte chunk.
func BytesValue(b []byte) Value {
	return Value{Chunks: []Chunk{{Kind: ChunkBytes, Bytes: append([]byte(nil), b...)}}}
}

// Aliases returns the alias map defined by the tree's /aliases node:
// alias name → absolute node path. Aliases whose value is not a single
// path string are skipped.
func (t *Tree) Aliases() map[string]string {
	out := make(map[string]string)
	aliases := t.Lookup("/aliases")
	if aliases == nil {
		return out
	}
	for _, p := range aliases.Properties {
		if ss := p.Value.Strings(); len(ss) == 1 && strings.HasPrefix(ss[0], "/") {
			out[p.Name] = ss[0]
			continue
		}
		// an alias may also be written as a reference (&label)
		for _, ch := range p.Value.Chunks {
			if ch.Kind == ChunkRef {
				if n := t.LookupLabel(ch.Ref); n != nil {
					if path := t.PathOf(n); path != "" {
						out[p.Name] = path
					}
				}
			}
		}
	}
	return out
}

// LookupAlias resolves an alias (from /aliases) to its node, or nil.
func (t *Tree) LookupAlias(name string) *Node {
	path, ok := t.Aliases()[name]
	if !ok {
		return nil
	}
	return t.Lookup(path)
}

// PathOf returns the absolute path of a node in the tree ("" if the
// node is not part of this tree).
func (t *Tree) PathOf(target *Node) string {
	var found string
	t.Root.Walk(func(path string, n *Node) bool {
		if n == target {
			found = path
			return false
		}
		return true
	})
	return found
}
