package dts

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokString
	tokLabel     // ident ':'
	tokRef       // &ident or &{/path}
	tokDirective // /dts-v1/, /plugin/, /include/, /memreserve/, /delete-node/, /delete-property/, /bits/, /omit-if-no-ref/
	tokLBrace    // {
	tokRBrace    // }
	tokLAngle    // <
	tokRAngle    // >
	tokLBracket  // [
	tokRBracket  // ]
	tokLParen    // (
	tokRParen    // )
	tokEquals    // =
	tokSemi      // ;
	tokComma     // ,
	tokSlash     // a bare / (the root node)
	tokOp        // arithmetic operator inside cell expressions
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of file"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLabel:
		return "label"
	case tokRef:
		return "reference"
	case tokDirective:
		return "directive"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLAngle:
		return "'<'"
	case tokRAngle:
		return "'>'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokEquals:
		return "'='"
	case tokSemi:
		return "';'"
	case tokComma:
		return "','"
	case tokSlash:
		return "'/'"
	case tokOp:
		return "operator"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	num  uint64
	line int
}

// ParseError reports a syntax error with its source position. Every
// failure mode of the DTS front end — including the resource guards —
// surfaces as a *ParseError, so callers (and the conformance fuzzer)
// can rely on errors.As for classification. Err optionally carries an
// underlying sentinel (ErrTooDeep, ErrSourceTooLarge) reachable with
// errors.Is.
type ParseError struct {
	File string
	Line int
	Msg  string
	Err  error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// Unwrap exposes the underlying sentinel, if any.
func (e *ParseError) Unwrap() error { return e.Err }

type lexer struct {
	src  string
	file string
	pos  int
	line int

	// cellMode changes how '-' and numbers are tokenized: inside angle
	// brackets, '-' is an arithmetic operator; outside, it is a name
	// character.
	cellMode bool
	// parenDepth tracks '(' nesting inside a cell list: at depth > 0 a
	// '>' is the greater-than operator, at depth 0 it closes the list.
	// dtc resolves the same ambiguity by requiring comparisons inside
	// parentheses.
	parenDepth int
	// byteMode is set between '[' and ']': hex digit runs are returned
	// verbatim (never as octal/decimal literals).
	byteMode bool
}

func newLexer(file, src string) *lexer {
	return &lexer{src: src, file: file, line: 1}
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return &ParseError{File: l.file, Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(i int) byte {
	if l.pos+i >= len(l.src) {
		return 0
	}
	return l.src[l.pos+i]
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.at(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.at(1) == '*':
			l.pos += 2
			for {
				if l.pos >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				if l.src[l.pos] == '*' && l.at(1) == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

// isNameByte reports whether c may continue a node/property name.
// Names may contain ',' ("arm,cortex-a53"), '@' (unit addresses) and
// '-' — but inside angle brackets (cellMode) '-' is an arithmetic
// operator and ','/'@' never occur in names.
func isNameByte(c byte, cellMode bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '.' || c == '_' || c == '+' || c == '?' || c == '#':
		return true
	case c == ',' || c == '@' || c == '-':
		return !cellMode
	default:
		return false
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func hexVal(c byte) byte {
	switch {
	case c <= '9':
		return c - '0'
	case c >= 'a':
		return c - 'a' + 10
	default:
		return c - 'A' + 10
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line := l.line
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '{':
		l.pos++
		return token{kind: tokLBrace, line: line}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, line: line}, nil
	case '<':
		l.pos++
		if l.cellMode {
			switch l.peekByte() {
			case '<':
				l.pos++
				return token{kind: tokOp, text: "<<", line: line}, nil
			case '=':
				l.pos++
				return token{kind: tokOp, text: "<=", line: line}, nil
			}
			return token{kind: tokOp, text: "<", line: line}, nil
		}
		l.cellMode = true
		l.parenDepth = 0
		return token{kind: tokLAngle, line: line}, nil
	case '>':
		l.pos++
		if l.cellMode {
			switch {
			case l.peekByte() == '>':
				l.pos++
				return token{kind: tokOp, text: ">>", line: line}, nil
			case l.peekByte() == '=':
				l.pos++
				return token{kind: tokOp, text: ">=", line: line}, nil
			case l.parenDepth > 0:
				return token{kind: tokOp, text: ">", line: line}, nil
			}
		}
		l.cellMode = false
		return token{kind: tokRAngle, line: line}, nil
	case '[':
		l.pos++
		l.byteMode = true
		return token{kind: tokLBracket, line: line}, nil
	case ']':
		l.pos++
		l.byteMode = false
		return token{kind: tokRBracket, line: line}, nil
	case '(':
		l.pos++
		if l.cellMode {
			l.parenDepth++
		}
		return token{kind: tokLParen, line: line}, nil
	case ')':
		l.pos++
		if l.cellMode && l.parenDepth > 0 {
			l.parenDepth--
		}
		return token{kind: tokRParen, line: line}, nil
	case '=':
		l.pos++
		if l.cellMode && l.peekByte() == '=' {
			l.pos++
			return token{kind: tokOp, text: "==", line: line}, nil
		}
		return token{kind: tokEquals, line: line}, nil
	case ';':
		l.pos++
		return token{kind: tokSemi, line: line}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, line: line}, nil
	case '"':
		return l.lexString()
	case '&':
		// In cell mode '&&' is logical-and and a lone '&' is
		// bitwise-and unless immediately followed by a name or '{' (a
		// phandle reference like <&uart0>).
		if l.cellMode {
			if l.at(1) == '&' {
				l.pos += 2
				return token{kind: tokOp, text: "&&", line: line}, nil
			}
			if l.at(1) != '{' && !isNameByte(l.at(1), false) {
				l.pos++
				return token{kind: tokOp, text: "&", line: line}, nil
			}
		}
		return l.lexRef()
	case '/':
		return l.lexSlashForm()
	}

	if l.cellMode {
		switch c {
		case '+', '-', '*', '%', '^', '~', '?', ':':
			l.pos++
			return token{kind: tokOp, text: opText(c), line: line}, nil
		case '|':
			l.pos++
			if l.peekByte() == '|' {
				l.pos++
				return token{kind: tokOp, text: "||", line: line}, nil
			}
			return token{kind: tokOp, text: "|", line: line}, nil
		case '!':
			l.pos++
			if l.peekByte() == '=' {
				l.pos++
				return token{kind: tokOp, text: "!=", line: line}, nil
			}
			return token{kind: tokOp, text: "!", line: line}, nil
		case '\'':
			return l.lexCharLiteral()
		}
	}

	if l.byteMode && isHexDigit(c) {
		// Inside a byte array hex runs are raw text; base rules must
		// not apply ("[00 99]" is two bytes, not an octal literal).
		start := l.pos
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line}, nil
	}

	if isDigit(c) {
		return l.lexNumber()
	}
	if isNameByte(c, l.cellMode) || c == '\\' {
		return l.lexIdentOrLabel()
	}
	return token{}, l.errUnexpected(c)
}

// opText returns the preinterned spelling of a single-character
// operator, so the cell-expression token loop never allocates a string
// per operator (string(c) materializes a fresh 1-byte string).
func opText(c byte) string { return singleCharOps[c] }

var singleCharOps = [256]string{
	'+': "+", '-': "-", '*': "*", '%': "%", '^': "^", '~': "~",
	'?': "?", ':': ":", '<': "<", '>': ">", '&': "&", '|': "|",
	'!': "!", '=': "=", '/': "/",
}

// errUnexpected formats the stray-character diagnostic. The byte-to-
// string conversion lives here, on the cold error path, so the token
// loop itself stays conversion-free.
func (l *lexer) errUnexpected(c byte) error {
	return l.errf("unexpected character %q", string(c))
}

func (l *lexer) lexString() (token, error) {
	line := l.line
	l.pos++ // opening quote
	// Fast path: a string with no escapes is a slice of the source —
	// no builder, no copy. Escapes (and the newline/unterminated error
	// cases) fall through to the building path below, which re-scans
	// from the same position.
	for i := l.pos; i < len(l.src); i++ {
		c := l.src[i]
		if c == '"' {
			text := l.src[l.pos:i]
			l.pos = i + 1
			return token{kind: tokString, text: text, line: line}, nil
		}
		if c == '\\' || c == '\n' {
			break
		}
	}
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string")
		}
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{kind: tokString, text: b.String(), line: line}, nil
		case '\\':
			l.pos++
			e, err := l.lexEscape()
			if err != nil {
				return token{}, err
			}
			b.WriteByte(e)
		case '\n':
			return token{}, l.errf("newline in string")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
}

// lexEscape decodes one escape sequence with the backslash already
// consumed, following dtc's get_escape_char: the single-character C
// escapes, octal \[0-7]{1,3} (range-checked to a byte) and hex
// \x with one or two hex digits. Unknown escapes yield the escaped
// character itself, as in dtc.
func (l *lexer) lexEscape() (byte, error) {
	if l.pos >= len(l.src) {
		return 0, l.errf("unterminated escape")
	}
	e := l.src[l.pos]
	switch e {
	case 'a':
		l.pos++
		return '\a', nil
	case 'b':
		l.pos++
		return '\b', nil
	case 't':
		l.pos++
		return '\t', nil
	case 'n':
		l.pos++
		return '\n', nil
	case 'v':
		l.pos++
		return '\v', nil
	case 'f':
		l.pos++
		return '\f', nil
	case 'r':
		l.pos++
		return '\r', nil
	case 'x':
		l.pos++
		var val uint32
		n := 0
		for n < 2 && l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			val = val<<4 | uint32(hexVal(l.src[l.pos]))
			l.pos++
			n++
		}
		if n == 0 {
			return 0, l.errf(`\x escape with no hex digits`)
		}
		return byte(val), nil
	}
	if e >= '0' && e <= '7' {
		var val uint32
		n := 0
		for n < 3 && l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '7' {
			val = val<<3 | uint32(l.src[l.pos]-'0')
			l.pos++
			n++
		}
		if val > 0xff {
			return 0, l.errf(`octal escape \%o exceeds a byte`, val)
		}
		return byte(val), nil
	}
	l.pos++
	return e, nil
}

// lexCharLiteral lexes a C character literal ('A', '\n', '\x41') inside
// a cell expression; its value is the byte value, as in dtc.
func (l *lexer) lexCharLiteral() (token, error) {
	line := l.line
	start := l.pos
	l.pos++ // opening quote
	if l.pos >= len(l.src) {
		return token{}, l.errf("unterminated character literal")
	}
	var val byte
	switch c := l.src[l.pos]; c {
	case '\'':
		return token{}, l.errf("empty character literal")
	case '\n':
		return token{}, l.errf("newline in character literal")
	case '\\':
		l.pos++
		e, err := l.lexEscape()
		if err != nil {
			return token{}, err
		}
		val = e
	default:
		val = c
		l.pos++
	}
	if l.peekByte() != '\'' {
		return token{}, l.errf("character literal must hold exactly one byte")
	}
	l.pos++
	return token{kind: tokNumber, num: uint64(val), text: l.src[start:l.pos], line: line}, nil
}

func (l *lexer) lexRef() (token, error) {
	line := l.line
	l.pos++ // '&'
	if l.peekByte() == '{' {
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != '}' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated path reference")
		}
		path := l.src[start:l.pos]
		l.pos++ // '}'
		return token{kind: tokRef, text: path, line: line}, nil
	}
	start := l.pos
	for l.pos < len(l.src) && isNameByte(l.src[l.pos], false) {
		l.pos++
	}
	if l.pos == start {
		return token{}, l.errf("empty reference")
	}
	return token{kind: tokRef, text: l.src[start:l.pos], line: line}, nil
}

// lexSlashForm handles '/' starts: directives (/dts-v1/, /include/ ...)
// and the bare root-node slash.
func (l *lexer) lexSlashForm() (token, error) {
	line := l.line
	start := l.pos
	l.pos++ // '/'
	nameStart := l.pos
	for l.pos < len(l.src) && (isNameByte(l.src[l.pos], false) || l.src[l.pos] == '-') {
		l.pos++
	}
	if l.pos > nameStart && l.peekByte() == '/' {
		l.pos++
		return token{kind: tokDirective, text: l.src[start:l.pos], line: line}, nil
	}
	// plain '/': the root node (or, in cell mode, division)
	l.pos = start + 1
	if l.cellMode {
		return token{kind: tokOp, text: "/", line: line}, nil
	}
	return token{kind: tokSlash, line: line}, nil
}

// lexNumber lexes an integer literal with C strtoull base-0 semantics,
// matching dtc: 0x/0X selects hexadecimal, a leading zero selects octal
// (stray 8/9 digits are an error), anything else is decimal. Literals
// that overflow 64 bits are a ParseError instead of wrapping silently.
func (l *lexer) lexNumber() (token, error) {
	line := l.line
	start := l.pos
	const maxU64 = ^uint64(0)
	if l.peekByte() == '0' && (l.at(1) == 'x' || l.at(1) == 'X') {
		l.pos += 2
		digitStart := l.pos
		var val uint64
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			if val > maxU64>>4 {
				return token{}, l.errf("hex literal overflows 64 bits")
			}
			val = val<<4 | uint64(hexVal(l.src[l.pos]))
			l.pos++
		}
		if l.pos == digitStart {
			return token{}, l.errf("malformed hex literal")
		}
		return token{kind: tokNumber, num: val, text: l.src[start:l.pos], line: line}, nil
	}
	// Scan the whole digit run first: outside cells it may turn out to
	// be an identifier like "1st-level", which must not be misdiagnosed
	// as a malformed octal literal.
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if !l.cellMode && l.pos < len(l.src) && isNameByte(l.src[l.pos], false) &&
		!isDigit(l.src[l.pos]) {
		for l.pos < len(l.src) && isNameByte(l.src[l.pos], false) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if l.peekByte() == ':' {
			l.pos++
			return token{kind: tokLabel, text: text, line: line}, nil
		}
		return token{kind: tokIdent, text: text, line: line}, nil
	}
	text := l.src[start:l.pos]
	var val uint64
	if len(text) > 1 && text[0] == '0' {
		for i := 1; i < len(text); i++ {
			d := text[i]
			if d > '7' {
				return token{}, l.errBadOctalDigit(d, text)
			}
			if val > maxU64>>3 {
				return token{}, l.errf("octal literal %s overflows 64 bits", text)
			}
			val = val<<3 | uint64(d-'0')
		}
	} else {
		for i := 0; i < len(text); i++ {
			d := uint64(text[i] - '0')
			if val > (maxU64-d)/10 {
				return token{}, l.errf("decimal literal %s overflows 64 bits", text)
			}
			val = val*10 + d
		}
	}
	return token{kind: tokNumber, num: val, text: text, line: line}, nil
}

// errBadOctalDigit keeps the byte-to-string conversion off the number
// scanning path; it only runs once a literal is already known bad.
func (l *lexer) errBadOctalDigit(d byte, text string) error {
	return l.errf("invalid digit %q in octal literal %s", string(d), text)
}

func (l *lexer) lexIdentOrLabel() (token, error) {
	line := l.line
	start := l.pos
	for l.pos < len(l.src) && isNameByte(l.src[l.pos], l.cellMode) {
		l.pos++
	}
	if l.pos == start {
		return token{}, l.errUnexpected(l.src[l.pos])
	}
	text := l.src[start:l.pos]
	if l.peekByte() == ':' && !l.cellMode {
		l.pos++
		return token{kind: tokLabel, text: text, line: line}, nil
	}
	return token{kind: tokIdent, text: text, line: line}, nil
}
