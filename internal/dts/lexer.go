package dts

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokString
	tokLabel     // ident ':'
	tokRef       // &ident or &{/path}
	tokDirective // /dts-v1/, /include/, /memreserve/, /delete-node/, /delete-property/, /bits/
	tokLBrace    // {
	tokRBrace    // }
	tokLAngle    // <
	tokRAngle    // >
	tokLBracket  // [
	tokRBracket  // ]
	tokLParen    // (
	tokRParen    // )
	tokEquals    // =
	tokSemi      // ;
	tokComma     // ,
	tokSlash     // a bare / (the root node)
	tokOp        // arithmetic operator inside cell expressions
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of file"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLabel:
		return "label"
	case tokRef:
		return "reference"
	case tokDirective:
		return "directive"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLAngle:
		return "'<'"
	case tokRAngle:
		return "'>'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokEquals:
		return "'='"
	case tokSemi:
		return "';'"
	case tokComma:
		return "','"
	case tokSlash:
		return "'/'"
	case tokOp:
		return "operator"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	num  uint64
	line int
}

// ParseError reports a syntax error with its source position.
type ParseError struct {
	File string
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

type lexer struct {
	src  string
	file string
	pos  int
	line int

	// cellMode changes how '-' and numbers are tokenized: inside angle
	// brackets, '-' is an arithmetic operator; outside, it is a name
	// character.
	cellMode bool
}

func newLexer(file, src string) *lexer {
	return &lexer{src: src, file: file, line: 1}
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return &ParseError{File: l.file, Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(i int) byte {
	if l.pos+i >= len(l.src) {
		return 0
	}
	return l.src[l.pos+i]
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.at(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.at(1) == '*':
			l.pos += 2
			for {
				if l.pos >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				if l.src[l.pos] == '*' && l.at(1) == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

// isNameByte reports whether c may continue a node/property name.
// Names may contain ',' ("arm,cortex-a53"), '@' (unit addresses) and
// '-' — but inside angle brackets (cellMode) '-' is an arithmetic
// operator and ','/'@' never occur in names.
func isNameByte(c byte, cellMode bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '.' || c == '_' || c == '+' || c == '?' || c == '#':
		return true
	case c == ',' || c == '@' || c == '-':
		return !cellMode
	default:
		return false
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line := l.line
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '{':
		l.pos++
		return token{kind: tokLBrace, line: line}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, line: line}, nil
	case '<':
		l.pos++
		if l.cellMode {
			if l.peekByte() == '<' {
				l.pos++
				return token{kind: tokOp, text: "<<", line: line}, nil
			}
			return token{kind: tokOp, text: "<", line: line}, nil
		}
		l.cellMode = true
		return token{kind: tokLAngle, line: line}, nil
	case '>':
		l.pos++
		if l.cellMode && l.peekByte() == '>' {
			l.pos++
			return token{kind: tokOp, text: ">>", line: line}, nil
		}
		l.cellMode = false
		return token{kind: tokRAngle, line: line}, nil
	case '[':
		l.pos++
		return token{kind: tokLBracket, line: line}, nil
	case ']':
		l.pos++
		return token{kind: tokRBracket, line: line}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, line: line}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, line: line}, nil
	case '=':
		l.pos++
		return token{kind: tokEquals, line: line}, nil
	case ';':
		l.pos++
		return token{kind: tokSemi, line: line}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, line: line}, nil
	case '"':
		return l.lexString()
	case '&':
		// In cell mode '&' is bitwise-and unless immediately followed
		// by a name or '{' (a phandle reference like <&uart0>).
		if l.cellMode && l.at(1) != '{' && !isNameByte(l.at(1), false) {
			l.pos++
			return token{kind: tokOp, text: "&", line: line}, nil
		}
		return l.lexRef()
	case '/':
		return l.lexSlashForm()
	}

	if l.cellMode {
		switch c {
		case '+', '-', '*', '%', '|', '^', '~':
			l.pos++
			return token{kind: tokOp, text: string(c), line: line}, nil
		}
	}

	if isDigit(c) {
		return l.lexNumber()
	}
	if isNameByte(c, l.cellMode) || c == '\\' {
		return l.lexIdentOrLabel()
	}
	return token{}, l.errf("unexpected character %q", string(c))
}

func (l *lexer) lexString() (token, error) {
	line := l.line
	l.pos++ // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string")
		}
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{kind: tokString, text: b.String(), line: line}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated escape")
			}
			e := l.src[l.pos]
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '0':
				b.WriteByte(0)
			default:
				b.WriteByte(e)
			}
			l.pos++
		case '\n':
			return token{}, l.errf("newline in string")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
}

func (l *lexer) lexRef() (token, error) {
	line := l.line
	l.pos++ // '&'
	if l.peekByte() == '{' {
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != '}' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated path reference")
		}
		path := l.src[start:l.pos]
		l.pos++ // '}'
		return token{kind: tokRef, text: path, line: line}, nil
	}
	start := l.pos
	for l.pos < len(l.src) && isNameByte(l.src[l.pos], false) {
		l.pos++
	}
	if l.pos == start {
		return token{}, l.errf("empty reference")
	}
	return token{kind: tokRef, text: l.src[start:l.pos], line: line}, nil
}

// lexSlashForm handles '/' starts: directives (/dts-v1/, /include/ ...)
// and the bare root-node slash.
func (l *lexer) lexSlashForm() (token, error) {
	line := l.line
	start := l.pos
	l.pos++ // '/'
	nameStart := l.pos
	for l.pos < len(l.src) && (isNameByte(l.src[l.pos], false) || l.src[l.pos] == '-') {
		l.pos++
	}
	if l.pos > nameStart && l.peekByte() == '/' {
		l.pos++
		return token{kind: tokDirective, text: l.src[start:l.pos], line: line}, nil
	}
	// plain '/': the root node (or, in cell mode, division)
	l.pos = start + 1
	if l.cellMode {
		return token{kind: tokOp, text: "/", line: line}, nil
	}
	return token{kind: tokSlash, line: line}, nil
}

func (l *lexer) lexNumber() (token, error) {
	line := l.line
	start := l.pos
	var val uint64
	if l.peekByte() == '0' && (l.at(1) == 'x' || l.at(1) == 'X') {
		l.pos += 2
		digitStart := l.pos
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			c := l.src[l.pos]
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			default:
				d = uint64(c-'A') + 10
			}
			val = val<<4 | d
			l.pos++
		}
		if l.pos == digitStart {
			return token{}, l.errf("malformed hex literal")
		}
	} else {
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			val = val*10 + uint64(l.src[l.pos]-'0')
			l.pos++
		}
	}
	// In name position (outside cells), digits may start an identifier
	// like "1st-level"; continue as identifier if name bytes follow.
	if !l.cellMode && l.pos < len(l.src) && isNameByte(l.src[l.pos], false) &&
		!isDigit(l.src[l.pos]) {
		for l.pos < len(l.src) && isNameByte(l.src[l.pos], false) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if l.peekByte() == ':' {
			l.pos++
			return token{kind: tokLabel, text: text, line: line}, nil
		}
		return token{kind: tokIdent, text: text, line: line}, nil
	}
	return token{kind: tokNumber, num: val, text: l.src[start:l.pos], line: line}, nil
}

func (l *lexer) lexIdentOrLabel() (token, error) {
	line := l.line
	start := l.pos
	for l.pos < len(l.src) && isNameByte(l.src[l.pos], l.cellMode) {
		l.pos++
	}
	if l.pos == start {
		return token{}, l.errf("unexpected character %q", string(l.src[l.pos]))
	}
	text := l.src[start:l.pos]
	if l.peekByte() == ':' && !l.cellMode {
		l.pos++
		return token{kind: tokLabel, text: text, line: line}, nil
	}
	return token{kind: tokIdent, text: text, line: line}, nil
}
