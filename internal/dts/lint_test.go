package dts

import (
	"strings"
	"testing"
)

func lintOf(t *testing.T, src string) []LintWarning {
	t.Helper()
	tree, err := Parse("lint.dts", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return tree.Lint()
}

func rulesOf(ws []LintWarning) map[string]int {
	out := make(map[string]int)
	for _, w := range ws {
		out[w.Rule]++
	}
	return out
}

func TestLintCleanRunningExample(t *testing.T) {
	tree, err := ParseFile("../../testdata/customsbc.dts")
	if err != nil {
		t.Fatal(err)
	}
	if ws := tree.Lint(); len(ws) != 0 {
		t.Errorf("running example should lint clean: %v", ws)
	}
}

func TestLintUnitAddressMismatch(t *testing.T) {
	ws := lintOf(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	uart@1000 {
		reg = <0x2000 0x100>;
	};
};
`)
	if rulesOf(ws)["unit_address_vs_reg"] != 1 {
		t.Errorf("warnings = %v, want unit_address_vs_reg", ws)
	}
	if !strings.Contains(ws[0].Message, "0x2000") {
		t.Errorf("message = %q", ws[0].Message)
	}
}

func TestLintUnitAddress64Bit(t *testing.T) {
	// matching 64-bit unit address (2 address cells): no warning
	ws := lintOf(t, `
/dts-v1/;
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	memory@140000000 {
		device_type = "memory";
		reg = <0x1 0x40000000 0x0 0x1000>;
	};
};
`)
	if len(ws) != 0 {
		t.Errorf("warnings = %v, want none", ws)
	}
}

func TestLintMissingUnitAddress(t *testing.T) {
	ws := lintOf(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	uart {
		reg = <0x1000 0x100>;
	};
	mystery@5000 { };
};
`)
	rules := rulesOf(ws)
	if rules["unit_address_missing"] != 1 {
		t.Errorf("warnings = %v, want unit_address_missing", ws)
	}
	if rules["unit_address_without_reg"] != 1 {
		t.Errorf("warnings = %v, want unit_address_without_reg", ws)
	}
}

func TestLintDuplicateLabel(t *testing.T) {
	ws := lintOf(t, `
/dts-v1/;
/ {
	l: a { };
	l: b { };
};
`)
	if rulesOf(ws)["duplicate_label"] != 1 {
		t.Errorf("warnings = %v, want duplicate_label", ws)
	}
}

func TestLintUnnecessaryAddrSize(t *testing.T) {
	ws := lintOf(t, `
/dts-v1/;
/ {
	leaf {
		#address-cells = <1>;
	};
};
`)
	if rulesOf(ws)["avoid_unnecessary_addr_size"] != 1 {
		t.Errorf("warnings = %v", ws)
	}
}

func TestLintUnresolvedReference(t *testing.T) {
	ws := lintOf(t, `
/dts-v1/;
/ {
	n {
		link = <&ghost>;
		alias = &{/also/missing};
	};
};
`)
	if rulesOf(ws)["unresolved_reference"] != 2 {
		t.Errorf("warnings = %v, want 2 unresolved references", ws)
	}
}

func TestLintResolvedReferenceIsClean(t *testing.T) {
	ws := lintOf(t, `
/dts-v1/;
/ {
	tgt: target { };
	n {
		link = <&tgt>;
		path = &{/target};
	};
};
`)
	if len(ws) != 0 {
		t.Errorf("warnings = %v, want none", ws)
	}
}

func TestLintBadUnitAddressFormat(t *testing.T) {
	ws := lintOf(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	dev@zz {
		reg = <0x1000 0x100>;
	};
};
`)
	if rulesOf(ws)["unit_address_format"] != 1 {
		t.Errorf("warnings = %v", ws)
	}
}
