package dts

import (
	"strings"
	"testing"
)

const overlayBaseSrc = `/dts-v1/;
/ {
	soc {
		uart0: serial@10000000 {
			compatible = "ns16550a";
			status = "disabled";
		};
		i2c@20000000 {
			#address-cells = <1>;
			#size-cells = <0>;
			status = "disabled";
		};
	};
};
`

const overlaySrc = `/dts-v1/;
/plugin/;
/ {
	chosen {
		overlay-loaded;
	};
};
&uart0 {
	status = "okay";
	current-speed = <115200>;
};
&{/soc/i2c@20000000} {
	status = "okay";

	sensor@48 {
		compatible = "ti,tmp102";
		reg = <0x48>;
	};
};
`

func parseBoth(t *testing.T) (base, ov *Tree) {
	t.Helper()
	base, err := Parse("base.dts", overlayBaseSrc)
	if err != nil {
		t.Fatalf("parse base: %v", err)
	}
	ov, err = Parse("overlay.dtso", overlaySrc)
	if err != nil {
		t.Fatalf("parse overlay: %v", err)
	}
	return base, ov
}

func TestApplyOverlay(t *testing.T) {
	base, ov := parseBoth(t)
	merged, err := ApplyOverlay(base, ov)
	if err != nil {
		t.Fatalf("ApplyOverlay: %v", err)
	}
	if merged.Plugin || len(merged.Fragments) != 0 {
		t.Error("merged tree should be a plain tree")
	}
	uart := merged.Lookup("/soc/serial@10000000")
	if s, _ := uart.StringValue("status"); s != "okay" {
		t.Errorf("uart status = %q, want okay", s)
	}
	if v, _ := uart.CellValue("current-speed"); v != 115200 {
		t.Errorf("current-speed = %d", v)
	}
	if merged.Lookup("/soc/i2c@20000000/sensor@48") == nil {
		t.Error("path-targeted fragment did not merge")
	}
	if merged.Lookup("/chosen") == nil {
		t.Error("overlay root content did not merge")
	}
	// The base must be untouched.
	if s, _ := base.Lookup("/soc/serial@10000000").StringValue("status"); s != "disabled" {
		t.Error("ApplyOverlay mutated the base tree")
	}
}

func TestApplyOverlayErrors(t *testing.T) {
	base, _ := parseBoth(t)
	if _, err := ApplyOverlay(base, base); err == nil {
		t.Error("applying a non-plugin tree should fail")
	}
	ov, err := Parse("bad.dtso", "/dts-v1/;\n/plugin/;\n&missing { x = <1>; };\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = ApplyOverlay(base, ov)
	var oe *OverlayError
	if err == nil {
		t.Fatal("expected OverlayError for unresolvable target")
	}
	if !asOverlayError(err, &oe) || oe.Ref != "missing" {
		t.Errorf("err = %v, want OverlayError on &missing", err)
	}
}

func asOverlayError(err error, out **OverlayError) bool {
	oe, ok := err.(*OverlayError)
	if ok {
		*out = oe
	}
	return ok
}

func TestBuildSymbols(t *testing.T) {
	base, _ := parseBoth(t)
	base.AddSymbols()
	sym := base.Lookup("/__symbols__")
	if sym == nil {
		t.Fatal("__symbols__ missing")
	}
	if p, _ := sym.StringValue("uart0"); p != "/soc/serial@10000000" {
		t.Errorf("uart0 symbol = %q", p)
	}
	// Idempotent: re-adding replaces rather than duplicating, and the
	// table never lists itself.
	base.AddSymbols()
	count := 0
	for _, c := range base.Root.Children {
		if c.Name == "__symbols__" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("%d __symbols__ nodes after re-add", count)
	}
	if sym := base.Lookup("/__symbols__"); len(sym.Properties) != 1 {
		t.Errorf("symbols = %v, want just uart0", sym.SortedPropertyNames())
	}
}

func TestCompileOverlay(t *testing.T) {
	src := `/dts-v1/;
/plugin/;
&uart0 {
	status = "okay";
	local: child {
		friend = <&local 7>;
		remote = <&basedev>;
	};
};
`
	ov, err := Parse("c.dtso", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	comp, err := CompileOverlay(ov)
	if err != nil {
		t.Fatalf("CompileOverlay: %v", err)
	}
	frag := comp.Lookup("/fragment@0")
	if frag == nil {
		t.Fatal("fragment@0 missing")
	}
	tc := frag.Property("target").Value.Cells()
	if len(tc) != 1 || tc[0].Ref != "uart0" {
		t.Errorf("target = %+v, want &uart0", tc)
	}
	if comp.Lookup("/fragment@0/__overlay__/child") == nil {
		t.Error("__overlay__ body missing")
	}

	sym := comp.Lookup("/__symbols__")
	if sym == nil {
		t.Fatal("__symbols__ missing")
	}
	if p, _ := sym.StringValue("local"); p != "/fragment@0/__overlay__/child" {
		t.Errorf("local symbol = %q", p)
	}

	fx := comp.Lookup("/__fixups__")
	if fx == nil {
		t.Fatal("__fixups__ missing")
	}
	// &uart0 in the target property (offset 0) and &basedev in remote.
	if got, _ := fx.StringValue("uart0"); got != "/fragment@0:target:0" {
		t.Errorf("uart0 fixup = %q", got)
	}
	if got, _ := fx.StringValue("basedev"); got != "/fragment@0/__overlay__/child:remote:0" {
		t.Errorf("basedev fixup = %q", got)
	}

	lf := comp.Lookup("/__local_fixups__/fragment@0/__overlay__/child")
	if lf == nil {
		t.Fatal("__local_fixups__ entry missing")
	}
	if offs := lf.Property("friend").Value.U32s(); len(offs) != 1 || offs[0] != 0 {
		t.Errorf("friend local fixup offsets = %v, want [0]", offs)
	}

	// The compiled form is still a valid printable/reparsable tree.
	printed := comp.Print()
	if _, err := Parse("compiled.dts", printed); err != nil {
		t.Fatalf("compiled form does not reparse: %v\n%s", err, printed)
	}
}

func TestCompileOverlayTargetPath(t *testing.T) {
	ov, err := Parse("p.dtso", "/dts-v1/;\n/plugin/;\n&{/soc/uart} { status = \"okay\"; };\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	comp, err := CompileOverlay(ov)
	if err != nil {
		t.Fatalf("CompileOverlay: %v", err)
	}
	frag := comp.Lookup("/fragment@0")
	if p, _ := frag.StringValue("target-path"); p != "/soc/uart" {
		t.Errorf("target-path = %q", p)
	}
	if frag.Property("target") != nil {
		t.Error("path fragment should not carry a target property")
	}
	if comp.Lookup("/__fixups__") != nil {
		t.Error("no external label refs, so no __fixups__ expected")
	}
}

func TestCompileOverlayFixupOffsets(t *testing.T) {
	// A string chunk before the ref shifts the fixup offset by len+1;
	// /bits/ widths count at their element size.
	src := `/dts-v1/;
/plugin/;
&target {
	mixed = "ab", <1 &ext 2>;
	wide = /bits/ 16 <1 2>, <&ext>;
};
`
	ov, err := Parse("o.dtso", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	comp, err := CompileOverlay(ov)
	if err != nil {
		t.Fatalf("CompileOverlay: %v", err)
	}
	fx := comp.Lookup("/__fixups__")
	got := fx.Property("ext").Value.Strings()
	want := []string{
		"/fragment@0/__overlay__:mixed:7", // "ab\0" = 3, then one cell = 4
		"/fragment@0/__overlay__:wide:4",  // two 16-bit elements = 4
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("ext fixups = %v, want %v", got, want)
	}
}

func TestOverlayRoundTripThroughPrint(t *testing.T) {
	_, ov := parseBoth(t)
	printed := ov.Print()
	re, err := Parse("re.dtso", printed)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !strings.Contains(printed, "/plugin/;") {
		t.Error("printed overlay lost /plugin/")
	}
	base, _ := Parse("base.dts", overlayBaseSrc)
	m1, err := ApplyOverlay(base, ov)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ApplyOverlay(base, re)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Print() != m2.Print() {
		t.Error("overlay application differs after a print round trip")
	}
}
