package dts

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomTree builds a random but well-formed tree: node names with unit
// addresses, properties of each value kind, labels, nested children.
func randomTree(rng *rand.Rand) *Tree {
	tree := NewTree()
	var fill func(n *Node, depth, index int)
	fill = func(n *Node, depth, index int) {
		nprops := rng.Intn(4)
		for i := 0; i < nprops; i++ {
			name := fmt.Sprintf("prop-%d", i)
			var v Value
			switch rng.Intn(4) {
			case 0:
				vals := make([]uint32, 1+rng.Intn(4))
				for j := range vals {
					vals[j] = rng.Uint32()
				}
				v = CellsValue(vals...)
			case 1:
				v = StringValueOf(fmt.Sprintf("str-%d", rng.Intn(100)))
			case 2:
				b := make([]byte, 1+rng.Intn(6))
				rng.Read(b)
				v = BytesValue(b)
			case 3:
				// boolean marker property
			}
			n.SetProperty(&Property{Name: name, Value: v})
		}
		if depth >= 3 {
			return
		}
		nchildren := rng.Intn(3)
		for i := 0; i < nchildren; i++ {
			name := fmt.Sprintf("node%d", i)
			if rng.Intn(2) == 0 {
				name = fmt.Sprintf("dev%d@%x", i, rng.Intn(1<<30))
			}
			c := &Node{Name: name}
			if rng.Intn(4) == 0 {
				c.Label = fmt.Sprintf("lbl%d%d%d", depth, index, i)
			}
			n.Children = append(n.Children, c)
			fill(c, depth+1, i)
		}
	}
	fill(tree.Root, 0, 0)
	return tree
}

// treesEqual compares trees structurally.
func treesEqual(a, b *Node) error {
	if a.Name != b.Name {
		return fmt.Errorf("name %q != %q", a.Name, b.Name)
	}
	if a.Label != b.Label {
		return fmt.Errorf("%s: label %q != %q", a.Name, a.Label, b.Label)
	}
	if len(a.Properties) != len(b.Properties) {
		return fmt.Errorf("%s: %d vs %d properties", a.Name, len(a.Properties), len(b.Properties))
	}
	for i, p := range a.Properties {
		q := b.Properties[i]
		if p.Name != q.Name {
			return fmt.Errorf("%s: property %q != %q", a.Name, p.Name, q.Name)
		}
		if fmt.Sprint(p.Value.U32s()) != fmt.Sprint(q.Value.U32s()) ||
			fmt.Sprint(p.Value.Strings()) != fmt.Sprint(q.Value.Strings()) ||
			fmt.Sprint(p.Value.Bytes()) != fmt.Sprint(q.Value.Bytes()) {
			return fmt.Errorf("%s.%s: values differ", a.Name, p.Name)
		}
	}
	if len(a.Children) != len(b.Children) {
		return fmt.Errorf("%s: %d vs %d children", a.Name, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		if err := treesEqual(a.Children[i], b.Children[i]); err != nil {
			return err
		}
	}
	return nil
}

func TestPropertyPrintParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 100; iter++ {
		tree := randomTree(rng)
		printed := tree.Print()
		back, err := Parse("roundtrip.dts", printed)
		if err != nil {
			t.Fatalf("iter %d: reparse failed: %v\n%s", iter, err, printed)
		}
		if err := treesEqual(tree.Root, back.Root); err != nil {
			t.Fatalf("iter %d: round trip changed the tree: %v\n%s", iter, err, printed)
		}
	}
}

func TestPropertyCloneEqualsOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 50; iter++ {
		tree := randomTree(rng)
		clone := tree.Clone()
		if err := treesEqual(tree.Root, clone.Root); err != nil {
			t.Fatalf("iter %d: clone differs: %v", iter, err)
		}
		// mutating the clone must not affect the original
		clone.Root.SetProperty(&Property{Name: "mutation", Value: CellsValue(1)})
		if tree.Root.Property("mutation") != nil {
			t.Fatal("clone mutation leaked")
		}
	}
}

func TestPropertyMergeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 50; iter++ {
		tree := randomTree(rng)
		merged := tree.Clone()
		merged.Root.Merge(tree.Root.Clone())
		if err := treesEqual(tree.Root, merged.Root); err != nil {
			t.Fatalf("iter %d: self-merge changed the tree: %v", iter, err)
		}
	}
}
