package dts

import "testing"

// TestLexerTokenLoopAllocs pins the lexer's token loop under a fixed
// allocation budget. With the preinterned operator table and the
// zero-copy string fast path, every token of an escape-free source is
// either a value-typed token struct or a slice of the source string —
// nothing on the loop should reach the heap. The budget is allocations
// per full pass over the source (not per token), so any regression —
// a string(c) conversion creeping back in, a builder on the fast path
// — shows up as a whole number.
func TestLexerTokenLoopAllocs(t *testing.T) {
	const src = `/dts-v1/;
/memreserve/ 0x10000000 0x4000;
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	compatible = "vendor,board", "vendor,soc";
	uart0: serial@9000000 {
		compatible = "arm,pl011";
		reg = <0x0 0x9000000 0x0 0x1000>;
		interrupts = <0 1 4>;
		clock-frequency = <(24000000 / (1 + 1) * 2 - 0x100 % 7)>;
		status = "okay";
	};
	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x80000000>;
	};
	aliases {
		serial0 = &uart0;
	};
};
`
	lexPass := func() {
		l := newLexer("alloc.dts", src)
		for {
			tok, err := l.next()
			if err != nil {
				t.Fatal(err)
			}
			if tok.kind == tokEOF {
				return
			}
		}
	}
	lexPass() // warm up before measuring

	const budget = 2 // one lexer struct + slack; the loop itself must not allocate
	if allocs := testing.AllocsPerRun(200, lexPass); allocs > budget {
		t.Errorf("lexer pass allocates %.1f allocs, budget %d", allocs, budget)
	}
}
