package dts

import (
	"errors"
	"strings"
	"testing"
)

// parseCellProp parses "/ { p = <SRC>; };" and returns p's cells.
func parseCellProp(t *testing.T, cells string) []uint32 {
	t.Helper()
	tree, err := Parse("fid.dts", "/dts-v1/;\n/ { p = <"+cells+">; };\n")
	if err != nil {
		t.Fatalf("Parse(<%s>): %v", cells, err)
	}
	return tree.Root.Property("p").Value.U32s()
}

// TestOctalLiterals: dtc reads integer literals with C strtoull base-0
// semantics, so a leading zero selects octal. The seed parser read
// <010> as decimal 10.
func TestOctalLiterals(t *testing.T) {
	tests := []struct {
		src  string
		want uint32
	}{
		{"010", 8},
		{"0777", 0777},
		{"0", 0},
		{"00", 0},
		{"(017 + 1)", 16},
		{"10", 10},
		{"0x10", 16},
	}
	for _, tt := range tests {
		if got := parseCellProp(t, tt.src); len(got) != 1 || got[0] != tt.want {
			t.Errorf("<%s> = %v, want [%d]", tt.src, got, tt.want)
		}
	}
}

// TestOctalLiteralStrayDigits: 8/9 inside an octal literal must be a
// ParseError, not silently parsed as decimal.
func TestOctalLiteralStrayDigits(t *testing.T) {
	for _, src := range []string{"08", "019", "0778"} {
		_, err := Parse("fid.dts", "/dts-v1/;\n/ { p = <"+src+">; };\n")
		if err == nil {
			t.Errorf("<%s>: expected octal digit error, got nil", src)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("<%s>: error %T is not *ParseError: %v", src, err, err)
		}
		if !strings.Contains(err.Error(), "octal") {
			t.Errorf("<%s>: error %q does not mention octal", src, err)
		}
	}
}

// TestStringEscapes: dtc accepts the full C escape set including hex
// (\x41) and octal (\101) escapes. The seed lexer turned "\x41" into
// the literal characters "x41".
func TestStringEscapes(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`"\x41"`, "A"},
		{`"\101"`, "A"},
		{`"\x41BC"`, "ABC"}, // hex escapes stop after two digits
		{`"\1013"`, "A3"},   // octal escapes stop after three digits
		{`"\0"`, "\x00"},
		{`"\377"`, "\xff"},
		{`"\xff"`, "\xff"},
		{`"\x7"`, "\x07"}, // one hex digit is enough
		{`"\a\b\f\v"`, "\a\b\f\v"},
		{`"\n\t\r"`, "\n\t\r"},
		{`"\\\""`, `\"`},
	}
	for _, tt := range tests {
		tree, err := Parse("esc.dts", "/dts-v1/;\n/ { s = "+tt.src+"; };\n")
		if err != nil {
			t.Errorf("Parse(%s): %v", tt.src, err)
			continue
		}
		if got, _ := tree.Root.StringValue("s"); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.src, got, tt.want)
		}
	}
}

// TestStringEscapeErrors: out-of-range octal escapes and digit-less \x
// are diagnosed instead of corrupting the string.
func TestStringEscapeErrors(t *testing.T) {
	for _, src := range []string{`"\400"`, `"\777"`, `"\x"`, `"\xzz"`} {
		_, err := Parse("esc.dts", "/dts-v1/;\n/ { s = "+src+"; };\n")
		if err == nil {
			t.Errorf("%s: expected escape error, got nil", src)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %T is not *ParseError", src, err)
		}
	}
}

// TestComparisonLogicalTernaryOperators: the seed parser supported only
// arithmetic/bitwise operators; dtc's expression grammar is the full C
// set.
func TestComparisonLogicalTernaryOperators(t *testing.T) {
	tests := []struct {
		src  string
		want uint32
	}{
		{"(2 > 1 ? 10 : 20)", 10},
		{"(2 < 1 ? 10 : 20)", 20},
		{"(1 < 2)", 1},
		{"(2 <= 1)", 0},
		{"(2 >= 2)", 1},
		{"(3 == 3)", 1},
		{"(3 != 3)", 0},
		{"(1 && 2)", 1},
		{"(1 && 0)", 0},
		{"(0 || 3)", 1},
		{"(0 || 0)", 0},
		{"(!0)", 1},
		{"(!5)", 0},
		{"(!!7)", 1},
		// precedence: shift binds tighter than comparison, comparison
		// tighter than equality, equality tighter than bitwise.
		{"(1 << 2 > 3)", 1},
		{"(1 | 2 == 3)", 1},
		{"(1 + 1 == 2 ? 0xaa : 0xbb)", 0xaa},
		// right-associative nested ternary
		{"(0 ? 1 : 0 ? 2 : 3)", 3},
		{"(1 ? 1 : 0 ? 2 : 3)", 1},
		// unsigned comparison, as in dtc: (-1) is 0xffff... > 0
		{"(0 - 1 > 0)", 1},
		{"(-1 > 0)", 1},
	}
	for _, tt := range tests {
		if got := parseCellProp(t, tt.src); len(got) != 1 || got[0] != tt.want {
			t.Errorf("<%s> = %v, want [%d]", tt.src, got, tt.want)
		}
	}
}

// TestCharLiterals: dtc accepts C character literals in expressions;
// the seed lexer rejected them outright.
func TestCharLiterals(t *testing.T) {
	tests := []struct {
		src  string
		want uint32
	}{
		{"'A'", 65},
		{"'\\n'", 10},
		{"'\\x41'", 65},
		{"'\\0'", 0},
		{"('a' + 1)", 98},
		{"('z' > 'a' ? 1 : 0)", 1},
	}
	for _, tt := range tests {
		if got := parseCellProp(t, tt.src); len(got) != 1 || got[0] != tt.want {
			t.Errorf("<%s> = %v, want [%d]", tt.src, got, tt.want)
		}
	}
	for _, src := range []string{"''", "'ab'", "'"} {
		_, err := Parse("chr.dts", "/dts-v1/;\n/ { p = <"+src+">; };\n")
		if err == nil {
			t.Errorf("<%s>: expected character literal error", src)
		}
	}
}

// TestLiteralOverflow: literals beyond 64 bits were silently wrapped by
// the seed lexer; they must now be a ParseError.
func TestLiteralOverflow(t *testing.T) {
	ok := []string{"0xffffffffffffffff", "18446744073709551615", "01777777777777777777777"}
	for _, src := range ok {
		if _, err := Parse("ovf.dts", "/dts-v1/;\n/ { p = <("+src+")>; };\n"); err != nil {
			t.Errorf("<%s> should parse (fits in 64 bits): %v", src, err)
		}
	}
	bad := []string{"0x10000000000000000", "18446744073709551616", "02000000000000000000000"}
	for _, src := range bad {
		_, err := Parse("ovf.dts", "/dts-v1/;\n/ { p = <("+src+")>; };\n")
		if err == nil {
			t.Errorf("<%s>: expected overflow error, got nil", src)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("<%s>: error %T is not *ParseError", src, err)
		}
		if !strings.Contains(err.Error(), "overflow") {
			t.Errorf("<%s>: error %q does not mention overflow", src, err)
		}
	}
}

// TestByteArraysImmuneToBaseRules: hex runs inside [ ] are raw bytes;
// octal/overflow diagnostics must not apply ("[00 99]" is two bytes).
func TestByteArraysImmuneToBaseRules(t *testing.T) {
	tree, err := Parse("bytes.dts", "/dts-v1/;\n/ { b = [00 99 08 deadbeefdeadbeefdead]; };\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got := tree.Root.Property("b").Value.Bytes()
	want := []byte{0x00, 0x99, 0x08, 0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef, 0xde, 0xad}
	if len(got) != len(want) {
		t.Fatalf("bytes = % x, want % x", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("bytes = % x, want % x", got, want)
		}
	}
}

// TestGuardErrorsAreParseErrors: resource-limit failures must carry
// position info and classify as *ParseError while still matching their
// sentinel with errors.Is.
func TestGuardErrorsAreParseErrors(t *testing.T) {
	_, err := Parse("deep.dts", nestedSource(200))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Errorf("depth guard: %T is not *ParseError: %v", err, err)
	}
	if !errors.Is(err, ErrTooDeep) {
		t.Errorf("depth guard lost ErrTooDeep sentinel: %v", err)
	}
	_, err = Parse("big.dts", "/dts-v1/;\n/ { };\n", WithMaxSourceBytes(4))
	if !errors.As(err, &pe) {
		t.Errorf("size guard: %T is not *ParseError: %v", err, err)
	}
	if !errors.Is(err, ErrSourceTooLarge) {
		t.Errorf("size guard lost ErrSourceTooLarge sentinel: %v", err)
	}
}

// TestPathReferenceRoundTrip: &{/path} references must survive
// Print→Parse (the seed printer emitted a bare &/path, which does not
// lex).
func TestPathReferenceRoundTrip(t *testing.T) {
	src := "/dts-v1/;\n/ { u: uart@1000 { }; chosen { con = &{/uart@1000}; cells = <&{/uart@1000} 0x1>; }; };\n"
	tree, err := Parse("ref.dts", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	printed := tree.Print()
	tree2, err := Parse("ref2.dts", printed)
	if err != nil {
		t.Fatalf("reparse printed output: %v\n%s", err, printed)
	}
	chosen := tree2.Lookup("/chosen")
	if got := chosen.Property("con").Value.Chunks[0].Ref; got != "/uart@1000" {
		t.Errorf("path ref = %q, want /uart@1000", got)
	}
	if got := chosen.Property("cells").Value.Cells()[0].Ref; got != "/uart@1000" {
		t.Errorf("cell path ref = %q, want /uart@1000", got)
	}
}

// TestEscapedStringPrintRoundTrip: strings with every escape class must
// print to parseable DTS that reads back byte-identically.
func TestEscapedStringPrintRoundTrip(t *testing.T) {
	want := "A\x00B\xff\n\t\r\a\b\f\v\"\\\x01f" // \x01 followed by a hex char
	tree := NewTree()
	tree.Root.SetProperty(&Property{Name: "s", Value: StringValueOf(want)})
	printed := tree.Print()
	tree2, err := Parse("rt.dts", printed)
	if err != nil {
		t.Fatalf("reparse printed output: %v\n%s", err, printed)
	}
	if got, _ := tree2.Root.StringValue("s"); got != want {
		t.Errorf("round trip %q -> %q", want, got)
	}
}
