package preproc

import (
	"errors"
	"strings"
	"testing"

	"llhsc/internal/dts"
)

func mustSource(t *testing.T, file, src string, opts Options) *Result {
	t.Helper()
	res, err := Source(file, src, opts)
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	return res
}

func TestObjectMacroExpansion(t *testing.T) {
	src := "#define SPEED 115200\n/ { current-speed = <SPEED>; };\n"
	res := mustSource(t, "a.dts", src, Options{})
	if !strings.Contains(res.Text, "<115200>") {
		t.Errorf("output:\n%s", res.Text)
	}
	if strings.Contains(res.Text, "define") {
		t.Error("directive leaked into output")
	}
}

func TestFunctionMacroExpansion(t *testing.T) {
	src := "#define PIN(bank, n) ((bank) * 32 + (n))\n/ { gpios = <PIN(2, 7)>; };\n"
	res := mustSource(t, "a.dts", src, Options{})
	if !strings.Contains(res.Text, "<((2) * 32 + (7))>") {
		t.Errorf("output:\n%s", res.Text)
	}
}

func TestNestedMacros(t *testing.T) {
	src := strings.Join([]string{
		"#define BASE 0x1000",
		"#define OFF(x) (BASE + (x))",
		"/ { reg = <OFF(4) 0x100>; };",
	}, "\n")
	res := mustSource(t, "a.dts", src, Options{})
	if !strings.Contains(res.Text, "<(0x1000 + (4)) 0x100>") {
		t.Errorf("output:\n%s", res.Text)
	}
}

func TestSelfReferentialMacroTerminates(t *testing.T) {
	src := "#define A A\n#define B C B\n/ { x = A; y = B; };\n"
	res := mustSource(t, "a.dts", src, Options{})
	if !strings.Contains(res.Text, "x = A") || !strings.Contains(res.Text, "y = C B") {
		t.Errorf("output:\n%s", res.Text)
	}
}

func TestUnknownHashLinesPassThrough(t *testing.T) {
	// The assembler-with-cpp property that makes DTS+cpp possible at
	// all: #address-cells is not a directive.
	src := "/ {\n\t#address-cells = <1>;\n\t#size-cells = <0>;\n};\n"
	res := mustSource(t, "a.dts", src, Options{})
	if !strings.Contains(res.Text, "#address-cells = <1>;") {
		t.Errorf("output:\n%s", res.Text)
	}
}

func TestPassthroughLinesStillExpand(t *testing.T) {
	src := "#define N 3\n/ { #size-cells = <N>; };\n"
	res := mustSource(t, "a.dts", src, Options{})
	if !strings.Contains(res.Text, "#size-cells = <3>;") {
		t.Errorf("output:\n%s", res.Text)
	}
}

func TestConditionals(t *testing.T) {
	src := strings.Join([]string{
		"#define WANT_UART",
		"#ifdef WANT_UART",
		"uart-present;",
		"#else",
		"uart-absent;",
		"#endif",
		"#ifndef WANT_UART",
		"inverted-wrong;",
		"#else",
		"inverted-right;",
		"#endif",
		"#ifdef UNDEFINED",
		"#ifdef ALSO_UNDEFINED",
		"nested-dead;",
		"#endif",
		"dead;",
		"#endif",
	}, "\n")
	res := mustSource(t, "a.dts", src, Options{})
	for _, want := range []string{"uart-present;", "inverted-right;"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("missing %q in:\n%s", want, res.Text)
		}
	}
	for _, bad := range []string{"uart-absent", "inverted-wrong", "nested-dead", "dead;"} {
		if strings.Contains(res.Text, bad) {
			t.Errorf("dead branch %q leaked into:\n%s", bad, res.Text)
		}
	}
}

func TestCommandLineDefines(t *testing.T) {
	src := "#ifdef EXTRA\nextra;\n#endif\n/ { v = <VAL>; };\n"
	res := mustSource(t, "a.dts", src, Options{Defines: map[string]string{"EXTRA": "", "VAL": "42"}})
	if !strings.Contains(res.Text, "extra;") || !strings.Contains(res.Text, "<42>") {
		t.Errorf("output:\n%s", res.Text)
	}
}

func TestUndef(t *testing.T) {
	src := "#define X 1\n#undef X\n#ifdef X\nstill;\n#endif\nv = X;\n"
	res := mustSource(t, "a.dts", src, Options{})
	if strings.Contains(res.Text, "still;") || !strings.Contains(res.Text, "v = X;") {
		t.Errorf("output:\n%s", res.Text)
	}
}

func TestIncludeSearchPaths(t *testing.T) {
	fs := MapFS{
		"src/board.dts":             "#include \"local.dtsi\"\n#include <dt-bindings/gpio/gpio.h>\nboard;\n",
		"src/local.dtsi":            "local;\n",
		"inc/dt-bindings/gpio/gpio.h": "#define GPIO_ACTIVE_HIGH 0\n",
	}
	res, err := File("src/board.dts", Options{FS: fs, IncludePaths: []string{"inc"}})
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	if !strings.Contains(res.Text, "local;") || !strings.Contains(res.Text, "board;") {
		t.Errorf("output:\n%s", res.Text)
	}
	// The bindings header defined a macro usable afterwards.
	if strings.Contains(res.Text, "GPIO_ACTIVE_HIGH") {
		t.Error("macro-only header should contribute no text")
	}
}

func TestIncludeNotFound(t *testing.T) {
	_, err := Source("a.dts", "#include <missing.h>\n", Options{FS: MapFS{}})
	var pe *dts.ParseError
	if !errors.As(err, &pe) || pe.File != "a.dts" || pe.Line != 1 {
		t.Fatalf("err = %v, want ParseError at a.dts:1", err)
	}
}

func TestIncludeCycle(t *testing.T) {
	fs := MapFS{
		"a.h": "#include \"b.h\"\n",
		"b.h": "#include \"a.h\"\n",
	}
	_, err := Source("top.dts", "#include \"a.h\"\n", Options{FS: fs})
	if err == nil {
		t.Fatal("expected cycle error")
	}
	if !errors.Is(err, dts.ErrTooDeep) {
		t.Errorf("cycle should wrap ErrTooDeep, got %v", err)
	}
}

func TestIncludeDepthGuard(t *testing.T) {
	fs := MapFS{}
	// Distinct files nested beyond the depth limit (no cycle).
	fs["f0.h"] = "x;\n"
	for i := 1; i < 40; i++ {
		fs[name(i)] = "#include \"" + name(i-1) + "\"\n"
	}
	_, err := Source("top.dts", "#include \""+name(39)+"\"\n", Options{FS: fs, MaxDepth: 8})
	if !errors.Is(err, dts.ErrTooDeep) {
		t.Errorf("err = %v, want ErrTooDeep", err)
	}
}

func name(i int) string { return "f" + string(rune('0'+i/10)) + string(rune('0'+i%10)) + ".h" }

func TestMaxBytesGuard(t *testing.T) {
	fs := MapFS{"big.h": strings.Repeat("x;\n", 1000)}
	_, err := Source("a.dts", "#include \"big.h\"\n", Options{FS: fs, MaxBytes: 100})
	if !errors.Is(err, dts.ErrSourceTooLarge) {
		t.Errorf("err = %v, want ErrSourceTooLarge", err)
	}
}

func TestMacroExpansionBudget(t *testing.T) {
	// Exponential growth: each level doubles. The per-line budget must
	// stop it with a ParseError, not OOM.
	var b strings.Builder
	b.WriteString("#define A0 xx\n")
	for i := 1; i <= 30; i++ {
		prev := string(rune('0' + (i-1)/10)) // keep names simple: A0..A30 via two digits
		_ = prev
	}
	src := "#define A0 xx\n" +
		"#define A1 A0 A0\n#define A2 A1 A1\n#define A3 A2 A2\n#define A4 A3 A3\n" +
		"#define A5 A4 A4\n#define A6 A5 A5\n#define A7 A6 A6\n#define A8 A7 A7\n" +
		"#define A9 A8 A8\n#define B1 A9 A9\n#define B2 B1 B1\n#define B3 B2 B2\n" +
		"#define B4 B3 B3\n#define B5 B4 B4\n#define B6 B5 B5\n#define B7 B6 B6\n" +
		"v = B7;\n"
	_, err := Source("a.dts", src, Options{MaxExpand: 1 << 16})
	var pe *dts.ParseError
	if !errors.As(err, &pe) || !errors.Is(err, dts.ErrSourceTooLarge) {
		t.Errorf("err = %v, want ParseError wrapping ErrSourceTooLarge", err)
	}
}

func TestUnterminatedIfdef(t *testing.T) {
	_, err := Source("a.dts", "#ifdef X\nnever closed\n", Options{})
	var pe *dts.ParseError
	if !errors.As(err, &pe) || pe.Line != 1 {
		t.Fatalf("err = %v, want ParseError at line 1 (the #ifdef)", err)
	}
	if !strings.Contains(pe.Msg, "unterminated") {
		t.Errorf("msg = %q", pe.Msg)
	}
}

func TestDirectiveErrors(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{"#endif\n", "#endif without"},
		{"#else\n", "#else without"},
		{"#ifdef A\n#else\n#else\n#endif\n", "#else after #else"},
		{"#if 1\n#endif\n", "not supported"},
		{"#error custom message\n", "custom message"},
		{"#include bare\n", "expects"},
		{"#define 9bad 1\n", "macro name"},
	} {
		_, err := Source("a.dts", tc.src, Options{})
		var pe *dts.ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%q: err = %v, want ParseError", tc.src, err)
			continue
		}
		if !strings.Contains(pe.Msg, tc.want) {
			t.Errorf("%q: msg = %q, want substring %q", tc.src, pe.Msg, tc.want)
		}
	}
}

func TestCommentsAndStringsUntouched(t *testing.T) {
	src := strings.Join([]string{
		"#define X 1",
		"/* X in a block comment",
		"still X here */",
		"// X in a line comment",
		"s = \"X marks the spot\";",
		"v = X;",
	}, "\n")
	res := mustSource(t, "a.dts", src, Options{})
	if !strings.Contains(res.Text, "X in a block comment") ||
		!strings.Contains(res.Text, "still X here") ||
		!strings.Contains(res.Text, "// X in a line comment") ||
		!strings.Contains(res.Text, `"X marks the spot"`) {
		t.Errorf("comments or strings were expanded:\n%s", res.Text)
	}
	if !strings.Contains(res.Text, "v = 1;") {
		t.Errorf("code outside comments must expand:\n%s", res.Text)
	}
}

func TestDirectiveInsideBlockCommentIgnored(t *testing.T) {
	src := "/*\n#define X 1\n*/\nv = X;\n"
	res := mustSource(t, "a.dts", src, Options{})
	if !strings.Contains(res.Text, "v = X;") {
		t.Errorf("commented-out #define took effect:\n%s", res.Text)
	}
}

func TestBackslashContinuationInDefine(t *testing.T) {
	src := "#define LONG \\\n\t1 + \\\n\t2\nv = <LONG>;\n"
	res := mustSource(t, "a.dts", src, Options{})
	if !strings.Contains(res.Text, "1 + 2") {
		t.Errorf("output:\n%s", res.Text)
	}
}

func TestTokenPasting(t *testing.T) {
	src := "#define GLUE(a, b) a ## b\nv = GLUE(0x, ff);\n"
	res := mustSource(t, "a.dts", src, Options{})
	if !strings.Contains(res.Text, "v = 0xff;") {
		t.Errorf("output:\n%s", res.Text)
	}
}

func TestOriginTracking(t *testing.T) {
	fs := MapFS{"inc.dtsi": "from-include;\nalso-include;\n"}
	src := "#define X 1\ntop-one;\n#include \"inc.dtsi\"\ntop-two;\n"
	res := mustSource(t, "top.dts", src, Options{FS: fs})
	wantLines := []string{"top-one;", "from-include;", "also-include;", "top-two;"}
	got := strings.Split(strings.TrimRight(res.Text, "\n"), "\n")
	if len(got) != len(wantLines) {
		t.Fatalf("output lines = %q", got)
	}
	type loc struct {
		file string
		line int
	}
	wantOrigins := []loc{{"top.dts", 2}, {"inc.dtsi", 1}, {"inc.dtsi", 2}, {"top.dts", 4}}
	for i, w := range wantOrigins {
		f, l := res.Origin(i + 1)
		if f != w.file || l != w.line {
			t.Errorf("line %d origin = %s:%d, want %s:%d", i+1, f, l, w.file, w.line)
		}
	}
	if f, l := res.Origin(0); f != "" || l != 0 {
		t.Error("out-of-range origin should be empty")
	}
}

func TestParseRemapsErrorPosition(t *testing.T) {
	// The syntax error is on line 4 of the original file; the combined
	// text has different numbering because the #define line vanishes.
	fs := MapFS{"ok.dtsi": "/ { fine; };\n"}
	src := "#define X 1\n/dts-v1/;\n#include \"ok.dtsi\"\n/ { broken = ; };\n"
	_, err := Parse("top.dts", src, Options{FS: fs})
	var pe *dts.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if pe.File != "top.dts" || pe.Line != 4 {
		t.Errorf("error at %s:%d, want top.dts:4", pe.File, pe.Line)
	}
}

func TestParseRemapsTreeOrigins(t *testing.T) {
	fs := MapFS{"soc.dtsi": "/ {\n\tsoc {\n\t\tnested;\n\t};\n};\n"}
	src := "/dts-v1/;\n#include \"soc.dtsi\"\n/ {\n\ttop-prop;\n};\n"
	tree, err := Parse("top.dts", src, Options{FS: fs})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	soc := tree.Lookup("/soc")
	if soc.Origin.File != "soc.dtsi" || soc.Origin.Line != 2 {
		t.Errorf("soc origin = %v, want soc.dtsi:2", soc.Origin)
	}
	top := tree.Root.Property("top-prop")
	if top.Origin.File != "top.dts" || top.Origin.Line != 4 {
		t.Errorf("top-prop origin = %v, want top.dts:4", top.Origin)
	}
}

func TestKernelStyleEndToEnd(t *testing.T) {
	fs := MapFS{
		"dt-bindings/interrupt-controller/irq.h": strings.Join([]string{
			"#ifndef _DT_BINDINGS_INTERRUPT_CONTROLLER_IRQ_H",
			"#define _DT_BINDINGS_INTERRUPT_CONTROLLER_IRQ_H",
			"#define IRQ_TYPE_EDGE_RISING 1",
			"#define IRQ_TYPE_LEVEL_HIGH 4",
			"#endif",
		}, "\n"),
	}
	src := strings.Join([]string{
		"/dts-v1/;",
		"#include <dt-bindings/interrupt-controller/irq.h>",
		"#include <dt-bindings/interrupt-controller/irq.h>", // guard makes this a no-op
		"/ {",
		"\tdev {",
		"\t\tinterrupts = <5 IRQ_TYPE_LEVEL_HIGH>;",
		"\t};",
		"};",
	}, "\n")
	tree, err := Parse("board.dts", src, Options{FS: fs, IncludePaths: []string{"."}})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cells := tree.Lookup("/dev").Property("interrupts").Value.U32s()
	if len(cells) != 2 || cells[0] != 5 || cells[1] != 4 {
		t.Errorf("interrupts = %v, want [5 4]", cells)
	}
}
