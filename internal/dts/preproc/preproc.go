// Package preproc implements the subset of the C preprocessor that
// kernel DeviceTree sources rely on. The kernel build pipes every .dts
// through `cpp -x assembler-with-cpp` before dtc sees it, so real-world
// inputs are full of `#include <dt-bindings/...>`, constant macros like
// GPIO_ACTIVE_HIGH, function-like helpers, and `#ifdef` blocks — none
// of which dtc (or internal/dts) understands on its own.
//
// The assembler-with-cpp mode matters: a DTS line like
// `#address-cells = <1>;` starts with '#' but is not a preprocessor
// directive, and cpp in this mode passes unknown directives through
// verbatim instead of rejecting them. This package does the same,
// which is the only reason DTS and cpp can coexist in one file.
//
// Every output line carries its origin (original file and line), so
// parse errors and blame positions from the combined text can be
// remapped onto the files the user actually wrote (DESIGN.md §16).
// All failures are *dts.ParseError values; resource guards wrap the
// parser's existing sentinels (dts.ErrTooDeep for include/expansion
// nesting, dts.ErrSourceTooLarge for size budgets), so server-side
// callers classify preprocessor blowups exactly like parser blowups.
package preproc

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"llhsc/internal/dts"
)

// FS abstracts file access for #include resolution, so the server can
// preprocess from an in-memory request and tests need no tempdirs.
type FS interface {
	ReadFile(name string) ([]byte, error)
}

type osFS struct{}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// MapFS serves includes from an in-memory map keyed by path.
type MapFS map[string]string

// ReadFile implements FS.
func (m MapFS) ReadFile(name string) ([]byte, error) {
	src, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("file %q not found", name)
	}
	return []byte(src), nil
}

// Defaults for the resource guards (overridable via Options).
const (
	defaultMaxDepth    = 32
	defaultMaxExpand   = 1 << 20 // bytes a single line may expand to
	defaultMaxExpDepth = 200     // nested macro expansions
)

// Options configures a preprocessor run.
type Options struct {
	// IncludePaths are the -I search directories: the only candidates
	// for <...> includes, and the fallback for "..." includes after the
	// including file's own directory.
	IncludePaths []string
	// Defines are -D command-line macros (object-like; value may be "").
	Defines map[string]string
	// FS resolves include files; nil means the operating system.
	FS FS
	// MaxDepth bounds include nesting (0 = default 32). Exceeding it
	// fails with an error wrapping dts.ErrTooDeep.
	MaxDepth int
	// MaxBytes bounds the cumulative size of all processed source,
	// matching the parser's WithMaxSourceBytes (0 = unlimited).
	// Exceeding it fails with an error wrapping dts.ErrSourceTooLarge.
	MaxBytes int
	// MaxExpand bounds the size a single line may reach through macro
	// expansion (0 = default 1MiB), guarding against exponential
	// macro growth. Exceeding it wraps dts.ErrSourceTooLarge.
	MaxExpand int
}

type origin struct {
	file string
	line int
}

// Result is preprocessed source plus the line-origin map.
type Result struct {
	// Text is the preprocessed source, ready for dts.Parse.
	Text    string
	origins []origin
}

// Origin maps a 1-based line number of Text to the original file and
// line it came from; ("", 0) if out of range.
func (r *Result) Origin(line int) (string, int) {
	if line < 1 || line > len(r.origins) {
		return "", 0
	}
	o := r.origins[line-1]
	return o.file, o.line
}

type macro struct {
	name     string
	funcLike bool
	params   []string
	body     string
}

type state struct {
	opts       Options
	fs         FS
	macros     map[string]*macro
	lines      []string
	origins    []origin
	totalBytes int
	including  []string // active include chain, for cycle detection
}

func errAt(file string, line int, sentinel error, format string, args ...interface{}) error {
	return &dts.ParseError{File: file, Line: line, Err: sentinel,
		Msg: fmt.Sprintf(format, args...)}
}

// Source preprocesses src (named file in diagnostics and origins).
func Source(file, src string, opts Options) (*Result, error) {
	s := &state{opts: opts, fs: opts.FS, macros: make(map[string]*macro)}
	if s.fs == nil {
		s.fs = osFS{}
	}
	if s.opts.MaxDepth <= 0 {
		s.opts.MaxDepth = defaultMaxDepth
	}
	if s.opts.MaxExpand <= 0 {
		s.opts.MaxExpand = defaultMaxExpand
	}
	for name, body := range opts.Defines {
		if !isIdent(name) {
			return nil, errAt(file, 0, nil, "invalid -D macro name %q", name)
		}
		s.macros[name] = &macro{name: name, body: body}
	}
	if err := s.processFile(file, src, 0); err != nil {
		return nil, err
	}
	text := strings.Join(s.lines, "\n")
	if len(s.lines) > 0 {
		text += "\n"
	}
	return &Result{Text: text, origins: s.origins}, nil
}

// File reads and preprocesses a file; quoted includes resolve relative
// to its directory first.
func File(path string, opts Options) (*Result, error) {
	fs := opts.FS
	if fs == nil {
		fs = osFS{}
	}
	src, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Source(path, string(src), opts)
}

// condFrame is one open #ifdef/#ifndef.
type condFrame struct {
	active   bool // branch currently emitting (parent active too)
	taken    bool // some branch of this conditional was taken
	seenElse bool
	line     int // of the opening directive, for unterminated-ifdef errors
}

func (s *state) processFile(file, src string, depth int) error {
	if depth > s.opts.MaxDepth {
		return errAt(file, 1, dts.ErrTooDeep,
			"includes nested deeper than %d (cycle?): %v", s.opts.MaxDepth, dts.ErrTooDeep)
	}
	s.totalBytes += len(src)
	if s.opts.MaxBytes > 0 && s.totalBytes > s.opts.MaxBytes {
		return errAt(file, 1, dts.ErrSourceTooLarge,
			"%d bytes of source (limit %d): %v", s.totalBytes, s.opts.MaxBytes, dts.ErrSourceTooLarge)
	}
	s.including = append(s.including, file)
	defer func() { s.including = s.including[:len(s.including)-1] }()

	lines := strings.Split(src, "\n")
	// A trailing newline is a line terminator, not an extra empty line:
	// dropping the final empty element keeps included files from
	// injecting blank lines into the output.
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	var conds []condFrame
	inComment := false
	active := func() bool {
		for _, c := range conds {
			if !c.active {
				return false
			}
		}
		return true
	}

	for i := 0; i < len(lines); i++ {
		lineno := i + 1
		line := lines[i]

		if !inComment {
			if name, rest, ok := directiveOf(line); ok {
				// Backslash continuations: join the logical line.
				for strings.HasSuffix(rest, "\\") && i+1 < len(lines) {
					i++
					rest = strings.TrimRight(strings.TrimSuffix(rest, "\\"), " \t") +
						" " + strings.TrimSpace(lines[i])
				}
				handled, err := s.directive(file, lineno, name, rest, &conds, active(), depth)
				if err != nil {
					return err
				}
				if handled {
					continue
				}
				// Not a recognized directive: assembler-with-cpp
				// passthrough (e.g. `#address-cells = <1>;`), expanded
				// and emitted like any other line below. Continuations
				// were not joined for these (directiveOf only matches
				// known names), so `line` is intact.
			}
		}

		if !active() {
			// Still must track block comments inside skipped regions, or
			// a `*/` in dead code would desynchronize the scanner.
			_, inComment = stripComments(line, inComment)
			continue
		}

		expanded, nowInComment, err := s.expandLine(file, lineno, line, inComment)
		if err != nil {
			return err
		}
		inComment = nowInComment
		s.emit(expanded, file, lineno)
	}

	if len(conds) > 0 {
		return errAt(file, conds[len(conds)-1].line, nil,
			"unterminated #ifdef/#ifndef (opened here)")
	}
	return nil
}

func (s *state) emit(text, file string, line int) {
	s.lines = append(s.lines, text)
	s.origins = append(s.origins, origin{file, line})
}

// directiveOf recognizes a preprocessor directive line: optional
// whitespace, '#', optional whitespace, then a known directive name.
// It returns the name and the remainder of the line. Lines starting
// with '#' but not naming a known directive (DTS properties like
// #address-cells) are not directives.
func directiveOf(line string) (name, rest string, ok bool) {
	t := strings.TrimLeft(line, " \t")
	if !strings.HasPrefix(t, "#") {
		return "", "", false
	}
	t = strings.TrimLeft(t[1:], " \t")
	j := 0
	for j < len(t) && (t[j] >= 'a' && t[j] <= 'z') {
		j++
	}
	name = t[:j]
	switch name {
	case "include", "define", "undef", "ifdef", "ifndef", "else", "endif",
		"if", "elif", "error", "warning", "pragma", "line":
		return name, strings.TrimSpace(t[j:]), true
	}
	return "", "", false
}

// directive executes one recognized directive. It returns handled=false
// never — recognition already happened — but keeps the signature
// uniform with future passthrough cases.
func (s *state) directive(file string, line int, name, rest string, conds *[]condFrame, active bool, depth int) (bool, error) {
	switch name {
	case "ifdef", "ifndef":
		if !isIdent(rest) {
			return true, errAt(file, line, nil, "#%s needs a macro name, got %q", name, rest)
		}
		_, defined := s.macros[rest]
		branch := defined == (name == "ifdef")
		*conds = append(*conds, condFrame{active: active && branch, taken: branch, line: line})
		return true, nil

	case "else":
		if len(*conds) == 0 {
			return true, errAt(file, line, nil, "#else without #ifdef")
		}
		c := &(*conds)[len(*conds)-1]
		if c.seenElse {
			return true, errAt(file, line, nil, "#else after #else")
		}
		c.seenElse = true
		c.active = !c.taken && parentActive(*conds)
		c.taken = true
		return true, nil

	case "endif":
		if len(*conds) == 0 {
			return true, errAt(file, line, nil, "#endif without #ifdef")
		}
		*conds = (*conds)[:len(*conds)-1]
		return true, nil
	}

	if !active {
		return true, nil
	}

	switch name {
	case "include":
		return true, s.include(file, line, rest, depth)
	case "define":
		return true, s.define(file, line, rest)
	case "undef":
		if !isIdent(rest) {
			return true, errAt(file, line, nil, "#undef needs a macro name, got %q", rest)
		}
		delete(s.macros, rest)
		return true, nil
	case "error":
		return true, errAt(file, line, nil, "#error %s", rest)
	case "warning", "pragma", "line":
		// Accepted and dropped: none of these affect the token stream we
		// care about, and kernel DTS does not depend on them.
		return true, nil
	case "if", "elif":
		return true, errAt(file, line, nil,
			"#%s is not supported (only #ifdef/#ifndef conditionals); guard with defined-ness instead", name)
	}
	return true, errAt(file, line, nil, "unhandled directive #%s", name)
}

// parentActive reports whether every frame but the last is active.
func parentActive(conds []condFrame) bool {
	for _, c := range conds[:len(conds)-1] {
		if !c.active {
			return false
		}
	}
	return true
}

func (s *state) include(file string, line int, rest string, depth int) error {
	var name string
	var angled bool
	switch {
	case len(rest) >= 2 && rest[0] == '"':
		end := strings.IndexByte(rest[1:], '"')
		if end < 0 {
			return errAt(file, line, nil, "unterminated #include filename")
		}
		name = rest[1 : 1+end]
	case len(rest) >= 2 && rest[0] == '<':
		end := strings.IndexByte(rest, '>')
		if end < 0 {
			return errAt(file, line, nil, "unterminated #include filename")
		}
		name = rest[1:end]
		angled = true
	default:
		return errAt(file, line, nil, `#include expects "file" or <file>, got %q`, rest)
	}
	if name == "" {
		return errAt(file, line, nil, "#include with empty filename")
	}

	var candidates []string
	if !angled {
		candidates = append(candidates, filepath.Join(filepath.Dir(file), name))
	}
	for _, dir := range s.opts.IncludePaths {
		candidates = append(candidates, filepath.Join(dir, name))
	}
	for _, cand := range candidates {
		src, err := s.fs.ReadFile(cand)
		if err != nil {
			continue
		}
		for _, open := range s.including {
			if open == cand {
				return errAt(file, line, dts.ErrTooDeep,
					"include cycle: %s already being processed: %v", cand, dts.ErrTooDeep)
			}
		}
		return s.processFile(cand, string(src), depth+1)
	}
	return errAt(file, line, nil, "#include %q not found in include paths", name)
}

func (s *state) define(file string, line int, rest string) error {
	j := identLen(rest)
	if j == 0 {
		return errAt(file, line, nil, "#define needs a macro name, got %q", rest)
	}
	m := &macro{name: rest[:j]}
	rest = rest[j:]
	if strings.HasPrefix(rest, "(") {
		// Function-like only when '(' immediately follows the name.
		m.funcLike = true
		end := strings.IndexByte(rest, ')')
		if end < 0 {
			return errAt(file, line, nil, "#define %s: unterminated parameter list", m.name)
		}
		for _, p := range strings.Split(rest[1:end], ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				if end == 1 { // empty list: NAME()
					break
				}
				return errAt(file, line, nil, "#define %s: empty parameter name", m.name)
			}
			if !isIdent(p) {
				return errAt(file, line, nil, "#define %s: invalid parameter %q", m.name, p)
			}
			m.params = append(m.params, p)
		}
		rest = rest[end+1:]
	}
	m.body = strings.TrimSpace(rest)
	s.macros[m.name] = m
	return nil
}

func isIdent(s string) bool { return s != "" && identLen(s) == len(s) }

func identLen(s string) int {
	i := 0
	for i < len(s) {
		c := s[i]
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if i == 0 && !alpha {
			return 0
		}
		if !alpha && !(c >= '0' && c <= '9') {
			break
		}
		i++
	}
	return i
}

// stripComments walks a line only to track comment state: it returns
// the line with comment interiors blanked and the block-comment state
// at the end of the line.
func stripComments(line string, inComment bool) (string, bool) {
	var b strings.Builder
	i := 0
	for i < len(line) {
		if inComment {
			if j := strings.Index(line[i:], "*/"); j >= 0 {
				i += j + 2
				inComment = false
				continue
			}
			break
		}
		if strings.HasPrefix(line[i:], "/*") {
			inComment = true
			i += 2
			continue
		}
		if strings.HasPrefix(line[i:], "//") {
			break
		}
		b.WriteByte(line[i])
		i++
	}
	return b.String(), inComment
}

// expandLine macro-expands one source line, respecting string literals
// and comments. inComment is the block-comment state carried in from
// the previous line; the updated state is returned.
func (s *state) expandLine(file string, line int, text string, inComment bool) (string, bool, error) {
	var b strings.Builder
	budget := s.opts.MaxExpand
	i := 0
	for i < len(text) {
		if inComment {
			if j := strings.Index(text[i:], "*/"); j >= 0 {
				b.WriteString(text[i : i+j+2])
				i += j + 2
				inComment = false
				continue
			}
			b.WriteString(text[i:])
			i = len(text)
			break
		}
		c := text[i]
		switch {
		case strings.HasPrefix(text[i:], "/*"):
			inComment = true
			b.WriteString("/*")
			i += 2
		case strings.HasPrefix(text[i:], "//"):
			b.WriteString(text[i:])
			i = len(text)
		case c == '"':
			j := i + 1
			for j < len(text) && text[j] != '"' {
				if text[j] == '\\' && j+1 < len(text) {
					j++
				}
				j++
			}
			if j < len(text) {
				j++ // closing quote
			}
			b.WriteString(text[i:j])
			i = j
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			j := i + identLen(text[i:])
			word := text[i:j]
			rest, out, err := s.expandIdent(file, line, word, text[j:], nil, 0, &budget)
			if err != nil {
				return "", inComment, err
			}
			b.WriteString(out)
			text = rest
			i = 0
		default:
			b.WriteByte(c)
			i++
		}
	}
	return b.String(), inComment, nil
}

// expandIdent expands one identifier occurrence. rest is the text
// following the identifier (consulted for function-like argument
// lists); it returns the unconsumed remainder and the expansion.
// hide carries the macros currently being expanded (cpp's blue paint),
// which is what terminates self-referential macros.
func (s *state) expandIdent(file string, line int, word, rest string, hide []string, depth int, budget *int) (string, string, error) {
	m, ok := s.macros[word]
	if !ok || hidden(hide, word) {
		return rest, word, nil
	}
	if depth > defaultMaxExpDepth {
		return "", "", errAt(file, line, dts.ErrTooDeep,
			"macro expansion nested deeper than %d: %v", defaultMaxExpDepth, dts.ErrTooDeep)
	}

	body := m.body
	if m.funcLike {
		args, after, ok, err := scanArgs(file, line, rest, word)
		if err != nil {
			return "", "", err
		}
		if !ok {
			// Function-like macro name without an argument list stays a
			// plain identifier, as in cpp.
			return rest, word, nil
		}
		if len(args) != len(m.params) && !(len(m.params) == 0 && len(args) == 1 && strings.TrimSpace(args[0]) == "") {
			return "", "", errAt(file, line, nil,
				"macro %s expects %d arguments, got %d", word, len(m.params), len(args))
		}
		body = substituteParams(body, m.params, args)
		rest = after
	}

	*budget -= len(body)
	if *budget < 0 {
		return "", "", errAt(file, line, dts.ErrSourceTooLarge,
			"macro expansion of %s exceeds %d bytes: %v", word, s.opts.MaxExpand, dts.ErrSourceTooLarge)
	}

	// Rescan the substituted body with this macro hidden.
	hide = append(hide, word)
	var b strings.Builder
	i := 0
	for i < len(body) {
		c := body[i]
		switch {
		case c == '"':
			j := i + 1
			for j < len(body) && body[j] != '"' {
				if body[j] == '\\' && j+1 < len(body) {
					j++
				}
				j++
			}
			if j < len(body) {
				j++
			}
			b.WriteString(body[i:j])
			i = j
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			j := i + identLen(body[i:])
			inner := body[i:j]
			tail := body[j:]
			// The argument list of a nested invocation may continue in
			// rest (e.g. `#define A F` used as `A(1)`): when the body
			// ends right after the identifier, let it consume from rest.
			if tail == "" {
				newRest, out, err := s.expandIdent(file, line, inner, rest, hide, depth+1, budget)
				if err != nil {
					return "", "", err
				}
				b.WriteString(out)
				rest = newRest
				i = len(body)
				continue
			}
			newTail, out, err := s.expandIdent(file, line, inner, tail, hide, depth+1, budget)
			if err != nil {
				return "", "", err
			}
			b.WriteString(out)
			body = newTail
			i = 0
		default:
			b.WriteByte(c)
			i++
		}
	}
	return rest, b.String(), nil
}

func hidden(hide []string, name string) bool {
	for _, h := range hide {
		if h == name {
			return true
		}
	}
	return false
}

// scanArgs reads a parenthesized argument list from text (which follows
// a function-like macro name). ok=false when no list starts after
// optional whitespace. Arguments split on top-level commas; nested
// parentheses are respected. The list must close on the same line.
func scanArgs(file string, line int, text, macroName string) (args []string, rest string, ok bool, err error) {
	i := 0
	for i < len(text) && (text[i] == ' ' || text[i] == '\t') {
		i++
	}
	if i >= len(text) || text[i] != '(' {
		return nil, "", false, nil
	}
	depth := 0
	start := i + 1
	inStr := false
	for j := i; j < len(text); j++ {
		c := text[j]
		if inStr {
			if c == '\\' {
				j++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				args = append(args, strings.TrimSpace(text[start:j]))
				return args, text[j+1:], true, nil
			}
		case ',':
			if depth == 1 {
				args = append(args, strings.TrimSpace(text[start:j]))
				start = j + 1
			}
		}
	}
	return nil, "", false, errAt(file, line, nil,
		"unterminated argument list for macro %s (must close on the same line)", macroName)
}

// substituteParams replaces parameter identifiers in a macro body with
// the given argument texts and resolves ## token pasting by deleting
// the operator and surrounding whitespace.
func substituteParams(body string, params, args []string) string {
	byName := make(map[string]string, len(params))
	for i, p := range params {
		if i < len(args) {
			byName[p] = args[i]
		}
	}
	var b strings.Builder
	i := 0
	for i < len(body) {
		c := body[i]
		switch {
		case c == '"':
			j := i + 1
			for j < len(body) && body[j] != '"' {
				if body[j] == '\\' && j+1 < len(body) {
					j++
				}
				j++
			}
			if j < len(body) {
				j++
			}
			b.WriteString(body[i:j])
			i = j
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			j := i + identLen(body[i:])
			word := body[i:j]
			if arg, ok := byName[word]; ok {
				b.WriteString(arg)
			} else {
				b.WriteString(word)
			}
			i = j
		default:
			b.WriteByte(c)
			i++
		}
	}
	out := b.String()
	for {
		k := strings.Index(out, "##")
		if k < 0 {
			return out
		}
		left := strings.TrimRight(out[:k], " \t")
		right := strings.TrimLeft(out[k+2:], " \t")
		out = left + right
	}
}

// Parse preprocesses source text and parses the result, remapping
// every parse-error position and tree/fragment Origin back to the
// original files through the line-origin map. Parser options (include
// resolution for /include/, depth and size limits) pass through.
func Parse(file, src string, opts Options, popts ...dts.ParseOption) (*dts.Tree, error) {
	res, err := Source(file, src, opts)
	if err != nil {
		return nil, err
	}
	tree, err := dts.Parse(file, res.Text, popts...)
	if err != nil {
		var pe *dts.ParseError
		if errors.As(err, &pe) && pe.File == file {
			if of, ol := res.Origin(pe.Line); of != "" {
				pe.File, pe.Line = of, ol
			}
		}
		return nil, err
	}
	remapOrigins(tree, file, res)
	return tree, nil
}

// ParseFile preprocesses and parses a file from disk (or opts.FS),
// with quoted includes resolving against the file's directory.
func ParseFile(path string, opts Options, popts ...dts.ParseOption) (*dts.Tree, error) {
	fs := opts.FS
	if fs == nil {
		fs = osFS{}
	}
	src, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, string(src), opts, popts...)
}

// remapOrigins rewrites Origin positions that point into the combined
// preprocessed text back to the original files. Only origins naming
// the combined file are touched: /include/-resolved units keep their
// own file names from the parser.
func remapOrigins(t *dts.Tree, file string, res *Result) {
	fix := func(o *dts.Origin) {
		if o.File != file {
			return
		}
		if of, ol := res.Origin(o.Line); of != "" {
			o.File, o.Line = of, ol
		}
	}
	var walk func(n *dts.Node)
	walk = func(n *dts.Node) {
		fix(&n.Origin)
		for _, p := range n.Properties {
			fix(&p.Origin)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	for _, f := range t.Fragments {
		walk(f.Node)
	}
}
