package featmodel

import (
	"math/rand"
	"testing"
)

// multiModelGroundTruth decides a multi-VM configuration by definition:
// every VM's configuration must be a valid product of the base model,
// and each Exclusive feature may be selected by at most one VM.
func multiModelGroundTruth(m *Model, configs []Configuration) bool {
	a := NewAnalyzer(m)
	for _, cfg := range configs {
		if !a.IsValid(cfg) {
			return false
		}
	}
	for _, name := range m.Names() {
		if !m.Feature(name).Exclusive {
			continue
		}
		users := 0
		for _, cfg := range configs {
			if cfg[name] {
				users++
			}
		}
		if users > 1 {
			return false
		}
	}
	return true
}

// exclusiveModel builds a small model with exclusive leaves for the
// cross-validation test.
func exclusiveModel(t *testing.T) *Model {
	t.Helper()
	root := &Feature{Name: "r", Abstract: true, Group: GroupAnd, Children: []*Feature{
		{Name: "base", Mandatory: true, Group: GroupAnd},
		{Name: "units", Abstract: true, Mandatory: true, Group: GroupXor, Children: []*Feature{
			{Name: "u0", Exclusive: true, Group: GroupAnd},
			{Name: "u1", Exclusive: true, Group: GroupAnd},
			{Name: "u2", Exclusive: true, Group: GroupAnd},
		}},
		{Name: "opt", Group: GroupAnd},
	}}
	m, err := NewModel(root, MustParseExpr("opt -> u0 || u1"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPropertyMultiAnalyzerMatchesGroundTruth(t *testing.T) {
	m := exclusiveModel(t)
	mm, err := NewMultiModel(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	ma := mustMultiAnalyzer(t, mm)

	names := m.Names()
	products, complete := NewAnalyzer(m).EnumerateProducts(0)
	if !complete || len(products) == 0 {
		t.Fatal("product enumeration failed")
	}
	rng := rand.New(rand.NewSource(13))
	agreeValid, agreeInvalid := 0, 0
	for iter := 0; iter < 300; iter++ {
		configs := make([]Configuration, 2)
		for k := range configs {
			if rng.Intn(2) == 0 {
				// sample a valid product (pairs may still violate
				// cross-VM exclusivity)
				configs[k] = ConfigOf(products[rng.Intn(len(products))]...)
				continue
			}
			cfg := make(Configuration)
			for _, n := range names {
				if rng.Intn(2) == 0 {
					cfg[n] = true
				}
			}
			configs[k] = cfg
		}
		want := multiModelGroundTruth(m, configs)
		got := ma.CheckConfigs(configs) == nil
		if got != want {
			t.Fatalf("iter %d: analyzer=%v ground-truth=%v\nvm1=%v\nvm2=%v",
				iter, got, want, configs[0].Sorted(), configs[1].Sorted())
		}
		if want {
			agreeValid++
		} else {
			agreeInvalid++
		}
	}
	if agreeValid == 0 {
		t.Error("random sampling never produced a valid partitioning; test is vacuous")
	}
	if agreeInvalid == 0 {
		t.Error("random sampling never produced an invalid partitioning; test is vacuous")
	}
}

func TestMultiModelThreeVMsOverThreeUnits(t *testing.T) {
	m := exclusiveModel(t)
	mm, _ := NewMultiModel(m, 3)
	ma := mustMultiAnalyzer(t, mm)
	if ma.IsVoid() {
		t.Fatal("3 VMs over 3 exclusive units should be feasible")
	}
	mm4, _ := NewMultiModel(m, 4)
	if !mustMultiAnalyzer(t, mm4).IsVoid() {
		t.Error("4 VMs over 3 exclusive units should be void")
	}
}
