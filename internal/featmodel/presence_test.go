package featmodel

import (
	"math/rand"
	"testing"

	"llhsc/internal/logic"
	"llhsc/internal/sat"
)

// randomGuardExpr builds a random guard expression over the given
// feature names, occasionally negated or compounded, mirroring the
// shapes delta "when" clauses take.
func randomGuardExpr(rng *rand.Rand, names []string, depth int) *Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		e := Var(names[rng.Intn(len(names))])
		if rng.Intn(3) == 0 {
			return Not(e)
		}
		return e
	}
	a := randomGuardExpr(rng, names, depth-1)
	b := randomGuardExpr(rng, names, depth-1)
	switch rng.Intn(3) {
	case 0:
		return And(a, b)
	case 1:
		return Or(a, b)
	default:
		return Implies(a, b)
	}
}

// TestPresenceLiteralEquivalence is the property-based check behind
// lifted checking: for random small models and random guards, the
// presence literal is satisfiable together with the feature-model
// formula exactly when some enumerated valid configuration satisfies
// the guard, and pinning any configuration makes the literal agree with
// Expr.Eval on that configuration.
func TestPresenceLiteralEquivalence(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		m := randomSmallModel(seed)
		if len(m.Names()) > 14 {
			continue
		}
		products := bruteForceProducts(t, m)
		pe := NewPresenceEncoder(m)
		rng := rand.New(rand.NewSource(seed + 1000))
		names := m.Names()

		for trial := 0; trial < 8; trial++ {
			e := randomGuardExpr(rng, names, 2)
			lit := pe.Literal(e)
			if again := pe.Literal(e); again != lit {
				t.Fatalf("seed %d: Literal(%s) not cached: %v vs %v", seed, e, lit, again)
			}

			// Direction 1: enumerated valid configurations → lifted.
			// Pinning every feature to a valid product forces the
			// presence literal to Eval's verdict on that product.
			anyHolds := false
			for _, p := range products {
				cfg := ConfigOf(p...)
				want := e.Eval(cfg)
				if want {
					anyHolds = true
				}
				assumptions := append(pinAll(pe, m, cfg), lit)
				got := pe.Solve(assumptions...) == sat.Sat
				if got != want {
					t.Errorf("seed %d: guard %s on product %v: lifted=%v eval=%v",
						seed, e, p, got, want)
				}
			}

			// Direction 2: lifted → enumerated valid configurations.
			// A free solve over FM ∧ lit is Sat exactly when some valid
			// product satisfies the guard, and the decoded model must be
			// such a product.
			st := pe.Solve(lit)
			if got := st == sat.Sat; got != anyHolds {
				t.Errorf("seed %d: guard %s: SAT(FM ∧ guard)=%v but brute force says %v",
					seed, e, got, anyHolds)
				continue
			}
			if st == sat.Sat {
				cfg := pe.Config()
				if !e.Eval(cfg) {
					t.Errorf("seed %d: guard %s: decoded config %v does not satisfy the guard",
						seed, e, cfg.Sorted())
				}
				if !containsProduct(products, cfg.Sorted()) {
					t.Errorf("seed %d: guard %s: decoded config %v is not a valid product",
						seed, e, cfg.Sorted())
				}
			}
		}
	}
}

// pinAll returns assumptions fixing every feature to its value in cfg.
func pinAll(pe *PresenceEncoder, m *Model, cfg Configuration) []logic.Lit {
	var out []logic.Lit
	for _, name := range m.Names() {
		l := pe.FeatureLit(name)
		if !cfg[name] {
			l = -l
		}
		out = append(out, l)
	}
	return out
}

// containsProduct reports whether the lexicographically sorted
// selection appears among the brute-forced products (which list names
// in model DFS order).
func containsProduct(products [][]string, sorted []string) bool {
	for _, p := range products {
		if equalStrings(sortedCopy(p), sorted) {
			return true
		}
	}
	return false
}

// nonVoidSmallModel returns a deterministic random model that admits at
// least one product (some seeds produce void models).
func nonVoidSmallModel(t *testing.T) *Model {
	t.Helper()
	for seed := int64(0); seed < 50; seed++ {
		m := randomSmallModel(seed)
		if !NewAnalyzer(m).IsVoid() {
			return m
		}
	}
	t.Fatal("no non-void model among the first 50 seeds")
	return nil
}

func TestPresenceUnknownFeatureIsFalse(t *testing.T) {
	m := nonVoidSmallModel(t)
	pe := NewPresenceEncoder(m)
	if pe.Solve(pe.Literal(Var("no-such-feature"))) == sat.Sat {
		t.Errorf("guard over an unknown feature must be unsatisfiable")
	}
	if pe.Solve(pe.Literal(Not(Var("no-such-feature")))) != sat.Sat {
		t.Errorf("negated unknown feature must be satisfiable in a non-void model")
	}
}

func TestPresenceNilGuardIsTrue(t *testing.T) {
	m := nonVoidSmallModel(t)
	pe := NewPresenceEncoder(m)
	if pe.Solve(pe.Literal(nil)) != sat.Sat {
		t.Errorf("nil guard must be satisfiable exactly when the model is non-void")
	}
	if pe.Solve(-pe.Literal(nil)) == sat.Sat {
		t.Errorf("negated constant-true literal must be unsatisfiable")
	}
	if pe.Queries() != 2 {
		t.Errorf("Queries() = %d, want 2", pe.Queries())
	}
}
