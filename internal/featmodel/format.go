package featmodel

import (
	"fmt"
	"strings"
)

// This file defines a textual format for feature models, used by the
// command-line tools (cmd/llhsc, cmd/fmtool). The running example's
// Fig. 1a model reads:
//
//	feature CustomSBC abstract {
//	    feature memory mandatory
//	    xor cpus abstract mandatory {
//	        feature cpu@0 exclusive
//	        feature cpu@1 exclusive
//	    }
//	    or uarts abstract mandatory {
//	        feature uart0
//	        feature uart1
//	    }
//	    xor vEthernet abstract {
//	        feature veth0
//	        feature veth1
//	    }
//	}
//	constraint veth0 -> cpu@0
//	constraint veth1 -> cpu@1
//
// Node headers are "feature|or|xor <name> [abstract] [mandatory]
// [exclusive]", with "or"/"xor" setting the decomposition of the
// children block. Cross-tree constraints use the expression syntax of
// ParseExpr.

// ParseModel parses the textual feature-model format.
func ParseModel(file, src string) (*Model, error) {
	p := &modelParser{file: file}
	for lineNum, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.line(line, lineNum+1); err != nil {
			return nil, err
		}
	}
	if p.root == nil {
		return nil, fmt.Errorf("%s: no root feature defined", file)
	}
	if len(p.stack) != 0 {
		return nil, fmt.Errorf("%s: unclosed feature block %q", file, p.stack[len(p.stack)-1].Name)
	}
	return NewModel(p.root, p.constraints...)
}

type modelParser struct {
	file        string
	root        *Feature
	stack       []*Feature
	constraints []*Expr
}

func (p *modelParser) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", p.file, line, fmt.Sprintf(format, args...))
}

func (p *modelParser) line(line string, num int) error {
	if line == "}" {
		if len(p.stack) == 0 {
			return p.errf(num, "unmatched '}'")
		}
		p.stack = p.stack[:len(p.stack)-1]
		return nil
	}
	if strings.HasPrefix(line, "constraint ") {
		expr, err := ParseExpr(strings.TrimSpace(strings.TrimPrefix(line, "constraint ")))
		if err != nil {
			return p.errf(num, "invalid constraint: %v", err)
		}
		p.constraints = append(p.constraints, expr)
		return nil
	}

	opensBlock := strings.HasSuffix(line, "{")
	if opensBlock {
		line = strings.TrimSpace(strings.TrimSuffix(line, "{"))
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return p.errf(num, "expected 'feature|or|xor <name> [flags...]'")
	}

	f := &Feature{Group: GroupAnd}
	switch fields[0] {
	case "feature":
	case "or":
		f.Group = GroupOr
	case "xor":
		f.Group = GroupXor
	default:
		return p.errf(num, "unknown keyword %q", fields[0])
	}
	f.Name = fields[1]
	for _, flag := range fields[2:] {
		switch flag {
		case "abstract":
			f.Abstract = true
		case "mandatory":
			f.Mandatory = true
		case "exclusive":
			f.Exclusive = true
		default:
			return p.errf(num, "unknown flag %q", flag)
		}
	}

	if len(p.stack) == 0 {
		if p.root != nil {
			return p.errf(num, "multiple root features (%q and %q)", p.root.Name, f.Name)
		}
		p.root = f
	} else {
		parent := p.stack[len(p.stack)-1]
		parent.Children = append(parent.Children, f)
	}
	if opensBlock {
		p.stack = append(p.stack, f)
	}
	return nil
}

// Format renders the model in the textual format accepted by
// ParseModel.
func (m *Model) Format() string {
	var b strings.Builder
	var write func(f *Feature, depth int)
	write = func(f *Feature, depth int) {
		indent := strings.Repeat("    ", depth)
		kw := "feature"
		switch f.Group {
		case GroupOr:
			if len(f.Children) > 0 {
				kw = "or"
			}
		case GroupXor:
			if len(f.Children) > 0 {
				kw = "xor"
			}
		}
		b.WriteString(indent)
		b.WriteString(kw)
		b.WriteString(" ")
		b.WriteString(f.Name)
		if f.Abstract {
			b.WriteString(" abstract")
		}
		if f.Mandatory {
			b.WriteString(" mandatory")
		}
		if f.Exclusive {
			b.WriteString(" exclusive")
		}
		if len(f.Children) == 0 {
			b.WriteString("\n")
			return
		}
		b.WriteString(" {\n")
		for _, c := range f.Children {
			write(c, depth+1)
		}
		b.WriteString(indent)
		b.WriteString("}\n")
	}
	write(m.Root, 0)
	for _, c := range m.Constraints {
		fmt.Fprintf(&b, "constraint %s\n", c)
	}
	return b.String()
}
