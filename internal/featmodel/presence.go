package featmodel

import (
	"context"

	"llhsc/internal/logic"
	"llhsc/internal/sat"
)

// PresenceEncoder is the SAT substrate of family-based lifted checking
// (DESIGN.md §14). It holds one incremental solver session seeded with
// the feature-model formula and compiles delta activation conditions
// ("when" clauses and guards derived from them) into *presence
// literals*: a literal that is true in a model of the session exactly
// when the guard expression holds in the corresponding configuration.
//
// Lifted violation queries are then plain assumption solves — SAT(FM ∧
// guard_1 ∧ … ∧ guard_n) — against the shared session, and a Sat answer
// decodes back to a concrete violating configuration via Config. The
// session is never reset between queries; clause learning accumulates
// across the whole family, which is the point of checking the product
// line in one session instead of one solver per product.
type PresenceEncoder struct {
	model  *Model
	pool   *logic.Pool
	vm     *VarMap
	solver *sat.Solver

	lits    map[string]logic.Lit // canonical Expr.String() → presence literal
	unknown map[string]logic.Var // names outside the model, forced false
	tru     logic.Lit            // lazily allocated constant-true literal

	queries int // assumption solves issued against the session
}

// NewPresenceEncoder seeds a fresh incremental session with the
// feature-model formula of m. The model must be well-formed (built via
// NewModel); NewPresenceEncoder panics otherwise, like NewAnalyzer.
func NewPresenceEncoder(m *Model) *PresenceEncoder {
	pool := logic.NewPool()
	vm := NewVarMap(pool)
	f := m.MustToFormula(vm, "")
	s := sat.New()
	s.AddCNF(logic.ToCNF(f, pool))
	return &PresenceEncoder{
		model:   m,
		pool:    pool,
		vm:      vm,
		solver:  s,
		lits:    make(map[string]logic.Lit),
		unknown: make(map[string]logic.Var),
	}
}

// True returns a literal constrained to be true in every model — the
// presence literal of an unconditional (guard-free) artifact.
func (pe *PresenceEncoder) True() logic.Lit {
	if pe.tru == 0 {
		v := pe.pool.Fresh()
		pe.tru = logic.Lit(v)
		cnf := &logic.CNF{NumVars: pe.pool.NumVars()}
		cnf.AddClause(pe.tru)
		pe.solver.AddCNF(cnf)
	}
	return pe.tru
}

// Literal compiles a guard expression into its presence literal,
// loading the Tseitin definition clauses into the shared session. A nil
// expression means "always present" and yields the constant-true
// literal. Feature names outside the model are forced false, matching
// Expr.Eval's unknown-name semantics, so a delta guarded on a feature
// the model never declares is unsatisfiable in both worlds.
//
// Literals are cached by the expression's canonical string, so the same
// guard reused across many artifacts costs one encoding.
func (pe *PresenceEncoder) Literal(e *Expr) logic.Lit {
	if e == nil {
		return pe.True()
	}
	key := e.String()
	if l, ok := pe.lits[key]; ok {
		return l
	}
	f, err := e.ToFormula(pe.lookup)
	if err != nil {
		// Unreachable: lookup never reports a missing name.
		panic(err)
	}
	cnf := &logic.CNF{NumVars: pe.pool.NumVars()}
	l := logic.Tseitin(f, pe.pool, cnf)
	if pe.pool.NumVars() > cnf.NumVars {
		cnf.NumVars = pe.pool.NumVars()
	}
	pe.solver.AddCNF(cnf)
	pe.lits[key] = l
	return l
}

func (pe *PresenceEncoder) lookup(name string) (logic.Var, bool) {
	if pe.model.Feature(name) != nil {
		return pe.vm.Var(name), true
	}
	v, ok := pe.unknown[name]
	if !ok {
		v = pe.pool.Fresh()
		pe.unknown[name] = v
		cnf := &logic.CNF{NumVars: pe.pool.NumVars()}
		cnf.AddClause(-logic.Lit(v))
		pe.solver.AddCNF(cnf)
	}
	return v, true
}

// FeatureLit returns the literal of a feature variable itself (positive
// polarity), for assumption sets that pin individual features.
func (pe *PresenceEncoder) FeatureLit(name string) logic.Lit {
	return logic.Lit(pe.vm.Var(name))
}

// SolveContext asks whether any valid configuration satisfies all the
// given presence literals, honoring ctx cancellation and the session's
// budget. Every call is counted; see Queries.
func (pe *PresenceEncoder) SolveContext(ctx context.Context, assumptions ...logic.Lit) (sat.Status, error) {
	pe.queries++
	return pe.solver.SolveContext(ctx, assumptions...)
}

// Solve is SolveContext without cancellation.
func (pe *PresenceEncoder) Solve(assumptions ...logic.Lit) sat.Status {
	pe.queries++
	return pe.solver.Solve(assumptions...)
}

// Config decodes the session's current model (valid after a Sat solve)
// into the concrete configuration it describes: exactly the features
// assigned true. This is the witness-decoding step — the configuration
// is a real product exhibiting whatever the assumptions asserted.
func (pe *PresenceEncoder) Config() Configuration {
	cfg := make(Configuration, len(pe.model.order))
	for _, name := range pe.model.order {
		if v, ok := pe.vm.Lookup(name); ok && pe.solver.Value(v) {
			cfg[name] = true
		}
	}
	return cfg
}

// SetBudget forwards a resource budget to the underlying session.
func (pe *PresenceEncoder) SetBudget(b sat.Budget) { pe.solver.SetBudget(b) }

// Queries returns the number of assumption solves issued so far.
func (pe *PresenceEncoder) Queries() int { return pe.queries }

// Stats snapshots the underlying solver's counters.
func (pe *PresenceEncoder) Stats() sat.Stats { return pe.solver.Stats() }
