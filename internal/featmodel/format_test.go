package featmodel

import (
	"strings"
	"testing"
)

const fig1aText = `
// Fig. 1a of the paper
feature CustomSBC abstract {
    feature memory mandatory
    xor cpus abstract mandatory {
        feature cpu@0 exclusive
        feature cpu@1 exclusive
    }
    or uarts abstract mandatory {
        feature uart0
        feature uart1
    }
    xor vEthernet abstract {
        feature veth0
        feature veth1
    }
}
constraint veth0 -> cpu@0
constraint veth1 -> cpu@1
`

func TestParseModelFig1a(t *testing.T) {
	m, err := ParseModel("fig1a.fm", fig1aText)
	if err != nil {
		t.Fatalf("ParseModel: %v", err)
	}
	if m.Root.Name != "CustomSBC" || !m.Root.Abstract {
		t.Errorf("root = %+v", m.Root)
	}
	cpus := m.Feature("cpus")
	if cpus == nil || cpus.Group != GroupXor || !cpus.Mandatory {
		t.Fatalf("cpus = %+v", cpus)
	}
	if !cpus.Children[0].Exclusive {
		t.Error("cpu@0 should be exclusive")
	}
	if got := len(m.Constraints); got != 2 {
		t.Errorf("constraints = %d, want 2", got)
	}
	// semantics check: the parsed model counts 12 products
	n, complete := NewAnalyzer(m).CountProducts(0)
	if !complete || n != 12 {
		t.Errorf("products = %d, want 12", n)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	m, err := ParseModel("fig1a.fm", fig1aText)
	if err != nil {
		t.Fatal(err)
	}
	text := m.Format()
	m2, err := ParseModel("roundtrip.fm", text)
	if err != nil {
		t.Fatalf("reparse formatted model: %v\n%s", err, text)
	}
	n1, _ := NewAnalyzer(m).CountProducts(0)
	n2, _ := NewAnalyzer(m2).CountProducts(0)
	if n1 != n2 {
		t.Errorf("round trip changed product count: %d vs %d", n1, n2)
	}
	names1, names2 := m.Names(), m2.Names()
	if len(names1) != len(names2) {
		t.Fatalf("feature count changed: %v vs %v", names1, names2)
	}
	for i := range names1 {
		if names1[i] != names2[i] {
			t.Fatalf("feature order changed: %v vs %v", names1, names2)
		}
	}
}

func TestParseModelErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"empty", "", "no root"},
		{"unmatched close", "}", "unmatched"},
		{"unclosed", "feature a {", "unclosed"},
		{"two roots", "feature a\nfeature b", "multiple root"},
		{"unknown keyword", "gadget a", "unknown keyword"},
		{"unknown flag", "feature a sparkly", "unknown flag"},
		{"bad constraint", "feature a\nconstraint &&&", ""},
		{"constraint unknown feature", "feature a\nconstraint ghost", "unknown feature"},
		{"missing name", "feature", "expected"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseModel("t.fm", tt.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if tt.want != "" && !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestParseModelComments(t *testing.T) {
	src := `
# hash comment
feature root { // trailing comment
    feature a   # another
}
`
	m, err := ParseModel("c.fm", src)
	if err != nil {
		t.Fatalf("ParseModel: %v", err)
	}
	if m.Feature("a") == nil {
		t.Error("feature a missing")
	}
}
