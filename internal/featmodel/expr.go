package featmodel

import (
	"fmt"
	"strings"

	"llhsc/internal/logic"
)

// Expr is a propositional expression over feature names, used for
// cross-tree constraints and for delta activation conditions (the
// "when" clauses of Listing 4, parsed by internal/delta with this
// parser).
type Expr struct {
	Kind ExprKind
	Name string // for ExprVar
	Args []*Expr
}

// ExprKind discriminates expression nodes.
type ExprKind int

// Expression node kinds.
const (
	ExprVar ExprKind = iota + 1
	ExprNot
	ExprAnd
	ExprOr
	ExprImplies
)

// Var returns a feature-variable expression.
func Var(name string) *Expr { return &Expr{Kind: ExprVar, Name: name} }

// Not returns the negation of e.
func Not(e *Expr) *Expr { return &Expr{Kind: ExprNot, Args: []*Expr{e}} }

// And returns the conjunction of a and b.
func And(a, b *Expr) *Expr { return &Expr{Kind: ExprAnd, Args: []*Expr{a, b}} }

// Or returns the disjunction of a and b.
func Or(a, b *Expr) *Expr { return &Expr{Kind: ExprOr, Args: []*Expr{a, b}} }

// Implies returns a → b.
func Implies(a, b *Expr) *Expr { return &Expr{Kind: ExprImplies, Args: []*Expr{a, b}} }

// AndOpt conjoins two optional guard expressions, where nil stands for
// "true" (unconditionally present). The lifted checking machinery
// composes presence conditions with these helpers so that fully
// unconditional artifacts keep a nil guard and cost nothing to encode.
func AndOpt(a, b *Expr) *Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return And(a, b)
}

// OrOpt disjoins two optional guard expressions (nil = "true"); the
// result is nil whenever either side is unconditional.
func OrOpt(a, b *Expr) *Expr {
	if a == nil || b == nil {
		return nil
	}
	return Or(a, b)
}

// EvalOpt evaluates an optional guard expression (nil = "true").
func EvalOpt(e *Expr, selected map[string]bool) bool {
	if e == nil {
		return true
	}
	return e.Eval(selected)
}

// Names returns the set of feature names mentioned by the expression.
func (e *Expr) Names() []string {
	seen := make(map[string]bool)
	var walk func(*Expr)
	walk = func(x *Expr) {
		if x.Kind == ExprVar {
			seen[x.Name] = true
			return
		}
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(e)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	return out
}

// Eval evaluates the expression under a selection set.
func (e *Expr) Eval(selected map[string]bool) bool {
	switch e.Kind {
	case ExprVar:
		return selected[e.Name]
	case ExprNot:
		return !e.Args[0].Eval(selected)
	case ExprAnd:
		return e.Args[0].Eval(selected) && e.Args[1].Eval(selected)
	case ExprOr:
		return e.Args[0].Eval(selected) || e.Args[1].Eval(selected)
	case ExprImplies:
		return !e.Args[0].Eval(selected) || e.Args[1].Eval(selected)
	default:
		panic(fmt.Sprintf("featmodel: unknown expr kind %d", e.Kind))
	}
}

// ToFormula compiles the expression to propositional logic using the
// given variable lookup. Unknown names yield an error.
func (e *Expr) ToFormula(lookup func(name string) (logic.Var, bool)) (*logic.Formula, error) {
	switch e.Kind {
	case ExprVar:
		v, ok := lookup(e.Name)
		if !ok {
			return nil, fmt.Errorf("featmodel: unknown feature %q in constraint", e.Name)
		}
		return logic.V(v), nil
	case ExprNot:
		f, err := e.Args[0].ToFormula(lookup)
		if err != nil {
			return nil, err
		}
		return logic.Not(f), nil
	case ExprAnd, ExprOr, ExprImplies:
		a, err := e.Args[0].ToFormula(lookup)
		if err != nil {
			return nil, err
		}
		b, err := e.Args[1].ToFormula(lookup)
		if err != nil {
			return nil, err
		}
		switch e.Kind {
		case ExprAnd:
			return logic.And(a, b), nil
		case ExprOr:
			return logic.Or(a, b), nil
		default:
			return logic.Implies(a, b), nil
		}
	default:
		panic(fmt.Sprintf("featmodel: unknown expr kind %d", e.Kind))
	}
}

// String renders the expression in the delta-DSL syntax.
func (e *Expr) String() string {
	switch e.Kind {
	case ExprVar:
		return e.Name
	case ExprNot:
		return "!" + e.Args[0].atomString()
	case ExprAnd:
		return e.Args[0].atomString() + " && " + e.Args[1].atomString()
	case ExprOr:
		return e.Args[0].atomString() + " || " + e.Args[1].atomString()
	case ExprImplies:
		return e.Args[0].atomString() + " -> " + e.Args[1].atomString()
	default:
		return "?"
	}
}

func (e *Expr) atomString() string {
	if e.Kind == ExprVar || e.Kind == ExprNot {
		return e.String()
	}
	return "(" + e.String() + ")"
}

// ParseExpr parses expressions of the form used by the paper's delta
// "when" clauses and cross-tree constraints:
//
//	veth0 || veth1
//	cpu@0 && !cpu@1
//	veth0 -> cpu@0
//
// Precedence (loosest to tightest): -> , ||, &&, !.
func ParseExpr(src string) (*Expr, error) {
	p := &exprParser{src: src}
	p.skipSpace()
	e, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("featmodel: trailing input %q in expression", p.src[p.pos:])
	}
	return e, nil
}

// MustParseExpr is ParseExpr panicking on error; for fixed expressions
// in tests and examples.
func MustParseExpr(src string) *Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) parseImplies() (*Expr, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], "->") {
		p.pos += 2
		p.skipSpace()
		right, err := p.parseImplies() // right-associative
		if err != nil {
			return nil, err
		}
		return Implies(left, right), nil
	}
	return left, nil
}

func (p *exprParser) parseOr() (*Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !strings.HasPrefix(p.src[p.pos:], "||") {
			return left, nil
		}
		p.pos += 2
		p.skipSpace()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or(left, right)
	}
}

func (p *exprParser) parseAnd() (*Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !strings.HasPrefix(p.src[p.pos:], "&&") {
			return left, nil
		}
		p.pos += 2
		p.skipSpace()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = And(left, right)
	}
}

func (p *exprParser) parseUnary() (*Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("featmodel: unexpected end of expression")
	}
	switch p.src[p.pos] {
	case '!':
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(e), nil
	case '(':
		p.pos++
		e, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("featmodel: missing ')' in expression")
		}
		p.pos++
		return e, nil
	}
	start := p.pos
	for p.pos < len(p.src) && isFeatureNameByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("featmodel: unexpected character %q in expression", p.src[p.pos])
	}
	return Var(p.src[start:p.pos]), nil
}

func isFeatureNameByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_' || c == '-' || c == '@' || c == '.' || c == '/':
		return true
	default:
		return false
	}
}
