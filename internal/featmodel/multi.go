package featmodel

import (
	"context"
	"fmt"
	"sort"

	"llhsc/internal/logic"
	"llhsc/internal/sat"
)

// MultiModel is the multi-product feature model of Section IV-A: one
// copy of the base model per VM plus a platform view, with features
// marked Exclusive assignable to at most one VM (the paper's
// exclusive-resource-usage constraint — cpu@0 may appear in at most one
// VM's product, and within a VM the base XOR semantics still applies).
type MultiModel struct {
	Base *Model
	VMs  int
}

// NewMultiModel wraps a base model for k VMs (k >= 1).
func NewMultiModel(base *Model, k int) (*MultiModel, error) {
	if k < 1 {
		return nil, fmt.Errorf("featmodel: VM count %d out of range", k)
	}
	return &MultiModel{Base: base, VMs: k}, nil
}

// VMPrefix returns the variable prefix for VM k (1-based).
func VMPrefix(k int) string { return fmt.Sprintf("vm%d/", k) }

// PlatformPrefix is the variable prefix of the platform (union) model.
const PlatformPrefix = "platform/"

// ToFormula builds the multi-product constraint system:
//
//   - each VM k satisfies the base model over variables "vm<k>/<f>",
//   - each exclusive feature is selected by at most one VM,
//   - each platform variable "platform/<f>" is the union (disjunction)
//     of the per-VM selections.
func (mm *MultiModel) ToFormula(vm *VarMap) (*logic.Formula, error) {
	var parts []*logic.Formula
	for k := 1; k <= mm.VMs; k++ {
		f, err := mm.Base.ToFormula(vm, VMPrefix(k))
		if err != nil {
			return nil, err
		}
		parts = append(parts, f)
	}
	for _, name := range mm.Base.order {
		f := mm.Base.features[name]
		perVM := make([]*logic.Formula, mm.VMs)
		for k := 1; k <= mm.VMs; k++ {
			perVM[k-1] = logic.V(vm.Var(VMPrefix(k) + name))
		}
		if f.Exclusive {
			parts = append(parts, logic.AtMostOne(perVM...))
		}
		platform := logic.V(vm.Var(PlatformPrefix + name))
		parts = append(parts, logic.Iff(platform, logic.Or(perVM...)))
	}
	return logic.And(parts...), nil
}

// MultiAnalyzer answers queries over a MultiModel.
type MultiAnalyzer struct {
	mm     *MultiModel
	pool   *logic.Pool
	vm     *VarMap
	solver *sat.Solver
}

// NewMultiAnalyzer prepares the SAT encoding. It errors on a malformed
// base model (one assembled by hand rather than through NewModel).
func NewMultiAnalyzer(mm *MultiModel) (*MultiAnalyzer, error) {
	pool := logic.NewPool()
	vm := NewVarMap(pool)
	f, err := mm.ToFormula(vm)
	if err != nil {
		return nil, err
	}
	s := sat.New()
	s.AddCNF(logic.ToCNF(f, pool))
	return &MultiAnalyzer{mm: mm, pool: pool, vm: vm, solver: s}, nil
}

// IsVoid reports whether no assignment of products to the VMs exists at
// all (e.g. more VMs than exclusive mandatory resources).
func (ma *MultiAnalyzer) IsVoid() bool {
	return ma.solver.Solve() != sat.Sat
}

// SetBudget installs a resource budget on the underlying SAT solver,
// bounding every subsequent query.
func (ma *MultiAnalyzer) SetBudget(b sat.Budget) { ma.solver.SetBudget(b) }

// Stats returns a snapshot of the underlying SAT solver's cumulative
// statistics (see sat.Stats for the delta-snapshot contract).
func (ma *MultiAnalyzer) Stats() sat.Stats { return ma.solver.Stats() }

// CheckConfigs validates one configuration per VM simultaneously,
// including the cross-VM exclusivity constraints. It returns nil when
// valid and an explanation (conflicting feature literals, prefixed by
// their VM) otherwise.
func (ma *MultiAnalyzer) CheckConfigs(configs []Configuration) error {
	return ma.CheckConfigsContext(context.Background(), configs)
}

// CheckConfigsContext is CheckConfigs under a context: cancellation
// and the context deadline bound the underlying SAT search, and the
// resulting error is a *sat.LimitError wrapping ctx.Err().
func (ma *MultiAnalyzer) CheckConfigsContext(ctx context.Context, configs []Configuration) error {
	if len(configs) != ma.mm.VMs {
		return fmt.Errorf("featmodel: %d configurations for %d VMs", len(configs), ma.mm.VMs)
	}
	var assumptions []logic.Lit
	for k, cfg := range configs {
		prefix := VMPrefix(k + 1)
		for _, name := range ma.mm.Base.order {
			v := ma.vm.Var(prefix + name)
			if cfg[name] {
				assumptions = append(assumptions, logic.Lit(v))
			} else {
				assumptions = append(assumptions, -logic.Lit(v))
			}
		}
	}
	st, err := ma.solver.SolveContext(ctx, assumptions...)
	if st == sat.Unknown {
		return err
	}
	if st == sat.Sat {
		return nil
	}
	var conflict []string
	for _, l := range ma.solver.FailedAssumptions() {
		name, ok := ma.vm.Name(l.Var())
		if !ok {
			continue
		}
		if !l.Positive() {
			name = "!" + name
		}
		conflict = append(conflict, name)
	}
	sort.Strings(conflict)
	return &ConflictError{Literals: conflict}
}

// ConflictError explains an invalid multi-VM configuration.
type ConflictError struct {
	Literals []string // conflicting feature literals, e.g. "vm1/cpu@0"
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("featmodel: invalid partitioning, conflict over %v", e.Literals)
}

// SolveAssignment asks the solver for any valid assignment of products
// to VMs (useful for automatic resource allocation: grayed-out CPU
// features in Fig. 1 are chosen by the solver, not the user). Partial
// constraints pin named features per VM: pins[k]["veth0"] = true.
func (ma *MultiAnalyzer) SolveAssignment(pins []map[string]bool) ([]Configuration, error) {
	if len(pins) > ma.mm.VMs {
		return nil, fmt.Errorf("featmodel: %d pin sets for %d VMs", len(pins), ma.mm.VMs)
	}
	var assumptions []logic.Lit
	for k, pinSet := range pins {
		prefix := VMPrefix(k + 1)
		names := make([]string, 0, len(pinSet))
		for name := range pinSet {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if _, ok := ma.mm.Base.features[name]; !ok {
				return nil, fmt.Errorf("featmodel: unknown feature %q pinned for VM %d", name, k+1)
			}
			v := ma.vm.Var(prefix + name)
			if pinSet[name] {
				assumptions = append(assumptions, logic.Lit(v))
			} else {
				assumptions = append(assumptions, -logic.Lit(v))
			}
		}
	}
	if ma.solver.Solve(assumptions...) != sat.Sat {
		return nil, &ConflictError{Literals: ma.failedNames()}
	}
	out := make([]Configuration, ma.mm.VMs)
	for k := 1; k <= ma.mm.VMs; k++ {
		cfg := make(Configuration)
		for _, name := range ma.mm.Base.order {
			if ma.solver.Value(ma.vm.Var(VMPrefix(k) + name)) {
				cfg[name] = true
			}
		}
		out[k-1] = cfg
	}
	return out, nil
}

func (ma *MultiAnalyzer) failedNames() []string {
	var out []string
	for _, l := range ma.solver.FailedAssumptions() {
		if name, ok := ma.vm.Name(l.Var()); ok {
			if !l.Positive() {
				name = "!" + name
			}
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// PlatformUnion computes the platform configuration: the union of the
// VM configurations (Section III-A: "the platform DTS is the union of
// selected features in both products").
func PlatformUnion(configs []Configuration) Configuration {
	union := make(Configuration)
	for _, cfg := range configs {
		for name, sel := range cfg {
			if sel {
				union[name] = true
			}
		}
	}
	return union
}
