package featmodel

import (
	"fmt"
	"sort"

	"llhsc/internal/logic"
	"llhsc/internal/sat"
)

// Analyzer runs the automated analyses of Section II-B over a model
// using the CDCL solver. Create one per model; the underlying solver is
// reused incrementally across queries.
type Analyzer struct {
	model   *Model
	pool    *logic.Pool
	vm      *VarMap
	solver  *sat.Solver
	formula *logic.Formula
}

// NewAnalyzer prepares the SAT encoding of the model. The model must
// be well-formed (built via NewModel); NewAnalyzer panics otherwise.
func NewAnalyzer(m *Model) *Analyzer {
	pool := logic.NewPool()
	vm := NewVarMap(pool)
	f := m.MustToFormula(vm, "")
	s := sat.New()
	s.AddCNF(logic.ToCNF(f, pool))
	return &Analyzer{model: m, pool: pool, vm: vm, solver: s, formula: f}
}

// IsVoid reports whether the model admits no products at all.
func (a *Analyzer) IsVoid() bool {
	return a.solver.Solve() != sat.Sat
}

// IsValid reports whether the configuration is a valid product: the
// assignment that selects exactly the given features (and no others)
// satisfies the model.
func (a *Analyzer) IsValid(cfg Configuration) bool {
	assumptions := a.configAssumptions(cfg)
	return a.solver.Solve(assumptions...) == sat.Sat
}

// ExplainInvalid returns, for an invalid configuration, the feature
// literals (name, selected) that participate in the conflict. For a
// valid configuration it returns nil.
func (a *Analyzer) ExplainInvalid(cfg Configuration) []string {
	assumptions := a.configAssumptions(cfg)
	if a.solver.Solve(assumptions...) == sat.Sat {
		return nil
	}
	var out []string
	for _, l := range a.solver.FailedAssumptions() {
		name, ok := a.vm.Name(l.Var())
		if !ok {
			continue
		}
		if l.Positive() {
			out = append(out, name)
		} else {
			out = append(out, "!"+name)
		}
	}
	sort.Strings(out)
	return out
}

func (a *Analyzer) configAssumptions(cfg Configuration) []logic.Lit {
	assumptions := make([]logic.Lit, 0, len(a.model.order))
	for _, name := range a.model.order {
		v := a.vm.Var(name)
		if cfg[name] {
			assumptions = append(assumptions, logic.Lit(v))
		} else {
			assumptions = append(assumptions, -logic.Lit(v))
		}
	}
	return assumptions
}

// DeadFeatures returns features that appear in no valid product.
func (a *Analyzer) DeadFeatures() []string {
	var out []string
	for _, name := range a.model.order {
		v := a.vm.Var(name)
		if a.solver.Solve(logic.Lit(v)) != sat.Sat {
			out = append(out, name)
		}
	}
	return out
}

// CoreFeatures returns features present in every valid product.
func (a *Analyzer) CoreFeatures() []string {
	var out []string
	for _, name := range a.model.order {
		v := a.vm.Var(name)
		if a.solver.Solve(-logic.Lit(v)) != sat.Sat {
			out = append(out, name)
		}
	}
	return out
}

// CountProducts counts the valid products of the model (distinct
// assignments to all features) by iterating models with blocking
// clauses. limit bounds the count (0 = unlimited); if the limit is hit,
// the second result is false.
//
// Counting mutates the analyzer's solver with blocking clauses, so a
// fresh Analyzer should be used afterwards for other queries; to keep
// the API safe, CountProducts operates on a private solver instance.
func (a *Analyzer) CountProducts(limit int) (int, bool) {
	products, complete := a.enumerate(limit)
	return len(products), complete
}

// EnumerateProducts returns up to limit valid products (0 = all),
// each as a sorted list of selected feature names. The second result
// reports whether the enumeration is complete.
func (a *Analyzer) EnumerateProducts(limit int) ([][]string, bool) {
	products, complete := a.enumerate(limit)
	sort.Slice(products, func(i, j int) bool {
		return fmt.Sprint(products[i]) < fmt.Sprint(products[j])
	})
	return products, complete
}

func (a *Analyzer) enumerate(limit int) ([][]string, bool) {
	s := sat.New()
	pool := logic.NewPool()
	vm := NewVarMap(pool)
	f := a.model.MustToFormula(vm, "")
	s.AddCNF(logic.ToCNF(f, pool))

	featureVars := make([]logic.Var, 0, len(a.model.order))
	for _, name := range a.model.order {
		featureVars = append(featureVars, vm.Var(name))
	}

	var products [][]string
	for {
		if limit > 0 && len(products) >= limit {
			return products, false
		}
		if s.Solve() != sat.Sat {
			return products, true
		}
		var selected []string
		blocking := make([]logic.Lit, 0, len(featureVars))
		for i, v := range featureVars {
			if s.Value(v) {
				selected = append(selected, a.model.order[i])
				blocking = append(blocking, -logic.Lit(v))
			} else {
				blocking = append(blocking, logic.Lit(v))
			}
		}
		sort.Strings(selected)
		products = append(products, selected)
		if !s.AddClause(blocking...) {
			return products, true
		}
	}
}
