package featmodel

import (
	"errors"
	"strings"
	"testing"

	"llhsc/internal/dts"
)

// mustMultiAnalyzer builds a MultiAnalyzer, failing the test on error.
func mustMultiAnalyzer(t *testing.T, mm *MultiModel) *MultiAnalyzer {
	t.Helper()
	ma, err := NewMultiAnalyzer(mm)
	if err != nil {
		t.Fatalf("NewMultiAnalyzer: %v", err)
	}
	return ma
}

// paperModel builds the Fig. 1a feature model of the running example.
func paperModel(t *testing.T) *Model {
	t.Helper()
	root := &Feature{Name: "CustomSBC", Abstract: true, Group: GroupAnd, Children: []*Feature{
		{Name: "memory", Mandatory: true, Group: GroupAnd},
		{Name: "cpus", Abstract: true, Mandatory: true, Group: GroupXor, Children: []*Feature{
			{Name: "cpu@0", Exclusive: true, Group: GroupAnd},
			{Name: "cpu@1", Exclusive: true, Group: GroupAnd},
		}},
		{Name: "uarts", Abstract: true, Mandatory: true, Group: GroupOr, Children: []*Feature{
			{Name: "uart0", Group: GroupAnd},
			{Name: "uart1", Group: GroupAnd},
		}},
		{Name: "vEthernet", Abstract: true, Group: GroupXor, Children: []*Feature{
			{Name: "veth0", Group: GroupAnd},
			{Name: "veth1", Group: GroupAnd},
		}},
	}}
	m, err := NewModel(root,
		MustParseExpr("veth0 -> cpu@0"),
		MustParseExpr("veth1 -> cpu@1"),
	)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

func TestPaperModelHas12Products(t *testing.T) {
	// Fig. 1a: "In this feature model there are 12 valid products."
	a := NewAnalyzer(paperModel(t))
	n, complete := a.CountProducts(0)
	if !complete {
		t.Fatal("counting did not complete")
	}
	if n != 12 {
		t.Errorf("products = %d, want 12 (the paper's count)", n)
	}
}

func TestPaperModelProductsAreValid(t *testing.T) {
	m := paperModel(t)
	a := NewAnalyzer(m)
	products, complete := a.EnumerateProducts(0)
	if !complete {
		t.Fatal("enumeration did not complete")
	}
	if len(products) != 12 {
		t.Fatalf("enumerated %d products, want 12", len(products))
	}
	for _, p := range products {
		if !a.IsValid(ConfigOf(p...)) {
			t.Errorf("enumerated product %v reported invalid", p)
		}
	}
}

func TestFig1bAndFig1cProducts(t *testing.T) {
	a := NewAnalyzer(paperModel(t))

	// Fig. 1b: cpu@0, both UARTs, veth0.
	vm1 := ConfigOf("CustomSBC", "memory", "cpus", "cpu@0", "uarts", "uart0", "uart1", "vEthernet", "veth0")
	if !a.IsValid(vm1) {
		t.Errorf("Fig. 1b product should be valid; explanation: %v", a.ExplainInvalid(vm1))
	}

	// Fig. 1c: cpu@1, both UARTs, veth1.
	vm2 := ConfigOf("CustomSBC", "memory", "cpus", "cpu@1", "uarts", "uart0", "uart1", "vEthernet", "veth1")
	if !a.IsValid(vm2) {
		t.Errorf("Fig. 1c product should be valid; explanation: %v", a.ExplainInvalid(vm2))
	}
}

func TestInvalidProducts(t *testing.T) {
	a := NewAnalyzer(paperModel(t))
	tests := []struct {
		name string
		cfg  Configuration
	}{
		{"both CPUs (XOR)", ConfigOf("CustomSBC", "memory", "cpus", "cpu@0", "cpu@1", "uarts", "uart0")},
		{"no CPU", ConfigOf("CustomSBC", "memory", "cpus", "uarts", "uart0")},
		{"missing mandatory memory", ConfigOf("CustomSBC", "cpus", "cpu@0", "uarts", "uart0")},
		{"veth without matching cpu", ConfigOf("CustomSBC", "memory", "cpus", "cpu@1", "uarts", "uart0", "vEthernet", "veth0")},
		{"child without parent", ConfigOf("CustomSBC", "memory", "cpus", "cpu@0", "uarts", "uart0", "veth0")},
		{"empty OR group", ConfigOf("CustomSBC", "memory", "cpus", "cpu@0", "uarts")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if a.IsValid(tt.cfg) {
				t.Error("configuration should be invalid")
			}
			if exp := a.ExplainInvalid(tt.cfg); len(exp) == 0 {
				t.Error("expected a non-empty explanation")
			}
		})
	}
}

func TestCoreAndDeadFeatures(t *testing.T) {
	a := NewAnalyzer(paperModel(t))
	core := a.CoreFeatures()
	wantCore := map[string]bool{"CustomSBC": true, "memory": true, "cpus": true, "uarts": true}
	for _, c := range core {
		if !wantCore[c] {
			t.Errorf("unexpected core feature %s", c)
		}
		delete(wantCore, c)
	}
	for missing := range wantCore {
		t.Errorf("core feature %s not reported", missing)
	}
	if dead := a.DeadFeatures(); len(dead) != 0 {
		t.Errorf("dead features = %v, want none", dead)
	}
}

func TestDeadFeatureDetected(t *testing.T) {
	root := &Feature{Name: "r", Group: GroupAnd, Children: []*Feature{
		{Name: "a", Group: GroupAnd},
		{Name: "b", Group: GroupAnd},
	}}
	m, err := NewModel(root, MustParseExpr("a -> b"), MustParseExpr("a -> !b"))
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(m)
	dead := a.DeadFeatures()
	if len(dead) != 1 || dead[0] != "a" {
		t.Errorf("dead = %v, want [a]", dead)
	}
	if a.IsVoid() {
		t.Error("model is not void")
	}
}

func TestVoidModel(t *testing.T) {
	root := &Feature{Name: "r", Group: GroupAnd, Children: []*Feature{
		{Name: "a", Mandatory: true, Group: GroupAnd},
	}}
	m, err := NewModel(root, MustParseExpr("!a"))
	if err != nil {
		t.Fatal(err)
	}
	if !NewAnalyzer(m).IsVoid() {
		t.Error("model should be void")
	}
}

func TestDuplicateFeatureName(t *testing.T) {
	root := &Feature{Name: "r", Group: GroupAnd, Children: []*Feature{
		{Name: "x"}, {Name: "x"},
	}}
	if _, err := NewModel(root); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("err = %v, want duplicate-name error", err)
	}
}

func TestUnknownConstraintName(t *testing.T) {
	root := &Feature{Name: "r", Group: GroupAnd}
	if _, err := NewModel(root, MustParseExpr("ghost")); err == nil {
		t.Error("constraint over unknown feature should fail")
	}
}

func TestMultiModelStaticPartitioning(t *testing.T) {
	m := paperModel(t)
	mm, err := NewMultiModel(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	ma := mustMultiAnalyzer(t, mm)
	if ma.IsVoid() {
		t.Fatal("2-VM partitioning should be satisfiable")
	}

	vm1 := ConfigOf("CustomSBC", "memory", "cpus", "cpu@0", "uarts", "uart0", "uart1", "vEthernet", "veth0")
	vm2 := ConfigOf("CustomSBC", "memory", "cpus", "cpu@1", "uarts", "uart0", "uart1", "vEthernet", "veth1")
	if err := ma.CheckConfigs([]Configuration{vm1, vm2}); err != nil {
		t.Errorf("paper's two products should be a valid partitioning: %v", err)
	}

	// Both VMs using cpu@0 violates cross-VM exclusivity.
	vm2bad := ConfigOf("CustomSBC", "memory", "cpus", "cpu@0", "uarts", "uart0")
	err = ma.CheckConfigs([]Configuration{vm1, vm2bad})
	if err == nil {
		t.Fatal("shared exclusive CPU must be rejected")
	}
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("error type %T", err)
	}
	found := false
	for _, l := range ce.Literals {
		if strings.Contains(l, "cpu@0") {
			found = true
		}
	}
	if !found {
		t.Errorf("conflict %v should mention cpu@0", ce.Literals)
	}
}

func TestMultiModelMaxVMs(t *testing.T) {
	// Section IV-A: "the maximum number of VMs is two" — with two
	// exclusive CPUs and cpus mandatory, three VMs are unsatisfiable.
	m := paperModel(t)
	mm, _ := NewMultiModel(m, 3)
	if !mustMultiAnalyzer(t, mm).IsVoid() {
		t.Error("3 VMs over 2 exclusive CPUs should be void")
	}
}

func TestSolveAssignmentAutomaticCPUs(t *testing.T) {
	// The paper grays out CPU features: users pin veths, the solver
	// assigns CPUs automatically.
	m := paperModel(t)
	mm, _ := NewMultiModel(m, 2)
	ma := mustMultiAnalyzer(t, mm)
	configs, err := ma.SolveAssignment([]map[string]bool{
		{"veth0": true},
		{"veth1": true},
	})
	if err != nil {
		t.Fatalf("SolveAssignment: %v", err)
	}
	if !configs[0]["cpu@0"] {
		t.Errorf("vm1 = %v, should include cpu@0 (forced by veth0)", configs[0].Sorted())
	}
	if !configs[1]["cpu@1"] {
		t.Errorf("vm2 = %v, should include cpu@1 (forced by veth1)", configs[1].Sorted())
	}
}

func TestSolveAssignmentConflict(t *testing.T) {
	m := paperModel(t)
	mm, _ := NewMultiModel(m, 2)
	ma := mustMultiAnalyzer(t, mm)
	// veth0 in both VMs forces cpu@0 in both: exclusivity conflict.
	if _, err := ma.SolveAssignment([]map[string]bool{
		{"veth0": true},
		{"veth0": true},
	}); err == nil {
		t.Error("conflicting pins should fail")
	}
	// unknown pin name
	if _, err := ma.SolveAssignment([]map[string]bool{{"nope": true}}); err == nil {
		t.Error("unknown feature pin should fail")
	}
}

func TestPlatformUnion(t *testing.T) {
	u := PlatformUnion([]Configuration{
		ConfigOf("a", "b"),
		ConfigOf("b", "c"),
	})
	if got := u.Sorted(); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("union = %v", got)
	}
}

func TestParseExpr(t *testing.T) {
	tests := []struct {
		src  string
		env  map[string]bool
		want bool
	}{
		{"a || b", map[string]bool{"a": true}, true},
		{"a || b", map[string]bool{}, false},
		{"a && !b", map[string]bool{"a": true}, true},
		{"a && !b", map[string]bool{"a": true, "b": true}, false},
		{"veth0 -> cpu@0", map[string]bool{"veth0": true}, false},
		{"veth0 -> cpu@0", map[string]bool{"veth0": true, "cpu@0": true}, true},
		{"(a || b) && c", map[string]bool{"b": true, "c": true}, true},
		{"a -> b -> c", map[string]bool{"a": true, "b": true, "c": true}, true},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			e, err := ParseExpr(tt.src)
			if err != nil {
				t.Fatalf("ParseExpr: %v", err)
			}
			if got := e.Eval(tt.env); got != tt.want {
				t.Errorf("Eval = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, src := range []string{"", "a &&", "(a", "a b", "&& a", "a ||"} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) should fail", src)
		}
	}
}

func TestExprString(t *testing.T) {
	e := MustParseExpr("veth0 -> (cpu@0 && !cpu@1)")
	round, err := ParseExpr(e.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", e.String(), err)
	}
	env := map[string]bool{"veth0": true, "cpu@0": true}
	if e.Eval(env) != round.Eval(env) {
		t.Error("String/reparse changed semantics")
	}
}

func TestInferFromDTS(t *testing.T) {
	src := `
/dts-v1/;
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	compatible = "vortex,custom-sbc";

	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000>;
	};
	cpus {
		#address-cells = <1>;
		#size-cells = <0>;
		cpu@0 { device_type = "cpu"; reg = <0x0>; };
		cpu@1 { device_type = "cpu"; reg = <0x1>; };
	};
	uart0: uart@20000000 { compatible = "ns16550a"; reg = <0x0 0x20000000 0x0 0x1000>; };
	uart1: uart@30000000 { compatible = "ns16550a"; reg = <0x0 0x30000000 0x0 0x1000>; };
	watchdog@50000 { reg = <0x0 0x50000 0x0 0x100>; };
};
`
	tree, err := dts.Parse("infer.dts", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := InferFromDTS(tree, InferOptions{})
	if err != nil {
		t.Fatalf("InferFromDTS: %v", err)
	}
	if m.Root.Name != "vortex,custom-sbc" {
		t.Errorf("root = %s", m.Root.Name)
	}
	cpus := m.Feature("cpus")
	if cpus == nil || cpus.Group != GroupXor || !cpus.Mandatory || !cpus.Abstract {
		t.Fatalf("cpus feature = %+v", cpus)
	}
	if len(cpus.Children) != 2 || !cpus.Children[0].Exclusive {
		t.Errorf("cpu children = %+v", cpus.Children)
	}
	mem := m.Feature("memory@40000000")
	if mem == nil || !mem.Mandatory {
		t.Errorf("memory feature = %+v", mem)
	}
	uarts := m.Feature("uarts")
	if uarts == nil || uarts.Group != GroupOr || !uarts.Abstract {
		t.Fatalf("uarts feature = %+v", uarts)
	}
	if len(uarts.Children) != 2 || uarts.Children[0].Name != "uart0" {
		t.Errorf("uart children = %+v", uarts.Children)
	}
	wd := m.Feature("watchdog@50000")
	if wd == nil || wd.Mandatory {
		t.Errorf("watchdog feature = %+v", wd)
	}
}

func TestInferredModelPlusVirtualGroupCounts12(t *testing.T) {
	// E2: reproduce the paper's 12-product figure from the actual
	// running-example DTS plus the virtual Ethernet group.
	tree, err := dts.ParseFile("../../testdata/customsbc.dts")
	if err != nil {
		t.Fatal(err)
	}
	base, err := InferFromDTS(tree, InferOptions{RootName: "CustomSBC"})
	if err != nil {
		t.Fatal(err)
	}
	// drop the watchdog-free base: running example has memory, cpus, uarts
	m, err := base.AddVirtualGroup("vEthernet", GroupXor, []string{"veth0", "veth1"},
		MustParseExpr("veth0 -> cpu@0"),
		MustParseExpr("veth1 -> cpu@1"),
	)
	if err != nil {
		t.Fatal(err)
	}
	n, complete := NewAnalyzer(m).CountProducts(0)
	if !complete || n != 12 {
		t.Errorf("products = %d (complete=%v), want 12", n, complete)
	}
}

func TestCountProductsLimit(t *testing.T) {
	a := NewAnalyzer(paperModel(t))
	n, complete := a.CountProducts(5)
	if complete || n != 5 {
		t.Errorf("limited count = %d,%v; want 5,false", n, complete)
	}
}

func TestConfigurationSorted(t *testing.T) {
	c := ConfigOf("b", "a")
	c["z"] = false
	got := c.Sorted()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Sorted = %v", got)
	}
}
