// Package featmodel implements feature models for software product
// lines in the FODA tradition the llhsc paper builds on (Section II-B):
// a feature tree with AND/OR/XOR group decompositions, mandatory /
// optional / abstract features, cross-tree constraints, translation to
// propositional logic, and SAT-backed automated analyses (void model,
// valid product, dead features, core features, product counting and
// enumeration).
//
// The multi-product extension of Section IV-A — k VM models plus a
// platform model with cross-VM exclusive resources — lives in multi.go.
package featmodel

import (
	"fmt"
	"sort"

	"llhsc/internal/logic"
)

// GroupKind is the decomposition semantics of a feature's children.
type GroupKind int

// Group kinds.
const (
	// GroupAnd gives each child its own mandatory/optional status.
	GroupAnd GroupKind = iota + 1
	// GroupOr requires at least one child when the parent is selected.
	GroupOr
	// GroupXor requires exactly one child when the parent is selected.
	GroupXor
)

func (g GroupKind) String() string {
	switch g {
	case GroupAnd:
		return "and"
	case GroupOr:
		return "or"
	case GroupXor:
		return "xor"
	default:
		return fmt.Sprintf("GroupKind(%d)", int(g))
	}
}

// Feature is one node of the feature tree.
type Feature struct {
	Name      string
	Abstract  bool // does not correspond to a concrete artifact
	Mandatory bool // under an AND-decomposed parent
	// Exclusive marks a resource that static partitioning may assign
	// to at most one VM (Section IV-A); it only matters under a
	// MultiModel.
	Exclusive bool
	Group     GroupKind // decomposition of Children (GroupAnd if unset)
	Children  []*Feature
}

// NewFeature returns a feature with the given name and AND decomposition.
func NewFeature(name string) *Feature {
	return &Feature{Name: name, Group: GroupAnd}
}

// Model is a feature model: a tree plus cross-tree constraints.
type Model struct {
	Root        *Feature
	Constraints []*Expr

	features map[string]*Feature
	parent   map[string]*Feature
	order    []string // depth-first feature order
}

// NewModel builds a model from a feature tree and optional cross-tree
// constraints, validating name uniqueness and constraint references.
func NewModel(root *Feature, constraints ...*Expr) (*Model, error) {
	m := &Model{
		Root:        root,
		Constraints: constraints,
		features:    make(map[string]*Feature),
		parent:      make(map[string]*Feature),
	}
	var walk func(f, parent *Feature) error
	walk = func(f, parent *Feature) error {
		if f.Name == "" {
			return fmt.Errorf("featmodel: feature with empty name under %q", parentName(parent))
		}
		if _, dup := m.features[f.Name]; dup {
			return fmt.Errorf("featmodel: duplicate feature name %q", f.Name)
		}
		if f.Group == 0 {
			f.Group = GroupAnd
		}
		m.features[f.Name] = f
		if parent != nil {
			m.parent[f.Name] = parent
		}
		m.order = append(m.order, f.Name)
		for _, c := range f.Children {
			if err := walk(c, f); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, nil); err != nil {
		return nil, err
	}
	for _, c := range constraints {
		for _, n := range c.Names() {
			if _, ok := m.features[n]; !ok {
				return nil, fmt.Errorf("featmodel: constraint %s references unknown feature %q", c, n)
			}
		}
	}
	return m, nil
}

func parentName(f *Feature) string {
	if f == nil {
		return "<root>"
	}
	return f.Name
}

// Feature returns the feature with the given name, or nil.
func (m *Model) Feature(name string) *Feature { return m.features[name] }

// Parent returns the parent of the named feature (nil for the root).
func (m *Model) Parent(name string) *Feature { return m.parent[name] }

// Names returns all feature names in depth-first order.
func (m *Model) Names() []string { return append([]string(nil), m.order...) }

// ConcreteNames returns the names of non-abstract features in
// depth-first order.
func (m *Model) ConcreteNames() []string {
	var out []string
	for _, n := range m.order {
		if !m.features[n].Abstract {
			out = append(out, n)
		}
	}
	return out
}

// VarMap assigns propositional variables to feature names (optionally
// suffixed, for multi-product copies).
type VarMap struct {
	pool  *logic.Pool
	vars  map[string]logic.Var
	names map[logic.Var]string
}

// NewVarMap returns a variable map drawing fresh variables from pool.
func NewVarMap(pool *logic.Pool) *VarMap {
	return &VarMap{
		pool:  pool,
		vars:  make(map[string]logic.Var),
		names: make(map[logic.Var]string),
	}
}

// Var returns (allocating on first use) the variable for a name.
func (vm *VarMap) Var(name string) logic.Var {
	if v, ok := vm.vars[name]; ok {
		return v
	}
	v := vm.pool.Fresh()
	vm.vars[name] = v
	vm.names[v] = name
	return v
}

// Lookup returns the variable for name if it was allocated.
func (vm *VarMap) Lookup(name string) (logic.Var, bool) {
	v, ok := vm.vars[name]
	return v, ok
}

// Name returns the name for a variable if known.
func (vm *VarMap) Name(v logic.Var) (string, bool) {
	n, ok := vm.names[v]
	return n, ok
}

// Names returns the var→name map (for diagnostics).
func (vm *VarMap) Names() map[logic.Var]string {
	out := make(map[logic.Var]string, len(vm.names))
	for v, n := range vm.names {
		out[v] = n
	}
	return out
}

// ToFormula translates the model into propositional logic with the
// standard FODA semantics [Kang et al. 1990; Batory 2005]:
//
//   - the root feature is always selected,
//   - every child implies its parent,
//   - a mandatory child is implied by its parent,
//   - an OR group requires at least one child when the parent holds,
//   - a XOR group requires exactly one child when the parent holds,
//   - cross-tree constraints hold.
//
// Variables for feature f are drawn as vm.Var(prefix + f.Name).
//
// An error is returned when a cross-tree constraint references a
// feature missing from the model — possible only for a Model assembled
// by hand instead of through NewModel (which validates references).
// MustToFormula panics instead, for callers that know the model is
// well-formed.
func (m *Model) ToFormula(vm *VarMap, prefix string) (*logic.Formula, error) {
	var parts []*logic.Formula
	v := func(name string) *logic.Formula { return logic.V(vm.Var(prefix + name)) }

	parts = append(parts, v(m.Root.Name))

	var walk func(f *Feature)
	walk = func(f *Feature) {
		pf := v(f.Name)
		childVars := make([]*logic.Formula, len(f.Children))
		for i, c := range f.Children {
			cf := v(c.Name)
			childVars[i] = cf
			parts = append(parts, logic.Implies(cf, pf)) // child -> parent
		}
		switch f.Group {
		case GroupOr:
			if len(f.Children) > 0 {
				parts = append(parts, logic.Implies(pf, logic.Or(childVars...)))
			}
		case GroupXor:
			if len(f.Children) > 0 {
				parts = append(parts, logic.Implies(pf, logic.Or(childVars...)))
				parts = append(parts, logic.AtMostOne(childVars...))
			}
		default: // GroupAnd
			for i, c := range f.Children {
				if c.Mandatory {
					parts = append(parts, logic.Implies(pf, childVars[i]))
				}
			}
		}
		for _, c := range f.Children {
			walk(c)
		}
	}
	walk(m.Root)

	for _, c := range m.Constraints {
		f, err := c.ToFormula(func(name string) (logic.Var, bool) {
			if _, ok := m.features[name]; !ok {
				return 0, false
			}
			return vm.Var(prefix + name), true
		})
		if err != nil {
			// Reachable only for models not built via NewModel; return
			// the error instead of panicking so a malformed model cannot
			// crash a server goroutine.
			return nil, fmt.Errorf("featmodel: %w", err)
		}
		parts = append(parts, f)
	}
	return logic.And(parts...), nil
}

// MustToFormula is ToFormula for models known to be well-formed (built
// via NewModel); it panics on the error path.
func (m *Model) MustToFormula(vm *VarMap, prefix string) *logic.Formula {
	f, err := m.ToFormula(vm, prefix)
	if err != nil {
		panic(err)
	}
	return f
}

// Configuration is a set of selected feature names.
type Configuration map[string]bool

// ConfigOf builds a Configuration from a list of names.
func ConfigOf(names ...string) Configuration {
	c := make(Configuration, len(names))
	for _, n := range names {
		c[n] = true
	}
	return c
}

// Sorted returns the selected names sorted lexicographically.
func (c Configuration) Sorted() []string {
	out := make([]string, 0, len(c))
	for n, sel := range c {
		if sel {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
