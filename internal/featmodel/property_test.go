package featmodel

import (
	"math/rand"
	"testing"

	"llhsc/internal/logic"
)

// bruteForceProducts enumerates valid products of a model by exhaustive
// assignment over all features (usable for <= ~16 features).
func bruteForceProducts(t *testing.T, m *Model) [][]string {
	t.Helper()
	names := m.Names()
	if len(names) > 16 {
		t.Fatalf("model too large for brute force: %d features", len(names))
	}
	pool := logic.NewPool()
	vm := NewVarMap(pool)
	f := m.MustToFormula(vm, "")

	var out [][]string
	for mask := uint64(0); mask < 1<<uint(len(names)); mask++ {
		env := make(map[logic.Var]bool, len(names))
		var selected []string
		for i, name := range names {
			v := vm.Var(name)
			if mask&(1<<uint(i)) != 0 {
				env[v] = true
				selected = append(selected, name)
			}
		}
		if f.Eval(env) {
			out = append(out, selected)
		}
	}
	return out
}

// randomSmallModel builds a deterministic random model with at most 12
// features for brute-force comparison.
func randomSmallModel(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	nameID := 0
	nextName := func() string {
		nameID++
		return "f" + string(rune('a'+nameID/10)) + string(rune('0'+nameID%10))
	}
	root := &Feature{Name: "root", Group: GroupAnd}
	count := 1
	var build func(parent *Feature, budget int) int
	build = func(parent *Feature, budget int) int {
		if budget <= 0 {
			return 0
		}
		nc := 1 + rng.Intn(3)
		if nc > budget {
			nc = budget
		}
		switch rng.Intn(3) {
		case 0:
			parent.Group = GroupOr
		case 1:
			parent.Group = GroupXor
		default:
			parent.Group = GroupAnd
		}
		used := 0
		for i := 0; i < nc; i++ {
			c := &Feature{Name: nextName(), Group: GroupAnd}
			if parent.Group == GroupAnd && rng.Intn(2) == 0 {
				c.Mandatory = true
			}
			if rng.Intn(4) == 0 {
				c.Abstract = true
			}
			parent.Children = append(parent.Children, c)
			used++
			if rng.Intn(2) == 0 && budget-used > 0 {
				used += build(c, (budget-used)/2)
			}
		}
		return used
	}
	count += build(root, 9)
	_ = count

	// gather leaves for a couple of constraints
	var names []string
	var walk func(f *Feature)
	walk = func(f *Feature) {
		if f.Name != "root" {
			names = append(names, f.Name)
		}
		for _, c := range f.Children {
			walk(c)
		}
	}
	walk(root)
	var constraints []*Expr
	if len(names) >= 2 {
		for i := 0; i < 2; i++ {
			a := names[rng.Intn(len(names))]
			b := names[rng.Intn(len(names))]
			if a == b {
				continue
			}
			if rng.Intn(2) == 0 {
				constraints = append(constraints, Implies(Var(a), Var(b)))
			} else {
				constraints = append(constraints, Implies(Var(a), Not(Var(b))))
			}
		}
	}
	m, err := NewModel(root, constraints...)
	if err != nil {
		panic(err)
	}
	return m
}

func TestPropertyCountAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		m := randomSmallModel(seed)
		if len(m.Names()) > 14 {
			continue
		}
		want := len(bruteForceProducts(t, m))
		got, complete := NewAnalyzer(m).CountProducts(0)
		if !complete {
			t.Fatalf("seed %d: counting incomplete", seed)
		}
		if got != want {
			t.Errorf("seed %d: CountProducts = %d, brute force = %d\nmodel:\n%s",
				seed, got, want, m.Format())
		}
	}
}

func TestPropertyEnumerationMatchesValidity(t *testing.T) {
	for seed := int64(40); seed < 60; seed++ {
		m := randomSmallModel(seed)
		a := NewAnalyzer(m)
		products, complete := a.EnumerateProducts(0)
		if !complete {
			t.Fatalf("seed %d: enumeration incomplete", seed)
		}
		for _, p := range products {
			if !a.IsValid(ConfigOf(p...)) {
				t.Errorf("seed %d: enumerated product %v rejected by IsValid", seed, p)
			}
		}
		// spot-check some invalid configurations
		rng := rand.New(rand.NewSource(seed))
		names := m.Names()
		for i := 0; i < 10; i++ {
			mask := rng.Uint64() & (1<<uint(len(names)) - 1)
			cfg := make(Configuration)
			var sorted []string
			for j, n := range names {
				if mask&(1<<uint(j)) != 0 {
					cfg[n] = true
					sorted = append(sorted, n)
				}
			}
			inEnum := false
			for _, p := range products {
				if equalStrings(p, sortedCopy(sorted)) {
					inEnum = true
					break
				}
			}
			if got := a.IsValid(cfg); got != inEnum {
				t.Errorf("seed %d: IsValid(%v) = %v but enumeration says %v",
					seed, sorted, got, inEnum)
			}
		}
	}
}

func TestPropertyDeadAndCoreConsistent(t *testing.T) {
	for seed := int64(60); seed < 80; seed++ {
		m := randomSmallModel(seed)
		a := NewAnalyzer(m)
		if a.IsVoid() {
			continue
		}
		products, _ := NewAnalyzer(m).EnumerateProducts(0)
		inSome := make(map[string]bool)
		inAll := make(map[string]int)
		for _, p := range products {
			for _, f := range p {
				inSome[f] = true
				inAll[f]++
			}
		}
		for _, d := range a.DeadFeatures() {
			if inSome[d] {
				t.Errorf("seed %d: dead feature %s appears in a product", seed, d)
			}
		}
		for _, c := range a.CoreFeatures() {
			if inAll[c] != len(products) {
				t.Errorf("seed %d: core feature %s missing from some product", seed, c)
			}
		}
	}
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
