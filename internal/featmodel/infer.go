package featmodel

import (
	"fmt"
	"sort"

	"llhsc/internal/dts"
)

// InferOptions tunes feature-model inference from a DTS (Section III-A
// of the paper: "We can automatically extract the set of features from
// the DTS to define the product line").
type InferOptions struct {
	// RootName names the root feature; defaults to the root node's
	// compatible string (its vendor-stripped product part) or
	// "CustomSBC" when absent.
	RootName string
	// GroupThreshold is the minimum number of same-base-name sibling
	// device nodes that are folded under an abstract group feature
	// (default 2).
	GroupThreshold int
	// OptionalGroups makes device-class group features (like "uarts")
	// optional instead of mandatory. The default (mandatory groups)
	// matches the paper's Fig. 1a count of 12 valid products, which
	// requires at least one UART in every product; see EXPERIMENTS.md
	// E2 for the discussion of the text/count discrepancy.
	OptionalGroups bool
}

// InferFromDTS derives a feature model from a DeviceTree:
//
//   - every top-level device node becomes a feature,
//   - memory nodes are mandatory (a board cannot boot without them),
//   - the cpus node becomes a mandatory abstract feature whose cpu
//     children form a XOR group of Exclusive features (one CPU per VM,
//     each CPU at most one VM — static partitioning, Section IV-A),
//   - device classes with several instances (e.g. two UARTs) fold into
//     an abstract group feature with OR semantics,
//   - remaining devices become optional features.
//
// Feature names use node labels when present (uart0), node names
// otherwise (cpu@0, memory).
func InferFromDTS(tree *dts.Tree, opts InferOptions) (*Model, error) {
	if opts.GroupThreshold <= 0 {
		opts.GroupThreshold = 2
	}
	rootName := opts.RootName
	if rootName == "" {
		rootName = "CustomSBC"
		if compat := tree.Root.Compatible(); len(compat) > 0 {
			rootName = compat[0]
		}
	}
	root := &Feature{Name: rootName, Abstract: true, Group: GroupAnd}

	featureName := func(n *dts.Node) string {
		if n.Label != "" {
			return n.Label
		}
		return n.Name
	}

	// bucket top-level device nodes by base name
	type bucket struct {
		base  string
		nodes []*dts.Node
	}
	var order []string
	buckets := make(map[string]*bucket)
	for _, n := range tree.Root.Children {
		base := n.BaseName()
		b, ok := buckets[base]
		if !ok {
			b = &bucket{base: base}
			buckets[base] = b
			order = append(order, base)
		}
		b.nodes = append(b.nodes, n)
	}
	sort.Strings(order)

	for _, base := range order {
		b := buckets[base]
		switch {
		case base == "cpus":
			cpusNode := b.nodes[0]
			cpus := &Feature{Name: "cpus", Abstract: true, Mandatory: true, Group: GroupXor}
			for _, cpu := range cpusNode.Children {
				cpus.Children = append(cpus.Children, &Feature{
					Name: featureName(cpu), Group: GroupAnd, Exclusive: true,
				})
			}
			if len(cpus.Children) == 0 {
				return nil, fmt.Errorf("featmodel: cpus node has no cpu children")
			}
			root.Children = append(root.Children, cpus)

		case base == "memory":
			for _, n := range b.nodes {
				root.Children = append(root.Children, &Feature{
					Name: featureName(n), Mandatory: true, Group: GroupAnd,
				})
			}

		case len(b.nodes) >= opts.GroupThreshold:
			group := &Feature{
				Name:      base + "s",
				Abstract:  true,
				Mandatory: !opts.OptionalGroups,
				Group:     GroupOr,
			}
			for _, n := range b.nodes {
				group.Children = append(group.Children, &Feature{
					Name: featureName(n), Group: GroupAnd,
				})
			}
			root.Children = append(root.Children, group)

		default:
			for _, n := range b.nodes {
				root.Children = append(root.Children, &Feature{
					Name: featureName(n), Group: GroupAnd,
				})
			}
		}
	}
	return NewModel(root)
}

// AddVirtualGroup extends a model (typically an inferred one) with an
// abstract optional group of virtual device features, as the paper does
// for vEthernet (Section III-A: virtual devices cannot appear in the
// core DTS, so they enter through the feature model and deltas).
// It returns a new Model; the receiver is not modified.
func (m *Model) AddVirtualGroup(groupName string, kind GroupKind, memberNames []string, constraints ...*Expr) (*Model, error) {
	rootCopy := cloneFeature(m.Root)
	group := &Feature{Name: groupName, Abstract: true, Group: kind}
	for _, name := range memberNames {
		group.Children = append(group.Children, &Feature{Name: name, Group: GroupAnd})
	}
	rootCopy.Children = append(rootCopy.Children, group)
	all := append(append([]*Expr(nil), m.Constraints...), constraints...)
	return NewModel(rootCopy, all...)
}

func cloneFeature(f *Feature) *Feature {
	c := &Feature{
		Name: f.Name, Abstract: f.Abstract, Mandatory: f.Mandatory,
		Exclusive: f.Exclusive, Group: f.Group,
	}
	for _, ch := range f.Children {
		c.Children = append(c.Children, cloneFeature(ch))
	}
	return c
}
