package baogen

import (
	"fmt"
	"strings"
)

// This file generates Jailhouse cell configurations, covering the
// paper's remark that partitioning hypervisors "like Jailhouse can also
// be supported" (Section I). Jailhouse structures partitions as a root
// cell (all hardware) plus one non-root cell per guest; memory regions
// and devices map to JAILHOUSE_MEM_* flagged regions.

// JailhouseMemFlags are the access flags of a jailhouse memory region.
type JailhouseMemFlags struct {
	Read    bool
	Write   bool
	Execute bool
	IO      bool
}

func (f JailhouseMemFlags) String() string {
	var parts []string
	if f.Read {
		parts = append(parts, "JAILHOUSE_MEM_READ")
	}
	if f.Write {
		parts = append(parts, "JAILHOUSE_MEM_WRITE")
	}
	if f.Execute {
		parts = append(parts, "JAILHOUSE_MEM_EXECUTE")
	}
	if f.IO {
		parts = append(parts, "JAILHOUSE_MEM_IO")
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " | ")
}

// RenderJailhouseCellC renders one VM as a Jailhouse non-root cell
// configuration C file.
func RenderJailhouseCellC(vm *VM) string {
	var b strings.Builder
	b.WriteString("#include <jailhouse/cell-config.h>\n\n")
	b.WriteString("struct {\n")
	b.WriteString("\tstruct jailhouse_cell_desc cell;\n")
	fmt.Fprintf(&b, "\t__u64 cpus[1];\n")
	fmt.Fprintf(&b, "\tstruct jailhouse_memory mem_regions[%d];\n",
		len(vm.Regions)+len(vm.Devices)+len(vm.IPCs))
	b.WriteString("} __attribute__((packed)) config = {\n")

	b.WriteString("\t.cell = {\n")
	b.WriteString("\t\t.signature = JAILHOUSE_CELL_DESC_SIGNATURE,\n")
	b.WriteString("\t\t.revision = JAILHOUSE_CONFIG_REVISION,\n")
	fmt.Fprintf(&b, "\t\t.name = %q,\n", vm.Name)
	b.WriteString("\t\t.flags = JAILHOUSE_CELL_PASSIVE_COMMREG,\n")
	b.WriteString("\t\t.cpu_set_size = sizeof(config.cpus),\n")
	b.WriteString("\t\t.num_memory_regions = ARRAY_SIZE(config.mem_regions),\n")
	b.WriteString("\t},\n\n")

	fmt.Fprintf(&b, "\t.cpus = {0b%b},\n\n", vm.CPUAffinity)

	b.WriteString("\t.mem_regions = {\n")
	ram := JailhouseMemFlags{Read: true, Write: true, Execute: true}
	dev := JailhouseMemFlags{Read: true, Write: true, IO: true}
	shared := JailhouseMemFlags{Read: true, Write: true}
	for _, r := range vm.Regions {
		writeJailhouseRegion(&b, "RAM", r.Base, r.Base, r.Size, ram.String())
	}
	for _, d := range vm.Devices {
		writeJailhouseRegion(&b, "device", d.PA, d.VA, d.Size, dev.String())
	}
	for _, ipc := range vm.IPCs {
		writeJailhouseRegion(&b, fmt.Sprintf("ipc shmem %d", ipc.ShmemID),
			ipc.Base, ipc.Base, ipc.Size,
			shared.String()+" | JAILHOUSE_MEM_ROOTSHARED")
	}
	b.WriteString("\t},\n")
	b.WriteString("};\n")
	return b.String()
}

func writeJailhouseRegion(b *strings.Builder, comment string, phys, virt, size uint64, flags string) {
	fmt.Fprintf(b, "\t\t/* %s */ {\n", comment)
	fmt.Fprintf(b, "\t\t\t.phys_start = 0x%x,\n", phys)
	fmt.Fprintf(b, "\t\t\t.virt_start = 0x%x,\n", virt)
	fmt.Fprintf(b, "\t\t\t.size = 0x%x,\n", size)
	fmt.Fprintf(b, "\t\t\t.flags = %s,\n", flags)
	b.WriteString("\t\t},\n")
}

// RenderJailhouseRootC renders the platform as the Jailhouse root-cell
// (system) configuration.
func RenderJailhouseRootC(p *Platform) string {
	var b strings.Builder
	b.WriteString("#include <jailhouse/cell-config.h>\n\n")
	b.WriteString("struct {\n")
	b.WriteString("\tstruct jailhouse_system header;\n")
	b.WriteString("\t__u64 cpus[1];\n")
	fmt.Fprintf(&b, "\tstruct jailhouse_memory mem_regions[%d];\n", len(p.Regions)+1)
	b.WriteString("} __attribute__((packed)) config = {\n")

	b.WriteString("\t.header = {\n")
	b.WriteString("\t\t.signature = JAILHOUSE_SYSTEM_SIGNATURE,\n")
	b.WriteString("\t\t.revision = JAILHOUSE_CONFIG_REVISION,\n")
	b.WriteString("\t\t.root_cell = {\n")
	b.WriteString("\t\t\t.name = \"root\",\n")
	b.WriteString("\t\t\t.cpu_set_size = sizeof(config.cpus),\n")
	b.WriteString("\t\t\t.num_memory_regions = ARRAY_SIZE(config.mem_regions),\n")
	b.WriteString("\t\t},\n")
	b.WriteString("\t},\n\n")

	mask := uint64(1)<<uint(p.CPUNum) - 1
	fmt.Fprintf(&b, "\t.cpus = {0b%b},\n\n", mask)

	b.WriteString("\t.mem_regions = {\n")
	ram := JailhouseMemFlags{Read: true, Write: true, Execute: true}
	dev := JailhouseMemFlags{Read: true, Write: true, IO: true}
	for _, r := range p.Regions {
		writeJailhouseRegion(&b, "RAM", r.Base, r.Base, r.Size, ram.String())
	}
	if p.ConsoleBase != 0 {
		writeJailhouseRegion(&b, "console", p.ConsoleBase, p.ConsoleBase, 0x1000, dev.String())
	}
	b.WriteString("\t},\n")
	b.WriteString("};\n")
	return b.String()
}
