// Package baogen generates configuration artifacts for the Bao
// static-partitioning hypervisor from checked DeviceTrees, performing
// the source-to-source transformation of Section III-B: a platform
// description C file (the paper's Listing 3) from the platform DTS and
// a VM-list configuration C file (Listing 6) from the per-VM DTSs. A
// QEMU invocation synthesizer covers the paper's note that the
// generated configurations also serve other virtualization solutions.
package baogen

import (
	"fmt"
	"sort"
	"strings"

	"llhsc/internal/addr"
	"llhsc/internal/dts"
)

// MemRegion is one physical memory region.
type MemRegion struct {
	Base uint64
	Size uint64
}

// Cluster is one CPU cluster.
type Cluster struct {
	CoreNum int
}

// Platform is the hypervisor platform description (Listing 3).
type Platform struct {
	CPUNum      int
	Regions     []MemRegion
	ConsoleBase uint64
	Clusters    []Cluster
}

// DevRegion is a pass-through device mapping in a VM configuration.
type DevRegion struct {
	PA   uint64
	VA   uint64
	Size uint64
}

// IPC is an inter-VM communication object (the virtual Ethernet
// devices of the running example map to these).
type IPC struct {
	Base    uint64
	Size    uint64
	ShmemID int
}

// Shmem is a shared-memory object backing an IPC.
type Shmem struct {
	Size uint64
}

// VM is one guest's configuration (one entry of Listing 6's vmlist).
type VM struct {
	Name        string
	ImageBase   uint64
	Entry       uint64
	CPUAffinity uint64 // bitmask over physical CPUs
	CPUNum      int
	Regions     []MemRegion
	Devices     []DevRegion
	IPCs        []IPC
}

// Config is the complete hypervisor configuration: the VM list plus the
// shared-memory objects referenced by the VMs' IPCs.
type Config struct {
	VMs    []*VM
	Shmems []Shmem
}

// PlatformFromTree extracts the platform description from the platform
// DTS (the union product of Section III-A).
func PlatformFromTree(tree *dts.Tree) (*Platform, error) {
	p := &Platform{}

	if cpus := tree.Lookup("/cpus"); cpus != nil {
		n := 0
		for _, c := range cpus.Children {
			if c.BaseName() == "cpu" {
				n++
			}
		}
		p.CPUNum = n
		if n > 0 {
			p.Clusters = []Cluster{{CoreNum: n}}
		}
	}
	if p.CPUNum == 0 {
		return nil, fmt.Errorf("baogen: platform has no CPUs")
	}

	regions, err := addr.CollectRegions(tree)
	if err != nil {
		return nil, fmt.Errorf("baogen: %w", err)
	}
	var consoles []uint64
	for _, r := range regions {
		switch {
		case r.Kind == addr.KindMemory:
			p.Regions = append(p.Regions, MemRegion{Base: r.Base, Size: r.Size})
		case strings.HasPrefix(r.Path, "/uart"):
			consoles = append(consoles, r.Base)
		}
	}
	if len(p.Regions) == 0 {
		return nil, fmt.Errorf("baogen: platform has no memory regions")
	}
	sort.Slice(p.Regions, func(i, j int) bool { return p.Regions[i].Base < p.Regions[j].Base })
	if len(consoles) > 0 {
		sort.Slice(consoles, func(i, j int) bool { return consoles[i] < consoles[j] })
		p.ConsoleBase = consoles[0]
	}
	return p, nil
}

// VMFromTree extracts one VM's configuration from its product DTS.
// Physical CPU numbers for the affinity mask come from the cpu nodes'
// reg identifiers. Virtual Ethernet nodes become IPC objects whose
// shmem id is the veth's id property.
func VMFromTree(name string, tree *dts.Tree) (*VM, error) {
	vm := &VM{Name: name}

	if cpus := tree.Lookup("/cpus"); cpus != nil {
		for _, c := range cpus.Children {
			if c.BaseName() != "cpu" {
				continue
			}
			vm.CPUNum++
			if id, ok := c.CellValue("reg"); ok {
				vm.CPUAffinity |= 1 << uint(id)
			}
		}
	}
	if vm.CPUNum == 0 {
		return nil, fmt.Errorf("baogen: VM %s has no CPUs", name)
	}

	regions, err := addr.CollectRegions(tree)
	if err != nil {
		return nil, fmt.Errorf("baogen: VM %s: %w", name, err)
	}
	for _, r := range regions {
		switch {
		case r.Kind == addr.KindMemory:
			vm.Regions = append(vm.Regions, MemRegion{Base: r.Base, Size: r.Size})
		case r.Kind == addr.KindVirtual:
			node := tree.Lookup(r.Path)
			id := 0
			if node != nil {
				if v, ok := node.CellValue("id"); ok {
					id = int(v)
				}
			}
			vm.IPCs = append(vm.IPCs, IPC{Base: r.Base, Size: r.Size, ShmemID: id})
		default:
			vm.Devices = append(vm.Devices, DevRegion{PA: r.Base, VA: r.Base, Size: r.Size})
		}
	}
	if len(vm.Regions) == 0 {
		return nil, fmt.Errorf("baogen: VM %s has no memory regions", name)
	}
	sort.Slice(vm.Regions, func(i, j int) bool { return vm.Regions[i].Base < vm.Regions[j].Base })
	sort.Slice(vm.Devices, func(i, j int) bool { return vm.Devices[i].PA < vm.Devices[j].PA })
	sort.Slice(vm.IPCs, func(i, j int) bool { return vm.IPCs[i].Base < vm.IPCs[j].Base })
	vm.ImageBase = vm.Regions[0].Base
	vm.Entry = vm.Regions[0].Base
	return vm, nil
}

// NewConfig assembles the full hypervisor configuration, deriving the
// shared-memory list from the VMs' IPC ids (one shmem per distinct id,
// sized like the largest IPC window that references it).
func NewConfig(vms []*VM) *Config {
	maxID := -1
	sizes := make(map[int]uint64)
	for _, vm := range vms {
		for _, ipc := range vm.IPCs {
			if ipc.ShmemID > maxID {
				maxID = ipc.ShmemID
			}
			if ipc.Size > sizes[ipc.ShmemID] {
				sizes[ipc.ShmemID] = ipc.Size
			}
		}
	}
	cfg := &Config{VMs: vms}
	for id := 0; id <= maxID; id++ {
		cfg.Shmems = append(cfg.Shmems, Shmem{Size: sizes[id]})
	}
	return cfg
}

// RenderPlatformC renders the platform description in the format of the
// paper's Listing 3.
func (p *Platform) RenderPlatformC() string {
	var b strings.Builder
	b.WriteString("#include <platform.h>\n\n")
	b.WriteString("struct platform_desc platform = {\n")
	fmt.Fprintf(&b, "  .cpu_num = %d,\n", p.CPUNum)
	fmt.Fprintf(&b, "  .region_num = %d,\n", len(p.Regions))
	b.WriteString("  .regions =  (struct mem_region[]) {\n")
	for _, r := range p.Regions {
		fmt.Fprintf(&b, "    { .base = 0x%x, .size = 0x%x },\n", r.Base, r.Size)
	}
	b.WriteString("  },\n\n")
	if p.ConsoleBase != 0 {
		fmt.Fprintf(&b, "  .console = { .base = 0x%x },\n\n", p.ConsoleBase)
	}
	b.WriteString("  .arch = {\n")
	b.WriteString("    .clusters =  {\n")
	coreNums := make([]string, len(p.Clusters))
	for i, c := range p.Clusters {
		coreNums[i] = fmt.Sprintf("%d", c.CoreNum)
	}
	fmt.Fprintf(&b, "      .num = %d, .core_num = (uint8_t[]) {%s}\n",
		len(p.Clusters), strings.Join(coreNums, ", "))
	b.WriteString("    },\n")
	b.WriteString("  }\n")
	b.WriteString("};\n")
	return b.String()
}

// RenderConfigC renders the VM-list configuration in the format of the
// paper's Listing 6.
func (c *Config) RenderConfigC() string {
	var b strings.Builder
	b.WriteString("#include <config.h>\n\n")
	for _, vm := range c.VMs {
		fmt.Fprintf(&b, "VM_IMAGE(%s, %simage.bin);\n", vm.Name, vm.Name)
	}
	b.WriteString("\nstruct config config = {\n")
	b.WriteString("  CONFIG_HEADER\n")
	fmt.Fprintf(&b, "  .vmlist_size = %d,\n", len(c.VMs))
	b.WriteString("  .vmlist = {\n")
	for _, vm := range c.VMs {
		b.WriteString("    {\n")
		b.WriteString("      .image = {\n")
		fmt.Fprintf(&b, "        .base_addr = 0x%x,\n", vm.ImageBase)
		fmt.Fprintf(&b, "        .load_addr = VM_IMAGE_OFFSET(%s),\n", vm.Name)
		fmt.Fprintf(&b, "        .size = VM_IMAGE_SIZE(%s)\n", vm.Name)
		b.WriteString("      },\n")
		fmt.Fprintf(&b, "      .entry = 0x%x,\n", vm.Entry)
		fmt.Fprintf(&b, "      .cpu_affinity = 0b%b,\n", vm.CPUAffinity)
		fmt.Fprintf(&b, "      .platform = { .cpu_num = %d, .dev_num = %d,\n", vm.CPUNum, len(vm.Devices))
		fmt.Fprintf(&b, "        .region_num = %d,\n", len(vm.Regions))
		b.WriteString("        .regions =  (struct mem_region[]) {\n")
		for _, r := range vm.Regions {
			fmt.Fprintf(&b, "          { .base = 0x%x, .size = 0x%x },\n", r.Base, r.Size)
		}
		b.WriteString("        },\n")
		if len(vm.Devices) > 0 {
			b.WriteString("        .devs =  (struct dev_region[]) {\n")
			for _, d := range vm.Devices {
				fmt.Fprintf(&b, "          { .pa = 0x%x, .va = 0x%x, .size = 0x%x },\n",
					d.PA, d.VA, d.Size)
			}
			b.WriteString("        },\n")
		}
		if len(vm.IPCs) > 0 {
			fmt.Fprintf(&b, "        .ipc_num = %d,\n", len(vm.IPCs))
			b.WriteString("        .ipcs =  (struct ipc[]) {\n")
			for _, ipc := range vm.IPCs {
				fmt.Fprintf(&b, "          { .base = 0x%x, .size = 0x%x, .shmem_id = %d },\n",
					ipc.Base, ipc.Size, ipc.ShmemID)
			}
			b.WriteString("        },\n")
		}
		b.WriteString("      },\n")
		b.WriteString("    },\n")
	}
	b.WriteString("  },\n")
	if len(c.Shmems) > 0 {
		fmt.Fprintf(&b, "  .shmemlist_size = %d,\n", len(c.Shmems))
		b.WriteString("  .shmemlist = (struct shmem[]) {\n")
		for i, s := range c.Shmems {
			fmt.Fprintf(&b, "    [%d] = { .size = 0x%08x },\n", i, s.Size)
		}
		b.WriteString("  },\n")
	}
	b.WriteString("};\n")
	return b.String()
}

// QEMUArgs synthesizes a qemu-system invocation matching the platform,
// covering the paper's claim that the generated configurations can also
// drive QEMU-based virtual platforms (Section V).
func QEMUArgs(p *Platform, arch string) []string {
	var total uint64
	for _, r := range p.Regions {
		total += r.Size
	}
	machine := "virt"
	bin := "qemu-system-aarch64"
	cpu := "cortex-a53"
	if arch == "rv64" {
		bin = "qemu-system-riscv64"
		cpu = "rv64"
	}
	return []string{
		bin,
		"-machine", machine,
		"-cpu", cpu,
		"-smp", fmt.Sprintf("%d", p.CPUNum),
		"-m", fmt.Sprintf("%dM", total/(1024*1024)),
		"-nographic",
		"-serial", "mon:stdio",
	}
}
