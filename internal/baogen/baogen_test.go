package baogen

import (
	"strings"
	"testing"

	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/runningexample"
)

// vm1Tree builds the VM1 product DTS (Fig. 1b applied to Listing 1).
func productTree(t *testing.T, cfg featmodel.Configuration) *dts.Tree {
	t.Helper()
	core, err := runningexample.Tree()
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := runningexample.Deltas()
	if err != nil {
		t.Fatal(err)
	}
	product, _, err := deltas.Apply(core, cfg)
	if err != nil {
		t.Fatalf("apply deltas: %v", err)
	}
	return product
}

func TestPlatformFromRunningExample(t *testing.T) {
	// platform = union of both VM products (all features selected)
	union := featmodel.PlatformUnion([]featmodel.Configuration{
		runningexample.VM1Config(), runningexample.VM2Config(),
	})
	tree := productTree(t, union)
	p, err := PlatformFromTree(tree)
	if err != nil {
		t.Fatalf("PlatformFromTree: %v", err)
	}
	// Listing 3: two CPUs, two memory regions, console at the first
	// uart, one 2-core cluster.
	if p.CPUNum != 2 {
		t.Errorf("cpu_num = %d, want 2", p.CPUNum)
	}
	if len(p.Regions) != 2 ||
		p.Regions[0] != (MemRegion{Base: 0x40000000, Size: 0x20000000}) ||
		p.Regions[1] != (MemRegion{Base: 0x60000000, Size: 0x20000000}) {
		t.Errorf("regions = %+v", p.Regions)
	}
	if p.ConsoleBase != 0x20000000 {
		t.Errorf("console = %#x, want 0x20000000", p.ConsoleBase)
	}
	if len(p.Clusters) != 1 || p.Clusters[0].CoreNum != 2 {
		t.Errorf("clusters = %+v", p.Clusters)
	}

	c := p.RenderPlatformC()
	for _, want := range []string{
		"#include <platform.h>",
		"struct platform_desc platform",
		".cpu_num = 2",
		".region_num = 2",
		"{ .base = 0x40000000, .size = 0x20000000 }",
		"{ .base = 0x60000000, .size = 0x20000000 }",
		".console = { .base = 0x20000000 }",
		".num = 1, .core_num = (uint8_t[]) {2}",
	} {
		if !strings.Contains(c, want) {
			t.Errorf("platform C missing %q:\n%s", want, c)
		}
	}
}

func TestVMFromRunningExampleProducts(t *testing.T) {
	vm1Tree := productTree(t, runningexample.VM1Config())
	vm1, err := VMFromTree("vm1", vm1Tree)
	if err != nil {
		t.Fatalf("VMFromTree: %v", err)
	}
	if vm1.CPUNum != 1 || vm1.CPUAffinity != 0b01 {
		t.Errorf("vm1 cpus = %d affinity = %#b", vm1.CPUNum, vm1.CPUAffinity)
	}
	if len(vm1.Regions) != 2 || vm1.Regions[0].Base != 0x40000000 {
		t.Errorf("vm1 regions = %+v", vm1.Regions)
	}
	if vm1.ImageBase != 0x40000000 || vm1.Entry != 0x40000000 {
		t.Errorf("vm1 image/entry = %#x/%#x", vm1.ImageBase, vm1.Entry)
	}
	// both uarts selected in Fig. 1b
	if len(vm1.Devices) != 2 || vm1.Devices[0].PA != 0x20000000 || vm1.Devices[1].PA != 0x30000000 {
		t.Errorf("vm1 devs = %+v", vm1.Devices)
	}
	if len(vm1.IPCs) != 1 || vm1.IPCs[0].ShmemID != 0 || vm1.IPCs[0].Base != 0x80000000 {
		t.Errorf("vm1 ipcs = %+v", vm1.IPCs)
	}

	vm2Tree := productTree(t, runningexample.VM2Config())
	vm2, err := VMFromTree("vm2", vm2Tree)
	if err != nil {
		t.Fatal(err)
	}
	if vm2.CPUAffinity != 0b10 {
		t.Errorf("vm2 affinity = %#b, want 0b10", vm2.CPUAffinity)
	}
	if len(vm2.IPCs) != 1 || vm2.IPCs[0].ShmemID != 1 || vm2.IPCs[0].Base != 0x70000000 {
		t.Errorf("vm2 ipcs = %+v", vm2.IPCs)
	}
}

func TestRenderConfigC(t *testing.T) {
	vm1Tree := productTree(t, runningexample.VM1Config())
	vm2Tree := productTree(t, runningexample.VM2Config())
	vm1, err := VMFromTree("vm1", vm1Tree)
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := VMFromTree("vm2", vm2Tree)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig([]*VM{vm1, vm2})
	if len(cfg.Shmems) != 2 {
		t.Fatalf("shmems = %+v, want 2 (ids 0 and 1)", cfg.Shmems)
	}
	out := cfg.RenderConfigC()
	for _, want := range []string{
		"#include <config.h>",
		"VM_IMAGE(vm1, vm1image.bin);",
		"VM_IMAGE(vm2, vm2image.bin);",
		".vmlist_size = 2",
		".cpu_affinity = 0b1,",
		".cpu_affinity = 0b10,",
		".entry = 0x40000000",
		"{ .pa = 0x20000000, .va = 0x20000000, .size = 0x1000 }",
		"{ .pa = 0x30000000, .va = 0x30000000, .size = 0x1000 }",
		"{ .base = 0x80000000, .size = 0x10000000, .shmem_id = 0 }",
		"{ .base = 0x70000000, .size = 0x10000000, .shmem_id = 1 }",
		".shmemlist_size = 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("config C missing %q", want)
		}
	}
}

func TestListing6SingleVMAllResources(t *testing.T) {
	// Listing 6 in the paper: ONE VM using all hardware resources of
	// Listing 1 (no partitioning): cpu_num 2, dev_num 2, region_num 2.
	union := featmodel.PlatformUnion([]featmodel.Configuration{
		runningexample.VM1Config(), runningexample.VM2Config(),
	})
	tree := productTree(t, union)
	vm, err := VMFromTree("vm", tree)
	if err != nil {
		t.Fatal(err)
	}
	if vm.CPUNum != 2 || vm.CPUAffinity != 0b11 {
		t.Errorf("cpu_num = %d affinity = %#b, want 2 / 0b11", vm.CPUNum, vm.CPUAffinity)
	}
	if len(vm.Devices) != 2 {
		t.Errorf("dev_num = %d, want 2", len(vm.Devices))
	}
	if len(vm.Regions) != 2 {
		t.Errorf("region_num = %d, want 2", len(vm.Regions))
	}
	out := NewConfig([]*VM{vm}).RenderConfigC()
	for _, want := range []string{
		".cpu_affinity = 0b11",
		".platform = { .cpu_num = 2, .dev_num = 2,",
		".region_num = 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Listing 6 shape missing %q:\n%s", want, out)
		}
	}
}

func TestErrors(t *testing.T) {
	empty := dts.NewTree()
	if _, err := PlatformFromTree(empty); err == nil {
		t.Error("platform without CPUs should fail")
	}
	if _, err := VMFromTree("x", empty); err == nil {
		t.Error("VM without CPUs should fail")
	}

	noMem, err := dts.Parse("m.dts", `
/dts-v1/;
/ {
	cpus {
		#address-cells = <1>;
		#size-cells = <0>;
		cpu@0 { reg = <0x0>; };
	};
};
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VMFromTree("x", noMem); err == nil || !strings.Contains(err.Error(), "memory") {
		t.Errorf("err = %v, want missing-memory error", err)
	}
}

func TestQEMUArgs(t *testing.T) {
	p := &Platform{
		CPUNum:  2,
		Regions: []MemRegion{{Base: 0x40000000, Size: 0x20000000}, {Base: 0x60000000, Size: 0x20000000}},
	}
	args := QEMUArgs(p, "aarch64")
	joined := strings.Join(args, " ")
	for _, want := range []string{"qemu-system-aarch64", "-smp 2", "-m 1024M"} {
		if !strings.Contains(joined, want) {
			t.Errorf("args %q missing %q", joined, want)
		}
	}
	rv := strings.Join(QEMUArgs(p, "rv64"), " ")
	if !strings.Contains(rv, "qemu-system-riscv64") {
		t.Errorf("rv64 args = %q", rv)
	}
}
