package baogen

import (
	"strings"
	"testing"

	"llhsc/internal/featmodel"
	"llhsc/internal/runningexample"
)

func TestJailhouseCell(t *testing.T) {
	vm1Tree := productTree(t, runningexample.VM1Config())
	vm, err := VMFromTree("vm1", vm1Tree)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderJailhouseCellC(vm)
	for _, want := range []string{
		"JAILHOUSE_CELL_DESC_SIGNATURE",
		`.name = "vm1"`,
		".cpus = {0b1},",
		".phys_start = 0x40000000",
		".phys_start = 0x20000000", // uart0 device
		"JAILHOUSE_MEM_IO",
		"JAILHOUSE_MEM_ROOTSHARED", // the veth IPC window
		".phys_start = 0x80000000", // veth0
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cell config missing %q", want)
		}
	}
}

func TestJailhouseRoot(t *testing.T) {
	union := featmodel.PlatformUnion([]featmodel.Configuration{
		runningexample.VM1Config(), runningexample.VM2Config(),
	})
	tree := productTree(t, union)
	p, err := PlatformFromTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderJailhouseRootC(p)
	for _, want := range []string{
		"JAILHOUSE_SYSTEM_SIGNATURE",
		".cpus = {0b11},",
		".phys_start = 0x40000000",
		".phys_start = 0x60000000",
		"/* console */",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("root config missing %q", want)
		}
	}
}

func TestJailhouseMemFlagsString(t *testing.T) {
	tests := []struct {
		f    JailhouseMemFlags
		want string
	}{
		{JailhouseMemFlags{}, "0"},
		{JailhouseMemFlags{Read: true}, "JAILHOUSE_MEM_READ"},
		{JailhouseMemFlags{Read: true, Write: true, Execute: true},
			"JAILHOUSE_MEM_READ | JAILHOUSE_MEM_WRITE | JAILHOUSE_MEM_EXECUTE"},
		{JailhouseMemFlags{IO: true}, "JAILHOUSE_MEM_IO"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("flags %+v = %q, want %q", tt.f, got, tt.want)
		}
	}
}
