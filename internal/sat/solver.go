// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the style of MiniSat: two-watched-literal propagation,
// VSIDS variable ordering with phase saving, first-UIP conflict
// analysis with clause minimization, Luby restarts, activity-based
// learnt-clause deletion, and incremental solving under assumptions
// with failed-assumption extraction.
//
// The solver is the execution engine for every constraint family in
// llhsc: feature-model analyses, schema-derived syntactic axioms, and
// the bit-blasted bit-vector semantics checks (see internal/smt) all
// reduce to CNF solved here. The paper uses Z3, which decides the same
// fragment by bit-blasting to SAT — this package is the substituted
// back-end (DESIGN.md §2).
package sat

import (
	"fmt"
	"sort"
	"sync/atomic"

	"llhsc/internal/logic"
)

// Status is the result of a Solve call.
type Status int

// Solve outcomes.
const (
	// Sat means a satisfying assignment was found; Model/Value are valid.
	Sat Status = iota + 1
	// Unsat means the clauses (under the given assumptions, if any)
	// are unsatisfiable. If assumptions were given, FailedAssumptions
	// returns a subset sufficient for unsatisfiability.
	Unsat
	// Unknown means the solver stopped before reaching a conclusion
	// (budget exhausted).
	Unknown
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Stats reports cumulative solver statistics. The counter fields
// (Decisions, Propagations, Conflicts, Restarts) accumulate across
// Solve calls and are never reset: Solve's conflict budget is computed
// as an absolute stopping point (stats.Conflicts + Budget.MaxConflicts,
// the confLimit field), so taking snapshots between calls never
// perturbs the limit arithmetic — see TestStatsDeltaDoesNotPerturbBudget.
// Per-call numbers come from Sub over two snapshots.
type Stats struct {
	Decisions    uint64
	Propagations uint64
	Conflicts    uint64
	Restarts     uint64
	Learnts      int // currently retained learnt clauses
	Clauses      int // problem clauses
	Vars         int
}

// Sub returns the per-call delta between this snapshot and an earlier
// one: the cumulative counters are subtracted, while the point-in-time
// gauges (Learnts, Clauses, Vars) keep their current values.
func (st Stats) Sub(prev Stats) Stats {
	return Stats{
		Decisions:    st.Decisions - prev.Decisions,
		Propagations: st.Propagations - prev.Propagations,
		Conflicts:    st.Conflicts - prev.Conflicts,
		Restarts:     st.Restarts - prev.Restarts,
		Learnts:      st.Learnts,
		Clauses:      st.Clauses,
		Vars:         st.Vars,
	}
}

// Add returns the aggregate of two stats — used to sum the work of the
// many short-lived solvers one pipeline run creates. Counters and
// gauges are both summed; for gauges the result reads as "total across
// solvers", not the state of any one instance.
func (st Stats) Add(other Stats) Stats {
	return Stats{
		Decisions:    st.Decisions + other.Decisions,
		Propagations: st.Propagations + other.Propagations,
		Conflicts:    st.Conflicts + other.Conflicts,
		Restarts:     st.Restarts + other.Restarts,
		Learnts:      st.Learnts + other.Learnts,
		Clauses:      st.Clauses + other.Clauses,
		Vars:         st.Vars + other.Vars,
	}
}

// internal literal: v<<1 | sign, sign==1 means negated. Variables 0-based.
type ilit uint32

const litUndef = ilit(^uint32(0))

func mkILit(v int, neg bool) ilit {
	l := ilit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

func (l ilit) vari() int  { return int(l >> 1) }
func (l ilit) neg() ilit  { return l ^ 1 }
func (l ilit) sign() bool { return l&1 == 1 }
func (l ilit) index() int { return int(l) }
func fromLogic(l logic.Lit) ilit {
	return mkILit(int(l.Var())-1, !l.Positive())
}
func toLogic(l ilit) logic.Lit {
	v := logic.Lit(l.vari() + 1)
	if l.sign() {
		return -v
	}
	return v
}

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

type clause struct {
	lits    []ilit
	act     float64
	learnt  bool
	deleted bool
	locked  bool // transient reduceDB mark: clause is a reason right now
}

type watcher struct {
	c       *clause
	blocker ilit
}

// Solver is a CDCL SAT solver. The zero value is not usable; create
// instances with New.
type Solver struct {
	// clause database
	clauses []*clause // problem clauses
	learnts []*clause // learnt clauses

	watches [][]watcher // indexed by ilit

	// assignment
	assigns  []lbool // per var
	level    []int   // per var
	reason   []*clause
	polarity []bool // saved phase: true = last value was false (sign)
	noSaving bool   // disable phase saving (ablation; see SetPhaseSaving)
	trail    []ilit
	trailLim []int
	qhead    int

	// VSIDS
	activity []float64
	varInc   float64
	order    *varHeap

	// clause activity
	claInc float64

	// analyze temporaries
	seen        []bool
	addTmp      []ilit // AddClause normalization scratch
	analyzeBuf  []ilit // analyze learnt-clause scratch
	analyzeOrig []ilit // analyze pre-minimization copy scratch

	// arena-backed clause storage (arena.go)
	arena clauseArena

	// incremental state
	assumptions []ilit
	failed      []logic.Lit
	model       []lbool
	okay        bool // false once a top-level contradiction is found

	// learnt DB management
	maxLearnts   float64
	learntGrowth float64
	learntLits   int // total literals across retained learnt clauses

	// ConflictBudget stops Solve after this many conflicts
	// (0 = unlimited). Deprecated: prefer SetBudget(Budget{...}),
	// which also supports deadlines, memory caps and cancellation;
	// this field is honored when Budget.MaxConflicts is unset.
	ConflictBudget uint64

	// resource budget state (budget.go)
	budget      Budget
	confLimit   uint64 // absolute stats.Conflicts value to stop at (0 = none)
	interrupted atomic.Bool
	lastLimit   *LimitError

	stats Stats
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{
		varInc:       1.0,
		claInc:       1.0,
		okay:         true,
		learntGrowth: 1.1,
	}
	s.order = newVarHeap(&s.activity)
	return s
}

// NumVars returns the number of variables known to the solver.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NewVar allocates a fresh variable and returns it (1-based, as a
// logic.Var).
func (s *Solver) NewVar() logic.Var {
	s.addVarsUpTo(len(s.assigns) + 1)
	return logic.Var(len(s.assigns))
}

func (s *Solver) addVarsUpTo(n int) {
	for len(s.assigns) < n {
		s.assigns = append(s.assigns, lUndef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.polarity = append(s.polarity, true) // default phase: false
		s.activity = append(s.activity, 0)
		s.seen = append(s.seen, false)
		s.watches = append(s.watches, nil, nil)
		s.order.insert(len(s.assigns) - 1)
	}
	s.stats.Vars = len(s.assigns)
}

// AddCNF adds all clauses of the CNF, allocating variables as needed.
func (s *Solver) AddCNF(c *logic.CNF) {
	s.addVarsUpTo(c.NumVars)
	for _, cl := range c.Clauses {
		s.AddClause(cl...)
	}
}

// AddClause adds a clause over logic literals, allocating variables as
// needed. It returns false if the solver is already in an
// unsatisfiable state at the top level (including via this clause).
// Clauses may be added between Solve calls; the solver resets its
// decision stack automatically.
func (s *Solver) AddClause(lits ...logic.Lit) bool {
	if !s.okay {
		return false
	}
	s.cancelUntil(0)
	// normalize: sort, dedupe, drop false lits, detect tautology.
	// The scratch buffer is reused across calls; the literals that
	// survive are copied into the arena below, so nothing here escapes.
	tmp := s.addTmp[:0]
	defer func() { s.addTmp = tmp[:0] }()
	for _, l := range lits {
		if l == 0 {
			panic("sat: zero literal in clause")
		}
		il := fromLogic(l)
		s.addVarsUpTo(il.vari() + 1)
		tmp = append(tmp, il)
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	out := tmp[:0]
	var prev = litUndef
	for _, il := range tmp {
		if il == prev {
			continue // duplicate
		}
		if prev != litUndef && il == prev.neg() {
			return true // tautology: p | !p
		}
		switch s.litValue(il) {
		case lTrue:
			if s.level[il.vari()] == 0 {
				return true // satisfied at top level
			}
		case lFalse:
			if s.level[il.vari()] == 0 {
				prev = il
				continue // falsified at top level: drop
			}
		}
		out = append(out, il)
		prev = il
	}
	switch len(out) {
	case 0:
		s.okay = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.okay = false
			return false
		}
		return true
	}
	c := s.arena.newClause(out, false, 0)
	s.clauses = append(s.clauses, c)
	s.stats.Clauses = len(s.clauses)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	w0 := c.lits[0].neg()
	w1 := c.lits[1].neg()
	s.watches[w0.index()] = append(s.watches[w0.index()], watcher{c, c.lits[1]})
	s.watches[w1.index()] = append(s.watches[w1.index()], watcher{c, c.lits[0]})
}

func (s *Solver) litValue(l ilit) lbool {
	v := s.assigns[l.vari()]
	if v == lUndef {
		return lUndef
	}
	if l.sign() {
		return -v
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
}

func (s *Solver) uncheckedEnqueue(l ilit, from *clause) {
	v := l.vari()
	if l.sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting
// clause, or nil if no conflict was found.
func (s *Solver) propagate() *clause {
	var conflict *clause
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is now true
		s.qhead++
		s.stats.Propagations++
		if s.stats.Propagations%limitCheckInterval == 0 && s.lastLimit == nil {
			s.lastLimit = s.stopRequested()
		}
		ws := s.watches[p.index()]
		i, j := 0, 0
	nextWatcher:
		for i < len(ws) {
			w := ws[i]
			if w.c.deleted {
				i++
				continue // drop deleted clause from the list
			}
			if s.litValue(w.blocker) == lTrue {
				ws[j] = w
				j++
				i++
				continue
			}
			c := w.c
			falseLit := p.neg()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			i++
			first := c.lits[0]
			nw := watcher{c, first}
			if first != w.blocker && s.litValue(first) == lTrue {
				ws[j] = nw
				j++
				continue
			}
			// look for a new literal to watch
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nl := c.lits[1].neg()
					s.watches[nl.index()] = append(s.watches[nl.index()], nw)
					continue nextWatcher
				}
			}
			// clause is unit or conflicting under first
			ws[j] = nw
			j++
			if s.litValue(first) == lFalse {
				conflict = c
				s.qhead = len(s.trail)
				for i < len(ws) {
					ws[j] = ws[i]
					j++
					i++
				}
				break
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p.index()] = ws[:j]
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.vari()
		s.polarity[v] = l.sign() // phase saving
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	if s.qhead > len(s.trail) {
		s.qhead = len(s.trail)
	}
}

func (s *Solver) varBump(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) varDecay() { s.varInc /= 0.95 }

func (s *Solver) claBump(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, l := range s.learnts {
			l.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) claDecay() { s.claInc /= 0.999 }

// analyze performs first-UIP conflict analysis and returns the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(conflict *clause) ([]ilit, int) {
	// The returned slice aliases reusable scratch; the caller must copy
	// it (search does, into the clause arena) before the next conflict.
	learnt := append(s.analyzeBuf[:0], litUndef) // slot 0 for the asserting literal
	counter := 0
	p := litUndef
	index := len(s.trail) - 1

	c := conflict
	for {
		if c.learnt {
			s.claBump(c)
		}
		start := 0
		if p != litUndef {
			start = 1 // c.lits[0] == p for reason clauses
		}
		for k := start; k < len(c.lits); k++ {
			q := c.lits[k]
			v := q.vari()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.varBump(v)
			s.seen[v] = true
			if s.level[v] >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		for !s.seen[s.trail[index].vari()] {
			index--
		}
		p = s.trail[index]
		index--
		v := p.vari()
		c = s.reason[v]
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
	}
	learnt[0] = p.neg()

	// clause minimization: drop literals implied by the rest.
	s.analyzeBuf = learnt[:0]
	orig := append(s.analyzeOrig[:0], learnt...)
	s.analyzeOrig = orig[:0]
	j := 1
	for i := 1; i < len(learnt); i++ {
		if !s.redundant(learnt[i]) {
			learnt[j] = learnt[i]
			j++
		}
	}
	kept := learnt[:j]

	// compute backtrack level; move the max-level literal to slot 1.
	btLevel := 0
	if len(kept) > 1 {
		maxI := 1
		for i := 2; i < len(kept); i++ {
			if s.level[kept[i].vari()] > s.level[kept[maxI].vari()] {
				maxI = i
			}
		}
		kept[1], kept[maxI] = kept[maxI], kept[1]
		btLevel = s.level[kept[1].vari()]
	}

	// clear seen flags for every literal that was marked, including
	// those dropped by minimization (orig preserves them).
	for _, l := range orig {
		s.seen[l.vari()] = false
	}
	return kept, btLevel
}

// redundant reports whether learnt literal l is implied by the other
// marked literals: its reason clause must exist and every antecedent
// must be marked or at level 0. (The non-recursive "basic" form of
// MiniSat's minimization.)
func (s *Solver) redundant(l ilit) bool {
	c := s.reason[l.vari()]
	if c == nil {
		return false
	}
	for _, q := range c.lits[1:] {
		if !s.seen[q.vari()] && s.level[q.vari()] > 0 {
			return false
		}
	}
	return true
}

// analyzeFinal computes the subset of assumptions responsible for
// forcing literal p false, storing the result (as original assumption
// literals) in s.failed. p is the assumption literal that failed.
func (s *Solver) analyzeFinal(p ilit) {
	s.failed = s.failed[:0]
	s.failed = append(s.failed, toLogic(p))
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.vari()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		l := s.trail[i]
		v := l.vari()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == nil {
			// decision: under assumption-driven search all decisions
			// below the failing point are assumptions.
			s.failed = append(s.failed, toLogic(l))
		} else {
			for _, q := range s.reason[v].lits[1:] {
				if s.level[q.vari()] > 0 {
					s.seen[q.vari()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.vari()] = false
}

func (s *Solver) pickBranchLit() ilit {
	for {
		v, ok := s.order.removeMax()
		if !ok {
			return litUndef
		}
		if s.assigns[v] == lUndef {
			if s.noSaving {
				return mkILit(v, true) // static default phase: false
			}
			return mkILit(v, s.polarity[v])
		}
	}
}

// SetPhaseSaving enables or disables phase saving — branching on each
// variable's last assigned polarity rather than the static
// negative-first default. On by default. Repeated related queries (the
// assumption-based pair checks of the semantic sweep, DESIGN.md §9)
// converge far faster with it: the second solve re-decides the previous
// model instead of re-deriving it through the same conflicts. The knob
// exists for A/B measurement; production callers should leave it on.
func (s *Solver) SetPhaseSaving(on bool) { s.noSaving = !on }

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i uint64) uint64 {
	// Find the finite subsequence containing index i.
	var k uint64 = 1
	for (1<<k)-1 < i {
		k++
	}
	for (1<<k)-1 != i {
		i -= (1 << (k - 1)) - 1
		k = 1
		for (1<<k)-1 < i {
			k++
		}
	}
	return 1 << (k - 1)
}

// reduceDB removes roughly half of the learnt clauses, preferring
// low-activity ones; clauses that are reasons for current assignments
// and binary clauses are kept.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		return s.learnts[i].act < s.learnts[j].act
	})
	// Mark reason clauses in place instead of building a set — reduceDB
	// runs on the search hot path and the transient map was its only
	// allocation.
	for _, r := range s.reason {
		if r != nil {
			r.locked = true
		}
	}
	keepFrom := len(s.learnts) / 2
	kept := s.learnts[:0]
	for i, c := range s.learnts {
		if i < keepFrom && len(c.lits) > 2 && !c.locked {
			c.deleted = true // lazily removed from watch lists
			s.learntLits -= len(c.lits)
			continue
		}
		kept = append(kept, c)
	}
	s.learnts = kept
	for _, r := range s.reason {
		if r != nil {
			r.locked = false
		}
	}
}

// Solve determines satisfiability of the clause set under the given
// assumptions (which may be empty). When a budget (SetBudget /
// ConflictBudget) or external stop cuts the search short, Solve
// returns Unknown and LastLimit reports why.
func (s *Solver) Solve(assumptions ...logic.Lit) Status {
	s.lastLimit = nil
	if !s.okay {
		s.failed = nil
		return Unsat
	}
	s.cancelUntil(0)
	s.assumptions = s.assumptions[:0]
	for _, a := range assumptions {
		il := fromLogic(a)
		s.addVarsUpTo(il.vari() + 1)
		s.assumptions = append(s.assumptions, il)
	}
	s.failed = nil

	if s.maxLearnts == 0 {
		s.maxLearnts = float64(len(s.clauses))/3 + 100
	}

	// absolute conflict count at which to stop (0 = unlimited); the
	// legacy ConflictBudget field backs Budget.MaxConflicts.
	maxConf := s.budget.MaxConflicts
	if maxConf == 0 {
		maxConf = s.ConflictBudget
	}
	s.confLimit = 0
	if maxConf > 0 {
		s.confLimit = s.stats.Conflicts + maxConf
	}
	if s.lastLimit = s.stopRequested(); s.lastLimit != nil {
		return Unknown // canceled before the search started
	}

	var restartN uint64
	for {
		restartN++
		budget := luby(restartN) * 100
		st := s.search(budget)
		if st != Unknown {
			return st
		}
		if s.lastLimit != nil {
			s.cancelUntil(0)
			return Unknown
		}
		s.stats.Restarts++
		s.maxLearnts *= s.learntGrowth
		s.cancelUntil(0)
	}
}

// search runs CDCL until a result is found, budget conflicts occur
// (restart boundary), or a resource limit fires (s.lastLimit set).
func (s *Solver) search(budget uint64) Status {
	var conflicts uint64
	for {
		conflict := s.propagate()
		if s.lastLimit != nil {
			return Unknown // stop flag / deadline observed mid-propagation
		}
		if conflict != nil {
			s.stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.okay = false
				return Unsat
			}
			learnt, btLevel := s.analyze(conflict)
			// Never backtrack past the assumptions.
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				if s.decisionLevel() > 0 {
					// unit learnt while assumptions are still decided:
					// go all the way down so it persists at level 0.
					s.cancelUntil(0)
				}
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := s.arena.newClause(learnt, true, s.claInc)
				s.learnts = append(s.learnts, c)
				s.learntLits += len(c.lits)
				s.stats.Learnts = len(s.learnts)
				s.attach(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.varDecay()
			s.claDecay()
			if s.confLimit > 0 && s.stats.Conflicts >= s.confLimit {
				s.lastLimit = &LimitError{Reason: StopConflicts}
				return Unknown
			}
			if s.budget.MaxLearntLits > 0 && s.learntLits > s.budget.MaxLearntLits {
				s.lastLimit = &LimitError{Reason: StopMemory}
				return Unknown
			}
			if conflicts >= budget {
				return Unknown
			}
			continue
		}

		if float64(len(s.learnts)) >= s.maxLearnts+float64(len(s.trail)) {
			s.reduceDB()
		}

		// decide: assumptions first
		next := litUndef
		for s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.litValue(p) {
			case lTrue:
				s.newDecisionLevel() // dummy level for satisfied assumption
			case lFalse:
				s.analyzeFinal(p)
				return Unsat
			default:
				next = p
			}
			if next != litUndef {
				break
			}
		}
		if next == litUndef {
			s.stats.Decisions++
			next = s.pickBranchLit()
			if next == litUndef {
				s.extractModel()
				return Sat
			}
		} else {
			s.stats.Decisions++
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, nil)
	}
}

func (s *Solver) extractModel() {
	if cap(s.model) < len(s.assigns) {
		s.model = make([]lbool, len(s.assigns))
	}
	s.model = s.model[:len(s.assigns)]
	copy(s.model, s.assigns)
}

// Value returns the model value of variable v after a Sat result.
// Unassigned (don't-care) variables report false.
func (s *Solver) Value(v logic.Var) bool {
	i := int(v) - 1
	if i < 0 || i >= len(s.model) {
		return false
	}
	return s.model[i] == lTrue
}

// Model returns the satisfying assignment as a map after a Sat result.
func (s *Solver) Model() map[logic.Var]bool {
	m := make(map[logic.Var]bool, len(s.model))
	for i, val := range s.model {
		m[logic.Var(i+1)] = val == lTrue
	}
	return m
}

// FailedAssumptions returns, after an Unsat result of a Solve call with
// assumptions, a subset of the assumptions that is jointly
// unsatisfiable with the clause set. After an Unsat result without
// assumptions it returns nil.
func (s *Solver) FailedAssumptions() []logic.Lit {
	return append([]logic.Lit(nil), s.failed...)
}

// Okay reports whether the solver is still consistent at the top level
// (i.e. no contradiction among the added clauses alone).
func (s *Solver) Okay() bool { return s.okay }

// Stats returns a copy of the cumulative statistics — a snapshot that
// later solver activity cannot mutate. Snapshot before and after a
// Solve and use Stats.Sub for the per-call delta; snapshotting never
// affects the conflict-budget arithmetic (see the Stats doc).
func (s *Solver) Stats() Stats {
	st := s.stats
	st.Learnts = len(s.learnts)
	st.Clauses = len(s.clauses)
	return st
}
