package sat

import (
	"errors"
	"math/rand"
	"testing"

	"llhsc/internal/logic"
)

// plantedCNF generates a random 3-CNF with a hidden satisfying
// assignment: one literal per clause is forced to agree with the
// planted model, so the instance is satisfiable by construction while
// staying hard for a static false-first search whenever the model is
// far from all-false.
func plantedCNF(rng *rand.Rand, nvars, nclauses int) [][]logic.Lit {
	model := make([]bool, nvars+1)
	for v := 1; v <= nvars; v++ {
		model[v] = rng.Intn(2) == 0
	}
	cls := make([][]logic.Lit, nclauses)
	for i := range cls {
		cl := make([]logic.Lit, 3)
		for j := range cl {
			l := logic.Lit(rng.Intn(nvars) + 1)
			if rng.Intn(2) == 0 {
				l = -l
			}
			cl[j] = l
		}
		j := rng.Intn(3)
		v := int(cl[j].Var())
		if model[v] {
			cl[j] = logic.Lit(v)
		} else {
			cl[j] = -logic.Lit(v)
		}
		cls[i] = cl
	}
	return cls
}

// TestPhaseSavingConvergesRepeatedQueries is the A/B experiment behind
// DESIGN.md §9: on repeated solves whose assumptions are consistent
// with the previously found model, phase saving re-decides that model
// and converges with strictly less work than the static false-first
// default, which re-derives it through the same conflicts every time.
func TestPhaseSavingConvergesRepeatedQueries(t *testing.T) {
	const nvars, nclauses, queries = 80, 330, 25
	run := func(saving bool) (conflicts, decisions uint64) {
		rng := rand.New(rand.NewSource(7))
		s := New()
		s.SetPhaseSaving(saving)
		for _, cl := range plantedCNF(rng, nvars, nclauses) {
			s.AddClause(cl...)
		}
		if got := s.Solve(); got != Sat {
			t.Fatalf("initial Solve (saving=%v) = %v, want Sat", saving, got)
		}
		// Assumptions drawn from the model the solver itself found are
		// consistent with the clause set by construction.
		model := make([]logic.Lit, nvars)
		for v := logic.Var(1); int(v) <= nvars; v++ {
			model[v-1] = logic.Lit(v)
			if !s.Value(v) {
				model[v-1] = -model[v-1]
			}
		}
		base := s.Stats()
		for q := 0; q < queries; q++ {
			assume := []logic.Lit{model[q%nvars], model[(q*13+5)%nvars]}
			if got := s.Solve(assume...); got != Sat {
				t.Fatalf("query %d (saving=%v) = %v, want Sat", q, saving, got)
			}
		}
		st := s.Stats()
		return st.Conflicts - base.Conflicts, st.Decisions - base.Decisions
	}
	confOn, decOn := run(true)
	confOff, decOff := run(false)
	// Conflicts are the metric that matters: saving re-decides the
	// previous model conflict-free. (Decisions can go either way — the
	// static default trades decisions for conflict-driven pruning.)
	t.Logf("repeated assumption queries: saving on: %d conflicts / %d decisions; off: %d / %d",
		confOn, decOn, confOff, decOff)
	if confOn >= confOff {
		t.Errorf("conflicts with phase saving = %d, without = %d; want strictly fewer with saving",
			confOn, confOff)
	}
}

// TestFailedAssumptionsClearedOnBudgetExhaustion: a Solve stopped by
// its budget returns Unknown and must not leave a stale failed-
// assumption set from an earlier Unsat behind — Unknown carries no
// unsat core.
func TestFailedAssumptionsClearedOnBudgetExhaustion(t *testing.T) {
	s := New()
	s.AddClause(-1, 2)  // 1 -> 2
	s.AddClause(-2, -3) // 2 -> !3
	if got := s.Solve(1, 3); got != Unsat {
		t.Fatalf("Solve(1,3) = %v, want Unsat", got)
	}
	if len(s.FailedAssumptions()) == 0 {
		t.Fatal("want a non-empty failed set after the Unsat solve")
	}

	// Graft a hard pigeonhole instance onto fresh variables and
	// exhaust a one-conflict budget.
	n := 6
	v := func(p, h int) logic.Lit { return logic.Lit(10 + p*n + h) }
	for p := 0; p <= n; p++ {
		cl := make([]logic.Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = v(p, h)
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	s.SetBudget(Budget{MaxConflicts: 1})
	if got := s.Solve(1); got != Unknown {
		t.Fatalf("Solve under a 1-conflict budget = %v, want Unknown", got)
	}
	if fa := s.FailedAssumptions(); len(fa) != 0 {
		t.Errorf("FailedAssumptions after Unknown = %v, want empty", fa)
	}
	lim := s.LastLimit()
	if lim == nil || lim.Reason != StopConflicts {
		t.Errorf("LastLimit = %v, want reason %q", lim, StopConflicts)
	}
	var le *LimitError
	if !errors.As(error(lim), &le) {
		t.Errorf("LastLimit is not a *LimitError: %T", lim)
	}
}
