package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"llhsc/internal/logic"
)

// ParseDIMACS reads a CNF formula in DIMACS format ("p cnf <vars>
// <clauses>" header, clauses as zero-terminated literal lists, 'c'
// comment lines). It tolerates clauses spanning multiple lines and a
// missing/underestimated header.
func ParseDIMACS(r io.Reader) (*logic.CNF, error) {
	cnf := &logic.CNF{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var current []logic.Lit
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs line %d: malformed problem line %q", lineNum, line)
			}
			nvars, err := strconv.Atoi(fields[2])
			if err != nil || nvars < 0 {
				return nil, fmt.Errorf("dimacs line %d: bad variable count %q", lineNum, fields[2])
			}
			if nvars > cnf.NumVars {
				cnf.NumVars = nvars
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: bad literal %q", lineNum, tok)
			}
			if v == 0 {
				cnf.AddClause(current...)
				current = nil
				continue
			}
			current = append(current, logic.Lit(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(current) > 0 {
		return nil, fmt.Errorf("dimacs: final clause not terminated with 0")
	}
	return cnf, nil
}

// WriteDIMACS writes the CNF in DIMACS format.
func WriteDIMACS(w io.Writer, cnf *logic.CNF) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", cnf.NumVars, len(cnf.Clauses)); err != nil {
		return err
	}
	for _, cl := range cnf.Clauses {
		for _, l := range cl {
			if _, err := fmt.Fprintf(bw, "%d ", int(l)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SolveDIMACS is a convenience: parse, solve, and return the status
// plus (for Sat) the model as DIMACS-style literals.
func SolveDIMACS(r io.Reader) (Status, []int, error) {
	cnf, err := ParseDIMACS(r)
	if err != nil {
		return Unknown, nil, err
	}
	s := New()
	s.AddCNF(cnf)
	st := s.Solve()
	if st != Sat {
		return st, nil, nil
	}
	model := make([]int, cnf.NumVars)
	for v := 1; v <= cnf.NumVars; v++ {
		if s.Value(logic.Var(v)) {
			model[v-1] = v
		} else {
			model[v-1] = -v
		}
	}
	return st, model, nil
}

// DumpDIMACS writes the solver's current problem clauses (not learnt
// clauses) in DIMACS format — useful for debugging encodings produced
// by the SMT layer with external tools or cmd/satcheck.
func (s *Solver) DumpDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	units := 0
	for _, l := range s.trail {
		if s.level[l.vari()] == 0 {
			units++
		}
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", len(s.assigns), len(s.clauses)+units); err != nil {
		return err
	}
	// top-level facts first
	for _, l := range s.trail {
		if s.level[l.vari()] != 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d 0\n", int(toLogic(l))); err != nil {
			return err
		}
	}
	for _, c := range s.clauses {
		for _, l := range c.lits {
			if _, err := fmt.Fprintf(bw, "%d ", int(toLogic(l))); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
