package sat

import (
	"bytes"
	"strings"
	"testing"

	"llhsc/internal/logic"
)

func TestParseDIMACS(t *testing.T) {
	src := `
c a simple satisfiable instance
p cnf 3 3
1 -2 0
2 3 0
-1 0
`
	cnf, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseDIMACS: %v", err)
	}
	if cnf.NumVars != 3 || len(cnf.Clauses) != 3 {
		t.Fatalf("cnf = %d vars %d clauses", cnf.NumVars, len(cnf.Clauses))
	}
	st, model, err := SolveDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if st != Sat {
		t.Fatalf("status = %v", st)
	}
	// -1 forced; clause "1 -2" forces -2; clause "2 3" forces 3
	if model[0] != -1 || model[1] != -2 || model[2] != 3 {
		t.Errorf("model = %v", model)
	}
}

func TestParseDIMACSMultiLineClause(t *testing.T) {
	src := "p cnf 4 1\n1 2\n3 4 0\n"
	cnf, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(cnf.Clauses) != 1 || len(cnf.Clauses[0]) != 4 {
		t.Errorf("clauses = %v", cnf.Clauses)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"bad header", "p dnf 1 1\n1 0\n"},
		{"bad literal", "p cnf 1 1\nx 0\n"},
		{"unterminated", "p cnf 2 1\n1 2\n"},
		{"negative vars", "p cnf -5 1\n1 0\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseDIMACS(strings.NewReader(tt.src)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestWriteDIMACSRoundTrip(t *testing.T) {
	var cnf logic.CNF
	cnf.AddClause(1, -2, 3)
	cnf.AddClause(-1)
	cnf.AddClause(2, -3)

	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, &cnf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars != cnf.NumVars || len(back.Clauses) != len(cnf.Clauses) {
		t.Fatalf("round trip changed shape: %+v vs %+v", back, cnf)
	}
	for i, cl := range cnf.Clauses {
		if len(back.Clauses[i]) != len(cl) {
			t.Fatalf("clause %d changed", i)
		}
		for j, l := range cl {
			if back.Clauses[i][j] != l {
				t.Fatalf("clause %d literal %d changed", i, j)
			}
		}
	}
}

func TestSolveDIMACSUnsat(t *testing.T) {
	src := "p cnf 1 2\n1 0\n-1 0\n"
	st, model, err := SolveDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat || model != nil {
		t.Errorf("status = %v model = %v", st, model)
	}
}

func TestDumpDIMACS(t *testing.T) {
	s := New()
	s.AddClause(1, -2, 3)
	s.AddClause(-3) // becomes a top-level fact
	s.AddClause(2, 4)

	var buf bytes.Buffer
	if err := s.DumpDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatalf("dump not parseable: %v", err)
	}
	// the dumped instance must have the same satisfiability and force
	// the same top-level facts
	s2 := New()
	s2.AddCNF(back)
	if got, want := s2.Solve(), s.Solve(); got != want {
		t.Fatalf("dump verdict %v != original %v", got, want)
	}
	if s2.Value(3) {
		t.Error("dumped instance lost the unit fact -3")
	}
}
