package sat

import "testing"

// TestStatsDeltaDoesNotPerturbBudget is the regression guard for the
// confLimit arithmetic: the per-Solve conflict budget is computed as
// an absolute target relative to the cumulative stats.Conflicts
// (solver.go), so each budgeted Solve on the same solver must receive
// its full MaxConflicts allowance even though the counter never
// resets — and snapshotting stats between calls must not change that.
func TestStatsDeltaDoesNotPerturbBudget(t *testing.T) {
	s := New()
	s.SetBudget(Budget{MaxConflicts: 5})
	pigeonhole(s, 9)

	before := s.Stats()
	if got := s.Solve(); got != Unknown {
		t.Fatalf("first Solve = %v, want Unknown", got)
	}
	mid := s.Stats()
	first := mid.Sub(before)
	if first.Conflicts == 0 || first.Conflicts > 5 {
		t.Fatalf("first call used %d conflicts, want 1..5", first.Conflicts)
	}

	// Second call on the same solver: if confLimit were computed from
	// zero instead of the cumulative counter, the budget would already
	// be exhausted and this call would stop after 0 conflicts.
	if got := s.Solve(); got != Unknown {
		t.Fatalf("second Solve = %v, want Unknown", got)
	}
	second := s.Stats().Sub(mid)
	if second.Conflicts == 0 || second.Conflicts > 5 {
		t.Fatalf("second call used %d conflicts, want the full 1..5 budget again", second.Conflicts)
	}
	if lim := s.LastLimit(); lim == nil || lim.Reason != StopConflicts {
		t.Fatalf("LastLimit = %+v, want reason %q", lim, StopConflicts)
	}
}

func TestStatsSubAndAdd(t *testing.T) {
	prev := Stats{Decisions: 10, Propagations: 100, Conflicts: 5, Restarts: 1, Learnts: 4, Clauses: 9, Vars: 3}
	cur := Stats{Decisions: 25, Propagations: 180, Conflicts: 11, Restarts: 2, Learnts: 6, Clauses: 9, Vars: 3}
	d := cur.Sub(prev)
	if d.Decisions != 15 || d.Propagations != 80 || d.Conflicts != 6 || d.Restarts != 1 {
		t.Fatalf("Sub counters wrong: %+v", d)
	}
	if d.Learnts != 6 || d.Clauses != 9 || d.Vars != 3 {
		t.Fatalf("Sub must keep current gauge values: %+v", d)
	}
	sum := prev.Add(cur)
	if sum.Conflicts != 16 || sum.Decisions != 35 || sum.Vars != 6 {
		t.Fatalf("Add wrong: %+v", sum)
	}
}

// TestStatsReturnsCopy pins the snapshot semantics satellite: mutating
// the returned value must not reach the solver.
func TestStatsReturnsCopy(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	s.Solve()
	st := s.Stats()
	st.Conflicts = 999999
	st.Vars = -1
	if got := s.Stats(); got.Conflicts == 999999 || got.Vars == -1 {
		t.Fatalf("Stats returned a live reference: %+v", got)
	}
}
