package sat

import (
	"context"
	"errors"
	"testing"
	"time"

	"llhsc/internal/logic"
)

// pigeonhole builds the (unsatisfiable) instance placing n+1 pigeons
// into n holes — exponentially hard for resolution-based solvers, so a
// modest n keeps a CDCL search busy long enough to exercise budgets.
func pigeonhole(s *Solver, n int) {
	v := func(p, h int) logic.Lit { return logic.Lit(p*n + h + 1) }
	for p := 0; p <= n; p++ {
		cl := make([]logic.Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = v(p, h)
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
}

func TestBudgetMaxConflicts(t *testing.T) {
	s := New()
	s.SetBudget(Budget{MaxConflicts: 5})
	pigeonhole(s, 7)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve = %v, want Unknown", got)
	}
	lim := s.LastLimit()
	if lim == nil || lim.Reason != StopConflicts {
		t.Fatalf("LastLimit = %+v, want reason %q", lim, StopConflicts)
	}
	// the budget applies per Solve call: raising it lets the solver finish
	s.SetBudget(Budget{})
	if got := s.Solve(); got != Unsat {
		t.Fatalf("unbudgeted re-solve = %v, want Unsat", got)
	}
	if s.LastLimit() != nil {
		t.Errorf("LastLimit after completed solve = %+v, want nil", s.LastLimit())
	}
}

func TestBudgetDeadline(t *testing.T) {
	s := New()
	pigeonhole(s, 14)
	s.SetBudget(Budget{Deadline: time.Now().Add(30 * time.Millisecond)})
	start := time.Now()
	got := s.Solve()
	elapsed := time.Since(start)
	if got != Unknown {
		t.Fatalf("Solve = %v, want Unknown (solved pigeonhole-14 in %v?)", got, elapsed)
	}
	if lim := s.LastLimit(); lim == nil || lim.Reason != StopDeadline {
		t.Fatalf("LastLimit = %+v, want reason %q", lim, StopDeadline)
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline stop took %v, want well under 2s", elapsed)
	}
}

func TestBudgetMaxLearntLits(t *testing.T) {
	s := New()
	pigeonhole(s, 12) // never solved: the learnt-lits cap must fire first
	s.SetBudget(Budget{MaxLearntLits: 50})
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve = %v, want Unknown", got)
	}
	if lim := s.LastLimit(); lim == nil || lim.Reason != StopMemory {
		t.Fatalf("LastLimit = %+v, want reason %q", lim, StopMemory)
	}
}

func TestSolveContextCancel(t *testing.T) {
	s := New()
	pigeonhole(s, 14)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	st, err := s.SolveContext(ctx)
	elapsed := time.Since(start)
	if st != Unknown {
		t.Fatalf("SolveContext = %v, want Unknown", st)
	}
	var lim *LimitError
	if !errors.As(err, &lim) || lim.Reason != StopCanceled {
		t.Fatalf("err = %v, want *LimitError with reason %q", err, StopCanceled)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(context.Canceled)", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("cancellation took %v, want < 100ms", elapsed)
	}
}

func TestSolveContextAlreadyCanceled(t *testing.T) {
	s := New()
	pigeonhole(s, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := s.SolveContext(ctx)
	if st != Unknown || !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveContext = %v/%v, want Unknown/context.Canceled", st, err)
	}
}

func TestSolveContextDeadline(t *testing.T) {
	s := New()
	pigeonhole(s, 14)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	st, err := s.SolveContext(ctx)
	if st != Unknown {
		t.Fatalf("SolveContext = %v, want Unknown", st)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want errors.Is(context.DeadlineExceeded)", err)
	}
}

func TestSolveContextCompletes(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	s.AddClause(-1)
	st, err := s.SolveContext(context.Background())
	if st != Sat || err != nil {
		t.Fatalf("SolveContext = %v/%v, want Sat/nil", st, err)
	}
	if !s.Value(2) {
		t.Error("model must set variable 2")
	}
}

func TestInterruptFromAnotherGoroutine(t *testing.T) {
	s := New()
	pigeonhole(s, 14)
	done := make(chan Status, 1)
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.Interrupt()
	}()
	go func() { done <- s.Solve() }()
	select {
	case st := <-done:
		if st != Unknown {
			t.Fatalf("Solve = %v, want Unknown", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("interrupted solve did not return within 2s")
	}
	if lim := s.LastLimit(); lim == nil || lim.Reason != StopCanceled {
		t.Fatalf("LastLimit = %+v, want reason %q", lim, StopCanceled)
	}
	// re-arming clears the sticky flag: the next solve runs again (a
	// conflict budget keeps the hard instance bounded)
	s.ClearInterrupt()
	s.SetBudget(Budget{MaxConflicts: 10})
	s.Solve()
	if lim := s.LastLimit(); lim != nil && lim.Reason == StopCanceled {
		t.Error("ClearInterrupt did not re-arm the solver")
	}
}

func TestSolverReusableAfterLimitStop(t *testing.T) {
	// After a budget stop the solver must still give correct answers.
	s := New()
	pigeonhole(s, 7)
	s.SetBudget(Budget{MaxConflicts: 3})
	if got := s.Solve(); got != Unknown {
		t.Skipf("pigeonhole-7 solved within 3 conflicts (%v)", got)
	}
	s.SetBudget(Budget{})
	if got := s.Solve(); got != Unsat {
		t.Fatalf("re-solve after budget stop = %v, want Unsat", got)
	}
}
