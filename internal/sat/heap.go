package sat

// varHeap is an indexed max-heap of variables ordered by activity.
// It supports insert, removeMax and update (after an activity bump).
type varHeap struct {
	act     *[]float64 // shared with the solver; indexed by var
	heap    []int      // heap of vars
	indices []int      // var -> position in heap, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) less(a, b int) bool {
	return (*h.act)[h.heap[a]] > (*h.act)[h.heap[b]]
}

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.indices[h.heap[a]] = a
	h.indices[h.heap[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// insert adds v to the heap if not already present.
func (h *varHeap) insert(v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

// removeMax pops the highest-activity variable. ok is false if empty.
func (h *varHeap) removeMax() (v int, ok bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v = h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.indices[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v, true
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v int) {
	if v < len(h.indices) && h.indices[v] >= 0 {
		h.up(h.indices[v])
	}
}
