package sat

// clauseArena allocates clause headers and their literal storage from
// chunked slabs, replacing the two heap allocations every AddClause and
// every learnt clause used to cost (&clause{...} plus its lits copy)
// with amortized slab appends. This is the per-request arena of the
// zero-allocation hot path (ROADMAP item 3): solvers are created per
// pipeline request, so the arena's lifetime is the request's — there is
// no free list, and clauses deleted by reduceDB simply stay in their
// slab until the solver is dropped.
//
// Pointer stability: headers live in fixed-capacity chunks that are
// never reallocated once handed out, so *clause values remain valid as
// the database grows. Literal storage is carved from append-only slabs
// with a full-slice-expression cap, so a clause's lits can never grow
// into its neighbour's.
type clauseArena struct {
	headers [][]clause
	lits    []ilit // current literal slab; full slabs stay referenced by clauses
}

const (
	clauseChunkSize = 256
	litSlabSize     = 4096
)

// newClause returns a stable *clause holding a copy of lits.
func (a *clauseArena) newClause(lits []ilit, learnt bool, act float64) *clause {
	n := len(a.headers)
	if n == 0 || len(a.headers[n-1]) == cap(a.headers[n-1]) {
		a.headers = append(a.headers, make([]clause, 0, clauseChunkSize))
		n++
	}
	chunk := &a.headers[n-1]
	*chunk = append(*chunk, clause{lits: a.copyLits(lits), learnt: learnt, act: act})
	return &(*chunk)[len(*chunk)-1]
}

func (a *clauseArena) copyLits(lits []ilit) []ilit {
	if len(lits) > litSlabSize/2 {
		// An oversized clause gets its own allocation rather than
		// wasting most of a slab.
		return append([]ilit(nil), lits...)
	}
	if cap(a.lits)-len(a.lits) < len(lits) {
		a.lits = make([]ilit, 0, litSlabSize)
	}
	start := len(a.lits)
	a.lits = append(a.lits, lits...)
	return a.lits[start:len(a.lits):len(a.lits)]
}
