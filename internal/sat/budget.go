package sat

import (
	"context"
	"fmt"
	"time"

	"llhsc/internal/logic"
)

// Budget bounds the resources one Solve call may consume. The zero
// value imposes no limits. A Solve that stops because a limit was hit
// returns Unknown and records a *LimitError retrievable via LastLimit
// (SolveContext returns it directly).
//
// Deadline and Stop are polled every limitCheckInterval propagations,
// so cancellation latency is bounded by the time the solver needs for
// that many propagations (microseconds to low milliseconds), never by
// the total search time.
type Budget struct {
	// Deadline is the wall-clock instant after which the search stops.
	// The zero time means no deadline.
	Deadline time.Time
	// MaxConflicts stops the search after this many conflicts
	// (0 = unlimited). It subsumes the legacy Solver.ConflictBudget
	// field, which is still honored when MaxConflicts is 0.
	MaxConflicts uint64
	// MaxLearntLits caps the total number of literals retained across
	// learnt clauses — a proxy for the learnt-database memory footprint
	// (0 = unlimited). Unlike clause-DB reduction, hitting this cap
	// stops the search instead of shrinking the database, because a
	// search that keeps exceeding the cap is not converging within the
	// caller's memory budget.
	MaxLearntLits int
	// Stop aborts the search when the channel is closed (or a value is
	// sent). Wire a context with Stop: ctx.Done(), or use SolveContext.
	Stop <-chan struct{}
}

// limitCheckInterval is how many propagations pass between deadline /
// stop-flag polls. Must be a power of two.
const limitCheckInterval = 2048

// Stop reasons reported in LimitError.Reason.
const (
	StopDeadline  = "deadline"
	StopConflicts = "conflicts"
	StopMemory    = "learnt-memory"
	StopCanceled  = "canceled"
)

// LimitError is the typed error explaining an Unknown result: the
// search was stopped by a resource budget or external cancellation,
// not by a decision procedure failure.
type LimitError struct {
	// Reason is one of the Stop* constants.
	Reason string
	// Err is the underlying cause when one exists (e.g.
	// context.Canceled or context.DeadlineExceeded from SolveContext).
	Err error
}

func (e *LimitError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("sat: solve stopped (%s): %v", e.Reason, e.Err)
	}
	return fmt.Sprintf("sat: solve stopped: %s budget exhausted", e.Reason)
}

// Unwrap returns the underlying cause, if any.
func (e *LimitError) Unwrap() error { return e.Err }

// SetBudget installs the budget for subsequent Solve calls. It must
// not be called while a Solve is running.
func (s *Solver) SetBudget(b Budget) { s.budget = b }

// Interrupt asks a running Solve to stop at the next limit check,
// returning Unknown. It is safe to call from another goroutine and is
// sticky until ClearInterrupt is called.
func (s *Solver) Interrupt() { s.interrupted.Store(true) }

// ClearInterrupt re-arms the solver after an Interrupt.
func (s *Solver) ClearInterrupt() { s.interrupted.Store(false) }

// LastLimit returns the limit that stopped the most recent Solve, or
// nil if it ran to completion.
func (s *Solver) LastLimit() *LimitError { return s.lastLimit }

// SolveContext runs Solve under the context: cancellation and the
// context deadline are threaded into the budget (tightening, never
// loosening, any deadline already set via SetBudget). On a budget or
// cancellation stop it returns Unknown and a non-nil *LimitError whose
// Err records ctx.Err() when the context was the cause.
func (s *Solver) SolveContext(ctx context.Context, assumptions ...logic.Lit) (Status, error) {
	saved := s.budget
	defer func() { s.budget = saved }()
	if d, ok := ctx.Deadline(); ok {
		if s.budget.Deadline.IsZero() || d.Before(s.budget.Deadline) {
			s.budget.Deadline = d
		}
	}
	if ctx.Done() != nil {
		s.budget.Stop = ctx.Done()
	}
	st := s.Solve(assumptions...)
	if st != Unknown {
		return st, nil
	}
	lim := s.lastLimit
	if lim == nil {
		lim = &LimitError{Reason: StopCanceled}
	}
	if (lim.Reason == StopCanceled || lim.Reason == StopDeadline) && ctx.Err() != nil {
		lim.Err = ctx.Err()
	} else if lim.Reason == StopDeadline && lim.Err == nil {
		// our wall-clock poll can observe the deadline a moment before
		// the context's own timer fires; attribute it anyway
		if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
			lim.Err = context.DeadlineExceeded
		}
	}
	return Unknown, lim
}

// stopRequested polls the cheap external stop conditions: the sticky
// interrupt flag, the stop channel, and the wall-clock deadline. It is
// called every limitCheckInterval propagations and once per conflict.
func (s *Solver) stopRequested() *LimitError {
	if s.interrupted.Load() {
		return &LimitError{Reason: StopCanceled}
	}
	if s.budget.Stop != nil {
		select {
		case <-s.budget.Stop:
			return &LimitError{Reason: StopCanceled}
		default:
		}
	}
	if !s.budget.Deadline.IsZero() && time.Now().After(s.budget.Deadline) {
		return &LimitError{Reason: StopDeadline}
	}
	return nil
}
