package sat

import (
	"math/rand"
	"testing"

	"llhsc/internal/logic"
)

// TestIncrementalInterleavingStress interleaves AddClause and Solve
// (with random assumptions) on one solver, cross-validating every
// verdict against brute force over the clauses added so far.
func TestIncrementalInterleavingStress(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for round := 0; round < 30; round++ {
		nvars := 4 + rng.Intn(6)
		s := New()
		var clauses [][]logic.Lit
		dead := false // top-level contradiction reached

		for step := 0; step < 40; step++ {
			if rng.Intn(3) != 0 {
				// add a random clause of length 1..3
				k := 1 + rng.Intn(3)
				cl := make([]logic.Lit, k)
				for i := range cl {
					v := logic.Lit(rng.Intn(nvars) + 1)
					if rng.Intn(2) == 0 {
						v = -v
					}
					cl[i] = v
				}
				clauses = append(clauses, cl)
				if !s.AddClause(cl...) {
					dead = true
				}
				continue
			}

			// solve under random assumptions
			nass := rng.Intn(3)
			assumptions := make([]logic.Lit, 0, nass)
			for i := 0; i < nass; i++ {
				v := logic.Lit(rng.Intn(nvars) + 1)
				if rng.Intn(2) == 0 {
					v = -v
				}
				assumptions = append(assumptions, v)
			}
			got := s.Solve(assumptions...)

			all := append([][]logic.Lit{}, clauses...)
			for _, a := range assumptions {
				all = append(all, []logic.Lit{a})
			}
			want := bruteForceSat(all, nvars)
			if want && got != Sat {
				t.Fatalf("round %d step %d: got %v, want Sat (dead=%v)", round, step, got, dead)
			}
			if !want && got != Unsat {
				t.Fatalf("round %d step %d: got %v, want Unsat", round, step, got)
			}
		}
	}
}

// TestFailedAssumptionsAreSufficient verifies the unsat-core property:
// the returned failed assumptions alone (as units) must already be
// unsatisfiable with the clause set.
func TestFailedAssumptionsAreSufficient(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for round := 0; round < 60; round++ {
		nvars := 4 + rng.Intn(5)
		cls := genRandom3SAT(rng, nvars, nvars*3)
		s := New()
		for _, cl := range cls {
			s.AddClause(cl...)
		}
		// assume every variable with a random polarity: likely unsat
		assumptions := make([]logic.Lit, nvars)
		for i := range assumptions {
			l := logic.Lit(i + 1)
			if rng.Intn(2) == 0 {
				l = -l
			}
			assumptions[i] = l
		}
		if s.Solve(assumptions...) != Unsat {
			continue
		}
		failed := s.FailedAssumptions()
		if len(failed) == 0 {
			// the clause set itself is unsat at top level
			if s.Solve() != Unsat {
				t.Fatalf("round %d: empty core but clauses satisfiable", round)
			}
			continue
		}
		// the core must be a subset of the assumptions
		set := make(map[logic.Lit]bool, len(assumptions))
		for _, a := range assumptions {
			set[a] = true
		}
		for _, f := range failed {
			if !set[f] {
				t.Fatalf("round %d: core literal %d is not an assumption", round, f)
			}
		}
		// clauses + core must be unsat (checked with a fresh solver)
		s2 := New()
		for _, cl := range cls {
			s2.AddClause(cl...)
		}
		if got := s2.Solve(failed...); got != Unsat {
			t.Fatalf("round %d: core %v is not sufficient (got %v)", round, failed, got)
		}
	}
}

// TestModelStableAcrossResolve ensures a solved instance re-solves to
// the same verdict and a valid model after more Solve calls.
func TestModelStableAcrossResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	nvars := 8
	cls := genRandom3SAT(rng, nvars, 20)
	s := New()
	for _, cl := range cls {
		s.AddClause(cl...)
	}
	first := s.Solve()
	for i := 0; i < 5; i++ {
		if got := s.Solve(); got != first {
			t.Fatalf("verdict changed on re-solve: %v -> %v", first, got)
		}
		if first == Sat {
			for ci, cl := range cls {
				ok := false
				for _, l := range cl {
					if s.Value(l.Var()) == l.Positive() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("re-solve %d: model violates clause %d", i, ci)
				}
			}
		}
	}
}
