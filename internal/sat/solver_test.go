package sat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"llhsc/internal/logic"
)

func TestEmptySolverIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
}

func TestUnitClauses(t *testing.T) {
	s := New()
	s.AddClause(1)
	s.AddClause(-2)
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
	if !s.Value(1) || s.Value(2) {
		t.Errorf("model: v1=%v v2=%v, want true,false", s.Value(1), s.Value(2))
	}
}

func TestContradictionViaUnits(t *testing.T) {
	s := New()
	s.AddClause(1)
	if ok := s.AddClause(-1); ok {
		t.Error("adding -1 after 1 should report inconsistency")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve() = %v, want Unsat", got)
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	s := New()
	// 1 -> 2 -> 3 -> 4, and 1.
	s.AddClause(-1, 2)
	s.AddClause(-2, 3)
	s.AddClause(-3, 4)
	s.AddClause(1)
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
	for v := logic.Var(1); v <= 4; v++ {
		if !s.Value(v) {
			t.Errorf("v%d = false, want true", v)
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n) is a classic hard unsat family; keep n small.
	for _, n := range []int{2, 3, 4, 5} {
		s := New()
		// var(p, h) for pigeon p in hole h
		v := func(p, h int) logic.Lit { return logic.Lit(p*n + h + 1) }
		for p := 0; p <= n; p++ {
			cl := make([]logic.Lit, n)
			for h := 0; h < n; h++ {
				cl[h] = v(p, h)
			}
			s.AddClause(cl...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(-v(p1, h), -v(p2, h))
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Errorf("PHP(%d,%d): got %v, want Unsat", n+1, n, got)
		}
	}
}

func TestPigeonholeSatVariant(t *testing.T) {
	// n pigeons in n holes is satisfiable.
	n := 5
	s := New()
	v := func(p, h int) logic.Lit { return logic.Lit(p*n + h + 1) }
	for p := 0; p < n; p++ {
		cl := make([]logic.Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = v(p, h)
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				s.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want Sat", got)
	}
	// verify the model is a valid assignment of pigeons to holes
	for p := 0; p < n; p++ {
		count := 0
		for h := 0; h < n; h++ {
			if s.Value(v(p, h).Var()) {
				count++
			}
		}
		if count < 1 {
			t.Errorf("pigeon %d unplaced", p)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	s.AddClause(-1, 2)  // 1 -> 2
	s.AddClause(-2, -3) // 2 -> !3

	if got := s.Solve(1, 3); got != Unsat {
		t.Fatalf("Solve(1,3) = %v, want Unsat", got)
	}
	failed := s.FailedAssumptions()
	if len(failed) == 0 {
		t.Fatal("expected non-empty failed assumptions")
	}
	seen := make(map[logic.Lit]bool)
	for _, l := range failed {
		seen[l] = true
	}
	if !seen[1] && !seen[3] {
		t.Errorf("failed assumptions %v should mention assumption 1 or 3", failed)
	}

	// Same problem without the conflicting assumption is Sat.
	if got := s.Solve(1); got != Sat {
		t.Fatalf("Solve(1) = %v, want Sat", got)
	}
	if !s.Value(1) || !s.Value(2) || s.Value(3) {
		t.Errorf("model %v,%v,%v; want true,true,false",
			s.Value(1), s.Value(2), s.Value(3))
	}
}

func TestIncrementalAddAfterSolve(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	if got := s.Solve(); got != Sat {
		t.Fatalf("first Solve = %v, want Sat", got)
	}
	s.AddClause(-1)
	s.AddClause(-2)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("after forcing both false: %v, want Unsat", got)
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	s.AddClause(1, -1)   // tautology: ignored
	s.AddClause(2, 2, 2) // duplicates collapse to unit
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(2) {
		t.Error("v2 should be true")
	}
}

func TestLuby(t *testing.T) {
	want := []uint64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(uint64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

// genRandom3SAT builds a random 3-SAT instance with the given seed.
func genRandom3SAT(rng *rand.Rand, nvars, nclauses int) [][]logic.Lit {
	cls := make([][]logic.Lit, nclauses)
	for i := range cls {
		cl := make([]logic.Lit, 3)
		for j := range cl {
			v := logic.Lit(rng.Intn(nvars) + 1)
			if rng.Intn(2) == 0 {
				v = -v
			}
			cl[j] = v
		}
		cls[i] = cl
	}
	return cls
}

// bruteForceSat checks satisfiability by exhaustion (nvars <= 20).
func bruteForceSat(cls [][]logic.Lit, nvars int) bool {
	for mask := uint64(0); mask < 1<<uint(nvars); mask++ {
		ok := true
		for _, cl := range cls {
			sat := false
			for _, l := range cl {
				val := mask&(1<<uint(l.Var()-1)) != 0
				if val == l.Positive() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		nvars := 4 + rng.Intn(9) // 4..12
		// around the phase transition ratio 4.26 for variety
		nclauses := int(float64(nvars)*4.3) + rng.Intn(5)
		cls := genRandom3SAT(rng, nvars, nclauses)
		s := New()
		consistent := true
		for _, cl := range cls {
			if !s.AddClause(cl...) {
				consistent = false
			}
		}
		got := s.Solve()
		want := bruteForceSat(cls, nvars)
		if want && (got != Sat || !consistent && got == Sat) {
			t.Fatalf("iter %d: got %v, want Sat", iter, got)
		}
		if !want && got != Unsat {
			t.Fatalf("iter %d: got %v, want Unsat", iter, got)
		}
		if got == Sat {
			// verify the model satisfies every clause
			for ci, cl := range cls {
				sat := false
				for _, l := range cl {
					if s.Value(l.Var()) == l.Positive() {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model does not satisfy clause %d (%v)", iter, ci, cl)
				}
			}
		}
	}
}

func TestRandomWithAssumptionsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		nvars := 4 + rng.Intn(6)
		nclauses := nvars * 3
		cls := genRandom3SAT(rng, nvars, nclauses)
		s := New()
		for _, cl := range cls {
			s.AddClause(cl...)
		}
		// random assumptions over distinct vars
		nass := 1 + rng.Intn(3)
		assumptions := make([]logic.Lit, 0, nass)
		used := make(map[logic.Var]bool)
		for len(assumptions) < nass {
			v := logic.Var(rng.Intn(nvars) + 1)
			if used[v] {
				continue
			}
			used[v] = true
			l := logic.Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			assumptions = append(assumptions, l)
		}
		all := append([][]logic.Lit{}, cls...)
		for _, a := range assumptions {
			all = append(all, []logic.Lit{a})
		}
		want := bruteForceSat(all, nvars)
		got := s.Solve(assumptions...)
		if want && got != Sat || !want && got != Unsat {
			t.Fatalf("iter %d: got %v, want sat=%v (assumptions %v)", iter, got, want, assumptions)
		}
		// solver must remain reusable: solving without assumptions
		// reflects only the clause set.
		base := s.Solve()
		baseWant := bruteForceSat(cls, nvars)
		if baseWant && base != Sat || !baseWant && base != Unsat {
			t.Fatalf("iter %d: base re-solve got %v, want sat=%v", iter, base, baseWant)
		}
	}
}

func TestAddCNFFromTseitin(t *testing.T) {
	// (a <-> b) & (b xor c) & (a | c)
	a, b, c := logic.V(1), logic.V(2), logic.V(3)
	f := logic.And(logic.Iff(a, b), logic.Xor(b, c), logic.Or(a, c))
	pool := logic.NewPool()
	cnf := logic.ToCNF(f, pool)
	s := New()
	s.AddCNF(cnf)
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	env := map[logic.Var]bool{1: s.Value(1), 2: s.Value(2), 3: s.Value(3)}
	if !f.Eval(env) {
		t.Errorf("model %v does not satisfy the original formula", env)
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard instance with a tiny budget should return Unknown.
	n := 8
	s := New()
	s.ConflictBudget = 1
	v := func(p, h int) logic.Lit { return logic.Lit(p*n + h + 1) }
	for p := 0; p <= n; p++ {
		cl := make([]logic.Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = v(p, h)
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	got := s.Solve()
	if got != Unknown && got != Unsat {
		t.Fatalf("got %v, want Unknown (or fast Unsat)", got)
	}
}

func TestStats(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	s.AddClause(-1, 2)
	s.AddClause(1, -2)
	s.Solve()
	st := s.Stats()
	if st.Vars != 2 {
		t.Errorf("Vars = %d, want 2", st.Vars)
	}
	if st.Clauses != 3 {
		t.Errorf("Clauses = %d, want 3", st.Clauses)
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Error("Status.String mismatch")
	}
}

func TestPropertySolverAgreesWithEval(t *testing.T) {
	// Random formulas through Tseitin: the solver's verdict must match
	// brute-force satisfiability of the formula.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvars := 3 + rng.Intn(4)
		cls := genRandom3SAT(rng, nvars, nvars*4)
		s := New()
		for _, cl := range cls {
			s.AddClause(cl...)
		}
		got := s.Solve()
		want := bruteForceSat(cls, nvars)
		return (got == Sat) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
