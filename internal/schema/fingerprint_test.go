package schema

import "testing"

func setOf(schemas ...*Schema) *Set {
	s := &Set{}
	for _, sc := range schemas {
		s.Add(sc)
	}
	return s
}

func TestFingerprintStableAcrossOrder(t *testing.T) {
	a := &Schema{ID: "a.yaml", Select: Select{NodeName: "a"}}
	b := &Schema{ID: "b.yaml", Select: Select{NodeName: "b"}}
	if setOf(a, b).Fingerprint() != setOf(b, a).Fingerprint() {
		t.Error("fingerprint depends on schema insertion order")
	}
}

// TestFingerprintSeparatorValues guards the length-delimited dump:
// values containing the old ',' and ';' separators must not let two
// distinct schema sets collide.
func TestFingerprintSeparatorValues(t *testing.T) {
	joined := setOf(&Schema{
		ID:       "x.yaml",
		Select:   Select{NodeName: "x"},
		Required: []string{"a,b"},
	})
	split := setOf(&Schema{
		ID:       "x.yaml",
		Select:   Select{NodeName: "x"},
		Required: []string{"a", "b"},
	})
	if joined.Fingerprint() == split.Fingerprint() {
		t.Error(`Required ["a,b"] and ["a","b"] collide`)
	}

	enumJoined := setOf(&Schema{
		ID:     "y.yaml",
		Select: Select{NodeName: "y"},
		Properties: map[string]*PropSchema{
			"p": {Type: TypeString, Enum: []string{"u;v"}},
		},
	})
	enumSplit := setOf(&Schema{
		ID:     "y.yaml",
		Select: Select{NodeName: "y"},
		Properties: map[string]*PropSchema{
			"p": {Type: TypeString, Enum: []string{"u", "v"}},
		},
	})
	if enumJoined.Fingerprint() == enumSplit.Fingerprint() {
		t.Error(`Enum ["u;v"] and ["u","v"] collide`)
	}
}

func TestFingerprintSensitiveToConstraints(t *testing.T) {
	base := func() *Schema {
		return &Schema{
			ID:     "m.yaml",
			Select: Select{NodeName: "m"},
			Properties: map[string]*PropSchema{
				"reg": {Type: TypeCells, MinItems: 1, MaxItems: 4},
			},
			Required: []string{"reg"},
		}
	}
	ref := setOf(base()).Fingerprint()
	changed := base()
	changed.Properties["reg"].MaxItems = 8
	if setOf(changed).Fingerprint() == ref {
		t.Error("changing MaxItems did not change the fingerprint")
	}
	u := uint32(7)
	withConst := base()
	withConst.Properties["reg"].ConstU32 = &u
	if setOf(withConst).Fingerprint() == ref {
		t.Error("adding ConstU32 did not change the fingerprint")
	}
}
