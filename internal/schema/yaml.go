package schema

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements a deliberately small YAML-subset reader — just
// enough for dt-schema-style binding files: nested maps by indentation,
// block lists ("- item"), and scalar strings/integers/booleans. Flow
// syntax, anchors, multi-document streams and multi-line scalars are
// out of scope (DESIGN.md §6).

// yamlValue is map[string]interface{}, []interface{}, string, int64 or bool.
type yamlValue interface{}

type yamlError struct {
	line int
	msg  string
}

func (e *yamlError) Error() string {
	return fmt.Sprintf("yaml line %d: %s", e.line, e.msg)
}

type yamlLine struct {
	indent int
	text   string // content without indentation
	num    int    // 1-based source line
}

// parseYAML parses the subset described above into a yamlValue.
func parseYAML(src string) (yamlValue, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		// strip comments (a # that is not inside a quoted string; our
		// subset has no quoted strings containing #)
		if idx := strings.Index(raw, "#"); idx >= 0 {
			raw = raw[:idx]
		}
		trimmed := strings.TrimRight(raw, " \t")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		indent := 0
		for indent < len(trimmed) && trimmed[indent] == ' ' {
			indent++
		}
		if strings.HasPrefix(trimmed[indent:], "\t") {
			return nil, &yamlError{line: i + 1, msg: "tabs are not allowed for indentation"}
		}
		lines = append(lines, yamlLine{indent: indent, text: trimmed[indent:], num: i + 1})
	}
	if len(lines) == 0 {
		return map[string]yamlValue{}, nil
	}
	v, rest, err := parseBlock(lines, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, &yamlError{line: rest[0].num, msg: "unexpected dedent/content"}
	}
	return v, nil
}

// parseBlock parses consecutive lines at exactly the given indent.
func parseBlock(lines []yamlLine, indent int) (yamlValue, []yamlLine, error) {
	if len(lines) == 0 {
		return nil, lines, nil
	}
	if strings.HasPrefix(lines[0].text, "- ") || lines[0].text == "-" {
		return parseList(lines, indent)
	}
	return parseMap(lines, indent)
}

func parseList(lines []yamlLine, indent int) (yamlValue, []yamlLine, error) {
	var out []yamlValue
	for len(lines) > 0 {
		l := lines[0]
		if l.indent != indent || !strings.HasPrefix(l.text, "-") {
			break
		}
		item := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		lines = lines[1:]
		if item == "" {
			// nested block under the dash
			if len(lines) == 0 || lines[0].indent <= indent {
				return nil, nil, &yamlError{line: l.num, msg: "empty list item"}
			}
			v, rest, err := parseBlock(lines, lines[0].indent)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, v)
			lines = rest
			continue
		}
		if strings.HasSuffix(item, ":") || strings.Contains(item, ": ") {
			// inline map entry: "- key: value" — parse the remainder as
			// a map whose first line is the item.
			sub := append([]yamlLine{{indent: indent + 2, text: item, num: l.num}}, lines...)
			// collect following deeper lines as part of the map
			v, rest, err := parseMap(sub, indent+2)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, v)
			lines = rest
			continue
		}
		out = append(out, parseScalar(item))
	}
	return out, lines, nil
}

func parseMap(lines []yamlLine, indent int) (yamlValue, []yamlLine, error) {
	out := make(map[string]yamlValue)
	for len(lines) > 0 {
		l := lines[0]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, nil, &yamlError{line: l.num, msg: "unexpected indentation"}
		}
		if strings.HasPrefix(l.text, "- ") {
			break
		}
		colon := strings.Index(l.text, ":")
		if colon < 0 {
			return nil, nil, &yamlError{line: l.num, msg: "expected 'key: value'"}
		}
		key := strings.TrimSpace(l.text[:colon])
		valText := strings.TrimSpace(l.text[colon+1:])
		lines = lines[1:]
		if valText != "" {
			out[key] = parseScalar(valText)
			continue
		}
		// nested block
		if len(lines) == 0 || lines[0].indent <= indent {
			out[key] = nil // empty value
			continue
		}
		v, rest, err := parseBlock(lines, lines[0].indent)
		if err != nil {
			return nil, nil, err
		}
		out[key] = v
		lines = rest
	}
	return out, lines, nil
}

func parseScalar(s string) yamlValue {
	if len(s) >= 2 {
		if s[0] == '"' && s[len(s)-1] == '"' || s[0] == '\'' && s[len(s)-1] == '\'' {
			return s[1 : len(s)-1]
		}
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	if n, err := strconv.ParseInt(s, 0, 64); err == nil {
		return n
	}
	return s
}
