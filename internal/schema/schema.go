// Package schema reimplements the dt-schema subset the llhsc paper uses
// as its baseline (Section IV-B and the comparisons of Sections I and
// IV-C): binding schemas that select device nodes by name or compatible
// string and constrain their properties structurally (required
// properties, constant values, enums, item counts, reg arity derived
// from the parent's cell sizes, and name patterns).
//
// The structural Validate in this package is the *baseline* checker:
// by design it accepts the address-clash and truncation faults that
// llhsc's SMT-based semantic checker catches (experiments E5/E6/E10 in
// DESIGN.md).
package schema

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"llhsc/internal/dts"
)

// PropType constrains the syntactic shape of a property value.
type PropType int

// Property value types.
const (
	TypeAny    PropType = iota // no shape constraint
	TypeString                 // one or more strings
	TypeU32                    // exactly one cell
	TypeCells                  // one or more cells
	TypeBytes                  // byte array
	TypeFlag                   // empty marker property
)

func (t PropType) String() string {
	switch t {
	case TypeAny:
		return "any"
	case TypeString:
		return "string"
	case TypeU32:
		return "u32"
	case TypeCells:
		return "cells"
	case TypeBytes:
		return "bytes"
	case TypeFlag:
		return "flag"
	default:
		return fmt.Sprintf("PropType(%d)", int(t))
	}
}

// PropSchema constrains one property.
type PropSchema struct {
	Type     PropType
	Const    string         // exact string value ("" = unconstrained)
	ConstU32 *uint32        // exact cell value
	Enum     []string       // allowed string values
	Pattern  *regexp.Regexp // string value pattern
	MinItems int            // minimum items (0 = unconstrained)
	MaxItems int            // maximum items (0 = unconstrained)
	// RegLike derives the item granularity from the parent node's
	// #address-cells + #size-cells: the cell count must be a multiple
	// of that sum, and Min/MaxItems count (address,size) tuples. This
	// mirrors dt-schema's reg handling — and inherits its weakness:
	// any multiple passes, even after a cell-size change (the paper's
	// truncation example).
	RegLike bool
}

// Select decides which nodes a schema applies to.
type Select struct {
	NodeName   string   // match on node base name (without unit address)
	Compatible []string // match if the node's compatible list intersects
}

// Matches reports whether the selector applies to the node.
func (s Select) Matches(n *dts.Node) bool {
	if s.NodeName != "" && n.BaseName() == s.NodeName {
		return true
	}
	if len(s.Compatible) > 0 {
		for _, c := range n.Compatible() {
			for _, want := range s.Compatible {
				if c == want {
					return true
				}
			}
		}
	}
	return false
}

// Schema is one binding schema.
type Schema struct {
	ID         string
	Select     Select
	Properties map[string]*PropSchema
	Required   []string
	// AdditionalProperties, when false, rejects properties not listed
	// in Properties (beyond the standard set).
	AdditionalProperties bool
}

// standardProperties are always acceptable regardless of schema.
var standardProperties = map[string]bool{
	"#address-cells": true,
	"#size-cells":    true,
	"compatible":     true,
	"status":         true,
	"phandle":        true,
	"device_type":    true,
	"reg":            true,
}

// Violation is one structural check failure.
type Violation struct {
	Path     string // node path
	Property string // offending property ("" for node-level problems)
	SchemaID string
	Message  string
	Origin   dts.Origin
}

func (v Violation) String() string {
	if v.Property != "" {
		return fmt.Sprintf("%s: property %s: %s (schema %s)", v.Path, v.Property, v.Message, v.SchemaID)
	}
	return fmt.Sprintf("%s: %s (schema %s)", v.Path, v.Message, v.SchemaID)
}

// Set is a collection of schemas applied together.
type Set struct {
	Schemas []*Schema
}

// Add appends a schema to the set.
func (s *Set) Add(sc *Schema) { s.Schemas = append(s.Schemas, sc) }

// For returns the schemas applicable to a node.
func (s *Set) For(n *dts.Node) []*Schema {
	var out []*Schema
	for _, sc := range s.Schemas {
		if sc.Select.Matches(n) {
			out = append(out, sc)
		}
	}
	return out
}

// Validate structurally checks every node of the tree against the
// applicable schemas and returns all violations, deterministically
// ordered. This is the dt-schema-equivalent baseline: it performs no
// cross-node reasoning.
func (s *Set) Validate(t *dts.Tree) []Violation {
	var out []Violation
	var walk func(parent *dts.Node, path string)
	walk = func(parent *dts.Node, path string) {
		for _, n := range parent.Children {
			childPath := path + "/" + n.Name
			for _, sc := range s.For(n) {
				out = append(out, sc.check(n, parent, childPath)...)
			}
			walk(n, childPath)
		}
	}
	walk(t.Root, "")
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Property < out[j].Property
	})
	return out
}

func (sc *Schema) check(n, parent *dts.Node, path string) []Violation {
	var out []Violation
	report := func(prop, format string, args ...interface{}) {
		v := Violation{
			Path: path, Property: prop, SchemaID: sc.ID,
			Message: fmt.Sprintf(format, args...),
			Origin:  n.Origin,
		}
		if p := n.Property(prop); p != nil {
			v.Origin = p.Origin
		}
		out = append(out, v)
	}

	for _, req := range sc.Required {
		if n.Property(req) == nil {
			report(req, "required property is missing")
		}
	}

	for name, ps := range sc.Properties {
		p := n.Property(name)
		if p == nil {
			continue
		}
		out = append(out, ps.check(p, n, parent, path, sc.ID)...)
	}

	if !sc.AdditionalProperties && len(sc.Properties) > 0 {
		for _, p := range n.Properties {
			if _, ok := sc.Properties[p.Name]; ok {
				continue
			}
			if standardProperties[p.Name] || strings.HasPrefix(p.Name, "#") {
				continue
			}
			report(p.Name, "property not allowed by schema")
		}
	}
	return out
}

func (ps *PropSchema) check(p *dts.Property, n, parent *dts.Node, path, schemaID string) []Violation {
	var out []Violation
	report := func(format string, args ...interface{}) {
		out = append(out, Violation{
			Path: path, Property: p.Name, SchemaID: schemaID,
			Message: fmt.Sprintf(format, args...),
			Origin:  p.Origin,
		})
	}

	strs := p.Value.Strings()
	cells := p.Value.U32s()

	switch ps.Type {
	case TypeString:
		if len(strs) == 0 {
			report("expected a string value")
		}
	case TypeU32:
		if len(cells) != 1 {
			report("expected exactly one cell, found %d", len(cells))
		}
	case TypeCells:
		if len(cells) == 0 {
			report("expected a cell array")
		}
	case TypeBytes:
		if len(p.Value.Bytes()) == 0 {
			report("expected a byte array")
		}
	case TypeFlag:
		if !p.Value.IsEmpty() {
			report("expected an empty marker property")
		}
	}

	if ps.Const != "" {
		if len(strs) == 0 || strs[0] != ps.Const {
			got := "<none>"
			if len(strs) > 0 {
				got = strs[0]
			}
			report("value %q does not match const %q", got, ps.Const)
		}
	}
	if ps.ConstU32 != nil {
		if len(cells) == 0 || cells[0] != *ps.ConstU32 {
			report("cell value does not match const %d", *ps.ConstU32)
		}
	}
	if len(ps.Enum) > 0 && len(strs) > 0 {
		ok := false
		for _, e := range ps.Enum {
			if strs[0] == e {
				ok = true
				break
			}
		}
		if !ok {
			report("value %q not in enum %v", strs[0], ps.Enum)
		}
	}
	if ps.Pattern != nil && len(strs) > 0 && !ps.Pattern.MatchString(strs[0]) {
		report("value %q does not match pattern %s", strs[0], ps.Pattern)
	}

	items := len(cells)
	if ps.RegLike {
		stride := parent.AddressCells() + parent.SizeCells()
		if stride == 0 {
			stride = 1
		}
		if len(cells)%stride != 0 {
			report("reg has %d cells, not a multiple of #address-cells+#size-cells (%d)",
				len(cells), stride)
			return out
		}
		items = len(cells) / stride
	}
	if ps.MinItems > 0 && items < ps.MinItems {
		report("%d items, schema requires at least %d", items, ps.MinItems)
	}
	if ps.MaxItems > 0 && items > ps.MaxItems {
		report("%d items, schema allows at most %d", items, ps.MaxItems)
	}
	return out
}
