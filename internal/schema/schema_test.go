package schema

import (
	"strings"
	"testing"

	"llhsc/internal/dts"
)

func mustParseDTS(t *testing.T, src string) *dts.Tree {
	t.Helper()
	tree, err := dts.Parse("test.dts", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return tree
}

const goodDTS = `
/dts-v1/;
/ {
	#address-cells = <2>;
	#size-cells = <2>;

	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000
		       0x0 0x60000000 0x0 0x20000000>;
	};

	cpus {
		#address-cells = <1>;
		#size-cells = <0>;
		cpu@0 {
			compatible = "arm,cortex-a53";
			device_type = "cpu";
			enable-method = "psci";
			reg = <0x0>;
		};
	};

	uart@20000000 {
		compatible = "ns16550a";
		reg = <0x0 0x20000000 0x0 0x1000>;
	};
};
`

func TestValidateCleanTree(t *testing.T) {
	tree := mustParseDTS(t, goodDTS)
	vs := StandardSet().Validate(tree)
	if len(vs) != 0 {
		t.Errorf("clean tree produced violations: %v", vs)
	}
}

func TestMissingRequiredProperty(t *testing.T) {
	tree := mustParseDTS(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@40000000 {
		reg = <0x0 0x1000>;
	};
};
`)
	vs := StandardSet().Validate(tree)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly the missing device_type", vs)
	}
	v := vs[0]
	if v.Property != "device_type" || !strings.Contains(v.Message, "required") {
		t.Errorf("violation = %+v", v)
	}
	if v.SchemaID != "memory.yaml" {
		t.Errorf("schema = %s", v.SchemaID)
	}
}

func TestConstViolation(t *testing.T) {
	tree := mustParseDTS(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@0 {
		device_type = "ram";
		reg = <0x0 0x1000>;
	};
};
`)
	vs := StandardSet().Validate(tree)
	if len(vs) != 1 || !strings.Contains(vs[0].Message, `const "memory"`) {
		t.Errorf("violations = %v", vs)
	}
}

func TestRegArity(t *testing.T) {
	// 3 cells with #address-cells=1, #size-cells=1: not a multiple of 2.
	tree := mustParseDTS(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@0 {
		device_type = "memory";
		reg = <0x0 0x1000 0x5>;
	};
};
`)
	vs := StandardSet().Validate(tree)
	if len(vs) != 1 || !strings.Contains(vs[0].Message, "multiple") {
		t.Errorf("violations = %v", vs)
	}
}

func TestRegArityAcceptsAnyMultiple(t *testing.T) {
	// The dt-schema weakness the paper exploits (Section IV-C): 8 cells
	// under 32-bit addressing is 4 banks — structurally fine, even
	// though the values were written for 64-bit addressing.
	tree := mustParseDTS(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000
		       0x0 0x60000000 0x0 0x20000000>;
	};
};
`)
	vs := StandardSet().Validate(tree)
	if len(vs) != 0 {
		t.Errorf("baseline must accept the truncation case; got %v", vs)
	}
}

func TestAddressClashInvisibleToBaseline(t *testing.T) {
	// Section I-A: uart moved onto the second memory bank. The
	// structural baseline must NOT flag this.
	tree := mustParseDTS(t, `
/dts-v1/;
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000
		       0x0 0x60000000 0x0 0x20000000>;
	};
	uart@60000000 {
		compatible = "ns16550a";
		reg = <0x0 0x60000000 0x0 0x1000>;
	};
};
`)
	vs := StandardSet().Validate(tree)
	if len(vs) != 0 {
		t.Errorf("baseline should not detect the address clash; got %v", vs)
	}
}

func TestEnumViolation(t *testing.T) {
	tree := mustParseDTS(t, `
/dts-v1/;
/ {
	cpus {
		#address-cells = <1>;
		#size-cells = <0>;
		cpu@0 {
			compatible = "arm,cortex-a53";
			device_type = "cpu";
			enable-method = "magic";
			reg = <0x0>;
		};
	};
};
`)
	vs := StandardSet().Validate(tree)
	if len(vs) != 1 || !strings.Contains(vs[0].Message, "enum") {
		t.Errorf("violations = %v", vs)
	}
}

func TestSelectByCompatible(t *testing.T) {
	tree := mustParseDTS(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	serial@0 {
		compatible = "ns16550a";
	};
};
`)
	// node name is "serial" but compatible selects the uart schema
	vs := StandardSet().Validate(tree)
	if len(vs) != 1 || vs[0].Property != "reg" {
		t.Errorf("violations = %v, want missing reg", vs)
	}
}

func TestMaxItems(t *testing.T) {
	sc := &Schema{
		ID:     "t",
		Select: Select{NodeName: "dev"},
		Properties: map[string]*PropSchema{
			"vals": {Type: TypeCells, MinItems: 2, MaxItems: 3},
		},
		AdditionalProperties: true,
	}
	set := &Set{}
	set.Add(sc)

	tree := mustParseDTS(t, `
/dts-v1/;
/ { dev { vals = <1>; }; };
`)
	vs := set.Validate(tree)
	if len(vs) != 1 || !strings.Contains(vs[0].Message, "at least 2") {
		t.Errorf("violations = %v", vs)
	}

	tree2 := mustParseDTS(t, `
/dts-v1/;
/ { dev { vals = <1 2 3 4>; }; };
`)
	vs2 := set.Validate(tree2)
	if len(vs2) != 1 || !strings.Contains(vs2[0].Message, "at most 3") {
		t.Errorf("violations = %v", vs2)
	}
}

func TestAdditionalPropertiesFalse(t *testing.T) {
	sc := &Schema{
		ID:     "strict",
		Select: Select{NodeName: "dev"},
		Properties: map[string]*PropSchema{
			"known": {},
		},
	}
	set := &Set{}
	set.Add(sc)
	tree := mustParseDTS(t, `
/dts-v1/;
/ { dev { known = <1>; mystery = <2>; #address-cells = <1>; }; };
`)
	vs := set.Validate(tree)
	if len(vs) != 1 || vs[0].Property != "mystery" {
		t.Errorf("violations = %v, want mystery rejected", vs)
	}
}

func TestLoadYAMLSchema(t *testing.T) {
	src := `
# dt-schema fragment from the paper's Listing 5
$id: memory.yaml
select:
  node: memory
properties:
  device_type:
    const: memory
  reg:
    reg-like: true
    minItems: 1
    maxItems: 1024
required:
  - device_type
  - reg
`
	sc, err := Load(src)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if sc.ID != "memory.yaml" || sc.Select.NodeName != "memory" {
		t.Errorf("header = %+v", sc)
	}
	dt := sc.Properties["device_type"]
	if dt == nil || dt.Const != "memory" {
		t.Errorf("device_type schema = %+v", dt)
	}
	reg := sc.Properties["reg"]
	if reg == nil || !reg.RegLike || reg.MinItems != 1 || reg.MaxItems != 1024 {
		t.Errorf("reg schema = %+v", reg)
	}
	if len(sc.Required) != 2 || sc.Required[0] != "device_type" {
		t.Errorf("required = %v", sc.Required)
	}

	// the loaded schema behaves like the built-in one
	set := &Set{}
	set.Add(sc)
	tree := mustParseDTS(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@0 { reg = <0x0 0x1000>; };
};
`)
	vs := set.Validate(tree)
	if len(vs) != 1 || vs[0].Property != "device_type" {
		t.Errorf("violations = %v", vs)
	}
}

func TestLoadYAMLWithCompatibleListAndPattern(t *testing.T) {
	src := `
$id: uart.yaml
select:
  compatible:
    - ns16550a
    - ns16550
properties:
  clock-names:
    pattern: ^uart[0-9]+$
  status:
    enum:
      - okay
      - disabled
  reg:
    type: cells
additionalProperties: true
`
	sc, err := Load(src)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(sc.Select.Compatible) != 2 {
		t.Errorf("compatible = %v", sc.Select.Compatible)
	}
	if sc.Properties["clock-names"].Pattern == nil {
		t.Error("pattern not compiled")
	}
	if got := sc.Properties["status"].Enum; len(got) != 2 || got[1] != "disabled" {
		t.Errorf("enum = %v", got)
	}
	if sc.Properties["reg"].Type != TypeCells {
		t.Errorf("type = %v", sc.Properties["reg"].Type)
	}
}

func TestLoadErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"bad pattern", "properties:\n  x:\n    pattern: '['\n"},
		{"unknown key", "properties:\n  x:\n    frobnicate: 1\n"},
		{"bad type", "properties:\n  x:\n    type: quux\n"},
		{"tab indent", "properties:\n\tx: 1\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Load(tt.src); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestYAMLParser(t *testing.T) {
	src := `
top: value
num: 0x10
flag: true
nested:
  a: 1
  b: two
list:
  - one
  - two
maps:
  - name: x
    v: 1
  - name: y
    v: 2
`
	v, err := parseYAML(src)
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	m := v.(map[string]yamlValue)
	if m["top"] != "value" {
		t.Errorf("top = %v", m["top"])
	}
	if m["num"] != int64(16) {
		t.Errorf("num = %v", m["num"])
	}
	if m["flag"] != true {
		t.Errorf("flag = %v", m["flag"])
	}
	nested := m["nested"].(map[string]yamlValue)
	if nested["a"] != int64(1) || nested["b"] != "two" {
		t.Errorf("nested = %v", nested)
	}
	list := m["list"].([]yamlValue)
	if len(list) != 2 || list[0] != "one" {
		t.Errorf("list = %v", list)
	}
	maps := m["maps"].([]yamlValue)
	if len(maps) != 2 {
		t.Fatalf("maps = %v", maps)
	}
	first := maps[0].(map[string]yamlValue)
	if first["name"] != "x" || first["v"] != int64(1) {
		t.Errorf("maps[0] = %v", first)
	}
}
