package schema

import (
	"fmt"
	"regexp"
)

// Load parses a dt-schema-style YAML document into a Schema. The
// supported keys mirror the fragment shown in the paper's Listing 5:
//
//	$id: memory.yaml
//	select:
//	  node: memory            # or: compatible: [a, b]
//	properties:
//	  device_type:
//	    const: memory
//	  reg:
//	    reg-like: true
//	    minItems: 1
//	    maxItems: 1024
//	required:
//	  - device_type
//	  - reg
func Load(src string) (*Schema, error) {
	v, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	root, ok := v.(map[string]yamlValue)
	if !ok {
		return nil, fmt.Errorf("schema: document is not a map")
	}
	sc := &Schema{Properties: make(map[string]*PropSchema)}

	if id, ok := root["$id"].(string); ok {
		sc.ID = id
	}
	if sel, ok := root["select"].(map[string]yamlValue); ok {
		if node, ok := sel["node"].(string); ok {
			sc.Select.NodeName = node
		}
		switch compat := sel["compatible"].(type) {
		case string:
			sc.Select.Compatible = []string{compat}
		case []yamlValue:
			for _, c := range compat {
				s, ok := c.(string)
				if !ok {
					return nil, fmt.Errorf("schema: compatible entries must be strings")
				}
				sc.Select.Compatible = append(sc.Select.Compatible, s)
			}
		}
	}
	if ap, ok := root["additionalProperties"].(bool); ok {
		sc.AdditionalProperties = ap
	} else {
		sc.AdditionalProperties = true
	}

	if props, ok := root["properties"].(map[string]yamlValue); ok {
		for name, raw := range props {
			ps, err := loadPropSchema(name, raw)
			if err != nil {
				return nil, err
			}
			sc.Properties[name] = ps
		}
	}
	if req, ok := root["required"].([]yamlValue); ok {
		for _, r := range req {
			s, ok := r.(string)
			if !ok {
				return nil, fmt.Errorf("schema: required entries must be strings")
			}
			sc.Required = append(sc.Required, s)
		}
	}
	return sc, nil
}

func loadPropSchema(name string, raw yamlValue) (*PropSchema, error) {
	ps := &PropSchema{}
	m, ok := raw.(map[string]yamlValue)
	if !ok {
		if raw == nil {
			return ps, nil // bare "name:" — presence only
		}
		return nil, fmt.Errorf("schema: property %s must be a map", name)
	}
	for key, val := range m {
		switch key {
		case "const":
			switch c := val.(type) {
			case string:
				ps.Const = c
			case int64:
				u := uint32(c)
				ps.ConstU32 = &u
			default:
				return nil, fmt.Errorf("schema: property %s: const must be string or int", name)
			}
		case "enum":
			list, ok := val.([]yamlValue)
			if !ok {
				return nil, fmt.Errorf("schema: property %s: enum must be a list", name)
			}
			for _, e := range list {
				s, ok := e.(string)
				if !ok {
					return nil, fmt.Errorf("schema: property %s: enum entries must be strings", name)
				}
				ps.Enum = append(ps.Enum, s)
			}
		case "pattern":
			s, ok := val.(string)
			if !ok {
				return nil, fmt.Errorf("schema: property %s: pattern must be a string", name)
			}
			re, err := regexp.Compile(s)
			if err != nil {
				return nil, fmt.Errorf("schema: property %s: %v", name, err)
			}
			ps.Pattern = re
		case "minItems":
			n, ok := val.(int64)
			if !ok {
				return nil, fmt.Errorf("schema: property %s: minItems must be an int", name)
			}
			ps.MinItems = int(n)
		case "maxItems":
			n, ok := val.(int64)
			if !ok {
				return nil, fmt.Errorf("schema: property %s: maxItems must be an int", name)
			}
			ps.MaxItems = int(n)
		case "reg-like":
			b, ok := val.(bool)
			if !ok {
				return nil, fmt.Errorf("schema: property %s: reg-like must be a bool", name)
			}
			ps.RegLike = b
		case "type":
			s, _ := val.(string)
			switch s {
			case "string":
				ps.Type = TypeString
			case "u32":
				ps.Type = TypeU32
			case "cells":
				ps.Type = TypeCells
			case "bytes":
				ps.Type = TypeBytes
			case "flag":
				ps.Type = TypeFlag
			case "", "any":
				ps.Type = TypeAny
			default:
				return nil, fmt.Errorf("schema: property %s: unknown type %q", name, s)
			}
		default:
			return nil, fmt.Errorf("schema: property %s: unknown key %q", name, key)
		}
	}
	return ps, nil
}

// u32ptr is a convenience for building schemas in Go.
func u32ptr(v uint32) *uint32 { return &v }

// StandardSet returns the binding schemas for the paper's running
// example: memory nodes, CPU nodes, ns16550a UARTs and virtual
// Ethernet devices. These mirror dt-schema's core schemas restricted
// to what the CustomSBC uses.
func StandardSet() *Set {
	set := &Set{}
	set.Add(&Schema{
		ID:     "memory.yaml",
		Select: Select{NodeName: "memory"},
		Properties: map[string]*PropSchema{
			"device_type": {Type: TypeString, Const: "memory"},
			"reg":         {Type: TypeCells, RegLike: true, MinItems: 1, MaxItems: 1024},
		},
		Required:             []string{"device_type", "reg"},
		AdditionalProperties: true,
	})
	set.Add(&Schema{
		ID:     "cpu.yaml",
		Select: Select{NodeName: "cpu"},
		Properties: map[string]*PropSchema{
			"device_type":   {Type: TypeString, Const: "cpu"},
			"compatible":    {Type: TypeString},
			"enable-method": {Type: TypeString, Enum: []string{"psci", "spin-table"}},
			"reg":           {Type: TypeU32},
		},
		Required:             []string{"device_type", "compatible", "reg"},
		AdditionalProperties: true,
	})
	set.Add(&Schema{
		ID:     "ns16550a.yaml",
		Select: Select{NodeName: "uart", Compatible: []string{"ns16550a"}},
		Properties: map[string]*PropSchema{
			"compatible": {Type: TypeString},
			"reg":        {Type: TypeCells, RegLike: true, MinItems: 1, MaxItems: 4},
		},
		Required:             []string{"compatible", "reg"},
		AdditionalProperties: true,
	})
	set.Add(&Schema{
		ID:     "veth.yaml",
		Select: Select{NodeName: "veth", Compatible: []string{"veth"}},
		Properties: map[string]*PropSchema{
			"compatible": {Type: TypeString, Const: "veth"},
			"reg":        {Type: TypeCells, RegLike: true, MinItems: 1, MaxItems: 1},
			"id":         {Type: TypeU32},
		},
		Required:             []string{"compatible", "reg", "id"},
		AdditionalProperties: true,
	})
	return set
}
