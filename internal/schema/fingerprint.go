package schema

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Fingerprint returns a stable content hash of the schema set: two sets
// with the same schemas (IDs, selectors, required lists, property
// constraints) produce the same fingerprint regardless of construction
// order. It identifies the schema-set component of a check-cache key
// (see internal/checkcache), so every field that can change a
// validation verdict must be folded in here.
func (s *Set) Fingerprint() string {
	dumps := make([]string, 0, len(s.Schemas))
	for _, sc := range s.Schemas {
		dumps = append(dumps, schemaDump(sc))
	}
	sort.Strings(dumps)
	h := sha256.New()
	for _, d := range dumps {
		h.Write([]byte(d))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// schemaDump serializes one schema injectively: every variable-length
// string is length-prefixed and lists carry an element count, so no
// two distinct schemas dump identically (values containing ',' or ';'
// cannot shift field boundaries the way a plain join could).
func schemaDump(sc *Schema) string {
	var b strings.Builder
	str := func(s string) { fmt.Fprintf(&b, "%d:%s", len(s), s) }
	list := func(ss []string) {
		fmt.Fprintf(&b, "#%d", len(ss))
		for _, s := range ss {
			str(s)
		}
	}
	b.WriteString("id=")
	str(sc.ID)
	b.WriteString("select=")
	str(sc.Select.NodeName)
	list(sc.Select.Compatible)
	b.WriteString("required=")
	list(sc.Required)
	fmt.Fprintf(&b, "addl=%v;", sc.AdditionalProperties)
	names := make([]string, 0, len(sc.Properties))
	for name := range sc.Properties {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ps := sc.Properties[name]
		b.WriteString("prop=")
		str(name)
		fmt.Fprintf(&b, "type=%d,min=%d,max=%d,reglike=%v,const=",
			ps.Type, ps.MinItems, ps.MaxItems, ps.RegLike)
		str(ps.Const)
		b.WriteString("enum=")
		list(ps.Enum)
		if ps.ConstU32 != nil {
			fmt.Fprintf(&b, "constu32=%d", *ps.ConstU32)
		}
		if ps.Pattern != nil {
			b.WriteString("pattern=")
			str(ps.Pattern.String())
		}
		b.WriteByte(';')
	}
	return b.String()
}
