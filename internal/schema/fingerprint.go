package schema

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Fingerprint returns a stable content hash of the schema set: two sets
// with the same schemas (IDs, selectors, required lists, property
// constraints) produce the same fingerprint regardless of construction
// order. It identifies the schema-set component of a check-cache key
// (see internal/checkcache), so every field that can change a
// validation verdict must be folded in here.
func (s *Set) Fingerprint() string {
	dumps := make([]string, 0, len(s.Schemas))
	for _, sc := range s.Schemas {
		dumps = append(dumps, schemaDump(sc))
	}
	sort.Strings(dumps)
	h := sha256.New()
	for _, d := range dumps {
		h.Write([]byte(d))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

func schemaDump(sc *Schema) string {
	var b strings.Builder
	fmt.Fprintf(&b, "id=%s;select=%s/%s;required=%s;addl=%v;",
		sc.ID, sc.Select.NodeName, strings.Join(sc.Select.Compatible, ","),
		strings.Join(sc.Required, ","), sc.AdditionalProperties)
	names := make([]string, 0, len(sc.Properties))
	for name := range sc.Properties {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ps := sc.Properties[name]
		fmt.Fprintf(&b, "prop=%s:type=%v,const=%q,enum=%s,min=%d,max=%d,reglike=%v",
			name, ps.Type, ps.Const, strings.Join(ps.Enum, ","),
			ps.MinItems, ps.MaxItems, ps.RegLike)
		if ps.ConstU32 != nil {
			fmt.Fprintf(&b, ",constu32=%d", *ps.ConstU32)
		}
		if ps.Pattern != nil {
			fmt.Fprintf(&b, ",pattern=%s", ps.Pattern.String())
		}
		b.WriteByte(';')
	}
	return b.String()
}
