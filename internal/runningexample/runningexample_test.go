package runningexample

import (
	"os"
	"strings"
	"testing"

	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
)

// The testdata files are the on-disk counterparts of this package's
// embedded constants (they feed the CLI tests); keep them in sync.

func TestTestdataDeltasMatchesEmbedded(t *testing.T) {
	onDisk, err := os.ReadFile("../../testdata/customsbc.deltas")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(onDisk)) != strings.TrimSpace(DeltasSource) {
		t.Error("testdata/customsbc.deltas diverged from runningexample.DeltasSource")
	}
}

func TestTestdataFMEquivalentToModel(t *testing.T) {
	onDisk, err := os.ReadFile("../../testdata/customsbc.fm")
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := featmodel.ParseModel("customsbc.fm", string(onDisk))
	if err != nil {
		t.Fatal(err)
	}
	embedded, err := Model()
	if err != nil {
		t.Fatal(err)
	}
	nf, _ := featmodel.NewAnalyzer(fromFile).CountProducts(0)
	ne, _ := featmodel.NewAnalyzer(embedded).CountProducts(0)
	if nf != ne || nf != ProductCount {
		t.Errorf("products: file=%d embedded=%d want=%d", nf, ne, ProductCount)
	}
	ff, fe := fromFile.Names(), embedded.Names()
	if len(ff) != len(fe) {
		t.Fatalf("feature sets differ: %v vs %v", ff, fe)
	}
	for i := range ff {
		if ff[i] != fe[i] {
			t.Fatalf("feature order differs: %v vs %v", ff, fe)
		}
	}
}

func TestTestdataDTSEquivalentToEmbedded(t *testing.T) {
	// the on-disk DTS (used by parser tests and CLI tests) must describe
	// the same tree as the embedded constant; compare canonical prints
	embedded, err := Tree()
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := dts.ParseFile("../../testdata/customsbc.dts")
	if err != nil {
		t.Fatal(err)
	}
	if embedded.Print() != onDisk.Print() {
		t.Errorf("testdata/customsbc.dts diverged from runningexample.CoreDTS:\n--- embedded ---\n%s\n--- on disk ---\n%s",
			embedded.Print(), onDisk.Print())
	}
}

func TestConfigsAreValidProducts(t *testing.T) {
	m, err := Model()
	if err != nil {
		t.Fatal(err)
	}
	a := featmodel.NewAnalyzer(m)
	if !a.IsValid(VM1Config()) {
		t.Errorf("VM1Config invalid: %v", a.ExplainInvalid(VM1Config()))
	}
	if !a.IsValid(VM2Config()) {
		t.Errorf("VM2Config invalid: %v", a.ExplainInvalid(VM2Config()))
	}
}
