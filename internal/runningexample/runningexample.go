// Package runningexample bundles the llhsc paper's running example —
// the CustomSBC DeviceTree (Listings 1 and 2), the delta modules of
// Listing 4, the feature model of Fig. 1a and the two VM products of
// Figs. 1b/1c — as ready-to-use artifacts shared by the pipeline tests,
// the benchmark harness (experiments E1–E7) and the example programs.
//
// Deviations from the paper's listings, all recorded in EXPERIMENTS.md:
//
//   - Listing 4's delta d2 adds "veth0@70000000" under "when veth1";
//     this is treated as a typo for veth1@70000000.
//   - d3's vEthernet node carries its own #address-cells/#size-cells:
//     the DeviceTree specification does not inherit cell sizes, and the
//     veth regs are (base, size) pairs of single cells.
//   - The paper shows only the deltas for virtual devices and the
//     memory cell-size conversion. To generate complete per-VM DTSs the
//     product line also needs (a) conversion deltas for the UART regs
//     once d3 switches the root to 32-bit cells and (b) removal deltas
//     for deselected features; d5/d6 and the rm_* deltas below complete
//     the set in the obvious way.
package runningexample

import (
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
)

// CPUsDTSI is Listing 2: the processor-cluster binding included by the
// core module.
const CPUsDTSI = `
/ {
	cpus {
		#address-cells = <0x1>;
		#size-cells = <0x0>;

		cpu@0 {
			compatible = "arm,cortex-a53";
			device_type = "cpu";
			enable-method = "psci";
			reg = <0x0>;
		};

		cpu@1 {
			compatible = "arm,cortex-a53";
			device_type = "cpu";
			enable-method = "psci";
			reg = <0x1>;
		};
	};
};
`

// CoreDTS is Listing 1: the CustomSBC core module with two 64-bit
// memory banks, the CPU cluster include, and two serial ports.
const CoreDTS = `
/dts-v1/;

/include/ "cpus.dtsi"

/ {
	#address-cells = <2>;
	#size-cells = <2>;
	compatible = "vortex,custom-sbc";

	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000
		       0x0 0x60000000 0x0 0x20000000>;
	};

	uart0: uart@20000000 {
		compatible = "ns16550a";
		reg = <0x0 0x20000000 0x0 0x1000>;
	};

	uart1: uart@30000000 {
		compatible = "ns16550a";
		reg = <0x0 0x30000000 0x0 0x1000>;
	};
};
`

// DeltasSource is Listing 4 (d1–d4) plus the completion deltas (d5/d6
// UART conversions and rm_* removals) described in the package comment.
const DeltasSource = `
delta d1 after d3 when veth0 {
    adds binding vEthernet {
        veth0@80000000 {
            compatible = "veth";
            reg = <0x80000000 0x10000000>;
            id = <0>;
        };
    }
}

delta d2 after d3 when veth1 {
    adds binding vEthernet {
        veth1@70000000 {
            compatible = "veth";
            reg = <0x70000000 0x10000000>;
            id = <1>;
        };
    }
}

delta d3 when (veth0 || veth1) {
    modifies / {
        #address-cells = <1>;
        #size-cells = <1>;
        vEthernet {
            #address-cells = <1>;
            #size-cells = <1>;
        };
    }
}

delta d4 after d3 when memory {
    modifies memory@40000000 {
        reg = <0x40000000 0x20000000
               0x60000000 0x20000000>;
    }
}

delta d5 after d3 when uart0 && (veth0 || veth1) {
    modifies uart@20000000 {
        reg = <0x20000000 0x1000>;
    }
}

delta d6 after d3 when uart1 && (veth0 || veth1) {
    modifies uart@30000000 {
        reg = <0x30000000 0x1000>;
    }
}

delta rm_cpu0 when !cpu@0 {
    removes node cpu@0;
}

delta rm_cpu1 when !cpu@1 {
    removes node cpu@1;
}

delta rm_uart0 when !uart0 {
    removes node uart@20000000;
}

delta rm_uart1 when !uart1 {
    removes node uart@30000000;
}
`

// Includer resolves the core module's /include/ of cpus.dtsi.
func Includer() dts.Includer {
	return dts.MapIncluder{"cpus.dtsi": CPUsDTSI}
}

// Tree parses the core module (Listing 1 + Listing 2).
func Tree() (*dts.Tree, error) {
	return dts.Parse("customsbc.dts", CoreDTS, dts.WithIncluder(Includer()))
}

// Deltas parses the product line's delta modules.
func Deltas() (*delta.Set, error) {
	return delta.Parse("customsbc.deltas", DeltasSource)
}

// Model builds the Fig. 1a feature model: memory mandatory, a XOR CPU
// group of exclusive resources, an OR UART group, an optional XOR
// virtual-Ethernet group, and the veth→cpu cross constraints.
func Model() (*featmodel.Model, error) {
	root := &featmodel.Feature{
		Name: "CustomSBC", Abstract: true, Group: featmodel.GroupAnd,
		Children: []*featmodel.Feature{
			{Name: "memory", Mandatory: true, Group: featmodel.GroupAnd},
			{Name: "cpus", Abstract: true, Mandatory: true, Group: featmodel.GroupXor,
				Children: []*featmodel.Feature{
					{Name: "cpu@0", Exclusive: true, Group: featmodel.GroupAnd},
					{Name: "cpu@1", Exclusive: true, Group: featmodel.GroupAnd},
				}},
			{Name: "uarts", Abstract: true, Mandatory: true, Group: featmodel.GroupOr,
				Children: []*featmodel.Feature{
					{Name: "uart0", Group: featmodel.GroupAnd},
					{Name: "uart1", Group: featmodel.GroupAnd},
				}},
			{Name: "vEthernet", Abstract: true, Group: featmodel.GroupXor,
				Children: []*featmodel.Feature{
					{Name: "veth0", Group: featmodel.GroupAnd},
					{Name: "veth1", Group: featmodel.GroupAnd},
				}},
		},
	}
	return featmodel.NewModel(root,
		featmodel.MustParseExpr("veth0 -> cpu@0"),
		featmodel.MustParseExpr("veth1 -> cpu@1"),
	)
}

// VM1Config is the Fig. 1b product: cpu@0, both UARTs, veth0.
func VM1Config() featmodel.Configuration {
	return featmodel.ConfigOf(
		"CustomSBC", "memory", "cpus", "cpu@0",
		"uarts", "uart0", "uart1", "vEthernet", "veth0",
	)
}

// VM2Config is the Fig. 1c product: cpu@1, both UARTs, veth1.
func VM2Config() featmodel.Configuration {
	return featmodel.ConfigOf(
		"CustomSBC", "memory", "cpus", "cpu@1",
		"uarts", "uart0", "uart1", "vEthernet", "veth1",
	)
}

// ProductCount is the number of valid products of the Fig. 1a model, as
// stated in Section III-A of the paper.
const ProductCount = 12
