package core

import (
	"strings"
	"testing"

	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/runningexample"
	"llhsc/internal/schema"
)

// paperPipeline assembles the full running example.
func paperPipeline(t *testing.T) *Pipeline {
	t.Helper()
	tree, err := runningexample.Tree()
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := runningexample.Deltas()
	if err != nil {
		t.Fatal(err)
	}
	model, err := runningexample.Model()
	if err != nil {
		t.Fatal(err)
	}
	return &Pipeline{
		Core:      tree,
		Deltas:    deltas,
		Model:     model,
		Schemas:   schema.StandardSet(),
		VMConfigs: []featmodel.Configuration{runningexample.VM1Config(), runningexample.VM2Config()},
		VMNames:   []string{"vm1", "vm2"},
	}
}

func TestRunningExampleEndToEnd(t *testing.T) {
	report, err := paperPipeline(t).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !report.OK() {
		t.Fatalf("pipeline reported violations: %v", report.AllViolations())
	}

	// VM1 product: cpu@0 only, veth0, 32-bit addressing
	vm1 := report.VMs[0]
	if vm1.Tree.Lookup("/cpus/cpu@1") != nil {
		t.Error("vm1 must not contain cpu@1")
	}
	if vm1.Tree.Lookup("/cpus/cpu@0") == nil {
		t.Error("vm1 must contain cpu@0")
	}
	if vm1.Tree.Lookup("/vEthernet/veth0@80000000") == nil {
		t.Error("vm1 must contain veth0")
	}
	if ac := vm1.Tree.Root.AddressCells(); ac != 1 {
		t.Errorf("vm1 #address-cells = %d, want 1 (delta d3)", ac)
	}
	if !strings.Contains(vm1.DTS, "veth0@80000000") {
		t.Error("vm1 DTS text missing veth0")
	}

	// VM2 product: cpu@1 only, veth1
	vm2 := report.VMs[1]
	if vm2.Tree.Lookup("/cpus/cpu@0") != nil {
		t.Error("vm2 must not contain cpu@0")
	}
	if vm2.Tree.Lookup("/vEthernet/veth1@70000000") == nil {
		t.Error("vm2 must contain veth1")
	}

	// Platform: union has both CPUs and both veths
	if report.Platform.Tree.Lookup("/cpus/cpu@0") == nil ||
		report.Platform.Tree.Lookup("/cpus/cpu@1") == nil {
		t.Error("platform must contain both CPUs")
	}

	// Listing 3 shape
	for _, want := range []string{
		".cpu_num = 2",
		"{ .base = 0x40000000, .size = 0x20000000 }",
		"{ .base = 0x60000000, .size = 0x20000000 }",
		".console = { .base = 0x20000000 }",
		".core_num = (uint8_t[]) {2}",
	} {
		if !strings.Contains(report.PlatformC, want) {
			t.Errorf("platform C missing %q", want)
		}
	}

	// Listing 6 shape
	for _, want := range []string{
		".vmlist_size = 2",
		".cpu_affinity = 0b1,",
		".cpu_affinity = 0b10,",
		".shmem_id = 0",
		".shmem_id = 1",
		".shmemlist_size = 2",
	} {
		if !strings.Contains(report.ConfigC, want) {
			t.Errorf("config C missing %q", want)
		}
	}

	if len(report.QEMUArgs) == 0 || report.QEMUArgs[0] != "qemu-system-aarch64" {
		t.Errorf("QEMU args = %v", report.QEMUArgs)
	}
}

func TestPipelineDetectsTruncationWithBlame(t *testing.T) {
	// Section IV-C: drop d4 from the delta set; the semantic checker
	// must find the collision at 0x0.
	p := paperPipeline(t)
	var kept []*delta.Delta
	for _, d := range p.Deltas.Deltas {
		if d.Name != "d4" {
			kept = append(kept, d)
		}
	}
	set, err := delta.NewSet(kept)
	if err != nil {
		t.Fatal(err)
	}
	p.Deltas = set

	report, err := p.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if report.OK() {
		t.Fatal("omitting d4 must produce violations")
	}
	found := false
	for _, v := range report.VMs[0].Violations {
		if v.Rule == "semantic:overlap" && strings.Contains(v.Message, "address 0x0") {
			found = true
		}
	}
	if !found {
		t.Errorf("vm1 violations = %v; want an overlap at 0x0", report.VMs[0].Violations)
	}
	if report.PlatformC != "" || report.ConfigC != "" {
		t.Error("artifacts must not be generated for an invalid product line")
	}
}

func TestPipelineDetectsAllocationConflict(t *testing.T) {
	p := paperPipeline(t)
	// both VMs claim cpu@0
	bad := featmodel.ConfigOf("CustomSBC", "memory", "cpus", "cpu@0", "uarts", "uart0")
	p.VMConfigs = []featmodel.Configuration{runningexample.VM1Config(), bad}
	report, err := p.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(report.Allocation) == 0 {
		t.Fatal("allocation conflict not reported")
	}
	if report.OK() {
		t.Error("report should not be OK")
	}
}

func TestPipelineDetectsAddressClashWithDeltaBlame(t *testing.T) {
	// Section I-A, injected through the product line: a bad delta moves
	// uart1 onto the second memory bank. The violation must blame the
	// delta by name.
	p := paperPipeline(t)
	badDelta := `
delta clash after d6 when uart1 && (veth0 || veth1) {
    modifies uart@30000000 {
        reg = <0x60000000 0x1000>;
    }
}
`
	extra, err := delta.Parse("bad.deltas", runningexample.DeltasSource+badDelta)
	if err != nil {
		t.Fatal(err)
	}
	p.Deltas = extra

	report, err := p.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if report.OK() {
		t.Fatal("address clash not detected")
	}
	var blamed bool
	for _, v := range report.AllViolations() {
		if v.Rule == "semantic:overlap" && v.Origin.Delta == "clash" {
			blamed = true
		}
	}
	if !blamed {
		t.Errorf("violations = %v; want an overlap blamed on delta 'clash'", report.AllViolations())
	}
}

func TestPipelineValidation(t *testing.T) {
	p := &Pipeline{}
	if _, err := p.Run(); err == nil {
		t.Error("empty pipeline should fail validation")
	}

	full := paperPipeline(t)
	full.VMNames = []string{"only-one"}
	if err := full.Validate(); err == nil {
		t.Error("mismatched VMNames should fail validation")
	}
}

func TestPipelineSingleVMNoVirtualDevices(t *testing.T) {
	// A single VM using all hardware, no veths: no deltas beyond d4
	// apply; the product stays 64-bit and must check out clean.
	p := paperPipeline(t)
	all := featmodel.ConfigOf("CustomSBC", "memory", "cpus", "cpu@0", "uarts", "uart0", "uart1")
	p.VMConfigs = []featmodel.Configuration{all}
	p.VMNames = []string{"vm"}
	report, err := p.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !report.OK() {
		t.Fatalf("violations: %v", report.AllViolations())
	}
	if !strings.Contains(report.ConfigC, ".vmlist_size = 1") {
		t.Error("config should have one VM")
	}
	// d4 ran (when memory) but d3 did not: the tree keeps 2-cell
	// addressing and d4's 4-cell reg reads as one 64-bit bank.
	if ac := report.VMs[0].Tree.Root.AddressCells(); ac != 2 {
		t.Errorf("#address-cells = %d, want 2", ac)
	}
}

func TestReportAllViolationsAggregates(t *testing.T) {
	r := &Report{}
	if len(r.AllViolations()) != 0 || !r.OK() {
		t.Error("empty report should be OK")
	}
}

func TestPipelineAmbiguousDeltasIsError(t *testing.T) {
	p := paperPipeline(t)
	conflicting := `
delta x1 when memory { modifies memory@40000000 { extra = <1>; } }
delta x2 when memory { modifies memory@40000000 { extra = <2>; } }
`
	set, err := delta.Parse("conflict", runningexample.DeltasSource+conflicting)
	if err != nil {
		t.Fatal(err)
	}
	p.Deltas = set
	if _, err := p.Run(); err == nil {
		t.Fatal("ambiguous deltas should make Run fail")
	} else if !strings.Contains(err.Error(), "no order") {
		t.Errorf("err = %v", err)
	}
}

func TestPipelineMemReserveViolation(t *testing.T) {
	p := paperPipeline(t)
	p.Core.MemReserves = append(p.Core.MemReserves, dtsMemReserve(0x10000000, 0x1000))
	report, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("memreserve outside RAM should be flagged")
	}
	found := false
	for _, v := range report.AllViolations() {
		if v.Rule == "semantic:memreserve-outside-ram" {
			found = true
		}
	}
	if !found {
		t.Errorf("violations = %v", report.AllViolations())
	}
}

func dtsMemReserve(addr, size uint64) dts.MemReserve {
	return dts.MemReserve{Address: addr, Size: size}
}
