package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"llhsc/internal/constraints"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/sat"
	"llhsc/internal/schema"
)

// wideDevicePipeline builds a pipeline whose semantic phase issues many
// SMT queries: n device nodes with disjoint regions give n*(n-1)/2
// overlap checks, so an uncancelled run takes far longer than the
// cancellation latency the tests assert.
func wideDevicePipeline(t *testing.T, n int) *Pipeline {
	t.Helper()
	var b strings.Builder
	b.WriteString("/dts-v1/;\n/ {\n#address-cells = <1>;\n#size-cells = <1>;\n")
	b.WriteString("memory@0 { device_type = \"memory\"; reg = <0x0 0x1000>; };\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "dev%d: uart@%x { compatible = \"ns16550a\"; reg = <0x%x 0x100>; };\n",
			i, 0x1000+i*0x1000, 0x1000+i*0x1000)
	}
	b.WriteString("};\n")
	tree, err := dts.Parse("wide.dts", b.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	root := featmodel.NewFeature("root")
	model, err := featmodel.NewModel(root)
	if err != nil {
		t.Fatal(err)
	}
	set, err := delta.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &Pipeline{
		Core:      tree,
		Deltas:    set,
		Model:     model,
		Schemas:   schema.StandardSet(),
		VMConfigs: []featmodel.Configuration{featmodel.ConfigOf("root")},
		// The default sweep strategy prunes these disjoint regions to
		// zero solver queries; the pairwise baseline keeps the long
		// semantic phase this test's cancellation-latency bound needs.
		SemanticStrategy: constraints.StrategyPairwise,
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	p := wideDevicePipeline(t, 120) // ~7k overlap queries, well over 100ms

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := p.RunContext(ctx, Limits{})
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(context.Canceled)", err)
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %T, want *LimitError", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("cancellation took %v, want < 100ms", elapsed)
	}
}

func TestRunContextAlreadyCanceled(t *testing.T) {
	p := paperPipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.RunContext(ctx, Limits{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextDeltaOpsCap(t *testing.T) {
	p := paperPipeline(t)
	_, err := p.RunContext(context.Background(), Limits{MaxDeltaOps: 1})
	var sl *delta.StepLimitError
	if !errors.As(err, &sl) {
		t.Fatalf("err = %v, want *delta.StepLimitError", err)
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %T, want wrapped in *LimitError", err)
	}
}

func TestRunContextSolverBudget(t *testing.T) {
	// An already-expired solver deadline stops the first SAT query.
	p := paperPipeline(t)
	_, err := p.RunContext(context.Background(), Limits{
		Solver: sat.Budget{Deadline: time.Now().Add(-time.Second)},
	})
	var lim *sat.LimitError
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v, want *sat.LimitError", err)
	}
	if lim.Reason != sat.StopDeadline {
		t.Errorf("reason = %q, want %q", lim.Reason, sat.StopDeadline)
	}
}

func TestRunContextUnlimitedMatchesRun(t *testing.T) {
	p := paperPipeline(t)
	want, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.RunContext(context.Background(), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got.OK() != want.OK() || len(got.VMs) != len(want.VMs) {
		t.Errorf("RunContext result diverges from Run")
	}
}
