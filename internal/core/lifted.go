// Family-based lifted checking at the pipeline level (DESIGN.md §14):
// instead of deriving every product and checking each tree, ModeLifted
// merges the core and delta modules into one variability-aware tree
// (delta.LiftedTree) and discharges all constraint families for the
// WHOLE product line in a single incremental solver session
// (constraints.LiftedChecker). Products are still derived for the
// requested VMs — their traces, DTS renderings and the Bao artifacts
// are unchanged — but no per-product family checking runs; the lifted
// findings, each carrying a concrete witness configuration, are the
// run's verdict.
package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"llhsc/internal/checkcache"
	"llhsc/internal/constraints"
	"llhsc/internal/featmodel"
	"llhsc/internal/obs"
)

// Mode selects how the pipeline discharges the constraint families.
type Mode int

const (
	// ModeEnumerate (the default) derives one product per VM plus the
	// platform union and checks each tree independently — the paper's
	// original workflow.
	ModeEnumerate Mode = iota
	// ModeLifted checks the whole product line at once: one merged tree,
	// one incremental solver session, one reachability query per
	// candidate violation. Verdicts cover every valid configuration,
	// not just the requested VMs, and each finding decodes to a witness
	// product (Report.Lifted).
	ModeLifted
)

// String returns the flag spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeEnumerate:
		return "enumerate"
	case ModeLifted:
		return "lifted"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a -mode flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "enumerate", "":
		return ModeEnumerate, nil
	case "lifted":
		return ModeLifted, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want enumerate or lifted)", s)
	}
}

// Set implements flag.Value, so binaries can register a *Mode directly
// with flag.Var and an invalid spelling fails at flag-parse time with
// the list of valid ones.
func (m *Mode) Set(v string) error {
	parsed, err := ParseMode(v)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// runLifted lifts the delta set over the core module and runs the
// family-based checker once for the whole product line, filling
// Report.Lifted. With a Cache installed, the result is memoized under
// the merged tree's dump plus the same budget knobs the per-product
// keys fold in (the mode is part of the knob string, so lifted and
// enumerative verdicts can never be served for one another).
func (p *Pipeline) runLifted(ctx context.Context, st *runState, report *Report, root *obs.Span) error {
	span := root.StartChild("lifted")
	defer span.End()
	lt, err := p.Deltas.Lift(p.Core)
	if err != nil {
		return fmt.Errorf("core: lift: %w", err)
	}
	compute := func() ([]constraints.Violation, error) {
		lc := constraints.NewLiftedChecker(p.Model, p.Schemas)
		lc.Budget = st.limits.Solver
		lc.SkipInterrupts = p.SkipInterrupts
		lc.LintOnly = p.LintOnly
		lc.OnQuery = p.liftedObserver(st)
		var t0 time.Time
		if p.Metrics != nil {
			t0 = time.Now()
		}
		findings, err := lc.CheckContext(ctx, lt)
		if p.Metrics != nil {
			p.Metrics.observeFamily("lifted", "lifted", time.Since(t0).Seconds())
		}
		stats := lc.LastStats()
		st.addFamily("lifted", familyStatsFromLifted(stats))
		st.addLifted(liftedRunStatsFrom(stats))
		if err != nil {
			return nil, err
		}
		return encodeLiftedFindings(findings), nil
	}
	var encoded []constraints.Violation
	if p.Cache == nil {
		encoded, err = compute()
	} else {
		key := checkcache.Key(lt.Dump(), st.schemaFP, p.knobString(st))
		var hit bool
		encoded, hit, err = p.Cache.Do(ctx, key, compute)
		if hit {
			span.SetAttr("cache", "hit")
		} else {
			span.SetAttr("cache", "miss")
		}
		st.addCache(hit)
	}
	if err != nil {
		return &LimitError{Phase: "lifted", Err: err}
	}
	report.Lifted = decodeLiftedFindings(encoded)
	span.SetInt("findings", uint64(len(report.Lifted)))
	return nil
}

// liftedWitnessRule marks the sidecar violation that carries a lifted
// finding's family and witness configuration through the check cache,
// whose value type is a violation list. The marker precedes its
// finding's violation; the pair round-trips losslessly and never
// escapes the core package (decode happens immediately after Do).
const liftedWitnessRule = "lifted:witness"

// encodeLiftedFindings flattens findings into the violation-list shape
// the check cache stores: [witness-marker, violation] per finding.
func encodeLiftedFindings(fs []constraints.LiftedFinding) []constraints.Violation {
	out := make([]constraints.Violation, 0, 2*len(fs))
	for _, f := range fs {
		out = append(out, constraints.Violation{
			Rule:    liftedWitnessRule,
			Path:    f.Family,
			Message: strings.Join(f.Config.Sorted(), " "),
		}, f.Violation)
	}
	return out
}

// decodeLiftedFindings reverses encodeLiftedFindings.
func decodeLiftedFindings(vs []constraints.Violation) []constraints.LiftedFinding {
	out := make([]constraints.LiftedFinding, 0, len(vs)/2)
	for i := 0; i+1 < len(vs); i += 2 {
		out = append(out, constraints.LiftedFinding{
			Family:    vs[i].Path,
			Config:    featmodel.ConfigOf(strings.Fields(vs[i].Message)...),
			Violation: vs[i+1],
		})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
