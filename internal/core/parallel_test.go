// Determinism, cancellation and caching tests for the parallel
// pipeline. External test package so the bench corpus can be imported
// without a cycle.
package core_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"llhsc/internal/bench"
	"llhsc/internal/checkcache"
	"llhsc/internal/constraints"
	"llhsc/internal/core"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/runningexample"
	"llhsc/internal/schema"
)

// examplePipeline builds the paper's running-example pipeline, with an
// optional replacement core tree (for the fault corpus).
func examplePipeline(t *testing.T, coreTree *dts.Tree) *core.Pipeline {
	t.Helper()
	if coreTree == nil {
		var err error
		coreTree, err = runningexample.Tree()
		if err != nil {
			t.Fatal(err)
		}
	}
	deltas, err := runningexample.Deltas()
	if err != nil {
		t.Fatal(err)
	}
	model, err := runningexample.Model()
	if err != nil {
		t.Fatal(err)
	}
	return &core.Pipeline{
		Core:    coreTree,
		Deltas:  deltas,
		Model:   model,
		Schemas: schema.StandardSet(),
		VMConfigs: []featmodel.Configuration{
			runningexample.VM1Config(), runningexample.VM2Config(),
		},
		VMNames: []string{"vm1", "vm2"},
	}
}

// fingerprint renders every user-visible part of a report into one
// string, so byte-identity across runs is a single comparison.
func fingerprint(r *core.Report) string {
	var b strings.Builder
	dump := func(vs []constraints.Violation) {
		for _, v := range vs {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	b.WriteString("allocation:\n")
	dump(r.Allocation)
	for _, vm := range r.VMs {
		fmt.Fprintf(&b, "vm %s trace=%v\n", vm.Name, vm.Trace)
		b.WriteString(vm.DTS)
		dump(vm.Violations)
	}
	fmt.Fprintf(&b, "platform trace=%v\n", r.Platform.Trace)
	b.WriteString(r.Platform.DTS)
	dump(r.Platform.Violations)
	b.WriteString(r.PlatformC)
	b.WriteString(r.ConfigC)
	b.WriteString(r.JailhouseRootC)
	for _, c := range r.JailhouseCellsC {
		b.WriteString(c)
	}
	fmt.Fprintf(&b, "qemu=%v\n", r.QEMUArgs)
	return b.String()
}

// runBoth executes the same pipeline serially and in parallel and
// returns both outcomes.
func runBoth(p *core.Pipeline) (serialFP, parallelFP string, serialErr, parallelErr error) {
	serial, serialErr := p.RunContext(context.Background(), core.Limits{Parallelism: 1})
	parallel, parallelErr := p.RunContext(context.Background(), core.Limits{Parallelism: 8})
	if serialErr == nil {
		serialFP = fingerprint(serial)
	}
	if parallelErr == nil {
		parallelFP = fingerprint(parallel)
	}
	return
}

// TestParallelReportMatchesSerialRunningExample asserts the tentpole's
// determinism guarantee: the parallel Report — violations, rendered
// DTS, generated C — is byte-identical to the serial one.
func TestParallelReportMatchesSerialRunningExample(t *testing.T) {
	p := examplePipeline(t, nil)
	serialFP, parallelFP, serialErr, parallelErr := runBoth(p)
	if serialErr != nil || parallelErr != nil {
		t.Fatalf("serial err=%v parallel err=%v", serialErr, parallelErr)
	}
	if serialFP != parallelFP {
		t.Errorf("parallel report differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialFP, parallelFP)
	}
}

// TestParallelReportMatchesSerialFaultCorpus repeats the determinism
// check over every parsable fault of the E10 corpus: faulty inputs
// produce violations (or structural errors), and those must also be
// independent of scheduling.
func TestParallelReportMatchesSerialFaultCorpus(t *testing.T) {
	for _, f := range bench.AllFaults() {
		if f == bench.FaultPathologicalCNF {
			continue // no DTS form
		}
		t.Run(f.String(), func(t *testing.T) {
			src, inc := bench.FaultSource(f)
			tree, err := dts.Parse("faulty.dts", src, dts.WithIncluder(inc))
			if err != nil {
				t.Skipf("fault does not parse (%v); nothing to check", err)
			}
			p := examplePipeline(t, tree)
			serialFP, parallelFP, serialErr, parallelErr := runBoth(p)
			if (serialErr == nil) != (parallelErr == nil) {
				t.Fatalf("error mismatch: serial=%v parallel=%v", serialErr, parallelErr)
			}
			if serialErr != nil {
				if serialErr.Error() != parallelErr.Error() {
					t.Fatalf("error text mismatch:\nserial:   %v\nparallel: %v",
						serialErr, parallelErr)
				}
				return
			}
			if serialFP != parallelFP {
				t.Errorf("parallel report differs from serial for %v", f)
			}
		})
	}
}

// TestParallelCancellationStopsWorkers cancels mid-run and requires a
// prompt *core.LimitError wrapping context.Canceled.
func TestParallelCancellationStopsWorkers(t *testing.T) {
	pipeline, err := bench.HeavyProductLine(8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond) // the full run takes ~40ms
		cancel()
	}()
	start := time.Now()
	_, err = pipeline.RunContext(ctx, core.Limits{Parallelism: 4})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("run completed despite cancellation (cancel may have been too slow)")
	}
	var le *core.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v (%T), want *core.LimitError", err, err)
	}
	if le.Phase == "" {
		t.Error("LimitError has no phase")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, does not wrap context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; workers did not stop promptly", elapsed)
	}
}

// TestCacheHitWithinSingleRun uses a single-VM line, where the platform
// union tree equals the VM tree: the second check must be served from
// the cache (or join the first in flight), not solved again.
func TestCacheHitWithinSingleRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			pipeline, err := bench.SyntheticProductLine(2, 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			cache := checkcache.New(16)
			pipeline.Cache = cache
			report, err := pipeline.RunContext(context.Background(),
				core.Limits{Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !report.OK() {
				t.Fatalf("unexpected violations: %v", report.AllViolations())
			}
			st := cache.Stats()
			if st.Misses != 1 || st.Hits != 1 {
				t.Errorf("stats = %+v, want exactly 1 miss (vm tree) and 1 hit (platform tree)", st)
			}
			if report.Platform.DTS != report.VMs[0].DTS {
				t.Error("single-VM line: platform and VM DTS should coincide")
			}
		})
	}
}

// blamePipeline builds a single-VM product line whose derived tree is
// independent of deltaName: the named delta adds a uart node that is
// missing its required reg property, so every run yields the same
// canonical DTS text but a violation blaming deltaName.
func blamePipeline(t *testing.T, deltaName string) *core.Pipeline {
	t.Helper()
	p, err := bench.SyntheticProductLine(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	faulty := &delta.Delta{
		Name: deltaName,
		Ops: []delta.Operation{{
			Kind:   delta.OpAdds,
			Target: "/",
			Fragment: &dts.Node{Name: "/", Children: []*dts.Node{{
				Name: "uart@20000000",
				Properties: []*dts.Property{{
					Name: "compatible", Value: dts.StringValueOf("ns16550a"),
				}},
			}}},
		}},
	}
	set, err := delta.NewSet(append(append([]*delta.Delta{}, p.Deltas.Deltas...), faulty))
	if err != nil {
		t.Fatal(err)
	}
	p.Deltas = set
	return p
}

// TestCacheDoesNotLeakBlameAcrossDeltaNames shares one cache between
// two requests whose products print byte-identically but derive from
// differently-named delta modules. The second request must report
// violations blaming its own deltas — a cache keyed on canonical text
// alone would replay the first request's blame metadata.
func TestCacheDoesNotLeakBlameAcrossDeltaNames(t *testing.T) {
	cache := checkcache.New(16)
	var texts []string
	for _, name := range []string{"add_uart_alpha", "add_uart_beta"} {
		p := blamePipeline(t, name)
		p.Cache = cache
		report, err := p.RunContext(context.Background(), core.Limits{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if report.OK() {
			t.Fatal("expected a violation for the reg-less uart")
		}
		texts = append(texts, report.VMs[0].DTS)
		var blamed []string
		all := append(append([]constraints.Violation{}, report.VMs[0].Violations...),
			report.Platform.Violations...)
		for _, v := range all {
			if v.Origin.Delta != "" {
				blamed = append(blamed, v.Origin.Delta)
			}
		}
		if len(blamed) == 0 {
			t.Fatalf("%s: no violation carries delta blame: %v", name, all)
		}
		for _, d := range blamed {
			if d != name {
				t.Errorf("%s: violation blames delta %q (leaked from a previous request)", name, d)
			}
		}
	}
	if texts[0] != texts[1] {
		t.Fatal("test premise broken: the two products should print identically")
	}
}

// TestCacheDoesNotChangeReport runs the example with and without a
// cache (twice, to exercise warm hits) and demands identical reports.
func TestCacheDoesNotChangeReport(t *testing.T) {
	base := examplePipeline(t, nil)
	plain, err := base.RunContext(context.Background(), core.Limits{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	cached := examplePipeline(t, nil)
	cached.Cache = checkcache.New(16)
	cold, err := cached.RunContext(context.Background(), core.Limits{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := cached.RunContext(context.Background(), core.Limits{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(plain) != fingerprint(cold) {
		t.Error("cold cached report differs from uncached")
	}
	if fingerprint(plain) != fingerprint(warm) {
		t.Error("warm cached report differs from uncached")
	}
	st := cached.Cache.Stats()
	if st.Hits == 0 {
		t.Errorf("warm run recorded no hits: %+v", st)
	}
}

// TestSkipDTSLeavesViolationsIntact checks the opt-out: no rendered
// DTS, same verdicts.
func TestSkipDTSLeavesViolationsIntact(t *testing.T) {
	p := examplePipeline(t, nil)
	p.SkipDTS = true
	report, err := p.RunContext(context.Background(), core.Limits{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("unexpected violations: %v", report.AllViolations())
	}
	for _, vm := range report.VMs {
		if vm.DTS != "" {
			t.Errorf("%s: DTS rendered despite SkipDTS", vm.Name)
		}
		if vm.Tree == nil {
			t.Errorf("%s: tree missing", vm.Name)
		}
	}
	if report.Platform.DTS != "" {
		t.Error("platform DTS rendered despite SkipDTS")
	}
	if report.ConfigC == "" {
		t.Error("artifact generation broken by SkipDTS")
	}
}
