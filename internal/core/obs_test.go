// Observability tests for the pipeline: span-tree determinism across
// schedules, stats plumbing into the report, and registry safety under
// the parallel fan-out with a concurrent /metrics scrape.
package core_test

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"llhsc/internal/checkcache"
	"llhsc/internal/core"
	"llhsc/internal/obs"
)

// tracedRun executes the pipeline with a root span installed and
// returns the span plus the report.
func tracedRun(t *testing.T, p *core.Pipeline, parallelism int) (*obs.Span, *core.Report) {
	t.Helper()
	root := obs.NewSpan("run")
	ctx := obs.ContextWithSpan(context.Background(), root)
	report, err := p.RunContext(ctx, core.Limits{Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	return root, report
}

// TestSpanTreeDeterministicAcrossSchedules runs the running example
// serially and with a large pool (no cache: single-flight would make
// which product computes a shared entry timing-dependent) and requires
// the same set of phase names in both span trees.
func TestSpanTreeDeterministicAcrossSchedules(t *testing.T) {
	serialRoot, _ := tracedRun(t, examplePipeline(t, nil), 1)
	parallelRoot, _ := tracedRun(t, examplePipeline(t, nil), 8)
	serialPhases := serialRoot.PhaseSet()
	parallelPhases := parallelRoot.PhaseSet()
	if !reflect.DeepEqual(serialPhases, parallelPhases) {
		t.Errorf("phase sets differ:\nserial:   %v\nparallel: %v",
			serialPhases, parallelPhases)
	}
	for _, want := range []string{
		"allocation", "vm:vm1", "vm:vm2", "platform", "derive", "check",
		"family:syntactic", "family:semantic", "family:memreserve",
		"family:interrupt", "baogen",
	} {
		found := false
		for _, got := range serialPhases {
			if got == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("phase %q missing from span tree %v", want, serialPhases)
		}
	}
}

// TestSpanChildOrderDeterministic: the per-product children of the
// root (and the family children of each check span) must appear in
// index order regardless of scheduling, because the parallel fan-out
// pre-creates them before dispatch.
func TestSpanChildOrderDeterministic(t *testing.T) {
	order := func(root *obs.Span) []string {
		var names []string
		var walk func(sn obs.SpanSnapshot)
		walk = func(sn obs.SpanSnapshot) {
			names = append(names, sn.Name)
			for _, c := range sn.Children {
				walk(c)
			}
		}
		walk(root.Snapshot())
		return names
	}
	serialRoot, _ := tracedRun(t, examplePipeline(t, nil), 1)
	parallelRoot, _ := tracedRun(t, examplePipeline(t, nil), 8)
	if s, p := order(serialRoot), order(parallelRoot); !reflect.DeepEqual(s, p) {
		t.Errorf("pre-order walk differs:\nserial:   %v\nparallel: %v", s, p)
	}
}

// TestReportStats: every run carries the per-family work summary, and
// the semantic family reports real solver activity on the running
// example.
func TestReportStats(t *testing.T) {
	_, report := tracedRun(t, examplePipeline(t, nil), 1)
	for _, fam := range []string{"allocation", "syntactic", "semantic", "memreserve", "interrupt"} {
		if _, ok := report.Stats.Families[fam]; !ok {
			t.Errorf("Stats.Families missing %q: %+v", fam, report.Stats)
		}
	}
	// On the running example the sweep prunes every candidate pair, so
	// the semantic family's measurable work is the pruning itself.
	sem := report.Stats.Families["semantic"]
	if sem.PairsPruned == 0 {
		t.Errorf("semantic family reports no pruned pairs: %+v", sem)
	}
	if alloc := report.Stats.Families["allocation"]; alloc.Propagations == 0 {
		t.Errorf("allocation family reports no SAT work: %+v", alloc)
	}
	// 3 trees checked by each per-tree family (vm1, vm2, platform).
	if got := report.Stats.Families["syntactic"].Checks; got != 3 {
		t.Errorf("syntactic Checks = %d, want 3", got)
	}
	if report.Stats.CacheHits != 0 || report.Stats.CacheMisses != 0 {
		t.Errorf("cache counters nonzero without a cache: %+v", report.Stats)
	}
}

// TestReportStatsCacheCounters: with a cache installed the run's stats
// record each lookup, and cache hits contribute no duplicate family
// work.
func TestReportStatsCacheCounters(t *testing.T) {
	p := examplePipeline(t, nil)
	p.Cache = checkcache.New(16)
	_, report := tracedRun(t, p, 1)
	if got := report.Stats.CacheHits + report.Stats.CacheMisses; got != 3 {
		t.Errorf("cache lookups = %d, want 3 (one per product)", got)
	}
	if report.Stats.CacheMisses == 0 {
		t.Error("first run must miss at least once")
	}
	checked := report.Stats.Families["syntactic"].Checks
	if checked != report.Stats.CacheMisses {
		t.Errorf("syntactic Checks = %d, want one per cache miss (%d)",
			checked, report.Stats.CacheMisses)
	}
}

// TestPipelineMetricsUnderRaceWithScrape hammers one shared registry
// from concurrent pipeline runs (each with the per-tree fan-out) while
// scraping /metrics text in parallel; run under -race this is the
// tentpole's registry-safety check. It then asserts the scraped totals
// match the sum of the per-run reports.
func TestPipelineMetricsUnderRaceWithScrape(t *testing.T) {
	reg := obs.NewRegistry()
	metrics := core.NewPipelineMetrics(reg)

	const runs = 4
	reports := make([]*core.Report, runs)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				reg.WritePrometheus(&b)
			}
		}
	}()
	var runWG sync.WaitGroup
	for i := 0; i < runs; i++ {
		runWG.Add(1)
		go func(i int) {
			defer runWG.Done()
			p := examplePipeline(t, nil)
			p.Metrics = metrics
			report, err := p.RunContext(context.Background(), core.Limits{Parallelism: 4})
			if err != nil {
				t.Error(err)
				return
			}
			reports[i] = report
		}(i)
	}
	runWG.Wait()
	close(stop)
	wg.Wait()

	var wantProps uint64
	for _, r := range reports {
		if r == nil {
			t.Fatal("missing report")
		}
		wantProps += r.Stats.Families["allocation"].Propagations
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	text := b.String()
	for _, family := range []string{
		"llhsc_sat_conflicts_total", "llhsc_constraints_solver_calls_total",
		"llhsc_constraints_pairs_pruned_total", "llhsc_smt_intern_hits_total",
		"llhsc_core_runs_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("scrape missing family %s", family)
		}
	}
	want := `llhsc_sat_propagations_total{family="allocation"}`
	found := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, want) {
			found = true
			var got float64
			if _, err := fmt.Sscan(strings.TrimSpace(strings.TrimPrefix(line, want)), &got); err != nil {
				t.Fatalf("unparsable sample %q: %v", line, err)
			}
			if uint64(got) != wantProps {
				t.Errorf("registry allocation propagations = %d, want %d (sum of reports)", uint64(got), wantProps)
			}
		}
	}
	if !found {
		t.Errorf("sample %s missing from scrape", want)
	}
}
