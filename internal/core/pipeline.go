// Package core implements the llhsc workflow of the paper's Fig. 2:
// starting from a core-module DTS, a delta-module set, a feature model
// and binding schemas, it derives one product DTS per VM plus the
// platform DTS (the union product), discharges the three constraint
// families of Section IV (allocation, syntactic, semantic) through the
// SMT solver, and — when everything is provably correct — generates the
// Bao hypervisor configuration files of Listings 3 and 6.
package core

import (
	"context"
	"errors"
	"fmt"

	"llhsc/internal/baogen"
	"llhsc/internal/constraints"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/sat"
	"llhsc/internal/schema"
)

// Limits bounds the resources one pipeline run may consume. The zero
// value imposes no limits.
type Limits struct {
	// Solver bounds every SAT/SMT query issued by the constraint
	// checkers (deadline, conflicts, learnt-clause memory).
	Solver sat.Budget
	// MaxDeltaOps caps the number of delta operations applied while
	// deriving each product (0 = unlimited).
	MaxDeltaOps int
}

// LimitError reports a pipeline run cut short by a resource limit or
// cancellation. It wraps the underlying cause — a *sat.LimitError, a
// *delta.StepLimitError, or a context error — so callers can classify
// it with errors.Is/As.
type LimitError struct {
	// Phase names the pipeline stage that was interrupted:
	// "allocation", "vm:<name>", or "platform".
	Phase string
	Err   error
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("core: %s check stopped: %v", e.Phase, e.Err)
}

// Unwrap returns the underlying cause.
func (e *LimitError) Unwrap() error { return e.Err }

// Pipeline is a configured llhsc run.
type Pipeline struct {
	// Core is the core-module DTS (Listing 1).
	Core *dts.Tree
	// Deltas is the product line's delta-module set (Listing 4).
	Deltas *delta.Set
	// Model is the feature model (Fig. 1a).
	Model *featmodel.Model
	// Schemas are the binding schemas for the syntactic checker;
	// schema.StandardSet() covers the running example.
	Schemas *schema.Set
	// VMConfigs selects one product per VM (Figs. 1b/1c).
	VMConfigs []featmodel.Configuration
	// VMNames optionally names the VMs ("vm1", "vm2", ... by default).
	VMNames []string
	// SkipInterrupts disables the interrupt-uniqueness extension check.
	SkipInterrupts bool
}

// VMResult is the outcome for one VM.
type VMResult struct {
	Name       string
	Config     featmodel.Configuration
	Trace      []string // applied delta modules, in order
	Tree       *dts.Tree
	DTS        string
	Violations []constraints.Violation
}

// PlatformResult is the outcome for the platform (union) product.
type PlatformResult struct {
	Config     featmodel.Configuration
	Trace      []string
	Tree       *dts.Tree
	DTS        string
	Violations []constraints.Violation
}

// Report is the result of a pipeline run.
type Report struct {
	Allocation []constraints.Violation
	VMs        []VMResult
	Platform   PlatformResult

	// Generated artifacts; empty unless OK().
	PlatformC string
	ConfigC   string
	QEMUArgs  []string

	// Jailhouse equivalents (the paper's "others like Jailhouse can
	// also be supported"): the root-cell config plus one cell config
	// per VM, indexed like VMs.
	JailhouseRootC  string
	JailhouseCellsC []string
}

// OK reports whether every check passed.
func (r *Report) OK() bool {
	if len(r.Allocation) > 0 || len(r.Platform.Violations) > 0 {
		return false
	}
	for _, vm := range r.VMs {
		if len(vm.Violations) > 0 {
			return false
		}
	}
	return true
}

// AllViolations flattens every violation in the report.
func (r *Report) AllViolations() []constraints.Violation {
	var out []constraints.Violation
	out = append(out, r.Allocation...)
	for _, vm := range r.VMs {
		out = append(out, vm.Violations...)
	}
	out = append(out, r.Platform.Violations...)
	return out
}

// Validate checks that the pipeline is completely configured.
func (p *Pipeline) Validate() error {
	switch {
	case p.Core == nil:
		return errors.New("core: missing core-module DTS")
	case p.Deltas == nil:
		return errors.New("core: missing delta set")
	case p.Model == nil:
		return errors.New("core: missing feature model")
	case p.Schemas == nil:
		return errors.New("core: missing schema set")
	case len(p.VMConfigs) == 0:
		return errors.New("core: no VM configurations")
	case len(p.VMNames) > 0 && len(p.VMNames) != len(p.VMConfigs):
		return errors.New("core: VMNames length does not match VMConfigs")
	}
	return nil
}

// Run executes the full workflow. An error is returned only for
// structural failures (invalid pipeline, delta application errors);
// constraint violations are reported in the Report, not as errors.
func (p *Pipeline) Run() (*Report, error) {
	return p.RunContext(context.Background(), Limits{})
}

// RunContext executes the full workflow under a context and resource
// limits. Cancellation or an exhausted budget aborts the run with a
// *LimitError naming the interrupted phase (errors.Is also matches the
// underlying ctx.Err() / *sat.LimitError). Constraint violations are
// reported in the Report, not as errors.
func (p *Pipeline) RunContext(ctx context.Context, limits Limits) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	report := &Report{}

	// ---- resource allocation (Section IV-A) ----
	alloc, err := constraints.NewAllocationChecker(p.Model, len(p.VMConfigs))
	if err != nil {
		return nil, err
	}
	alloc.SetBudget(limits.Solver)
	report.Allocation, err = alloc.CheckContext(ctx, p.VMConfigs)
	if err != nil {
		return nil, &LimitError{Phase: "allocation", Err: err}
	}

	// ---- per-VM products ----
	syntactic := constraints.NewSyntacticChecker(p.Schemas)
	semantic := constraints.NewSemanticChecker()
	semantic.Budget = limits.Solver
	for i, cfg := range p.VMConfigs {
		name := fmt.Sprintf("vm%d", i+1)
		if len(p.VMNames) > 0 {
			name = p.VMNames[i]
		}
		vm := VMResult{Name: name, Config: cfg}
		tree, trace, err := p.Deltas.ApplyContext(ctx, p.Core, cfg, limits.MaxDeltaOps)
		if err != nil {
			if isLimitCause(err) {
				return nil, &LimitError{Phase: "vm:" + name, Err: err}
			}
			return nil, fmt.Errorf("core: VM %s: %w", name, err)
		}
		vm.Tree = tree
		vm.Trace = trace
		vm.DTS = tree.Print()
		vm.Violations, err = p.checkTree(ctx, syntactic, semantic, tree)
		if err != nil {
			return nil, &LimitError{Phase: "vm:" + name, Err: err}
		}
		report.VMs = append(report.VMs, vm)
	}

	// ---- platform product: the union of the VM configurations ----
	union := featmodel.PlatformUnion(p.VMConfigs)
	ptree, ptrace, err := p.Deltas.ApplyContext(ctx, p.Core, union, limits.MaxDeltaOps)
	if err != nil {
		if isLimitCause(err) {
			return nil, &LimitError{Phase: "platform", Err: err}
		}
		return nil, fmt.Errorf("core: platform: %w", err)
	}
	report.Platform = PlatformResult{
		Config: union,
		Trace:  ptrace,
		Tree:   ptree,
		DTS:    ptree.Print(),
	}
	report.Platform.Violations, err = p.checkTree(ctx, syntactic, semantic, ptree)
	if err != nil {
		return nil, &LimitError{Phase: "platform", Err: err}
	}

	if !report.OK() {
		return report, nil
	}

	// ---- artifact generation (Listings 3 and 6) ----
	platform, err := baogen.PlatformFromTree(ptree)
	if err != nil {
		return nil, err
	}
	report.PlatformC = platform.RenderPlatformC()
	report.QEMUArgs = baogen.QEMUArgs(platform, "aarch64")
	report.JailhouseRootC = baogen.RenderJailhouseRootC(platform)

	vms := make([]*baogen.VM, len(report.VMs))
	for i, vm := range report.VMs {
		bvm, err := baogen.VMFromTree(vm.Name, vm.Tree)
		if err != nil {
			return nil, err
		}
		vms[i] = bvm
		report.JailhouseCellsC = append(report.JailhouseCellsC,
			baogen.RenderJailhouseCellC(bvm))
	}
	report.ConfigC = baogen.NewConfig(vms).RenderConfigC()
	return report, nil
}

func (p *Pipeline) checkTree(ctx context.Context, syn *constraints.SyntacticChecker, sem *constraints.SemanticChecker, tree *dts.Tree) ([]constraints.Violation, error) {
	out, err := syn.CheckContext(ctx, tree)
	if err != nil {
		return out, err
	}
	_, semViolations, err := sem.CheckContext(ctx, tree)
	out = append(out, semViolations...)
	if err != nil {
		return out, err
	}
	mrViolations, err := constraints.MemReserveChecker{}.CheckContext(ctx, tree)
	out = append(out, mrViolations...)
	if err != nil {
		return out, err
	}
	if !p.SkipInterrupts {
		irqViolations, err := constraints.InterruptChecker{}.CheckContext(ctx, tree)
		out = append(out, irqViolations...)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// isLimitCause reports whether a delta-application error stems from
// cancellation or a step cap rather than a structural problem.
func isLimitCause(err error) bool {
	var sl *delta.StepLimitError
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.As(err, &sl)
}
