// Package core implements the llhsc workflow of the paper's Fig. 2:
// starting from a core-module DTS, a delta-module set, a feature model
// and binding schemas, it derives one product DTS per VM plus the
// platform DTS (the union product), discharges the three constraint
// families of Section IV (allocation, syntactic, semantic) through the
// SMT solver, and — when everything is provably correct — generates the
// Bao hypervisor configuration files of Listings 3 and 6.
//
// Products are independent, so the pipeline checks them concurrently:
// each VM (and the platform union) is derived and checked by its own
// worker on a pool bounded by Limits.Parallelism, and within one tree
// the four checker families (syntactic, semantic, memreserve,
// interrupt) fan out as well. Every worker builds its own checkers —
// smt.Context/smt.Solver are confined to one goroutine — and writes
// into a pre-sized report slot, so the Report is byte-identical to a
// serial run regardless of scheduling. An optional content-addressed
// cache (internal/checkcache) short-circuits re-checking trees whose
// canonical text and blame metadata were already checked under the
// same schema set and budget knobs.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"llhsc/internal/baogen"
	"llhsc/internal/checkcache"
	"llhsc/internal/constraints"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/obs"
	"llhsc/internal/sat"
	"llhsc/internal/schema"
)

// Limits bounds the resources one pipeline run may consume. The zero
// value imposes no solver or delta limits and uses the default
// parallelism.
type Limits struct {
	// Solver bounds every SAT/SMT query issued by the constraint
	// checkers (deadline, conflicts, learnt-clause memory).
	Solver sat.Budget
	// MaxDeltaOps caps the number of delta operations applied while
	// deriving each product (0 = unlimited).
	MaxDeltaOps int
	// Parallelism bounds the worker pool that derives and checks
	// products concurrently, and enables the per-tree checker fan-out.
	// 0 means runtime.GOMAXPROCS(0); 1 restores fully serial
	// execution. The Report is byte-identical at every setting.
	Parallelism int
}

// parallelism resolves the effective worker count.
func (l Limits) parallelism() int {
	if l.Parallelism > 0 {
		return l.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// LimitError reports a pipeline run cut short by a resource limit or
// cancellation. It wraps the underlying cause — a *sat.LimitError, a
// *delta.StepLimitError, or a context error — so callers can classify
// it with errors.Is/As.
type LimitError struct {
	// Phase names the pipeline stage that was interrupted:
	// "allocation", "vm:<name>", or "platform".
	Phase string
	Err   error
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("core: %s check stopped: %v", e.Phase, e.Err)
}

// Unwrap returns the underlying cause.
func (e *LimitError) Unwrap() error { return e.Err }

// Pipeline is a configured llhsc run.
type Pipeline struct {
	// Core is the core-module DTS (Listing 1).
	Core *dts.Tree
	// Deltas is the product line's delta-module set (Listing 4).
	Deltas *delta.Set
	// Model is the feature model (Fig. 1a).
	Model *featmodel.Model
	// Schemas are the binding schemas for the syntactic checker;
	// schema.StandardSet() covers the running example.
	Schemas *schema.Set
	// VMConfigs selects one product per VM (Figs. 1b/1c).
	VMConfigs []featmodel.Configuration
	// VMNames optionally names the VMs ("vm1", "vm2", ... by default).
	VMNames []string
	// SkipInterrupts disables the interrupt-uniqueness extension check.
	SkipInterrupts bool
	// LintOnly keeps only the syntactic checker family, skipping the
	// SMT-backed semantic, memreserve and interrupt checks. This is the
	// service's overload-shedding mode: structural verdicts stay exact
	// while the solver-heavy work — the part that saturates a box — is
	// dropped. Folded into the cache key: a lint-only verdict is a
	// different (smaller) violation set and must never be served as a
	// full one, or vice versa.
	LintOnly bool
	// SemanticStrategy selects how the semantic checker discharges
	// region-overlap queries (sweep prefilter by default; see
	// constraints.SemanticStrategy). Folded into the cache key: a
	// strategy change never reuses another strategy's cached verdicts.
	SemanticStrategy constraints.SemanticStrategy
	// Mode selects enumerative (default) or family-based lifted
	// checking (see Mode and internal/core/lifted.go). Folded into the
	// cache key: a lifted verdict covers the whole product line and
	// must never be served as a per-tree one, or vice versa.
	Mode Mode
	// SkipDTS leaves VMResult.DTS / PlatformResult.DTS empty instead
	// of rendering each product tree, for callers that only need the
	// verdict. When a Cache is installed the tree is still printed
	// once per product (the canonical text is the cache key), and that
	// single string is shared with the report.
	SkipDTS bool
	// Metrics, when non-nil, receives each run's aggregate solver and
	// cache counters (see PipelineMetrics). Safe to share across
	// pipelines; the server shares one instance across requests.
	Metrics *PipelineMetrics
	// SlowQuery, when non-nil, receives one record per semantic pair
	// decision and lifted reachability query; records at or over its
	// threshold emit a structured log line. Nil (the default) leaves
	// the checkers' OnQuery hooks unset, so the decision loops never
	// build a record. Safe to share across pipelines.
	SlowQuery *obs.SlowQueryLog
	// SlowQueryBundleDir, when set alongside SlowQuery, receives one
	// self-contained reproducer bundle per slow query (see ReproBundle
	// and `llhsc replay`). Bundles are content-addressed and
	// deduplicated.
	SlowQueryBundleDir string
	// Cache, when non-nil, memoizes per-tree check results keyed by
	// the canonical tree text, the tree's origin dump (blame metadata
	// is invisible in the printed text but embedded in cached
	// violations), the schema-set fingerprint and the deterministic
	// solver-budget knobs. Identical trees — across VMs, the platform
	// union, or repeated runs — are checked once.
	Cache *checkcache.Cache
}

// VMResult is the outcome for one VM.
type VMResult struct {
	Name       string
	Config     featmodel.Configuration
	Trace      []string // applied delta modules, in order
	Tree       *dts.Tree
	DTS        string
	Violations []constraints.Violation
}

// PlatformResult is the outcome for the platform (union) product.
type PlatformResult struct {
	Config     featmodel.Configuration
	Trace      []string
	Tree       *dts.Tree
	DTS        string
	Violations []constraints.Violation
}

// Report is the result of a pipeline run.
type Report struct {
	Allocation []constraints.Violation
	VMs        []VMResult
	Platform   PlatformResult

	// Lifted holds the family-based findings of a ModeLifted run: every
	// constraint violation ANY valid configuration of the product line
	// exhibits, each with a decoded witness configuration. Always empty
	// under ModeEnumerate (where per-VM Violations carry the verdict);
	// under ModeLifted the per-VM and platform Violations stay empty.
	Lifted []constraints.LiftedFinding

	// Generated artifacts; empty unless OK().
	PlatformC string
	ConfigC   string
	QEMUArgs  []string

	// Jailhouse equivalents (the paper's "others like Jailhouse can
	// also be supported"): the root-cell config plus one cell config
	// per VM, indexed like VMs.
	JailhouseRootC  string
	JailhouseCellsC []string

	// Stats summarizes the solver and cache work of this run. It is
	// informational — not part of the determinism contract (the
	// fingerprinted report parts are identical across schedules; which
	// product pays for a shared cache entry is not).
	Stats RunStats
}

// OK reports whether every check passed.
func (r *Report) OK() bool {
	if len(r.Allocation) > 0 || len(r.Lifted) > 0 || len(r.Platform.Violations) > 0 {
		return false
	}
	for _, vm := range r.VMs {
		if len(vm.Violations) > 0 {
			return false
		}
	}
	return true
}

// AllViolations flattens every violation in the report (for lifted
// findings, the inner violation without its witness configuration).
func (r *Report) AllViolations() []constraints.Violation {
	var out []constraints.Violation
	out = append(out, r.Allocation...)
	for _, f := range r.Lifted {
		out = append(out, f.Violation)
	}
	for _, vm := range r.VMs {
		out = append(out, vm.Violations...)
	}
	out = append(out, r.Platform.Violations...)
	return out
}

// Validate checks that the pipeline is completely configured.
func (p *Pipeline) Validate() error {
	switch {
	case p.Core == nil:
		return errors.New("core: missing core-module DTS")
	case p.Deltas == nil:
		return errors.New("core: missing delta set")
	case p.Model == nil:
		return errors.New("core: missing feature model")
	case p.Schemas == nil:
		return errors.New("core: missing schema set")
	case len(p.VMConfigs) == 0:
		return errors.New("core: no VM configurations")
	case len(p.VMNames) > 0 && len(p.VMNames) != len(p.VMConfigs):
		return errors.New("core: VMNames length does not match VMConfigs")
	}
	return nil
}

// Run executes the full workflow. An error is returned only for
// structural failures (invalid pipeline, delta application errors);
// constraint violations are reported in the Report, not as errors.
func (p *Pipeline) Run() (*Report, error) {
	return p.RunContext(context.Background(), Limits{})
}

// runState carries the per-run configuration shared by every product
// worker, and accumulates the run's work statistics.
type runState struct {
	limits   Limits
	parallel bool   // fan the checker families out per tree
	schemaFP string // schema-set fingerprint, "" when Cache is nil

	mu    sync.Mutex
	stats RunStats
}

// RunContext executes the full workflow under a context and resource
// limits. Cancellation or an exhausted budget aborts the run with a
// *LimitError naming the interrupted phase (errors.Is also matches the
// underlying ctx.Err() / *sat.LimitError). Constraint violations are
// reported in the Report, not as errors.
//
// When the context carries an obs.Span (obs.ContextWithSpan), the run
// records a child span per phase — allocation, one per product, baogen
// — with solver and cache attributes; with no span in the context the
// tracing path is a single nil check per phase. Run statistics are
// always accumulated into Report.Stats and, when Pipeline.Metrics is
// set, folded into the shared registry even if the run errors out.
func (p *Pipeline) RunContext(ctx context.Context, limits Limits) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	report := AcquireReport()
	workers := limits.parallelism()
	st := &runState{limits: limits, parallel: workers > 1}
	if p.Cache != nil {
		st.schemaFP = p.Schemas.Fingerprint()
	}
	root := obs.SpanFromContext(ctx) // read once; nil disables tracing
	if p.Metrics != nil {
		defer func() { p.Metrics.observe(st.snapshot()) }()
	}

	// ---- resource allocation (Section IV-A) ----
	alloc, err := constraints.NewAllocationChecker(p.Model, len(p.VMConfigs))
	if err != nil {
		return nil, err
	}
	alloc.SetBudget(limits.Solver)
	allocSpan := root.StartChild("allocation")
	before := alloc.Stats()
	var allocStart time.Time
	if p.Metrics != nil {
		allocStart = time.Now()
	}
	report.Allocation, err = alloc.CheckContext(ctx, p.VMConfigs)
	if p.Metrics != nil {
		p.Metrics.observeFamily("allocation", "sat", time.Since(allocStart).Seconds())
	}
	d := alloc.Stats().Sub(before)
	st.addFamily("allocation", familyStatsFromSAT(d))
	allocSpan.SetInt("conflicts", d.Conflicts)
	allocSpan.SetInt("propagations", d.Propagations)
	allocSpan.End()
	if err != nil {
		return nil, &LimitError{Phase: "allocation", Err: err}
	}

	// ---- family-based lifted checking (DESIGN.md §14) ----
	// One merged tree, one solver session, the whole product line.
	// Products are still derived below for traces, DTS renderings and
	// artifact generation, but skip their per-tree family checks.
	if p.Mode == ModeLifted {
		if err := p.runLifted(ctx, st, report, root); err != nil {
			return nil, err
		}
	}

	// ---- per-VM products + the platform union ----
	report.vmSlots(len(p.VMConfigs))
	union := featmodel.PlatformUnion(p.VMConfigs)

	if !st.parallel {
		for i := range p.VMConfigs {
			span := root.StartChild("vm:" + p.vmName(i))
			if err := p.deriveAndCheckVM(ctx, st, i, &report.VMs[i], span); err != nil {
				return nil, err
			}
		}
		span := root.StartChild("platform")
		if err := p.deriveAndCheckPlatform(ctx, st, union, &report.Platform, span); err != nil {
			return nil, err
		}
	} else if err := p.runProductsParallel(ctx, st, workers, union, report, root); err != nil {
		return nil, err
	}

	if !report.OK() {
		report.Stats = st.snapshot()
		return report, nil
	}

	// ---- artifact generation (Listings 3 and 6) ----
	genSpan := root.StartChild("baogen")
	defer genSpan.End()
	platform, err := baogen.PlatformFromTree(report.Platform.Tree)
	if err != nil {
		return nil, err
	}
	report.PlatformC = platform.RenderPlatformC()
	report.QEMUArgs = baogen.QEMUArgs(platform, "aarch64")
	report.JailhouseRootC = baogen.RenderJailhouseRootC(platform)

	vms := make([]*baogen.VM, len(report.VMs))
	for i, vm := range report.VMs {
		bvm, err := baogen.VMFromTree(vm.Name, vm.Tree)
		if err != nil {
			return nil, err
		}
		vms[i] = bvm
		report.JailhouseCellsC = append(report.JailhouseCellsC,
			baogen.RenderJailhouseCellC(bvm))
	}
	report.ConfigC = baogen.NewConfig(vms).RenderConfigC()
	report.Stats = st.snapshot()
	return report, nil
}

// vmName resolves VM i's display name.
func (p *Pipeline) vmName(i int) string {
	if len(p.VMNames) > 0 {
		return p.VMNames[i]
	}
	return fmt.Sprintf("vm%d", i+1)
}

// runProductsParallel derives and checks every VM product plus the
// platform union on a bounded worker pool. Results land in pre-sized
// report slots, so the outcome is independent of scheduling; a failure
// (or a caller cancellation) cancels the sibling workers, and a worker
// panic is isolated and re-raised on the calling goroutine so the
// server's panic recovery still contains it. Per-job errors are kept
// in index order and the reported one is chosen after the pool drains,
// so the error (and its phase) does not depend on which worker lost
// the race.
func (p *Pipeline) runProductsParallel(ctx context.Context, st *runState, workers int, union featmodel.Configuration, report *Report, root *obs.Span) error {
	jobs := len(report.VMs) + 1 // VMs plus the platform union
	if workers > jobs {
		workers = jobs
	}
	// Pre-create the per-product spans in index order, before any
	// worker runs: StartChild appends under the parent's lock, so
	// creating them here keeps the span tree identical to a serial
	// run's regardless of which worker finishes first.
	spans := make([]*obs.Span, jobs)
	if root != nil {
		for i := range report.VMs {
			spans[i] = root.StartChild("vm:" + p.vmName(i))
		}
		spans[jobs-1] = root.StartChild("platform")
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg        sync.WaitGroup
		jobErrs   = make([]error, jobs) // each job writes only its own slot
		panicOnce sync.Once
		panicVal  interface{}
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func(i int) {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicVal = r })
							cancel()
						}
					}()
					var err error
					if i < len(report.VMs) {
						err = p.deriveAndCheckVM(wctx, st, i, &report.VMs[i], spans[i])
					} else {
						err = p.deriveAndCheckPlatform(wctx, st, union, &report.Platform, spans[i])
					}
					if err != nil {
						jobErrs[i] = err
						cancel()
					}
				}(i)
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return lowestPrimaryError(ctx, jobErrs)
}

// lowestPrimaryError picks the error a parallel fan-out reports. A
// serial run always fails on the lowest-index job, but in a pool the
// first observed failure is scheduling-dependent, and siblings
// canceled because of it record bare context.Canceled errors that
// would mask the real cause. Preferring the lowest-index failure that
// is not an induced cancellation — unless the caller itself canceled,
// in which case every cancellation is genuine — keeps the reported
// error (and its phase) independent of worker count and timing.
func lowestPrimaryError(ctx context.Context, errs []error) error {
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if fallback == nil {
			fallback = err
		}
		if ctx.Err() == nil && errors.Is(err, context.Canceled) {
			continue // canceled by a sibling's failure, not a primary cause
		}
		return err
	}
	return fallback
}

// deriveAndCheckVM derives the product for VM i, checks it, and fills
// the result slot. Errors come back in the same shapes as a serial
// run: limit causes wrapped in *LimitError, structural delta failures
// as plain errors naming the VM.
func (p *Pipeline) deriveAndCheckVM(ctx context.Context, st *runState, i int, out *VMResult, span *obs.Span) error {
	span.Begin() // pre-created for deterministic order; work starts here
	defer span.End()
	name := p.vmName(i)
	out.Name = name
	out.Config = p.VMConfigs[i]
	derive := span.StartChild("derive")
	tree, trace, err := p.Deltas.ApplyContext(ctx, p.Core, p.VMConfigs[i], st.limits.MaxDeltaOps)
	derive.SetInt("deltas", uint64(len(trace)))
	derive.End()
	if err != nil {
		if isLimitCause(err) {
			return &LimitError{Phase: "vm:" + name, Err: err}
		}
		return fmt.Errorf("core: VM %s: %w", name, err)
	}
	out.Tree = tree
	out.Trace = trace
	out.DTS, out.Violations, err = p.checkProductTree(ctx, st, tree, span)
	if err != nil {
		return &LimitError{Phase: "vm:" + name, Err: err}
	}
	return nil
}

// deriveAndCheckPlatform derives and checks the union product.
func (p *Pipeline) deriveAndCheckPlatform(ctx context.Context, st *runState, union featmodel.Configuration, out *PlatformResult, span *obs.Span) error {
	span.Begin()
	defer span.End()
	derive := span.StartChild("derive")
	tree, trace, err := p.Deltas.ApplyContext(ctx, p.Core, union, st.limits.MaxDeltaOps)
	derive.SetInt("deltas", uint64(len(trace)))
	derive.End()
	if err != nil {
		if isLimitCause(err) {
			return &LimitError{Phase: "platform", Err: err}
		}
		return fmt.Errorf("core: platform: %w", err)
	}
	out.Config = union
	out.Trace = trace
	out.Tree = tree
	out.DTS, out.Violations, err = p.checkProductTree(ctx, st, tree, span)
	if err != nil {
		return &LimitError{Phase: "platform", Err: err}
	}
	return nil
}

// checkProductTree renders the tree (unless skipped), consults the
// cache, and runs the checker families. The canonical text is printed
// at most once and shared between the report and the cache key. The
// key also folds in the tree's origin dump: violations embed blame
// metadata (dts.Origin — delta name, source position) that the printed
// text does not capture, so two products with identical text but
// different provenance must not share a cache entry.
func (p *Pipeline) checkProductTree(ctx context.Context, st *runState, tree *dts.Tree, span *obs.Span) (string, []constraints.Violation, error) {
	var printed, reportDTS string
	if !p.SkipDTS || p.Cache != nil {
		printed = tree.Print()
	}
	if !p.SkipDTS {
		reportDTS = printed
	}
	if p.Mode == ModeLifted {
		// The lifted session already discharged every family for the
		// whole product line — which includes this product.
		return reportDTS, nil, nil
	}
	check := span.StartChild("check")
	defer check.End()
	if p.Cache == nil {
		violations, err := p.checkTree(ctx, st, tree, check)
		return reportDTS, violations, err
	}
	key := checkcache.Key(
		printed,
		tree.OriginDump(),
		st.schemaFP,
		p.knobString(st),
	)
	violations, hit, err := p.Cache.Do(ctx, key, func() ([]constraints.Violation, error) {
		return p.checkTree(ctx, st, tree, check)
	})
	if hit {
		check.SetAttr("cache", "hit")
	} else {
		check.SetAttr("cache", "miss")
	}
	st.addCache(hit)
	return reportDTS, violations, err
}

// knobString serializes every deterministic knob that can change a
// check verdict, for the cache key. Shared by the per-product keys and
// the lifted-run key, so a knob added here invalidates both.
func (p *Pipeline) knobString(st *runState) string {
	return fmt.Sprintf("conflicts=%d;learntlits=%d;skipirq=%v;semstrat=%s;lintonly=%v;mode=%s",
		st.limits.Solver.MaxConflicts, st.limits.Solver.MaxLearntLits, p.SkipInterrupts,
		p.SemanticStrategy, p.LintOnly, p.Mode)
}

// checkerFamily is one independent checker family for one tree: a name
// (the span label, stats key and /metrics family label) and a closure
// that returns the family's violations plus its solver-work summary.
type checkerFamily struct {
	name string
	run  func(context.Context) ([]constraints.Violation, FamilyStats, error)
}

// checkerFamilies returns the independent checker families for one
// tree, in the deterministic merge order. Each closure builds its own
// checkers on first use — smt.Context is confined to one goroutine, so
// families must not share solver state when they run concurrently.
func (p *Pipeline) checkerFamilies(st *runState, tree *dts.Tree) []checkerFamily {
	families := []checkerFamily{
		{name: "syntactic", run: func(ctx context.Context) ([]constraints.Violation, FamilyStats, error) {
			vs, err := constraints.NewSyntacticChecker(p.Schemas).CheckContext(ctx, tree)
			return vs, FamilyStats{Checks: 1}, err
		}},
	}
	if p.LintOnly {
		return families
	}
	families = append(families,
		checkerFamily{name: "semantic", run: func(ctx context.Context) ([]constraints.Violation, FamilyStats, error) {
			sem := constraints.NewSemanticChecker()
			sem.Budget = st.limits.Solver
			sem.Strategy = p.SemanticStrategy
			sem.OnQuery = p.semanticObserver(st, tree)
			_, violations, err := sem.CheckContext(ctx, tree)
			return violations, familyStatsFrom(sem.LastStats()), err
		}},
		checkerFamily{name: "memreserve", run: func(ctx context.Context) ([]constraints.Violation, FamilyStats, error) {
			var fst constraints.SemanticStats
			vs, err := constraints.MemReserveChecker{Stats: &fst}.CheckContext(ctx, tree)
			return vs, familyStatsFrom(fst), err
		}},
	)
	if !p.SkipInterrupts {
		families = append(families, checkerFamily{
			name: "interrupt",
			run: func(ctx context.Context) ([]constraints.Violation, FamilyStats, error) {
				var fst constraints.SemanticStats
				vs, err := constraints.InterruptChecker{Stats: &fst}.CheckContext(ctx, tree)
				return vs, familyStatsFrom(fst), err
			},
		})
	}
	return families
}

// runFamily executes one family under its span, records its stats and
// annotates the span with the family's solver work.
func (p *Pipeline) runFamily(ctx context.Context, st *runState, f checkerFamily, span *obs.Span) ([]constraints.Violation, error) {
	span.Begin() // pre-created for deterministic order; work starts here
	defer span.End()
	var t0 time.Time
	if p.Metrics != nil {
		t0 = time.Now()
	}
	vs, fs, err := f.run(ctx)
	if p.Metrics != nil {
		p.Metrics.observeFamily(f.name, familyTier(fs), time.Since(t0).Seconds())
	}
	st.addFamily(f.name, fs)
	if span != nil {
		span.SetInt("violations", uint64(len(vs)))
		if fs.SolverCalls > 0 {
			span.SetInt("solver_calls", uint64(fs.SolverCalls))
			span.SetInt("conflicts", fs.Conflicts)
		}
		if fs.Pairs > 0 || fs.PairsPruned > 0 {
			span.SetInt("pairs", uint64(fs.Pairs))
			span.SetInt("pairs_pruned", uint64(fs.PairsPruned))
		}
	}
	return vs, err
}

// checkTree runs the checker families over one tree and merges their
// violations in family order. With parallelism enabled the families
// run concurrently (they are mutually independent; each owns its
// solver), and the merge order keeps the output identical to a serial
// run. Family spans are pre-created in family order before any
// goroutine starts, so the span tree is schedule-independent too.
func (p *Pipeline) checkTree(ctx context.Context, st *runState, tree *dts.Tree, span *obs.Span) ([]constraints.Violation, error) {
	families := p.checkerFamilies(st, tree)
	scratch := acquireTreeScratch(len(families))
	defer scratch.release()
	spans := scratch.spans
	if span != nil {
		for i, f := range families {
			spans[i] = span.StartChild("family:" + f.name)
		}
	}
	if !st.parallel {
		var out []constraints.Violation
		for i, f := range families {
			vs, err := p.runFamily(ctx, st, f, spans[i])
			out = append(out, vs...)
			if err != nil {
				return out, err
			}
		}
		return out, nil
	}

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := scratch.results
	famErrs := scratch.errs
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  interface{}
	)
	for i, f := range families {
		wg.Add(1)
		go func(i int, f checkerFamily) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
					cancel()
				}
			}()
			vs, err := p.runFamily(fctx, st, f, spans[i])
			results[i] = vs
			if err != nil {
				famErrs[i] = err
				cancel()
			}
		}(i, f)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	var out []constraints.Violation
	for _, vs := range results {
		out = append(out, vs...)
	}
	return out, lowestPrimaryError(ctx, famErrs)
}

// isLimitCause reports whether a delta-application error stems from
// cancellation or a step cap rather than a structural problem.
func isLimitCause(err error) bool {
	var sl *delta.StepLimitError
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.As(err, &sl)
}
