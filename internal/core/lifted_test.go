// Pipeline-level tests for family-based lifted checking (ModeLifted):
// mode parsing, verdict and artifact equivalence with the enumerative
// mode, witness decoding on a violating product line, cache
// round-tripping of lifted findings, and the lifted metric families.
package core_test

import (
	"context"
	"flag"
	"io"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"llhsc/internal/checkcache"
	"llhsc/internal/core"
	"llhsc/internal/delta"
	"llhsc/internal/featmodel"
	"llhsc/internal/obs"
	"llhsc/internal/runningexample"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in      string
		want    core.Mode
		wantErr bool
	}{
		{"", core.ModeEnumerate, false},
		{"enumerate", core.ModeEnumerate, false},
		{"lifted", core.ModeLifted, false},
		{"family", 0, true},
		{"LIFTED", 0, true},
	}
	for _, c := range cases {
		got, err := core.ParseMode(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseMode(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}

	// The flag.Value contract: a bad spelling fails at parse time with
	// the list of valid ones, before any input file is opened.
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var mode core.Mode
	fs.Var(&mode, "mode", "")
	if err := fs.Parse([]string{"-mode=banana"}); err == nil {
		t.Error("flag parse accepted -mode=banana")
	} else if !strings.Contains(err.Error(), "enumerate or lifted") {
		t.Errorf("flag error does not list valid modes: %v", err)
	}
	if err := fs.Parse([]string{"-mode=lifted"}); err != nil {
		t.Fatal(err)
	}
	if mode != core.ModeLifted {
		t.Errorf("flag parse set mode = %v, want lifted", mode)
	}
}

// TestLiftedModeRunningExample runs the clean running example in both
// modes: identical OK verdicts, identical generated artifacts, and the
// lifted run's stats record exactly one solver session with real query
// work.
func TestLiftedModeRunningExample(t *testing.T) {
	enum := examplePipeline(t, nil)
	enumReport, err := enum.RunContext(context.Background(), core.Limits{})
	if err != nil {
		t.Fatal(err)
	}

	lifted := examplePipeline(t, nil)
	lifted.Mode = core.ModeLifted
	liftedReport, err := lifted.RunContext(context.Background(), core.Limits{})
	if err != nil {
		t.Fatal(err)
	}

	if !liftedReport.OK() {
		t.Fatalf("lifted run of the clean running example not OK: %+v", liftedReport.Lifted)
	}
	if len(liftedReport.Lifted) != 0 {
		t.Errorf("clean line produced lifted findings: %v", liftedReport.Lifted)
	}
	// Products are still derived, so the generated artifacts are
	// byte-identical across modes.
	if liftedReport.PlatformC != enumReport.PlatformC {
		t.Error("platform C artifact differs between modes")
	}
	if liftedReport.ConfigC != enumReport.ConfigC {
		t.Error("config C artifact differs between modes")
	}
	if len(liftedReport.VMs) != len(enumReport.VMs) {
		t.Fatalf("VM count differs: lifted %d, enumerative %d",
			len(liftedReport.VMs), len(enumReport.VMs))
	}

	ls := liftedReport.Stats.Lifted
	if ls == nil {
		t.Fatal("lifted run has nil Stats.Lifted")
	}
	if ls.Queries == 0 {
		t.Error("lifted run recorded no reachability queries")
	}
	if ls.Sessions != 1 {
		t.Errorf("lifted run recorded %d solver sessions, want 1", ls.Sessions)
	}
	fam, ok := liftedReport.Stats.Families["lifted"]
	if !ok {
		t.Fatal("no \"lifted\" family in Stats.Families")
	}
	if fam.SolverCalls != ls.Queries {
		t.Errorf("family SolverCalls = %d, want %d (Queries)", fam.SolverCalls, ls.Queries)
	}
	if enumReport.Stats.Lifted != nil {
		t.Error("enumerative run has non-nil Stats.Lifted")
	}
	// No per-product family work ran: the enumerative per-tree families
	// must be absent from the lifted run's stats.
	if _, ok := liftedReport.Stats.Families["syntactic"]; ok {
		t.Error("lifted run still performed per-product syntactic checks")
	}
}

// collisionPipeline is the running example with delta d4 dropped (the
// E6 truncation corpus): its products exhibit real memory collisions,
// so a lifted run must report findings with decodable witnesses.
func collisionPipeline(t *testing.T) *core.Pipeline {
	t.Helper()
	p := examplePipeline(t, nil)
	var kept []*delta.Delta
	for _, d := range p.Deltas.Deltas {
		if d.Name != "d4" {
			kept = append(kept, d)
		}
	}
	smaller, err := delta.NewSet(kept)
	if err != nil {
		t.Fatal(err)
	}
	p.Deltas = smaller
	p.Mode = core.ModeLifted
	return p
}

// TestLiftedModeFindsViolationsWithWitnesses runs the collision corpus
// lifted and requires findings whose decoded witness configurations
// are valid products of the feature model.
func TestLiftedModeFindsViolationsWithWitnesses(t *testing.T) {
	p := collisionPipeline(t)
	report, err := p.RunContext(context.Background(), core.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("collision corpus reported OK in lifted mode")
	}
	if len(report.Lifted) == 0 {
		t.Fatal("collision corpus produced no lifted findings")
	}
	model, err := runningexample.Model()
	if err != nil {
		t.Fatal(err)
	}
	analyzer := featmodel.NewAnalyzer(model)
	for _, f := range report.Lifted {
		if f.Family == "" {
			t.Errorf("finding with empty family: %+v", f)
		}
		if len(f.Config.Sorted()) == 0 {
			t.Errorf("finding %s has empty witness configuration", f)
		}
		if !analyzer.IsValid(f.Config) {
			t.Errorf("finding %s: witness %v is not a valid product",
				f, f.Config.Sorted())
		}
	}
	// The lifted findings flow into AllViolations alongside allocation.
	all := report.AllViolations()
	if len(all) < len(report.Lifted) {
		t.Errorf("AllViolations returned %d entries, want at least %d",
			len(all), len(report.Lifted))
	}
}

// TestLiftedModeCacheRoundTrip runs the collision corpus twice against
// one cache: the second run must hit and reproduce the findings —
// exercising the witness-marker encoding the cache's violation-list
// value type forces.
func TestLiftedModeCacheRoundTrip(t *testing.T) {
	cache := checkcache.New(16)

	first := collisionPipeline(t)
	first.Cache = cache
	firstReport, err := first.RunContext(context.Background(), core.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if firstReport.Stats.CacheMisses == 0 {
		t.Fatal("first lifted run recorded no cache miss")
	}

	second := collisionPipeline(t)
	second.Cache = cache
	secondReport, err := second.RunContext(context.Background(), core.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if secondReport.Stats.CacheHits == 0 {
		t.Fatal("second lifted run did not hit the cache")
	}
	// Cache hits contribute no family work, so the hit run has no
	// lifted run stats — but the findings round-trip losslessly.
	if secondReport.Stats.Lifted != nil {
		t.Error("cache-hit lifted run has non-nil Stats.Lifted")
	}
	if !reflect.DeepEqual(firstReport.Lifted, secondReport.Lifted) {
		t.Errorf("findings differ across the cache:\nfirst:  %v\nsecond: %v",
			firstReport.Lifted, secondReport.Lifted)
	}

	// The mode is folded into the cache key: an enumerative run over
	// the same inputs must not be served the lifted entry.
	enum := collisionPipeline(t)
	enum.Mode = core.ModeEnumerate
	enum.Cache = cache
	enumReport, err := enum.RunContext(context.Background(), core.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if enumReport.Stats.CacheMisses == 0 {
		t.Error("enumerative run over lifted-cached inputs recorded no miss")
	}
	if len(enumReport.Lifted) != 0 {
		t.Error("enumerative run decoded lifted findings from the cache")
	}
}

// TestLiftedMetrics folds a lifted run into a registry and requires
// the three llhsc_lifted_* counter families plus the session-reuse
// gauge in the scrape.
func TestLiftedMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	metrics := core.NewPipelineMetrics(reg)

	p := examplePipeline(t, nil)
	p.Mode = core.ModeLifted
	p.Metrics = metrics
	report, err := p.RunContext(context.Background(), core.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Stats.Lifted == nil {
		t.Fatal("nil Stats.Lifted")
	}

	var b strings.Builder
	reg.WritePrometheus(&b)
	text := b.String()
	for _, family := range []string{
		"llhsc_lifted_queries_total",
		"llhsc_lifted_configs_pruned_total",
		"llhsc_lifted_sessions_total",
		"llhsc_lifted_session_reuse",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("scrape missing family %s", family)
		}
	}
	wantQueries := report.Stats.Lifted.Queries
	found := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "llhsc_lifted_queries_total ") {
			found = true
			got := strings.TrimSpace(strings.TrimPrefix(line, "llhsc_lifted_queries_total "))
			if want := strconv.Itoa(wantQueries); got != want {
				t.Errorf("llhsc_lifted_queries_total = %s, want %s", got, want)
			}
		}
	}
	if !found {
		t.Error("no llhsc_lifted_queries_total sample in scrape")
	}
}
