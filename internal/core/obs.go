// Per-run observability for the pipeline: RunStats is the solver/cache
// work summary embedded in every Report (and serialized as the "stats"
// block of a /check response), and PipelineMetrics is the registry-
// backed counterpart that accumulates the same numbers across runs for
// /metrics exposition.
package core

import (
	"llhsc/internal/constraints"
	"llhsc/internal/obs"
	"llhsc/internal/sat"
)

// FamilyStats summarizes the solver work one checker family performed
// during a run, aggregated across every product tree it checked.
type FamilyStats struct {
	// Checks is the number of trees (or, for allocation, configuration
	// sets) this family examined.
	Checks int `json:"checks"`
	// Pairs / PairsPruned are the semantic sweep counters: candidate
	// pairs submitted to the solver, and naive n·(n-1)/2 pairs the
	// prefilter discarded before they cost a query.
	Pairs       int `json:"pairs,omitempty"`
	PairsPruned int `json:"pairsPruned,omitempty"`
	// SolverCalls counts SMT check invocations.
	SolverCalls int `json:"solverCalls,omitempty"`
	// WordDecided counts region pairs the word-level interval tier
	// settled without any solver involvement (DESIGN.md §13).
	WordDecided int `json:"wordDecided,omitempty"`
	// SAT-solver work underneath the family's queries.
	Conflicts    uint64 `json:"conflicts,omitempty"`
	Propagations uint64 `json:"propagations,omitempty"`
	Restarts     uint64 `json:"restarts,omitempty"`
	// Hash-consing effectiveness of the family's smt.Contexts.
	InternHits   uint64 `json:"internHits,omitempty"`
	InternMisses uint64 `json:"internMisses,omitempty"`
}

// add returns the field-wise sum; families accumulate across products.
func (fs FamilyStats) add(other FamilyStats) FamilyStats {
	fs.Checks += other.Checks
	fs.Pairs += other.Pairs
	fs.PairsPruned += other.PairsPruned
	fs.SolverCalls += other.SolverCalls
	fs.WordDecided += other.WordDecided
	fs.Conflicts += other.Conflicts
	fs.Propagations += other.Propagations
	fs.Restarts += other.Restarts
	fs.InternHits += other.InternHits
	fs.InternMisses += other.InternMisses
	return fs
}

// familyStatsFrom converts a checker's SemanticStats sink into the
// report shape, counting one checked tree.
func familyStatsFrom(st constraints.SemanticStats) FamilyStats {
	return FamilyStats{
		Checks:       1,
		Pairs:        st.Pairs,
		PairsPruned:  st.PairsPruned,
		SolverCalls:  st.SolverCalls,
		WordDecided:  st.WordDecided,
		Conflicts:    st.Solver.Conflicts,
		Propagations: st.Solver.Propagations,
		Restarts:     st.Solver.Restarts,
		InternHits:   st.InternHits,
		InternMisses: st.InternMisses,
	}
}

// familyStatsFromSAT converts a raw SAT-stats delta (the allocation
// family, which has no SMT layer).
func familyStatsFromSAT(d sat.Stats) FamilyStats {
	return FamilyStats{
		Checks:       1,
		Conflicts:    d.Conflicts,
		Propagations: d.Propagations,
		Restarts:     d.Restarts,
	}
}

// familyStatsFromLifted converts the lifted checker's counters into the
// per-family report shape, under the "lifted" family name: its
// assumption solves are the solver calls, and the word tier's share is
// reported like the semantic sweep's.
func familyStatsFromLifted(st constraints.LiftedStats) FamilyStats {
	return FamilyStats{
		Checks:       1,
		SolverCalls:  st.Queries,
		WordDecided:  st.WordDecided,
		Conflicts:    st.Solver.Conflicts,
		Propagations: st.Solver.Propagations,
		Restarts:     st.Solver.Restarts,
	}
}

// LiftedRunStats summarizes a lifted (ModeLifted) run's family-based
// solver work; RunStats.Lifted is nil for enumerative runs and for
// lifted runs answered entirely from the check cache.
type LiftedRunStats struct {
	// Queries is the number of assumption solves the shared incremental
	// session answered.
	Queries int `json:"queries"`
	// Pruned counts candidate violations (and coverage worlds) the
	// session proved no valid configuration can exhibit.
	Pruned int `json:"pruned"`
	// WordDecided counts region pairs the word-level tier settled
	// without the session.
	WordDecided int `json:"wordDecided,omitempty"`
	// Regions / Contexts / Worlds describe the merged tree's guarded
	// variant space (see constraints.LiftedStats).
	Regions  int `json:"regions,omitempty"`
	Contexts int `json:"contexts,omitempty"`
	Worlds   int `json:"worlds,omitempty"`
	// Findings is the number of reachable violations reported.
	Findings int `json:"findings"`
	// Sessions counts solver sessions opened — one per uncached lifted
	// run. Queries/Sessions is the session-reuse ratio the mode exists
	// for: the enumerative baseline opens a fresh solver per product
	// per family.
	Sessions int `json:"sessions"`
}

// liftedRunStatsFrom converts one lifted check's counters, counting the
// session it opened.
func liftedRunStatsFrom(st constraints.LiftedStats) LiftedRunStats {
	return LiftedRunStats{
		Queries:     st.Queries,
		Pruned:      st.Pruned,
		WordDecided: st.WordDecided,
		Regions:     st.Regions,
		Contexts:    st.Contexts,
		Worlds:      st.Worlds,
		Findings:    st.Findings,
		Sessions:    1,
	}
}

// add returns the field-wise sum.
func (ls LiftedRunStats) add(other LiftedRunStats) LiftedRunStats {
	ls.Queries += other.Queries
	ls.Pruned += other.Pruned
	ls.WordDecided += other.WordDecided
	ls.Regions += other.Regions
	ls.Contexts += other.Contexts
	ls.Worlds += other.Worlds
	ls.Findings += other.Findings
	ls.Sessions += other.Sessions
	return ls
}

// RunStats is the per-run work summary carried by Report.Stats. All
// counters are totals for one RunContext call; per-family numbers are
// aggregated across every product tree. Trees answered from the check
// cache contribute CacheHits but no family work (nothing was solved).
type RunStats struct {
	Families    map[string]FamilyStats `json:"families,omitempty"`
	CacheHits   int                    `json:"cacheHits"`
	CacheMisses int                    `json:"cacheMisses"`
	// Lifted is the lifted session's work summary (ModeLifted runs that
	// actually solved; nil otherwise).
	Lifted *LiftedRunStats `json:"lifted,omitempty"`
}

// addFamily folds one family's contribution into the run totals.
func (st *runState) addFamily(name string, fs FamilyStats) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.stats.Families == nil {
		st.stats.Families = make(map[string]FamilyStats)
	}
	st.stats.Families[name] = st.stats.Families[name].add(fs)
}

// addLifted folds one lifted check's contribution into the run totals.
func (st *runState) addLifted(ls LiftedRunStats) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.stats.Lifted == nil {
		st.stats.Lifted = &LiftedRunStats{}
	}
	*st.stats.Lifted = st.stats.Lifted.add(ls)
}

// addCache records one cache lookup outcome.
func (st *runState) addCache(hit bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if hit {
		st.stats.CacheHits++
	} else {
		st.stats.CacheMisses++
	}
}

// snapshot copies the accumulated stats (workers have drained by the
// time the report is assembled, but the lock keeps -race honest).
func (st *runState) snapshot() RunStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := st.stats
	out.Families = make(map[string]FamilyStats, len(st.stats.Families))
	for k, v := range st.stats.Families {
		out.Families[k] = v
	}
	if st.stats.Lifted != nil {
		l := *st.stats.Lifted
		out.Lifted = &l
	}
	return out
}

// PipelineMetrics accumulates RunStats across runs on an obs.Registry,
// under the llhsc_sat_*, llhsc_constraints_* and llhsc_smt_* families.
// One instance may be shared by any number of Pipelines (the server
// shares one across requests); observation is a handful of atomic adds
// per run.
type PipelineMetrics struct {
	satConflicts    *obs.CounterVec
	satPropagations *obs.CounterVec
	satRestarts     *obs.CounterVec
	solverCalls     *obs.CounterVec
	pairs           *obs.CounterVec
	pairsPruned     *obs.Counter
	wordDecided     *obs.CounterVec
	internHits      *obs.Counter
	internMisses    *obs.Counter
	runs            *obs.Counter
	checkSeconds    *obs.HistogramVec

	// Lifted-mode counters (DESIGN.md §14): total lifted queries,
	// configurations pruned as unreachable, and solver sessions opened;
	// llhsc_lifted_session_reuse derives queries/session at scrape time.
	liftedQueries  *obs.Counter
	liftedPruned   *obs.Counter
	liftedSessions *obs.Counter
}

// NewPipelineMetrics registers the pipeline's metric families on reg.
// Register once per registry: duplicate registration panics.
func NewPipelineMetrics(reg *obs.Registry) *PipelineMetrics {
	m := &PipelineMetrics{
		satConflicts: reg.NewCounterVec("llhsc_sat_conflicts_total",
			"CDCL conflicts, by checker family.", "family"),
		satPropagations: reg.NewCounterVec("llhsc_sat_propagations_total",
			"Unit propagations, by checker family.", "family"),
		satRestarts: reg.NewCounterVec("llhsc_sat_restarts_total",
			"Solver restarts, by checker family.", "family"),
		solverCalls: reg.NewCounterVec("llhsc_constraints_solver_calls_total",
			"SMT check invocations, by checker family.", "family"),
		pairs: reg.NewCounterVec("llhsc_constraints_pairs_total",
			"Candidate pairs submitted to the solver, by checker family.", "family"),
		pairsPruned: reg.NewCounter("llhsc_constraints_pairs_pruned_total",
			"Naive region pairs the sweep prefilter discarded before reaching the solver."),
		wordDecided: reg.NewCounterVec("llhsc_constraints_word_decided_total",
			"Region pairs decided by the word-level interval tier, no solver involved.", "family"),
		internHits: reg.NewCounter("llhsc_smt_intern_hits_total",
			"Hash-consing intern table hits."),
		internMisses: reg.NewCounter("llhsc_smt_intern_misses_total",
			"Hash-consing intern table misses (terms allocated)."),
		runs: reg.NewCounter("llhsc_core_runs_total",
			"Completed pipeline runs (including runs that found violations)."),
		liftedQueries: reg.NewCounter("llhsc_lifted_queries_total",
			"Assumption solves issued against lifted (family-based) solver sessions."),
		liftedPruned: reg.NewCounter("llhsc_lifted_configs_pruned_total",
			"Candidate violations the lifted session proved unreachable by any valid configuration."),
		liftedSessions: reg.NewCounter("llhsc_lifted_sessions_total",
			"Lifted solver sessions opened (one per uncached ModeLifted run)."),
		checkSeconds: reg.NewHistogramVec("llhsc_check_seconds",
			"Per-family check latency by dominant decision tier (word/sat/lifted/none).",
			nil, "family", "tier"),
	}
	reg.Register("llhsc_lifted_session_reuse",
		"Average lifted queries discharged per solver session (the incremental-reuse ratio).",
		obs.FuncGauge(func() float64 {
			sessions := m.liftedSessions.Value()
			if sessions == 0 {
				return 0
			}
			return float64(m.liftedQueries.Value()) / float64(sessions)
		}))
	return m
}

// observeFamily records one family check's wall time under its
// dominant decision tier — the llhsc_check_seconds{family,tier}
// distribution. Nil-safe so call sites stay unconditional-looking.
func (m *PipelineMetrics) observeFamily(family, tier string, seconds float64) {
	if m == nil {
		return
	}
	m.checkSeconds.With(family, tier).Observe(seconds)
}

// familyTier names the decision tier that dominated one family check:
// "sat" if any query reached a solver, "word" if the interval tier
// decided everything, "none" for purely structural families.
func familyTier(fs FamilyStats) string {
	switch {
	case fs.SolverCalls > 0:
		return "sat"
	case fs.WordDecided > 0:
		return "word"
	default:
		return "none"
	}
}

// observe folds one run's stats into the cross-run counters.
func (m *PipelineMetrics) observe(rs RunStats) {
	for name, fs := range rs.Families {
		m.satConflicts.With(name).Add(fs.Conflicts)
		m.satPropagations.With(name).Add(fs.Propagations)
		m.satRestarts.With(name).Add(fs.Restarts)
		m.solverCalls.With(name).Add(uint64(fs.SolverCalls))
		m.pairs.With(name).Add(uint64(fs.Pairs))
		m.pairsPruned.Add(uint64(fs.PairsPruned))
		m.wordDecided.With(name).Add(uint64(fs.WordDecided))
		m.internHits.Add(fs.InternHits)
		m.internMisses.Add(fs.InternMisses)
	}
	if rs.Lifted != nil {
		m.liftedQueries.Add(uint64(rs.Lifted.Queries))
		m.liftedPruned.Add(uint64(rs.Lifted.Pruned))
		m.liftedSessions.Add(uint64(rs.Lifted.Sessions))
	}
	m.runs.Inc()
}
