// Per-run observability for the pipeline: RunStats is the solver/cache
// work summary embedded in every Report (and serialized as the "stats"
// block of a /check response), and PipelineMetrics is the registry-
// backed counterpart that accumulates the same numbers across runs for
// /metrics exposition.
package core

import (
	"llhsc/internal/constraints"
	"llhsc/internal/obs"
	"llhsc/internal/sat"
)

// FamilyStats summarizes the solver work one checker family performed
// during a run, aggregated across every product tree it checked.
type FamilyStats struct {
	// Checks is the number of trees (or, for allocation, configuration
	// sets) this family examined.
	Checks int `json:"checks"`
	// Pairs / PairsPruned are the semantic sweep counters: candidate
	// pairs submitted to the solver, and naive n·(n-1)/2 pairs the
	// prefilter discarded before they cost a query.
	Pairs       int `json:"pairs,omitempty"`
	PairsPruned int `json:"pairsPruned,omitempty"`
	// SolverCalls counts SMT check invocations.
	SolverCalls int `json:"solverCalls,omitempty"`
	// WordDecided counts region pairs the word-level interval tier
	// settled without any solver involvement (DESIGN.md §13).
	WordDecided int `json:"wordDecided,omitempty"`
	// SAT-solver work underneath the family's queries.
	Conflicts    uint64 `json:"conflicts,omitempty"`
	Propagations uint64 `json:"propagations,omitempty"`
	Restarts     uint64 `json:"restarts,omitempty"`
	// Hash-consing effectiveness of the family's smt.Contexts.
	InternHits   uint64 `json:"internHits,omitempty"`
	InternMisses uint64 `json:"internMisses,omitempty"`
}

// add returns the field-wise sum; families accumulate across products.
func (fs FamilyStats) add(other FamilyStats) FamilyStats {
	fs.Checks += other.Checks
	fs.Pairs += other.Pairs
	fs.PairsPruned += other.PairsPruned
	fs.SolverCalls += other.SolverCalls
	fs.WordDecided += other.WordDecided
	fs.Conflicts += other.Conflicts
	fs.Propagations += other.Propagations
	fs.Restarts += other.Restarts
	fs.InternHits += other.InternHits
	fs.InternMisses += other.InternMisses
	return fs
}

// familyStatsFrom converts a checker's SemanticStats sink into the
// report shape, counting one checked tree.
func familyStatsFrom(st constraints.SemanticStats) FamilyStats {
	return FamilyStats{
		Checks:       1,
		Pairs:        st.Pairs,
		PairsPruned:  st.PairsPruned,
		SolverCalls:  st.SolverCalls,
		WordDecided:  st.WordDecided,
		Conflicts:    st.Solver.Conflicts,
		Propagations: st.Solver.Propagations,
		Restarts:     st.Solver.Restarts,
		InternHits:   st.InternHits,
		InternMisses: st.InternMisses,
	}
}

// familyStatsFromSAT converts a raw SAT-stats delta (the allocation
// family, which has no SMT layer).
func familyStatsFromSAT(d sat.Stats) FamilyStats {
	return FamilyStats{
		Checks:       1,
		Conflicts:    d.Conflicts,
		Propagations: d.Propagations,
		Restarts:     d.Restarts,
	}
}

// RunStats is the per-run work summary carried by Report.Stats. All
// counters are totals for one RunContext call; per-family numbers are
// aggregated across every product tree. Trees answered from the check
// cache contribute CacheHits but no family work (nothing was solved).
type RunStats struct {
	Families    map[string]FamilyStats `json:"families,omitempty"`
	CacheHits   int                    `json:"cacheHits"`
	CacheMisses int                    `json:"cacheMisses"`
}

// addFamily folds one family's contribution into the run totals.
func (st *runState) addFamily(name string, fs FamilyStats) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.stats.Families == nil {
		st.stats.Families = make(map[string]FamilyStats)
	}
	st.stats.Families[name] = st.stats.Families[name].add(fs)
}

// addCache records one cache lookup outcome.
func (st *runState) addCache(hit bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if hit {
		st.stats.CacheHits++
	} else {
		st.stats.CacheMisses++
	}
}

// snapshot copies the accumulated stats (workers have drained by the
// time the report is assembled, but the lock keeps -race honest).
func (st *runState) snapshot() RunStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := st.stats
	out.Families = make(map[string]FamilyStats, len(st.stats.Families))
	for k, v := range st.stats.Families {
		out.Families[k] = v
	}
	return out
}

// PipelineMetrics accumulates RunStats across runs on an obs.Registry,
// under the llhsc_sat_*, llhsc_constraints_* and llhsc_smt_* families.
// One instance may be shared by any number of Pipelines (the server
// shares one across requests); observation is a handful of atomic adds
// per run.
type PipelineMetrics struct {
	satConflicts    *obs.CounterVec
	satPropagations *obs.CounterVec
	satRestarts     *obs.CounterVec
	solverCalls     *obs.CounterVec
	pairs           *obs.CounterVec
	pairsPruned     *obs.Counter
	wordDecided     *obs.CounterVec
	internHits      *obs.Counter
	internMisses    *obs.Counter
	runs            *obs.Counter
}

// NewPipelineMetrics registers the pipeline's metric families on reg.
// Register once per registry: duplicate registration panics.
func NewPipelineMetrics(reg *obs.Registry) *PipelineMetrics {
	return &PipelineMetrics{
		satConflicts: reg.NewCounterVec("llhsc_sat_conflicts_total",
			"CDCL conflicts, by checker family.", "family"),
		satPropagations: reg.NewCounterVec("llhsc_sat_propagations_total",
			"Unit propagations, by checker family.", "family"),
		satRestarts: reg.NewCounterVec("llhsc_sat_restarts_total",
			"Solver restarts, by checker family.", "family"),
		solverCalls: reg.NewCounterVec("llhsc_constraints_solver_calls_total",
			"SMT check invocations, by checker family.", "family"),
		pairs: reg.NewCounterVec("llhsc_constraints_pairs_total",
			"Candidate pairs submitted to the solver, by checker family.", "family"),
		pairsPruned: reg.NewCounter("llhsc_constraints_pairs_pruned_total",
			"Naive region pairs the sweep prefilter discarded before reaching the solver."),
		wordDecided: reg.NewCounterVec("llhsc_constraints_word_decided_total",
			"Region pairs decided by the word-level interval tier, no solver involved.", "family"),
		internHits: reg.NewCounter("llhsc_smt_intern_hits_total",
			"Hash-consing intern table hits."),
		internMisses: reg.NewCounter("llhsc_smt_intern_misses_total",
			"Hash-consing intern table misses (terms allocated)."),
		runs: reg.NewCounter("llhsc_core_runs_total",
			"Completed pipeline runs (including runs that found violations)."),
	}
}

// observe folds one run's stats into the cross-run counters.
func (m *PipelineMetrics) observe(rs RunStats) {
	for name, fs := range rs.Families {
		m.satConflicts.With(name).Add(fs.Conflicts)
		m.satPropagations.With(name).Add(fs.Propagations)
		m.satRestarts.With(name).Add(fs.Restarts)
		m.solverCalls.With(name).Add(uint64(fs.SolverCalls))
		m.pairs.With(name).Add(uint64(fs.Pairs))
		m.pairsPruned.Add(uint64(fs.PairsPruned))
		m.wordDecided.With(name).Add(uint64(fs.WordDecided))
		m.internHits.Add(fs.InternHits)
		m.internMisses.Add(fs.InternMisses)
	}
	m.runs.Inc()
}
