package core

import (
	"sync"

	"llhsc/internal/constraints"
	"llhsc/internal/obs"
)

// This file is the pooled-buffer half of the zero-allocation hot path
// (DESIGN.md §13): the Report shell and the per-tree checker fan-out
// scratch are recycled through sync.Pools instead of re-allocated per
// run. The server pays these allocations once per request, so in
// steady state a /check that hits the word tier and the check cache
// touches the allocator only for data that actually escapes into the
// response.

// reportPool recycles Report shells between runs. Only memory that
// never escapes a released report is reused: the struct itself, the
// VMs slot array and the JailhouseCellsC backing array.
var reportPool = sync.Pool{New: func() interface{} { return new(Report) }}

// AcquireReport returns an empty Report drawing on capacity from
// previously Released reports. RunContext uses it internally, so
// callers normally never see this function; it is exported alongside
// Release for callers that build reports themselves.
func AcquireReport() *Report {
	return reportPool.Get().(*Report)
}

// Release clears the report and returns its recyclable buffers to the
// pool. The caller must be completely done with the report AND with
// every slice read out of it that Release clears (VMs, QEMUArgs,
// JailhouseCellsC, Allocation) — copy anything that outlives the
// report first, as the service layer does when building a response.
// Releasing is optional: an un-Released report is ordinary garbage.
func (r *Report) Release() {
	for i := range r.Allocation {
		r.Allocation[i] = constraints.Violation{}
	}
	r.Allocation = r.Allocation[:0]
	for i := range r.Lifted {
		r.Lifted[i] = constraints.LiftedFinding{}
	}
	r.Lifted = r.Lifted[:0]
	for i := range r.VMs {
		r.VMs[i] = VMResult{}
	}
	r.VMs = r.VMs[:0]
	r.Platform = PlatformResult{}
	r.PlatformC, r.ConfigC = "", ""
	for i := range r.QEMUArgs {
		r.QEMUArgs[i] = ""
	}
	r.QEMUArgs = r.QEMUArgs[:0]
	r.JailhouseRootC = ""
	for i := range r.JailhouseCellsC {
		r.JailhouseCellsC[i] = ""
	}
	r.JailhouseCellsC = r.JailhouseCellsC[:0]
	r.Stats = RunStats{}
	reportPool.Put(r)
}

// vmSlots resizes r.VMs to n zeroed entries, reusing a released
// report's backing array when it is large enough.
func (r *Report) vmSlots(n int) {
	if cap(r.VMs) < n {
		r.VMs = make([]VMResult, n)
		return
	}
	r.VMs = r.VMs[:n]
	for i := range r.VMs {
		r.VMs[i] = VMResult{}
	}
}

// treeScratch is the per-tree fan-out scratch checkTree recycles: the
// family span list plus the per-family result and error slots of the
// parallel path. None of it escapes the call — the merged violation
// slice is built fresh because it lands in the Report — so pooling
// removes the fan-out's fixed slice allocations for every tree checked.
type treeScratch struct {
	spans   []*obs.Span
	results [][]constraints.Violation
	errs    []error
}

var treeScratchPool = sync.Pool{New: func() interface{} { return new(treeScratch) }}

// acquireTreeScratch returns a scratch with n zeroed slots in each
// buffer.
func acquireTreeScratch(n int) *treeScratch {
	s := treeScratchPool.Get().(*treeScratch)
	if cap(s.spans) < n {
		s.spans = make([]*obs.Span, n)
		s.results = make([][]constraints.Violation, n)
		s.errs = make([]error, n)
		return s
	}
	s.spans = s.spans[:n]
	s.results = s.results[:n]
	s.errs = s.errs[:n]
	for i := 0; i < n; i++ {
		s.spans[i], s.results[i], s.errs[i] = nil, nil, nil
	}
	return s
}

// release drops every reference the scratch still holds (spans stay
// alive through their parent; violations through the merged slice) and
// returns it to the pool.
func (s *treeScratch) release() {
	for i := range s.spans {
		s.spans[i], s.results[i], s.errs[i] = nil, nil, nil
	}
	treeScratchPool.Put(s)
}
