// Solver slow-query support for the pipeline: the OnQuery observers
// wired into the semantic and lifted checkers, and the self-contained
// reproducer bundles written for queries that cross the slow-query
// threshold. A bundle carries everything needed to re-execute one
// query offline — canonical DTS (or feature model + guard), strategy
// and budget knobs — keyed by the same sha256 canonicalization the
// check cache uses, and `llhsc replay <bundle>` re-runs it and
// compares verdict and witness (see Replay).
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"llhsc/internal/addr"
	"llhsc/internal/checkcache"
	"llhsc/internal/constraints"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/obs"
	"llhsc/internal/sat"
)

// Bundle kinds.
const (
	BundleSemanticPair = "semantic-pair"
	BundleLiftedReach  = "lifted-reach"
)

// ReproBundle is a self-contained reproducer for one slow solver
// query. BundleSemanticPair carries the canonical product DTS and
// identifies a region pair; BundleLiftedReach carries the feature
// model and a guard expression. Both carry the strategy/budget knobs
// that shaped the original decision, so a replay runs the exact same
// ladder.
type ReproBundle struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	// Key is the bundle's content address: checkcache.Key over the
	// payload fields below, the same length-delimited sha256 the check
	// cache uses, so identical slow queries dedup to one bundle file.
	Key string `json:"key"`

	DTS          string `json:"dts,omitempty"`          // semantic-pair: canonical tree text
	FeatureModel string `json:"featureModel,omitempty"` // lifted-reach: model text
	Guard        string `json:"guard,omitempty"`        // lifted-reach: guard expr ("-" = model non-void)
	SchemaFP     string `json:"schemaFP,omitempty"`     // schema-set fingerprint, informational

	Strategy         string `json:"strategy,omitempty"`
	MaxConflicts     uint64 `json:"maxConflicts,omitempty"`
	MaxLearntLits    int    `json:"maxLearntLits,omitempty"`
	CheckMemoryBanks bool   `json:"checkMemoryBanks"`

	// Query is the original decision as recorded, including the pair
	// labels (A/B), verdict, witness and solver-work counters.
	Query obs.QueryRecord `json:"query"`
}

// semanticObserver returns the semantic checker's OnQuery hook for one
// tree, or nil when the slow-query log is disabled — the nil keeps the
// checker's decision loops on their zero-allocation path.
func (p *Pipeline) semanticObserver(st *runState, tree *dts.Tree) func(obs.QueryRecord) {
	if p.SlowQuery == nil {
		return nil
	}
	return func(q obs.QueryRecord) {
		if p.SlowQuery.Slow(q.Millis) && p.SlowQueryBundleDir != "" {
			b := &ReproBundle{
				Version:          1,
				Kind:             BundleSemanticPair,
				DTS:              tree.Print(),
				SchemaFP:         st.schemaFP,
				Strategy:         p.SemanticStrategy.String(),
				MaxConflicts:     st.limits.Solver.MaxConflicts,
				MaxLearntLits:    st.limits.Solver.MaxLearntLits,
				CheckMemoryBanks: true,
				Query:            q,
			}
			if path, err := WriteReproBundle(p.SlowQueryBundleDir, b); err == nil {
				q.Bundle = path
			}
		}
		p.SlowQuery.Observe(q)
	}
}

// liftedObserver is semanticObserver's counterpart for the lifted
// checker's reachability queries.
func (p *Pipeline) liftedObserver(st *runState) func(obs.QueryRecord) {
	if p.SlowQuery == nil {
		return nil
	}
	return func(q obs.QueryRecord) {
		if p.SlowQuery.Slow(q.Millis) && p.SlowQueryBundleDir != "" {
			b := &ReproBundle{
				Version:       1,
				Kind:          BundleLiftedReach,
				FeatureModel:  p.Model.Format(),
				Guard:         q.Query,
				SchemaFP:      st.schemaFP,
				MaxConflicts:  st.limits.Solver.MaxConflicts,
				MaxLearntLits: st.limits.Solver.MaxLearntLits,
				Query:         q,
			}
			if path, err := WriteReproBundle(p.SlowQueryBundleDir, b); err == nil {
				q.Bundle = path
			}
		}
		p.SlowQuery.Observe(q)
	}
}

// bundleKey computes the bundle's content address from its payload.
func bundleKey(b *ReproBundle) string {
	return checkcache.Key(
		b.Kind, b.DTS, b.FeatureModel, b.Guard, b.Strategy,
		fmt.Sprintf("conflicts=%d;learntlits=%d;banks=%v", b.MaxConflicts, b.MaxLearntLits, b.CheckMemoryBanks),
		b.Query.A, b.Query.B,
	)
}

// WriteReproBundle writes b under dir as slowquery-<key-prefix>.json,
// creating dir if needed. Bundles are content-addressed: if a bundle
// for the same query already exists the existing path is returned, so
// a degenerating run cannot flood the directory with duplicates.
func WriteReproBundle(dir string, b *ReproBundle) (string, error) {
	b.Key = bundleKey(b)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("slowquery-%.16s.json", b.Key))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return path, nil
		}
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(b)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(path)
		return "", werr
	}
	return path, nil
}

// ReadReproBundle loads a bundle written by WriteReproBundle.
func ReadReproBundle(path string) (*ReproBundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b ReproBundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("core: bundle %s: %w", path, err)
	}
	switch b.Kind {
	case BundleSemanticPair, BundleLiftedReach:
	default:
		return nil, fmt.Errorf("core: bundle %s: unknown kind %q", path, b.Kind)
	}
	return &b, nil
}

// ReplayResult is the outcome of re-executing a bundle's query.
type ReplayResult struct {
	// Verdict/Witness are the re-executed query's outcome, in the same
	// encoding QueryRecord uses.
	Verdict string  `json:"verdict"`
	Witness string  `json:"witness,omitempty"`
	Millis  float64 `json:"millis"`
	// Match reports whether the outcome agrees with the recorded one:
	// verdict for every kind, witness additionally for semantic pairs
	// (lifted witnesses are non-canonical SAT models).
	Match bool `json:"match"`
}

// Replay re-executes the bundle's query under the recorded knobs and
// compares the outcome against the recorded verdict and witness.
func (b *ReproBundle) Replay(ctx context.Context) (*ReplayResult, error) {
	t0 := time.Now()
	var res *ReplayResult
	var err error
	switch b.Kind {
	case BundleSemanticPair:
		res, err = b.replaySemantic(ctx)
	case BundleLiftedReach:
		res, err = b.replayLifted(ctx)
	default:
		return nil, fmt.Errorf("core: unknown bundle kind %q", b.Kind)
	}
	if err != nil {
		return nil, err
	}
	res.Millis = float64(time.Since(t0)) / float64(time.Millisecond)
	res.Match = res.Verdict == b.Query.Verdict
	// A semantic pair's witness is the overlap address the fixed decision
	// ladder derives, so it must reproduce exactly. A lifted witness is a
	// SAT model — one of possibly many valid configurations — and a fresh
	// solver may legitimately pick a different one, so only the verdict
	// binds there.
	if b.Kind == BundleSemanticPair {
		res.Match = res.Match && res.Witness == b.Query.Witness
	}
	return res, nil
}

// replaySemantic re-runs the full collision search over the bundled
// tree — same strategy, same budget — and reads the bundled pair's
// verdict out of the collision list. Re-running the search (rather
// than one pair in isolation) replays the exact decision ladder,
// including the sweep prefilter and the shared assumption solver the
// original query went through.
func (b *ReproBundle) replaySemantic(ctx context.Context) (*ReplayResult, error) {
	tree, err := dts.Parse("bundle.dts", b.DTS)
	if err != nil {
		return nil, fmt.Errorf("core: bundle DTS: %w", err)
	}
	strategy, err := constraints.ParseSemanticStrategy(b.Strategy)
	if err != nil {
		return nil, err
	}
	sc := constraints.NewSemanticChecker()
	sc.CheckMemoryBanks = b.CheckMemoryBanks
	sc.Strategy = strategy
	sc.Budget = sat.Budget{MaxConflicts: b.MaxConflicts, MaxLearntLits: b.MaxLearntLits}
	regions, rerr := addr.CollectRegions(tree)
	if rerr != nil {
		return nil, fmt.Errorf("core: bundle regions: %w", rerr)
	}
	width := addr.BitWidth(tree.Root.AddressCells())
	collisions, cerr := sc.FindCollisionsContext(ctx, regions, width)
	res := &ReplayResult{Verdict: "disjoint"}
	for _, c := range collisions {
		if constraints.RegionLabel(c.A) == b.Query.A && constraints.RegionLabel(c.B) == b.Query.B {
			res.Verdict = "overlap"
			res.Witness = fmt.Sprintf("0x%x", c.Witness)
			break
		}
	}
	if cerr != nil && res.Verdict == "disjoint" {
		res.Verdict = "limit"
	}
	return res, nil
}

// replayLifted re-poses the reachability query: seed a fresh presence
// encoder with the bundled feature model and solve the guard.
func (b *ReproBundle) replayLifted(ctx context.Context) (*ReplayResult, error) {
	model, err := featmodel.ParseModel("bundle.fm", b.FeatureModel)
	if err != nil {
		return nil, fmt.Errorf("core: bundle feature model: %w", err)
	}
	var cond *featmodel.Expr
	if b.Guard != "" && b.Guard != "-" {
		cond, err = featmodel.ParseExpr(b.Guard)
		if err != nil {
			return nil, fmt.Errorf("core: bundle guard: %w", err)
		}
	}
	pe := featmodel.NewPresenceEncoder(model)
	pe.SetBudget(sat.Budget{MaxConflicts: b.MaxConflicts, MaxLearntLits: b.MaxLearntLits})
	lit := pe.Literal(cond)
	st, serr := pe.SolveContext(ctx, lit)
	res := &ReplayResult{Verdict: "unsat"}
	switch {
	case serr != nil:
		res.Verdict = "limit"
	case st == sat.Sat:
		res.Verdict = "sat"
		res.Witness = fmt.Sprintf("%v", pe.Config().Sorted())
	}
	return res, nil
}
