// Round-trip tests for the slow-query reproducer bundles: a pipeline
// run with the threshold at zero must bundle every solver query, and
// replaying each bundle must reproduce the recorded verdict and
// witness exactly.
package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"llhsc/internal/delta"
	"llhsc/internal/obs"
)

// bundleDir runs the pipeline with every query treated as slow and
// returns the bundle paths it produced.
func bundleDir(t *testing.T, p *Pipeline) []string {
	t.Helper()
	dir := t.TempDir()
	p.SlowQuery = obs.NewSlowQueryLog(nil, 0) // everything is "slow"
	p.SlowQueryBundleDir = dir
	if _, err := p.RunContext(context.Background(), Limits{}); err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "slowquery-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// replayAll loads and replays every bundle, failing on any mismatch,
// and returns the per-kind counts plus how many verdicts were found.
func replayAll(t *testing.T, paths []string) (kinds map[string]int, verdicts map[string]int) {
	t.Helper()
	kinds = make(map[string]int)
	verdicts = make(map[string]int)
	for _, path := range paths {
		b, err := ReadReproBundle(path)
		if err != nil {
			t.Fatalf("ReadReproBundle(%s): %v", path, err)
		}
		if b.Key == "" || b.Version != 1 {
			t.Errorf("%s: key/version not stamped: %+v", filepath.Base(path), b)
		}
		kinds[b.Kind]++
		verdicts[b.Query.Verdict]++
		res, err := b.Replay(context.Background())
		if err != nil {
			t.Fatalf("Replay(%s): %v", path, err)
		}
		if !res.Match {
			t.Errorf("%s: replay diverged: got verdict=%q witness=%q, recorded verdict=%q witness=%q",
				filepath.Base(path), res.Verdict, res.Witness, b.Query.Verdict, b.Query.Witness)
		}
	}
	return kinds, verdicts
}

// collidingPipeline is the running example minus delta d4: the VM1
// product has a genuine address overlap, so the semantic checker's
// decision ladder is guaranteed to run real pair queries (the clean
// example's pairs are all discharged by the sweep prefilter, which by
// design records no queries).
func collidingPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p := paperPipeline(t)
	var kept []*delta.Delta
	for _, d := range p.Deltas.Deltas {
		if d.Name != "d4" {
			kept = append(kept, d)
		}
	}
	set, err := delta.NewSet(kept)
	if err != nil {
		t.Fatal(err)
	}
	p.Deltas = set
	return p
}

// TestSemanticBundlesReplayToSameVerdict: an enumerative run over a
// product line with a real overlap must bundle its pair decisions, and
// each bundle replays to the recorded verdict — including the overlap
// with its witness address.
func TestSemanticBundlesReplayToSameVerdict(t *testing.T) {
	paths := bundleDir(t, collidingPipeline(t))
	if len(paths) == 0 {
		t.Fatal("threshold-zero run produced no bundles")
	}
	kinds, verdicts := replayAll(t, paths)
	if kinds[BundleSemanticPair] == 0 {
		t.Errorf("no semantic-pair bundles: %v", kinds)
	}
	if verdicts["overlap"] == 0 {
		t.Errorf("no overlap query bundled although the line collides: %v", verdicts)
	}
}

// TestLiftedBundlesReplayToSameVerdict: a lifted-mode run bundles its
// family reachability queries and each replays to the same verdict.
func TestLiftedBundlesReplayToSameVerdict(t *testing.T) {
	p := paperPipeline(t)
	p.Mode = ModeLifted
	paths := bundleDir(t, p)
	if len(paths) == 0 {
		t.Fatal("lifted threshold-zero run produced no bundles")
	}
	kinds, _ := replayAll(t, paths)
	if kinds[BundleLiftedReach] == 0 {
		t.Errorf("no lifted-reach bundles: %v", kinds)
	}
}

// TestBundlesAreContentAddressed: running the same pipeline twice into
// one directory must not duplicate bundles — identical queries share a
// content address and the second write finds the first file.
func TestBundlesAreContentAddressed(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		p := collidingPipeline(t)
		p.SlowQuery = obs.NewSlowQueryLog(nil, 0)
		p.SlowQueryBundleDir = dir
		if _, err := p.RunContext(context.Background(), Limits{}); err != nil {
			t.Fatal(err)
		}
		paths, err := filepath.Glob(filepath.Join(dir, "slowquery-*.json"))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 && len(paths) == 0 {
			t.Fatal("first run produced no bundles")
		}
		if i == 1 {
			first, _ := filepath.Glob(filepath.Join(dir, "slowquery-*.json"))
			if len(first) != len(paths) {
				t.Errorf("second run changed bundle count: %d then %d", len(paths), len(first))
			}
		}
	}
}

// TestReadReproBundleRejectsUnknownKind guards the replay entry point
// against malformed or future-versioned bundle files.
func TestReadReproBundleRejectsUnknownKind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slowquery-bad.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"kind":"quantum-pair"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReproBundle(path); err == nil {
		t.Error("ReadReproBundle accepted an unknown kind")
	}
}

// TestNoBundlesWithoutDir: a slow-query log with no bundle directory
// observes queries but must not write anything anywhere.
func TestNoBundlesWithoutDir(t *testing.T) {
	p := collidingPipeline(t)
	log := obs.NewSlowQueryLog(nil, 0)
	p.SlowQuery = log
	if _, err := p.RunContext(context.Background(), Limits{}); err != nil {
		t.Fatal(err)
	}
	if log.Observed() == 0 {
		t.Error("no queries observed with instrumentation enabled")
	}
}
