package checkcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"llhsc/internal/constraints"
)

func TestKeyDistinguishesPartBoundaries(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal("length delimiting failed: shifted parts collide")
	}
	if Key("a", "b") != Key("a", "b") {
		t.Fatal("Key is not deterministic")
	}
}

func TestDoCachesAndCounts(t *testing.T) {
	c := New(4)
	calls := 0
	fn := func() ([]constraints.Violation, error) {
		calls++
		return []constraints.Violation{{Rule: "r", Message: "m"}}, nil
	}
	v1, hit, err := c.Do(context.Background(), "k", fn)
	if err != nil || hit || len(v1) != 1 {
		t.Fatalf("first Do = %v hit=%v err=%v", v1, hit, err)
	}
	v2, hit, err := c.Do(context.Background(), "k", fn)
	if err != nil || !hit || len(v2) != 1 {
		t.Fatalf("second Do = %v hit=%v err=%v", v2, hit, err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The returned slice is a copy: appending must not corrupt the cache.
	_ = append(v2, constraints.Violation{Rule: "x"})
	v3, _, _ := c.Do(context.Background(), "k", fn)
	if len(v3) != 1 {
		t.Fatalf("cached slice corrupted by caller append: %v", v3)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", nil)
	c.Put("b", nil)
	if _, ok := c.Get("a"); !ok { // touches a: b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", nil) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSingleFlightDeduplicates(t *testing.T) {
	c := New(4)
	var calls int32
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.Do(context.Background(), "k", func() ([]constraints.Violation, error) {
			atomic.AddInt32(&calls, 1)
			close(started)
			<-release
			return []constraints.Violation{{Rule: "shared"}}, nil
		})
	}()
	<-started

	const waiters = 8
	var wg sync.WaitGroup
	results := make([][]constraints.Violation, waiters)
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.Do(context.Background(), "k", func() ([]constraints.Violation, error) {
				atomic.AddInt32(&calls, 1)
				return nil, fmt.Errorf("waiter %d should not compute", i)
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i], hits[i] = v, hit
		}(i)
	}
	close(release)
	wg.Wait()
	<-leaderDone

	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i := range results {
		if len(results[i]) != 1 || results[i][0].Rule != "shared" {
			t.Fatalf("waiter %d got %v", i, results[i])
		}
		if !hits[i] {
			t.Errorf("waiter %d not counted as a hit", i)
		}
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != waiters {
		t.Errorf("stats = %+v, want 1 miss and %d hits", st, waiters)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("budget exhausted")
	calls := 0
	_, _, err := c.Do(context.Background(), "k", func() ([]constraints.Violation, error) {
		calls++
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	_, hit, err := c.Do(context.Background(), "k", func() ([]constraints.Violation, error) {
		calls++
		return nil, nil
	})
	if err != nil || hit {
		t.Fatalf("retry after error: hit=%v err=%v", hit, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (error must not be cached)", calls)
	}
}

func TestWaiterHonorsOwnContext(t *testing.T) {
	c := New(4)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		c.Do(context.Background(), "k", func() ([]constraints.Violation, error) {
			close(started)
			<-release
			return nil, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() ([]constraints.Violation, error) {
		t.Error("canceled waiter must not compute")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNilCachePassesThrough(t *testing.T) {
	var c *Cache
	v, hit, err := c.Do(context.Background(), "k", func() ([]constraints.Violation, error) {
		return []constraints.Violation{{Rule: "r"}}, nil
	})
	if err != nil || hit || len(v) != 1 {
		t.Fatalf("nil cache Do = %v hit=%v err=%v", v, hit, err)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	c.Put("k", nil)
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache stored a value")
	}
	if New(0) != nil {
		t.Fatal("New(0) should be the disabled (nil) cache")
	}
}
