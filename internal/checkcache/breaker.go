// Circuit breaker guarding the persistent tier. The disk is an
// optimization, never a dependency: when it starts failing (I/O
// errors, a full volume, a dying device) the cache must shed it and
// keep answering from memory + compute, then probe its way back once
// the faults clear — without letting every request pay the failure
// latency in the meantime.
package checkcache

import (
	"math/rand"
	"sync"
	"time"
)

// BreakerState is the circuit's position.
type BreakerState int32

const (
	// BreakerClosed: healthy, operations flow to the disk tier.
	BreakerClosed BreakerState = iota
	// BreakerOpen: tripped, every operation is skipped (memory-only
	// mode) until the backoff deadline passes.
	BreakerOpen
	// BreakerHalfOpen: the deadline passed and exactly one probe
	// operation is in flight; its outcome closes or re-opens.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerStats is a snapshot for /healthz.
type BreakerStats struct {
	State            string `json:"state"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	Trips            uint64 `json:"trips"`
	Probes           uint64 `json:"probes"`
	// NextProbeMs is how far away the next probe is when open
	// (0 when closed/half-open or already due).
	NextProbeMs int64 `json:"next_probe_ms,omitempty"`
}

// Breaker is a consecutive-failure circuit breaker with jittered
// exponential-backoff probing. The zero value is not usable; call
// NewBreaker. A nil *Breaker always allows (no breaking).
type Breaker struct {
	threshold int
	base, max time.Duration

	// Now and Jitter are swapped in tests for determinism. Jitter
	// returns a value in [0, 1); the probe delay is backoff/2 +
	// jitter*backoff/2, i.e. 50–100% of nominal, so a fleet of
	// restarting nodes does not probe a struggling disk in lockstep.
	Now    func() time.Time
	Jitter func() float64

	mu      sync.Mutex
	state   BreakerState
	fails   int // consecutive failures while closed
	backoff time.Duration
	probeAt time.Time
	trips   uint64
	probes  uint64
}

// Default breaker tuning: trip after 5 consecutive failures, probe
// after ~1s doubling to at most 60s.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerBase      = time.Second
	DefaultBreakerMax       = time.Minute
)

// NewBreaker returns a closed breaker. threshold <= 0, base <= 0 and
// max <= 0 take the defaults.
func NewBreaker(threshold int, base, max time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if base <= 0 {
		base = DefaultBreakerBase
	}
	if max <= 0 {
		max = DefaultBreakerMax
	}
	if max < base {
		max = base
	}
	return &Breaker{
		threshold: threshold,
		base:      base,
		max:       max,
		Now:       time.Now,
		Jitter:    rand.Float64,
	}
}

// Allow reports whether the next disk operation may proceed. While
// open it returns false until the jittered backoff deadline passes,
// then admits exactly one probe (half-open); further calls are denied
// until that probe's Success or Failure resolves the state.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return false // one probe at a time
	default: // open
		if b.Now().Before(b.probeAt) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes++
		return true
	}
}

// Success records a healthy disk operation: it closes the circuit and
// resets the failure count and backoff.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.backoff = 0
}

// Failure records a failed disk operation. The threshold-th
// consecutive failure while closed trips the circuit; a failed probe
// re-opens with doubled (capped, jittered) backoff.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.backoff *= 2
		if b.backoff > b.max {
			b.backoff = b.max
		}
		b.openLocked()
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.backoff = b.base
			b.openLocked()
		}
	}
	// Failures reported while already open (operations admitted before
	// the trip) do not extend the backoff.
}

// openLocked trips to open and schedules the next probe at 50–100% of
// the nominal backoff.
func (b *Breaker) openLocked() {
	b.state = BreakerOpen
	b.trips++
	d := b.backoff/2 + time.Duration(b.Jitter()*float64(b.backoff/2))
	b.probeAt = b.Now().Add(d)
}

// State returns the circuit's position.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns a consistent snapshot.
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{State: BreakerClosed.String()}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStats{
		State:            b.state.String(),
		ConsecutiveFails: b.fails,
		Trips:            b.trips,
		Probes:           b.probes,
	}
	if b.state == BreakerOpen {
		if wait := b.probeAt.Sub(b.Now()); wait > 0 {
			st.NextProbeMs = wait.Milliseconds()
		}
	}
	return st
}
