// Package persist is the disk tier under the in-memory check-result
// LRU (internal/checkcache): an append-only, CRC32C-checksummed
// segment-file store keyed by the cache's sha256 content address. Its
// job is to keep the fleet warm across restarts — a rolling deploy
// reopens the directory, replays the index, and serves yesterday's
// verdicts — while never, under any failure, serving a record that
// does not checksum. The threat model is explicit: the process dies
// mid-write (torn tail), the disk lies (bit rot, short writes,
// I/O errors), and both must degrade to cache misses, not wrong
// violation sets.
//
// # On-disk format
//
// A store directory holds sealed segments `seg-<n>.llc`, one active
// staging segment `active.llc`, and a `quarantine/` subdirectory of
// byte ranges that failed validation. Records are framed as
//
//	magic    byte   0xD7
//	keyLen   uint16 little-endian
//	valLen   uint32 little-endian
//	key      keyLen bytes
//	val      valLen bytes
//	crc      uint32 little-endian, CRC32C over magic..val
//
// Appends go through a staging buffer (one record = one Write call)
// into active.llc. When the active segment exceeds the rotation
// threshold it is synced, closed and atomically renamed to the next
// seg-<n>.llc — a reader never observes a half-sealed segment under a
// sealed name. Within one segment later records win; across segments
// higher-numbered ones do.
//
// # Recovery
//
// Open scans every segment oldest-first and rebuilds the key index.
// A structurally incomplete record at the tail of the active segment
// is the expected crash shape: the tail is truncated (counted, not
// quarantined) and appending resumes at the cut. Everything else that
// fails validation — bad magic, an impossible length, a CRC mismatch,
// a torn tail in a *sealed* segment — is copied into quarantine/ and
// the remainder of that segment is skipped: a corrupt length field
// makes every later frame boundary untrustworthy. Lookups re-verify
// the CRC on every read, so a record that rots after recovery is a
// miss, never a wrong answer.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"llhsc/internal/faultinject"
)

// Named fault-injection points consulted by the store. The chaos and
// fault-matrix suites iterate Points to prove every failure path
// degrades cleanly.
const (
	PointOpen        = "persist.open"          // opening/creating files at Open
	PointAppendWrite = "persist.append.write"  // the record write into active.llc
	PointAppendSync  = "persist.append.sync"   // fsync of the active segment
	PointRotate      = "persist.rotate.rename" // the seal rename active.llc -> seg-N.llc
	PointRead        = "persist.read"          // the record read serving a Get
	PointScan        = "persist.recover.scan"  // reading segments during Open's scan
	PointQuarantine  = "persist.quarantine"    // writing a quarantine file
)

// Points lists every named failure point the store consults.
var Points = []string{
	PointOpen, PointAppendWrite, PointAppendSync,
	PointRotate, PointRead, PointScan, PointQuarantine,
}

const (
	recMagic      = 0xD7
	recHeaderLen  = 1 + 2 + 4 // magic + keyLen + valLen
	recTrailerLen = 4         // crc32c
	maxKeyLen     = 1 << 10
	maxValLen     = 64 << 20

	activeName    = "active.llc"
	segPrefix     = "seg-"
	segSuffix     = ".llc"
	quarantineDir = "quarantine"

	// DefaultMaxSegmentBytes rotates the active segment at 4 MiB.
	DefaultMaxSegmentBytes = 4 << 20
	// DefaultMaxTotalBytes caps the store at 256 MiB of segments; the
	// oldest sealed segment is dropped when the cap is exceeded.
	DefaultMaxTotalBytes = 256 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open.
type Options struct {
	// Dir is the store directory, created if missing.
	Dir string
	// MaxSegmentBytes is the rotation threshold for the active segment
	// (0 = DefaultMaxSegmentBytes).
	MaxSegmentBytes int64
	// MaxTotalBytes caps the total bytes across sealed + active
	// segments; exceeding it drops whole oldest segments (0 =
	// DefaultMaxTotalBytes, < 0 = unlimited).
	MaxTotalBytes int64
	// SyncEvery fsyncs the active segment after every nth append
	// (1 = every append). 0 syncs only on rotation and Close: a crash
	// may lose recent appends, never previously synced ones.
	SyncEvery int
	// Faults, when non-nil, is consulted at every named point above.
	Faults *faultinject.Set
}

// Stats is a snapshot of the store's counters and footprint.
type Stats struct {
	Entries     int    `json:"entries"`
	Segments    int    `json:"segments"` // sealed + active
	Bytes       int64  `json:"bytes"`
	Appends     uint64 `json:"appends"`
	AppendFails uint64 `json:"append_fails"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	ReadFails   uint64 `json:"read_fails"`
	// TornTruncated counts structurally incomplete active-segment tails
	// cut during recovery — the expected crash residue.
	TornTruncated uint64 `json:"torn_truncated"`
	// Quarantined counts byte ranges that failed validation and were
	// copied to quarantine/ (recovery corruption + read-time CRC rot).
	Quarantined uint64 `json:"quarantined"`
	// Dropped counts whole segments deleted by the total-bytes cap.
	Dropped uint64 `json:"dropped_segments"`
	// MaintFails counts failed background maintenance (segment seal
	// renames, cap-enforcement deletes). Maintenance retries on later
	// appends and never fails a Put — an error from Put always means
	// the record is not visible.
	MaintFails uint64 `json:"maint_fails"`
}

// recLoc locates one live record.
type recLoc struct {
	seg    uint64 // 0 = active segment
	off    int64
	length int64 // full framed length
}

// Store is an append-only segment store, safe for concurrent use.
type Store struct {
	dir    string
	maxSeg int64
	maxTot int64
	sync   int
	faults *faultinject.Set

	mu         sync.Mutex
	index      map[string]recLoc
	active     *os.File
	activeSize int64
	nextSeg    uint64           // number the active segment seals as; >= 1 (0 = active in recLoc)
	sealed     map[uint64]int64 // segment number -> size in bytes
	appendsOut int              // appends since the last fsync
	encBuf     []byte           // staging buffer, reused across appends
	repairTo   int64            // < 0 when clean; else truncate target after a failed append
	closed     bool

	stats Stats
}

// Open opens (creating if necessary) the store in opts.Dir and
// recovers its index: sealed segments oldest-first, then the active
// segment with torn-tail truncation. A corrupt record is quarantined
// and never indexed. The returned store owns the directory until
// Close.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("persist: Options.Dir is required")
	}
	s := &Store{
		dir:      opts.Dir,
		maxSeg:   opts.MaxSegmentBytes,
		maxTot:   opts.MaxTotalBytes,
		sync:     opts.SyncEvery,
		faults:   opts.Faults,
		index:    make(map[string]recLoc),
		sealed:   make(map[uint64]int64),
		nextSeg:  1, // recLoc.seg 0 means "active", so seals start at 1
		repairTo: -1,
	}
	if s.maxSeg <= 0 {
		s.maxSeg = DefaultMaxSegmentBytes
	}
	if s.maxTot == 0 {
		s.maxTot = DefaultMaxTotalBytes
	}
	if err := s.faults.Fire(PointOpen); err != nil {
		return nil, fmt.Errorf("persist: open %s: %w", opts.Dir, err)
	}
	if err := os.MkdirAll(filepath.Join(s.dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	segs, err := s.listSegments()
	if err != nil {
		return nil, err
	}
	for _, n := range segs {
		if err := s.recoverSegment(n); err != nil {
			return nil, err
		}
		if n >= s.nextSeg {
			s.nextSeg = n + 1
		}
	}
	if err := s.recoverActive(); err != nil {
		return nil, err
	}
	return s, nil
}

// listSegments returns the sealed segment numbers in ascending order.
func (s *Store) listSegments() ([]uint64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var segs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			continue // not ours; leave it alone
		}
		segs = append(segs, n)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

func (s *Store) segPath(n uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix))
}

func (s *Store) activePath() string { return filepath.Join(s.dir, activeName) }

// scanOutcome classifies how a segment scan ended.
type scanOutcome int

const (
	scanClean   scanOutcome = iota // EOF exactly at a record boundary
	scanTorn                       // incomplete record at the tail
	scanCorrupt                    // failed validation before the tail
)

// scanSegment reads one segment file, indexing every valid record
// under segment number seg. It returns the outcome, the byte offset of
// the first invalid byte (== file size when clean), and any I/O error.
func (s *Store) scanSegment(path string, seg uint64) (scanOutcome, int64, error) {
	if err := s.faults.Fire(PointScan); err != nil {
		return scanClean, 0, fmt.Errorf("persist: scan %s: %w", path, err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return scanClean, 0, nil
		}
		return scanClean, 0, fmt.Errorf("persist: scan %s: %w", path, err)
	}
	off := int64(0)
	for int64(len(raw)) > off {
		rest := raw[off:]
		if len(rest) < recHeaderLen {
			return scanTorn, off, nil
		}
		if rest[0] != recMagic {
			return scanCorrupt, off, nil
		}
		keyLen := int(binary.LittleEndian.Uint16(rest[1:3]))
		valLen := int(binary.LittleEndian.Uint32(rest[3:7]))
		if keyLen == 0 || keyLen > maxKeyLen || valLen > maxValLen {
			return scanCorrupt, off, nil
		}
		total := int64(recHeaderLen + keyLen + valLen + recTrailerLen)
		if int64(len(rest)) < total {
			return scanTorn, off, nil
		}
		body := rest[:total-recTrailerLen]
		want := binary.LittleEndian.Uint32(rest[total-recTrailerLen : total])
		if crc32.Checksum(body, castagnoli) != want {
			return scanCorrupt, off, nil
		}
		key := string(rest[recHeaderLen : recHeaderLen+keyLen])
		s.index[key] = recLoc{seg: seg, off: off, length: total}
		off += total
	}
	return scanClean, off, nil
}

// recoverSegment scans one sealed segment. Sealed segments were synced
// before their rename, so anything invalid in one — including a torn
// tail — is corruption: the invalid remainder is quarantined and
// skipped (a corrupt length field poisons every later frame boundary).
func (s *Store) recoverSegment(n uint64) error {
	path := s.segPath(n)
	outcome, off, err := s.scanSegment(path, n)
	if err != nil {
		return err
	}
	size := off
	if outcome != scanClean {
		if qerr := s.quarantine(path, off); qerr != nil {
			return qerr
		}
		if err := os.Truncate(path, off); err != nil {
			return fmt.Errorf("persist: %w", err)
		}
	}
	s.sealed[n] = size
	s.stats.Bytes += size
	return nil
}

// recoverActive scans the staging segment, truncating a torn tail
// (expected crash residue) and quarantining corruption, then reopens
// it for appending at the recovered size.
func (s *Store) recoverActive() error {
	path := s.activePath()
	outcome, off, err := s.scanSegment(path, 0)
	if err != nil {
		return err
	}
	switch outcome {
	case scanTorn:
		s.stats.TornTruncated++
	case scanCorrupt:
		if err := s.quarantine(path, off); err != nil {
			return err
		}
	}
	if outcome != scanClean {
		if err := os.Truncate(path, off); err != nil {
			return fmt.Errorf("persist: %w", err)
		}
	}
	if err := s.faults.Fire(PointOpen); err != nil {
		return fmt.Errorf("persist: open %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	s.active = f
	s.activeSize = off
	s.stats.Bytes += off
	return nil
}

// quarantine copies the invalid remainder of a segment (from off) into
// quarantine/<base>@<off>.bin for post-mortem, instead of deleting the
// evidence. Called under mu (or before the store is shared).
func (s *Store) quarantine(path string, off int64) error {
	s.stats.Quarantined++
	if err := s.faults.Fire(PointQuarantine); err != nil {
		// Failing to preserve evidence must not take down recovery;
		// the counter already recorded the corruption.
		return nil
	}
	raw, err := os.ReadFile(path)
	if err != nil || off >= int64(len(raw)) {
		return nil
	}
	qpath := filepath.Join(s.dir, quarantineDir,
		fmt.Sprintf("%s@%d.bin", filepath.Base(path), off))
	if err := os.WriteFile(qpath, raw[off:], 0o644); err != nil {
		return nil // best effort, same rationale as above
	}
	return nil
}

// Get returns the stored value for key. The record's CRC is
// re-verified on every read; a mismatch (bit rot after recovery)
// quarantines the record, drops it from the index and reports a miss.
// A read I/O error is returned so the caller's circuit breaker can
// count it.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, errors.New("persist: store is closed")
	}
	loc, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		return nil, false, nil
	}
	if err := s.faults.Fire(PointRead); err != nil {
		s.stats.ReadFails++
		return nil, false, fmt.Errorf("persist: read: %w", err)
	}
	path := s.activePath()
	if loc.seg != 0 {
		path = s.segPath(loc.seg)
	}
	f, err := os.Open(path)
	if err != nil {
		s.stats.ReadFails++
		return nil, false, fmt.Errorf("persist: read: %w", err)
	}
	defer f.Close()
	raw := make([]byte, loc.length)
	if _, err := f.ReadAt(raw, loc.off); err != nil {
		s.stats.ReadFails++
		return nil, false, fmt.Errorf("persist: read: %w", err)
	}
	val, ok := decodeRecord(raw, key)
	if !ok {
		// The bytes under this index entry no longer checksum: never
		// serve them. Quarantine the evidence and forget the entry.
		delete(s.index, key)
		s.quarantineRecordLocked(path, loc)
		s.stats.Misses++
		return nil, false, nil
	}
	s.stats.Hits++
	return val, true, nil
}

// quarantineRecordLocked copies one rotten record's bytes into
// quarantine/. Best effort; called under mu.
func (s *Store) quarantineRecordLocked(path string, loc recLoc) {
	s.stats.Quarantined++
	if err := s.faults.Fire(PointQuarantine); err != nil {
		return
	}
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	raw := make([]byte, loc.length)
	if _, err := f.ReadAt(raw, loc.off); err != nil {
		return
	}
	qpath := filepath.Join(s.dir, quarantineDir,
		fmt.Sprintf("%s@%d.bin", filepath.Base(path), loc.off))
	_ = os.WriteFile(qpath, raw, 0o644)
}

// decodeRecord validates one framed record against its CRC and the
// expected key, returning the value on success.
func decodeRecord(raw []byte, wantKey string) ([]byte, bool) {
	if len(raw) < recHeaderLen+recTrailerLen || raw[0] != recMagic {
		return nil, false
	}
	keyLen := int(binary.LittleEndian.Uint16(raw[1:3]))
	valLen := int(binary.LittleEndian.Uint32(raw[3:7]))
	if len(raw) != recHeaderLen+keyLen+valLen+recTrailerLen {
		return nil, false
	}
	body := raw[:len(raw)-recTrailerLen]
	want := binary.LittleEndian.Uint32(raw[len(raw)-recTrailerLen:])
	if crc32.Checksum(body, castagnoli) != want {
		return nil, false
	}
	if string(raw[recHeaderLen:recHeaderLen+keyLen]) != wantKey {
		return nil, false
	}
	val := make([]byte, valLen)
	copy(val, raw[recHeaderLen+keyLen:recHeaderLen+keyLen+valLen])
	return val, true
}

// encodeRecord frames key/val into buf (reused across appends).
func encodeRecord(buf []byte, key string, val []byte) []byte {
	total := recHeaderLen + len(key) + len(val) + recTrailerLen
	if cap(buf) < total {
		buf = make([]byte, 0, total)
	}
	buf = buf[:0]
	buf = append(buf, recMagic)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
	buf = append(buf, key...)
	buf = append(buf, val...)
	crc := crc32.Checksum(buf, castagnoli)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// Put appends a record for key. The write is staged into one buffer
// and issued as a single Write; a short or failed write leaves a torn
// tail that the next Open truncates — it can corrupt this record, only
// this record, and only until recovery. Put never serves state: a
// failed append leaves the previous value (if any) live in the index.
func (s *Store) Put(key string, val []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("persist: key length %d out of range", len(key))
	}
	if len(val) > maxValLen {
		return fmt.Errorf("persist: value length %d over cap", len(val))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("persist: store is closed")
	}
	if err := s.repairTailLocked(); err != nil {
		s.stats.AppendFails++
		return err
	}
	s.encBuf = encodeRecord(s.encBuf, key, val)
	rec := s.encBuf
	off := s.activeSize
	if err := s.writeRecordLocked(rec); err != nil {
		s.stats.AppendFails++
		// Cut the partial record back off so the next append does not
		// land after garbage mid-segment; if the cut itself fails it is
		// retried before the next append.
		s.repairTo = off
		_ = s.repairTailLocked()
		return err
	}
	s.index[key] = recLoc{seg: 0, off: off, length: int64(len(rec))}
	s.stats.Appends++
	s.stats.Bytes += int64(len(rec))
	// Maintenance is best-effort: the record above is already durable
	// and indexed, so a failed seal or cap enforcement must not turn
	// this Put into an error (an error always means "not visible").
	// Both retry on the next append.
	if s.activeSize >= s.maxSeg {
		if err := s.rotateLocked(); err != nil {
			s.stats.MaintFails++
			return nil
		}
	}
	if err := s.enforceTotalLocked(); err != nil {
		s.stats.MaintFails++
	}
	return nil
}

// repairTailLocked truncates a torn tail left by a failed append, so
// appends never resume after garbage. No-op when the tail is clean.
func (s *Store) repairTailLocked() error {
	if s.repairTo < 0 {
		return nil
	}
	if err := s.active.Truncate(s.repairTo); err != nil {
		return fmt.Errorf("persist: tail repair: %w", err)
	}
	if _, err := s.active.Seek(s.repairTo, io.SeekStart); err != nil {
		return fmt.Errorf("persist: tail repair: %w", err)
	}
	s.activeSize = s.repairTo
	s.repairTo = -1
	return nil
}

// writeRecordLocked issues the staged record as one write, tracking
// the bytes that actually landed so a short write is recorded (and
// recovered) exactly like a crash would leave it.
func (s *Store) writeRecordLocked(rec []byte) error {
	keep, ferr := s.faults.FireWrite(PointAppendWrite, len(rec))
	if keep > 0 || ferr == nil {
		n, werr := s.active.Write(rec[:keep])
		s.activeSize += int64(n)
		if werr != nil && ferr == nil {
			ferr = werr
		}
	}
	if ferr != nil {
		return fmt.Errorf("persist: append: %w", ferr)
	}
	s.appendsOut++
	if s.sync > 0 && s.appendsOut >= s.sync {
		if err := s.syncActiveLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) syncActiveLocked() error {
	if err := s.faults.Fire(PointAppendSync); err != nil {
		return fmt.Errorf("persist: sync: %w", err)
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("persist: sync: %w", err)
	}
	s.appendsOut = 0
	return nil
}

// rotateLocked seals the active segment: sync, close, atomic rename to
// seg-<n>.llc, then a fresh active.llc. Index entries for the sealed
// bytes move from segment 0 to segment n.
func (s *Store) rotateLocked() error {
	if err := s.syncActiveLocked(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("persist: rotate: %w", err)
	}
	n := s.nextSeg
	if err := s.faults.Fire(PointRotate); err != nil {
		// Reopen active.llc for appending; the seal retries later.
		return s.reopenActiveLocked(fmt.Errorf("persist: rotate: %w", err))
	}
	if err := os.Rename(s.activePath(), s.segPath(n)); err != nil {
		return s.reopenActiveLocked(fmt.Errorf("persist: rotate: %w", err))
	}
	s.nextSeg++
	s.sealed[n] = s.activeSize
	for key, loc := range s.index {
		if loc.seg == 0 {
			loc.seg = n
			s.index[key] = loc
		}
	}
	f, err := os.OpenFile(s.activePath(), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: rotate: %w", err)
	}
	s.active = f
	s.activeSize = 0
	return nil
}

// reopenActiveLocked restores the append handle after a failed seal,
// preserving cause as the reported error.
func (s *Store) reopenActiveLocked(cause error) error {
	f, err := os.OpenFile(s.activePath(), os.O_WRONLY, 0o644)
	if err != nil {
		return errors.Join(cause, err)
	}
	if _, err := f.Seek(s.activeSize, io.SeekStart); err != nil {
		f.Close()
		return errors.Join(cause, err)
	}
	s.active = f
	return cause
}

// enforceTotalLocked drops whole oldest sealed segments while the
// store exceeds its byte cap. Dropped entries become misses.
func (s *Store) enforceTotalLocked() error {
	if s.maxTot < 0 {
		return nil
	}
	for s.stats.Bytes > s.maxTot && len(s.sealed) > 0 {
		oldest := uint64(0)
		for n := range s.sealed {
			if oldest == 0 || n < oldest {
				oldest = n
			}
		}
		if err := os.Remove(s.segPath(oldest)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("persist: drop segment: %w", err)
		}
		s.stats.Bytes -= s.sealed[oldest]
		delete(s.sealed, oldest)
		for key, loc := range s.index {
			if loc.seg == oldest {
				delete(s.index, key)
			}
		}
		s.stats.Dropped++
	}
	return nil
}

// Len returns the number of live (indexed) entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a consistent snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.Segments = len(s.sealed) + 1
	return st
}

// Sync forces the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("persist: store is closed")
	}
	return s.syncActiveLocked()
}

// Close syncs and closes the active segment. The store rejects all
// operations afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.syncActiveLocked()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// Dir returns the store directory (for /healthz reporting).
func (s *Store) Dir() string { return s.dir }
