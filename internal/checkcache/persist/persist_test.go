package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	if err := s.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k2", nil); err != nil { // empty value is legal
		t.Fatal(err)
	}
	v, ok, err := s.Get("k1")
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get(k1) = %q, %v, %v", v, ok, err)
	}
	v, ok, err = s.Get("k2")
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("Get(k2) = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := s.Get("missing"); ok {
		t.Fatal("Get(missing) hit")
	}
	st := s.Stats()
	if st.Entries != 2 || st.Appends != 2 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLaterPutWins(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	for i := 0; i < 5; i++ {
		if err := s.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := s.Get("k")
	if err != nil || !ok || string(v) != "v4" {
		t.Fatalf("Get = %q, %v, %v; want v4", v, ok, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (appends, one live key)", s.Len())
	}
}

func TestWarmRestartRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		k, v := fmt.Sprintf("key-%02d", i), fmt.Sprintf("val-%d", i*i)
		want[k] = v
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite a few so recovery must honor last-record-wins.
	for i := 0; i < 10; i++ {
		k, v := fmt.Sprintf("key-%02d", i), fmt.Sprintf("new-%d", i)
		want[k] = v
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Options{Dir: dir})
	if s2.Len() != len(want) {
		t.Fatalf("recovered %d entries, want %d", s2.Len(), len(want))
	}
	for k, v := range want {
		got, ok, err := s2.Get(k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v, %v; want %q", k, got, ok, err, v)
		}
	}
}

func TestRotationSealsSegmentsAndKeepsServing(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, MaxSegmentBytes: 256})
	val := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 40; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected several sealed segments, got %d", st.Segments)
	}
	// Entries sealed into segments must still serve.
	for i := 0; i < 40; i++ {
		if _, ok, err := s.Get(fmt.Sprintf("k%02d", i)); !ok || err != nil {
			t.Fatalf("Get(k%02d) after rotation = %v, %v", i, ok, err)
		}
	}
	// No half-sealed names: every seg-*.llc must parse cleanly.
	s.Close()
	s2 := mustOpen(t, Options{Dir: dir, MaxSegmentBytes: 256})
	if s2.Len() != 40 {
		t.Fatalf("recovered %d entries across segments, want 40", s2.Len())
	}
	if qs := quarantineFiles(t, dir); len(qs) != 0 {
		t.Fatalf("clean rotation quarantined %v", qs)
	}
}

func TestTotalByteCapDropsOldestSegment(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, MaxSegmentBytes: 256, MaxTotalBytes: 1024})
	val := bytes.Repeat([]byte("y"), 64)
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Dropped == 0 {
		t.Fatalf("no segments dropped under a 1 KiB cap: %+v", st)
	}
	if st.Bytes > 1024+256 { // cap plus at most one over-full active segment
		t.Fatalf("store holds %d bytes, cap 1024", st.Bytes)
	}
	// Oldest keys are gone (miss), newest still serve.
	if _, ok, _ := s.Get("k000"); ok {
		t.Fatal("k000 survived the byte cap")
	}
	if _, ok, err := s.Get("k099"); !ok || err != nil {
		t.Fatalf("k099 lost: %v %v", ok, err)
	}
}

// quarantineFiles lists the quarantine directory.
func quarantineFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestTornTailIsTruncatedNotServed(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	if err := s.Put("good", []byte("value")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Append half a record by hand: the crash shape.
	torn := encodeRecord(nil, "torn-key", []byte("torn-value"))
	f, err := os.OpenFile(filepath.Join(dir, activeName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, Options{Dir: dir})
	if _, ok, _ := s2.Get("torn-key"); ok {
		t.Fatal("half-written record served")
	}
	if v, ok, err := s2.Get("good"); !ok || err != nil || string(v) != "value" {
		t.Fatalf("fully-flushed record lost: %q %v %v", v, ok, err)
	}
	st := s2.Stats()
	if st.TornTruncated != 1 {
		t.Fatalf("torn tail not counted: %+v", st)
	}
	if qs := quarantineFiles(t, dir); len(qs) != 0 {
		t.Fatalf("expected crash residue quarantined as corruption: %v", qs)
	}
	// The truncated store must append cleanly again.
	if err := s2.Put("after", []byte("recovery")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := mustOpen(t, Options{Dir: dir})
	if v, ok, _ := s3.Get("after"); !ok || string(v) != "recovery" {
		t.Fatal("append after torn-tail recovery lost")
	}
}

func TestCorruptRecordIsQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	if err := s.Put("a", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one payload byte of the first record.
	path := filepath.Join(dir, activeName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[recHeaderLen+1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Options{Dir: dir})
	if _, ok, _ := s2.Get("a"); ok {
		t.Fatal("corrupt record served")
	}
	// b sits after the corruption; with untrustworthy frame boundaries
	// it is skipped too — lost, never wrong.
	if v, ok, _ := s2.Get("b"); ok && string(v) != "bbbb" {
		t.Fatalf("record after corruption served wrong bytes: %q", v)
	}
	st := s2.Stats()
	if st.Quarantined == 0 {
		t.Fatalf("corruption not quarantined: %+v", st)
	}
	if qs := quarantineFiles(t, dir); len(qs) == 0 {
		t.Fatal("no quarantine file written")
	}
}

func TestReadTimeRotIsAMissNotAnAnswer(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	if err := s.Put("k", []byte("pristine")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Rot the bytes *after* recovery indexed them, through a second
	// handle — the read path re-verifies the CRC on every Get.
	path := filepath.Join(dir, activeName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-recTrailerLen-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("k")
	if err != nil {
		t.Fatalf("rot surfaced as error, want miss: %v", err)
	}
	if ok {
		t.Fatalf("rotted record served: %q", v)
	}
	st := s.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("rot not quarantined: %+v", st)
	}
	// The index entry is gone: the next Get is a plain miss.
	if _, ok, _ := s.Get("k"); ok {
		t.Fatal("dropped entry resurrected")
	}
}

func TestOpenRejectsMissingDirOption(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open with no Dir succeeded")
	}
}

func TestClosedStoreRejectsOperations(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", nil); err == nil {
		t.Fatal("Put after Close succeeded")
	}
	if _, _, err := s.Get("k"); err == nil {
		t.Fatal("Get after Close succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestKeyAndValueBounds(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	if err := s.Put("", nil); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put(string(bytes.Repeat([]byte("k"), maxKeyLen+1)), nil); err == nil {
		t.Fatal("oversized key accepted")
	}
}
