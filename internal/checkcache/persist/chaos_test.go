// Chaos suite: kill-and-reopen crash simulation at every write offset,
// bit-flip corruption at every byte, and a fault matrix over every
// named faultinject point in the store. The recovery invariants under
// test (ISSUE 6 acceptance criteria):
//
//  1. recovery never panics and never serves a record that fails its
//     checksum — a Get answers the exact stored bytes or a miss;
//  2. every record fully flushed before the crash is retained;
//  3. the store keeps working (appends, reopens) after recovery.
//
// When LLHSC_CHAOS_ARTIFACTS is set (the CI chaos job), quarantined
// segments produced by these tests are copied there for upload.
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"llhsc/internal/faultinject"
)

// seedStore writes n records and returns the expected live contents.
func seedStore(t *testing.T, dir string, n int, syncEvery int) map[string]string {
	t.Helper()
	s := mustOpen(t, Options{Dir: dir, SyncEvery: syncEvery})
	want := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("sha-%04d", i)
		v := fmt.Sprintf("violations-%d", i*7)
		want[k] = v
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

// exportQuarantine copies quarantine files into LLHSC_CHAOS_ARTIFACTS
// (when set) so the CI chaos job can upload them.
func exportQuarantine(t *testing.T, dir string) {
	t.Helper()
	dst := os.Getenv("LLHSC_CHAOS_ARTIFACTS")
	if dst == "" {
		return
	}
	ents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil {
		return
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return
	}
	for _, e := range ents {
		raw, err := os.ReadFile(filepath.Join(dir, quarantineDir, e.Name()))
		if err != nil {
			continue
		}
		out := fmt.Sprintf("%s-%s", t.Name(), e.Name())
		out = filepath.Join(dst, filepath.Base(out))
		_ = os.WriteFile(out, raw, 0o644)
	}
}

// verifyNeverWrong opens dir and checks invariant 1: every Get is the
// exact seeded value or a miss. It returns the set of retained keys.
func verifyNeverWrong(t *testing.T, dir string, want map[string]string) map[string]bool {
	t.Helper()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer s.Close()
	retained := make(map[string]bool)
	for k, v := range want {
		got, ok, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get(%s) after crash: %v", k, err)
		}
		if !ok {
			continue
		}
		if string(got) != v {
			t.Fatalf("Get(%s) after crash = %q, want %q — served a wrong record", k, got, v)
		}
		retained[k] = true
	}
	// Invariant 3: the recovered store accepts new work.
	if err := s.Put("post-crash", []byte("append")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	return retained
}

// TestCrashAtEveryWriteOffset simulates a kill at every byte offset of
// the active segment: the crashed file is the full file cut at offset
// k, exactly what a die-mid-write leaves when the filesystem persisted
// k bytes. Every prefix must recover with no panic, no wrong answer,
// and every record whose bytes lie entirely within the prefix intact.
func TestCrashAtEveryWriteOffset(t *testing.T) {
	seedDir := t.TempDir()
	const records = 8
	want := seedStore(t, seedDir, records, 1)
	full, err := os.ReadFile(filepath.Join(seedDir, activeName))
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries, so we know which records a prefix fully holds.
	bounds := []int{0}
	for off := 0; off < len(full); {
		keyLen := int(uint16(full[off+1]) | uint16(full[off+2])<<8)
		valLen := int(uint32(full[off+3]) | uint32(full[off+4])<<8 |
			uint32(full[off+5])<<16 | uint32(full[off+6])<<24)
		off += recHeaderLen + keyLen + valLen + recTrailerLen
		bounds = append(bounds, off)
	}
	if bounds[len(bounds)-1] != len(full) {
		t.Fatalf("frame walk ended at %d, file is %d bytes", bounds[len(bounds)-1], len(full))
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, activeName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		retained := verifyNeverWrong(t, dir, want)
		// Invariant 2: every record that fully fits in the prefix is
		// retained (record i spans bounds[i]..bounds[i+1]).
		wantRetained := 0
		for i := 0; i+1 < len(bounds); i++ {
			if bounds[i+1] <= cut {
				wantRetained++
			}
		}
		if len(retained) != wantRetained {
			t.Fatalf("cut at %d: retained %d records, want %d", cut, len(retained), wantRetained)
		}
	}
}

// TestCrashDuringInjectedShortWrite drives the same invariant through
// the production write path: a short write injected at every keep
// count, the process "dies" (the store is abandoned without Close),
// and a fresh Open must recover.
func TestCrashDuringInjectedShortWrite(t *testing.T) {
	probe := encodeRecord(nil, "victim-key", []byte("victim-value"))
	for keep := 0; keep < len(probe); keep++ {
		dir := t.TempDir()
		want := seedStore(t, dir, 4, 1)

		faults := faultinject.NewSet(int64(keep))
		faults.ArmShortWrite(PointAppendWrite, faultinject.OnCall(1), keep)
		s, err := Open(Options{Dir: dir, SyncEvery: 1, Faults: faults})
		if err != nil {
			t.Fatalf("keep=%d: reopen: %v", keep, err)
		}
		if err := s.Put("victim-key", []byte("victim-value")); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("keep=%d: Put = %v, want injected error", keep, err)
		}
		// Simulated kill: no Close, no repair — the torn bytes stay.
		retained := verifyNeverWrong(t, dir, want)
		if len(retained) != 4 {
			t.Fatalf("keep=%d: lost pre-crash records, retained %d/4", keep, len(retained))
		}
		if _, ok := retained["victim-key"]; ok {
			t.Fatalf("keep=%d: torn record served", keep)
		}
	}
}

// TestBitFlipAtEveryByte flips each byte of a small store in turn and
// requires recovery to quarantine, not serve, the damage.
func TestBitFlipAtEveryByte(t *testing.T) {
	seedDir := t.TempDir()
	want := seedStore(t, seedDir, 3, 1)
	full, err := os.ReadFile(filepath.Join(seedDir, activeName))
	if err != nil {
		t.Fatal(err)
	}
	lastQuarantined := ""
	for pos := 0; pos < len(full); pos++ {
		dir := t.TempDir()
		mutated := append([]byte(nil), full...)
		mutated[pos] ^= 0x40
		if err := os.WriteFile(filepath.Join(dir, activeName), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		verifyNeverWrong(t, dir, want)
		if qs, _ := os.ReadDir(filepath.Join(dir, quarantineDir)); len(qs) > 0 {
			lastQuarantined = dir
		}
	}
	if lastQuarantined == "" {
		t.Fatal("no byte flip was ever quarantined — corruption detection looks dead")
	}
	exportQuarantine(t, lastQuarantined)
}

// TestFaultMatrix exercises every named faultinject point in the
// persist tier and asserts each failure path degrades cleanly: the
// operation errors (or proceeds best-effort for quarantine), nothing
// panics, and the store works again once the fault clears.
func TestFaultMatrix(t *testing.T) {
	covered := make(map[string]bool)
	cases := []struct {
		point string
		run   func(t *testing.T)
	}{
		{PointOpen, func(t *testing.T) {
			faults := faultinject.NewSet(1)
			faults.ArmError(PointOpen, faultinject.Always(), nil)
			if _, err := Open(Options{Dir: t.TempDir(), Faults: faults}); !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("Open under open fault = %v", err)
			}
		}},
		{PointScan, func(t *testing.T) {
			dir := t.TempDir()
			seedStore(t, dir, 2, 1)
			faults := faultinject.NewSet(1)
			faults.ArmError(PointScan, faultinject.Always(), nil)
			if _, err := Open(Options{Dir: dir, Faults: faults}); !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("Open under scan fault = %v", err)
			}
		}},
		{PointAppendWrite, func(t *testing.T) {
			faults := faultinject.NewSet(1)
			s := mustOpen(t, Options{Dir: t.TempDir(), Faults: faults})
			if err := s.Put("pre", []byte("ok")); err != nil {
				t.Fatal(err)
			}
			faults.ArmError(PointAppendWrite, faultinject.Always(), nil)
			if err := s.Put("k", []byte("v")); !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("Put under write fault = %v", err)
			}
			if st := s.Stats(); st.AppendFails == 0 {
				t.Fatalf("append failure not counted: %+v", st)
			}
			// The failed key must not be indexed; the old one survives.
			if _, ok, _ := s.Get("k"); ok {
				t.Fatal("failed Put became visible")
			}
			if _, ok, _ := s.Get("pre"); !ok {
				t.Fatal("write fault destroyed an unrelated entry")
			}
			faults.Disarm(PointAppendWrite)
			if err := s.Put("k", []byte("v")); err != nil {
				t.Fatalf("Put after fault cleared: %v", err)
			}
		}},
		{PointAppendSync, func(t *testing.T) {
			faults := faultinject.NewSet(1)
			s := mustOpen(t, Options{Dir: t.TempDir(), SyncEvery: 1, Faults: faults})
			faults.ArmError(PointAppendSync, faultinject.Always(), nil)
			if err := s.Put("k", []byte("v")); !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("Put under sync fault = %v", err)
			}
			faults.Disarm(PointAppendSync)
			if err := s.Put("k", []byte("v")); err != nil {
				t.Fatalf("Put after fault cleared: %v", err)
			}
		}},
		{PointRotate, func(t *testing.T) {
			faults := faultinject.NewSet(1)
			s := mustOpen(t, Options{Dir: t.TempDir(), MaxSegmentBytes: 1, Faults: faults})
			faults.ArmError(PointRotate, faultinject.Always(), nil)
			// Crossing the threshold fails the seal, but the append
			// itself is durable, so Put succeeds and only counts a
			// maintenance failure.
			if err := s.Put("k1", []byte("v1")); err != nil {
				t.Fatalf("Put under rotate fault = %v", err)
			}
			if st := s.Stats(); st.MaintFails == 0 {
				t.Fatalf("failed seal not counted: %+v", st)
			}
			if v, ok, gerr := s.Get("k1"); !ok || gerr != nil || string(v) != "v1" {
				t.Fatalf("record lost to failed rotation: %q %v %v", v, ok, gerr)
			}
			faults.Disarm(PointRotate)
			if err := s.Put("k2", []byte("v2")); err != nil {
				t.Fatalf("Put after fault cleared: %v", err)
			}
			if st := s.Stats(); st.Segments < 2 {
				t.Fatalf("rotation never recovered: %+v", st)
			}
		}},
		{PointRead, func(t *testing.T) {
			faults := faultinject.NewSet(1)
			s := mustOpen(t, Options{Dir: t.TempDir(), Faults: faults})
			if err := s.Put("k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			faults.ArmError(PointRead, faultinject.Always(), nil)
			if _, _, err := s.Get("k"); !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("Get under read fault = %v", err)
			}
			if st := s.Stats(); st.ReadFails == 0 {
				t.Fatalf("read failure not counted: %+v", st)
			}
			faults.Disarm(PointRead)
			if v, ok, err := s.Get("k"); !ok || err != nil || string(v) != "v" {
				t.Fatalf("Get after fault cleared = %q %v %v", v, ok, err)
			}
		}},
		{PointQuarantine, func(t *testing.T) {
			dir := t.TempDir()
			seedStore(t, dir, 2, 1)
			path := filepath.Join(dir, activeName)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[recHeaderLen] ^= 0xFF
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			faults := faultinject.NewSet(1)
			faults.ArmError(PointQuarantine, faultinject.Always(), nil)
			// Quarantine is evidence preservation, not correctness:
			// recovery proceeds even when it cannot write the file.
			s, err := Open(Options{Dir: dir, Faults: faults})
			if err != nil {
				t.Fatalf("Open under quarantine fault: %v", err)
			}
			defer s.Close()
			if st := s.Stats(); st.Quarantined == 0 {
				t.Fatalf("corruption not counted: %+v", st)
			}
			if qs, _ := os.ReadDir(filepath.Join(dir, quarantineDir)); len(qs) != 0 {
				t.Fatal("quarantine file written despite injected failure")
			}
		}},
	}

	for _, tc := range cases {
		covered[tc.point] = true
		t.Run(tc.point, tc.run)
	}
	// Latency applies to any point; prove it via the write path without
	// real sleeping.
	t.Run("latency", func(t *testing.T) {
		faults := faultinject.NewSet(1)
		var slept time.Duration
		faults.SetSleep(func(d time.Duration) { slept += d })
		faults.ArmLatency(PointAppendWrite, faultinject.Always(), 50*time.Millisecond)
		s := mustOpen(t, Options{Dir: t.TempDir(), Faults: faults})
		if err := s.Put("k", []byte("v")); err != nil {
			t.Fatalf("latency fault failed the write: %v", err)
		}
		if slept == 0 {
			t.Fatal("latency fault never slept")
		}
	})

	// The matrix must cover every named point the store consults, so a
	// new point cannot ship untested.
	for _, p := range Points {
		if !covered[p] {
			t.Errorf("fault matrix does not cover %s", p)
		}
	}
}

// TestProbabilisticCrashStorm drives a seeded random mix of write,
// sync and rotate faults through a workload and then proves recovery;
// deterministic per seed, so a failure replays exactly.
func TestProbabilisticCrashStorm(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		dir := t.TempDir()
		faults := faultinject.NewSet(seed)
		faults.ArmShortWrite(PointAppendWrite, faultinject.Prob(0.2), 3)
		faults.ArmError(PointAppendSync, faultinject.Prob(0.1), nil)
		faults.ArmError(PointRotate, faultinject.Prob(0.3), nil)
		s, err := Open(Options{Dir: dir, MaxSegmentBytes: 512, SyncEvery: 1, Faults: faults})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		confirmed := map[string]string{} // Puts that reported success
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("key-%03d", i%40)
			v := fmt.Sprintf("val-%d-%d", seed, i)
			if err := s.Put(k, []byte(v)); err == nil {
				confirmed[k] = v
			}
		}
		// Runtime reads must already be never-wrong.
		for k, v := range confirmed {
			got, ok, err := s.Get(k)
			if err != nil || !ok || string(got) != v {
				t.Fatalf("seed %d: live Get(%s) = %q %v %v, want %q", seed, k, got, ok, err, v)
			}
		}
		// Kill (no Close) and recover with faults cleared.
		retained := verifyNeverWrong(t, dir, confirmed)
		// Every confirmed Put was written whole and synced
		// (SyncEvery=1); an acknowledged write must survive the crash.
		if len(retained) != len(confirmed) {
			t.Fatalf("seed %d: retained %d of %d acknowledged writes",
				seed, len(retained), len(confirmed))
		}
		exportQuarantine(t, dir)
	}
}
