package checkcache

import (
	"testing"
	"time"
)

// testBreaker returns a breaker with a frozen, hand-advanced clock and
// zero jitter, so probe deadlines are exact.
func testBreaker(threshold int, base, max time.Duration) (*Breaker, *time.Time) {
	b := NewBreaker(threshold, base, max)
	now := time.Unix(1000, 0)
	b.Now = func() time.Time { return now }
	b.Jitter = func() float64 { return 0 } // probeAt = now + backoff/2
	return b, &now
}

func TestNilBreakerAlwaysAllows(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker denied")
	}
	b.Success() // must not panic
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("nil breaker not closed")
	}
	if st := b.Stats(); st.State != "closed" {
		t.Fatalf("nil stats = %+v", st)
	}
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := testBreaker(3, time.Second, time.Minute)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("denied before trip at failure %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("tripped one failure early")
	}
	b.Failure() // third consecutive failure
	if b.State() != BreakerOpen {
		t.Fatal("did not trip at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed immediately")
	}
	if st := b.Stats(); st.Trips != 1 || st.NextProbeMs != 500 {
		t.Fatalf("stats after trip = %+v", st)
	}
}

func TestSuccessResetsFailureStreak(t *testing.T) {
	b, _ := testBreaker(3, time.Second, time.Minute)
	b.Failure()
	b.Failure()
	b.Success() // streak broken
	b.Failure()
	b.Failure()
	if b.State() != BreakerOpen {
		// still closed: the two fresh failures are under threshold
	} else {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestProbeAfterBackoffAndReclose(t *testing.T) {
	b, now := testBreaker(1, time.Second, time.Minute)
	b.Failure() // trip; probeAt = now + 500ms (zero jitter)
	if b.Allow() {
		t.Fatal("allowed before probe deadline")
	}
	*now = now.Add(499 * time.Millisecond)
	if b.Allow() {
		t.Fatal("allowed 1ms early")
	}
	*now = now.Add(time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe denied after deadline")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admit = %v", b.State())
	}
	// Exactly one probe: concurrent callers are denied meanwhile.
	if b.Allow() {
		t.Fatal("second probe admitted while first outstanding")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("probe success did not re-close")
	}
	if st := b.Stats(); st.Probes != 1 {
		t.Fatalf("probes = %d, want 1", st.Probes)
	}
}

func TestFailedProbeDoublesBackoffUpToMax(t *testing.T) {
	b, now := testBreaker(1, time.Second, 3*time.Second)
	b.Failure() // open, backoff 1s → probe in 500ms
	waits := []time.Duration{
		time.Second,             // probe fails → backoff 2s → wait 1s
		1500 * time.Millisecond, // probe fails → backoff 3s (capped) → wait 1.5s
		1500 * time.Millisecond, // stays capped
	}
	for i, want := range waits {
		// advance to the current probe deadline
		for !b.Allow() {
			*now = now.Add(100 * time.Millisecond)
		}
		b.Failure() // probe fails
		if b.State() != BreakerOpen {
			t.Fatalf("round %d: failed probe left state %v", i, b.State())
		}
		st := b.Stats()
		if got := time.Duration(st.NextProbeMs) * time.Millisecond; got != want {
			t.Fatalf("round %d: next probe in %v, want %v", i, got, want)
		}
	}
}

func TestJitterSpreadsProbeDeadline(t *testing.T) {
	b, _ := testBreaker(1, 2*time.Second, time.Minute)
	b.Jitter = func() float64 { return 0.5 }
	b.Failure()
	// backoff 2s: deadline = 1s + 0.5*1s = 1.5s
	if st := b.Stats(); st.NextProbeMs != 1500 {
		t.Fatalf("NextProbeMs = %d, want 1500", st.NextProbeMs)
	}
}

func TestFailureWhileOpenDoesNotExtendBackoff(t *testing.T) {
	b, _ := testBreaker(1, time.Second, time.Minute)
	b.Failure()
	before := b.Stats()
	// Stragglers admitted before the trip report their failures late.
	b.Failure()
	b.Failure()
	after := b.Stats()
	if after.NextProbeMs != before.NextProbeMs || after.Trips != before.Trips {
		t.Fatalf("late failures moved the breaker: %+v -> %+v", before, after)
	}
}
