package checkcache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"llhsc/internal/checkcache/persist"
	"llhsc/internal/constraints"
	"llhsc/internal/dts"
	"llhsc/internal/faultinject"
)

func sampleViolations() []constraints.Violation {
	return []constraints.Violation{
		{
			Path:     "/soc/uart@fe001000",
			Property: "reg",
			Rule:     "unit-address-matches-reg",
			Message:  "unit address fe001000 does not match first reg entry",
			Origin:   dts.Origin{File: "board.dts", Line: 42, Delta: "vm1"},
		},
		{
			Path:    "/memory@0",
			Rule:    "memreserve-overlap",
			Message: "reservation overlaps /memory@0",
		},
	}
}

func violationsEqual(a, b []constraints.Violation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTierWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	want := sampleViolations()
	key := Key("tree", "schema", "knobs")

	store, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c := New(8)
	c.AttachPersist(store, nil)
	v, hit, err := c.Do(context.Background(), key, func() ([]constraints.Violation, error) {
		return sampleViolations(), nil
	})
	if err != nil || hit || !violationsEqual(v, want) {
		t.Fatalf("cold Do = %v, hit=%v, err=%v", v, hit, err)
	}
	if ts := c.Tier(); ts == nil || ts.DiskWrites != 1 || ts.DiskMisses != 1 {
		t.Fatalf("tier stats after write-through = %+v", ts)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh process state, same directory. The memory LRU is
	// empty but the disk remembers — and fn must not run.
	store2, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	c2 := New(8)
	c2.AttachPersist(store2, nil)
	computed := false
	v, hit, err = c2.Do(context.Background(), key, func() ([]constraints.Violation, error) {
		computed = true
		return nil, errors.New("should not compute")
	})
	if err != nil || computed {
		t.Fatalf("warm Do recomputed: err=%v computed=%v", err, computed)
	}
	if !hit || !violationsEqual(v, want) {
		t.Fatalf("warm Do = %+v, hit=%v; want disk hit with original violations", v, hit)
	}
	if ts := c2.Tier(); ts.DiskHits != 1 {
		t.Fatalf("disk hit not counted: %+v", ts)
	}
	// Second lookup is now a memory hit: the disk value was promoted.
	v, hit, _ = c2.Do(context.Background(), key, func() ([]constraints.Violation, error) {
		t.Fatal("memory-promoted key recomputed")
		return nil, nil
	})
	if !hit || !violationsEqual(v, want) {
		t.Fatal("promoted entry not served from memory")
	}
	if ts := c2.Tier(); ts.DiskHits != 1 {
		t.Fatalf("memory hit touched the disk: %+v", ts)
	}
}

func TestTierPreservesNilVsEmptyViolations(t *testing.T) {
	dir := t.TempDir()
	store, _ := persist.Open(persist.Options{Dir: dir})
	c := New(8)
	c.AttachPersist(store, nil)
	kNil, kEmpty := Key("clean"), Key("empty")
	c.Do(context.Background(), kNil, func() ([]constraints.Violation, error) { return nil, nil })
	c.Do(context.Background(), kEmpty, func() ([]constraints.Violation, error) {
		return []constraints.Violation{}, nil
	})
	store.Close()

	store2, _ := persist.Open(persist.Options{Dir: dir})
	defer store2.Close()
	c2 := New(8)
	c2.AttachPersist(store2, nil)
	v, hit, _ := c2.Do(context.Background(), kNil, func() ([]constraints.Violation, error) {
		t.Fatal("recomputed")
		return nil, nil
	})
	if !hit || v != nil {
		t.Fatalf("nil violations came back as %#v (hit=%v)", v, hit)
	}
	v, hit, _ = c2.Do(context.Background(), kEmpty, func() ([]constraints.Violation, error) {
		t.Fatal("recomputed")
		return nil, nil
	})
	if !hit || v == nil || len(v) != 0 {
		t.Fatalf("empty violations came back as %#v (hit=%v)", v, hit)
	}
}

func TestTierErrorNeverFailsRequest(t *testing.T) {
	// Every disk operation fails; the cache must still answer, from
	// compute, with no error surfaced.
	faults := faultinject.NewSet(1)
	faults.ArmError(persist.PointRead, faultinject.Always(), nil)
	faults.ArmError(persist.PointAppendWrite, faultinject.Always(), nil)
	store, err := persist.Open(persist.Options{Dir: t.TempDir(), Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c := New(8)
	c.AttachPersist(store, nil) // nil breaker: every op reaches the sick disk
	want := sampleViolations()
	v, hit, err := c.Do(context.Background(), Key("k"), func() ([]constraints.Violation, error) {
		return sampleViolations(), nil
	})
	if err != nil || hit || !violationsEqual(v, want) {
		t.Fatalf("Do over a failing disk = %v, hit=%v, err=%v", v, hit, err)
	}
	if ts := c.Tier(); ts.DiskErrors == 0 {
		t.Fatalf("disk failures not counted: %+v", ts)
	}
}

func TestTierBreakerTripsToMemoryOnlyAndRecloses(t *testing.T) {
	faults := faultinject.NewSet(1)
	store, err := persist.Open(persist.Options{Dir: t.TempDir(), Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Pre-seed every key so reads reach the disk (an index miss never
	// touches the fault point), then make the whole disk sick.
	raw, _ := encodeViolations(sampleViolations())
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		if err := store.Put(Key(k), raw); err != nil {
			t.Fatal(err)
		}
	}
	faults.ArmError(persist.PointRead, faultinject.Always(), nil)
	faults.ArmError(persist.PointAppendWrite, faultinject.Always(), nil)

	br := NewBreaker(2, time.Second, time.Minute)
	now := time.Unix(5000, 0)
	br.Now = func() time.Time { return now }
	br.Jitter = func() float64 { return 0 }

	c := New(8)
	c.AttachPersist(store, br)
	do := func(key string) {
		t.Helper()
		v, _, err := c.Do(context.Background(), Key(key), func() ([]constraints.Violation, error) {
			return sampleViolations(), nil
		})
		if err != nil || !violationsEqual(v, sampleViolations()) {
			t.Fatalf("Do(%s) = %v, %v", key, v, err)
		}
	}

	do("a") // read fails (1), write-through fails (2) -> trips
	if br.State() != BreakerOpen {
		t.Fatalf("breaker %v after 2 consecutive disk failures", br.State())
	}
	callsAtTrip := faults.Calls(persist.PointRead)
	// Memory-only mode: requests keep succeeding and the disk is never
	// touched while the breaker is open.
	do("b")
	do("c")
	if got := faults.Calls(persist.PointRead); got != callsAtTrip {
		t.Fatalf("open breaker let %d reads through", got-callsAtTrip)
	}
	if c.Tier().DiskErrors != 2 {
		t.Fatalf("tier stats after trip = %+v", c.Tier())
	}

	// Faults clear; after the backoff the next operation probes and the
	// circuit re-closes. (Disarm drops the points and their counters, so
	// from here disk traffic is observed through store hit stats.)
	faults.Disarm(persist.PointRead)
	faults.Disarm(persist.PointAppendWrite)
	now = now.Add(time.Second)
	do("e") // probe: disk read succeeds (pre-seeded hit), breaker closes
	if br.State() != BreakerClosed {
		t.Fatalf("breaker %v after successful probe", br.State())
	}
	if c.Tier().DiskHits != 1 {
		t.Fatalf("probe did not reach the disk: %+v", c.Tier())
	}
	do("f")
	if c.Tier().DiskHits != 2 {
		t.Fatalf("re-closed breaker still shedding reads: %+v", c.Tier())
	}
}

func TestTierUndecodableValueFallsBackToCompute(t *testing.T) {
	dir := t.TempDir()
	store, _ := persist.Open(persist.Options{Dir: dir})
	defer store.Close()
	key := Key("poisoned")
	// A valid, checksummed frame whose payload is not a violation list
	// (e.g. written by a future format version).
	if err := store.Put(key, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	c := New(8)
	c.AttachPersist(store, NewBreaker(1, time.Second, time.Minute))
	want := sampleViolations()
	v, hit, err := c.Do(context.Background(), key, func() ([]constraints.Violation, error) {
		return sampleViolations(), nil
	})
	if err != nil || hit || !violationsEqual(v, want) {
		t.Fatalf("Do over undecodable value = %v, hit=%v, err=%v", v, hit, err)
	}
	c2 := c.Tier()
	if c2.DiskErrors != 1 {
		t.Fatalf("decode failure not counted: %+v", c2)
	}
	// Decode failures are a format problem, not disk sickness: even a
	// hair-trigger breaker stays closed.
	if c.breaker.State() != BreakerClosed {
		t.Fatal("decode failure tripped the breaker")
	}
}

func TestTierSingleFlightSharesOneDiskRead(t *testing.T) {
	dir := t.TempDir()
	store, _ := persist.Open(persist.Options{Dir: dir})
	key := Key("shared")
	seed := New(8)
	seed.AttachPersist(store, nil)
	seed.Do(context.Background(), key, func() ([]constraints.Violation, error) {
		return sampleViolations(), nil
	})
	store.Close()

	store2, _ := persist.Open(persist.Options{Dir: dir})
	defer store2.Close()
	c := New(8)
	c.AttachPersist(store2, nil)
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), key, func() ([]constraints.Violation, error) {
				return sampleViolations(), nil
			})
			if err != nil || !violationsEqual(v, sampleViolations()) {
				t.Errorf("concurrent Do = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if ts := c.Tier(); ts.DiskHits < 1 || ts.Store.Hits > uint64(n/2) {
		// The flock of misses should coalesce into very few disk reads
		// (typically exactly one; scheduling may let a couple through
		// after the first flight resolves and before promotion is seen).
		t.Fatalf("single flight leaked disk reads: %+v", ts)
	}
}

// Satellite regression: a waiter whose context dies while a slow
// leader computes must return promptly — not block until the leader
// finishes.
func TestDoWaiterReturnsPromptlyOnCancel(t *testing.T) {
	c := New(8)
	key := Key("slow")
	leaderStarted := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), key, func() ([]constraints.Violation, error) {
			close(leaderStarted)
			<-release // leader stays busy until the test is done asserting
			return nil, nil
		})
	}()
	<-leaderStarted

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, key, func() ([]constraints.Violation, error) {
			t.Error("waiter became a second leader")
			return nil, nil
		})
		waiterDone <- err
	}()
	// Give the waiter time to join the flight, then cancel it.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter still blocked on the leader")
	}
	close(release)

	// A pre-cancelled caller never joins (or leads) at all.
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, _, err := c.Do(dead, Key("other"), func() ([]constraints.Violation, error) {
		t.Error("pre-cancelled caller computed")
		return nil, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Do returned %v", err)
	}
}

// Satellite regression: a capacity-1 cache hammered on competing keys
// races insertions against evictions against in-flight Do calls; under
// -race this flushes out lock-ordering and shared-slice bugs.
func TestEvictionVsDoRace(t *testing.T) {
	c := New(1)
	keys := []string{Key("a"), Key("b"), Key("c")}
	vals := map[string][]constraints.Violation{
		keys[0]: sampleViolations()[:1],
		keys[1]: sampleViolations(),
		keys[2]: nil,
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keys[(w+i)%len(keys)]
				v, _, err := c.Do(context.Background(), k, func() ([]constraints.Violation, error) {
					return copyViolations(vals[k]), nil
				})
				if err != nil {
					t.Errorf("Do(%s) err: %v", k, err)
					return
				}
				if !violationsEqual(v, vals[k]) {
					t.Errorf("Do(%s) returned another key's violations: %v", k, v)
					return
				}
				// Mutating the returned slice must never corrupt the
				// cached copy other goroutines receive.
				if len(v) > 0 {
					v[0].Message = "scribbled"
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("capacity-1 cache holds %d entries", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("competing keys never evicted each other")
	}
}
