package checkcache

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"llhsc/internal/constraints"
)

func noop() ([]constraints.Violation, error) { return nil, nil }

// TestHitRateDerivation: hit_rate is Hits / (Hits + Misses), and 0 —
// not NaN — before the first lookup.
func TestHitRateDerivation(t *testing.T) {
	c := New(8)
	if st := c.Stats(); st.HitRate != 0 {
		t.Fatalf("fresh cache HitRate = %v, want 0", st.HitRate)
	}
	c.Do(context.Background(), "a", noop) // miss
	if st := c.Stats(); st.HitRate != 0 {
		t.Fatalf("after one miss HitRate = %v, want 0", st.HitRate)
	}
	c.Do(context.Background(), "a", noop) // hit
	if st := c.Stats(); st.HitRate != 0.5 {
		t.Fatalf("after 1 hit / 1 miss HitRate = %v, want 0.5", st.HitRate)
	}
	c.Do(context.Background(), "a", noop)
	c.Do(context.Background(), "a", noop) // 3 hits / 1 miss
	if st := c.Stats(); st.HitRate != 0.75 {
		t.Fatalf("after 3 hits / 1 miss HitRate = %v, want 0.75", st.HitRate)
	}
}

// TestStatsSnapshotConsistent hammers the cache from many goroutines
// while sampling Stats: every snapshot's derived HitRate must match its
// own counters exactly, proving all fields come from one locked read
// (a torn read would mix counters from different instants). Run under
// -race this also exercises the locking itself.
func TestStatsSnapshotConsistent(t *testing.T) {
	c := New(16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Do(context.Background(), fmt.Sprintf("k%d", (g*7+i)%24), noop)
			}
		}(g)
	}
	for i := 0; i < 500; i++ {
		st := c.Stats()
		total := st.Hits + st.Misses
		if total == 0 {
			if st.HitRate != 0 {
				t.Fatalf("HitRate = %v with no lookups", st.HitRate)
			}
			continue
		}
		if want := float64(st.Hits) / float64(total); st.HitRate != want {
			t.Fatalf("torn snapshot: HitRate = %v, counters say %v (%+v)", st.HitRate, want, st)
		}
	}
	close(stop)
	wg.Wait()
}
