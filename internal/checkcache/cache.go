// Package checkcache provides a content-addressed cache for per-tree
// check results. The llhsc workflow checks one tree per VM plus the
// platform union, and trees frequently coincide: the platform product
// of a single-VM line equals the VM product, sibling VMs that select
// the same features derive identical DTS, and a cloud deployment sees
// the same request body many times over. Keying the violation list by
// a hash of the canonical tree text (plus everything else that can
// change the verdict or its reporting — the tree's origin/blame
// metadata, schema set, solver budget knobs, checker configuration)
// turns each repeat into a map lookup instead of a round of SMT
// solving.
//
// The cache is a bounded LRU with hit/miss/eviction counters and
// single-flight de-duplication: when several goroutines ask for the
// same missing key concurrently (the parallel pipeline's platform vs.
// VM trees, or identical simultaneous /check requests), exactly one
// computes and the rest wait for its result.
package checkcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"time"

	"llhsc/internal/checkcache/persist"
	"llhsc/internal/constraints"
	"llhsc/internal/obs"
)

// Key derives a cache key from the parts that determine a check
// verdict. Parts are length-delimited before hashing, so no two
// distinct part lists collide by concatenation.
func Key(parts ...string) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		n := len(p)
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a snapshot of the cache counters. All fields come from one
// locked read, so Hits, Misses and the derived HitRate are always
// mutually consistent — a concurrent reader can never observe a hit
// count from one lookup generation paired with a miss count from
// another (no torn reads; the /healthz endpoint serializes exactly this
// snapshot).
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	// HitRate is Hits / (Hits + Misses), 0 before the first lookup.
	HitRate float64 `json:"hit_rate"`
}

type entry struct {
	key        string
	violations []constraints.Violation
}

// flight is one in-progress computation other callers can wait on.
type flight struct {
	done     chan struct{} // closed when the leader finishes
	val      []constraints.Violation
	err      error
	fromDisk bool // leader satisfied the miss from the persistent tier
}

// Cache is a bounded LRU of check results, safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List               // front = most recent; values are *entry
	entries  map[string]*list.Element // key -> lru element
	inflight map[string]*flight

	// The counters are obs metrics so the same instances can back both
	// the consistent Stats() snapshot (incremented and read under mu)
	// and, via RegisterMetrics, the /metrics exposition — one source of
	// truth for /healthz and the Prometheus scrape.
	hits, misses, evictions obs.Counter

	// Optional persistent tier (AttachPersist). store survives process
	// restarts; breaker sheds it when the disk misbehaves. Both nil-safe
	// throughout: a memory-only cache never consults them.
	store   *persist.Store
	breaker *Breaker
	// Disk-tier counters, separate from the in-memory hit/miss pair so
	// the pinned Stats shape is untouched.
	diskHits, diskMisses, diskErrors, diskWrites obs.Counter

	// lookupSeconds, set by RegisterMetrics, exposes per-tier lookup
	// latency distributions (memory hit, single-flight join, disk hit,
	// full compute). Nil on an unregistered cache: the lookup path then
	// pays one nil check and never reads a clock.
	lookupSeconds *obs.HistogramVec
}

// New returns a cache holding at most capacity results. capacity <= 0
// returns nil, which every method treats as a disabled cache.
func New(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// RegisterMetrics exposes the cache's counters on reg under the
// llhsc_checkcache_* families. The registered metrics are the same
// instances Stats() reads — /healthz and /metrics can never disagree.
// Entry count, capacity and hit rate are computed at scrape time under
// the cache lock. Safe (a no-op) on a nil cache.
func (c *Cache) RegisterMetrics(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.Register("llhsc_checkcache_hits_total",
		"Check-result cache hits (including single-flight joins).", &c.hits)
	reg.Register("llhsc_checkcache_misses_total",
		"Check-result cache misses.", &c.misses)
	reg.Register("llhsc_checkcache_evictions_total",
		"Check-result cache LRU evictions.", &c.evictions)
	reg.Register("llhsc_checkcache_entries",
		"Resident check-result cache entries.", obs.FuncGauge(func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.lru.Len())
		}))
	reg.Register("llhsc_checkcache_capacity",
		"Configured check-result cache capacity.", obs.FuncGauge(func() float64 {
			return float64(c.capacity)
		}))
	reg.Register("llhsc_checkcache_hit_rate",
		"Hits / lookups since start; 0 before the first lookup.", obs.FuncGauge(func() float64 {
			st := c.Stats()
			return st.HitRate
		}))
	c.lookupSeconds = reg.NewHistogramVec("llhsc_checkcache_lookup_seconds",
		"Cache lookup latency by serving tier: memory hit, single-flight join, disk hit, or full compute.",
		nil, "tier")
}

// observeLookup records one successful lookup's latency under its
// serving tier. No-op until RegisterMetrics installs the histogram.
func (c *Cache) observeLookup(tier string, t0 time.Time) {
	if c.lookupSeconds == nil {
		return
	}
	c.lookupSeconds.With(tier).Observe(time.Since(t0).Seconds())
}

// Stats returns a snapshot of the counters. Safe on a nil cache.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
		Entries:   c.lru.Len(),
		Capacity:  c.capacity,
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}

// Do returns the cached violations for key, or computes them with fn.
// Concurrent calls for the same missing key run fn once (single
// flight); the others block until the leader finishes or their own ctx
// is done. A fn error is returned to the leader and every waiter but
// is never cached — limit stops are transient, so the next request
// retries. hit reports whether the result came from the cache (waiters
// joining an in-progress computation count as hits: they triggered no
// solver work of their own).
//
// On a nil cache Do degenerates to calling fn directly.
func (c *Cache) Do(ctx context.Context, key string, fn func() ([]constraints.Violation, error)) (violations []constraints.Violation, hit bool, err error) {
	if c == nil {
		v, err := fn()
		return v, false, err
	}
	var t0 time.Time
	if c.lookupSeconds != nil {
		t0 = time.Now()
	}
	for {
		// A caller whose deadline already passed must not become a
		// leader (it would compute a result nobody can use) or re-join
		// the waiter queue.
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			c.hits.Inc()
			v := el.Value.(*entry).violations
			c.mu.Unlock()
			c.observeLookup("memory", t0)
			return copyViolations(v), true, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				c.mu.Lock()
				c.hits.Inc()
				c.mu.Unlock()
				c.observeLookup("join", t0)
				return copyViolations(f.val), true, nil
			}
			// The leader failed (budget, cancellation). If this
			// waiter is still live it retries — its own budget may
			// suffice where the leader's did not.
			if ctx.Err() != nil {
				return nil, false, ctx.Err()
			}
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.misses.Inc()
		c.mu.Unlock()

		// Persistent tier, inside the single flight: N concurrent misses
		// on one key cost at most one disk read. The tier is strictly
		// best-effort — any failure falls through to computing.
		if v, ok := c.diskGet(key); ok {
			f.val, f.fromDisk = v, true
		} else {
			f.val, f.err = fn()
			if f.err == nil {
				c.diskPut(key, f.val)
			}
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil {
			c.insertLocked(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
		if f.err == nil {
			if f.fromDisk {
				c.observeLookup("disk", t0)
			} else {
				c.observeLookup("compute", t0)
			}
		}
		return copyViolations(f.val), f.fromDisk, f.err
	}
}

// Get returns the cached violations for key without computing anything.
func (c *Cache) Get(key string) ([]constraints.Violation, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Inc()
	return copyViolations(el.Value.(*entry).violations), true
}

// Put stores a result, evicting the least recently used entry when the
// cache is full.
func (c *Cache) Put(key string, violations []constraints.Violation) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, violations)
}

func (c *Cache) insertLocked(key string, violations []constraints.Violation) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).violations = copyViolations(violations)
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.evictions.Inc()
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, violations: copyViolations(violations)})
}

// copyViolations guards the cached slice against caller appends. It
// preserves the nil/empty distinction: "checked, zero violations"
// (empty) and "nothing to report" (nil) round-trip as themselves.
func copyViolations(v []constraints.Violation) []constraints.Violation {
	if v == nil {
		return nil
	}
	out := make([]constraints.Violation, len(v))
	copy(out, v)
	return out
}
