// Persistent-tier glue: layering the crash-safe disk store under the
// in-memory LRU, behind a circuit breaker. The disk tier is strictly
// an accelerator — every path through here degrades to "compute it"
// on any failure, and a tripped breaker turns the cache memory-only
// until probes re-close it.
package checkcache

import (
	"encoding/json"

	"llhsc/internal/checkcache/persist"
	"llhsc/internal/constraints"
	"llhsc/internal/obs"
)

// AttachPersist layers store under the in-memory LRU, guarded by br.
// A nil br disables breaking (every operation reaches the disk); a nil
// store is a no-op. Attach before the cache is shared across
// goroutines — the fields are read without the lock on the hot path.
// Safe on a nil cache.
func (c *Cache) AttachPersist(store *persist.Store, br *Breaker) {
	if c == nil || store == nil {
		return
	}
	c.store = store
	c.breaker = br
}

// Persistent reports whether a disk tier is attached. Safe on nil.
func (c *Cache) Persistent() bool {
	return c != nil && c.store != nil
}

// TierStats is the persistent tier's /healthz snapshot: absent (nil)
// from serialized health output when no tier is attached, so the
// memory-only health shape is byte-identical to before this tier
// existed.
type TierStats struct {
	Store      persist.Stats `json:"store"`
	Breaker    BreakerStats  `json:"breaker"`
	DiskHits   uint64        `json:"disk_hits"`
	DiskMisses uint64        `json:"disk_misses"`
	DiskErrors uint64        `json:"disk_errors"`
	DiskWrites uint64        `json:"disk_writes"`
}

// Tier returns the persistent tier snapshot, or nil when no tier is
// attached. Safe on a nil cache.
func (c *Cache) Tier() *TierStats {
	if c == nil || c.store == nil {
		return nil
	}
	return &TierStats{
		Store:      c.store.Stats(),
		Breaker:    c.breaker.Stats(),
		DiskHits:   c.diskHits.Value(),
		DiskMisses: c.diskMisses.Value(),
		DiskErrors: c.diskErrors.Value(),
		DiskWrites: c.diskWrites.Value(),
	}
}

// diskGet consults the persistent tier for key. Any failure — tripped
// breaker, I/O error, undecodable value — is a miss; the caller
// computes instead. Checksum verification happens inside the store, so
// a value that arrives here is byte-exact what a healthy Put wrote.
func (c *Cache) diskGet(key string) ([]constraints.Violation, bool) {
	if c.store == nil || !c.breaker.Allow() {
		return nil, false
	}
	raw, ok, err := c.store.Get(key)
	if err != nil {
		c.breaker.Failure()
		c.diskErrors.Inc()
		return nil, false
	}
	c.breaker.Success()
	if !ok {
		c.diskMisses.Inc()
		return nil, false
	}
	v, err := decodeViolations(raw)
	if err != nil {
		// Valid frame, wrong shape (e.g. written by an incompatible
		// version). Not a disk fault — don't punish the breaker.
		c.diskErrors.Inc()
		return nil, false
	}
	c.diskHits.Inc()
	return v, true
}

// diskPut writes a freshly computed result through to disk,
// best-effort: a failure is counted and fed to the breaker but never
// surfaces to the request that computed the result.
func (c *Cache) diskPut(key string, v []constraints.Violation) {
	if c.store == nil || !c.breaker.Allow() {
		return
	}
	raw, err := encodeViolations(v)
	if err != nil {
		c.diskErrors.Inc()
		return
	}
	if err := c.store.Put(key, raw); err != nil {
		c.breaker.Failure()
		c.diskErrors.Inc()
		return
	}
	c.breaker.Success()
	c.diskWrites.Inc()
}

// Violation values are stored as JSON: every field of
// constraints.Violation (and the embedded dts.Origin) is exported, so
// the round trip is lossless, and the format stays debuggable with
// nothing but the segment framing doc and a hex dump.
func encodeViolations(v []constraints.Violation) ([]byte, error) {
	if v == nil {
		// Preserve the nil/empty distinction: "no violations" encodes
		// as null, an empty-but-present list as [].
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

func decodeViolations(raw []byte) ([]constraints.Violation, error) {
	var v []constraints.Violation
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// RegisterTierMetrics exposes the persistent tier on reg under the
// llhsc_checkcache_persist_* families plus the breaker state gauge
// (0=closed, 1=open, 2=half-open). No-op unless a tier is attached, so
// memory-only deployments expose exactly the metric set they did
// before. Call alongside RegisterMetrics.
func (c *Cache) RegisterTierMetrics(reg *obs.Registry) {
	if c == nil || reg == nil || c.store == nil {
		return
	}
	reg.Register("llhsc_checkcache_persist_hits_total",
		"Persistent-tier cache hits (misses in memory served from disk).", &c.diskHits)
	reg.Register("llhsc_checkcache_persist_misses_total",
		"Persistent-tier cache misses (fell through to computing).", &c.diskMisses)
	reg.Register("llhsc_checkcache_persist_errors_total",
		"Persistent-tier failures (I/O errors, undecodable values).", &c.diskErrors)
	reg.Register("llhsc_checkcache_persist_writes_total",
		"Results written through to the persistent tier.", &c.diskWrites)
	reg.Register("llhsc_checkcache_persist_entries",
		"Live entries in the persistent tier's index.", obs.FuncGauge(func() float64 {
			return float64(c.store.Len())
		}))
	reg.Register("llhsc_checkcache_persist_bytes",
		"Bytes held by the persistent tier across all segments.", obs.FuncGauge(func() float64 {
			return float64(c.store.Stats().Bytes)
		}))
	reg.Register("llhsc_checkcache_breaker_state",
		"Persistent-tier circuit breaker state (0=closed, 1=open, 2=half-open).",
		obs.FuncGauge(func() float64 {
			return float64(c.breaker.State())
		}))
	reg.Register("llhsc_checkcache_breaker_trips_total",
		"Times the persistent-tier breaker tripped open.", obs.FuncGauge(func() float64 {
			return float64(c.breaker.Stats().Trips)
		}))
}
