// Tests for the request observability layer: /metrics exposition,
// X-Request-ID correlation, the /check stats block, structured request
// logging (including the non-2xx contract), and /healthz-vs-/metrics
// cache counter consistency.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"llhsc/internal/buildinfo"
	"llhsc/internal/obs"
)

// syncBuffer is a goroutine-safe log sink for tests.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// lastLogLine decodes the final JSON line the server logged.
func lastLogLine(t *testing.T, buf *syncBuffer) map[string]interface{} {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no log lines written")
	}
	var out map[string]interface{}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &out); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, lines[len(lines)-1])
	}
	return out
}

func obsServer(t *testing.T, opts Options) (*httptest.Server, *obs.Registry, *syncBuffer) {
	t.Helper()
	reg := obs.NewRegistry()
	buf := &syncBuffer{}
	opts.Registry = reg
	opts.LogWriter = buf
	srv := httptest.NewServer(NewHandler(opts))
	t.Cleanup(srv.Close)
	return srv, reg, buf
}

// exampleBody fetches the running example request body from /example.
func exampleBody(t *testing.T, srv *httptest.Server) CheckRequest {
	t.Helper()
	var req CheckRequest
	if resp := getJSON(t, srv.URL+"/example", &req); resp.StatusCode != http.StatusOK {
		t.Fatalf("/example status %d", resp.StatusCode)
	}
	return req
}

// TestRequestIDAssignedAndEchoed: every response carries an
// X-Request-ID; a caller-provided one is preserved, and /check echoes
// it in the JSON body for log correlation.
func TestRequestIDAssignedAndEchoed(t *testing.T) {
	srv, _, _ := obsServer(t, Options{})
	resp := getJSON(t, srv.URL+"/healthz", nil)
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID assigned on /healthz")
	}

	body, err := json.Marshal(exampleBody(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/check", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "caller-chosen-id")
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if got := httpResp.Header.Get("X-Request-ID"); got != "caller-chosen-id" {
		t.Errorf("X-Request-ID = %q, want the caller's id", got)
	}
	var out CheckResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.RequestID != "caller-chosen-id" {
		t.Errorf("body requestId = %q, want the caller's id", out.RequestID)
	}
}

// TestCheckResponseCarriesStats: a successful /check reports per-family
// solver work and cache counters in its stats block.
func TestCheckResponseCarriesStats(t *testing.T) {
	srv, _, _ := obsServer(t, Options{CacheSize: 16})
	var out CheckResponse
	resp := postJSON(t, srv.URL+"/check", exampleBody(t, srv), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/check status %d", resp.StatusCode)
	}
	if out.Stats == nil {
		t.Fatal("/check response has no stats block")
	}
	for _, fam := range []string{"allocation", "syntactic", "semantic", "memreserve", "interrupt"} {
		if _, ok := out.Stats.Families[fam]; !ok {
			t.Errorf("stats block missing family %q: %+v", fam, out.Stats)
		}
	}
	if out.Stats.CacheHits+out.Stats.CacheMisses == 0 {
		t.Error("stats block reports no cache lookups although a cache is configured")
	}
}

// TestMetricsEndpoint scrapes /metrics after traffic and checks the
// expected families are present in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	srv, _, _ := obsServer(t, Options{CacheSize: 16})
	if resp := postJSON(t, srv.URL+"/check", exampleBody(t, srv), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("/check status %d", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, family := range []string{
		"llhsc_service_request_seconds_bucket",
		"llhsc_service_requests_total",
		"llhsc_service_inflight_requests",
		"llhsc_sat_conflicts_total",
		"llhsc_sat_propagations_total",
		"llhsc_constraints_solver_calls_total",
		"llhsc_constraints_pairs_pruned_total",
		"llhsc_smt_intern_hits_total",
		"llhsc_checkcache_hits_total",
		"llhsc_checkcache_misses_total",
		"llhsc_core_runs_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	if !strings.Contains(text, `endpoint="/check"`) {
		t.Error("/metrics latency histogram missing the /check endpoint label")
	}
}

// metricValue extracts one sample value from a Prometheus text scrape.
func metricValue(t *testing.T, text, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, sample+" ") {
			var v float64
			if _, err := fmt.Sscan(strings.TrimPrefix(line, sample+" "), &v); err != nil {
				t.Fatalf("unparsable sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("sample %s not found in scrape", sample)
	return 0
}

// TestHealthzAndMetricsAgreeOnCacheCounters: the cache counters behind
// /healthz and /metrics are the same instances, so the two views must
// report identical numbers.
func TestHealthzAndMetricsAgreeOnCacheCounters(t *testing.T) {
	srv, _, _ := obsServer(t, Options{CacheSize: 16})
	body := exampleBody(t, srv)
	for i := 0; i < 2; i++ { // second run hits the cache
		if resp := postJSON(t, srv.URL+"/check", body, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("/check status %d", resp.StatusCode)
		}
	}
	var health struct {
		CheckCache struct {
			Hits    float64 `json:"hits"`
			Misses  float64 `json:"misses"`
			HitRate float64 `json:"hit_rate"`
		} `json:"checkCache"`
	}
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	if health.CheckCache.Hits == 0 {
		t.Fatal("second identical /check produced no cache hits")
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if got := metricValue(t, text, "llhsc_checkcache_hits_total"); got != health.CheckCache.Hits {
		t.Errorf("metrics hits = %v, healthz hits = %v", got, health.CheckCache.Hits)
	}
	if got := metricValue(t, text, "llhsc_checkcache_misses_total"); got != health.CheckCache.Misses {
		t.Errorf("metrics misses = %v, healthz misses = %v", got, health.CheckCache.Misses)
	}
	if got := metricValue(t, text, "llhsc_checkcache_hit_rate"); got != health.CheckCache.HitRate {
		t.Errorf("metrics hit_rate = %v, healthz hit_rate = %v", got, health.CheckCache.HitRate)
	}
}

// TestSuccessfulRequestLogged: a 2xx /check produces one info line with
// the request ID and per-phase durations covering the pipeline phases.
func TestSuccessfulRequestLogged(t *testing.T) {
	srv, _, buf := obsServer(t, Options{})
	var out CheckResponse
	if resp := postJSON(t, srv.URL+"/check", exampleBody(t, srv), &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("/check status %d", resp.StatusCode)
	}
	line := lastLogLine(t, buf)
	if line["level"] != "info" || line["path"] != "/check" {
		t.Errorf("unexpected log line: %v", line)
	}
	if line["requestId"] != out.RequestID {
		t.Errorf("log requestId %v != response requestId %v", line["requestId"], out.RequestID)
	}
	phases, ok := line["phaseMs"].(map[string]interface{})
	if !ok {
		t.Fatalf("log line has no phaseMs object: %v", line)
	}
	for _, want := range []string{"allocation", "platform", "baogen"} {
		if _, ok := phases[want]; !ok {
			t.Errorf("phaseMs missing %q: %v", want, phases)
		}
	}
}

// TestNon2xxLogged exercises the error-taxonomy logging contract: each
// non-2xx answer emits exactly one error line with the request ID, the
// status, the phase reached and the taxonomy class.
func TestNon2xxLogged(t *testing.T) {
	srv, _, buf := obsServer(t, Options{MaxBodyBytes: 256})

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/check", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	for _, tc := range []struct {
		name       string
		do         func() *http.Response
		wantStatus int
		wantClass  string
		wantReason string
		wantPhase  string
	}{
		{
			name:       "bad json",
			do:         func() *http.Response { return post("{not json") },
			wantStatus: http.StatusBadRequest,
			wantClass:  "4xx",
			wantReason: "bad-request",
			wantPhase:  "decode",
		},
		{
			name: "body too large",
			do: func() *http.Response {
				return post(`{"coreDts":"` + strings.Repeat("x", 512) + `"}`)
			},
			wantStatus: http.StatusRequestEntityTooLarge,
			wantClass:  "4xx",
			wantReason: "body-too-large",
			wantPhase:  "decode",
		},
		{
			name: "unprocessable",
			do: func() *http.Response {
				return post(`{"coreDts":"not a dts","deltas":"d","featureModel":"f","vms":[["a"]]}`)
			},
			wantStatus: http.StatusUnprocessableEntity,
			wantClass:  "4xx",
			wantReason: "unprocessable",
			wantPhase:  "parse",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := tc.do()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			line := lastLogLine(t, buf)
			if line["level"] != "error" {
				t.Errorf("level = %v, want error", line["level"])
			}
			if int(line["status"].(float64)) != tc.wantStatus {
				t.Errorf("logged status = %v, want %d", line["status"], tc.wantStatus)
			}
			if line["class"] != tc.wantClass {
				t.Errorf("class = %v, want %s", line["class"], tc.wantClass)
			}
			if line["reason"] != tc.wantReason {
				t.Errorf("reason = %v, want %s", line["reason"], tc.wantReason)
			}
			if line["phase"] != tc.wantPhase {
				t.Errorf("phase = %v, want %s", line["phase"], tc.wantPhase)
			}
			if id, _ := line["requestId"].(string); id == "" {
				t.Error("error line has no requestId")
			}
		})
	}
}

// TestHealthzJSONShapeUnchanged pins the byte-level /healthz document
// for a baseline deployment: evolving the internals (metrics registry,
// build stamping) must not silently change the externally observable
// JSON. The build block's values come from the binary itself, so the
// expectation folds them in from the same source.
func TestHealthzJSONShapeUnchanged(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{CacheSize: 8}))
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	info := buildinfo.Get()
	want := fmt.Sprintf(`{
  "build": {
    "version": %q,
    "commit": %q,
    "date": %q,
    "go": %q
  },
  "checkCache": {
    "hits": 0,
    "misses": 0,
    "evictions": 0,
    "entries": 0,
    "capacity": 8,
    "hit_rate": 0
  },
  "status": "ok"
}
`, info.Version, info.Commit, info.Date, info.GoVersion)
	if string(raw) != want {
		t.Errorf("/healthz JSON changed:\n got: %s\nwant: %s", raw, want)
	}
}
