// Graceful degradation: the service sheds load instead of falling
// over. Three mechanisms live here, all visible on /healthz:
//
//   - draining: an operator (or the shutdown path) marks the service
//     draining; /check and /lint answer 503 + Retry-After so load
//     balancers move on while in-flight requests finish.
//   - adaptive overload shedding: when the in-flight semaphore stays
//     saturated past a dwell threshold, /check drops to lint-only
//     checking (core.Pipeline.LintOnly) — exact structural verdicts,
//     no SMT work — until occupancy stays below half capacity for the
//     exit dwell (hysteresis, so the mode does not flap).
//   - the persistent cache tier's circuit breaker (internal/checkcache)
//     reports through the same health document.
package service

import (
	"sync"
	"time"
)

// Degrade modes for Options.Degrade.
const (
	// DegradeOff never sheds ("" means off too).
	DegradeOff = "off"
	// DegradeAuto sheds to lint-only while the in-flight semaphore is
	// saturated (and MaxInFlight is configured; without a semaphore
	// there is no saturation signal and auto never engages).
	DegradeAuto = "auto"
	// DegradeForce sheds every /check unconditionally — an operator
	// big-red-switch for riding out an incident.
	DegradeForce = "force"
)

// Default dwell thresholds for DegradeAuto: saturation must persist
// this long before shedding starts, and occupancy must stay under half
// capacity this long before full checking resumes.
const (
	defaultDegradeEnterAfter = 2 * time.Second
	defaultDegradeExitAfter  = 5 * time.Second
)

// degradeStats is the controller's /healthz snapshot.
type degradeStats struct {
	Mode   string `json:"mode"`
	Active bool   `json:"active"`
	// Entries counts times auto mode engaged shedding; Shed counts
	// /check requests answered lint-only.
	Entries uint64 `json:"entries"`
	Shed    uint64 `json:"shed_requests"`
}

// degradeController decides when /check runs lint-only. Occupancy is
// sampled at admission time (both admitted and 429-rejected requests
// feed it), so the controller costs nothing when the service is idle.
// A nil controller (mode off) never sheds.
type degradeController struct {
	forced     bool
	enterAfter time.Duration
	exitAfter  time.Duration
	now        func() time.Time // swapped in tests

	mu        sync.Mutex
	degraded  bool
	satSince  time.Time // start of the current saturation streak (zero = none)
	calmSince time.Time // start of the current calm streak (zero = none)
	entries   uint64
	shed      uint64
}

// newDegradeController returns nil for mode off/"" (the comparisons in
// the handlers are nil-safe), a forced controller for DegradeForce,
// and a dwell-based one for DegradeAuto.
func newDegradeController(mode string, enterAfter, exitAfter time.Duration) *degradeController {
	switch mode {
	case "", DegradeOff:
		return nil
	}
	if enterAfter <= 0 {
		enterAfter = defaultDegradeEnterAfter
	}
	if exitAfter <= 0 {
		exitAfter = defaultDegradeExitAfter
	}
	return &degradeController{
		forced:     mode == DegradeForce,
		enterAfter: enterAfter,
		exitAfter:  exitAfter,
		now:        time.Now,
	}
}

// observe feeds one admission-time occupancy sample: inflight requests
// against the semaphore capacity (0 = unbounded, never saturated).
func (d *degradeController) observe(inflight, capacity int) {
	if d == nil || d.forced || capacity <= 0 {
		return
	}
	now := d.now()
	saturated := inflight >= capacity
	calm := inflight*2 <= capacity
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case saturated:
		d.calmSince = time.Time{}
		if d.satSince.IsZero() {
			d.satSince = now
		}
		if !d.degraded && now.Sub(d.satSince) >= d.enterAfter {
			d.degraded = true
			d.entries++
		}
	case calm:
		d.satSince = time.Time{}
		if d.calmSince.IsZero() {
			d.calmSince = now
		}
		if d.degraded && now.Sub(d.calmSince) >= d.exitAfter {
			d.degraded = false
		}
	default:
		// Middle band: neither streak advances — shedding holds
		// (hysteresis), and a brief dip below capacity does not reset
		// progress toward recovery more than it must.
		d.satSince = time.Time{}
		d.calmSince = time.Time{}
	}
}

// active reports whether the next /check should run lint-only, and
// counts the shed request when so.
func (d *degradeController) active() bool {
	if d == nil {
		return false
	}
	if d.forced {
		d.mu.Lock()
		d.shed++
		d.mu.Unlock()
		return true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.degraded {
		d.shed++
	}
	return d.degraded
}

// peek reports the mode without counting a shed request (for /healthz
// and metrics).
func (d *degradeController) peek() bool {
	if d == nil {
		return false
	}
	if d.forced {
		return true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.degraded
}

// stats snapshots the controller for /healthz.
func (d *degradeController) stats() degradeStats {
	if d == nil {
		return degradeStats{Mode: DegradeOff}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	mode := DegradeAuto
	if d.forced {
		mode = DegradeForce
	}
	return degradeStats{
		Mode:    mode,
		Active:  d.forced || d.degraded,
		Entries: d.entries,
		Shed:    d.shed,
	}
}
