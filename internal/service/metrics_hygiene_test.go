// Metrics hygiene: every family a fully configured service registers
// must follow the Prometheus data-model naming rules, carry non-empty
// help text, and render byte-deterministically — a scrape target whose
// output reorders between scrapes breaks diffing and recording rules.
package service

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"llhsc/internal/obs"
)

// metricNameRE is the Prometheus metric-name grammar.
var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// fullRegistry builds a service with every metrics-registering feature
// enabled, so the hygiene checks cover the complete family set:
// service, pipeline, check-cache (memory + persistent tier), degrade,
// build info and the deep-diagnostics histograms.
func fullRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	svc, err := NewService(Options{
		CacheSize:   8,
		CacheDir:    t.TempDir(),
		Degrade:     DegradeAuto,
		Registry:    reg,
		FlightSize:  4,
		SlowQueryMs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return reg
}

func TestMetricFamiliesWellFormed(t *testing.T) {
	fams := fullRegistry(t).Families()
	if len(fams) == 0 {
		t.Fatal("no metric families registered")
	}
	seen := make(map[string]bool)
	for _, f := range fams {
		if !metricNameRE.MatchString(f.Name) {
			t.Errorf("family %q violates the Prometheus naming grammar", f.Name)
		}
		if !strings.HasPrefix(f.Name, "llhsc_") {
			t.Errorf("family %q lacks the llhsc_ namespace prefix", f.Name)
		}
		if strings.TrimSpace(f.Help) == "" {
			t.Errorf("family %q has empty help text", f.Name)
		}
		if seen[f.Name] {
			t.Errorf("family %q registered twice", f.Name)
		}
		seen[f.Name] = true
	}
	// The families this PR introduces must all be present.
	for _, want := range []string{
		"llhsc_check_seconds",
		"llhsc_checkcache_lookup_seconds",
		"llhsc_build_info",
	} {
		if !seen[want] {
			t.Errorf("family %q missing from a fully configured service", want)
		}
	}
}

// TestWritePrometheusDeterministic pins that two renders of the same
// registry produce identical bytes (stable family and label ordering).
func TestWritePrometheusDeterministic(t *testing.T) {
	reg := fullRegistry(t)
	var a, b bytes.Buffer
	reg.WritePrometheus(&a)
	reg.WritePrometheus(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two renders differ:\n--- first ---\n%s\n--- second ---\n%s", a.String(), b.String())
	}
	// Every HELP line must belong to a family the registry reports, and
	// appear in sorted order.
	var helps []string
	for _, line := range strings.Split(a.String(), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			helps = append(helps, strings.Fields(line)[2])
		}
	}
	if len(helps) == 0 {
		t.Fatal("exposition has no HELP lines")
	}
	for i := 1; i < len(helps); i++ {
		if helps[i] < helps[i-1] {
			t.Errorf("families out of order: %q after %q", helps[i], helps[i-1])
		}
	}
}
