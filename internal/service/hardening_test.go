package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"llhsc/internal/core"
)

// exampleRequest fetches the ready-made running-example request from a
// test server built on the given handler.
func exampleRequest(t *testing.T, srv *httptest.Server) CheckRequest {
	t.Helper()
	var req CheckRequest
	getJSON(t, srv.URL+"/example", &req)
	return req
}

func TestPanicIsolatedAsJSON500(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	mux.HandleFunc("/fine", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	srv := httptest.NewServer(recoverPanics(mux))
	defer srv.Close()

	var e errorResponse
	resp := getJSON(t, srv.URL+"/boom", &e)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want JSON", ct)
	}
	if !strings.Contains(e.Error, "kaboom") {
		t.Errorf("error = %q, should mention the panic", e.Error)
	}

	// the server must keep serving after the panic
	resp = getJSON(t, srv.URL+"/fine", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic: status = %d, want 200", resp.StatusCode)
	}
}

func TestBudgetExhaustionAnswers503(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{
		Limits: core.Limits{MaxDeltaOps: 1},
	}))
	defer srv.Close()

	start := time.Now()
	var e errorResponse
	resp := postJSON(t, srv.URL+"/check", exampleRequest(t, srv), &e)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("budget-limited check took %v, want bounded well under 2s", elapsed)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body: %+v)", resp.StatusCode, e)
	}
	if e.Reason != "budget:delta-ops" {
		t.Errorf("reason = %q, want budget:delta-ops", e.Reason)
	}
	if e.RetryAfter <= 0 {
		t.Errorf("retryAfterSeconds = %d, want a positive hint", e.RetryAfter)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("missing Retry-After header on 503")
	}
}

func TestRequestTimeoutAnswers408(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{
		RequestTimeout: time.Nanosecond,
	}))
	defer srv.Close()

	var e errorResponse
	resp := postJSON(t, srv.URL+"/check", exampleRequest(t, srv), &e)
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408 (body: %+v)", resp.StatusCode, e)
	}
	if e.Reason != "request-timeout" {
		t.Errorf("reason = %q, want request-timeout", e.Reason)
	}
}

func TestOverloadAnswers429(t *testing.T) {
	s := &server{
		opts:     Options{MaxInFlight: 1, MaxBodyBytes: defaultMaxBodyBytes},
		inflight: make(chan struct{}, 1),
	}
	s.inflight <- struct{}{} // occupy the only slot

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/check", strings.NewReader("{}"))
	s.guard(s.handleCheck).ServeHTTP(rec, req)

	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("missing Retry-After header on 429")
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("decode 429 body: %v", err)
	}
	if e.Reason != "overloaded" {
		t.Errorf("reason = %q, want overloaded", e.Reason)
	}

	// freeing the slot restores service
	<-s.inflight
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/check", strings.NewReader("{}"))
	s.guard(s.handleCheck).ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest { // {} is missing every field
		t.Fatalf("status after slot freed = %d, want 400", rec.Code)
	}
}

func TestDeepNestingAnswers413(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{MaxNodeDepth: 8}))
	defer srv.Close()

	var b strings.Builder
	b.WriteString("/dts-v1/;\n/ {\n")
	for i := 0; i < 20; i++ {
		b.WriteString("n {\n")
	}
	for i := 0; i < 20; i++ {
		b.WriteString("};\n")
	}
	b.WriteString("};\n")

	var e errorResponse
	resp := postJSON(t, srv.URL+"/lint", LintRequest{DTS: b.String()}, &e)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body: %+v)", resp.StatusCode, e)
	}
}

func TestOversizedBodyAnswers413(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{MaxBodyBytes: 256}))
	defer srv.Close()

	var e errorResponse
	resp := postJSON(t, srv.URL+"/lint",
		LintRequest{DTS: strings.Repeat("x", 1024)}, &e)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body: %+v)", resp.StatusCode, e)
	}
	if e.Reason != "body-too-large" {
		t.Errorf("reason = %q, want body-too-large", e.Reason)
	}
}

func TestDefaultHandlerStillChecksExample(t *testing.T) {
	srv := newServer(t)
	var out CheckResponse
	resp := postJSON(t, srv.URL+"/check", exampleRequest(t, srv), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if !out.OK {
		t.Errorf("example product line should check clean: %+v", out)
	}
}
