package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(Handler())
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body interface{}, out interface{}) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	srv := newServer(t)
	var out map[string]interface{}
	resp := getJSON(t, srv.URL+"/healthz", &out)
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Errorf("healthz = %d %v", resp.StatusCode, out)
	}
	if _, ok := out["checkCache"]; ok {
		t.Error("healthz reports cache stats although no cache is configured")
	}
}

func TestExampleRoundTripsThroughCheck(t *testing.T) {
	// The artifact flow: GET /example, POST it to /check, expect a
	// passing report with the Listing 3/6 artifacts.
	srv := newServer(t)
	var req CheckRequest
	if resp := getJSON(t, srv.URL+"/example", &req); resp.StatusCode != http.StatusOK {
		t.Fatalf("/example status %d", resp.StatusCode)
	}
	if req.CoreDTS == "" || len(req.VMs) != 2 {
		t.Fatalf("example request incomplete: %+v", req)
	}

	var out CheckResponse
	if resp := postJSON(t, srv.URL+"/check", req, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("/check status %d", resp.StatusCode)
	}
	if !out.OK {
		t.Fatalf("running example rejected: %+v", out)
	}
	if len(out.VMs) != 2 {
		t.Fatalf("VMs = %d", len(out.VMs))
	}
	if !strings.Contains(out.PlatformC, ".cpu_num = 2") {
		t.Error("platform C missing")
	}
	if !strings.Contains(out.ConfigC, ".vmlist_size = 2") {
		t.Error("config C missing")
	}
	if !strings.Contains(out.JailhouseRootC, "JAILHOUSE_SYSTEM_SIGNATURE") {
		t.Error("jailhouse root missing")
	}
	if len(out.JailhouseCellsC) != 2 {
		t.Error("jailhouse cells missing")
	}
}

func TestCheckReportsViolationsWithBlame(t *testing.T) {
	srv := newServer(t)
	var req CheckRequest
	getJSON(t, srv.URL+"/example", &req)
	// inject the clash delta (Section I-A through the product line)
	req.Deltas += `
delta clash after d6 when uart1 && (veth0 || veth1) {
    modifies uart@30000000 {
        reg = <0x60000000 0x1000>;
    }
}
`
	var out CheckResponse
	resp := postJSON(t, srv.URL+"/check", req, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/check status %d", resp.StatusCode)
	}
	if out.OK {
		t.Fatal("clash not detected")
	}
	blamed := false
	for _, vm := range out.VMs {
		for _, v := range vm.Violations {
			if v.Rule == "semantic:overlap" && v.Delta == "clash" {
				blamed = true
			}
		}
	}
	if !blamed {
		t.Errorf("no violation blamed on delta 'clash': %+v", out.VMs)
	}
	if out.ConfigC != "" {
		t.Error("artifacts must not be generated on failure")
	}
}

// TestCheckLiftedMode exercises the per-request mode override: the
// clean running example passes in lifted mode with lifted metadata in
// the stats; the clash corpus fails with findings carrying witness
// configurations; an unknown mode answers 400.
func TestCheckLiftedMode(t *testing.T) {
	srv := newServer(t)
	var req CheckRequest
	getJSON(t, srv.URL+"/example", &req)
	req.Mode = "lifted"

	var out CheckResponse
	if resp := postJSON(t, srv.URL+"/check", req, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("/check status %d", resp.StatusCode)
	}
	if !out.OK {
		t.Fatalf("running example rejected in lifted mode: %+v", out.Lifted)
	}
	if len(out.Lifted) != 0 {
		t.Errorf("clean line produced lifted findings: %+v", out.Lifted)
	}
	if out.Stats == nil || out.Stats.Lifted == nil {
		t.Fatal("lifted-mode response missing lifted stats")
	}
	if out.Stats.Lifted.Queries == 0 {
		t.Error("lifted stats report no solver queries")
	}
	if out.ConfigC == "" {
		t.Error("passing lifted run generated no artifacts")
	}

	t.Run("findings with witnesses", func(t *testing.T) {
		clash := req
		clash.Deltas += `
delta clash after d6 when uart1 && (veth0 || veth1) {
    modifies uart@30000000 {
        reg = <0x60000000 0x1000>;
    }
}
`
		var out CheckResponse
		if resp := postJSON(t, srv.URL+"/check", clash, &out); resp.StatusCode != http.StatusOK {
			t.Fatalf("/check status %d", resp.StatusCode)
		}
		if out.OK {
			t.Fatal("clash not detected in lifted mode")
		}
		if len(out.Lifted) == 0 {
			t.Fatal("no lifted findings on the clash corpus")
		}
		blamed := false
		for _, f := range out.Lifted {
			if len(f.Config) == 0 {
				t.Errorf("finding without witness configuration: %+v", f)
			}
			if f.Violation.Rule == "semantic:overlap" && f.Violation.Delta == "clash" {
				blamed = true
			}
		}
		if !blamed {
			t.Errorf("no lifted finding blamed on delta 'clash': %+v", out.Lifted)
		}
		if out.ConfigC != "" {
			t.Error("artifacts must not be generated on failure")
		}
	})

	t.Run("unknown mode", func(t *testing.T) {
		bad := req
		bad.Mode = "family"
		var out errorResponse
		resp := postJSON(t, srv.URL+"/check", bad, &out)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
		if !strings.Contains(out.Error, "enumerate or lifted") {
			t.Errorf("error does not list valid modes: %q", out.Error)
		}
	})
}

func TestCheckInputValidation(t *testing.T) {
	srv := newServer(t)

	t.Run("empty body fields", func(t *testing.T) {
		var out errorResponse
		resp := postJSON(t, srv.URL+"/check", CheckRequest{}, &out)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d", resp.StatusCode)
		}
	})

	t.Run("bad JSON", func(t *testing.T) {
		resp, err := http.Post(srv.URL+"/check", "application/json",
			strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d", resp.StatusCode)
		}
	})

	t.Run("GET not allowed", func(t *testing.T) {
		resp := getJSON(t, srv.URL+"/check", nil)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("status = %d", resp.StatusCode)
		}
	})

	t.Run("broken DTS", func(t *testing.T) {
		var req CheckRequest
		getJSON(t, srv.URL+"/example", &req)
		req.CoreDTS = "/ { broken"
		var out errorResponse
		resp := postJSON(t, srv.URL+"/check", req, &out)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("status = %d (%+v)", resp.StatusCode, out)
		}
	})

	t.Run("unknown feature", func(t *testing.T) {
		var req CheckRequest
		getJSON(t, srv.URL+"/example", &req)
		req.VMs = [][]string{{"ghost-feature"}}
		var out errorResponse
		resp := postJSON(t, srv.URL+"/check", req, &out)
		if resp.StatusCode != http.StatusUnprocessableEntity ||
			!strings.Contains(out.Error, "ghost-feature") {
			t.Errorf("status = %d err = %q", resp.StatusCode, out.Error)
		}
	})
}

// TestLintPreprocessed: the lint endpoint must run the cpp pipeline
// when asked — #include against the Includes map, -D-style Defines —
// and blame preprocessing errors on the original line.
func TestLintPreprocessed(t *testing.T) {
	srv := newServer(t)

	req := LintRequest{
		DTS: `/dts-v1/;
#include "regs.h"
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	uart@9000000 {
		compatible = "ns16550a";
		reg = <UART_BASE 0x1000>;
#ifdef WITH_MARKER
		marker;
#endif
	};
};
`,
		Includes:   map[string]string{"regs.h": "#define UART_BASE 0x9000000\n"},
		Defines:    map[string]string{"WITH_MARKER": "1"},
		Preprocess: true,
	}
	var out LintResponse
	if resp := postJSON(t, srv.URL+"/lint", req, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, out)
	}
	if !out.OK {
		t.Errorf("preprocessed DTS flagged: %+v", out)
	}

	// Without Preprocess (and with no Defines) the same body must be
	// rejected: #include is not plain DTS syntax.
	plain := req
	plain.Preprocess = false
	plain.Defines = nil
	var errOut errorResponse
	if resp := postJSON(t, srv.URL+"/lint", plain, &errOut); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unpreprocessed status = %d, want 422", resp.StatusCode)
	}

	// A preprocessing error (unterminated #ifdef) is a 422 naming the
	// original input line.
	bad := LintRequest{DTS: "/dts-v1/;\n#ifdef NOPE\n/ { };\n", Preprocess: true}
	resp := postJSON(t, srv.URL+"/lint", bad, &errOut)
	if resp.StatusCode != http.StatusUnprocessableEntity ||
		!strings.Contains(errOut.Error, "#ifdef") {
		t.Errorf("status = %d err = %q", resp.StatusCode, errOut.Error)
	}
}

// TestCheckPreprocessed: /check accepts a cpp-preprocessed core module;
// Defines alone switch preprocessing on.
func TestCheckPreprocessed(t *testing.T) {
	srv := newServer(t)
	req := CheckRequest{
		CoreDTS: `/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	cpus {
		#address-cells = <1>;
		#size-cells = <0>;
		cpu@0 {
			device_type = "cpu";
			compatible = "arm,cortex-a53";
			reg = <0>;
		};
	};
	memory@40000000 {
		device_type = "memory";
		reg = <MEM_BASE 0x1000000>;
	};
};
`,
		Defines:      map[string]string{"MEM_BASE": "0x40000000"},
		Deltas:       "delta d1 when board {\n    modifies / {\n        marker = <1>;\n    }\n}\n",
		FeatureModel: "feature board {\n    feature memory mandatory\n}\n",
		VMs:          [][]string{{"memory"}},
	}
	var out map[string]interface{}
	if resp := postJSON(t, srv.URL+"/check", req, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("/check status %d: %+v", resp.StatusCode, out)
	}
	if ok, _ := out["ok"].(bool); !ok {
		t.Errorf("preprocessed check failed: %+v", out)
	}
}

func TestLintEndpoint(t *testing.T) {
	srv := newServer(t)

	clean := LintRequest{DTS: `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x40000000 0x1000>;
	};
};
`, Semantic: true}
	var out LintResponse
	if resp := postJSON(t, srv.URL+"/lint", clean, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !out.OK {
		t.Errorf("clean DTS flagged: %+v", out)
	}

	dirty := LintRequest{DTS: `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x40000000 0x20000000>;
	};
	uart@40000000 { compatible = "ns16550a"; reg = <0x40000000 0x1000>; };
};
`, Semantic: true}
	out = LintResponse{}
	postJSON(t, srv.URL+"/lint", dirty, &out)
	if out.OK || len(out.Semantic) == 0 {
		t.Errorf("overlap not reported: %+v", out)
	}

	// structural-only run must accept the same input
	dirty.Semantic = false
	out = LintResponse{}
	postJSON(t, srv.URL+"/lint", dirty, &out)
	if !out.OK {
		t.Errorf("structural-only lint should accept the overlap: %+v", out)
	}

	// bad input
	var errOut errorResponse
	resp := postJSON(t, srv.URL+"/lint", LintRequest{}, &errOut)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty dts status = %d", resp.StatusCode)
	}
	resp = postJSON(t, srv.URL+"/lint", LintRequest{DTS: "/ {"}, &errOut)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("broken dts status = %d", resp.StatusCode)
	}
}
