// Tests for the deep-diagnostics surface of the service: the
// /debug/flight endpoint, crash dumps triggered by panics and budget
// exhaustion, and the opt-in per-request trace block on /check.
package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llhsc/internal/core"
	"llhsc/internal/faultinject"
	"llhsc/internal/obs"
)

// flightDoc is the JSON document /debug/flight and crash dumps share.
type flightDoc struct {
	Reason   string             `json:"reason,omitempty"`
	Capacity int                `json:"capacity"`
	Recorded uint64             `json:"recorded"`
	Records  []obs.FlightRecord `json:"records"`
}

func getFlight(t *testing.T, srv *httptest.Server) flightDoc {
	t.Helper()
	resp, err := http.Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flight status = %d, want 200", resp.StatusCode)
	}
	var doc flightDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/flight body is not JSON: %v", err)
	}
	return doc
}

// TestDebugFlightServesRecentRequests: after a mix of successful checks
// and a budget-limited one, /debug/flight returns the recent records in
// order, with the taxonomy outcome, mode/strategy and per-phase millis
// filled in — including the post-LimitError entry.
func TestDebugFlightServesRecentRequests(t *testing.T) {
	srv, _, _ := obsServer(t, Options{
		CacheSize:  8,
		FlightSize: 8,
	})
	body := exampleBody(t, srv)
	var out CheckResponse
	if resp := postJSON(t, srv.URL+"/check", body, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("/check status %d", resp.StatusCode)
	}

	doc := getFlight(t, srv)
	if doc.Capacity != 8 {
		t.Errorf("capacity = %d, want 8", doc.Capacity)
	}
	if len(doc.Records) == 0 {
		t.Fatal("/debug/flight has no records after a /check")
	}
	rec := doc.Records[len(doc.Records)-1]
	if rec.Path != "/check" || rec.Status != http.StatusOK || rec.Outcome != "ok" {
		t.Errorf("record = %+v, want /check 200 ok", rec)
	}
	if rec.RequestID != out.RequestID {
		t.Errorf("record requestId = %q, response requestId = %q", rec.RequestID, out.RequestID)
	}
	if rec.Mode == "" || rec.Strategy == "" {
		t.Errorf("record missing mode/strategy: %+v", rec)
	}
	if rec.CacheTier == "" {
		t.Errorf("record missing cache tier: %+v", rec)
	}
	if len(rec.PhaseMs) == 0 {
		t.Errorf("record has no per-phase millis: %+v", rec)
	}
	if rec.Span == nil || len(rec.Span.Children) == 0 {
		t.Errorf("record has no span tree: %+v", rec.Span)
	}
}

// TestDebugFlightRecordsLimitError: a budget-exhausted /check still
// lands in the ring, tagged with its budget taxonomy reason.
func TestDebugFlightRecordsLimitError(t *testing.T) {
	srv, _, _ := obsServer(t, Options{
		FlightSize: 4,
		Limits:     core.Limits{MaxDeltaOps: 1},
	})
	resp := postJSON(t, srv.URL+"/check", exampleBody(t, srv), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/check status = %d, want 503", resp.StatusCode)
	}

	doc := getFlight(t, srv)
	var limited *obs.FlightRecord
	for i := range doc.Records {
		if doc.Records[i].Path == "/check" && doc.Records[i].Status == http.StatusServiceUnavailable {
			limited = &doc.Records[i]
		}
	}
	if limited == nil {
		t.Fatalf("no 503 /check record in ring: %+v", doc.Records)
	}
	if limited.Outcome != "budget:delta-ops" {
		t.Errorf("outcome = %q, want budget:delta-ops", limited.Outcome)
	}
}

// TestFlightDumpOnBudgetExhaustion: exhausting a budget auto-dumps the
// ring to the configured path, and the dump contains the triggering
// request's own record.
func TestFlightDumpOnBudgetExhaustion(t *testing.T) {
	dumpPath := filepath.Join(t.TempDir(), "flight.json")
	srv, _, _ := obsServer(t, Options{
		FlightSize:     4,
		FlightDumpPath: dumpPath,
		Limits:         core.Limits{MaxDeltaOps: 1},
	})
	if resp := postJSON(t, srv.URL+"/check", exampleBody(t, srv), nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/check status = %d, want 503", resp.StatusCode)
	}
	raw, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatalf("no crash dump written: %v", err)
	}
	var doc flightDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if doc.Reason != "budget:delta-ops" {
		t.Errorf("dump reason = %q, want budget:delta-ops", doc.Reason)
	}
	found := false
	for _, rec := range doc.Records {
		if rec.Outcome == "budget:delta-ops" {
			found = true
		}
	}
	if !found {
		t.Errorf("dump lacks the triggering request's record: %+v", doc.Records)
	}
}

// TestFlightDumpOnPanic: an injected panic in the check pipeline is
// recovered into a JSON 500 and the flight ring is dumped with reason
// "panic", the dumped record carrying the failing request.
func TestFlightDumpOnPanic(t *testing.T) {
	dumpPath := filepath.Join(t.TempDir(), "flight.json")
	faults := faultinject.NewSet(1)
	faults.ArmPanic("service.check", faultinject.Always(), "injected crash")
	srv, _, _ := obsServer(t, Options{
		FlightSize:     4,
		FlightDumpPath: dumpPath,
		Faults:         faults,
	})

	var e errorResponse
	resp := postJSON(t, srv.URL+"/check", exampleBody(t, srv), &e)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("/check status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(e.Error, "injected crash") {
		t.Errorf("error = %q, should mention the injected panic", e.Error)
	}

	raw, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatalf("no crash dump written after panic: %v", err)
	}
	var doc flightDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if doc.Reason != "panic" {
		t.Errorf("dump reason = %q, want panic", doc.Reason)
	}
	if len(doc.Records) == 0 {
		t.Fatal("dump has no records")
	}
	last := doc.Records[len(doc.Records)-1]
	if last.Outcome != "panic" || last.Status != http.StatusInternalServerError {
		t.Errorf("dumped record = %+v, want outcome panic status 500", last)
	}

	// The server must keep serving, and later requests must not dump.
	faults.Disarm("service.check")
	if resp := postJSON(t, srv.URL+"/check", exampleBody(t, srv), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic: status = %d, want 200", resp.StatusCode)
	}
}

// TestDebugFlightAbsentWhenDisabled: without FlightSize the endpoint
// must not exist — no accidental always-on debug surface.
func TestDebugFlightAbsentWhenDisabled(t *testing.T) {
	srv, _, _ := obsServer(t, Options{})
	resp, err := http.Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/flight status = %d, want 404 when disabled", resp.StatusCode)
	}
}

// TestCheckTraceOptIn: a /check with "trace": true returns the span
// tree of its own execution; without the flag no trace block appears.
func TestCheckTraceOptIn(t *testing.T) {
	srv, _, _ := obsServer(t, Options{CacheSize: 8})
	body := exampleBody(t, srv)

	var plain CheckResponse
	if resp := postJSON(t, srv.URL+"/check", body, &plain); resp.StatusCode != http.StatusOK {
		t.Fatalf("/check status %d", resp.StatusCode)
	}
	if plain.Trace != nil {
		t.Errorf("trace block present without opt-in: %+v", plain.Trace)
	}

	body.Trace = true
	var traced CheckResponse
	if resp := postJSON(t, srv.URL+"/check", body, &traced); resp.StatusCode != http.StatusOK {
		t.Fatalf("/check status %d", resp.StatusCode)
	}
	if traced.Trace == nil {
		t.Fatal("no trace block despite \"trace\": true")
	}
	if len(traced.Trace.Children) == 0 {
		t.Errorf("trace has no child spans: %+v", traced.Trace)
	}
	if traced.Trace.Millis < 0 {
		t.Errorf("trace root duration = %v, want >= 0", traced.Trace.Millis)
	}
}

// TestCheckTraceWithoutServerSpan: trace opt-in must work even on a
// bare handler with neither logging nor flight recording enabled,
// where runCheck creates its own local root span.
func TestCheckTraceWithoutServerSpan(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{}))
	t.Cleanup(srv.Close)
	req := exampleRequest(t, srv)
	req.Trace = true
	var out CheckResponse
	if resp := postJSON(t, srv.URL+"/check", req, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("/check status %d", resp.StatusCode)
	}
	if out.Trace == nil || len(out.Trace.Children) == 0 {
		t.Fatalf("bare-handler trace = %+v, want a populated span tree", out.Trace)
	}
}
