package service

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// newService spins up a Service-backed test server so tests can reach
// the operational controls (draining, persist tier).
func newService(t *testing.T, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := NewService(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv
}

func TestDrainingAnswers503WithRetryAfter(t *testing.T) {
	svc, srv := newService(t, Options{CacheSize: 4})
	req := exampleRequest(t, srv)

	svc.SetDraining(true)
	var errResp errorResponse
	resp := postJSON(t, srv.URL+"/check", req, &errResp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /check status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 missing Retry-After")
	}
	if errResp.Reason != "draining" || errResp.RetryAfter == 0 {
		t.Fatalf("draining error envelope = %+v", errResp)
	}
	// /lint drains too; /healthz keeps answering (the LB needs it).
	if resp := postJSON(t, srv.URL+"/lint", LintRequest{DTS: "/ { };"}, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /lint status = %d, want 503", resp.StatusCode)
	}
	var health map[string]interface{}
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining /healthz status = %d", resp.StatusCode)
	}
	if health["status"] != "draining" || health["draining"] != true {
		t.Fatalf("draining health = %v", health)
	}

	// The switch is reversible: a cancelled shutdown resumes serving.
	svc.SetDraining(false)
	var out CheckResponse
	if resp := postJSON(t, srv.URL+"/check", req, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain /check status = %d", resp.StatusCode)
	}
	if !out.OK {
		t.Fatal("post-drain check did not pass")
	}
}

func TestForcedDegradeShedsToLintOnly(t *testing.T) {
	_, srv := newService(t, Options{CacheSize: 4, Degrade: DegradeForce})
	req := exampleRequest(t, srv)
	var out CheckResponse
	resp := postJSON(t, srv.URL+"/check", req, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/check status = %d", resp.StatusCode)
	}
	if out.Degraded != "lint-only" {
		t.Fatalf("degraded marker = %q, want lint-only", out.Degraded)
	}
	if resp.Header.Get("X-Llhsc-Degraded") != "lint-only" {
		t.Fatal("X-Llhsc-Degraded header missing")
	}
	// The solver-heavy families never ran: only syntactic stats exist.
	if out.Stats == nil {
		t.Fatal("no stats in response")
	}
	for name := range out.Stats.Families {
		switch name {
		case "syntactic", "allocation":
		default:
			t.Fatalf("lint-only run executed family %q", name)
		}
	}
	var health map[string]interface{}
	getJSON(t, srv.URL+"/healthz", &health)
	deg, ok := health["degrade"].(map[string]interface{})
	if !ok {
		t.Fatalf("healthz missing degrade section: %v", health)
	}
	if deg["mode"] != "force" || deg["active"] != true || deg["shed_requests"].(float64) < 1 {
		t.Fatalf("degrade health = %v", deg)
	}
}

func TestDegradeAbsentFromHealthWhenOff(t *testing.T) {
	_, srv := newService(t, Options{CacheSize: 4})
	var health map[string]interface{}
	getJSON(t, srv.URL+"/healthz", &health)
	for _, field := range []string{"degrade", "persistCache", "draining"} {
		if _, ok := health[field]; ok {
			t.Fatalf("healthz leaks %q with the feature off: %v", field, health)
		}
	}
}

// The controller's dwell/hysteresis state machine, with a hand-driven
// clock: saturation must persist before shedding starts, recovery
// requires a sustained calm period, and the middle band holds state.
func TestAutoDegradeDwellAndHysteresis(t *testing.T) {
	d := newDegradeController(DegradeAuto, 2*time.Second, 5*time.Second)
	now := time.Unix(0, 0)
	d.now = func() time.Time { return now }
	tick := func(inflight int, dt time.Duration) {
		now = now.Add(dt)
		d.observe(inflight, 10)
	}

	tick(10, 0) // saturated, streak starts
	tick(10, time.Second)
	if d.peek() {
		t.Fatal("degraded before the enter dwell elapsed")
	}
	tick(3, time.Second) // blip: streak resets
	tick(10, time.Second)
	tick(10, time.Second)
	if d.peek() {
		t.Fatal("saturation streak survived a calm blip")
	}
	tick(10, time.Second) // 2s continuous saturation reached
	if !d.peek() {
		t.Fatal("sustained saturation did not engage shedding")
	}
	if !d.active() {
		t.Fatal("active() disagrees with peek()")
	}

	// Middle band (above half capacity, below full): shedding holds.
	tick(7, time.Second)
	tick(7, 10*time.Second)
	if !d.peek() {
		t.Fatal("middle-band occupancy ended shedding without a calm dwell")
	}

	// Calm begins, but a saturation spike resets the streak; recovery
	// needs a full exit dwell of uninterrupted calm after it.
	tick(2, time.Second)
	tick(2, 3*time.Second)
	tick(10, time.Second) // spike: calm streak back to zero
	tick(2, time.Second)
	tick(2, 3*time.Second) // 4s calm since the spike — not enough
	if !d.peek() {
		t.Fatal("recovered although calm was interrupted by a spike")
	}
	tick(2, 2*time.Second) // 6s calm: exit dwell satisfied
	if d.peek() {
		t.Fatal("sustained calm did not end shedding")
	}
	st := d.stats()
	if st.Mode != "auto" || st.Entries != 1 {
		t.Fatalf("controller stats = %+v", st)
	}
}

func TestAutoDegradeNeverEngagesWithoutSemaphore(t *testing.T) {
	d := newDegradeController(DegradeAuto, time.Millisecond, time.Millisecond)
	now := time.Unix(0, 0)
	d.now = func() time.Time { return now }
	for i := 0; i < 100; i++ {
		now = now.Add(time.Second)
		d.observe(50, 0) // MaxInFlight unset: no saturation signal
	}
	if d.peek() {
		t.Fatal("auto mode engaged with no in-flight bound configured")
	}
}

func TestServicePersistTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opts := Options{CacheSize: 8, CacheDir: dir}

	svc, srv := newService(t, opts)
	req := exampleRequest(t, srv)
	var out CheckResponse
	if resp := postJSON(t, srv.URL+"/check", req, &out); resp.StatusCode != http.StatusOK || !out.OK {
		t.Fatalf("first /check = %d ok=%v", resp.StatusCode, out.OK)
	}
	var health map[string]interface{}
	getJSON(t, srv.URL+"/healthz", &health)
	tier, ok := health["persistCache"].(map[string]interface{})
	if !ok {
		t.Fatalf("healthz missing persistCache: %v", health)
	}
	if tier["disk_writes"].(float64) == 0 {
		t.Fatalf("no write-through recorded: %v", tier)
	}
	srv.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// New process, same cache dir: the first check must hit disk
	// instead of re-solving.
	svc2, err := NewService(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(svc2)
	defer func() {
		srv2.Close()
		svc2.Close()
	}()
	var out2 CheckResponse
	if resp := postJSON(t, srv2.URL+"/check", req, &out2); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm /check status = %d", resp.StatusCode)
	}
	if !out2.OK || out2.Stats == nil || out2.Stats.CacheHits == 0 {
		t.Fatalf("warm restart did not hit the persistent tier: ok=%v stats=%+v", out2.OK, out2.Stats)
	}
	getJSON(t, srv2.URL+"/healthz", &health)
	tier = health["persistCache"].(map[string]interface{})
	if tier["disk_hits"].(float64) == 0 {
		t.Fatalf("warm restart served no disk hits: %v", tier)
	}
	// Verdicts must match the cold run exactly.
	if out2.Platform.DTS != out.Platform.DTS || len(out2.VMs) != len(out.VMs) {
		t.Fatal("warm-restart response diverged from the cold run")
	}
}

func TestNewHandlerFallsBackToMemoryOnBadCacheDir(t *testing.T) {
	// A file where the cache directory should be makes Open fail;
	// NewHandler must degrade to memory-only instead of failing.
	dir := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(dir, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(Options{CacheSize: 4, CacheDir: dir})
	srv := httptest.NewServer(h)
	defer srv.Close()
	var health map[string]interface{}
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	if _, ok := health["persistCache"]; ok {
		t.Fatal("broken cache dir still produced a persistent tier")
	}
	if _, ok := health["checkCache"]; !ok {
		t.Fatal("memory cache lost in the fallback")
	}
}
