// Request-level observability: X-Request-ID correlation, per-endpoint
// latency metrics, and structured JSON-lines request logging with
// per-phase durations. Everything here is optional — with no Registry
// and no LogWriter configured the middleware only assigns request IDs.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"llhsc/internal/obs"
)

// serviceMetrics are the llhsc_service_* families.
type serviceMetrics struct {
	requestSeconds *obs.HistogramVec // latency by endpoint and status class
	requests       *obs.CounterVec   // completed requests by endpoint and status class
	inflight       *obs.Gauge
}

func newServiceMetrics(reg *obs.Registry) *serviceMetrics {
	return &serviceMetrics{
		requestSeconds: reg.NewHistogramVec("llhsc_service_request_seconds",
			"Request latency by endpoint and status class.", nil, "endpoint", "class"),
		requests: reg.NewCounterVec("llhsc_service_requests_total",
			"Completed requests by endpoint and status class.", "endpoint", "class"),
		inflight: reg.NewGauge("llhsc_service_inflight_requests",
			"Requests currently being served."),
	}
}

// reqScope is the per-request observability state carried in the
// context: the correlation ID, the request's root span (nil unless
// logging or tracing is enabled), the last phase/reason a handler
// recorded before answering, and the check annotations (mode,
// strategy, cache tier, stats) the flight record picks up.
type reqScope struct {
	id   string
	span *obs.Span

	mu        sync.Mutex
	phase     string
	reason    string
	mode      string
	strategy  string
	cacheTier string
	stats     any
}

type scopeKey struct{}

func scopeFrom(ctx context.Context) *reqScope {
	sc, _ := ctx.Value(scopeKey{}).(*reqScope)
	return sc
}

// markPhase records how far a request got; the final value is what a
// non-2xx log line reports as the phase reached.
func markPhase(ctx context.Context, phase string) {
	if sc := scopeFrom(ctx); sc != nil {
		sc.mu.Lock()
		sc.phase = phase
		sc.mu.Unlock()
	}
}

// markReason records a precise taxonomy reason (e.g. "budget:conflicts")
// for the request's log line; without one the logger derives a generic
// class from the status code.
func markReason(ctx context.Context, reason string) {
	if sc := scopeFrom(ctx); sc != nil {
		sc.mu.Lock()
		sc.reason = reason
		sc.mu.Unlock()
	}
}

// markCheck records the check request's resolved mode and semantic
// strategy for its flight record.
func markCheck(ctx context.Context, mode, strategy string) {
	if sc := scopeFrom(ctx); sc != nil {
		sc.mu.Lock()
		sc.mode, sc.strategy = mode, strategy
		sc.mu.Unlock()
	}
}

// markCheckOutcome records how a finished check was served (cache tier)
// and its work summary for its flight record.
func markCheckOutcome(ctx context.Context, cacheTier string, stats any) {
	if sc := scopeFrom(ctx); sc != nil {
		sc.mu.Lock()
		sc.cacheTier, sc.stats = cacheTier, stats
		sc.mu.Unlock()
	}
}

// requestIDFallback feeds IDs when the system randomness source fails.
var requestIDFallback atomic.Uint64

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", requestIDFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// endpointLabel bounds the endpoint label to the known routes so a
// path-scanning client cannot grow the metric family without limit.
func endpointLabel(path string) string {
	switch path {
	case "/check", "/lint", "/healthz", "/example", "/metrics":
		return path
	}
	return "other"
}

// statusClass folds a status code to its class ("2xx", "4xx", ...).
func statusClass(status int) string {
	return fmt.Sprintf("%dxx", status/100)
}

// reasonForStatus is the generic taxonomy class logged for a non-2xx
// response when no handler recorded a more precise reason (see the
// package comment's error taxonomy).
func reasonForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad-request"
	case http.StatusNotFound:
		return "not-found"
	case http.StatusMethodNotAllowed:
		return "method-not-allowed"
	case http.StatusRequestTimeout:
		return "request-timeout"
	case http.StatusRequestEntityTooLarge:
		return "too-large"
	case http.StatusUnprocessableEntity:
		return "unprocessable"
	case http.StatusTooManyRequests:
		return "overloaded"
	case http.StatusInternalServerError:
		return "internal"
	case http.StatusServiceUnavailable:
		return "unknown-budget"
	}
	return statusClass(status)
}

// jsonLogger writes one JSON object per line; the mutex keeps lines
// atomic under concurrent requests.
type jsonLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// logLine is the shape of one request log record.
type logLine struct {
	Time       string             `json:"time"`
	Level      string             `json:"level"`
	RequestID  string             `json:"requestId"`
	Method     string             `json:"method"`
	Path       string             `json:"path"`
	Status     int                `json:"status"`
	Class      string             `json:"class"`
	DurationMs float64            `json:"durationMs"`
	Phase      string             `json:"phase,omitempty"`
	Reason     string             `json:"reason,omitempty"`
	PhaseMs    map[string]float64 `json:"phaseMs,omitempty"`
}

func (l *jsonLogger) log(line logLine) {
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(append(buf, '\n'))
}

// observe is the outermost middleware: it assigns the X-Request-ID,
// installs the request scope (and, when logging or the flight recorder
// is enabled, a root span the pipeline hangs its phase spans off),
// tracks latency and in-flight metrics, emits exactly one structured
// log line per request — for non-2xx responses including the phase
// reached and the taxonomy class — and files the request's flight
// record.
func (s *server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		sc := &reqScope{id: id}
		ctx := context.WithValue(r.Context(), scopeKey{}, sc)
		if s.logger != nil || s.flight != nil {
			sc.span = obs.NewSpan("request")
			ctx = obs.ContextWithSpan(ctx, sc.span)
		}
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w}
		if s.metrics != nil {
			s.metrics.inflight.Inc()
			defer s.metrics.inflight.Dec()
		}
		next.ServeHTTP(rec, r.WithContext(ctx))
		elapsed := time.Since(start)
		status := rec.status()
		if s.metrics != nil {
			ep, class := endpointLabel(r.URL.Path), statusClass(status)
			s.metrics.requestSeconds.With(ep, class).Observe(elapsed.Seconds())
			s.metrics.requests.With(ep, class).Inc()
		}
		if sc.span != nil {
			sc.span.End()
		}
		if s.logger != nil {
			s.logger.log(requestLogLine(r, sc, status, elapsed, start))
		}
		if s.flight != nil {
			s.recordFlight(r, sc, status, elapsed, start)
		}
	})
}

// recordFlight captures one finished request into the flight ring and,
// when the request ended in a panic or a budget-limit stop, dumps the
// ring — including this record — to the configured crash-dump file.
func (s *server) recordFlight(r *http.Request, sc *reqScope, status int, elapsed time.Duration, start time.Time) {
	sc.mu.Lock()
	reason := sc.reason
	rec := obs.FlightRecord{
		Time:       start.UTC().Format(time.RFC3339Nano),
		RequestID:  sc.id,
		Method:     r.Method,
		Path:       r.URL.Path,
		Status:     status,
		Mode:       sc.mode,
		Strategy:   sc.strategy,
		CacheTier:  sc.cacheTier,
		DurationMs: float64(elapsed) / float64(time.Millisecond),
		Stats:      sc.stats,
	}
	sc.mu.Unlock()
	rec.Outcome = reason
	if rec.Outcome == "" {
		if status >= 300 {
			rec.Outcome = reasonForStatus(status)
		} else {
			rec.Outcome = "ok"
		}
	}
	rec.PhaseMs = topLevelPhaseMillis(sc.span)
	if sc.span != nil {
		sn := sc.span.Snapshot()
		rec.Span = &sn
	}
	s.flight.Record(rec)
	if rec.Outcome == "panic" || strings.HasPrefix(rec.Outcome, "budget:") {
		s.flight.Dump(rec.Outcome, "")
	}
}

// requestLogLine assembles the log record for one finished request.
func requestLogLine(r *http.Request, sc *reqScope, status int, elapsed time.Duration, start time.Time) logLine {
	sc.mu.Lock()
	phase, reason := sc.phase, sc.reason
	sc.mu.Unlock()
	line := logLine{
		Time:       start.UTC().Format(time.RFC3339Nano),
		Level:      "info",
		RequestID:  sc.id,
		Method:     r.Method,
		Path:       r.URL.Path,
		Status:     status,
		Class:      statusClass(status),
		DurationMs: float64(elapsed) / float64(time.Millisecond),
		PhaseMs:    topLevelPhaseMillis(sc.span),
	}
	if status >= 300 {
		line.Level = "error"
		line.Phase = phase
		if line.Phase == "" {
			line.Phase = "admission" // rejected before any handler phase
		}
		line.Reason = reason
		if line.Reason == "" {
			line.Reason = reasonForStatus(status)
		}
	}
	return line
}

// topLevelPhaseMillis flattens the request span's direct children
// (allocation, vm:<name>, platform, baogen, ...) into a name→duration
// map for the log line.
func topLevelPhaseMillis(span *obs.Span) map[string]float64 {
	if span == nil {
		return nil
	}
	sn := span.Snapshot()
	if len(sn.Children) == 0 {
		return nil
	}
	out := make(map[string]float64, len(sn.Children))
	for _, c := range sn.Children {
		out[c.Name] += c.Millis
	}
	return out
}
