// Package service exposes the llhsc pipeline as an HTTP API, mirroring
// the paper's artifact: "Our llhsc checker was initially designed as a
// tool but has since evolved into a cloud service" (Section V). The
// service accepts a product line (core DTS, includes, deltas, feature
// model, per-VM selections) and returns the full check report plus the
// generated artifacts.
//
// Endpoints:
//
//	GET  /healthz   liveness probe
//	GET  /example   the paper's running example as a ready-made request
//	POST /check     run the pipeline; body and response are JSON
//	POST /lint      check a single DTS (structural + optional semantic)
//
// Error taxonomy (see README.md "Operational limits & failure modes"):
//
//	400  malformed JSON / missing fields
//	408  the per-request timeout expired (Options.RequestTimeout)
//	413  body, source size or nesting depth over the configured limit
//	422  input parsed but is not a valid product line
//	429  too many requests in flight (Options.MaxInFlight); retry later
//	500  a handler panicked; the panic is isolated and serving continues
//	503  a solver/delta budget was exhausted (the answer is Unknown), or
//	     the service is draining ahead of shutdown
//
// Every 429 and 503 carries a Retry-After header (and the same value
// as retryAfterSeconds in the JSON error envelope): these conditions
// are transient by construction — overload clears, budgets are
// per-request, draining ends with the restart — so clients and load
// balancers are told to come back rather than fail the workload.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"llhsc/internal/buildinfo"
	"llhsc/internal/checkcache"
	"llhsc/internal/checkcache/persist"
	"llhsc/internal/constraints"
	"llhsc/internal/core"
	"llhsc/internal/faultinject"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/dts/preproc"
	"llhsc/internal/featmodel"
	"llhsc/internal/obs"
	"llhsc/internal/runningexample"
	"llhsc/internal/sat"
	"llhsc/internal/schema"
)

// Options configures the hardened handler. The zero value imposes no
// timeout, no concurrency bound, and only the default body-size cap.
type Options struct {
	// RequestTimeout bounds the wall-clock time of one /check or /lint
	// request (0 = unlimited). An expired request answers 408.
	RequestTimeout time.Duration
	// MaxInFlight bounds the number of /check and /lint requests served
	// concurrently (0 = unlimited). Excess requests answer 429 with a
	// Retry-After hint instead of queueing without bound.
	MaxInFlight int
	// MaxBodyBytes caps the request body (default 4 MiB).
	MaxBodyBytes int64
	// MaxNodeDepth caps DTS node nesting (0 = the dts default).
	MaxNodeDepth int
	// Limits bounds each pipeline run (solver budgets, delta op cap)
	// and sets the per-request check parallelism.
	Limits core.Limits
	// CacheSize is the capacity (in trees) of the shared
	// content-addressed check-result cache (0 = disabled). Hit, miss
	// and eviction counters surface on GET /healthz.
	CacheSize int
	// CacheDir, when non-empty, layers a crash-safe persistent tier
	// (internal/checkcache/persist) under the in-memory cache: results
	// survive restarts, guarded by a circuit breaker that falls back to
	// memory-only mode while the disk misbehaves. Requires CacheSize >
	// 0. Use NewService to observe open errors; NewHandler degrades to
	// memory-only if the directory cannot be opened.
	CacheDir string
	// CacheMaxBytes caps the persistent tier's total on-disk size
	// (0 = the persist package default).
	CacheMaxBytes int64
	// Degrade selects overload shedding for /check: "" or "off"
	// (never), "auto" (shed to lint-only checking while the in-flight
	// semaphore stays saturated past a dwell threshold), "force" (shed
	// every request; an operator switch). See internal/service/degrade.go.
	Degrade string
	// DegradeEnterAfter / DegradeExitAfter tune auto mode's dwell
	// thresholds (defaults 2s / 5s).
	DegradeEnterAfter time.Duration
	DegradeExitAfter  time.Duration
	// SemanticStrategy selects how the semantic checker discharges
	// region-overlap queries (sweep by default; the -semantic-strategy
	// server flag).
	SemanticStrategy constraints.SemanticStrategy
	// Mode is the default checking mode for /check (enumerate by
	// default; the -mode server flag). A request's "mode" field
	// overrides it per call.
	Mode core.Mode
	// Registry, when non-nil, enables metrics: per-endpoint latency
	// histograms, the in-flight gauge, pipeline solver counters and the
	// check-cache counters all register on it, and the handler serves
	// the registry as GET /metrics.
	Registry *obs.Registry
	// LogWriter, when non-nil, receives one structured JSON line per
	// request (request ID, status, duration, per-phase millis; non-2xx
	// lines additionally carry the phase reached and the taxonomy
	// class). Typically os.Stderr.
	LogWriter io.Writer
	// FlightSize, when > 0, enables the flight recorder: a ring buffer
	// keeping the last FlightSize completed requests (ID, mode,
	// strategy, per-phase millis, span tree, stats, taxonomy outcome),
	// served as JSON on GET /debug/flight to loopback peers and dumped
	// to FlightDumpPath when a request ends in a panic or a
	// budget-limit stop (the -flight-size server flag).
	FlightSize int
	// FlightDumpPath is the file flight-recorder crash dumps write to
	// ("" = record in memory only, never dump).
	FlightDumpPath string
	// SlowQueryMs, when > 0, enables the solver slow-query log: every
	// semantic pair decision and lifted reachability query is counted,
	// and queries at or over the threshold emit a structured warn line
	// on LogWriter plus — with SlowQueryBundleDir set — a self-contained
	// reproducer bundle `llhsc replay` can re-execute offline.
	SlowQueryMs float64
	// SlowQueryBundleDir is the directory slow-query reproducer bundles
	// are written to ("" = log lines only).
	SlowQueryBundleDir string
	// Faults, when non-nil, arms fault-injection points on the request
	// path (the "service.check" point fires at the top of every /check
	// pipeline run). Chaos tests use it to drive panics and errors
	// through the real handler stack; production deployments leave it
	// nil.
	Faults *faultinject.Set
}

const defaultMaxBodyBytes = 4 << 20

// retryAfterSeconds is the hint sent with 429/503 responses.
const retryAfterSeconds = 1

// CheckRequest is the JSON body of POST /check.
type CheckRequest struct {
	// CoreDTS is the core-module DeviceTree source (Listing 1).
	CoreDTS string `json:"coreDts"`
	// Includes maps include names to contents (e.g. "cpus.dtsi"),
	// serving both dtc-style /include/ and, when preprocessing is on,
	// cpp-style #include directives.
	Includes map[string]string `json:"includes,omitempty"`
	// Defines are cpp macro definitions applied before parsing, like
	// -D on the llhsc command line. Any definition implies Preprocess.
	Defines map[string]string `json:"defines,omitempty"`
	// Preprocess runs the core DTS through the cpp-style preprocessor
	// (#include/#define/#ifdef), with Includes as the include search
	// space and diagnostics mapped back to the original lines.
	Preprocess bool `json:"preprocess,omitempty"`
	// Deltas is the delta-module source (Listing 4 syntax).
	Deltas string `json:"deltas"`
	// FeatureModel is the textual feature model (Fig. 1a).
	FeatureModel string `json:"featureModel"`
	// VMs selects the features of each VM product; abstract ancestors
	// are implied automatically.
	VMs [][]string `json:"vms"`
	// Mode overrides the server's default checking mode for this
	// request: "enumerate" (per-product) or "lifted" (whole product
	// line in one solver session). Empty keeps the server default;
	// anything else answers 400.
	Mode string `json:"mode,omitempty"`
	// Trace opts this request into returning its span tree: the
	// response's "trace" block carries the per-phase timing hierarchy
	// the pipeline recorded (the same tree `llhsc check -trace-json`
	// exports in Chrome trace-event form).
	Trace bool `json:"trace,omitempty"`
}

// Violation is the JSON form of a constraint violation.
type Violation struct {
	Path     string `json:"path,omitempty"`
	Property string `json:"property,omitempty"`
	Rule     string `json:"rule"`
	Message  string `json:"message"`
	Delta    string `json:"delta,omitempty"`
}

// LiftedFinding is the JSON form of one family-based finding: a
// violation that some valid configuration of the product line
// exhibits, together with that witness configuration (sorted feature
// names). Only lifted-mode responses carry these.
type LiftedFinding struct {
	Family    string    `json:"family"`
	Violation Violation `json:"violation"`
	Config    []string  `json:"config"`
}

// VMResult is the JSON form of one VM's outcome.
type VMResult struct {
	Name       string      `json:"name"`
	Deltas     []string    `json:"deltas"`
	DTS        string      `json:"dts"`
	Violations []Violation `json:"violations,omitempty"`
}

// CheckResponse is the JSON response of POST /check.
type CheckResponse struct {
	OK         bool        `json:"ok"`
	Allocation []Violation `json:"allocation,omitempty"`
	// Lifted carries the family-based findings of a lifted-mode run;
	// per-VM and platform violation lists stay empty in that mode.
	Lifted   []LiftedFinding `json:"lifted,omitempty"`
	VMs      []VMResult      `json:"vms"`
	Platform VMResult        `json:"platform"`

	PlatformC       string   `json:"platformC,omitempty"`
	ConfigC         string   `json:"configC,omitempty"`
	JailhouseRootC  string   `json:"jailhouseRootC,omitempty"`
	JailhouseCellsC []string `json:"jailhouseCellsC,omitempty"`
	QEMUArgs        []string `json:"qemuArgs,omitempty"`

	// Degraded is "lint-only" when overload shedding skipped the
	// SMT-backed checks for this request: the structural verdict is
	// exact, but absent semantic/memreserve/interrupt violations prove
	// nothing. Also sent as the X-Llhsc-Degraded response header.
	Degraded string `json:"degraded,omitempty"`

	// RequestID echoes the X-Request-ID response header so the report
	// can be correlated with the server's structured log lines.
	RequestID string `json:"requestId,omitempty"`
	// Stats is the run's solver and cache work summary (per checker
	// family), straight from the pipeline.
	Stats *core.RunStats `json:"stats,omitempty"`
	// Trace is the request's span tree, present only when the request
	// set "trace": true.
	Trace *obs.SpanSnapshot `json:"trace,omitempty"`
}

// errorResponse is the JSON error envelope. Reason is a stable
// machine-readable tag for limit stops ("request-timeout",
// "budget:conflicts", "overloaded", ...); RetryAfter is the suggested
// back-off in seconds on 429/503.
type errorResponse struct {
	Error      string `json:"error"`
	Reason     string `json:"reason,omitempty"`
	RetryAfter int    `json:"retryAfterSeconds,omitempty"`
}

// Handler returns the service's HTTP handler with default options.
func Handler() http.Handler { return NewHandler(Options{}) }

// NewHandler returns the service's HTTP handler hardened per opts:
// every endpoint gets panic isolation, and /check + /lint additionally
// get the per-request timeout and the in-flight bound. If CacheDir is
// set but the persistent tier cannot be opened, the handler degrades
// to a memory-only cache (the disk is an optimization, never a
// dependency); use NewService to observe the open error and to manage
// draining and shutdown.
func NewHandler(opts Options) http.Handler {
	svc, err := NewService(opts)
	if err != nil {
		opts.CacheDir = ""
		svc, _ = NewService(opts)
	}
	return svc
}

// Service is the HTTP handler plus its operational controls: the
// draining switch the shutdown path flips before srv.Shutdown, and
// Close for the persistent cache tier.
type Service struct {
	http.Handler
	srv *server
}

// NewService builds the hardened handler and returns it with its
// operational controls. The only error source is opening the
// persistent cache tier (Options.CacheDir).
func NewService(opts Options) (*Service, error) {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = defaultMaxBodyBytes
	}
	s := &server{
		opts:    opts,
		cache:   checkcache.New(opts.CacheSize),
		degrade: newDegradeController(opts.Degrade, opts.DegradeEnterAfter, opts.DegradeExitAfter),
	}
	if opts.CacheDir != "" && s.cache != nil {
		store, err := persist.Open(persist.Options{
			Dir:           opts.CacheDir,
			MaxTotalBytes: opts.CacheMaxBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("service: persistent cache tier: %w", err)
		}
		s.store = store
		s.cache.AttachPersist(store, checkcache.NewBreaker(0, 0, 0))
	}
	if opts.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInFlight)
	}
	if opts.Registry != nil {
		s.metrics = newServiceMetrics(opts.Registry)
		s.pipeMetrics = core.NewPipelineMetrics(opts.Registry)
		buildinfo.Register(opts.Registry)
		s.cache.RegisterMetrics(opts.Registry)
		s.cache.RegisterTierMetrics(opts.Registry)
		opts.Registry.Register("llhsc_service_draining",
			"1 while the service answers 503 ahead of shutdown.", obs.FuncGauge(func() float64 {
				if s.draining.Load() {
					return 1
				}
				return 0
			}))
		if s.degrade != nil {
			opts.Registry.Register("llhsc_service_degraded",
				"1 while /check sheds to lint-only checking under overload.",
				obs.FuncGauge(func() float64 {
					if s.degrade.peek() {
						return 1
					}
					return 0
				}))
			opts.Registry.Register("llhsc_service_shed_requests_total",
				"/check requests answered lint-only by overload shedding.",
				obs.FuncGauge(func() float64 {
					return float64(s.degrade.stats().Shed)
				}))
		}
	}
	if opts.LogWriter != nil {
		s.logger = &jsonLogger{w: opts.LogWriter}
	}
	if opts.FlightSize > 0 {
		s.flight = obs.NewFlightRecorder(opts.FlightSize)
		s.flight.SetDumpPath(opts.FlightDumpPath)
	}
	if opts.SlowQueryMs > 0 {
		s.slowLog = obs.NewSlowQueryLog(opts.LogWriter, opts.SlowQueryMs)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/example", handleExample)
	mux.Handle("/check", s.guard(s.handleCheck))
	mux.Handle("/lint", s.guard(s.handleLint))
	if opts.Registry != nil {
		mux.Handle("/metrics", opts.Registry.Handler())
	}
	if s.flight != nil {
		mux.Handle("/debug/flight", obs.LoopbackOnly(s.flight.Handler()))
	}
	return &Service{Handler: s.observe(recoverPanics(mux)), srv: s}, nil
}

// SetDraining flips the draining switch: while set, /check and /lint
// answer 503 + Retry-After (reason "draining") so load balancers fail
// over, while requests already in flight run to completion. The
// shutdown path sets it just before http.Server.Shutdown.
func (svc *Service) SetDraining(v bool) { svc.srv.draining.Store(v) }

// Draining reports the switch's current position.
func (svc *Service) Draining() bool { return svc.srv.draining.Load() }

// Close releases the persistent cache tier (a no-op without one). Call
// after the HTTP server has shut down — in-flight requests may still
// touch the store.
func (svc *Service) Close() error {
	if svc.srv.store == nil {
		return nil
	}
	return svc.srv.store.Close()
}

type server struct {
	opts     Options
	inflight chan struct{}     // nil = unlimited
	cache    *checkcache.Cache // nil = disabled; shared across requests

	store    *persist.Store     // nil = memory-only cache
	degrade  *degradeController // nil = shedding off
	draining atomic.Bool        // set via Service.SetDraining

	metrics     *serviceMetrics       // nil = no Registry configured
	pipeMetrics *core.PipelineMetrics // nil = no Registry configured
	logger      *jsonLogger           // nil = no LogWriter configured
	flight      *obs.FlightRecorder   // nil = flight recorder disabled
	slowLog     *obs.SlowQueryLog     // nil = slow-query log disabled
}

// FlightRecorder exposes the service's flight recorder (nil when
// Options.FlightSize is 0), so the binary's SIGQUIT handler can dump
// the ring on demand.
func (svc *Service) FlightRecorder() *obs.FlightRecorder { return svc.srv.flight }

// recoverPanics isolates handler panics: the request answers a JSON
// 500 (when nothing has been written yet) and the server keeps
// serving, instead of tearing down the connection.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				// The precise reason makes the request's log line and
				// flight record say "panic" (and triggers the flight
				// recorder's crash dump) instead of the generic class.
				markReason(r.Context(), "panic")
				writeError(w, http.StatusInternalServerError, "internal error: %v", p)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// guard applies the draining gate, the in-flight semaphore and the
// per-request timeout to a heavy endpoint.
func (s *server) guard(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			markPhase(r.Context(), "admission")
			markReason(r.Context(), "draining")
			w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{
				Error:      "service is draining ahead of shutdown",
				Reason:     "draining",
				RetryAfter: retryAfterSeconds,
			})
			return
		}
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				s.degrade.observe(len(s.inflight), cap(s.inflight))
				defer func() { <-s.inflight }()
			default:
				s.degrade.observe(cap(s.inflight), cap(s.inflight))
				markPhase(r.Context(), "admission")
				markReason(r.Context(), "overloaded")
				w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
				writeJSON(w, http.StatusTooManyRequests, errorResponse{
					Error:      fmt.Sprintf("too many requests in flight (limit %d)", s.opts.MaxInFlight),
					Reason:     "overloaded",
					RetryAfter: retryAfterSeconds,
				})
				return
			}
		}
		if s.opts.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	})
}

// writeLimitError maps a limit/cancellation stop to the taxonomy: 408
// when the request's own deadline (or the client hanging up) caused
// it, 503 with a retry hint when a configured budget ran out first.
func writeLimitError(w http.ResponseWriter, r *http.Request, err error) {
	// The solver's wall-clock poll can observe an expired deadline a
	// moment before the request context's own timer fires, so an
	// expired request deadline counts as a request timeout even while
	// r.Context().Err() is still nil.
	requestExpired := r.Context().Err() != nil
	if d, ok := r.Context().Deadline(); ok && !time.Now().Before(d) &&
		errors.Is(err, context.DeadlineExceeded) {
		requestExpired = true
	}
	if requestExpired {
		markReason(r.Context(), "request-timeout")
		writeJSON(w, http.StatusRequestTimeout, errorResponse{
			Error:  fmt.Sprintf("request aborted: %v", err),
			Reason: "request-timeout",
		})
		return
	}
	reason := "budget"
	var lim *sat.LimitError
	var step *delta.StepLimitError
	switch {
	case errors.As(err, &lim):
		reason = "budget:" + lim.Reason
	case errors.As(err, &step):
		reason = "budget:delta-ops"
	}
	markReason(r.Context(), reason)
	w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error:      fmt.Sprintf("check incomplete, result unknown: %v", err),
		Reason:     reason,
		RetryAfter: retryAfterSeconds,
	})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding of our plain structs cannot fail; ignore the writer error
	// (the client has gone away).
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// handleHealthz serializes the health document. Fields beyond the
// baseline {build, status, checkCache} appear only when their feature
// is configured — a memory-only, no-degradation deployment keeps the
// exact health shape it always had (pinned by
// TestHealthzJSONShapeUnchanged).
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]interface{}{"status": "ok", "build": buildinfo.Get()}
	if s.draining.Load() {
		resp["status"] = "draining"
		resp["draining"] = true
	}
	if s.cache != nil {
		resp["checkCache"] = s.cache.Stats()
	}
	if tier := s.cache.Tier(); tier != nil {
		resp["persistCache"] = tier
	}
	if s.degrade != nil {
		resp["degrade"] = s.degrade.stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExample returns the running example as a request body, so
// clients can GET /example and POST the result to /check unchanged.
func handleExample(w http.ResponseWriter, r *http.Request) {
	model, err := runningexample.Model()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, CheckRequest{
		CoreDTS:      runningexample.CoreDTS,
		Includes:     map[string]string{"cpus.dtsi": runningexample.CPUsDTSI},
		Deltas:       runningexample.DeltasSource,
		FeatureModel: model.Format(),
		VMs: [][]string{
			runningexample.VM1Config().Sorted(),
			runningexample.VM2Config().Sorted(),
		},
	})
}

// decodeBody decodes the JSON body under the body-size cap, mapping an
// exceeded cap to 413 and malformed JSON to 400.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		markReason(r.Context(), "body-too-large")
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error:  fmt.Sprintf("request body over %d bytes", tooBig.Limit),
			Reason: "body-too-large",
		})
		return false
	}
	writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
	return false
}

// inputStatus classifies a parse failure: guarded-limit errors are 413
// (the input is too big/deep for this deployment), anything else 422.
func inputStatus(err error) int {
	if errors.Is(err, dts.ErrTooDeep) || errors.Is(err, dts.ErrSourceTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusUnprocessableEntity
}

// parseSource parses one DTS body, routing it through the cpp
// preprocessor when the request asks for it (explicitly or by carrying
// macro definitions). The request's Includes map doubles as the
// preprocessor's include filesystem, and the preprocessor's own size
// budget mirrors the body cap the plain parser gets via parseOpts.
func (s *server) parseSource(file, src string, includes, defines map[string]string, preprocess bool) (*dts.Tree, error) {
	popts := s.parseOpts(dts.MapIncluder(includes))
	if !preprocess && len(defines) == 0 {
		return dts.Parse(file, src, popts...)
	}
	return preproc.Parse(file, src, preproc.Options{
		FS:           preproc.MapFS(includes),
		IncludePaths: []string{"."},
		Defines:      defines,
		MaxBytes:     int(s.opts.MaxBodyBytes),
	}, popts...)
}

func (s *server) parseOpts(inc dts.Includer) []dts.ParseOption {
	opts := []dts.ParseOption{
		dts.WithIncluder(inc),
		// the body cap already bounds one source; includes multiply it,
		// so cap the total at the same order of magnitude
		dts.WithMaxSourceBytes(int(s.opts.MaxBodyBytes)),
	}
	if s.opts.MaxNodeDepth > 0 {
		opts = append(opts, dts.WithMaxNodeDepth(s.opts.MaxNodeDepth))
	}
	return opts
}

func (s *server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	markPhase(r.Context(), "decode")
	var req CheckRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	resp, status, err := s.runCheck(r.Context(), &req)
	if err != nil {
		var le *core.LimitError
		if errors.As(err, &le) {
			markPhase(r.Context(), "pipeline:"+le.Phase)
			writeLimitError(w, r, err)
			return
		}
		writeError(w, status, "%v", err)
		return
	}
	if resp.Degraded != "" {
		w.Header().Set("X-Llhsc-Degraded", resp.Degraded)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) runCheck(ctx context.Context, req *CheckRequest) (*CheckResponse, int, error) {
	if req.CoreDTS == "" || req.Deltas == "" || req.FeatureModel == "" || len(req.VMs) == 0 {
		return nil, http.StatusBadRequest,
			fmt.Errorf("coreDts, deltas, featureModel and vms are all required")
	}
	if s.opts.Faults != nil {
		if err := s.opts.Faults.Fire("service.check"); err != nil {
			return nil, http.StatusInternalServerError, err
		}
	}
	markPhase(ctx, "parse")
	tree, err := s.parseSource("core.dts", req.CoreDTS, req.Includes, req.Defines, req.Preprocess)
	if err != nil {
		return nil, inputStatus(err), fmt.Errorf("core DTS: %w", err)
	}
	deltas, err := delta.Parse("deltas", req.Deltas)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, fmt.Errorf("deltas: %w", err)
	}
	model, err := featmodel.ParseModel("featuremodel", req.FeatureModel)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, fmt.Errorf("feature model: %w", err)
	}
	configs := make([]featmodel.Configuration, len(req.VMs))
	for i, names := range req.VMs {
		cfg := featmodel.ConfigOf(names...)
		for name := range cfg {
			if model.Feature(name) == nil {
				return nil, http.StatusUnprocessableEntity,
					fmt.Errorf("vm %d selects unknown feature %q", i+1, name)
			}
			for p := model.Parent(name); p != nil; p = model.Parent(p.Name) {
				cfg[p.Name] = true
			}
		}
		cfg[model.Root.Name] = true
		configs[i] = cfg
	}

	mode := s.opts.Mode
	if req.Mode != "" {
		mode, err = core.ParseMode(req.Mode)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
	}
	markCheck(ctx, mode.String(), s.opts.SemanticStrategy.String())

	// A trace request needs a span tree even when neither logging nor
	// the flight recorder put one in the context.
	var traceSpan *obs.Span
	if req.Trace && obs.SpanFromContext(ctx) == nil {
		traceSpan = obs.NewSpan("request")
		ctx = obs.ContextWithSpan(ctx, traceSpan)
	}

	markPhase(ctx, "pipeline")
	lintOnly := s.degrade.active()
	pipeline := &core.Pipeline{
		Core:               tree,
		Deltas:             deltas,
		Model:              model,
		Schemas:            schema.StandardSet(),
		VMConfigs:          configs,
		Cache:              s.cache,
		Metrics:            s.pipeMetrics,
		SemanticStrategy:   s.opts.SemanticStrategy,
		Mode:               mode,
		LintOnly:           lintOnly,
		SlowQuery:          s.slowLog,
		SlowQueryBundleDir: s.opts.SlowQueryBundleDir,
	}
	report, err := pipeline.RunContext(ctx, s.opts.Limits)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	markPhase(ctx, "respond")

	stats := report.Stats
	resp := &CheckResponse{
		OK:         report.OK(),
		Stats:      &stats,
		Allocation: toViolations(report.Allocation),
		Lifted:     toLiftedFindings(report.Lifted),
		Platform: VMResult{
			Name:       "platform",
			Deltas:     report.Platform.Trace,
			DTS:        report.Platform.DTS,
			Violations: toViolations(report.Platform.Violations),
		},
		PlatformC:      report.PlatformC,
		ConfigC:        report.ConfigC,
		JailhouseRootC: report.JailhouseRootC,
		// Copied, not aliased: Release clears these two backing arrays
		// when the report shell goes back to its pool below.
		JailhouseCellsC: append([]string(nil), report.JailhouseCellsC...),
		QEMUArgs:        append([]string(nil), report.QEMUArgs...),
	}
	for _, vm := range report.VMs {
		resp.VMs = append(resp.VMs, VMResult{
			Name:       vm.Name,
			Deltas:     vm.Trace,
			DTS:        vm.DTS,
			Violations: toViolations(vm.Violations),
		})
	}
	// Everything the response needs is copied out; recycle the shell.
	report.Release()
	if lintOnly {
		resp.Degraded = "lint-only"
	}
	if sc := scopeFrom(ctx); sc != nil {
		resp.RequestID = sc.id
	}
	markCheckOutcome(ctx, cacheTierOf(stats), &stats)
	if req.Trace {
		span := obs.SpanFromContext(ctx)
		if traceSpan != nil {
			traceSpan.End()
		}
		if span != nil {
			sn := span.Snapshot()
			resp.Trace = &sn
		}
	}
	return resp, http.StatusOK, nil
}

// cacheTierOf folds a run's cache counters into the single tier label
// the flight record carries.
func cacheTierOf(stats core.RunStats) string {
	switch {
	case stats.CacheHits > 0 && stats.CacheMisses == 0:
		return "hit"
	case stats.CacheHits > 0:
		return "mixed"
	case stats.CacheMisses > 0:
		return "miss"
	}
	return "none"
}

// toLiftedFindings copies a lifted-mode report's findings into their
// JSON shape (the witness configuration flattens to its sorted feature
// names). Nothing aliases the report, so Release stays safe.
func toLiftedFindings(fs []constraints.LiftedFinding) []LiftedFinding {
	if len(fs) == 0 {
		return nil
	}
	out := make([]LiftedFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, LiftedFinding{
			Family: f.Family,
			Violation: Violation{
				Path:     f.Violation.Path,
				Property: f.Violation.Property,
				Rule:     f.Violation.Rule,
				Message:  f.Violation.Message,
				Delta:    f.Violation.Origin.Delta,
			},
			Config: f.Config.Sorted(),
		})
	}
	return out
}

func toViolations(vs []constraints.Violation) []Violation {
	out := make([]Violation, 0, len(vs))
	for _, v := range vs {
		out = append(out, Violation{
			Path:     v.Path,
			Property: v.Property,
			Rule:     v.Rule,
			Message:  v.Message,
			Delta:    v.Origin.Delta,
		})
	}
	return out
}

// LintRequest is the JSON body of POST /lint: a single DTS (plus
// includes) checked without a product line.
type LintRequest struct {
	DTS      string            `json:"dts"`
	Includes map[string]string `json:"includes,omitempty"`
	// Defines are cpp macro definitions; any definition implies
	// Preprocess.
	Defines map[string]string `json:"defines,omitempty"`
	// Preprocess runs the DTS through the cpp-style preprocessor
	// before linting, as for /check.
	Preprocess bool `json:"preprocess,omitempty"`
	// Semantic enables the SMT-based overlap/interrupt/memreserve
	// checks in addition to the structural baseline.
	Semantic bool `json:"semantic"`
}

// LintResponse is the JSON response of POST /lint.
type LintResponse struct {
	OK         bool        `json:"ok"`
	Warnings   []string    `json:"warnings,omitempty"`   // dtc-style lint
	Structural []Violation `json:"structural,omitempty"` // dt-schema baseline
	Semantic   []Violation `json:"semantic,omitempty"`   // SMT-based checks
}

func (s *server) handleLint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	markPhase(r.Context(), "decode")
	var req LintRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.DTS == "" {
		writeError(w, http.StatusBadRequest, "dts is required")
		return
	}
	markPhase(r.Context(), "parse")
	tree, err := s.parseSource("input.dts", req.DTS, req.Includes, req.Defines, req.Preprocess)
	if err != nil {
		writeError(w, inputStatus(err), "%v", err)
		return
	}
	markPhase(r.Context(), "lint")
	resp := &LintResponse{}
	for _, lw := range tree.Lint() {
		resp.Warnings = append(resp.Warnings, lw.String())
	}
	for _, v := range schema.StandardSet().Validate(tree) {
		resp.Structural = append(resp.Structural, Violation{
			Path: v.Path, Property: v.Property, Rule: v.SchemaID, Message: v.Message,
		})
	}
	if req.Semantic {
		ctx := r.Context()
		sem := constraints.NewSemanticChecker()
		sem.Budget = s.opts.Limits.Solver
		sem.Strategy = s.opts.SemanticStrategy
		_, semViolations, err := sem.CheckContext(ctx, tree)
		if err != nil {
			writeLimitError(w, r, err)
			return
		}
		irq, err := constraints.InterruptChecker{}.CheckContext(ctx, tree)
		if err != nil {
			writeLimitError(w, r, err)
			return
		}
		mr, err := constraints.MemReserveChecker{}.CheckContext(ctx, tree)
		if err != nil {
			writeLimitError(w, r, err)
			return
		}
		semViolations = append(semViolations, irq...)
		semViolations = append(semViolations, mr...)
		resp.Semantic = toViolations(semViolations)
	}
	resp.OK = len(resp.Warnings) == 0 && len(resp.Structural) == 0 && len(resp.Semantic) == 0
	writeJSON(w, http.StatusOK, resp)
}
