// Package service exposes the llhsc pipeline as an HTTP API, mirroring
// the paper's artifact: "Our llhsc checker was initially designed as a
// tool but has since evolved into a cloud service" (Section V). The
// service accepts a product line (core DTS, includes, deltas, feature
// model, per-VM selections) and returns the full check report plus the
// generated artifacts.
//
// Endpoints:
//
//	GET  /healthz   liveness probe
//	GET  /example   the paper's running example as a ready-made request
//	POST /check     run the pipeline; body and response are JSON
//	POST /lint      check a single DTS (structural + optional semantic)
package service

import (
	"encoding/json"
	"fmt"
	"net/http"

	"llhsc/internal/constraints"
	"llhsc/internal/core"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/runningexample"
	"llhsc/internal/schema"
)

// CheckRequest is the JSON body of POST /check.
type CheckRequest struct {
	// CoreDTS is the core-module DeviceTree source (Listing 1).
	CoreDTS string `json:"coreDts"`
	// Includes maps include names to contents (e.g. "cpus.dtsi").
	Includes map[string]string `json:"includes,omitempty"`
	// Deltas is the delta-module source (Listing 4 syntax).
	Deltas string `json:"deltas"`
	// FeatureModel is the textual feature model (Fig. 1a).
	FeatureModel string `json:"featureModel"`
	// VMs selects the features of each VM product; abstract ancestors
	// are implied automatically.
	VMs [][]string `json:"vms"`
}

// Violation is the JSON form of a constraint violation.
type Violation struct {
	Path     string `json:"path,omitempty"`
	Property string `json:"property,omitempty"`
	Rule     string `json:"rule"`
	Message  string `json:"message"`
	Delta    string `json:"delta,omitempty"`
}

// VMResult is the JSON form of one VM's outcome.
type VMResult struct {
	Name       string      `json:"name"`
	Deltas     []string    `json:"deltas"`
	DTS        string      `json:"dts"`
	Violations []Violation `json:"violations,omitempty"`
}

// CheckResponse is the JSON response of POST /check.
type CheckResponse struct {
	OK         bool        `json:"ok"`
	Allocation []Violation `json:"allocation,omitempty"`
	VMs        []VMResult  `json:"vms"`
	Platform   VMResult    `json:"platform"`

	PlatformC       string   `json:"platformC,omitempty"`
	ConfigC         string   `json:"configC,omitempty"`
	JailhouseRootC  string   `json:"jailhouseRootC,omitempty"`
	JailhouseCellsC []string `json:"jailhouseCellsC,omitempty"`
	QEMUArgs        []string `json:"qemuArgs,omitempty"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP handler.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", handleHealthz)
	mux.HandleFunc("/example", handleExample)
	mux.HandleFunc("/check", handleCheck)
	mux.HandleFunc("/lint", handleLint)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding of our plain structs cannot fail; ignore the writer error
	// (the client has gone away).
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleExample returns the running example as a request body, so
// clients can GET /example and POST the result to /check unchanged.
func handleExample(w http.ResponseWriter, r *http.Request) {
	model, err := runningexample.Model()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, CheckRequest{
		CoreDTS:      runningexample.CoreDTS,
		Includes:     map[string]string{"cpus.dtsi": runningexample.CPUsDTSI},
		Deltas:       runningexample.DeltasSource,
		FeatureModel: model.Format(),
		VMs: [][]string{
			runningexample.VM1Config().Sorted(),
			runningexample.VM2Config().Sorted(),
		},
	})
}

func handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req CheckRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	resp, status, err := runCheck(&req)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func runCheck(req *CheckRequest) (*CheckResponse, int, error) {
	if req.CoreDTS == "" || req.Deltas == "" || req.FeatureModel == "" || len(req.VMs) == 0 {
		return nil, http.StatusBadRequest,
			fmt.Errorf("coreDts, deltas, featureModel and vms are all required")
	}
	includer := dts.MapIncluder(req.Includes)
	tree, err := dts.Parse("core.dts", req.CoreDTS, dts.WithIncluder(includer))
	if err != nil {
		return nil, http.StatusUnprocessableEntity, fmt.Errorf("core DTS: %w", err)
	}
	deltas, err := delta.Parse("deltas", req.Deltas)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, fmt.Errorf("deltas: %w", err)
	}
	model, err := featmodel.ParseModel("featuremodel", req.FeatureModel)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, fmt.Errorf("feature model: %w", err)
	}
	configs := make([]featmodel.Configuration, len(req.VMs))
	for i, names := range req.VMs {
		cfg := featmodel.ConfigOf(names...)
		for name := range cfg {
			if model.Feature(name) == nil {
				return nil, http.StatusUnprocessableEntity,
					fmt.Errorf("vm %d selects unknown feature %q", i+1, name)
			}
			for p := model.Parent(name); p != nil; p = model.Parent(p.Name) {
				cfg[p.Name] = true
			}
		}
		cfg[model.Root.Name] = true
		configs[i] = cfg
	}

	pipeline := &core.Pipeline{
		Core:      tree,
		Deltas:    deltas,
		Model:     model,
		Schemas:   schema.StandardSet(),
		VMConfigs: configs,
	}
	report, err := pipeline.Run()
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}

	resp := &CheckResponse{
		OK:         report.OK(),
		Allocation: toViolations(report.Allocation),
		Platform: VMResult{
			Name:       "platform",
			Deltas:     report.Platform.Trace,
			DTS:        report.Platform.DTS,
			Violations: toViolations(report.Platform.Violations),
		},
		PlatformC:       report.PlatformC,
		ConfigC:         report.ConfigC,
		JailhouseRootC:  report.JailhouseRootC,
		JailhouseCellsC: report.JailhouseCellsC,
		QEMUArgs:        report.QEMUArgs,
	}
	for _, vm := range report.VMs {
		resp.VMs = append(resp.VMs, VMResult{
			Name:       vm.Name,
			Deltas:     vm.Trace,
			DTS:        vm.DTS,
			Violations: toViolations(vm.Violations),
		})
	}
	return resp, http.StatusOK, nil
}

func toViolations(vs []constraints.Violation) []Violation {
	out := make([]Violation, 0, len(vs))
	for _, v := range vs {
		out = append(out, Violation{
			Path:     v.Path,
			Property: v.Property,
			Rule:     v.Rule,
			Message:  v.Message,
			Delta:    v.Origin.Delta,
		})
	}
	return out
}

// LintRequest is the JSON body of POST /lint: a single DTS (plus
// includes) checked without a product line.
type LintRequest struct {
	DTS      string            `json:"dts"`
	Includes map[string]string `json:"includes,omitempty"`
	// Semantic enables the SMT-based overlap/interrupt/memreserve
	// checks in addition to the structural baseline.
	Semantic bool `json:"semantic"`
}

// LintResponse is the JSON response of POST /lint.
type LintResponse struct {
	OK         bool        `json:"ok"`
	Warnings   []string    `json:"warnings,omitempty"`   // dtc-style lint
	Structural []Violation `json:"structural,omitempty"` // dt-schema baseline
	Semantic   []Violation `json:"semantic,omitempty"`   // SMT-based checks
}

func handleLint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req LintRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if req.DTS == "" {
		writeError(w, http.StatusBadRequest, "dts is required")
		return
	}
	tree, err := dts.Parse("input.dts", req.DTS, dts.WithIncluder(dts.MapIncluder(req.Includes)))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := &LintResponse{}
	for _, lw := range tree.Lint() {
		resp.Warnings = append(resp.Warnings, lw.String())
	}
	for _, v := range schema.StandardSet().Validate(tree) {
		resp.Structural = append(resp.Structural, Violation{
			Path: v.Path, Property: v.Property, Rule: v.SchemaID, Message: v.Message,
		})
	}
	if req.Semantic {
		_, semViolations := constraints.NewSemanticChecker().Check(tree)
		semViolations = append(semViolations, constraints.InterruptChecker{}.Check(tree)...)
		semViolations = append(semViolations, constraints.MemReserveChecker{}.Check(tree)...)
		resp.Semantic = toViolations(semViolations)
	}
	resp.OK = len(resp.Warnings) == 0 && len(resp.Structural) == 0 && len(resp.Semantic) == 0
	writeJSON(w, http.StatusOK, resp)
}
