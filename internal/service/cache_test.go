package service

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// cacheStats pulls the checkCache object out of /healthz.
func cacheStats(t *testing.T, srv *httptest.Server) map[string]float64 {
	t.Helper()
	var health struct {
		Status     string             `json:"status"`
		CheckCache map[string]float64 `json:"checkCache"`
	}
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.CheckCache == nil {
		t.Fatal("healthz has no checkCache object although CacheSize > 0")
	}
	return health.CheckCache
}

// TestRepeatedCheckHitsCache verifies the acceptance criterion: posting
// the same product line twice turns the second request's per-tree
// checks into cache hits, observable through the healthz counters.
func TestRepeatedCheckHitsCache(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{CacheSize: 64}))
	t.Cleanup(srv.Close)

	var req CheckRequest
	if resp := getJSON(t, srv.URL+"/example", &req); resp.StatusCode != http.StatusOK {
		t.Fatalf("/example status %d", resp.StatusCode)
	}

	var first CheckResponse
	if resp := postJSON(t, srv.URL+"/check", req, &first); resp.StatusCode != http.StatusOK {
		t.Fatalf("first check status %d", resp.StatusCode)
	}
	after1 := cacheStats(t, srv)
	if after1["misses"] == 0 {
		t.Fatalf("first request recorded no misses: %v", after1)
	}
	if after1["entries"] == 0 {
		t.Fatalf("first request cached nothing: %v", after1)
	}

	var second CheckResponse
	if resp := postJSON(t, srv.URL+"/check", req, &second); resp.StatusCode != http.StatusOK {
		t.Fatalf("second check status %d", resp.StatusCode)
	}
	after2 := cacheStats(t, srv)
	// Every tree of the second run (2 VMs + platform) must be a hit,
	// and no new miss may appear.
	if hits := after2["hits"] - after1["hits"]; hits < 3 {
		t.Errorf("second run produced %v new hits, want >= 3 (stats %v)", hits, after2)
	}
	if after2["misses"] != after1["misses"] {
		t.Errorf("second run re-solved: misses %v -> %v", after1["misses"], after2["misses"])
	}
	if len(second.VMs) != len(first.VMs) {
		t.Fatalf("responses differ in VM count")
	}
	for i := range second.VMs {
		if len(second.VMs[i].Violations) != len(first.VMs[i].Violations) {
			t.Errorf("vm %d: cached violations differ from computed ones", i)
		}
	}
}

// TestConcurrentIdenticalChecksSingleFlight posts the same body from
// many goroutines at once; single-flight must keep the miss count at
// the first run's level plus at most one batch of per-tree computes.
func TestConcurrentIdenticalChecksSingleFlight(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{CacheSize: 64}))
	t.Cleanup(srv.Close)

	var req CheckRequest
	if resp := getJSON(t, srv.URL+"/example", &req); resp.StatusCode != http.StatusOK {
		t.Fatalf("/example status %d", resp.StatusCode)
	}

	const clients = 6
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out CheckResponse
			if resp := postJSON(t, srv.URL+"/check", req, &out); resp.StatusCode != http.StatusOK {
				t.Errorf("check status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	st := cacheStats(t, srv)
	// The example produces 3 distinct trees (vm1, vm2, platform); even
	// with all clients racing, single-flight allows at most one solve
	// per distinct tree.
	if st["misses"] > 3 {
		t.Errorf("misses = %v, want <= 3 under single-flight", st["misses"])
	}
	if st["hits"] < float64(clients-1)*3 {
		t.Errorf("hits = %v, want >= %d", st["hits"], (clients-1)*3)
	}
}

// TestHealthzReportsHitRate: the healthz cache object carries the
// derived hit_rate field, starting at 0 and moving with the counters.
func TestHealthzReportsHitRate(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{CacheSize: 64}))
	t.Cleanup(srv.Close)

	st := cacheStats(t, srv)
	if rate, ok := st["hit_rate"]; !ok || rate != 0 {
		t.Fatalf("fresh cache hit_rate = %v (present=%v), want 0", rate, ok)
	}

	var req CheckRequest
	if resp := getJSON(t, srv.URL+"/example", &req); resp.StatusCode != http.StatusOK {
		t.Fatalf("/example status %d", resp.StatusCode)
	}
	for i := 0; i < 2; i++ {
		if resp := postJSON(t, srv.URL+"/check", req, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("check %d status %d", i, resp.StatusCode)
		}
	}
	st = cacheStats(t, srv)
	total := st["hits"] + st["misses"]
	if total == 0 || st["hit_rate"] != st["hits"]/total {
		t.Errorf("hit_rate = %v, want hits/total = %v (stats %v)", st["hit_rate"], st["hits"]/total, st)
	}
	if st["hit_rate"] <= 0 {
		t.Errorf("hit_rate = %v after a repeated check, want > 0", st["hit_rate"])
	}
}
