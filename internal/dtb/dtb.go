// Package dtb encodes and decodes flattened DeviceTree blobs (FDT /
// .dtb), the binary format produced by the dtc compiler and consumed by
// kernels and hypervisors at boot. Together with internal/dts this
// completes the mini-dtc substrate listed in DESIGN.md §2: parse DTS,
// manipulate the tree, and emit the same artifact a real toolchain
// would hand to the Bao hypervisor.
package dtb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"llhsc/internal/dts"
)

// FDT structure-block tokens.
const (
	tokenBeginNode = 0x1
	tokenEndNode   = 0x2
	tokenProp      = 0x3
	tokenNop       = 0x4
	tokenEnd       = 0x9
)

const (
	magic           = 0xd00dfeed
	version         = 17
	lastCompVersion = 16
	headerSize      = 40
)

// Errors returned by Decode.
var (
	ErrBadMagic  = errors.New("dtb: bad magic")
	ErrTruncated = errors.New("dtb: truncated blob")
)

// Encode serializes the tree as a flattened DeviceTree blob. Phandle
// references (&label) are resolved: every referenced labeled node
// receives a phandle property, and reference cells are replaced by the
// phandle value.
func Encode(t *dts.Tree) ([]byte, error) {
	work := t.Clone()
	if err := resolvePhandles(work); err != nil {
		return nil, err
	}

	var structBlock []byte
	strtab := newStringTable()
	var encodeNode func(n *dts.Node) error
	encodeNode = func(n *dts.Node) error {
		name := n.Name
		if name == "/" {
			name = ""
		}
		structBlock = appendU32(structBlock, tokenBeginNode)
		structBlock = append(structBlock, name...)
		structBlock = append(structBlock, 0)
		structBlock = pad4(structBlock)
		for _, p := range n.Properties {
			data, err := propertyBytes(p.Value)
			if err != nil {
				return fmt.Errorf("property %s of %s: %w", p.Name, n.Name, err)
			}
			structBlock = appendU32(structBlock, tokenProp)
			structBlock = appendU32(structBlock, uint32(len(data)))
			structBlock = appendU32(structBlock, strtab.offset(p.Name))
			structBlock = append(structBlock, data...)
			structBlock = pad4(structBlock)
		}
		for _, c := range n.Children {
			if err := encodeNode(c); err != nil {
				return err
			}
		}
		structBlock = appendU32(structBlock, tokenEndNode)
		return nil
	}
	if err := encodeNode(work.Root); err != nil {
		return nil, err
	}
	structBlock = appendU32(structBlock, tokenEnd)

	// memreserve block (terminated by a zero entry). An all-zero entry
	// is indistinguishable from the terminator, so it is dropped rather
	// than silently truncating the list for any decoder.
	var rsv []byte
	for _, mr := range work.MemReserves {
		if mr.Address == 0 && mr.Size == 0 {
			continue
		}
		rsv = appendU64(rsv, mr.Address)
		rsv = appendU64(rsv, mr.Size)
	}
	rsv = appendU64(rsv, 0)
	rsv = appendU64(rsv, 0)

	strBlock := strtab.bytes()

	offRsv := uint32(headerSize)
	offStruct := offRsv + uint32(len(rsv))
	offStrings := offStruct + uint32(len(structBlock))
	total := offStrings + uint32(len(strBlock))

	out := make([]byte, 0, total)
	out = appendU32(out, magic)
	out = appendU32(out, total)
	out = appendU32(out, offStruct)
	out = appendU32(out, offStrings)
	out = appendU32(out, offRsv)
	out = appendU32(out, version)
	out = appendU32(out, lastCompVersion)
	out = appendU32(out, 0) // boot_cpuid_phys
	out = appendU32(out, uint32(len(strBlock)))
	out = appendU32(out, uint32(len(structBlock)))
	out = append(out, rsv...)
	out = append(out, structBlock...)
	out = append(out, strBlock...)
	return out, nil
}

// Decode parses a flattened DeviceTree blob back into a tree. Labels do
// not exist in the binary format and are therefore absent from the
// result; phandle properties are preserved as plain cells.
func Decode(blob []byte) (*dts.Tree, error) {
	if len(blob) < headerSize {
		return nil, ErrTruncated
	}
	if be32(blob, 0) != magic {
		return nil, ErrBadMagic
	}
	total := int(be32(blob, 4))
	if total > len(blob) {
		return nil, ErrTruncated
	}
	offStruct := int(be32(blob, 8))
	offStrings := int(be32(blob, 12))
	offRsv := int(be32(blob, 16))
	sizeStrings := int(be32(blob, 32))
	sizeStruct := int(be32(blob, 36))
	if offStruct+sizeStruct > total || offStrings+sizeStrings > total {
		return nil, ErrTruncated
	}

	tree := dts.NewTree()

	// memreserve entries
	for off := offRsv; off+16 <= offStruct; off += 16 {
		addr := be64(blob, off)
		size := be64(blob, off+8)
		if addr == 0 && size == 0 {
			break
		}
		tree.MemReserves = append(tree.MemReserves, dts.MemReserve{Address: addr, Size: size})
	}

	strAt := func(off int) (string, error) {
		pos := offStrings + off
		if pos >= total {
			return "", ErrTruncated
		}
		end := pos
		for end < total && blob[end] != 0 {
			end++
		}
		return string(blob[pos:end]), nil
	}

	pos := offStruct
	var stack []*dts.Node
	readU32 := func() (uint32, error) {
		if pos+4 > total {
			return 0, ErrTruncated
		}
		v := be32(blob, pos)
		pos += 4
		return v, nil
	}

	for {
		tok, err := readU32()
		if err != nil {
			return nil, err
		}
		switch tok {
		case tokenBeginNode:
			start := pos
			for pos < total && blob[pos] != 0 {
				pos++
			}
			if pos >= total {
				return nil, ErrTruncated
			}
			name := string(blob[start:pos])
			pos++ // NUL
			pos = align4(pos)
			var node *dts.Node
			if len(stack) == 0 {
				node = tree.Root
				if name != "" {
					node.Name = name
				}
			} else {
				node = &dts.Node{Name: name}
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, node)
			}
			stack = append(stack, node)

		case tokenEndNode:
			if len(stack) == 0 {
				return nil, fmt.Errorf("dtb: unbalanced END_NODE")
			}
			stack = stack[:len(stack)-1]

		case tokenProp:
			dataLen, err := readU32()
			if err != nil {
				return nil, err
			}
			nameOff, err := readU32()
			if err != nil {
				return nil, err
			}
			if pos+int(dataLen) > total {
				return nil, ErrTruncated
			}
			data := blob[pos : pos+int(dataLen)]
			pos += int(dataLen)
			pos = align4(pos)
			name, err := strAt(int(nameOff))
			if err != nil {
				return nil, err
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("dtb: property %s outside any node", name)
			}
			node := stack[len(stack)-1]
			node.SetProperty(&dts.Property{Name: name, Value: valueFromBytes(data)})

		case tokenNop:
			// skip

		case tokenEnd:
			if len(stack) != 0 {
				return nil, fmt.Errorf("dtb: END inside open node")
			}
			return tree, nil

		default:
			return nil, fmt.Errorf("dtb: unknown token %#x at offset %d", tok, pos-4)
		}
	}
}

// propertyBytes serializes a property value per the FDT rules: cells as
// big-endian integers of their /bits/ width (u32 by default), strings
// NUL-terminated, bytes verbatim, and path references as NUL-terminated
// path strings.
func propertyBytes(v dts.Value) ([]byte, error) {
	var out []byte
	for _, c := range v.Chunks {
		switch c.Kind {
		case dts.ChunkCells:
			for _, cell := range c.CellList {
				if cell.Ref != "" {
					return nil, fmt.Errorf("unresolved reference &%s", cell.Ref)
				}
				switch c.Bits {
				case 8:
					out = append(out, byte(cell.Val))
				case 16:
					out = append(out, byte(cell.Val>>8), byte(cell.Val))
				case 64:
					out = appendU64(out, cell.Val64)
				default: // 0 or 32
					out = appendU32(out, cell.Val)
				}
			}
		case dts.ChunkString:
			out = append(out, c.Str...)
			out = append(out, 0)
		case dts.ChunkBytes:
			out = append(out, c.Bytes...)
		case dts.ChunkRef:
			out = append(out, c.Ref...)
			out = append(out, 0)
		}
	}
	return out, nil
}

// valueFromBytes reconstructs a property value from raw FDT data using
// the standard heuristic: printable NUL-terminated runs decode as
// strings, 4-byte-aligned data as cells, anything else as bytes.
func valueFromBytes(data []byte) dts.Value {
	if len(data) == 0 {
		return dts.Value{}
	}
	if isStringList(data) {
		parts := strings.Split(string(data[:len(data)-1]), "\x00")
		return dts.StringValueOf(parts...)
	}
	if len(data)%4 == 0 {
		vals := make([]uint32, len(data)/4)
		for i := range vals {
			vals[i] = be32(data, i*4)
		}
		return dts.CellsValue(vals...)
	}
	return dts.BytesValue(data)
}

func isStringList(data []byte) bool {
	if data[len(data)-1] != 0 {
		return false
	}
	sawChar := false
	for _, b := range data[:len(data)-1] {
		if b == 0 {
			if !sawChar {
				return false
			}
			sawChar = false
			continue
		}
		if b < 0x20 || b > 0x7e {
			return false
		}
		sawChar = true
	}
	return sawChar
}

// resolvePhandles assigns phandle values to labeled nodes referenced by
// cells and substitutes the numeric values.
func resolvePhandles(t *dts.Tree) error {
	// collect referenced labels
	refs := make(map[string]bool)
	t.Root.Walk(func(_ string, n *dts.Node) bool {
		for _, p := range n.Properties {
			for _, ch := range p.Value.Chunks {
				if ch.Kind != dts.ChunkCells {
					continue
				}
				for _, cell := range ch.CellList {
					if cell.Ref != "" {
						refs[cell.Ref] = true
					}
				}
			}
		}
		return true
	})
	if len(refs) == 0 {
		return nil
	}
	labels := make([]string, 0, len(refs))
	for l := range refs {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	phandles := make(map[string]uint32, len(labels))
	next := uint32(1)
	for _, label := range labels {
		target := t.LookupLabel(label)
		if target == nil {
			return fmt.Errorf("dtb: reference to undefined label &%s", label)
		}
		if v, ok := target.CellValue("phandle"); ok {
			phandles[label] = v
			continue
		}
		target.SetProperty(&dts.Property{Name: "phandle", Value: dts.CellsValue(next)})
		phandles[label] = next
		next++
	}

	t.Root.Walk(func(_ string, n *dts.Node) bool {
		for _, p := range n.Properties {
			for ci, ch := range p.Value.Chunks {
				if ch.Kind != dts.ChunkCells {
					continue
				}
				for i, cell := range ch.CellList {
					if cell.Ref != "" {
						p.Value.Chunks[ci].CellList[i] = dts.Cell{Val: phandles[cell.Ref]}
					}
				}
			}
		}
		return true
	})
	return nil
}

// stringTable builds the FDT strings block with de-duplication.
type stringTable struct {
	offsets map[string]uint32
	data    []byte
}

func newStringTable() *stringTable {
	return &stringTable{offsets: make(map[string]uint32)}
}

func (s *stringTable) offset(name string) uint32 {
	if off, ok := s.offsets[name]; ok {
		return off
	}
	off := uint32(len(s.data))
	s.offsets[name] = off
	s.data = append(s.data, name...)
	s.data = append(s.data, 0)
	return off
}

func (s *stringTable) bytes() []byte { return s.data }

func appendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

func be32(b []byte, off int) uint32 { return binary.BigEndian.Uint32(b[off : off+4]) }
func be64(b []byte, off int) uint64 { return binary.BigEndian.Uint64(b[off : off+8]) }

func pad4(b []byte) []byte {
	for len(b)%4 != 0 {
		b = append(b, 0)
	}
	return b
}

func align4(n int) int { return (n + 3) &^ 3 }
