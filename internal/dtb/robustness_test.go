package dtb

import (
	"math/rand"
	"testing"

	"llhsc/internal/dts"
)

// TestDecodeNeverPanicsOnMutatedBlobs flips random bytes of a valid
// blob and requires Decode to return (tree or error) without panicking.
func TestDecodeNeverPanicsOnMutatedBlobs(t *testing.T) {
	tree := mustParse(t, sampleDTS)
	blob, err := Encode(tree)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 2000; iter++ {
		mutated := append([]byte(nil), blob...)
		flips := 1 + rng.Intn(8)
		for i := 0; i < flips; i++ {
			pos := rng.Intn(len(mutated))
			mutated[pos] ^= byte(1 << uint(rng.Intn(8)))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("iter %d: Decode panicked: %v", iter, r)
				}
			}()
			_, _ = Decode(mutated)
		}()
	}
}

// TestDecodeNeverPanicsOnTruncatedBlobs checks every truncation length.
func TestDecodeNeverPanicsOnTruncatedBlobs(t *testing.T) {
	tree := mustParse(t, sampleDTS)
	blob, err := Encode(tree)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: Decode panicked: %v", cut, r)
				}
			}()
			_, _ = Decode(blob[:cut])
		}()
	}
}

// TestDecodeNeverPanicsOnRandomBytes feeds pure noise.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 500; iter++ {
		junk := make([]byte, rng.Intn(512))
		rng.Read(junk)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("iter %d: Decode panicked: %v", iter, r)
				}
			}()
			_, _ = Decode(junk)
		}()
	}
}

// TestEncodeDecodeRandomTrees round-trips randomized trees built from
// the dts package's constructors.
func TestEncodeDecodeRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		tree := dts.NewTree()
		nNodes := 1 + rng.Intn(10)
		for i := 0; i < nNodes; i++ {
			n := tree.Root.EnsureChild(nodeName(rng, i))
			switch rng.Intn(3) {
			case 0:
				vals := make([]uint32, 1+rng.Intn(4))
				for j := range vals {
					vals[j] = rng.Uint32()
				}
				n.SetProperty(&dts.Property{Name: "cells", Value: dts.CellsValue(vals...)})
			case 1:
				n.SetProperty(&dts.Property{Name: "s", Value: dts.StringValueOf("value")})
			case 2:
				n.SetProperty(&dts.Property{Name: "flag"})
			}
		}
		blob, err := Encode(tree)
		if err != nil {
			t.Fatalf("iter %d: encode: %v", iter, err)
		}
		back, err := Decode(blob)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if len(back.Root.Children) != len(tree.Root.Children) {
			t.Fatalf("iter %d: children %d != %d", iter,
				len(back.Root.Children), len(tree.Root.Children))
		}
		// second encode must be byte-identical (idempotence)
		blob2, err := Encode(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != string(blob2) {
			t.Fatalf("iter %d: re-encode differs", iter)
		}
	}
}

func nodeName(rng *rand.Rand, i int) string {
	if rng.Intn(2) == 0 {
		return "node" + string(rune('a'+i%26))
	}
	return "dev" + string(rune('a'+i%26))
}
