package dtb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"llhsc/internal/dts"
)

const sampleDTS = `
/dts-v1/;

/memreserve/ 0x10000000 0x4000;

/ {
	#address-cells = <2>;
	#size-cells = <2>;
	compatible = "vortex,custom-sbc";

	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000>;
	};

	uart0: uart@20000000 {
		compatible = "ns16550a";
		reg = <0x0 0x20000000 0x0 0x1000>;
		mac = [de ad be ef 00 4c];
	};

	aliases-like {
		link = <&uart0 0x7>;
	};
};
`

func mustParse(t *testing.T, src string) *dts.Tree {
	t.Helper()
	tree, err := dts.Parse("test.dts", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return tree
}

func TestEncodeHeader(t *testing.T) {
	tree := mustParse(t, sampleDTS)
	blob, err := Encode(tree)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := binary.BigEndian.Uint32(blob[0:4]); got != 0xd00dfeed {
		t.Errorf("magic = %#x", got)
	}
	if got := binary.BigEndian.Uint32(blob[4:8]); int(got) != len(blob) {
		t.Errorf("totalsize = %d, len = %d", got, len(blob))
	}
	if got := binary.BigEndian.Uint32(blob[20:24]); got != 17 {
		t.Errorf("version = %d, want 17", got)
	}
}

func TestRoundTrip(t *testing.T) {
	tree := mustParse(t, sampleDTS)
	blob, err := Encode(tree)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}

	if len(back.MemReserves) != 1 || back.MemReserves[0].Address != 0x10000000 {
		t.Errorf("memreserves = %+v", back.MemReserves)
	}

	mem := back.Lookup("/memory@40000000")
	if mem == nil {
		t.Fatal("memory node lost")
	}
	if got, _ := mem.StringValue("device_type"); got != "memory" {
		t.Errorf("device_type = %q", got)
	}
	reg := mem.Property("reg").Value.U32s()
	if len(reg) != 4 || reg[1] != 0x40000000 || reg[3] != 0x20000000 {
		t.Errorf("reg = %#x", reg)
	}

	uart := back.Lookup("/uart@20000000")
	if uart == nil {
		t.Fatal("uart lost")
	}
	if got := uart.Property("mac").Value.Bytes(); !bytes.Equal(got, []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x4c}) {
		t.Errorf("mac = %x", got)
	}

	// phandle resolution: uart0 got a phandle, the link references it
	ph, ok := uart.CellValue("phandle")
	if !ok {
		t.Fatal("uart should carry a phandle after encoding")
	}
	link := back.Lookup("/aliases-like").Property("link").Value.U32s()
	if len(link) != 2 || link[0] != ph || link[1] != 7 {
		t.Errorf("link = %v, want [%d 7]", link, ph)
	}

	if got, _ := back.Root.StringValue("compatible"); got != "vortex,custom-sbc" {
		t.Errorf("root compatible = %q", got)
	}
}

func TestRoundTripIdempotent(t *testing.T) {
	tree := mustParse(t, sampleDTS)
	blob1, err := Encode(tree)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(blob1)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := Encode(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob1, blob2) {
		t.Error("encode(decode(encode(t))) differs from encode(t)")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short blob: %v, want ErrTruncated", err)
	}
	bad := make([]byte, 64)
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("zero blob: %v, want ErrBadMagic", err)
	}

	tree := mustParse(t, sampleDTS)
	blob, _ := Encode(tree)
	if _, err := Decode(blob[:len(blob)-8]); err == nil {
		t.Error("truncated blob should fail to decode")
	}
}

func TestUndefinedReference(t *testing.T) {
	tree := mustParse(t, `
/dts-v1/;
/ {
	n { link = <&missing>; };
};
`)
	if _, err := Encode(tree); err == nil {
		t.Error("undefined label should fail encoding")
	}
}

func TestEmptyPropertyAndEmptyTree(t *testing.T) {
	tree := mustParse(t, `
/dts-v1/;
/ {
	n {
		flag;
	};
};
`)
	blob, err := Encode(tree)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	flag := back.Lookup("/n").Property("flag")
	if flag == nil || !flag.Value.IsEmpty() {
		t.Error("boolean marker property lost")
	}

	empty := dts.NewTree()
	blob2, err := Encode(empty)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(blob2); err != nil {
		t.Errorf("empty tree round trip: %v", err)
	}
}

func TestStringHeuristic(t *testing.T) {
	tests := []struct {
		name string
		data []byte
		want dts.ChunkKind
	}{
		{"string", []byte("hello\x00"), dts.ChunkString},
		{"string list", []byte("a\x00b\x00"), dts.ChunkString},
		{"cells", []byte{0, 0, 0, 5}, dts.ChunkCells},
		{"bytes", []byte{1, 2, 3}, dts.ChunkBytes},
		{"not a string: leading nul", []byte{0, 'a', 0, 0}, dts.ChunkCells},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := valueFromBytes(tt.data)
			if len(v.Chunks) == 0 {
				t.Fatal("no chunks")
			}
			if v.Chunks[0].Kind != tt.want {
				t.Errorf("kind = %v, want %v", v.Chunks[0].Kind, tt.want)
			}
		})
	}
}

func TestRunningExampleBlob(t *testing.T) {
	tree, err := dts.ParseFile("../../testdata/customsbc.dts")
	if err != nil {
		t.Fatalf("parse running example: %v", err)
	}
	blob, err := Encode(tree)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := Decode(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	cpu0 := back.Lookup("/cpus/cpu@0")
	if cpu0 == nil {
		t.Fatal("cpu@0 lost in dtb round trip")
	}
	if got := cpu0.Compatible(); len(got) != 1 || got[0] != "arm,cortex-a53" {
		t.Errorf("compatible = %v", got)
	}
}

// TestEncodeBitsWidths: /bits/ chunks serialize at their element width
// — u8 bytes, big-endian u16, u32, and big-endian u64 from Val64 — so
// the blob matches what dtc emits for the same source.
func TestEncodeBitsWidths(t *testing.T) {
	tree := mustParse(t, `/dts-v1/;
/ {
	b8 = /bits/ 8 <0x12 0x34>;
	b16 = /bits/ 16 <0x1234 0x5678>;
	b64 = /bits/ 64 <0xdeadbeef00000001>;
	mixed = "hi", /bits/ 16 <0xffff>;
};
`)
	blob, err := Encode(tree)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for name, want := range map[string][]byte{
		"b8":    {0x12, 0x34},
		"b16":   {0x12, 0x34, 0x56, 0x78},
		"b64":   {0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x00, 0x01},
		"mixed": {'h', 'i', 0x00, 0xff, 0xff},
	} {
		if !bytes.Contains(blob, want) {
			t.Errorf("%s: encoded blob lacks %x", name, want)
		}
	}
	// A decode of the blob must still succeed (widths are not
	// self-describing in FDT, so the value shape is heuristic).
	if _, err := Decode(blob); err != nil {
		t.Fatalf("Decode: %v", err)
	}
}
