// Package buildinfo carries the build identity stamped into llhsc
// binaries. CI (and any release build) overrides the defaults with
//
//	go build -ldflags "\
//	  -X llhsc/internal/buildinfo.Version=$(git describe --tags --always) \
//	  -X llhsc/internal/buildinfo.Commit=$(git rev-parse --short HEAD) \
//	  -X llhsc/internal/buildinfo.Date=$(date -u +%Y-%m-%dT%H:%M:%SZ)" ./...
//
// An unstamped build reports version "dev" so dashboards can tell a
// local binary from a released one.
package buildinfo

import (
	"runtime"

	"llhsc/internal/obs"
)

// Stamped via -ldflags -X; see the package comment.
var (
	Version = "dev"
	Commit  = "unknown"
	Date    = "unknown"
)

// Info is the JSON-ready build identity block (the /healthz "build"
// field and the `llhsc version` output).
type Info struct {
	Version   string `json:"version"`
	Commit    string `json:"commit"`
	Date      string `json:"date"`
	GoVersion string `json:"go"`
}

// Get returns the build identity of the running binary.
func Get() Info {
	return Info{Version: Version, Commit: Commit, Date: Date, GoVersion: runtime.Version()}
}

// Register exposes the identity as the llhsc_build_info gauge: a
// constant 1 whose labels carry the interesting values, the standard
// Prometheus idiom for build metadata.
func Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	info := Get()
	reg.NewGaugeVec("llhsc_build_info",
		"Build identity of the running binary (constant 1; values in labels).",
		"version", "commit", "goversion").
		With(info.Version, info.Commit, info.GoVersion).Set(1)
}
