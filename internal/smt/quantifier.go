package smt

// Finite-domain quantifier expansion. The paper's syntactic constraints
// quantify over property names (∀x.R(x), Section IV-B); since the
// domain — the names occurring in schemas and bindings — is finite and
// known, quantifiers are decided by instantiation: a universal becomes
// a conjunction over the domain, an existential a disjunction. These
// helpers make that encoding explicit at the API level.

// ForallFinite instantiates body over every domain element and returns
// the conjunction. An empty domain yields true (the vacuous universal).
func (c *Context) ForallFinite(domain []*Term, body func(*Term) *Term) *Term {
	insts := make([]*Term, len(domain))
	for i, d := range domain {
		insts[i] = body(d)
	}
	return c.And(insts...)
}

// ExistsFinite instantiates body over every domain element and returns
// the disjunction. An empty domain yields false (the vacuous
// existential).
func (c *Context) ExistsFinite(domain []*Term, body func(*Term) *Term) *Term {
	insts := make([]*Term, len(domain))
	for i, d := range domain {
		insts[i] = body(d)
	}
	return c.Or(insts...)
}

// StrDomainTerms returns the interned string constants as terms, the
// canonical quantification domain for name predicates.
func (c *Context) StrDomainTerms() []*Term {
	out := make([]*Term, 0, len(c.strNames))
	for _, name := range c.strNames {
		out = append(out, c.StrConst(name))
	}
	return out
}
