package smt

import (
	"context"
	"fmt"
	"sync/atomic"

	"llhsc/internal/logic"
	"llhsc/internal/sat"
)

// Solver decides satisfiability of asserted Boolean/bit-vector/string
// terms by compiling them to CNF (bit-blasting) and running the CDCL
// solver from internal/sat.
//
// Scopes: Push/Pop create assertion frames implemented with activation
// literals, so the underlying SAT solver keeps all learnt clauses
// across scope changes (incremental solving, as the paper's Section VI
// highlights for Z3). Named assertions participate in unsat-name
// extraction: after an unsatisfiable Check, UnsatNames reports a subset
// of assertion names sufficient for the contradiction — llhsc uses this
// to trace a violation back to the delta module that caused it.
//
// Concurrency contract: a Solver and its Context are confined to one
// goroutine at a time — the blasting caches, scratch buffers and the
// term interner are all unsynchronized. Concurrent callers must build
// one Context+Solver pair per goroutine (they are cheap; this is what
// core.Pipeline's worker pool does). Mutating entry points enforce the
// contract: concurrent use panics with a diagnostic instead of
// corrupting state silently. The only exception is Interrupt, which is
// explicitly safe to call from other goroutines.
type Solver struct {
	ctx *Context
	sat *sat.Solver

	// busy enforces the single-goroutine contract (0 = idle).
	busy atomic.Int32

	trueLit logic.Lit

	// Scratch storage reused by the blasting gates (blast.go) to avoid
	// a per-gate slice allocation on the hot path. gateScratch holds
	// the long clause being built by andGate/orGate (sat.AddClause
	// copies, so reuse is safe); argPool recycles the argument slices
	// blastBool builds for n-ary And/Or terms; pair2 backs the
	// ubiquitous two-literal gate calls.
	gateScratch []logic.Lit
	argPool     [][]logic.Lit
	pair2       [2]logic.Lit

	// blasting caches
	bits     map[int][]logic.Lit // BV term id -> bits (LSB first)
	boolLits map[int]logic.Lit   // Bool term id -> literal
	varLits  map[string]logic.Lit
	bvVars   map[string][]logic.Lit

	// finite-domain string encoding
	strPairs map[[2]string]logic.Lit // (var name, const) -> "var == const"

	frames []logic.Lit // activation literal per frame; frames[0] is base
	named  []namedAssertion

	lastUnsatNames []string
	checks         int
}

type namedAssertion struct {
	name  string
	act   logic.Lit
	frame int
}

// NewSolver returns a solver over terms of ctx.
func NewSolver(ctx *Context) *Solver {
	s := &Solver{
		ctx:      ctx,
		sat:      sat.New(),
		bits:     make(map[int][]logic.Lit),
		boolLits: make(map[int]logic.Lit),
		varLits:  make(map[string]logic.Lit),
		bvVars:   make(map[string][]logic.Lit),
		strPairs: make(map[[2]string]logic.Lit),
	}
	s.trueLit = s.fresh()
	s.sat.AddClause(s.trueLit)
	s.frames = []logic.Lit{s.fresh()} // base frame
	return s
}

// Context returns the term context the solver operates over.
func (s *Solver) Context() *Context { return s.ctx }

func (s *Solver) fresh() logic.Lit {
	return logic.Lit(s.sat.NewVar())
}

// enter enforces the single-goroutine contract on a mutating entry
// point; the returned func releases the guard (use: defer s.enter()()).
func (s *Solver) enter() func() {
	if !s.busy.CompareAndSwap(0, 1) {
		panic("smt: Solver used concurrently from multiple goroutines; " +
			"build one Context+Solver per goroutine (see the Solver doc)")
	}
	return func() { s.busy.Store(0) }
}

// Push opens a new assertion scope.
func (s *Solver) Push() {
	defer s.enter()()
	s.frames = append(s.frames, s.fresh())
}

// Pop discards the most recent assertion scope and every assertion made
// in it. Popping the base scope panics.
func (s *Solver) Pop() {
	defer s.enter()()
	if len(s.frames) == 1 {
		panic("smt: Pop on base scope")
	}
	act := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	s.sat.AddClause(act.Neg()) // permanently disable the frame's assertions
	// drop named assertions belonging to the popped frame
	kept := s.named[:0]
	for _, n := range s.named {
		if n.frame < len(s.frames) {
			kept = append(kept, n)
		}
	}
	s.named = kept
}

// NumScopes returns the current number of open scopes (0 = base only).
func (s *Solver) NumScopes() int { return len(s.frames) - 1 }

// Assert adds a Boolean term to the current scope.
func (s *Solver) Assert(t *Term) {
	defer s.enter()()
	lit := s.blastBool(t)
	frame := s.frames[len(s.frames)-1]
	s.sat.AddClause(frame.Neg(), lit)
}

// AssertNamed adds a Boolean term to the current scope under a name
// that can appear in UnsatNames after an unsatisfiable Check.
func (s *Solver) AssertNamed(name string, t *Term) {
	defer s.enter()()
	lit := s.blastBool(t)
	frame := s.frames[len(s.frames)-1]
	act := s.fresh()
	s.sat.AddClause(frame.Neg(), act.Neg(), lit)
	s.named = append(s.named, namedAssertion{name: name, act: act, frame: len(s.frames) - 1})
}

// Check decides satisfiability of the current assertion set. An
// Unknown result means a budget installed via SetBudget cut the search
// short; LastLimit explains why.
func (s *Solver) Check() sat.Status {
	defer s.enter()()
	st, _ := s.check(nil, s.sat.Solve)
	return st
}

// CheckContext is Check under a context: cancellation and the context
// deadline bound the underlying SAT search. On a budget or
// cancellation stop it returns sat.Unknown and a non-nil error (a
// *sat.LimitError, wrapping ctx.Err() when the context caused it).
func (s *Solver) CheckContext(ctx context.Context) (sat.Status, error) {
	defer s.enter()()
	return s.check(nil, func(assumptions ...logic.Lit) sat.Status {
		st, _ := s.sat.SolveContext(ctx, assumptions...)
		return st
	})
}

// CheckAssuming decides satisfiability of the current assertion set
// under additional Boolean assumption terms, without changing the
// assertion set. Each assumption is blasted once — its gate clauses are
// permanent and memoized, so repeated CheckAssuming calls over the same
// terms (the semantic checker's per-pair activation literals,
// DESIGN.md §9) cost only the SAT search, not re-encoding.
func (s *Solver) CheckAssuming(assumptions ...*Term) sat.Status {
	defer s.enter()()
	st, _ := s.check(assumptions, s.sat.Solve)
	return st
}

// CheckAssumingContext is CheckAssuming under a context, with the same
// error contract as CheckContext.
func (s *Solver) CheckAssumingContext(ctx context.Context, assumptions ...*Term) (sat.Status, error) {
	defer s.enter()()
	return s.check(assumptions, func(lits ...logic.Lit) sat.Status {
		st, _ := s.sat.SolveContext(ctx, lits...)
		return st
	})
}

func (s *Solver) check(assume []*Term, solve func(...logic.Lit) sat.Status) (sat.Status, error) {
	s.checks++
	assumptions := make([]logic.Lit, 0, len(s.frames)+len(s.named)+len(assume))
	assumptions = append(assumptions, s.frames...)
	for _, n := range s.named {
		assumptions = append(assumptions, n.act)
	}
	for _, t := range assume {
		assumptions = append(assumptions, s.blastBool(t))
	}
	st := solve(assumptions...)
	s.lastUnsatNames = nil
	if st == sat.Unsat {
		failed := make(map[logic.Lit]bool)
		for _, l := range s.sat.FailedAssumptions() {
			failed[l] = true
		}
		for _, n := range s.named {
			if failed[n.act] {
				s.lastUnsatNames = append(s.lastUnsatNames, n.name)
			}
		}
	}
	if st == sat.Unknown {
		if lim := s.sat.LastLimit(); lim != nil {
			return st, lim
		}
		return st, &sat.LimitError{Reason: sat.StopCanceled}
	}
	return st, nil
}

// SetBudget installs a resource budget on the underlying SAT solver,
// bounding every subsequent Check.
func (s *Solver) SetBudget(b sat.Budget) { s.sat.SetBudget(b) }

// Interrupt asks a running Check to stop (safe from other goroutines).
func (s *Solver) Interrupt() { s.sat.Interrupt() }

// LastLimit reports why the most recent Check returned Unknown (nil
// when it completed).
func (s *Solver) LastLimit() *sat.LimitError { return s.sat.LastLimit() }

// UnsatNames returns, after an unsatisfiable Check, the names of named
// assertions that participated in the final conflict. The list may be
// empty if the contradiction involves only unnamed assertions.
func (s *Solver) UnsatNames() []string {
	return append([]string(nil), s.lastUnsatNames...)
}

// Stats reports underlying SAT-solver statistics plus blasting counters.
type Stats struct {
	SAT      sat.Stats
	Checks   int
	BoolLits int
	BVTerms  int
}

// Stats returns solver statistics.
func (s *Solver) Stats() Stats {
	return Stats{
		SAT:      s.sat.Stats(),
		Checks:   s.checks,
		BoolLits: len(s.boolLits),
		BVTerms:  len(s.bits),
	}
}

// ---- model extraction ----

// BoolValue returns the model value of a Boolean term after a Sat Check.
func (s *Solver) BoolValue(t *Term) bool {
	s.ctx.wantSort(t, SortBool)
	switch t.op {
	case OpTrue:
		return true
	case OpFalse:
		return false
	case OpNot:
		return !s.BoolValue(t.args[0])
	case OpAnd:
		for _, a := range t.args {
			if !s.BoolValue(a) {
				return false
			}
		}
		return true
	case OpOr:
		for _, a := range t.args {
			if s.BoolValue(a) {
				return true
			}
		}
		return false
	case OpIte:
		if s.BoolValue(t.args[0]) {
			return s.BoolValue(t.args[1])
		}
		return s.BoolValue(t.args[2])
	case OpEq:
		a, b := t.args[0], t.args[1]
		switch a.sort {
		case SortBool:
			return s.BoolValue(a) == s.BoolValue(b)
		case SortBV:
			return s.BVValue(a) == s.BVValue(b)
		case SortString:
			av, aok := s.strValueOf(a)
			bv, bok := s.strValueOf(b)
			return aok && bok && av == bv
		}
		return false
	case OpBVUlt:
		return s.BVValue(t.args[0]) < s.BVValue(t.args[1])
	case OpBVUle:
		return s.BVValue(t.args[0]) <= s.BVValue(t.args[1])
	case OpBoolVar:
		lit, ok := s.varLits[t.name]
		if !ok {
			return false // never blasted: unconstrained
		}
		return s.sat.Value(lit.Var())
	default:
		panic(fmt.Sprintf("smt: BoolValue of %s", t))
	}
}

// BVValue returns the model value of a bit-vector term after a Sat
// Check. Unconstrained variables evaluate to 0.
func (s *Solver) BVValue(t *Term) uint64 {
	s.ctx.wantSort(t, SortBV)
	switch t.op {
	case OpBVConst:
		return t.val
	case OpBVVar:
		bits, ok := s.bvVars[t.name]
		if !ok {
			return 0
		}
		var v uint64
		for i, b := range bits {
			if s.sat.Value(b.Var()) {
				v |= 1 << uint(i)
			}
		}
		return v
	case OpBVAdd:
		return maskTo(s.BVValue(t.args[0])+s.BVValue(t.args[1]), t.width)
	case OpBVSub:
		return maskTo(s.BVValue(t.args[0])-s.BVValue(t.args[1]), t.width)
	case OpBVMul:
		return maskTo(s.BVValue(t.args[0])*s.BVValue(t.args[1]), t.width)
	case OpBVAnd:
		return s.BVValue(t.args[0]) & s.BVValue(t.args[1])
	case OpBVOr:
		return s.BVValue(t.args[0]) | s.BVValue(t.args[1])
	case OpBVXor:
		return s.BVValue(t.args[0]) ^ s.BVValue(t.args[1])
	case OpBVNot:
		return maskTo(^s.BVValue(t.args[0]), t.width)
	case OpBVShl:
		return maskTo(s.BVValue(t.args[0])<<uint(t.val), t.width)
	case OpBVLshr:
		return s.BVValue(t.args[0]) >> uint(t.val)
	case OpBVExtract:
		hi, lo := int(t.val>>8), int(t.val&0xff)
		return maskTo(s.BVValue(t.args[0])>>uint(lo), hi-lo+1)
	case OpBVConcat:
		hi, lo := t.args[0], t.args[1]
		return s.BVValue(hi)<<uint(lo.width) | s.BVValue(lo)
	case OpIte:
		if s.BoolValue(t.args[0]) {
			return s.BVValue(t.args[1])
		}
		return s.BVValue(t.args[2])
	default:
		panic(fmt.Sprintf("smt: BVValue of %s", t))
	}
}

// StrValue returns the model value of a string term after a Sat Check.
// ok is false when the variable is unconstrained (it can take any
// domain value not mentioned in its constraints).
func (s *Solver) StrValue(t *Term) (value string, ok bool) {
	return s.strValueOf(t)
}

func (s *Solver) strValueOf(t *Term) (string, bool) {
	switch t.op {
	case OpStrConst:
		return t.name, true
	case OpStrVar:
		for _, c := range s.ctx.strNames {
			if lit, ok := s.strPairs[[2]string{t.name, c}]; ok && s.sat.Value(lit.Var()) {
				return c, true
			}
		}
		return "", false
	default:
		panic(fmt.Sprintf("smt: StrValue of %s", t))
	}
}
