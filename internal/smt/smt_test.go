package smt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"llhsc/internal/sat"
)

func newSolverT() (*Context, *Solver) {
	ctx := NewContext()
	return ctx, NewSolver(ctx)
}

func TestTrivialBool(t *testing.T) {
	ctx, s := newSolverT()
	s.Assert(ctx.True())
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("Check = %v, want Sat", got)
	}
	s.Assert(ctx.False())
	if got := s.Check(); got != sat.Unsat {
		t.Fatalf("Check = %v, want Unsat", got)
	}
}

func TestBoolVars(t *testing.T) {
	ctx, s := newSolverT()
	a := ctx.BoolVar("a")
	b := ctx.BoolVar("b")
	s.Assert(ctx.Implies(a, b))
	s.Assert(a)
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("Check = %v, want Sat", got)
	}
	if !s.BoolValue(a) || !s.BoolValue(b) {
		t.Errorf("model a=%v b=%v, want both true", s.BoolValue(a), s.BoolValue(b))
	}
	s.Assert(ctx.Not(b))
	if got := s.Check(); got != sat.Unsat {
		t.Fatalf("Check = %v, want Unsat", got)
	}
}

func TestBVConstEquality(t *testing.T) {
	ctx, s := newSolverT()
	x := ctx.BVVar("x", 16)
	s.Assert(ctx.Eq(x, ctx.BVConst(16, 0xbeef)))
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("Check = %v, want Sat", got)
	}
	if got := s.BVValue(x); got != 0xbeef {
		t.Errorf("x = %#x, want 0xbeef", got)
	}
}

func TestBVAddSolvesForOperand(t *testing.T) {
	ctx, s := newSolverT()
	x := ctx.BVVar("x", 8)
	// x + 10 == 14  =>  x == 4
	s.Assert(ctx.Eq(ctx.Add(x, ctx.BVConst(8, 10)), ctx.BVConst(8, 14)))
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("Check = %v, want Sat", got)
	}
	if got := s.BVValue(x); got != 4 {
		t.Errorf("x = %d, want 4", got)
	}
}

func TestBVAddWraps(t *testing.T) {
	ctx, s := newSolverT()
	x := ctx.BVVar("x", 8)
	s.Assert(ctx.Eq(x, ctx.BVConst(8, 200)))
	sum := ctx.Add(x, ctx.BVConst(8, 100))
	s.Assert(ctx.Eq(sum, ctx.BVConst(8, 44))) // 300 mod 256
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("Check = %v, want Sat (modular add)", got)
	}
}

func TestBVArithmeticAgainstNative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 40; iter++ {
		width := []int{4, 8, 13, 32}[rng.Intn(4)]
		mask := uint64(1)<<uint(width) - 1
		av := rng.Uint64() & mask
		bv := rng.Uint64() & mask

		ctx, s := newSolverT()
		x := ctx.BVVar("x", width)
		y := ctx.BVVar("y", width)
		s.Assert(ctx.Eq(x, ctx.BVConst(width, av)))
		s.Assert(ctx.Eq(y, ctx.BVConst(width, bv)))
		if got := s.Check(); got != sat.Sat {
			t.Fatalf("setup unsat at width %d", width)
		}
		tests := []struct {
			name string
			term *Term
			want uint64
		}{
			{"add", ctx.Add(x, y), (av + bv) & mask},
			{"sub", ctx.Sub(x, y), (av - bv) & mask},
			{"mul", ctx.Mul(x, y), (av * bv) & mask},
			{"and", ctx.BVAnd(x, y), av & bv},
			{"or", ctx.BVOr(x, y), av | bv},
			{"xor", ctx.BVXor(x, y), av ^ bv},
			{"not", ctx.BVNot(x), ^av & mask},
			{"shl3", ctx.Shl(x, 3), (av << 3) & mask},
			{"lshr2", ctx.Lshr(x, 2), av >> 2},
		}
		for _, tt := range tests {
			if got := s.BVValue(tt.term); got != tt.want {
				t.Errorf("width=%d a=%#x b=%#x %s: got %#x, want %#x",
					width, av, bv, tt.name, got, tt.want)
			}
		}
		if got, want := s.BoolValue(ctx.Ult(x, y)), av < bv; got != want {
			t.Errorf("ult: got %v, want %v", got, want)
		}
		if got, want := s.BoolValue(ctx.Ule(x, y)), av <= bv; got != want {
			t.Errorf("ule: got %v, want %v", got, want)
		}
	}
}

func TestComparatorsAsConstraints(t *testing.T) {
	// Solver (not just model eval) must decide comparisons: x < 4 & x > 1 & x != 2 => x == 3.
	ctx, s := newSolverT()
	x := ctx.BVVar("x", 8)
	s.Assert(ctx.Ult(x, ctx.BVConst(8, 4)))
	s.Assert(ctx.Ugt(x, ctx.BVConst(8, 1)))
	s.Assert(ctx.Not(ctx.Eq(x, ctx.BVConst(8, 2))))
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("Check = %v, want Sat", got)
	}
	if got := s.BVValue(x); got != 3 {
		t.Errorf("x = %d, want 3", got)
	}
	s.Assert(ctx.Not(ctx.Eq(x, ctx.BVConst(8, 3))))
	if got := s.Check(); got != sat.Unsat {
		t.Fatalf("Check = %v, want Unsat", got)
	}
}

func TestExtractConcat(t *testing.T) {
	ctx, s := newSolverT()
	x := ctx.BVVar("x", 16)
	s.Assert(ctx.Eq(x, ctx.BVConst(16, 0xabcd)))
	if got := s.Check(); got != sat.Sat {
		t.Fatal("setup unsat")
	}
	hi := ctx.Extract(x, 15, 8)
	lo := ctx.Extract(x, 7, 0)
	if got := s.BVValue(hi); got != 0xab {
		t.Errorf("hi = %#x, want 0xab", got)
	}
	if got := s.BVValue(lo); got != 0xcd {
		t.Errorf("lo = %#x, want 0xcd", got)
	}
	if got := s.BVValue(ctx.Concat(hi, lo)); got != 0xabcd {
		t.Errorf("concat = %#x, want 0xabcd", got)
	}
	if got := s.BVValue(ctx.ZeroExtend(lo, 32)); got != 0xcd {
		t.Errorf("zext = %#x, want 0xcd", got)
	}
}

func TestIte(t *testing.T) {
	ctx, s := newSolverT()
	c := ctx.BoolVar("c")
	x := ctx.Ite(c, ctx.BVConst(8, 7), ctx.BVConst(8, 9))
	s.Assert(ctx.Eq(x, ctx.BVConst(8, 9)))
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("Check = %v, want Sat", got)
	}
	if s.BoolValue(c) {
		t.Error("c should be false to select 9")
	}
}

func TestRegionOverlapWitness(t *testing.T) {
	// The paper's running example: memory bank [0x60000000,0x80000000)
	// and uart at [0x60000000,0x60001000): llhsc must find a witness
	// address inside both (Section I-A).
	ctx, s := newSolverT()
	w := 32
	x := ctx.BVVar("x", w)
	memBase := ctx.BVConst(w, 0x60000000)
	memEnd := ctx.BVConst(w, 0x80000000)
	uartBase := ctx.BVConst(w, 0x60000000)
	uartEnd := ctx.BVConst(w, 0x60001000)
	s.Assert(ctx.And(
		ctx.Ule(memBase, x), ctx.Ult(x, memEnd),
		ctx.Ule(uartBase, x), ctx.Ult(x, uartEnd),
	))
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("Check = %v, want Sat (overlap exists)", got)
	}
	witness := s.BVValue(x)
	if witness < 0x60000000 || witness >= 0x60001000 {
		t.Errorf("witness %#x not in the overlap", witness)
	}
}

func TestRegionNoOverlap(t *testing.T) {
	ctx, s := newSolverT()
	w := 32
	x := ctx.BVVar("x", w)
	s.Assert(ctx.And(
		ctx.Ule(ctx.BVConst(w, 0x1000), x), ctx.Ult(x, ctx.BVConst(w, 0x2000)),
		ctx.Ule(ctx.BVConst(w, 0x3000), x), ctx.Ult(x, ctx.BVConst(w, 0x4000)),
	))
	if got := s.Check(); got != sat.Unsat {
		t.Fatalf("Check = %v, want Unsat (disjoint regions)", got)
	}
}

func TestPushPop(t *testing.T) {
	ctx, s := newSolverT()
	x := ctx.BVVar("x", 8)
	s.Assert(ctx.Ult(x, ctx.BVConst(8, 10)))

	s.Push()
	s.Assert(ctx.Eq(x, ctx.BVConst(8, 200)))
	if got := s.Check(); got != sat.Unsat {
		t.Fatalf("inner Check = %v, want Unsat", got)
	}
	s.Pop()

	if got := s.Check(); got != sat.Sat {
		t.Fatalf("after Pop: Check = %v, want Sat", got)
	}
	if got := s.BVValue(x); got >= 10 {
		t.Errorf("x = %d, want < 10", got)
	}
	if s.NumScopes() != 0 {
		t.Errorf("NumScopes = %d, want 0", s.NumScopes())
	}
}

func TestNestedPushPop(t *testing.T) {
	ctx, s := newSolverT()
	a := ctx.BoolVar("a")
	b := ctx.BoolVar("b")
	s.Assert(ctx.Or(a, b))
	s.Push()
	s.Assert(ctx.Not(a))
	s.Push()
	s.Assert(ctx.Not(b))
	if got := s.Check(); got != sat.Unsat {
		t.Fatalf("deepest: %v, want Unsat", got)
	}
	s.Pop()
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("middle: %v, want Sat", got)
	}
	if s.BoolValue(a) || !s.BoolValue(b) {
		t.Errorf("model a=%v b=%v, want false,true", s.BoolValue(a), s.BoolValue(b))
	}
	s.Pop()
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("base: %v, want Sat", got)
	}
}

func TestPopBasePanics(t *testing.T) {
	_, s := newSolverT()
	defer func() {
		if recover() == nil {
			t.Error("Pop on base scope should panic")
		}
	}()
	s.Pop()
}

func TestNamedAssertionsUnsatNames(t *testing.T) {
	ctx, s := newSolverT()
	a := ctx.BoolVar("a")
	s.AssertNamed("require-a", a)
	s.AssertNamed("forbid-a", ctx.Not(a))
	s.AssertNamed("unrelated", ctx.BoolVar("z"))
	if got := s.Check(); got != sat.Unsat {
		t.Fatalf("Check = %v, want Unsat", got)
	}
	names := s.UnsatNames()
	seen := make(map[string]bool)
	for _, n := range names {
		seen[n] = true
	}
	if !seen["require-a"] || !seen["forbid-a"] {
		t.Errorf("UnsatNames = %v, want require-a and forbid-a", names)
	}
	if seen["unrelated"] {
		t.Errorf("UnsatNames = %v should not include unrelated", names)
	}
}

func TestStringEquality(t *testing.T) {
	ctx, s := newSolverT()
	v := ctx.StrVar("prop")
	s.Assert(ctx.Eq(v, ctx.StrConst("reg")))
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("Check = %v, want Sat", got)
	}
	if val, ok := s.StrValue(v); !ok || val != "reg" {
		t.Errorf("StrValue = %q,%v, want reg,true", val, ok)
	}
	// a variable cannot equal two distinct constants
	s.Assert(ctx.Eq(v, ctx.StrConst("device_type")))
	if got := s.Check(); got != sat.Unsat {
		t.Fatalf("Check = %v, want Unsat", got)
	}
}

func TestStringVarVarEquality(t *testing.T) {
	ctx, s := newSolverT()
	// intern the domain first (finite-domain semantics)
	regC := ctx.StrConst("reg")
	dtC := ctx.StrConst("device_type")
	v1 := ctx.StrVar("p1")
	v2 := ctx.StrVar("p2")
	s.Assert(ctx.Eq(v1, regC))
	s.Assert(ctx.Eq(v1, v2))
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("Check = %v, want Sat", got)
	}
	if val, _ := s.StrValue(v2); val != "reg" {
		t.Errorf("v2 = %q, want reg", val)
	}
	s.Assert(ctx.Eq(v2, dtC))
	if got := s.Check(); got != sat.Unsat {
		t.Fatalf("Check = %v, want Unsat", got)
	}
}

func TestHashConsing(t *testing.T) {
	ctx := NewContext()
	a := ctx.BVVar("a", 8)
	b := ctx.BVVar("b", 8)
	t1 := ctx.Add(a, b)
	t2 := ctx.Add(a, b)
	if t1 != t2 {
		t.Error("hash-consing should return identical terms")
	}
	ctx2 := NewContext(WithoutHashConsing())
	a2 := ctx2.BVVar("a", 8)
	b2 := ctx2.BVVar("b", 8)
	if ctx2.Add(a2, b2) == ctx2.Add(a2, b2) {
		t.Error("WithoutHashConsing should produce distinct terms")
	}
}

func TestConstantFolding(t *testing.T) {
	ctx := NewContext()
	if got := ctx.Add(ctx.BVConst(8, 200), ctx.BVConst(8, 100)); got.Op() != OpBVConst || got.Uint64() != 44 {
		t.Errorf("const add not folded: %v", got)
	}
	if got := ctx.Ult(ctx.BVConst(8, 1), ctx.BVConst(8, 2)); got != ctx.True() {
		t.Errorf("const ult not folded: %v", got)
	}
	if got := ctx.Eq(ctx.StrConst("a"), ctx.StrConst("a")); got != ctx.True() {
		t.Errorf("string const eq not folded: %v", got)
	}
	if got := ctx.Extract(ctx.BVConst(16, 0xabcd), 15, 8); got.Uint64() != 0xab {
		t.Errorf("const extract not folded: %v", got)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	ctx := NewContext()
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched widths should panic")
		}
	}()
	ctx.Add(ctx.BVVar("a", 8), ctx.BVVar("b", 16))
}

func TestSameVarDifferentWidthPanics(t *testing.T) {
	ctx, s := newSolverT()
	s.Assert(ctx.Eq(ctx.BVVar("x", 8), ctx.BVConst(8, 1)))
	defer func() {
		if recover() == nil {
			t.Error("reusing a variable name at another width should panic")
		}
	}()
	s.Assert(ctx.Eq(ctx.BVVar("x", 16), ctx.BVConst(16, 1)))
}

func TestPropertyAddCommutes(t *testing.T) {
	prop := func(a, b uint16) bool {
		ctx, s := newSolverT()
		x := ctx.BVVar("x", 16)
		y := ctx.BVVar("y", 16)
		s.Assert(ctx.Eq(x, ctx.BVConst(16, uint64(a))))
		s.Assert(ctx.Eq(y, ctx.BVConst(16, uint64(b))))
		if s.Check() != sat.Sat {
			return false
		}
		return s.BVValue(ctx.Add(x, y)) == s.BVValue(ctx.Add(y, x)) &&
			s.BVValue(ctx.Add(x, y)) == uint64(a+b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertySubInverse(t *testing.T) {
	prop := func(a, b uint8) bool {
		ctx, s := newSolverT()
		x := ctx.BVVar("x", 8)
		s.Assert(ctx.Eq(ctx.Add(x, ctx.BVConst(8, uint64(b))), ctx.BVConst(8, uint64(a))))
		if s.Check() != sat.Sat {
			return false
		}
		return uint8(s.BVValue(x))+b == a
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	ctx, s := newSolverT()
	x := ctx.BVVar("x", 32)
	s.Assert(ctx.Ult(x, ctx.BVConst(32, 100)))
	s.Check()
	st := s.Stats()
	if st.Checks != 1 {
		t.Errorf("Checks = %d, want 1", st.Checks)
	}
	if st.SAT.Vars == 0 {
		t.Error("expected SAT vars > 0")
	}
}

func TestForallFinite(t *testing.T) {
	ctx, s := newSolverT()
	// domain of three names; R must hold for each
	for _, n := range []string{"reg", "device_type", "compatible"} {
		ctx.StrConst(n)
	}
	r := func(name *Term) *Term { return ctx.BoolVar("R:" + name.Name()) }
	s.Assert(ctx.ForallFinite(ctx.StrDomainTerms(), r))
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("Check = %v", got)
	}
	for _, n := range []string{"reg", "device_type", "compatible"} {
		if !s.BoolValue(ctx.BoolVar("R:" + n)) {
			t.Errorf("R(%s) should be forced true", n)
		}
	}
	// empty domain: vacuous truth
	if got := ctx.ForallFinite(nil, r); got != ctx.True() {
		t.Errorf("empty forall = %v", got)
	}
	if got := ctx.ExistsFinite(nil, r); got != ctx.False() {
		t.Errorf("empty exists = %v", got)
	}
}

func TestExistsFinite(t *testing.T) {
	ctx, s := newSolverT()
	for _, n := range []string{"a", "b"} {
		ctx.StrConst(n)
	}
	r := func(name *Term) *Term { return ctx.BoolVar("P:" + name.Name()) }
	s.Assert(ctx.ExistsFinite(ctx.StrDomainTerms(), r))
	s.Assert(ctx.Not(ctx.BoolVar("P:a")))
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("Check = %v", got)
	}
	if !s.BoolValue(ctx.BoolVar("P:b")) {
		t.Error("P(b) must hold when P(a) is denied")
	}
	s.Assert(ctx.Not(ctx.BoolVar("P:b")))
	if got := s.Check(); got != sat.Unsat {
		t.Fatalf("Check = %v, want Unsat", got)
	}
}
