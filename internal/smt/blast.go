package smt

import (
	"fmt"

	"llhsc/internal/logic"
)

// This file implements bit-blasting: the translation of Boolean,
// bit-vector and finite-domain string terms into CNF over the
// underlying SAT solver. Gate clauses are definitional equivalences
// (they never constrain their inputs on their own) and are therefore
// added permanently, outside any assertion frame — safe across
// Push/Pop and reused by every later assertion thanks to the caches.

// blastBool compiles a Boolean term into a literal.
func (s *Solver) blastBool(t *Term) logic.Lit {
	s.ctx.wantSort(t, SortBool)
	if l, ok := s.boolLits[t.id]; ok {
		return l
	}
	var l logic.Lit
	switch t.op {
	case OpTrue:
		l = s.trueLit
	case OpFalse:
		l = s.trueLit.Neg()
	case OpBoolVar:
		v, ok := s.varLits[t.name]
		if !ok {
			v = s.fresh()
			s.varLits[t.name] = v
		}
		l = v
	case OpNot:
		l = s.blastBool(t.args[0]).Neg()
	case OpAnd:
		lits := s.getArgs(len(t.args))
		for i, a := range t.args {
			lits[i] = s.blastBool(a)
		}
		l = s.andGate(lits)
		s.putArgs(lits)
	case OpOr:
		lits := s.getArgs(len(t.args))
		for i, a := range t.args {
			lits[i] = s.blastBool(a)
		}
		l = s.orGate(lits)
		s.putArgs(lits)
	case OpIte:
		c := s.blastBool(t.args[0])
		a := s.blastBool(t.args[1])
		b := s.blastBool(t.args[2])
		l = s.muxGate(c, a, b)
	case OpEq:
		l = s.blastEq(t.args[0], t.args[1])
	case OpBVUlt:
		l = s.blastCompare(t.args[0], t.args[1], true)
	case OpBVUle:
		l = s.blastCompare(t.args[0], t.args[1], false)
	default:
		panic(fmt.Sprintf("smt: cannot blast Boolean term %s", t))
	}
	s.boolLits[t.id] = l
	return l
}

func (s *Solver) blastEq(a, b *Term) logic.Lit {
	switch a.sort {
	case SortBool:
		return s.iffGate(s.blastBool(a), s.blastBool(b))
	case SortBV:
		ab := s.blastBV(a)
		bb := s.blastBV(b)
		iffs := s.getArgs(len(ab))
		for i := range ab {
			iffs[i] = s.iffGate(ab[i], bb[i])
		}
		out := s.andGate(iffs)
		s.putArgs(iffs)
		return out
	case SortString:
		return s.blastStrEq(a, b)
	default:
		panic("smt: Eq over unknown sort")
	}
}

// blastCompare encodes a < b (strict) or a <= b over bit-vectors.
func (s *Solver) blastCompare(a, b *Term, strict bool) logic.Lit {
	ab := s.blastBV(a)
	bb := s.blastBV(b)
	// lt_0 over the empty suffix: strict -> false, non-strict -> true
	acc := s.trueLit
	if strict {
		acc = s.trueLit.Neg()
	}
	for i := 0; i < len(ab); i++ { // LSB to MSB
		ai, bi := ab[i], bb[i]
		lessAt := s.andGate2(ai.Neg(), bi) // !a_i & b_i
		eqAt := s.iffGate(ai, bi)
		acc = s.orGate2(lessAt, s.andGate2(eqAt, acc))
	}
	return acc
}

// blastStrEq encodes equality over the finite string domain.
//
// Var-to-const equality becomes a dedicated pair literal, with mutual
// exclusion against every other pair literal of the same variable.
// Var-to-var equality expands over the constants interned in the
// context at blasting time (finite-domain semantics; see package doc).
func (s *Solver) blastStrEq(a, b *Term) logic.Lit {
	if a.op == OpStrConst && b.op == OpStrConst {
		if a.name == b.name {
			return s.trueLit
		}
		return s.trueLit.Neg()
	}
	if a.op == OpStrConst {
		a, b = b, a
	}
	if b.op == OpStrConst { // a is a var
		return s.strPairLit(a.name, b.name)
	}
	// var = var: equal iff they agree on some domain constant
	if a.name == b.name {
		return s.trueLit
	}
	both := s.getArgs(len(s.ctx.strNames))
	for i, c := range s.ctx.strNames {
		both[i] = s.andGate2(s.strPairLit(a.name, c), s.strPairLit(b.name, c))
	}
	out := s.orGate(both)
	s.putArgs(both)
	return out
}

// strPairLit returns the literal for "string variable v equals constant
// c", creating it (and the at-most-one constraints against the
// variable's other pair literals) on first use.
func (s *Solver) strPairLit(v, c string) logic.Lit {
	key := [2]string{v, c}
	if l, ok := s.strPairs[key]; ok {
		return l
	}
	l := s.fresh()
	// a variable cannot equal two distinct constants
	for other, ol := range s.strPairs {
		if other[0] == v {
			s.sat.AddClause(l.Neg(), ol.Neg())
		}
	}
	s.strPairs[key] = l
	return l
}

// blastBV compiles a bit-vector term into its bit literals, LSB first.
func (s *Solver) blastBV(t *Term) []logic.Lit {
	s.ctx.wantSort(t, SortBV)
	if bs, ok := s.bits[t.id]; ok {
		return bs
	}
	var bs []logic.Lit
	switch t.op {
	case OpBVConst:
		bs = make([]logic.Lit, t.width)
		for i := range bs {
			if t.val&(1<<uint(i)) != 0 {
				bs[i] = s.trueLit
			} else {
				bs[i] = s.trueLit.Neg()
			}
		}
	case OpBVVar:
		existing, ok := s.bvVars[t.name]
		if !ok {
			existing = make([]logic.Lit, t.width)
			for i := range existing {
				existing[i] = s.fresh()
			}
			s.bvVars[t.name] = existing
		}
		if len(existing) != t.width {
			panic(fmt.Sprintf("smt: variable %q used at widths %d and %d",
				t.name, len(existing), t.width))
		}
		bs = existing
	case OpBVAdd:
		bs, _ = s.adder(s.blastBV(t.args[0]), s.blastBV(t.args[1]), s.trueLit.Neg())
	case OpBVSub:
		// a - b = a + ~b + 1
		nb := s.notBits(s.blastBV(t.args[1]))
		bs, _ = s.adder(s.blastBV(t.args[0]), nb, s.trueLit)
	case OpBVMul:
		bs = s.multiplier(s.blastBV(t.args[0]), s.blastBV(t.args[1]))
	case OpBVAnd:
		bs = s.bitwise(t, s.andGate2)
	case OpBVOr:
		bs = s.bitwise(t, s.orGate2)
	case OpBVXor:
		bs = s.bitwise(t, s.xorGate)
	case OpBVNot:
		bs = s.notBits(s.blastBV(t.args[0]))
	case OpBVShl:
		in := s.blastBV(t.args[0])
		n := int(t.val)
		bs = make([]logic.Lit, t.width)
		for i := range bs {
			if i < n {
				bs[i] = s.trueLit.Neg()
			} else {
				bs[i] = in[i-n]
			}
		}
	case OpBVLshr:
		in := s.blastBV(t.args[0])
		n := int(t.val)
		bs = make([]logic.Lit, t.width)
		for i := range bs {
			if i+n < len(in) {
				bs[i] = in[i+n]
			} else {
				bs[i] = s.trueLit.Neg()
			}
		}
	case OpBVExtract:
		in := s.blastBV(t.args[0])
		hi, lo := int(t.val>>8), int(t.val&0xff)
		bs = append([]logic.Lit(nil), in[lo:hi+1]...)
	case OpBVConcat:
		hi := s.blastBV(t.args[0])
		lo := s.blastBV(t.args[1])
		bs = append(append([]logic.Lit(nil), lo...), hi...)
	case OpIte:
		c := s.blastBool(t.args[0])
		a := s.blastBV(t.args[1])
		b := s.blastBV(t.args[2])
		bs = make([]logic.Lit, t.width)
		for i := range bs {
			bs[i] = s.muxGate(c, a[i], b[i])
		}
	default:
		panic(fmt.Sprintf("smt: cannot blast bit-vector term %s", t))
	}
	if len(bs) != t.width {
		panic(fmt.Sprintf("smt: internal width error blasting %s", t))
	}
	s.bits[t.id] = bs
	return bs
}

func (s *Solver) bitwise(t *Term, gate func(a, b logic.Lit) logic.Lit) []logic.Lit {
	a := s.blastBV(t.args[0])
	b := s.blastBV(t.args[1])
	bs := make([]logic.Lit, len(a))
	for i := range bs {
		bs[i] = gate(a[i], b[i])
	}
	return bs
}

func (s *Solver) notBits(in []logic.Lit) []logic.Lit {
	out := make([]logic.Lit, len(in))
	for i, l := range in {
		out[i] = l.Neg()
	}
	return out
}

// adder returns the ripple-carry sum of a and b with the given carry-in,
// along with the final carry-out.
func (s *Solver) adder(a, b []logic.Lit, carryIn logic.Lit) (sum []logic.Lit, carryOut logic.Lit) {
	sum = make([]logic.Lit, len(a))
	carry := carryIn
	for i := range a {
		sum[i] = s.xorGate(s.xorGate(a[i], b[i]), carry)
		carry = s.majGate(a[i], b[i], carry)
	}
	return sum, carry
}

// multiplier implements shift-and-add multiplication (modular).
func (s *Solver) multiplier(a, b []logic.Lit) []logic.Lit {
	n := len(a)
	acc := make([]logic.Lit, n)
	for i := range acc {
		acc[i] = s.trueLit.Neg()
	}
	partial := s.getArgs(n) // reused across iterations; adder copies out
	for i := 0; i < n; i++ {
		// partial = (a << i) masked by b[i]
		for j := range partial {
			if j < i {
				partial[j] = s.trueLit.Neg()
			} else {
				partial[j] = s.andGate2(a[j-i], b[i])
			}
		}
		acc, _ = s.adder(acc, partial, s.trueLit.Neg())
	}
	s.putArgs(partial)
	return acc
}

// ---- gates (definitional clauses, added permanently) ----
//
// The gates reuse scratch storage hung off the Solver instead of
// allocating per call: sat.AddClause copies its arguments, so the long
// definitional clause can live in s.gateScratch, and the n-ary helpers
// borrow argument slices from s.argPool (a free list, because blastBool
// recurses while an argument slice is live). This is safe under the
// Solver's single-goroutine contract (see enter in solver.go).

// getArgs borrows an n-literal scratch slice from the solver's pool.
func (s *Solver) getArgs(n int) []logic.Lit {
	if k := len(s.argPool); k > 0 {
		buf := s.argPool[k-1]
		s.argPool = s.argPool[:k-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]logic.Lit, n)
}

// putArgs returns a slice obtained from getArgs to the pool. The caller
// must not touch the slice afterwards.
func (s *Solver) putArgs(buf []logic.Lit) {
	s.argPool = append(s.argPool, buf[:0])
}

// andGate2 and orGate2 are allocation-free two-input forms.
func (s *Solver) andGate2(a, b logic.Lit) logic.Lit {
	s.pair2[0], s.pair2[1] = a, b
	return s.andGate(s.pair2[:])
}

func (s *Solver) orGate2(a, b logic.Lit) logic.Lit {
	s.pair2[0], s.pair2[1] = a, b
	return s.orGate(s.pair2[:])
}

func (s *Solver) andGate(lits []logic.Lit) logic.Lit {
	switch len(lits) {
	case 0:
		return s.trueLit
	case 1:
		return lits[0]
	}
	out := s.fresh()
	long := s.gateScratch[:0]
	for _, l := range lits {
		s.sat.AddClause(out.Neg(), l)
		long = append(long, l.Neg())
	}
	long = append(long, out)
	s.sat.AddClause(long...)
	s.gateScratch = long[:0]
	return out
}

func (s *Solver) orGate(lits []logic.Lit) logic.Lit {
	switch len(lits) {
	case 0:
		return s.trueLit.Neg()
	case 1:
		return lits[0]
	}
	out := s.fresh()
	long := s.gateScratch[:0]
	for _, l := range lits {
		s.sat.AddClause(l.Neg(), out)
		long = append(long, l)
	}
	long = append(long, out.Neg())
	s.sat.AddClause(long...)
	s.gateScratch = long[:0]
	return out
}

// xorGate returns out with out ↔ a ⊕ b.
func (s *Solver) xorGate(a, b logic.Lit) logic.Lit {
	out := s.fresh()
	s.sat.AddClause(a.Neg(), b.Neg(), out.Neg())
	s.sat.AddClause(a, b, out.Neg())
	s.sat.AddClause(a, b.Neg(), out)
	s.sat.AddClause(a.Neg(), b, out)
	return out
}

// iffGate returns out with out ↔ (a ↔ b).
func (s *Solver) iffGate(a, b logic.Lit) logic.Lit {
	return s.xorGate(a, b).Neg()
}

// majGate returns out with out ↔ majority(a, b, c).
func (s *Solver) majGate(a, b, c logic.Lit) logic.Lit {
	out := s.fresh()
	s.sat.AddClause(a.Neg(), b.Neg(), out)
	s.sat.AddClause(a.Neg(), c.Neg(), out)
	s.sat.AddClause(b.Neg(), c.Neg(), out)
	s.sat.AddClause(a, b, out.Neg())
	s.sat.AddClause(a, c, out.Neg())
	s.sat.AddClause(b, c, out.Neg())
	return out
}

// muxGate returns out with out ↔ (c ? a : b).
func (s *Solver) muxGate(c, a, b logic.Lit) logic.Lit {
	out := s.fresh()
	s.sat.AddClause(c.Neg(), a.Neg(), out)
	s.sat.AddClause(c.Neg(), a, out.Neg())
	s.sat.AddClause(c, b.Neg(), out)
	s.sat.AddClause(c, b, out.Neg())
	return out
}
