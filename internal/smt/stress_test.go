package smt

import (
	"fmt"
	"math/rand"
	"testing"

	"llhsc/internal/sat"
)

// TestPushPopStress interleaves random assertions, pushes, pops and
// checks, cross-validating every Check against a fresh solver built
// from only the currently-live assertions.
func TestPushPopStress(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for round := 0; round < 20; round++ {
		ctx := NewContext()
		solver := NewSolver(ctx)

		vars := make([]*Term, 6)
		for i := range vars {
			vars[i] = ctx.BoolVar(fmt.Sprintf("v%d", i))
		}
		randomAssertion := func() *Term {
			a := vars[rng.Intn(len(vars))]
			b := vars[rng.Intn(len(vars))]
			switch rng.Intn(4) {
			case 0:
				return ctx.Or(a, b)
			case 1:
				return ctx.Or(ctx.Not(a), b)
			case 2:
				return ctx.Or(a, ctx.Not(b))
			default:
				return ctx.Or(ctx.Not(a), ctx.Not(b))
			}
		}

		// stack of assertion frames; frames[0] is the base
		frames := [][]*Term{{}}
		for step := 0; step < 60; step++ {
			switch rng.Intn(5) {
			case 0:
				solver.Push()
				frames = append(frames, nil)
			case 1:
				if len(frames) > 1 {
					solver.Pop()
					frames = frames[:len(frames)-1]
				}
			case 2, 3:
				a := randomAssertion()
				solver.Assert(a)
				frames[len(frames)-1] = append(frames[len(frames)-1], a)
			default:
				got := solver.Check()
				want := freshVerdict(ctx, frames)
				if got != want {
					t.Fatalf("round %d step %d: incremental=%v fresh=%v", round, step, got, want)
				}
			}
		}
		// final check
		if got, want := solver.Check(), freshVerdict(ctx, frames); got != want {
			t.Fatalf("round %d final: incremental=%v fresh=%v", round, got, want)
		}
	}
}

// freshVerdict solves the live assertions with a brand-new solver.
func freshVerdict(ctx *Context, frames [][]*Term) sat.Status {
	s := NewSolver(ctx)
	for _, frame := range frames {
		for _, a := range frame {
			s.Assert(a)
		}
	}
	return s.Check()
}

// TestBVConstraintStress cross-validates random small bit-vector
// constraint systems against brute force.
func TestBVConstraintStress(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	const width = 4
	for round := 0; round < 120; round++ {
		ctx := NewContext()
		solver := NewSolver(ctx)
		x := ctx.BVVar("x", width)
		y := ctx.BVVar("y", width)

		type constraint func(xv, yv uint64) bool
		var checks []constraint
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			c := ctx.BVConst(width, uint64(rng.Intn(16)))
			cv := c.Uint64()
			switch rng.Intn(5) {
			case 0:
				solver.Assert(ctx.Ult(ctx.Add(x, y), c))
				checks = append(checks, func(xv, yv uint64) bool { return (xv+yv)&0xf < cv })
			case 1:
				solver.Assert(ctx.Ule(c, ctx.BVXor(x, y)))
				checks = append(checks, func(xv, yv uint64) bool { return cv <= xv^yv })
			case 2:
				solver.Assert(ctx.Eq(ctx.BVAnd(x, c), ctx.BVConst(width, 0)))
				checks = append(checks, func(xv, yv uint64) bool { return xv&cv == 0 })
			case 3:
				solver.Assert(ctx.Not(ctx.Eq(x, y)))
				checks = append(checks, func(xv, yv uint64) bool { return xv != yv })
			default:
				solver.Assert(ctx.Eq(ctx.Sub(x, y), c))
				checks = append(checks, func(xv, yv uint64) bool { return (xv-yv)&0xf == cv })
			}
		}

		want := false
		for xv := uint64(0); xv < 16 && !want; xv++ {
			for yv := uint64(0); yv < 16; yv++ {
				ok := true
				for _, c := range checks {
					if !c(xv, yv) {
						ok = false
						break
					}
				}
				if ok {
					want = true
					break
				}
			}
		}

		got := solver.Check()
		if (got == sat.Sat) != want {
			t.Fatalf("round %d: solver=%v brute=%v", round, got, want)
		}
		if got == sat.Sat {
			xv, yv := solver.BVValue(x), solver.BVValue(y)
			for i, c := range checks {
				if !c(xv, yv) {
					t.Fatalf("round %d: model x=%d y=%d violates constraint %d", round, xv, yv, i)
				}
			}
		}
	}
}

// TestManyStringConstants stresses the finite-domain string encoding
// with a larger intern table.
func TestManyStringConstants(t *testing.T) {
	ctx := NewContext()
	solver := NewSolver(ctx)
	v := ctx.StrVar("prop")

	var alts []*Term
	for i := 0; i < 50; i++ {
		alts = append(alts, ctx.Eq(v, ctx.StrConst(fmt.Sprintf("name-%d", i))))
	}
	solver.Assert(ctx.Or(alts...))
	solver.Assert(ctx.Not(ctx.Eq(v, ctx.StrConst("name-0"))))
	for i := 2; i < 50; i++ {
		solver.Assert(ctx.Not(ctx.Eq(v, ctx.StrConst(fmt.Sprintf("name-%d", i)))))
	}
	if got := solver.Check(); got != sat.Sat {
		t.Fatalf("Check = %v", got)
	}
	if val, ok := solver.StrValue(v); !ok || val != "name-1" {
		t.Errorf("StrValue = %q,%v; want name-1", val, ok)
	}
}
