package smt

import (
	"strings"
	"sync"
	"testing"

	"llhsc/internal/sat"
)

// TestSolversIndependentAcrossGoroutines exercises the supported
// concurrency model — one Context+Solver per goroutine — under -race.
// Each goroutine solves an independent BV problem whose answer it can
// verify, so cross-talk through shared scratch buffers would show up
// both as a race report and as a wrong model.
func TestSolversIndependentAcrossGoroutines(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := NewContext()
			s := NewSolver(ctx)
			x := ctx.BVVar("x", 16)
			y := ctx.BVVar("y", 16)
			want := uint64(100 + 17*w)
			s.Assert(ctx.Eq(ctx.Add(x, ctx.BVConst(16, 5)), ctx.BVConst(16, want)))
			s.Assert(ctx.Eq(ctx.Mul(y, ctx.BVConst(16, 3)), ctx.BVConst(16, 3*want)))
			s.Assert(ctx.Ult(ctx.BVConst(16, 0), x))
			if got := s.Check(); got != sat.Sat {
				t.Errorf("worker %d: Check = %v, want Sat", w, got)
				return
			}
			if got := s.BVValue(x); got != want-5 {
				t.Errorf("worker %d: x = %d, want %d", w, got, want-5)
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentUseOfOneSolverPanics checks that the misuse guard
// fires: two goroutines driving the same Solver must trip the busy
// check rather than silently corrupting scratch state.
func TestConcurrentUseOfOneSolverPanics(t *testing.T) {
	ctx := NewContext()
	s := NewSolver(ctx)
	// Hold the solver busy from this goroutine by entering manually,
	// then call a guarded method from another goroutine.
	release := s.enter()
	defer release()

	panicked := make(chan string, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				panicked <- r.(string)
			} else {
				panicked <- ""
			}
		}()
		s.Assert(ctx.True())
	}()
	msg := <-panicked
	if !strings.Contains(msg, "concurrently") {
		t.Fatalf("expected concurrent-use panic, got %q", msg)
	}
}
