package smt

import (
	"testing"

	"llhsc/internal/sat"
)

// TestHashConsingPointerEquality: structurally equal terms built twice
// must come back as the same pointer, with no new ids allocated — the
// integer-keyed intern table's core contract.
func TestHashConsingPointerEquality(t *testing.T) {
	c := NewContext()
	build := func() *Term {
		x := c.BVVar("x", 32)
		return c.And(c.Ule(c.BVConst(32, 0x40), x), c.Ult(x, c.BVConst(32, 0x80)), c.BoolVar("p"))
	}
	a := build()
	n := c.NumTerms()
	b := build()
	if a != b {
		t.Error("structurally equal terms are distinct pointers")
	}
	if got := c.NumTerms(); got != n {
		t.Errorf("re-building an interned term allocated %d new ids", got-n)
	}
}

// TestHashConsingDiscriminates: terms differing in any structural
// component — width, value, name, operator, argument identity — must
// stay distinct even when their hashes could collide.
func TestHashConsingDiscriminates(t *testing.T) {
	c := NewContext()
	if c.BVConst(32, 7) == c.BVConst(16, 7) {
		t.Error("width does not discriminate")
	}
	if c.BVConst(32, 7) == c.BVConst(32, 8) {
		t.Error("value does not discriminate")
	}
	if c.BoolVar("p") == c.BoolVar("q") {
		t.Error("name does not discriminate")
	}
	x, y := c.BVVar("x", 8), c.BVVar("y", 8)
	if c.Ule(x, y) == c.Ule(y, x) {
		t.Error("argument order does not discriminate")
	}
	if c.Ule(x, y) == c.Ult(x, y) {
		t.Error("operator does not discriminate")
	}
}

// TestInternStats: the hit/miss counters expose the consing table's
// effectiveness — a re-build of an interned term is all hits, and the
// no-consing ablation records only misses.
func TestInternStats(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 8)
	a := c.Ule(c.BVConst(8, 1), x)
	h0, m0 := c.InternStats()
	if m0 == 0 {
		t.Fatal("interning recorded no misses")
	}
	b := c.Ule(c.BVConst(8, 1), x) // structurally identical: all hits
	if a != b {
		t.Fatal("hash consing failed")
	}
	h1, m1 := c.InternStats()
	if m1 != m0 {
		t.Errorf("re-building interned terms allocated %d new terms", m1-m0)
	}
	if h1-h0 < 2 { // the rebuilt const and ule both hit
		t.Errorf("hits delta = %d, want >= 2", h1-h0)
	}

	ablated := NewContext(WithoutHashConsing())
	y := ablated.BVVar("y", 8)
	ablated.Ule(y, y)
	if hits, misses := ablated.InternStats(); hits != 0 || misses == 0 {
		t.Errorf("no-consing context: hits=%d misses=%d, want 0 hits", hits, misses)
	}
}

// TestWithoutHashConsing preserves the ablation mode: every build
// yields a fresh term, and NumTerms grows accordingly.
func TestWithoutHashConsing(t *testing.T) {
	c := NewContext(WithoutHashConsing())
	p1 := c.BoolVar("p")
	n := c.NumTerms()
	p2 := c.BoolVar("p")
	if p1 == p2 {
		t.Error("WithoutHashConsing returned a shared term")
	}
	if got := c.NumTerms(); got <= n {
		t.Errorf("NumTerms = %d after a fresh build, want > %d", got, n)
	}
}

// TestAndOrSimplification is the table for the n-ary constructors:
// flattening, duplicate dropping, complement short-circuiting, and the
// constant rules. Simplified terms must be pointer-identical to their
// canonical forms (the builders hash-cons).
func TestAndOrSimplification(t *testing.T) {
	c := NewContext()
	p, q := c.BoolVar("p"), c.BoolVar("q")
	for _, tt := range []struct {
		name      string
		got, want *Term
	}{
		{"and dedupes repeats", c.And(p, q, p, q), c.And(p, q)},
		{"or dedupes repeats", c.Or(q, q, p), c.Or(q, p)},
		{"and of complements is false", c.And(p, c.Not(p)), c.False()},
		{"and with buried complement", c.And(p, q, c.Not(q)), c.False()},
		{"or of complements is true", c.Or(p, q, c.Not(p)), c.True()},
		{"and drops true", c.And(p, c.True(), q), c.And(p, q)},
		{"or drops false", c.Or(c.False(), p), p},
		{"and absorbs false", c.And(p, c.False(), q), c.False()},
		{"or absorbs true", c.Or(p, c.True()), c.True()},
		{"empty and", c.And(), c.True()},
		{"empty or", c.Or(), c.False()},
		{"singleton and", c.And(q), q},
		{"singleton or", c.Or(p), p},
		{"and flattens nested and", c.And(c.And(p, q), p), c.And(p, q)},
		{"or flattens nested or", c.Or(c.Or(p, q), q), c.Or(p, q)},
		{"flattened complement detected", c.And(c.And(p, q), c.Not(p)), c.False()},
	} {
		if tt.got != tt.want {
			t.Errorf("%s: got %v, want %v", tt.name, tt.got, tt.want)
		}
	}
}

// TestAndOrSimplificationSolves: the simplifier must preserve
// satisfiability, not just shapes.
func TestAndOrSimplificationSolves(t *testing.T) {
	c := NewContext()
	s := NewSolver(c)
	p, q := c.BoolVar("p"), c.BoolVar("q")
	s.Assert(c.And(p, q, p))
	if got := s.Check(); got != sat.Sat {
		t.Fatalf("Check = %v, want Sat", got)
	}
	if !s.BoolValue(p) || !s.BoolValue(q) {
		t.Errorf("model p=%v q=%v, want both true", s.BoolValue(p), s.BoolValue(q))
	}
	s.Assert(c.Or(c.Not(p), c.Not(q), c.Not(p)))
	if got := s.Check(); got != sat.Unsat {
		t.Errorf("Check after contradiction = %v, want Unsat", got)
	}
}

// TestCheckAssuming: assumptions decide the query without becoming part
// of the asserted problem, and repeated queries reuse the blast memo
// instead of re-encoding.
func TestCheckAssuming(t *testing.T) {
	c := NewContext()
	s := NewSolver(c)
	p, q, r := c.BoolVar("p"), c.BoolVar("q"), c.BoolVar("r")
	s.Assert(c.Implies(p, q))
	s.Assert(c.Implies(q, c.Not(r)))

	if got := s.CheckAssuming(p, r); got != sat.Unsat {
		t.Fatalf("CheckAssuming(p, r) = %v, want Unsat", got)
	}
	if got := s.CheckAssuming(p); got != sat.Sat {
		t.Fatalf("CheckAssuming(p) = %v, want Sat", got)
	}
	if !s.BoolValue(q) {
		t.Error("model under assumption p: q = false, want true")
	}
	// The Unsat assumption set did not persist as an assertion.
	if got := s.CheckAssuming(r); got != sat.Sat {
		t.Errorf("CheckAssuming(r) = %v, want Sat — assumptions must not stick", got)
	}
	if got := s.Check(); got != sat.Sat {
		t.Errorf("Check() = %v, want Sat", got)
	}

	// Blast memo survives across assumption queries: no new literals.
	x := c.BVVar("x", 16)
	s.Assert(c.Implies(p, c.Ule(c.BVConst(16, 0x10), x)))
	s.CheckAssuming(p)
	before := s.Stats()
	for i := 0; i < 5; i++ {
		s.CheckAssuming(p)
	}
	after := s.Stats()
	if after.BoolLits != before.BoolLits || after.BVTerms != before.BVTerms {
		t.Errorf("repeated CheckAssuming re-encoded: lits %d -> %d, bv terms %d -> %d",
			before.BoolLits, after.BoolLits, before.BVTerms, after.BVTerms)
	}
	if got := after.Checks - before.Checks; got != 5 {
		t.Errorf("Checks delta = %d, want 5", got)
	}
}
