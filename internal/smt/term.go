// Package smt implements a small SMT solver over the fragment the
// llhsc paper needs: propositional logic, fixed-width bit-vectors
// (decided by bit-blasting to SAT, exactly the strategy the paper
// credits Z3 with), and a finite-domain string sort used to encode
// node/property names ("the hybrid theory in Z3", Section IV-B).
//
// Terms are hash-consed in a Context; the Solver compiles asserted
// terms to CNF and delegates to the CDCL solver in internal/sat.
// Push/Pop scopes and named assertions (with unsat-name extraction)
// are implemented with activation literals, mirroring the incremental
// Z3 usage the paper describes in Section VI.
package smt

import (
	"fmt"
	"strings"
)

// Sort classifies terms.
type Sort int

// Term sorts.
const (
	SortBool Sort = iota + 1
	SortBV
	SortString
)

func (s Sort) String() string {
	switch s {
	case SortBool:
		return "Bool"
	case SortBV:
		return "BitVec"
	case SortString:
		return "String"
	default:
		return fmt.Sprintf("Sort(%d)", int(s))
	}
}

// Op is a term constructor tag.
type Op int

// Term operators.
const (
	OpTrue Op = iota + 1
	OpFalse
	OpBoolVar
	OpNot
	OpAnd
	OpOr
	OpIte // Ite(cond, then, else) over Bool or BV

	OpBVConst
	OpBVVar
	OpBVAdd
	OpBVSub
	OpBVMul
	OpBVAnd
	OpBVOr
	OpBVXor
	OpBVNot
	OpBVShl  // shift left by constant amount (args[1] must be OpBVConst)
	OpBVLshr // logical shift right by constant amount
	OpBVUlt
	OpBVUle
	OpBVExtract // Extract(t, hi, lo) packed in val: hi<<8|lo
	OpBVConcat  // Concat(hi, lo)

	OpEq // equality over Bool, BV or String

	OpStrConst
	OpStrVar
)

// Term is an immutable, hash-consed SMT term. Terms must be created
// through a Context; terms from different contexts must not be mixed.
type Term struct {
	op    Op
	sort  Sort
	width int    // bit width for SortBV
	val   uint64 // constant value / packed extract bounds
	name  string // variable name or string constant value
	args  []*Term
	id    int
}

// Op returns the operator tag.
func (t *Term) Op() Op { return t.op }

// Sort returns the term's sort.
func (t *Term) Sort() Sort { return t.sort }

// Width returns the bit width of a bit-vector term (0 otherwise).
func (t *Term) Width() int { return t.width }

// Name returns the variable name or string-constant value.
func (t *Term) Name() string { return t.name }

// Uint64 returns the value of a BVConst term.
func (t *Term) Uint64() uint64 { return t.val }

// Args returns the argument terms. The slice must not be modified.
func (t *Term) Args() []*Term { return t.args }

// String renders the term in an SMT-LIB-flavoured syntax.
func (t *Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t *Term) write(b *strings.Builder) {
	switch t.op {
	case OpTrue:
		b.WriteString("true")
	case OpFalse:
		b.WriteString("false")
	case OpBoolVar, OpBVVar, OpStrVar:
		b.WriteString(t.name)
	case OpBVConst:
		fmt.Fprintf(b, "#x%0*x", (t.width+3)/4, t.val)
	case OpStrConst:
		fmt.Fprintf(b, "%q", t.name)
	case OpBVExtract:
		hi, lo := t.val>>8, t.val&0xff
		fmt.Fprintf(b, "((_ extract %d %d) %s)", hi, lo, t.args[0])
	default:
		b.WriteString("(")
		b.WriteString(opName(t.op))
		for _, a := range t.args {
			b.WriteString(" ")
			a.write(b)
		}
		b.WriteString(")")
	}
}

func opName(op Op) string {
	switch op {
	case OpNot:
		return "not"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpIte:
		return "ite"
	case OpBVAdd:
		return "bvadd"
	case OpBVSub:
		return "bvsub"
	case OpBVMul:
		return "bvmul"
	case OpBVAnd:
		return "bvand"
	case OpBVOr:
		return "bvor"
	case OpBVXor:
		return "bvxor"
	case OpBVNot:
		return "bvnot"
	case OpBVShl:
		return "bvshl"
	case OpBVLshr:
		return "bvlshr"
	case OpBVUlt:
		return "bvult"
	case OpBVUle:
		return "bvule"
	case OpBVConcat:
		return "concat"
	case OpEq:
		return "="
	default:
		return fmt.Sprintf("op%d", int(op))
	}
}

// Context owns a hash-consed term universe. It is not safe for
// concurrent use.
type Context struct {
	// table buckets interned terms by an integer hash of their shape
	// (op, width, val, name, argument ids). Earlier versions keyed the
	// intern map by a built string, which cost one allocation per mk —
	// the dominant line in blasting profiles; the bucket walk compares
	// shapes field-by-field instead, so interning allocates nothing on
	// a hit.
	table   map[uint64][]*Term
	nextID  int
	consing bool

	// intern-table effectiveness counters (InternStats): a hit is an mk
	// that found an existing structurally equal term, a miss allocates.
	// Plain ints — the Context is single-goroutine by contract.
	internHits   uint64
	internMisses uint64

	trueT  *Term
	falseT *Term

	// intern table for the finite string domain, in first-seen order
	strIndex map[string]int
	strNames []string

	// Arena-backed term storage: interned terms live in fixed-capacity
	// slabs (stable pointers — a full slab is retired, never grown),
	// their argument slices in append-only pointer slabs, so an intern
	// miss costs amortized slab appends instead of two heap objects,
	// and an intern hit costs nothing at all (the candidate Term is
	// passed by value and its args may alias argScratch).
	termSlab   []Term
	argSlab    []*Term
	argScratch [3]*Term
}

// ContextOption configures a Context.
type ContextOption func(*Context)

// WithoutHashConsing disables structural sharing of terms. Used only by
// the ablation benchmark (DESIGN.md §5); production callers should keep
// consing enabled.
func WithoutHashConsing() ContextOption {
	return func(c *Context) { c.consing = false }
}

// NewContext returns an empty term context.
func NewContext(opts ...ContextOption) *Context {
	c := &Context{
		table:    make(map[uint64][]*Term),
		consing:  true,
		strIndex: make(map[string]int),
	}
	for _, o := range opts {
		o(c)
	}
	c.trueT = c.mk(Term{op: OpTrue, sort: SortBool})
	c.falseT = c.mk(Term{op: OpFalse, sort: SortBool})
	return c
}

// mk interns a candidate term. The candidate is passed by value so an
// intern hit performs no allocation; its args slice may alias the
// context's shared scratch (pair/single/triple) and is copied into the
// arena only on a miss, when the term is given identity.
func (c *Context) mk(t Term) *Term {
	if !c.consing {
		c.nextID++
		t.id = c.nextID
		c.internMisses++
		return c.alloc(t)
	}
	h := hashTerm(&t)
	for _, e := range c.table[h] {
		if sameShape(e, &t) {
			c.internHits++
			return e
		}
	}
	c.nextID++
	t.id = c.nextID
	p := c.alloc(t)
	c.table[h] = append(c.table[h], p)
	c.internMisses++
	return p
}

const (
	termSlabSize = 512
	argSlabSize  = 1024
)

// alloc copies the term (and its possibly scratch-backed args) into
// arena storage and returns a pointer that stays valid for the life of
// the context.
func (c *Context) alloc(t Term) *Term {
	t.args = c.copyArgs(t.args)
	if len(c.termSlab) == cap(c.termSlab) {
		// Full slabs stay referenced by the interned pointers; only the
		// context's handle moves on, so handed-out *Term never move.
		c.termSlab = make([]Term, 0, termSlabSize)
	}
	c.termSlab = append(c.termSlab, t)
	return &c.termSlab[len(c.termSlab)-1]
}

func (c *Context) copyArgs(args []*Term) []*Term {
	if len(args) == 0 {
		return nil
	}
	if len(args) > argSlabSize/2 {
		return append([]*Term(nil), args...)
	}
	if cap(c.argSlab)-len(c.argSlab) < len(args) {
		c.argSlab = make([]*Term, 0, argSlabSize)
	}
	start := len(c.argSlab)
	c.argSlab = append(c.argSlab, args...)
	return c.argSlab[start:len(c.argSlab):len(c.argSlab)]
}

// pair, single and triple stage argument lists in a scratch array that
// mk's miss path copies out of, so building a term that turns out to be
// interned already allocates nothing. The scratch must only be passed
// straight into mk — never stored.
func (c *Context) pair(a, b *Term) []*Term {
	c.argScratch[0], c.argScratch[1] = a, b
	return c.argScratch[:2]
}

func (c *Context) single(a *Term) []*Term {
	c.argScratch[0] = a
	return c.argScratch[:1]
}

func (c *Context) triple(a, b, d *Term) []*Term {
	c.argScratch[0], c.argScratch[1], c.argScratch[2] = a, b, d
	return c.argScratch[:3]
}

// InternStats reports the hash-consing table's hit/miss counts since
// the context was created. The hit rate is the observable payoff of
// structural sharing (DESIGN.md §5's hash-consing ablation); the
// /metrics endpoint aggregates it across all contexts a request built.
func (c *Context) InternStats() (hits, misses uint64) {
	return c.internHits, c.internMisses
}

// hashTerm mixes the fields that determine a term's identity with
// FNV-1a. Argument identity is their (already assigned) intern ids, so
// hashing never recurses.
func hashTerm(t *Term) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(t.op))
	mix(uint64(t.width))
	mix(t.val)
	for i := 0; i < len(t.name); i++ {
		h ^= uint64(t.name[i])
		h *= prime64
	}
	mix(uint64(len(t.name)))
	for _, a := range t.args {
		mix(uint64(a.id))
	}
	return h
}

// sameShape reports structural equality between an interned term and a
// candidate. Arguments compare by pointer: they were interned first, so
// structurally equal subterms are already the same pointer.
func sameShape(a, b *Term) bool {
	if a.op != b.op || a.width != b.width || a.val != b.val ||
		a.name != b.name || len(a.args) != len(b.args) {
		return false
	}
	for i, arg := range a.args {
		if arg != b.args[i] {
			return false
		}
	}
	return true
}

// NumTerms returns the number of distinct terms created (hash-consed
// contexts count shared structure once).
func (c *Context) NumTerms() int { return c.nextID }

// True returns the Boolean constant true.
func (c *Context) True() *Term { return c.trueT }

// False returns the Boolean constant false.
func (c *Context) False() *Term { return c.falseT }

// Bool returns the Boolean constant for v.
func (c *Context) Bool(v bool) *Term {
	if v {
		return c.trueT
	}
	return c.falseT
}

// BoolVar returns the Boolean variable with the given name.
func (c *Context) BoolVar(name string) *Term {
	return c.mk(Term{op: OpBoolVar, sort: SortBool, name: name})
}

// BVConst returns a bit-vector constant of the given width (1..64).
// Values wider than the width are truncated.
func (c *Context) BVConst(width int, val uint64) *Term {
	checkWidth(width)
	return c.mk(Term{op: OpBVConst, sort: SortBV, width: width, val: maskTo(val, width)})
}

// BVVar returns the bit-vector variable with the given name and width.
func (c *Context) BVVar(name string, width int) *Term {
	checkWidth(width)
	return c.mk(Term{op: OpBVVar, sort: SortBV, width: width, name: name})
}

// StrConst returns the string constant for value, interning it into the
// context's finite string domain.
func (c *Context) StrConst(value string) *Term {
	if _, ok := c.strIndex[value]; !ok {
		c.strIndex[value] = len(c.strNames)
		c.strNames = append(c.strNames, value)
	}
	return c.mk(Term{op: OpStrConst, sort: SortString, name: value})
}

// StrVar returns the string variable with the given name. String
// variables range over the finite domain of interned string constants.
func (c *Context) StrVar(name string) *Term {
	return c.mk(Term{op: OpStrVar, sort: SortString, name: name})
}

// StrDomain returns the interned string constants, in first-seen order.
func (c *Context) StrDomain() []string {
	return append([]string(nil), c.strNames...)
}

func checkWidth(w int) {
	if w < 1 || w > 64 {
		panic(fmt.Sprintf("smt: bit-vector width %d out of range [1,64]", w))
	}
}

func maskTo(v uint64, width int) uint64 {
	if width >= 64 {
		return v
	}
	return v & ((1 << uint(width)) - 1)
}

// Not returns the negation of a Boolean term.
func (c *Context) Not(t *Term) *Term {
	c.wantSort(t, SortBool)
	switch t.op {
	case OpTrue:
		return c.falseT
	case OpFalse:
		return c.trueT
	case OpNot:
		return t.args[0]
	}
	return c.mk(Term{op: OpNot, sort: SortBool, args: c.single(t)})
}

// And returns the conjunction of the given Boolean terms. Nested
// conjunctions are flattened, repeated arguments deduplicated, and a
// complementary pair (t and ¬t) short-circuits to false.
func (c *Context) And(ts ...*Term) *Term {
	return c.nary(OpAnd, ts)
}

// Or returns the disjunction of the given Boolean terms. Nested
// disjunctions are flattened, repeated arguments deduplicated, and a
// complementary pair (t and ¬t) short-circuits to true.
func (c *Context) Or(ts ...*Term) *Term {
	return c.nary(OpOr, ts)
}

// boolArgSet tracks the arguments gathered so far for an n-ary
// connective. Small argument lists scan linearly; past a threshold it
// switches to maps so wide connectives (AnyCollision builds
// disjunctions over every region pair) stay linear.
type boolArgSet struct {
	args []*Term
	seen map[*Term]bool // present args, by interned pointer
	neg  map[*Term]bool // operands of present OpNot args
}

const boolArgScanMax = 16

// add records t, reporting whether its complement ¬t (or, for t = ¬u,
// the operand u) is already present. Duplicates are dropped.
func (s *boolArgSet) add(t *Term) (complement bool) {
	if s.seen == nil && len(s.args) >= boolArgScanMax {
		s.seen = make(map[*Term]bool, 2*len(s.args))
		s.neg = make(map[*Term]bool)
		for _, a := range s.args {
			s.seen[a] = true
			if a.op == OpNot {
				s.neg[a.args[0]] = true
			}
		}
	}
	if s.seen != nil {
		if s.seen[t] {
			return false
		}
		if s.neg[t] || (t.op == OpNot && s.seen[t.args[0]]) {
			return true
		}
		s.seen[t] = true
		if t.op == OpNot {
			s.neg[t.args[0]] = true
		}
	} else {
		for _, a := range s.args {
			if a == t {
				return false
			}
			if (a.op == OpNot && a.args[0] == t) || (t.op == OpNot && t.args[0] == a) {
				return true
			}
		}
	}
	s.args = append(s.args, t)
	return false
}

func (c *Context) nary(op Op, ts []*Term) *Term {
	neutral, absorbing := c.trueT, c.falseT
	if op == OpOr {
		neutral, absorbing = c.falseT, c.trueT
	}
	set := boolArgSet{args: make([]*Term, 0, len(ts))}
	for _, t := range ts {
		c.wantSort(t, SortBool)
		switch {
		case t == neutral:
		case t == absorbing:
			return absorbing
		case t.op == op:
			for _, a := range t.args {
				if set.add(a) {
					return absorbing
				}
			}
		default:
			if set.add(t) {
				return absorbing
			}
		}
	}
	switch len(set.args) {
	case 0:
		return neutral
	case 1:
		return set.args[0]
	}
	return c.mk(Term{op: op, sort: SortBool, args: set.args})
}

// Implies returns a → b.
func (c *Context) Implies(a, b *Term) *Term { return c.Or(c.Not(a), b) }

// Iff returns a ↔ b (equality over Bool).
func (c *Context) Iff(a, b *Term) *Term { return c.Eq(a, b) }

// Xor returns exclusive-or of two Boolean terms.
func (c *Context) Xor(a, b *Term) *Term { return c.Not(c.Eq(a, b)) }

// Ite returns if cond then a else b; a and b must share a sort (Bool or
// BV of equal width).
func (c *Context) Ite(cond, a, b *Term) *Term {
	c.wantSort(cond, SortBool)
	if a.sort != b.sort || a.width != b.width {
		panic("smt: Ite branch sorts differ")
	}
	if cond.op == OpTrue {
		return a
	}
	if cond.op == OpFalse {
		return b
	}
	if a == b {
		return a
	}
	return c.mk(Term{op: OpIte, sort: a.sort, width: a.width, args: c.triple(cond, a, b)})
}

// Eq returns equality between two terms of the same sort.
func (c *Context) Eq(a, b *Term) *Term {
	if a.sort != b.sort {
		panic(fmt.Sprintf("smt: Eq over different sorts %v and %v", a.sort, b.sort))
	}
	if a.sort == SortBV && a.width != b.width {
		panic(fmt.Sprintf("smt: Eq over different widths %d and %d", a.width, b.width))
	}
	if a == b {
		return c.trueT
	}
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.Bool(a.val == b.val)
	}
	if a.op == OpStrConst && b.op == OpStrConst {
		return c.Bool(a.name == b.name)
	}
	if (a.op == OpTrue || a.op == OpFalse) && (b.op == OpTrue || b.op == OpFalse) {
		return c.Bool(a.op == b.op)
	}
	// canonical argument order for hash-consing
	if b.id < a.id {
		a, b = b, a
	}
	return c.mk(Term{op: OpEq, sort: SortBool, args: c.pair(a, b)})
}

func (c *Context) bvBinary(op Op, a, b *Term) *Term {
	c.wantSort(a, SortBV)
	c.wantSort(b, SortBV)
	if a.width != b.width {
		panic(fmt.Sprintf("smt: width mismatch %d vs %d", a.width, b.width))
	}
	if a.op == OpBVConst && b.op == OpBVConst {
		if v, ok := foldBV(op, a.val, b.val, a.width); ok {
			return c.BVConst(a.width, v)
		}
	}
	return c.mk(Term{op: op, sort: SortBV, width: a.width, args: c.pair(a, b)})
}

func foldBV(op Op, x, y uint64, width int) (uint64, bool) {
	switch op {
	case OpBVAdd:
		return maskTo(x+y, width), true
	case OpBVSub:
		return maskTo(x-y, width), true
	case OpBVMul:
		return maskTo(x*y, width), true
	case OpBVAnd:
		return x & y, true
	case OpBVOr:
		return x | y, true
	case OpBVXor:
		return x ^ y, true
	}
	return 0, false
}

// Add returns a + b (modular).
func (c *Context) Add(a, b *Term) *Term { return c.bvBinary(OpBVAdd, a, b) }

// Sub returns a - b (modular).
func (c *Context) Sub(a, b *Term) *Term { return c.bvBinary(OpBVSub, a, b) }

// Mul returns a * b (modular).
func (c *Context) Mul(a, b *Term) *Term { return c.bvBinary(OpBVMul, a, b) }

// BVAnd returns the bitwise and of a and b.
func (c *Context) BVAnd(a, b *Term) *Term { return c.bvBinary(OpBVAnd, a, b) }

// BVOr returns the bitwise or of a and b.
func (c *Context) BVOr(a, b *Term) *Term { return c.bvBinary(OpBVOr, a, b) }

// BVXor returns the bitwise xor of a and b.
func (c *Context) BVXor(a, b *Term) *Term { return c.bvBinary(OpBVXor, a, b) }

// BVNot returns the bitwise complement of a.
func (c *Context) BVNot(a *Term) *Term {
	c.wantSort(a, SortBV)
	if a.op == OpBVConst {
		return c.BVConst(a.width, ^a.val)
	}
	return c.mk(Term{op: OpBVNot, sort: SortBV, width: a.width, args: c.single(a)})
}

// Shl returns a << n for a constant shift amount n.
func (c *Context) Shl(a *Term, n int) *Term {
	c.wantSort(a, SortBV)
	if n < 0 || n > a.width {
		panic("smt: shift amount out of range")
	}
	if a.op == OpBVConst {
		return c.BVConst(a.width, a.val<<uint(n))
	}
	return c.mk(Term{op: OpBVShl, sort: SortBV, width: a.width, val: uint64(n), args: c.single(a)})
}

// Lshr returns a >> n (logical) for a constant shift amount n.
func (c *Context) Lshr(a *Term, n int) *Term {
	c.wantSort(a, SortBV)
	if n < 0 || n > a.width {
		panic("smt: shift amount out of range")
	}
	if a.op == OpBVConst {
		return c.BVConst(a.width, a.val>>uint(n))
	}
	return c.mk(Term{op: OpBVLshr, sort: SortBV, width: a.width, val: uint64(n), args: c.single(a)})
}

// Ult returns the unsigned comparison a < b.
func (c *Context) Ult(a, b *Term) *Term {
	c.wantSort(a, SortBV)
	c.wantSort(b, SortBV)
	if a.width != b.width {
		panic("smt: width mismatch in Ult")
	}
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.Bool(a.val < b.val)
	}
	return c.mk(Term{op: OpBVUlt, sort: SortBool, args: c.pair(a, b)})
}

// Ule returns the unsigned comparison a <= b.
func (c *Context) Ule(a, b *Term) *Term {
	c.wantSort(a, SortBV)
	c.wantSort(b, SortBV)
	if a.width != b.width {
		panic("smt: width mismatch in Ule")
	}
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.Bool(a.val <= b.val)
	}
	return c.mk(Term{op: OpBVUle, sort: SortBool, args: c.pair(a, b)})
}

// Ugt returns a > b.
func (c *Context) Ugt(a, b *Term) *Term { return c.Ult(b, a) }

// Uge returns a >= b.
func (c *Context) Uge(a, b *Term) *Term { return c.Ule(b, a) }

// Extract returns bits hi..lo (inclusive) of a, a bit-vector of width
// hi-lo+1.
func (c *Context) Extract(a *Term, hi, lo int) *Term {
	c.wantSort(a, SortBV)
	if lo < 0 || hi < lo || hi >= a.width {
		panic(fmt.Sprintf("smt: extract [%d:%d] out of range for width %d", hi, lo, a.width))
	}
	w := hi - lo + 1
	if a.op == OpBVConst {
		return c.BVConst(w, a.val>>uint(lo))
	}
	return c.mk(Term{
		op: OpBVExtract, sort: SortBV, width: w,
		val: uint64(hi)<<8 | uint64(lo), args: c.single(a),
	})
}

// Concat returns the concatenation hi ++ lo, with hi occupying the most
// significant bits.
func (c *Context) Concat(hi, lo *Term) *Term {
	c.wantSort(hi, SortBV)
	c.wantSort(lo, SortBV)
	w := hi.width + lo.width
	checkWidth(w)
	if hi.op == OpBVConst && lo.op == OpBVConst {
		return c.BVConst(w, hi.val<<uint(lo.width)|lo.val)
	}
	return c.mk(Term{op: OpBVConcat, sort: SortBV, width: w, args: c.pair(hi, lo)})
}

// ZeroExtend widens a to the given width by padding with zero bits.
func (c *Context) ZeroExtend(a *Term, width int) *Term {
	c.wantSort(a, SortBV)
	if width < a.width {
		panic("smt: ZeroExtend to smaller width")
	}
	if width == a.width {
		return a
	}
	return c.Concat(c.BVConst(width-a.width, 0), a)
}

// Distinct returns the pairwise-disequality of the given terms.
func (c *Context) Distinct(ts ...*Term) *Term {
	var conj []*Term
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			conj = append(conj, c.Not(c.Eq(ts[i], ts[j])))
		}
	}
	return c.And(conj...)
}

func (c *Context) wantSort(t *Term, s Sort) {
	if t.sort != s {
		panic(fmt.Sprintf("smt: expected sort %v, got %v in %s", s, t.sort, t))
	}
}
