package smt

import "math/bits"

// This file is the word-level interval engine beneath the semantic
// checker's three-tier decision ladder (DESIGN.md §13). It bounds the
// value of a bit-vector term by propagating unsigned intervals through
// the term DAG, so callers can decide containment queries arithmetically
// and keep the whole pair off the bit-blaster. The engine is sound by
// construction — a returned interval always encloses every value the
// term can take under the environment — and it is *exact* (both
// endpoints achieved by some assignment) whenever ClassifyTerm reports
// the term concrete or affine, which is what lets the caller promote an
// interval answer to a definite verdict with a canonical witness.

// Interval is an inclusive range [Lo, Hi] of unsigned bit-vector
// values. The zero value is the point interval {0}.
type Interval struct {
	Lo, Hi uint64
}

// Point returns the interval holding exactly v.
func Point(v uint64) Interval { return Interval{Lo: v, Hi: v} }

// FullInterval is the complete value range of a width-bit vector.
func FullInterval(width int) Interval { return Interval{Hi: maskOf(width)} }

// IsPoint reports whether the interval holds a single value.
func (iv Interval) IsPoint() bool { return iv.Lo == iv.Hi }

// RangeEnv bounds symbolic bit-vector variables by name. Variables
// absent from the environment range over their full width.
type RangeEnv map[string]Interval

// Fragment classifies a term for the word-level decision ladder.
type Fragment int

const (
	// FragmentConcrete terms are built from constants only; TermBounds
	// returns a point interval and fully decides them.
	FragmentConcrete Fragment = iota
	// FragmentAffine terms combine variables with +, −, constant ×,
	// constant shifts, bitwise-not and concatenation — operators that
	// are monotone in each argument, so interval propagation is exact:
	// both endpoints of the TermBounds result are achieved.
	FragmentAffine
	// FragmentSymbolic terms use operators whose interval enclosure can
	// be loose (general bitwise logic, data-dependent extracts, Ite):
	// only the bit-blaster decides them.
	FragmentSymbolic
)

func (f Fragment) String() string {
	switch f {
	case FragmentConcrete:
		return "concrete"
	case FragmentAffine:
		return "affine"
	default:
		return "symbolic"
	}
}

// ClassifyTerm places a bit-vector term on the decision ladder. Terms
// of other sorts are symbolic.
func ClassifyTerm(t *Term) Fragment {
	if t.sort != SortBV {
		return FragmentSymbolic
	}
	switch t.op {
	case OpBVConst:
		return FragmentConcrete
	case OpBVVar:
		return FragmentAffine
	case OpBVAdd, OpBVSub, OpBVConcat:
		return maxFragment(ClassifyTerm(t.args[0]), ClassifyTerm(t.args[1]))
	case OpBVMul:
		// Linear only while one factor is constant; variable×variable
		// is nonlinear and its interval minimum need not be achieved
		// jointly with other occurrences of the same variables.
		a, b := ClassifyTerm(t.args[0]), ClassifyTerm(t.args[1])
		if a != FragmentConcrete && b != FragmentConcrete {
			return FragmentSymbolic
		}
		return maxFragment(a, b)
	case OpBVShl, OpBVLshr:
		return maxFragment(ClassifyTerm(t.args[0]), FragmentAffine)
	case OpBVNot:
		// ¬x = mask − x: affine with coefficient −1.
		return maxFragment(ClassifyTerm(t.args[0]), FragmentAffine)
	case OpBVExtract:
		if ClassifyTerm(t.args[0]) == FragmentConcrete {
			return FragmentConcrete
		}
		return FragmentSymbolic
	default:
		return FragmentSymbolic
	}
}

func maxFragment(a, b Fragment) Fragment {
	if a > b {
		return a
	}
	return b
}

// CollectBVVars adds the names of every bit-vector variable under t to
// the set. Used to prove two regions' bounds draw on disjoint symbolic
// cells, so their minimizing assignments can be combined.
func CollectBVVars(t *Term, into map[string]struct{}) {
	if t.op == OpBVVar {
		into[t.name] = struct{}{}
		return
	}
	for _, a := range t.args {
		CollectBVVars(a, into)
	}
}

// TermBounds computes a sound enclosure of t's value under env: every
// assignment within env yields a value inside the returned interval.
// ok is false when the propagation cannot bound the term — an operator
// outside the monotone fragment, or an addition/multiplication that may
// wrap modulo 2^width (wrapped arithmetic is not interval-monotone, so
// the engine refuses rather than returning a loose full-range answer
// the caller might mistake for informative).
//
// For terms ClassifyTerm reports concrete or affine, a returned
// interval is exact: Lo is achieved by pinning every variable to the
// low end of its range and Hi by pinning to the high end (operators in
// that fragment are monotone in each argument, with anti-monotone
// positions — subtrahends, bitwise-not — flipped consistently).
func TermBounds(t *Term, env RangeEnv) (Interval, bool) {
	if t.sort != SortBV {
		return Interval{}, false
	}
	mask := maskOf(t.width)
	switch t.op {
	case OpBVConst:
		return Point(t.val), true
	case OpBVVar:
		if iv, okEnv := env[t.name]; okEnv {
			if iv.Lo > iv.Hi || iv.Hi > mask {
				return Interval{}, false
			}
			return iv, true
		}
		return FullInterval(t.width), true
	case OpBVAdd:
		a, okA := TermBounds(t.args[0], env)
		b, okB := TermBounds(t.args[1], env)
		if !okA || !okB {
			return Interval{}, false
		}
		hi, carry := bits.Add64(a.Hi, b.Hi, 0)
		if carry != 0 || hi > mask {
			return Interval{}, false // may wrap modulo 2^width
		}
		return Interval{Lo: a.Lo + b.Lo, Hi: hi}, true
	case OpBVSub:
		a, okA := TermBounds(t.args[0], env)
		b, okB := TermBounds(t.args[1], env)
		if !okA || !okB || a.Lo < b.Hi {
			return Interval{}, false // may wrap below zero
		}
		return Interval{Lo: a.Lo - b.Hi, Hi: a.Hi - b.Lo}, true
	case OpBVMul:
		a, okA := TermBounds(t.args[0], env)
		b, okB := TermBounds(t.args[1], env)
		if !okA || !okB {
			return Interval{}, false
		}
		hiHi, hiLo := bits.Mul64(a.Hi, b.Hi)
		if hiHi != 0 || hiLo > mask {
			return Interval{}, false
		}
		return Interval{Lo: a.Lo * b.Lo, Hi: hiLo}, true
	case OpBVShl:
		a, okA := TermBounds(t.args[0], env)
		n := uint(t.val) // shift amount lives in val, as in the blaster
		if !okA || n >= 64 || a.Hi > mask>>n {
			return Interval{}, false
		}
		return Interval{Lo: a.Lo << n, Hi: a.Hi << n}, true
	case OpBVLshr:
		a, okA := TermBounds(t.args[0], env)
		if !okA {
			return Interval{}, false
		}
		n := uint(t.val)
		if n >= 64 {
			return Point(0), true
		}
		return Interval{Lo: a.Lo >> n, Hi: a.Hi >> n}, true
	case OpBVNot:
		a, okA := TermBounds(t.args[0], env)
		if !okA {
			return Interval{}, false
		}
		return Interval{Lo: mask - a.Hi, Hi: mask - a.Lo}, true
	case OpBVConcat:
		hi, okH := TermBounds(t.args[0], env)
		lo, okL := TermBounds(t.args[1], env)
		if !okH || !okL || !hi.IsPoint() && !lo.isFullWidth(t.args[1].width) {
			// hi<<w | lo is monotone lexicographically, but the joint
			// range is a union of strided windows unless the low part
			// spans its full width or the high part is fixed.
			return Interval{}, false
		}
		w := uint(t.args[1].width)
		return Interval{Lo: hi.Lo<<w | lo.Lo, Hi: hi.Hi<<w | lo.Hi}, true
	case OpBVExtract:
		a, okA := TermBounds(t.args[0], env)
		if !okA {
			return Interval{}, false
		}
		ehi, elo := int(t.val>>8), int(t.val&0xff)
		outMask := maskOf(ehi - elo + 1)
		if a.IsPoint() {
			return Point(a.Lo >> uint(elo) & outMask), true
		}
		if elo == 0 && a.Hi <= outMask {
			return a, true // pure truncation that never truncates
		}
		return Interval{}, false
	default:
		return Interval{}, false
	}
}

func (iv Interval) isFullWidth(width int) bool {
	return iv.Lo == 0 && iv.Hi == maskOf(width)
}

func maskOf(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(width) - 1
}
