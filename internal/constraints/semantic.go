package constraints

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"llhsc/internal/addr"
	"llhsc/internal/dts"
	"llhsc/internal/obs"
	"llhsc/internal/sat"
	"llhsc/internal/smt"
)

// witnessBufPool recycles the assumption scratch minimizeBV fills per
// witness probe sequence (base literals plus one pinned bit per probe).
// The solver copies assumptions into its own literal buffer, so the
// scratch never escapes a call; pooling it makes witness minimization
// allocation-free after warm-up even across checker goroutines.
var witnessBufPool = sync.Pool{New: func() interface{} {
	buf := make([]*smt.Term, 0, 2+64+1) // two activations + 64 bit pins + probe
	return &buf
}}

// Collision is a detected overlap between two address regions, with the
// witness address produced by the solver's model (the counterexample of
// Section IV-C).
type Collision struct {
	A, B    addr.Region
	Witness uint64 // an address contained in both regions
}

func (c Collision) String() string {
	return fmt.Sprintf("%s collides with %s at address 0x%x", c.A, c.B, c.Witness)
}

// Violations converts collisions to the common violation format, with
// delta blame from both regions' origins.
func (c Collision) Violations() []Violation {
	msg := fmt.Sprintf("address region 0x%x+0x%x overlaps %s bank %d (0x%x+0x%x) at address 0x%x",
		c.A.Base, c.A.Size, c.B.Path, c.B.Index, c.B.Base, c.B.Size, c.Witness)
	v := []Violation{{
		Path: c.A.Path, Property: "reg", Rule: "semantic:overlap",
		Message: msg, Origin: c.A.Origin,
	}}
	if c.B.Origin.Delta != "" && c.B.Origin.Delta != c.A.Origin.Delta {
		v = append(v, Violation{
			Path: c.B.Path, Property: "reg", Rule: "semantic:overlap",
			Message: fmt.Sprintf("address region 0x%x+0x%x overlaps %s bank %d at address 0x%x",
				c.B.Base, c.B.Size, c.A.Path, c.A.Index, c.Witness),
			Origin: c.B.Origin,
		})
	}
	return v
}

// SemanticChecker verifies the memory-consistency property of Section
// IV-C: no two mutually exclusive address regions may overlap. Each
// candidate pair (i, j) is encoded as the bit-vector satisfiability
// problem
//
//	b_i <= x ∧ x < b_i + s_i ∧ b_j <= x ∧ x < b_j + s_j
//
// over a fresh address variable x. A satisfiable query is a violation
// of formula (7) and the model value of x is the collision witness.
//
// (The paper's formula (7) uses two bound variables x1 < x2; read
// literally that is satisfied by ANY two regions that are not a single
// shared point, so we implement the evident intent — a shared address —
// with a single witness variable. EXPERIMENTS.md E5 records this.)
type SemanticChecker struct {
	// Width is the bit width used for address variables; 0 derives it
	// from the tree's root #address-cells.
	Width int
	// CheckMemoryBanks also checks banks of the same memory node
	// against each other (needed for the truncation scenario of E6).
	// Enabled by default via NewSemanticChecker.
	CheckMemoryBanks bool
	// Budget bounds the underlying solver's work (per CheckContext /
	// FindCollisionsContext call). The zero value imposes no limits.
	Budget sat.Budget
	// Strategy selects how pair queries reach the solver (see
	// SemanticStrategy). The zero value is StrategySweep.
	Strategy SemanticStrategy
	// OnQuery, when non-nil, receives one QueryRecord per pair decision
	// — word tier and SAT tier alike — with wall time and the per-query
	// solver-work delta (including witness extraction). The hook runs
	// inline on the checking goroutine; keep it cheap. Leaving it nil
	// (the default) keeps the decision loops on their zero-allocation
	// path: not even a QueryRecord is built (see alloc_test.go).
	OnQuery func(obs.QueryRecord)

	stats SemanticStats
}

// SemanticStats describes the solver work of the most recent
// FindCollisionsContext (or Check) call. Like the solver it wraps, a
// checker records stats for one goroutine at a time — build one checker
// per goroutine, as core.Pipeline does. The same shape doubles as the
// optional stats sink of InterruptChecker and MemReserveChecker, so
// the pipeline aggregates every SMT-backed family uniformly.
type SemanticStats struct {
	// Pairs is the number of candidate pairs submitted to the solver.
	Pairs int
	// PairsPruned is how many of the naive n·(n-1)/2 region pairs never
	// reached the solver — the sweep prefilter's (and the eligibility
	// rules') measurable payoff. 0 for strategies that submit the full
	// eligible schedule only when nothing was cut.
	PairsPruned int
	// WordDecided is how many candidate pairs the word-level tier
	// (DESIGN.md §13) decided with plain interval arithmetic, keeping
	// them off the solver entirely. On concrete-address trees under the
	// default strategy this equals Pairs and SolverCalls stays 0.
	WordDecided int
	// SolverCalls counts SMT check invocations, including canonical
	// witness extraction (and its bitwise minimization probes) for
	// confirmed collisions.
	SolverCalls int
	// Collisions found.
	Collisions int
	// Solver aggregates the underlying SAT-solver work (conflicts,
	// propagations, restarts, ...) across every solver instance the
	// call created, including witness extraction.
	Solver sat.Stats
	// InternHits / InternMisses aggregate the smt.Context hash-consing
	// counters across those same instances.
	InternHits   uint64
	InternMisses uint64
}

// absorb folds one solver's SAT and intern counters into the stats.
func (st *SemanticStats) absorb(solver *smt.Solver) {
	st.Solver = st.Solver.Add(solver.Stats().SAT)
	h, m := solver.Context().InternStats()
	st.InternHits += h
	st.InternMisses += m
}

// LastStats returns the work counters of the most recent collision
// search on this checker.
func (sc *SemanticChecker) LastStats() SemanticStats { return sc.stats }

// NewSemanticChecker returns a checker with the paper's defaults.
func NewSemanticChecker() *SemanticChecker {
	return &SemanticChecker{CheckMemoryBanks: true}
}

// Check collects the address regions of the tree and reports every
// pairwise collision. Region-decoding problems (arity, overflow) are
// reported as violations as well.
func (sc *SemanticChecker) Check(tree *dts.Tree) ([]Collision, []Violation) {
	collisions, violations, _ := sc.CheckContext(context.Background(), tree)
	return collisions, violations
}

// CheckContext is Check under a context and the checker's Budget. A
// non-nil error (a *sat.LimitError) means the search was cut short;
// collisions and violations found up to that point are still returned.
func (sc *SemanticChecker) CheckContext(ctx context.Context, tree *dts.Tree) ([]Collision, []Violation, error) {
	regions, err := addr.CollectRegions(tree)
	var violations []Violation
	if err != nil {
		violations = append(violations, Violation{
			Rule:    "semantic:regions",
			Message: err.Error(),
		})
	}
	width := sc.Width
	if width == 0 {
		width = addr.BitWidth(tree.Root.AddressCells())
	}
	collisions, cerr := sc.FindCollisionsContext(ctx, regions, width)
	for _, c := range collisions {
		violations = append(violations, c.Violations()...)
	}
	return collisions, violations, cerr
}

// candidatePairs enumerates the region pairs that must not overlap.
// Virtual-device windows (addr.KindVirtual) are IPC overlays onto
// shared RAM, so they are exempt from clashing with memory regions —
// the paper's own Listing 6 places the veth IPC base inside a guest
// memory region — but still must not clash with each other or with
// physical devices.
func (sc *SemanticChecker) candidatePairs(regions []addr.Region) [][2]int {
	var pairs [][2]int
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			if sc.pairEligible(regions[i], regions[j]) {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	return pairs
}

// pairEligible applies the exemption rules shared by every strategy:
// same-node pairs are skipped unless they are distinct memory banks
// under CheckMemoryBanks, and virtual-device windows never clash with
// memory regions (see candidatePairs).
func (sc *SemanticChecker) pairEligible(a, b addr.Region) bool {
	return eligiblePair(a, b, sc.CheckMemoryBanks)
}

// eligiblePair is the package-level form of the eligibility rules,
// shared with the lifted checker so family-based and enumerative runs
// schedule exactly the same pairs.
func eligiblePair(a, b addr.Region, checkMemoryBanks bool) bool {
	if a.Path == b.Path {
		if !checkMemoryBanks {
			return false
		}
		if a.Index == b.Index {
			return false
		}
	}
	if a.Kind == addr.KindVirtual && b.Kind == addr.KindMemory ||
		a.Kind == addr.KindMemory && b.Kind == addr.KindVirtual {
		return false
	}
	return true
}

// FindCollisions checks the candidate pairs chosen by the configured
// Strategy and returns all collisions, sorted by region path for
// determinism.
func (sc *SemanticChecker) FindCollisions(regions []addr.Region, width int) []Collision {
	out, _ := sc.FindCollisionsContext(context.Background(), regions, width)
	return out
}

// FindCollisionsContext is FindCollisions under a context and the
// checker's Budget. When a limit stops the search it returns the
// collisions confirmed so far plus a *sat.LimitError; remaining pairs
// are unchecked. All strategies return identical collision lists
// (verdicts and witnesses); see DESIGN.md §9.
func (sc *SemanticChecker) FindCollisionsContext(ctx context.Context, regions []addr.Region, width int) ([]Collision, error) {
	sc.stats = SemanticStats{}
	var (
		out []Collision
		err error
	)
	switch sc.Strategy {
	case StrategyPairwise:
		out, err = sc.findPairwise(ctx, regions, width)
	case StrategyAssume:
		out, err = sc.findAssume(ctx, regions, width, sc.candidatePairs(regions))
	default: // StrategySweep, StrategyWord, StrategyWordOff
		out, err = sc.findAssume(ctx, regions, width, sc.sweepCandidates(regions, width))
	}
	sc.stats.Collisions = len(out)
	// Pruning payoff relative to the naive all-pairs schedule the
	// paper's formulation implies. Counting the eligible-only baseline
	// would cost the O(n²) pass the sweep exists to avoid.
	if naive := len(regions) * (len(regions) - 1) / 2; naive > sc.stats.Pairs {
		sc.stats.PairsPruned = naive - sc.stats.Pairs
	}
	sortCollisions(out)
	return out, err
}

// findPairwise is the original per-pair formulation: one Push/Pop scope
// and one full solve per candidate. Witnesses come from the same
// canonical per-pair query every strategy uses (witnessFor) rather than
// the shared solver's model — the shared solver's saved phases would
// otherwise leak earlier pairs' search history into later witnesses,
// making reports depend on pair order.
func (sc *SemanticChecker) findPairwise(ctx context.Context, regions []addr.Region, width int) ([]Collision, error) {
	pairs := sc.candidatePairs(regions)
	sc.stats.Pairs = len(pairs)
	if len(pairs) == 0 {
		return nil, nil
	}
	sctx := smt.NewContext()
	solver := smt.NewSolver(sctx)
	solver.SetBudget(sc.Budget)
	defer func() { sc.stats.absorb(solver) }()
	x := sctx.BVVar("x", width)

	var out []Collision
	var lim error
	for _, pair := range pairs {
		a, b := regions[pair[0]], regions[pair[1]]
		var t0 time.Time
		var before sat.Stats
		callsBefore := sc.stats.SolverCalls
		if sc.OnQuery != nil {
			t0 = time.Now()
			before = sc.stats.Solver.Add(solver.Stats().SAT)
		}
		solver.Push()
		solver.Assert(overlapTerm(sctx, x, a, width))
		solver.Assert(overlapTerm(sctx, x, b, width))
		st, err := solver.CheckContext(ctx)
		sc.stats.SolverCalls++
		solver.Pop()
		var w uint64
		if st == sat.Sat {
			var werr error
			w, werr = sc.witnessFor(ctx, a, b, width)
			if werr != nil {
				lim = werr
			} else {
				out = append(out, Collision{A: a, B: b, Witness: w})
			}
		}
		if lim == nil && err != nil {
			lim = err
		}
		if sc.OnQuery != nil {
			// stats.Solver already holds the witness solvers' work
			// (witnessFor absorbs on return), so the delta against the
			// combined snapshot covers the whole decision.
			after := sc.stats.Solver.Add(solver.Stats().SAT)
			sc.emitPair("sat", a, b, st == sat.Sat, w, time.Since(t0),
				after.Sub(before), sc.stats.SolverCalls-callsBefore, lim)
		}
		if lim != nil {
			break
		}
	}
	return out, lim
}

// findAssume decides the given candidate pairs, word tier first: when
// the strategy enables it (the default), each pair is decided by exact
// interval arithmetic (DecideConcretePair) and never reaches a solver —
// on concrete-address trees no smt.Context or CNF is ever constructed.
// Pairs the word tier cannot decide fall through to one long-lived
// solver, created lazily on first use: region i's containment formula
// is asserted once behind an activation literal act_i (blasted lazily,
// only for regions that appear in a pair), and a pair is checked by
// solving under the assumptions {act_i, act_j}. Confirmed collisions
// get their witness from a canonical per-pair query (witnessFor) so the
// reported address is independent of the shared solver's search history
// — together with the word tier's least-shared-address witness this is
// what keeps reports byte-identical across strategies and tiers.
func (sc *SemanticChecker) findAssume(ctx context.Context, regions []addr.Region, width int, pairs [][2]int) ([]Collision, error) {
	sc.stats.Pairs = len(pairs)
	if len(pairs) == 0 {
		return nil, nil
	}
	useWord := sc.Strategy.wordTierEnabled()
	var (
		sctx   *smt.Context
		solver *smt.Solver
		x      *smt.Term
		acts   []*smt.Term
	)
	defer func() {
		if solver != nil {
			sc.stats.absorb(solver)
		}
	}()
	act := func(i int) *smt.Term {
		if acts[i] == nil {
			acts[i] = sctx.BoolVar(fmt.Sprintf("act%d", i))
			solver.Assert(sctx.Implies(acts[i], overlapTerm(sctx, x, regions[i], width)))
		}
		return acts[i]
	}

	var out []Collision
	var lim error
	assumptions := make([]*smt.Term, 0, 2)
	for _, pair := range pairs {
		a, b := regions[pair[0]], regions[pair[1]]
		if useWord {
			// The solver path polls the context inside every solve; the
			// word path must poll it itself to keep cancellation
			// semantics identical.
			if err := ctx.Err(); err != nil {
				lim = &sat.LimitError{Reason: sat.StopCanceled, Err: err}
				break
			}
			var t0 time.Time
			if sc.OnQuery != nil {
				t0 = time.Now()
			}
			overlap, w := DecideConcretePair(a, b, width)
			sc.stats.WordDecided++
			if overlap {
				out = append(out, Collision{A: a, B: b, Witness: w})
			}
			if sc.OnQuery != nil {
				sc.emitPair("word", a, b, overlap, w, time.Since(t0), sat.Stats{}, 0, nil)
			}
			continue
		}
		if solver == nil {
			sctx = smt.NewContext()
			solver = smt.NewSolver(sctx)
			solver.SetBudget(sc.Budget)
			x = sctx.BVVar("x", width)
			acts = make([]*smt.Term, len(regions))
		}
		var t0 time.Time
		var before sat.Stats
		callsBefore := sc.stats.SolverCalls
		if sc.OnQuery != nil {
			t0 = time.Now()
			before = sc.stats.Solver.Add(solver.Stats().SAT)
		}
		// Only the pair's literals are assumed; the others stay free.
		// Forcing every inactive literal false measures slower here —
		// each extra assumption is a decision level whose watch lists
		// must be re-scanned on every solve — and a free literal's
		// implication can only over-constrain x, never flip a verdict.
		assumptions = assumptions[:0]
		assumptions = append(assumptions, act(pair[0]), act(pair[1]))
		st, err := solver.CheckAssumingContext(ctx, assumptions...)
		sc.stats.SolverCalls++
		var w uint64
		if st == sat.Sat {
			var werr error
			w, werr = sc.witnessFor(ctx, a, b, width)
			if werr != nil {
				lim = werr
			} else {
				out = append(out, Collision{A: a, B: b, Witness: w})
			}
		}
		if lim == nil && err != nil {
			lim = err
		}
		if sc.OnQuery != nil {
			after := sc.stats.Solver.Add(solver.Stats().SAT)
			sc.emitPair("sat", a, b, st == sat.Sat, w, time.Since(t0),
				after.Sub(before), sc.stats.SolverCalls-callsBefore, lim)
		}
		if lim != nil {
			break
		}
	}
	return out, lim
}

// witnessFor reproduces the paper's per-pair counterexample query on a
// fresh solver, so the witness model depends only on the pair — not on
// which strategy established satisfiability or what the shared solver
// had learnt before. SMT stays the witness oracle (DESIGN.md §9). The
// model is then minimized bitwise so the reported witness is the least
// shared address — the same value the word-level tier computes as
// max(lo_a, lo_b), which is what keeps witnesses byte-identical across
// tiers (DESIGN.md §13).
func (sc *SemanticChecker) witnessFor(ctx context.Context, a, b addr.Region, width int) (uint64, error) {
	sctx := smt.NewContext()
	solver := smt.NewSolver(sctx)
	solver.SetBudget(sc.Budget)
	defer func() { sc.stats.absorb(solver) }()
	x := sctx.BVVar("x", width)
	solver.Assert(overlapTerm(sctx, x, a, width))
	solver.Assert(overlapTerm(sctx, x, b, width))
	st, err := solver.CheckContext(ctx)
	sc.stats.SolverCalls++
	if err != nil {
		return 0, err
	}
	if st != sat.Sat {
		// Unreachable: the caller established satisfiability of the
		// same (exact) encoding. Report 0 rather than panicking.
		return 0, nil
	}
	return minimizeBV(ctx, solver, x, width, &sc.stats, nil)
}

// minimizeBV narrows a satisfiable solver's model of x down to the
// numerically smallest value, by fixing bits most-significant-first:
// each probe asks whether the bit can be 0 given the bits already
// fixed; if not it is pinned to 1. Lexicographic minimization of the
// bit string is numeric minimization for an unsigned vector, so after
// width probes the fixed bits ARE the minimal model — no final model
// extraction is needed. base carries assumptions that scope the query
// (e.g. a pair's activation literals on a shared solver); the caller
// must have just established Sat under exactly those assumptions.
// Each probe is counted as a solver call in stats when non-nil.
func minimizeBV(ctx context.Context, solver *smt.Solver, x *smt.Term, width int, stats *SemanticStats, base []*smt.Term) (uint64, error) {
	sctx := solver.Context()
	buf := witnessBufPool.Get().(*[]*smt.Term)
	assume := append((*buf)[:0], base...)
	defer func() {
		// Terms are owned by their (per-checker) Context; drop the
		// references so a pooled buffer cannot pin a dead Context.
		for i := range assume {
			assume[i] = nil
		}
		*buf = assume[:0]
		witnessBufPool.Put(buf)
	}()
	var val uint64
	for i := width - 1; i >= 0; i-- {
		bit := sctx.Extract(x, i, i)
		zero := sctx.Eq(bit, sctx.BVConst(1, 0))
		st, err := solver.CheckAssumingContext(ctx, append(assume, zero)...)
		if stats != nil {
			stats.SolverCalls++
		}
		if err != nil {
			return 0, err
		}
		if st == sat.Sat {
			assume = append(assume, zero)
		} else {
			assume = append(assume, sctx.Eq(bit, sctx.BVConst(1, 1)))
			val |= 1 << uint(i)
		}
	}
	return val, nil
}

// RegionLabel is the stable identity of one region in query records
// and reproducer bundles: node path plus reg-entry index. Replay
// matches re-run collisions against bundle queries by this label.
func RegionLabel(r addr.Region) string {
	return fmt.Sprintf("%s[%d]", r.Path, r.Index)
}

// emitPair builds and delivers one pair-decision record. Called only
// when OnQuery is non-nil, so the disabled path never reaches the
// formatting below.
func (sc *SemanticChecker) emitPair(tier string, a, b addr.Region, overlap bool, witness uint64, elapsed time.Duration, d sat.Stats, calls int, lim error) {
	q := obs.QueryRecord{
		Family:       "semantic",
		Tier:         tier,
		A:            RegionLabel(a),
		B:            RegionLabel(b),
		Verdict:      "disjoint",
		Millis:       float64(elapsed) / float64(time.Millisecond),
		SolverCalls:  calls,
		Conflicts:    d.Conflicts,
		Decisions:    d.Decisions,
		Propagations: d.Propagations,
	}
	if overlap {
		q.Verdict = "overlap"
		q.Witness = fmt.Sprintf("0x%x", witness)
	}
	if lim != nil {
		q.Verdict = "limit"
	}
	sc.OnQuery(q)
}

func sortCollisions(out []Collision) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].A.Path != out[j].A.Path {
			return out[i].A.Path < out[j].A.Path
		}
		return out[i].B.Path < out[j].B.Path
	})
}

// AnyCollision poses a single disjunctive query — does ANY candidate
// pair overlap? This is the formulation closest to the paper's one-shot
// formula (7) and the workload used by the E8 scaling benchmark.
//
// A single witness variable x is shared by all disjuncts (only one
// colliding pair needs witnessing), so hash-consing reduces the
// encoding to two comparator chains per *region* plus one small
// selector clause per pair — O(n) bit-vector logic for O(n²) pairs.
func (sc *SemanticChecker) AnyCollision(regions []addr.Region, width int) (Collision, bool) {
	c, ok, _ := sc.AnyCollisionContext(context.Background(), regions, width)
	return c, ok
}

// AnyCollisionContext is AnyCollision under a context and the checker's
// Budget; a non-nil error means the single query was cut short and the
// answer is unknown.
func (sc *SemanticChecker) AnyCollisionContext(ctx context.Context, regions []addr.Region, width int) (Collision, bool, error) {
	pairs := sc.candidatePairs(regions)
	if len(pairs) == 0 {
		return Collision{}, false, nil
	}
	sctx := smt.NewContext()
	solver := smt.NewSolver(sctx)
	solver.SetBudget(sc.Budget)
	x := sctx.BVVar("x", width)

	inRegion := make([]*smt.Term, len(regions))
	for i, r := range regions {
		inRegion[i] = overlapTerm(sctx, x, r, width)
	}
	sel := make([]*smt.Term, len(pairs))
	for k, pair := range pairs {
		s := sctx.BoolVar(fmt.Sprintf("sel%d", k))
		sel[k] = s
		solver.Assert(sctx.Implies(s, sctx.And(inRegion[pair[0]], inRegion[pair[1]])))
	}
	solver.Assert(sctx.Or(sel...))
	st, err := solver.CheckContext(ctx)
	if err != nil {
		return Collision{}, false, err
	}
	if st != sat.Sat {
		return Collision{}, false, nil
	}
	for k, pair := range pairs {
		if solver.BoolValue(sel[k]) {
			return Collision{
				A: regions[pair[0]], B: regions[pair[1]],
				Witness: solver.BVValue(x),
			}, true, nil
		}
	}
	return Collision{}, false, nil
}

// overlapTerm encodes b <= x ∧ x < b + s at the given width. Regions
// whose bounds exceed the width are truncated modulo 2^width, matching
// the hardware's address decoding.
func overlapTerm(ctx *smt.Context, x *smt.Term, r addr.Region, width int) *smt.Term {
	if r.Size == 0 {
		return ctx.False()
	}
	base := ctx.BVConst(width, r.Base)
	end := r.Base + r.Size
	overflows := end < r.Base // 64-bit wrap
	if width < 64 && end >= 1<<uint(width) {
		overflows = true
	}
	if overflows {
		// The region extends to (or past) the top of the address
		// space: only the lower bound constrains x. Regions that
		// genuinely wrap are reported separately by addr.ErrOverflow.
		return ctx.Ule(base, x)
	}
	return ctx.And(ctx.Ule(base, x), ctx.Ult(x, ctx.BVConst(width, end)))
}

// InterruptChecker is the interrupt-uniqueness extension mentioned in
// the paper's conclusion ("semantic validation of memory addresses and
// interrupts is performed using bit-vector constraints"): no two device
// nodes may claim the same interrupt line.
type InterruptChecker struct {
	// Stats, when non-nil, receives the call's solver-work counters
	// (pair queries, SAT stats, intern hit rate). A pointer so the
	// checker stays usable as a value: InterruptChecker{Stats: &st}.
	Stats *SemanticStats
}

// Check reports devices sharing an interrupt number. The decision is
// made by the SMT solver: for each pair of interrupt constants it asks
// whether a shared line value exists (mirroring the overlap encoding).
func (ic InterruptChecker) Check(tree *dts.Tree) []Violation {
	out, _ := ic.CheckContext(context.Background(), tree)
	return out
}

// CheckContext is Check under a context; a non-nil error (a
// *sat.LimitError) means cancellation cut the pair enumeration short.
func (ic InterruptChecker) CheckContext(ctx context.Context, tree *dts.Tree) ([]Violation, error) {
	type irqUse struct {
		path   string
		irq    uint32
		origin dts.Origin
	}
	var uses []irqUse
	tree.Root.Walk(func(path string, n *dts.Node) bool {
		p := n.Property("interrupts")
		if p == nil {
			return true
		}
		for _, cell := range p.Value.Cells() {
			uses = append(uses, irqUse{path: path, irq: cell.Val, origin: p.Origin})
		}
		return true
	})
	if len(uses) < 2 {
		return nil, nil
	}

	sctx := smt.NewContext()
	solver := smt.NewSolver(sctx)
	if ic.Stats != nil {
		defer func() { ic.Stats.absorb(solver) }()
	}
	line := sctx.BVVar("line", 32)

	var out []Violation
	for i := 0; i < len(uses); i++ {
		for j := i + 1; j < len(uses); j++ {
			if uses[i].path == uses[j].path {
				continue
			}
			solver.Push()
			solver.Assert(sctx.Eq(line, sctx.BVConst(32, uint64(uses[i].irq))))
			solver.Assert(sctx.Eq(line, sctx.BVConst(32, uint64(uses[j].irq))))
			st, err := solver.CheckContext(ctx)
			if ic.Stats != nil {
				ic.Stats.SolverCalls++
				ic.Stats.Pairs++
			}
			if st == sat.Sat {
				out = append(out, Violation{
					Path: uses[i].path, Property: "interrupts",
					Rule: "semantic:interrupt",
					Message: fmt.Sprintf("interrupt %d also claimed by %s",
						uses[i].irq, uses[j].path),
					Origin: uses[i].origin,
				})
			}
			solver.Pop()
			if err != nil {
				return out, err
			}
		}
	}
	return out, nil
}
