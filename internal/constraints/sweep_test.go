package constraints

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"llhsc/internal/addr"
	"llhsc/internal/sat"
)

func TestParseSemanticStrategy(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want SemanticStrategy
		ok   bool
	}{
		{"sweep", StrategySweep, true},
		{"", StrategySweep, true},
		{"assume", StrategyAssume, true},
		{"pairwise", StrategyPairwise, true},
		{"z3", 0, false},
		{"Sweep", 0, false},
	} {
		got, err := ParseSemanticStrategy(tt.in)
		if (err == nil) != tt.ok || got != tt.want {
			t.Errorf("ParseSemanticStrategy(%q) = %v, %v; want %v, ok=%v",
				tt.in, got, err, tt.want, tt.ok)
		}
	}
	for _, s := range []SemanticStrategy{StrategySweep, StrategyAssume, StrategyPairwise} {
		got, err := ParseSemanticStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: got %v, %v", s, got, err)
		}
	}
}

// TestRegionInterval pins the arithmetic model to overlapTerm's
// truncation rules: empty regions admit no address, regions reaching or
// wrapping past 2^width keep only their (truncated) lower bound.
func TestRegionInterval(t *testing.T) {
	for _, tt := range []struct {
		name  string
		r     addr.Region
		width int
		want  interval
		ok    bool
	}{
		{"empty", addr.Region{Base: 0x100, Size: 0}, 32, interval{}, false},
		{"normal", addr.Region{Base: 0x100, Size: 0x10}, 32, interval{lo: 0x100, hi: 0x110}, true},
		{"ends exactly at top", addr.Region{Base: 0xFFFF_F000, Size: 0x1000}, 32,
			interval{lo: 0xFFFF_F000, top: true}, true},
		{"past the top", addr.Region{Base: 0xFFFF_FFF0, Size: 0x100}, 32,
			interval{lo: 0xFFFF_FFF0, top: true}, true},
		{"base beyond width", addr.Region{Base: 0x1_2345_0000, Size: 0x10}, 32,
			interval{lo: 0x2345_0000, top: true}, true},
		{"64-bit wrap", addr.Region{Base: ^uint64(0) - 0xF, Size: 0x100}, 64,
			interval{lo: ^uint64(0) - 0xF, top: true}, true},
		{"narrow width", addr.Region{Base: 0x3F0, Size: 0x20}, 10,
			interval{lo: 0x3F0, top: true}, true},
	} {
		got, ok := regionInterval(tt.r, tt.width)
		if ok != tt.ok || got != tt.want {
			t.Errorf("%s: regionInterval = %+v, %v; want %+v, %v", tt.name, got, ok, tt.want, tt.ok)
		}
	}
}

func TestIntervalsOverlap(t *testing.T) {
	iv := func(lo, hi uint64) interval { return interval{lo: lo, hi: hi} }
	top := func(lo uint64) interval { return interval{lo: lo, top: true} }
	for _, tt := range []struct {
		name string
		a, b interval
		want bool
	}{
		{"disjoint", iv(0, 0x10), iv(0x20, 0x30), false},
		{"adjacent do not overlap", iv(0, 0x10), iv(0x10, 0x20), false},
		{"one-address overlap", iv(0, 0x11), iv(0x10, 0x20), true},
		{"contained", iv(0, 0x100), iv(0x40, 0x50), true},
		{"top reaches later region", top(0x100), iv(0x200, 0x210), true},
		{"top misses earlier region", top(0x100), iv(0x40, 0x80), false},
		{"top boundary", top(0x100), iv(0xF0, 0x101), true},
		{"two tops", top(0x500), top(0x10), true},
	} {
		if got := intervalsOverlap(tt.a, tt.b); got != tt.want {
			t.Errorf("%s: intervalsOverlap(%+v, %+v) = %v, want %v", tt.name, tt.a, tt.b, got, tt.want)
		}
		if got := intervalsOverlap(tt.b, tt.a); got != tt.want {
			t.Errorf("%s (swapped): got %v, want %v", tt.name, got, tt.want)
		}
	}
}

// randomRegions builds adversarial region sets for the cross-validation
// tests: dense enough to overlap, with empty regions, regions
// straddling the top of the address space, and bases beyond the width.
func randomRegions(rng *rand.Rand, n, width int) []addr.Region {
	max := uint64(1) << uint(width)
	span := max
	if span > 1<<16 {
		span = 1 << 16 // keep bases clustered so overlaps actually happen
	}
	regions := make([]addr.Region, n)
	for i := range regions {
		r := addr.Region{
			Base: rng.Uint64() % span,
			Size: uint64(rng.Intn(1 << 10)),
			Path: fmt.Sprintf("/dev@%d", i),
			Kind: addr.KindDevice,
		}
		switch rng.Intn(8) {
		case 0:
			r.Size = 0
		case 1:
			r.Base = max - uint64(rng.Intn(512)) // straddles or touches the top
		case 2:
			r.Base = max + uint64(rng.Intn(1024)) // beyond the width: truncates
		}
		regions[i] = r
	}
	return regions
}

// TestSweepCandidatesMatchOracle: the sweep must emit exactly the
// eligible pairs whose intervals overlap — no pruned true candidate, no
// spurious one — in candidatePairs order.
func TestSweepCandidatesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sc := NewSemanticChecker()
	for iter := 0; iter < 80; iter++ {
		width := []int{32, 12}[iter%2]
		n := 3 + rng.Intn(30)
		regions := randomRegions(rng, n, width)
		got := sc.sweepCandidates(regions, width)
		var want [][2]int
		for _, p := range sc.candidatePairs(regions) {
			ia, aok := regionInterval(regions[p[0]], width)
			ib, bok := regionInterval(regions[p[1]], width)
			if aok && bok && intervalsOverlap(ia, ib) {
				want = append(want, p)
			}
		}
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d (width %d, n %d): sweep candidates %v, oracle %v\nregions: %+v",
				iter, width, n, got, want, regions)
		}
	}
}

// TestStrategiesAgreeOnRandomRegions is the randomized cross-validation
// of DESIGN.md §9 and §13: every strategy must report the same
// colliding pairs, every witness must inhabit both regions under the
// width's truncation semantics, and — because all strategies now share
// one canonical witness (the least shared address, computed by the
// word tier arithmetically and by the solver path through bitwise
// minimization) — the collision lists must be byte-identical across
// the board, word tier against bit-blaster included.
func TestStrategiesAgreeOnRandomRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 25; iter++ {
		width := []int{32, 12}[iter%2]
		regions := randomRegions(rng, 4+rng.Intn(8), width)
		results := make(map[SemanticStrategy][]Collision)
		for _, strat := range []SemanticStrategy{
			StrategyPairwise, StrategyAssume, StrategySweep, StrategyWord, StrategyWordOff,
		} {
			sc := NewSemanticChecker()
			sc.Strategy = strat
			out, err := sc.FindCollisionsContext(context.Background(), regions, width)
			if err != nil {
				t.Fatalf("iter %d: %s: %v", iter, strat, err)
			}
			results[strat] = out
			for _, col := range out {
				for _, r := range []addr.Region{col.A, col.B} {
					iv, ok := regionInterval(r, width)
					if !ok || col.Witness < iv.lo || (!iv.top && col.Witness >= iv.hi) {
						t.Errorf("iter %d: %s reports witness %#x outside region %+v (width %d)",
							iter, strat, col.Witness, r, width)
					}
				}
			}
		}
		ref := results[StrategyPairwise]
		for _, strat := range []SemanticStrategy{StrategyAssume, StrategySweep, StrategyWord, StrategyWordOff} {
			out := results[strat]
			if len(out) != len(ref) {
				t.Fatalf("iter %d (width %d): %s found %d collisions, pairwise %d\nregions: %+v",
					iter, width, strat, len(out), len(ref), regions)
			}
			if !reflect.DeepEqual(out, ref) {
				t.Fatalf("iter %d (width %d): %s disagrees with pairwise (verdicts or witnesses):\n%v\n%v",
					iter, width, strat, out, ref)
			}
		}
	}
}

// TestSemanticStatsSweepPrunes: on disjoint regions the sweep reaches
// the solver zero times while still accounting for the full candidate
// set in Pairs.
func TestSemanticStatsSweepPrunes(t *testing.T) {
	regions := make([]addr.Region, 16)
	for i := range regions {
		regions[i] = addr.Region{
			Base: uint64(i) * 0x1000, Size: 0x100,
			Path: fmt.Sprintf("/dev@%d", i), Kind: addr.KindDevice,
		}
	}
	sc := NewSemanticChecker() // default sweep
	if out := sc.FindCollisions(regions, 32); len(out) != 0 {
		t.Fatalf("collisions = %v, want none", out)
	}
	if st := sc.LastStats(); st.SolverCalls != 0 || st.Pairs != 0 || st.Collisions != 0 {
		t.Errorf("sweep stats on disjoint regions = %+v, want zero solver work", st)
	}

	sc.Strategy = StrategyPairwise
	if out := sc.FindCollisions(regions, 32); len(out) != 0 {
		t.Fatalf("pairwise collisions = %v, want none", out)
	}
	if st := sc.LastStats(); st.SolverCalls != 16*15/2 {
		t.Errorf("pairwise SolverCalls = %d, want %d", st.SolverCalls, 16*15/2)
	}
}

// TestIncrementalAddContextCanceled: cancellation mid-AddContext
// surfaces as a typed *sat.LimitError, leaves the checker's region set
// unchanged, and a retry succeeds.
func TestIncrementalAddContextCanceled(t *testing.T) {
	c := NewIncrementalSemanticChecker(32)
	r0 := addr.Region{Base: 0x1000, Size: 0x100, Path: "/a"}
	r1 := addr.Region{Base: 0x1080, Size: 0x100, Path: "/b"}
	if _, err := c.AddContext(context.Background(), r0); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.AddContext(ctx, r1)
	var lim *sat.LimitError
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v (%T), want *sat.LimitError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want to wrap context.Canceled", err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after canceled AddContext = %d, want 1 (region must not register)", c.Len())
	}

	out, err := c.AddContext(context.Background(), r1)
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if len(out) != 1 || c.Len() != 2 {
		t.Errorf("retry: collisions = %v, Len = %d; want 1 collision, Len 2", out, c.Len())
	}
}
