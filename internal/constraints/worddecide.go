package constraints

import (
	"context"
	"math/bits"

	"llhsc/internal/addr"
	"llhsc/internal/sat"
	"llhsc/internal/smt"
)

// This file is the word-level tier of the semantic checker's decision
// ladder (DESIGN.md §13): decide region-pair overlap with machine
// arithmetic whenever the pair's bounds allow it, and reserve the
// bit-blaster for the genuinely symbolic remainder. Verdicts and
// witnesses are byte-identical to the solver tiers — the witness is
// always the *least* shared address, which the blast tier reproduces by
// bitwise model minimization (minimizeBV in semantic.go) — so callers
// may mix tiers freely without reports depending on which tier fired.

// WordVerdict is the outcome of a word-level pair decision.
type WordVerdict int8

// Word-level verdicts.
const (
	// WordInconclusive: the word tier cannot decide the pair; blast it.
	WordInconclusive WordVerdict = iota
	// WordDisjoint: no address is contained in both regions.
	WordDisjoint
	// WordOverlap: the regions share an address; the accompanying
	// witness is the least such address.
	WordOverlap
)

func (v WordVerdict) String() string {
	switch v {
	case WordDisjoint:
		return "disjoint"
	case WordOverlap:
		return "overlap"
	default:
		return "inconclusive"
	}
}

// DecideConcretePair decides formula (7) for two fully concrete regions
// with exact uint64 interval arithmetic — no solver, no allocation. The
// verdict is always conclusive and matches the SMT encoding exactly:
// regionInterval applies the same width-truncation rules overlapTerm
// compiles, so "the intervals share an address" and "the pair's
// bit-vector query is satisfiable" are the same predicate. On overlap,
// the witness is the least shared address max(lo_a, lo_b) — identical
// to what the blast tier's minimizing witness query returns.
func DecideConcretePair(a, b addr.Region, width int) (overlap bool, witness uint64) {
	ia, ok := regionInterval(a, width)
	if !ok {
		return false, 0
	}
	ib, ok := regionInterval(b, width)
	if !ok {
		return false, 0
	}
	if !intervalsOverlap(ia, ib) {
		return false, 0
	}
	lo := ia.lo
	if ib.lo > lo {
		lo = ib.lo
	}
	return true, lo
}

// overlapTermSym encodes containment of x in the half-open region
// [base, base+size) when base and size are symbolic terms:
//
//	base <= x  ∧  x − base < size
//
// The subtraction form handles every case overlapTerm special-cases for
// concrete regions: size = 0 makes the strict bound unsatisfiable, and
// a region whose end reaches past 2^width degenerates to the lower
// bound alone (x − base can reach at most 2^width − 1 − base). On
// concrete base/size terms the two encodings accept exactly the same x
// — the one caveat is that overlapTerm reads the *64-bit* addr.Region
// bounds before truncation, so a Region whose Base exceeds the width
// is "top of space" under overlapTerm while its masked BVConst here is
// an ordinary in-range base. The differential tests pin each decider
// against its own encoding and the pair against each other on
// representable bounds.
func overlapTermSym(sctx *smt.Context, x, base, size *smt.Term) *smt.Term {
	return sctx.And(sctx.Ule(base, x), sctx.Ult(sctx.Sub(x, base), size))
}

// DecideTermPair runs the word-level ladder over a region pair whose
// base and size are smt terms of the checker's width, with symbolic
// cells bounded by env (absent cells range over their full width). It
// decides overlap of [baseA, baseA+sizeA) and [baseB, baseB+sizeB)
// under the overlapTermSym semantics:
//
//   - concrete pairs (all four bounds evaluate to constants) are always
//     decided, by the same arithmetic as DecideConcretePair;
//   - affine pairs are decided by interval propagation over the cell
//     ranges: a pair whose bound hulls cannot intersect is disjoint,
//     and a pair is conclusively overlapping when the two regions draw
//     on disjoint cell sets, each region's low bounds are achieved at
//     the cells' low ends, and the least possible shared address
//     max(lo_base_a, lo_base_b) falls inside both regions there — that
//     address is then provably the blast tier's minimized witness;
//   - anything else is WordInconclusive and must be bit-blasted.
//
// Soundness: a WordDisjoint or WordOverlap verdict holds for the
// existential query "is there a cell assignment within env and an
// address x contained in both regions", exactly the satisfiability
// question the blast tier answers.
func DecideTermPair(env smt.RangeEnv, width int, baseA, sizeA, baseB, sizeB *smt.Term) (WordVerdict, uint64) {
	ba, ok1 := smt.TermBounds(baseA, env)
	sa, ok2 := smt.TermBounds(sizeA, env)
	bb, ok3 := smt.TermBounds(baseB, env)
	sb, ok4 := smt.TermBounds(sizeB, env)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return WordInconclusive, 0
	}
	// A region whose size is pinned to zero contains nothing.
	if sa.Hi == 0 || sb.Hi == 0 {
		return WordDisjoint, 0
	}
	// Hull test: every address in A is within [ba.Lo, hullHi(A)], so
	// two regions whose hulls cannot meet are disjoint under every
	// assignment.
	if hullEnd(ba, sa, width) < bb.Lo || hullEnd(bb, sb, width) < ba.Lo {
		return WordDisjoint, 0
	}

	// Conclusive overlap needs an exhibitable assignment and a witness
	// that is minimal over *all* assignments. Both come from pinning
	// every cell to the low end of its range — valid only when each
	// region's low bounds are achieved there (true for monotone affine
	// bounds; verified by point evaluation rather than assumed) and the
	// two regions share no cells (so their pinnings compose).
	if ClassifyTermPair(baseA, sizeA, baseB, sizeB) == smt.FragmentSymbolic {
		return WordInconclusive, 0
	}
	varsA := make(map[string]struct{})
	smt.CollectBVVars(baseA, varsA)
	smt.CollectBVVars(sizeA, varsA)
	varsB := make(map[string]struct{})
	smt.CollectBVVars(baseB, varsB)
	smt.CollectBVVars(sizeB, varsB)
	for v := range varsA {
		if _, shared := varsB[v]; shared {
			return WordInconclusive, 0
		}
	}
	pinned := make(smt.RangeEnv, len(varsA)+len(varsB))
	for _, vars := range []map[string]struct{}{varsA, varsB} {
		for v := range vars {
			if iv, okEnv := env[v]; okEnv {
				pinned[v] = smt.Point(iv.Lo)
			} else {
				pinned[v] = smt.Point(0)
			}
		}
	}
	if !achievesLow(baseA, pinned, ba) || !achievesLow(sizeA, pinned, sa) ||
		!achievesLow(baseB, pinned, bb) || !achievesLow(sizeB, pinned, sb) {
		return WordInconclusive, 0
	}
	// Under the pinned assignment, A = [ba.Lo, ba.Lo+sa.Lo) and
	// B = [bb.Lo, bb.Lo+sb.Lo) (each capped at 2^width). Their least
	// shared address, if any, is max of the bases; and since every
	// shared address under every assignment is >= both base lower
	// bounds, that address is globally minimal.
	x0 := ba.Lo
	if bb.Lo > x0 {
		x0 = bb.Lo
	}
	if inPinnedRegion(x0, ba.Lo, sa.Lo, width) && inPinnedRegion(x0, bb.Lo, sb.Lo, width) {
		return WordOverlap, x0
	}
	return WordInconclusive, 0
}

// BlastTermPair decides the same existential query as DecideTermPair —
// is there a cell assignment within env and an address x inside both
// regions — by bit-blasting overlapTermSym, and on Sat minimizes x to
// the least shared address with the canonical witness query. It is the
// ground-truth oracle the differential tests and the E18 bench compare
// the word tier against; the terms must belong to sctx.
func BlastTermPair(ctx context.Context, sctx *smt.Context, env smt.RangeEnv, width int, baseA, sizeA, baseB, sizeB *smt.Term) (overlap bool, witness uint64, err error) {
	solver := smt.NewSolver(sctx)
	x := sctx.BVVar("x_blast", width)
	for name, iv := range env {
		v := sctx.BVVar(name, width)
		solver.Assert(sctx.Ule(sctx.BVConst(width, iv.Lo), v))
		solver.Assert(sctx.Ule(v, sctx.BVConst(width, iv.Hi)))
	}
	solver.Assert(overlapTermSym(sctx, x, baseA, sizeA))
	solver.Assert(overlapTermSym(sctx, x, baseB, sizeB))
	st, err := solver.CheckContext(ctx)
	if err != nil {
		return false, 0, err
	}
	if st != sat.Sat {
		return false, 0, nil
	}
	w, err := minimizeBV(ctx, solver, x, width, nil, nil)
	if err != nil {
		return false, 0, err
	}
	return true, w, nil
}

// ClassifyTermPair places a region pair on the decision ladder: the
// loosest fragment among its four bound terms.
func ClassifyTermPair(baseA, sizeA, baseB, sizeB *smt.Term) smt.Fragment {
	f := smt.ClassifyTerm(baseA)
	for _, t := range []*smt.Term{sizeA, baseB, sizeB} {
		if c := smt.ClassifyTerm(t); c > f {
			f = c
		}
	}
	return f
}

// hullEnd returns the largest address any assignment can place inside
// the region: min(base.Hi + size.Hi, 2^width) − 1, saturating.
func hullEnd(base, size smt.Interval, width int) uint64 {
	end, carry := bits.Add64(base.Hi, size.Hi, 0)
	mask := ^uint64(0)
	if width < 64 {
		mask = 1<<uint(width) - 1
	}
	if carry != 0 || end > mask {
		return mask
	}
	return end - 1 // size.Hi >= 1 here, so end >= base.Hi + 1
}

// achievesLow reports whether pinning the cells (env) evaluates t to
// exactly the lower bound of its interval — i.e. the bound is achieved
// at the pinned point, not merely approached.
func achievesLow(t *smt.Term, pinned smt.RangeEnv, bounds smt.Interval) bool {
	v, ok := smt.TermBounds(t, pinned)
	return ok && v.IsPoint() && v.Lo == bounds.Lo
}

// inPinnedRegion reports x ∈ [base, base+size) at the given width,
// with the end capped at 2^width (the overlapTermSym wrap semantics).
func inPinnedRegion(x, base, size uint64, width int) bool {
	if x < base {
		return false
	}
	end, carry := bits.Add64(base, size, 0)
	mask := ^uint64(0)
	if width < 64 {
		mask = 1<<uint(width) - 1
	}
	if carry != 0 || end > mask {
		return true // region reaches the top of the address space
	}
	return x < end
}
