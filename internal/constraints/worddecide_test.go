package constraints

import (
	"context"
	"math/rand"
	"testing"

	"llhsc/internal/addr"
	"llhsc/internal/conform"
	"llhsc/internal/sat"
	"llhsc/internal/smt"
)

// blastOverlap is the oracle for the word-tier differential tests: it
// decides "is there a cell assignment within env and an address x
// inside both regions" by bit-blasting the encoding enc produces for a
// shared witness variable x, and on Sat minimizes x with the canonical
// witness query every solver tier uses. The word tier's conclusive
// verdicts (and witnesses) must match this exactly.
func blastOverlap(t *testing.T, sctx *smt.Context, env smt.RangeEnv, width int, enc func(x *smt.Term) *smt.Term) (overlap bool, witness uint64) {
	t.Helper()
	solver := smt.NewSolver(sctx)
	x := sctx.BVVar("x_diff", width)
	for name, iv := range env {
		v := sctx.BVVar(name, width)
		solver.Assert(sctx.Ule(sctx.BVConst(width, iv.Lo), v))
		solver.Assert(sctx.Ule(v, sctx.BVConst(width, iv.Hi)))
	}
	solver.Assert(enc(x))
	switch solver.Check() {
	case sat.Unsat:
		return false, 0
	case sat.Sat:
		w, err := minimizeBV(context.Background(), solver, x, width, nil, nil)
		if err != nil {
			t.Fatalf("witness minimization: %v", err)
		}
		return true, w
	default:
		t.Fatal("oracle solver returned Unknown")
		return false, 0
	}
}

// blastRegions is blastOverlap under the production concrete encoding
// (overlapTerm) — the predicate DecideConcretePair must reproduce,
// including its treatment of regions whose 64-bit Base lies beyond the
// checker width.
func blastRegions(t *testing.T, a, b addr.Region, width int) (bool, uint64) {
	t.Helper()
	sctx := smt.NewContext()
	return blastOverlap(t, sctx, nil, width, func(x *smt.Term) *smt.Term {
		return sctx.And(overlapTerm(sctx, x, a, width), overlapTerm(sctx, x, b, width))
	})
}

// blastTerms is the symbolic-encoding oracle (overlapTermSym) — the
// predicate DecideTermPair must reproduce. It goes through the
// exported BlastTermPair so the E18 bench and these tests share one
// oracle.
func blastTerms(t *testing.T, sctx *smt.Context, env smt.RangeEnv, width int, baseA, sizeA, baseB, sizeB *smt.Term) (bool, uint64) {
	t.Helper()
	overlap, w, err := BlastTermPair(context.Background(), sctx, env, width, baseA, sizeA, baseB, sizeB)
	if err != nil {
		t.Fatalf("blast oracle: %v", err)
	}
	return overlap, w
}

// TestDecideConcretePairMatchesBlast pins the tentpole's core claim on
// the conform generator's near-overlapping geometry: for fully
// concrete pairs the word tier is always conclusive, and its verdict
// AND witness equal the bit-blasted oracle's byte for byte.
func TestDecideConcretePairMatchesBlast(t *testing.T) {
	for _, width := range []int{12, 16, 32} {
		pairs := conform.NearRegionPairs(int64(width), 60, width)
		mask := uint64(1)<<uint(width) - 1
		if width >= 64 {
			mask = ^uint64(0)
		}
		for i, p := range pairs {
			a, b := p[0], p[1]
			gotOverlap, gotW := DecideConcretePair(a, b, width)
			wantOverlap, wantW := blastRegions(t, a, b, width)
			if gotOverlap != wantOverlap || (gotOverlap && gotW != wantW) {
				t.Fatalf("width %d pair %d (%+v, %+v): word tier (%v, %#x) != blast (%v, %#x)",
					width, i, a, b, gotOverlap, gotW, wantOverlap, wantW)
			}

			// The term-level ladder must agree with both its own blast
			// oracle and — when the bases are width-representable, so
			// overlapTerm and overlapTermSym encode the same predicate —
			// the concrete fast path. And it must never punt on a
			// concrete pair.
			sctx := smt.NewContext()
			baseA, sizeA := sctx.BVConst(width, a.Base), sctx.BVConst(width, a.Size)
			baseB, sizeB := sctx.BVConst(width, b.Base), sctx.BVConst(width, b.Size)
			v, w := DecideTermPair(nil, width, baseA, sizeA, baseB, sizeB)
			if v == WordInconclusive {
				t.Fatalf("width %d pair %d: DecideTermPair inconclusive on a concrete pair", width, i)
			}
			symOverlap, symW := blastTerms(t, sctx, nil, width, baseA, sizeA, baseB, sizeB)
			if (v == WordOverlap) != symOverlap || (symOverlap && w != symW) {
				t.Fatalf("width %d pair %d: DecideTermPair (%v, %#x) != blast (%v, %#x)",
					width, i, v, w, symOverlap, symW)
			}
			if a.Base <= mask && b.Base <= mask {
				if (v == WordOverlap) != gotOverlap || (gotOverlap && w != gotW) {
					t.Fatalf("width %d pair %d: DecideTermPair (%v, %#x) != DecideConcretePair (%v, %#x)",
						width, i, v, w, gotOverlap, gotW)
				}
			}
		}
	}
}

// liftBound turns a concrete bound into a term of the requested
// fragment inside sctx, recording any cells it introduces in env. The
// term's value range always includes the original concrete value, so
// lifted pairs stay near-overlapping.
func liftBound(sctx *smt.Context, rng *rand.Rand, env smt.RangeEnv, name string, val uint64, width int, frag smt.Fragment) *smt.Term {
	mask := uint64(1)<<uint(width) - 1
	if width >= 64 {
		mask = ^uint64(0)
	}
	val &= mask
	switch frag {
	case smt.FragmentAffine:
		// val + cell with cell ∈ [0, slack]: lower bound is exactly val.
		slack := uint64(rng.Intn(8))
		if val+slack > mask || val+slack < val {
			slack = 0
		}
		cell := sctx.BVVar(name, width)
		env[name] = smt.Interval{Lo: 0, Hi: slack}
		return sctx.Add(sctx.BVConst(width, val), cell)
	case smt.FragmentSymbolic:
		// val + c1*c2 is nonlinear (ClassifyTerm: symbolic), with tiny
		// cell ranges so the blaster stays fast.
		c1 := sctx.BVVar(name+"p", width)
		c2 := sctx.BVVar(name+"q", width)
		env[name+"p"] = smt.Interval{Lo: 0, Hi: 2}
		env[name+"q"] = smt.Interval{Lo: 0, Hi: 2}
		return sctx.Add(sctx.BVConst(width, val%(mask-4)), sctx.Mul(c1, c2))
	default:
		return sctx.BVConst(width, val)
	}
}

// TestDecideTermPairDifferential fuzzes concrete, affine and symbolic
// region pairs through both the word-level decider and the
// bit-blaster. Whenever the word tier is conclusive, verdict and
// witness must match the oracle; inconclusive answers are always
// allowed (that is the fallback contract) but the test also asserts
// the tier stays useful — the affine rounds must produce conclusive
// verdicts, not just the concrete ones.
func TestDecideTermPairDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	width := 16
	pairs := conform.NearRegionPairs(5, 80, width)
	frags := []smt.Fragment{smt.FragmentConcrete, smt.FragmentAffine, smt.FragmentSymbolic}
	conclusive := map[smt.Fragment]int{}

	for i, p := range pairs {
		a, b := p[0], p[1]
		frag := frags[i%len(frags)]
		sctx := smt.NewContext()
		env := smt.RangeEnv{}
		// Lift one bound per region to the round's fragment (the rest
		// stay concrete) so the pair classifies at exactly that rung.
		baseA := liftBound(sctx, rng, env, "ca", a.Base, width, frag)
		sizeA := sctx.BVConst(width, a.Size)
		baseB := sctx.BVConst(width, b.Base)
		sizeB := liftBound(sctx, rng, env, "cb", b.Size, width, frag)

		verdict, w := DecideTermPair(env, width, baseA, sizeA, baseB, sizeB)
		if frag == smt.FragmentConcrete && verdict == WordInconclusive {
			t.Fatalf("pair %d: inconclusive on concrete bounds", i)
		}
		if verdict != WordInconclusive {
			conclusive[frag]++
		}
		wantOverlap, wantW := blastTerms(t, sctx, env, width, baseA, sizeA, baseB, sizeB)
		switch verdict {
		case WordDisjoint:
			if wantOverlap {
				t.Fatalf("pair %d (%s): word tier says disjoint, blast finds witness %#x\nA=%+v B=%+v env=%v",
					i, frag, wantW, a, b, env)
			}
		case WordOverlap:
			if !wantOverlap {
				t.Fatalf("pair %d (%s): word tier says overlap at %#x, blast says disjoint\nA=%+v B=%+v env=%v",
					i, frag, w, a, b, env)
			}
			if w != wantW {
				t.Fatalf("pair %d (%s): witnesses differ: word %#x, blast %#x\nA=%+v B=%+v env=%v",
					i, frag, w, wantW, a, b, env)
			}
		}
	}
	if conclusive[smt.FragmentAffine] == 0 {
		t.Error("word tier decided no affine pairs — interval propagation is not firing")
	}
	t.Logf("conclusive decisions: concrete=%d affine=%d symbolic=%d",
		conclusive[smt.FragmentConcrete], conclusive[smt.FragmentAffine], conclusive[smt.FragmentSymbolic])
}

// FuzzDecideConcretePair is the go-fuzz face of the differential
// suite: arbitrary bases and sizes (including the truncation and
// top-of-space corners) must never make the word tier disagree with
// the bit-blasted oracle.
func FuzzDecideConcretePair(f *testing.F) {
	f.Add(uint64(0x1000), uint64(0x100), uint64(0x10f0), uint64(0x20), 16)
	f.Add(^uint64(0)-16, uint64(64), uint64(0), uint64(1), 32)
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), 12)
	f.Fuzz(func(t *testing.T, baseA, sizeA, baseB, sizeB uint64, w int) {
		width := 12 + int(uint(w)%21) // 12..32 keeps minimization cheap
		a := addr.Region{Base: baseA, Size: sizeA % (1 << 10), Path: "/a"}
		b := addr.Region{Base: baseB, Size: sizeB % (1 << 10), Path: "/b"}
		gotOverlap, gotW := DecideConcretePair(a, b, width)
		wantOverlap, wantW := blastRegions(t, a, b, width)
		if gotOverlap != wantOverlap || (gotOverlap && gotW != wantW) {
			t.Fatalf("word (%v, %#x) != blast (%v, %#x) for A=%+v B=%+v width=%d",
				gotOverlap, gotW, wantOverlap, wantW, a, b, width)
		}
	})
}
