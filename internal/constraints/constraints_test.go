package constraints

import (
	"strings"
	"testing"

	"llhsc/internal/addr"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/runningexample"
	"llhsc/internal/schema"
)

func mustTree(t *testing.T, src string) *dts.Tree {
	t.Helper()
	tree, err := dts.Parse("test.dts", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return tree
}

// ---- syntactic checker (Section IV-B) ----

func TestSyntacticCleanRunningExample(t *testing.T) {
	tree, err := runningexample.Tree()
	if err != nil {
		t.Fatal(err)
	}
	c := NewSyntacticChecker(schema.StandardSet())
	if vs := c.Check(tree); len(vs) != 0 {
		t.Errorf("running example should be syntactically valid; got %v", vs)
	}
}

func TestSyntacticMissingRequired(t *testing.T) {
	tree := mustTree(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@0 {
		reg = <0x0 0x1000>;
	};
};
`)
	c := NewSyntacticChecker(schema.StandardSet())
	vs := c.Check(tree)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want 1", vs)
	}
	if vs[0].Property != "device_type" || !strings.Contains(vs[0].Rule, "required") {
		t.Errorf("violation = %+v", vs[0])
	}
}

func TestSyntacticConstMismatch(t *testing.T) {
	tree := mustTree(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@0 {
		device_type = "ram";
		reg = <0x0 0x1000>;
	};
};
`)
	c := NewSyntacticChecker(schema.StandardSet())
	vs := c.Check(tree)
	if len(vs) != 1 || !strings.Contains(vs[0].Rule, "const") {
		t.Fatalf("violations = %v, want one const violation", vs)
	}
	if !strings.Contains(vs[0].Message, `"memory"`) {
		t.Errorf("message = %q", vs[0].Message)
	}
}

func TestSyntacticMultipleIndependentViolations(t *testing.T) {
	// missing device_type AND bad arity: both must be reported.
	tree := mustTree(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@0 {
		reg = <0x0 0x1000 0x5>;
	};
};
`)
	c := NewSyntacticChecker(schema.StandardSet())
	vs := c.Check(tree)
	if len(vs) != 2 {
		t.Fatalf("violations = %v, want 2 (required + arity)", vs)
	}
	var haveRequired, haveArity bool
	for _, v := range vs {
		if strings.Contains(v.Rule, "required") {
			haveRequired = true
		}
		if strings.Contains(v.Rule, "arity") {
			haveArity = true
		}
	}
	if !haveRequired || !haveArity {
		t.Errorf("violations = %v", vs)
	}
}

func TestSyntacticEnumViolation(t *testing.T) {
	tree := mustTree(t, `
/dts-v1/;
/ {
	cpus {
		#address-cells = <1>;
		#size-cells = <0>;
		cpu@0 {
			compatible = "arm,cortex-a53";
			device_type = "cpu";
			enable-method = "warp-drive";
			reg = <0x0>;
		};
	};
};
`)
	c := NewSyntacticChecker(schema.StandardSet())
	vs := c.Check(tree)
	if len(vs) != 1 || !strings.Contains(vs[0].Rule, "enum") {
		t.Fatalf("violations = %v, want one enum violation", vs)
	}
}

func TestSyntacticBlameDelta(t *testing.T) {
	// a violation introduced by a delta is blamed on it
	tree := mustTree(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@0 {
		device_type = "memory";
		reg = <0x0 0x1000>;
	};
};
`)
	mem := tree.Lookup("/memory@0")
	p := mem.Property("device_type")
	p.Value = dts.StringValueOf("broken")
	p.Origin.Delta = "d9"

	c := NewSyntacticChecker(schema.StandardSet())
	vs := c.Check(tree)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Origin.Delta != "d9" {
		t.Errorf("blame = %q, want d9", vs[0].Origin.Delta)
	}
	if !strings.Contains(vs[0].String(), "delta d9") {
		t.Errorf("String() = %q should mention the delta", vs[0].String())
	}
}

// ---- semantic checker (Section IV-C) ----

func TestSemanticAddressClash(t *testing.T) {
	// Section I-A: the uart's base address clashes with the second
	// memory bank; dtc and dt-schema accept it, llhsc must not.
	tree := mustTree(t, `
/dts-v1/;
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000
		       0x0 0x60000000 0x0 0x20000000>;
	};
	uart@60000000 {
		compatible = "ns16550a";
		reg = <0x0 0x60000000 0x0 0x1000>;
	};
};
`)
	// the baseline is blind to this fault
	if vs := schema.StandardSet().Validate(tree); len(vs) != 0 {
		t.Fatalf("baseline should accept the clash: %v", vs)
	}
	collisions, violations := NewSemanticChecker().Check(tree)
	if len(collisions) != 1 {
		t.Fatalf("collisions = %v, want 1", collisions)
	}
	col := collisions[0]
	if col.Witness < 0x60000000 || col.Witness >= 0x60001000 {
		t.Errorf("witness %#x outside the uart window", col.Witness)
	}
	if len(violations) == 0 {
		t.Error("expected violations")
	}
}

func TestSemanticCleanTree(t *testing.T) {
	tree, err := runningexample.Tree()
	if err != nil {
		t.Fatal(err)
	}
	collisions, violations := NewSemanticChecker().Check(tree)
	if len(collisions) != 0 || len(violations) != 0 {
		t.Errorf("running example should be clean: %v %v", collisions, violations)
	}
}

func TestSemanticTruncationCollisionAtZero(t *testing.T) {
	// Section IV-C: d3 applied without d4 — the 64-bit reg is read with
	// 32-bit cells, producing four banks and a collision at 0x0.
	tree := mustTree(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000
		       0x0 0x60000000 0x0 0x20000000>;
	};
};
`)
	regions, err := addr.CollectRegions(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 4 {
		t.Fatalf("regions = %d, want 4 banks (the paper's count)", len(regions))
	}
	collisions, _ := NewSemanticChecker().Check(tree)
	if len(collisions) == 0 {
		t.Fatal("truncation collision not found")
	}
	foundZero := false
	for _, c := range collisions {
		if c.Witness == 0x0 {
			foundZero = true
		}
	}
	if !foundZero {
		t.Errorf("collisions %v should include a witness at 0x0 (the paper's counterexample)", collisions)
	}
}

func TestSemanticAnyCollisionAgreesWithFindCollisions(t *testing.T) {
	regions := []addr.Region{
		{Base: 0x1000, Size: 0x1000, Path: "/a", Kind: addr.KindDevice},
		{Base: 0x3000, Size: 0x1000, Path: "/b", Kind: addr.KindDevice},
		{Base: 0x1800, Size: 0x100, Path: "/c", Kind: addr.KindDevice},
	}
	sc := NewSemanticChecker()
	all := sc.FindCollisions(regions, 32)
	one, ok := sc.AnyCollision(regions, 32)
	if len(all) != 1 {
		t.Fatalf("FindCollisions = %v", all)
	}
	if !ok {
		t.Fatal("AnyCollision found nothing")
	}
	if one.A.Path != "/a" || one.B.Path != "/c" {
		t.Errorf("AnyCollision = %v", one)
	}
	if !one.A.Contains(one.Witness) || !one.B.Contains(one.Witness) {
		t.Errorf("witness %#x not shared", one.Witness)
	}

	disjoint := []addr.Region{
		{Base: 0x0, Size: 0x10, Path: "/a"},
		{Base: 0x100, Size: 0x10, Path: "/b"},
	}
	if _, ok := sc.AnyCollision(disjoint, 32); ok {
		t.Error("AnyCollision on disjoint regions")
	}
	if got := sc.FindCollisions(disjoint, 32); len(got) != 0 {
		t.Errorf("FindCollisions on disjoint regions = %v", got)
	}
}

func TestSemanticRegionAtTopOfAddressSpace(t *testing.T) {
	regions := []addr.Region{
		{Base: 0xFFFF0000, Size: 0x10000, Path: "/top"},   // ends exactly at 2^32
		{Base: 0xFFFFF000, Size: 0x1000, Path: "/inside"}, // inside the first
	}
	sc := NewSemanticChecker()
	got := sc.FindCollisions(regions, 32)
	if len(got) != 1 {
		t.Fatalf("collisions = %v, want 1", got)
	}
	if w := got[0].Witness; w < 0xFFFFF000 {
		t.Errorf("witness %#x outside overlap", w)
	}
}

func TestInterruptChecker(t *testing.T) {
	tree := mustTree(t, `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	uart@1000 { interrupts = <5>; };
	timer@2000 { interrupts = <5>; };
	rtc@3000 { interrupts = <7>; };
};
`)
	vs := InterruptChecker{}.Check(tree)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want 1", vs)
	}
	if !strings.Contains(vs[0].Message, "interrupt 5") {
		t.Errorf("message = %q", vs[0].Message)
	}

	clean := mustTree(t, `
/dts-v1/;
/ {
	uart@1000 { interrupts = <5>; };
	timer@2000 { interrupts = <6>; };
};
`)
	if vs := (InterruptChecker{}).Check(clean); len(vs) != 0 {
		t.Errorf("clean interrupts flagged: %v", vs)
	}
}

// ---- allocation checker (Section IV-A) ----

func TestAllocationValidPartitioning(t *testing.T) {
	model, err := runningexample.Model()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewAllocationChecker(model, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Feasible() {
		t.Fatal("2-VM partitioning should be feasible")
	}
	vs := c.Check([]featmodel.Configuration{
		runningexample.VM1Config(),
		runningexample.VM2Config(),
	})
	if len(vs) != 0 {
		t.Errorf("paper partitioning rejected: %v", vs)
	}
}

func TestAllocationSharedCPURejected(t *testing.T) {
	model, _ := runningexample.Model()
	c, _ := NewAllocationChecker(model, 2)
	bad := featmodel.ConfigOf("CustomSBC", "memory", "cpus", "cpu@0", "uarts", "uart0")
	vs := c.Check([]featmodel.Configuration{runningexample.VM1Config(), bad})
	if len(vs) != 1 || vs[0].Rule != "allocation:conflict" {
		t.Fatalf("violations = %v", vs)
	}
	if !strings.Contains(vs[0].Message, "cpu@0") {
		t.Errorf("message %q should name cpu@0", vs[0].Message)
	}
}

func TestAllocationThreeVMsInfeasible(t *testing.T) {
	model, _ := runningexample.Model()
	c, err := NewAllocationChecker(model, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Feasible() {
		t.Error("3 VMs over 2 exclusive CPUs should be infeasible")
	}
}

func TestAllocationSolvePins(t *testing.T) {
	model, _ := runningexample.Model()
	c, _ := NewAllocationChecker(model, 2)
	configs, err := c.Solve([]map[string]bool{
		{"veth0": true},
		{"veth1": true},
	})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !configs[0]["cpu@0"] || !configs[1]["cpu@1"] {
		t.Errorf("configs = %v / %v", configs[0].Sorted(), configs[1].Sorted())
	}
}
