package constraints

import (
	"strings"
	"testing"

	"llhsc/internal/addr"
)

func TestMemReserveClean(t *testing.T) {
	tree := mustTree(t, `
/dts-v1/;
/memreserve/ 0x40000000 0x4000;
/memreserve/ 0x48000000 0x1000;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x40000000 0x20000000>;
	};
};
`)
	if vs := (MemReserveChecker{}).Check(tree); len(vs) != 0 {
		t.Errorf("clean reserves flagged: %v", vs)
	}
}

func TestMemReserveOutsideRAM(t *testing.T) {
	tree := mustTree(t, `
/dts-v1/;
/memreserve/ 0x10000000 0x1000;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x40000000 0x20000000>;
	};
};
`)
	vs := MemReserveChecker{}.Check(tree)
	if len(vs) != 1 || vs[0].Rule != "semantic:memreserve-outside-ram" {
		t.Fatalf("violations = %v", vs)
	}
	if !strings.Contains(vs[0].Message, "0x1") {
		t.Errorf("message = %q", vs[0].Message)
	}
}

func TestMemReserveStraddlingBankEdge(t *testing.T) {
	// starts inside RAM but runs past the end of the bank
	tree := mustTree(t, `
/dts-v1/;
/memreserve/ 0x5ffff000 0x2000;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x40000000 0x20000000>;
	};
};
`)
	vs := MemReserveChecker{}.Check(tree)
	if len(vs) != 1 || vs[0].Rule != "semantic:memreserve-outside-ram" {
		t.Fatalf("violations = %v", vs)
	}
}

func TestMemReserveSpanningTwoAdjacentBanks(t *testing.T) {
	// adjacent banks cover [0x40000000, 0x80000000): a reserve across
	// the seam is fine — every address is in SOME bank.
	tree := mustTree(t, `
/dts-v1/;
/memreserve/ 0x5fff0000 0x20000;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x40000000 0x20000000
		       0x60000000 0x20000000>;
	};
};
`)
	if vs := (MemReserveChecker{}).Check(tree); len(vs) != 0 {
		t.Errorf("seam-spanning reserve flagged: %v", vs)
	}
}

func TestMemReserveOverlapEachOther(t *testing.T) {
	tree := mustTree(t, `
/dts-v1/;
/memreserve/ 0x40000000 0x2000;
/memreserve/ 0x40001000 0x2000;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x40000000 0x20000000>;
	};
};
`)
	vs := MemReserveChecker{}.Check(tree)
	found := false
	for _, v := range vs {
		if v.Rule == "semantic:memreserve-overlap" {
			found = true
		}
	}
	if !found {
		t.Errorf("overlapping reserves not flagged: %v", vs)
	}
}

func TestMemReserveNoEntries(t *testing.T) {
	tree := mustTree(t, `
/dts-v1/;
/ { };
`)
	if vs := (MemReserveChecker{}).Check(tree); vs != nil {
		t.Errorf("no reserves should mean no violations: %v", vs)
	}
}

func TestIncrementalSemanticChecker(t *testing.T) {
	c := NewIncrementalSemanticChecker(32)
	r1 := addrRegion(0x1000, 0x1000, "/a")
	r2 := addrRegion(0x3000, 0x1000, "/b")
	r3 := addrRegion(0x1800, 0x100, "/c") // overlaps r1

	if got := c.Add(r1); len(got) != 0 {
		t.Errorf("first region collided: %v", got)
	}
	if got := c.Add(r2); len(got) != 0 {
		t.Errorf("disjoint region collided: %v", got)
	}
	got := c.Add(r3)
	if len(got) != 1 {
		t.Fatalf("collisions = %v, want 1", got)
	}
	if got[0].A.Path != "/a" || got[0].B.Path != "/c" {
		t.Errorf("collision = %v", got[0])
	}
	if !got[0].A.Contains(got[0].Witness) || !got[0].B.Contains(got[0].Witness) {
		t.Errorf("witness %#x not shared", got[0].Witness)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	// the incremental checker must agree with FindCollisions
	regions := []addr.Region{
		addrRegion(0x1000, 0x1000, "/a"),
		addrRegion(0x1800, 0x1000, "/b"),
		addrRegion(0x5000, 0x1000, "/c"),
		addrRegion(0x5800, 0x1000, "/d"),
		addrRegion(0x9000, 0x1000, "/e"),
	}
	inc := NewIncrementalSemanticChecker(32)
	gotInc := inc.AddAll(regions)
	gotBatch := NewSemanticChecker().FindCollisions(regions, 32)
	if len(gotInc) != len(gotBatch) {
		t.Fatalf("incremental %d collisions, batch %d", len(gotInc), len(gotBatch))
	}
}

func TestIncrementalVirtualExemption(t *testing.T) {
	c := NewIncrementalSemanticChecker(32)
	mem := addr.Region{Base: 0x1000, Size: 0x1000, Path: "/mem", Kind: addr.KindMemory}
	veth := addr.Region{Base: 0x1800, Size: 0x100, Path: "/veth", Kind: addr.KindVirtual}
	c.Add(mem)
	if got := c.Add(veth); len(got) != 0 {
		t.Errorf("virtual window inside RAM must be exempt: %v", got)
	}
}

func addrRegion(base, size uint64, path string) addr.Region {
	return addr.Region{Base: base, Size: size, Path: path, Kind: addr.KindDevice}
}
